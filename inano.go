// Package inano is the client library of iPlane Nano: a lightweight Internet
// path performance predictor for peer-to-peer applications (Madhyastha et
// al., NSDI 2009).
//
// A Client loads the compact link-level atlas (a few megabytes), optionally
// fetched from a peer-to-peer swarm, answers local queries for the
// PoP-level path, latency, and loss rate between arbitrary end hosts, keeps
// itself current by applying small daily deltas, and contributes its own
// traceroutes to sharpen predictions for paths out of this host.
//
// Application helpers cover the paper's three case studies: CDN replica
// selection (§7.1), VoIP relay selection (§7.2), and detour routing around
// failures (§7.3).
//
//	client, err := inano.Load(atlasFile)
//	info := client.Query(srcIP, dstIP)
//	fmt.Println(info.RTTMS, info.LossRate, info.Fwd.ASPath)
//
// # Batch queries and concurrency
//
// QueryBatch answers "predict from me to these N candidates" — the shape
// of CDN replica selection and relay ranking — in one call. The engine
// groups the batch by destination prediction tree and fans tree
// computation across up to GOMAXPROCS workers, so a batch sharing
// destinations costs far fewer Dijkstra runs than N sequential queries;
// results are identical to issuing the queries one at a time. The Context
// variants (QueryBatchContext, QueryPairsContext) bound tail latency:
// cancellation skips remaining tree builds, unblocks waits on builds owned
// by other callers, and returns ctx.Err().
//
//	infos, err := client.QueryBatchContext(ctx, me, replicaIPs)
//
// All query methods are safe for unbounded concurrent use. Mutations
// (ApplyDelta, AddTraceroutes) are copy-on-write: they build a new engine
// and swap it in, so queries already in flight keep reading the old
// snapshot and never block behind a rebuild.
package inano

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"iter"
	"sync"

	"inano/internal/atlas"
	"inano/internal/core"
	"inano/internal/feedback"
	"inano/internal/netsim"
	"inano/internal/swarm"
)

// Re-exported identifier types, so applications need no internal imports.
type (
	// IP is an IPv4 address as a 32-bit word.
	IP = netsim.IP
	// Prefix is a /24 prefix identifier (IP >> 8).
	Prefix = netsim.Prefix
	// ASN is an autonomous system number.
	ASN = netsim.ASN
	// PathInfo is a bidirectional query answer.
	PathInfo = core.PathInfo
	// Prediction is a one-way predicted path.
	Prediction = core.Prediction
	// Options selects the prediction algorithm variant.
	Options = core.Options
	// CacheStats reports prediction-tree cache counters.
	CacheStats = core.CacheStats
	// Atlas is the in-memory atlas.
	Atlas = atlas.Atlas
	// Delta is a day-over-day atlas update.
	Delta = atlas.Delta
	// Manifest describes a swarmed atlas file.
	Manifest = swarm.Manifest
)

// Client answers path queries from a local atlas. It is safe for concurrent
// queries; mutating operations (ApplyDelta, AddTraceroutes) serialize
// internally and rebuild the prediction engine.
type Client struct {
	mu sync.RWMutex
	// atlas is the mutable map-based form — the edit surface for deltas
	// and traceroute merges. For clients started from a compiled flat
	// atlas (FromFlat) it is nil until the first mutating operation or
	// Atlas() call materializes it from the serving form.
	atlas  *atlas.Atlas
	engine *core.Engine
	opts   core.Options
	// nextLocalCluster allocates cluster IDs for interfaces discovered by
	// local measurements.
	localCluster map[Prefix]int32
	// tracker aggregates observed-vs-predicted error per destination
	// cluster (the feedback loop's scheduling signal).
	tracker *feedback.Tracker
}

// FromAtlas wraps an in-memory atlas with the full iNano configuration.
func FromAtlas(a *atlas.Atlas) *Client {
	return FromAtlasOptions(a, core.INanoOptions())
}

// FromAtlasOptions wraps an atlas with an explicit algorithm configuration
// (used by evaluations to run ablations).
func FromAtlasOptions(a *atlas.Atlas, opts core.Options) *Client {
	return &Client{
		atlas:        a,
		engine:       core.New(a, opts),
		opts:         opts,
		localCluster: make(map[Prefix]int32),
		tracker:      feedback.NewTracker(feedback.TrackerConfig{}),
	}
}

// FromFlat wraps a compiled flat atlas (e.g. one mmap'd from disk via
// atlas.OpenFlat) with the full iNano configuration. Startup skips the
// map-based build entirely; the mutable atlas is materialized lazily on
// the first ApplyDelta/AddTraceroutes/Atlas call.
func FromFlat(f *atlas.Flat) *Client {
	return FromFlatOptions(f, core.INanoOptions())
}

// FromFlatOptions is FromFlat with an explicit algorithm configuration.
func FromFlatOptions(f *atlas.Flat, opts core.Options) *Client {
	return &Client{
		engine:       core.NewFromFlat(f, opts),
		opts:         opts,
		localCluster: make(map[Prefix]int32),
		tracker:      feedback.NewTracker(feedback.TrackerConfig{}),
	}
}

// Load reads an encoded atlas (as produced by the build server or fetched
// from the swarm).
func Load(r io.Reader) (*Client, error) {
	a, err := atlas.Decode(r)
	if err != nil {
		return nil, err
	}
	return FromAtlas(a), nil
}

// FetchAtlas joins the swarm for the given manifest via a tracker, fetches
// and verifies the atlas, and returns a ready client. This is the library's
// startup path in §5 ("Fetching the Atlas").
func FetchAtlas(ctx context.Context, trackerAddr string, m Manifest) (*Client, error) {
	data, err := swarm.Fetch(ctx, trackerAddr, m)
	if err != nil {
		return nil, fmt.Errorf("inano: fetching atlas: %w", err)
	}
	return Load(bytesReader(data))
}

// Day returns the measurement day of the loaded atlas.
func (c *Client) Day() int {
	return c.engineSnapshot().Day()
}

// Atlas returns the client's atlas in its mutable map-based form. Treat
// it as read-only. For a client started from a flat file this inflates
// the compiled form on first call (and caches the result).
func (c *Client) Atlas() *atlas.Atlas {
	c.mu.RLock()
	a := c.atlas
	c.mu.RUnlock()
	if a != nil {
		return a
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.materializeLocked()
	return c.atlas
}

// materializeLocked ensures c.atlas exists, inflating the engine's
// compiled serving form for flat-started clients. Caller holds c.mu.
func (c *Client) materializeLocked() {
	if c.atlas == nil {
		c.atlas = c.engine.Flat().Inflate()
	}
}

// ApplyDelta applies an encoded daily update, keeping the atlas current
// (§5, "Keeping Atlas Up-to-date"). The update is applied copy-on-write:
// queries in flight keep reading the old snapshot.
func (c *Client) ApplyDelta(r io.Reader) error {
	d, err := atlas.DecodeDelta(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.materializeLocked()
	if d.FromDay != c.atlas.Day {
		return fmt.Errorf("inano: delta is day %d->%d but atlas is day %d", d.FromDay, d.ToDay, c.atlas.Day)
	}
	next := c.atlas.Clone()
	next.Apply(d)
	c.atlas = next
	c.engine = core.New(next, c.opts)
	return nil
}

// FetchDelta fetches an encoded delta from a swarm and applies it.
func (c *Client) FetchDelta(ctx context.Context, trackerAddr string, m Manifest) error {
	data, err := swarm.Fetch(ctx, trackerAddr, m)
	if err != nil {
		return fmt.Errorf("inano: fetching delta: %w", err)
	}
	return c.ApplyDelta(bytesReader(data))
}

// Query predicts forward and reverse paths between hosts and composes
// end-to-end RTT and loss estimates.
func (c *Client) Query(src, dst IP) PathInfo {
	return c.QueryPrefix(netsim.PrefixOf(src), netsim.PrefixOf(dst))
}

// QueryPrefix is Query keyed by /24 prefixes.
func (c *Client) QueryPrefix(src, dst Prefix) PathInfo {
	return c.engineSnapshot().Query(src, dst)
}

// QueryBatch predicts from one source to many destinations — the common
// "rank these candidates for me" shape. Results align with dsts and are
// identical to calling Query(src, d) for each d; per §5 the API accepts
// "batches of arbitrary sizes".
func (c *Client) QueryBatch(src IP, dsts []IP) []PathInfo {
	out, _ := c.QueryBatchContext(context.Background(), src, dsts)
	return out
}

// QueryBatchContext is QueryBatch with cancellation: when ctx expires, the
// remaining prediction-tree builds are abandoned and ctx.Err() returned.
func (c *Client) QueryBatchContext(ctx context.Context, src IP, dsts []IP) ([]PathInfo, error) {
	pairs := make([][2]Prefix, len(dsts))
	for i, d := range dsts {
		pairs[i] = [2]Prefix{netsim.PrefixOf(src), netsim.PrefixOf(d)}
	}
	return c.engineSnapshot().QueryBatch(ctx, pairs)
}

// QueryPairs answers many independent (src, dst) queries, grouping by
// destination tree so shared destinations are computed once. Results align
// with the input order.
func (c *Client) QueryPairs(pairs [][2]IP) []PathInfo {
	out, _ := c.QueryPairsContext(context.Background(), pairs)
	return out
}

// QueryPairsContext is QueryPairs with cancellation.
func (c *Client) QueryPairsContext(ctx context.Context, pairs [][2]IP) ([]PathInfo, error) {
	ps := make([][2]Prefix, len(pairs))
	for i, pr := range pairs {
		ps[i] = [2]Prefix{netsim.PrefixOf(pr[0]), netsim.PrefixOf(pr[1])}
	}
	return c.engineSnapshot().QueryBatch(ctx, ps)
}

// QueryPrefixPairsContext is QueryPairsContext keyed by /24 prefixes.
func (c *Client) QueryPrefixPairsContext(ctx context.Context, pairs [][2]Prefix) ([]PathInfo, error) {
	return c.engineSnapshot().QueryBatch(ctx, pairs)
}

// PairReq is one entry of a per-pair-deadline batch: a (src, dst) prefix
// pair with an optional absolute deadline.
type PairReq = core.PairReq

// QueryReqs answers many queries with *per-pair* deadlines inside one
// batch: a pair whose deadline passes before its prediction trees are
// ready is reported expired (expired[i] true, zero PathInfo) while the
// rest of the batch completes normally — partial results instead of an
// aborted window. ctx cancellation still aborts the whole batch.
func (c *Client) QueryReqs(ctx context.Context, reqs []PairReq) ([]PathInfo, []bool, error) {
	return c.engineSnapshot().QueryBatchPartial(ctx, reqs)
}

// QueryPairsStream answers an unbounded stream of (src, dst) IP pairs,
// yielding one PathInfo per pair in input order without materializing the
// batch: pairs are consumed in windows of `window` entries (<= 0 means
// core.DefaultStreamWindow), so memory stays bounded for million-pair
// streams. The whole stream reads one engine snapshot pinned at call time:
// a delta applied mid-stream never tears an answer, and takes effect for
// streams started afterwards.
//
// The iterator yields (info, nil) per pair; when ctx is cancelled it yields
// one final (zero, ctx.Err()) and stops.
func (c *Client) QueryPairsStream(ctx context.Context, pairs iter.Seq[[2]IP], window int) iter.Seq2[PathInfo, error] {
	return c.QueryPrefixPairsStream(ctx, func(yield func([2]Prefix) bool) {
		for pr := range pairs {
			if !yield([2]Prefix{netsim.PrefixOf(pr[0]), netsim.PrefixOf(pr[1])}) {
				return
			}
		}
	}, window)
}

// QueryPrefixPairsStream is QueryPairsStream keyed by /24 prefixes.
func (c *Client) QueryPrefixPairsStream(ctx context.Context, pairs iter.Seq[[2]Prefix], window int) iter.Seq2[PathInfo, error] {
	return c.Snapshot().QueryStream(ctx, pairs, window)
}

// Snapshot is a pinned view of one engine + atlas version: every call on
// it answers from the same atlas day, even while deltas or traceroute
// merges swap new snapshots into the Client concurrently. Use it when the
// answers and the metadata about them (Day) must be mutually consistent —
// e.g. a serving daemon labelling each response with the day it was
// computed from.
type Snapshot struct {
	e *core.Engine
}

// Snapshot pins the current engine and atlas.
func (c *Client) Snapshot() Snapshot { return Snapshot{e: c.engineSnapshot()} }

// Day returns the measurement day of the pinned atlas.
func (s Snapshot) Day() int { return s.e.Day() }

// Query answers one bidirectional query on the pinned snapshot.
func (s Snapshot) Query(src, dst IP) PathInfo {
	return s.e.Query(netsim.PrefixOf(src), netsim.PrefixOf(dst))
}

// QueryBatch answers many prefix pairs on the pinned snapshot (see
// Client.QueryPrefixPairsContext).
func (s Snapshot) QueryBatch(ctx context.Context, pairs [][2]Prefix) ([]PathInfo, error) {
	return s.e.QueryBatch(ctx, pairs)
}

// QueryStream streams prefix-pair answers on the pinned snapshot (see
// Client.QueryPrefixPairsStream).
func (s Snapshot) QueryStream(ctx context.Context, pairs iter.Seq[[2]Prefix], window int) iter.Seq2[PathInfo, error] {
	return s.e.QueryStream(ctx, pairs, window)
}

// QueryReqs answers a per-pair-deadline batch on the pinned snapshot (see
// Client.QueryReqs).
func (s Snapshot) QueryReqs(ctx context.Context, reqs []PairReq) ([]PathInfo, []bool, error) {
	return s.e.QueryBatchPartial(ctx, reqs)
}

// StreamBatch is a reusable windowed batch runner bound to one pinned
// snapshot — the QueryReqs contract with zero steady-state allocations
// per window (see core.StreamBatch). noASPaths skips AS-path derivation
// on every answer, for callers that never serialize them.
type StreamBatch = core.StreamBatch

// StreamBatch returns a windowed batch runner pinned to this snapshot.
func (s Snapshot) StreamBatch(noASPaths bool) *StreamBatch {
	return s.e.NewStreamBatch(noASPaths)
}

// AttachmentCluster returns the attachment cluster of a prefix in the
// pinned atlas — the identity feedback attribution and upstream
// observation ingest key on. ok is false when the atlas cannot place the
// prefix.
func (s Snapshot) AttachmentCluster(p Prefix) (int32, bool) {
	cl, ok := s.e.AttachmentCluster(p)
	return int32(cl), ok
}

// HopCluster places a traceroute hop interface in the pinned atlas's
// cluster space: the interface-prefix table first (infrastructure /24s
// observed by the build), then the end-host attachment table. The
// upstream observation ingest clusterizes uploaded hop lists through it.
// ok is false when the atlas has never seen the hop's /24.
func (s Snapshot) HopCluster(ip IP) (int32, bool) {
	cl, ok := s.e.HopCluster(netsim.PrefixOf(ip))
	return int32(cl), ok
}

// CacheStats reports the current engine's prediction-tree cache counters
// (hits, misses, Dijkstra builds, trees resident) — the observability hook
// behind inanod's /metrics and /debug/stats. Counters reset when a delta
// or traceroute merge swaps in a new engine.
func (c *Client) CacheStats() core.CacheStats {
	return c.engineSnapshot().CacheStats()
}

// PredictForward predicts only the one-way path from src to dst.
func (c *Client) PredictForward(src, dst Prefix) Prediction {
	return c.engineSnapshot().PredictForward(src, dst)
}

// PredictForwardBatch predicts the one-way path for every (src, dst) pair,
// grouped by destination tree and fanned across workers. Results align
// with the input order.
func (c *Client) PredictForwardBatch(ctx context.Context, pairs [][2]Prefix) ([]Prediction, error) {
	return c.engineSnapshot().PredictBatch(ctx, pairs)
}

// engineSnapshot pins the current engine; the snapshot stays valid (over
// its own atlas) even if a delta swaps in a new engine concurrently.
func (c *Client) engineSnapshot() *core.Engine {
	c.mu.RLock()
	e := c.engine
	c.mu.RUnlock()
	return e
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

module inano

go 1.24

package inano

import (
	"context"
	"time"

	"inano/internal/feedback"
	"inano/internal/netsim"
)

// Measurement feedback loop (§4.3.1, §5): the client compares what it
// predicted against what applications actually observed, aggregates the
// error per destination cluster, and spends a small budget of corrective
// traceroutes on the worst-mispredicted destinations. See
// internal/feedback for the aggregation and scheduling machinery.

// Re-exported feedback types, so applications need no internal imports.
type (
	// FeedbackSample is the outcome of recording one observation.
	FeedbackSample = feedback.Sample
	// FeedbackStats summarizes the client's error tracker.
	FeedbackStats = feedback.Stats
	// CorrectorConfig tunes the corrective scheduler.
	CorrectorConfig = feedback.Config
	// CorrectorRound reports one corrective round.
	CorrectorRound = feedback.Round
	// Prober issues one corrective traceroute.
	Prober = feedback.Prober
	// UpstreamObservation is one corrective observation shared with the
	// build server.
	UpstreamObservation = feedback.UpstreamObservation
	// Uploader batches and ships corrective observations upstream.
	Uploader = feedback.Uploader
	// UploaderConfig tunes upstream observation shipping.
	UploaderConfig = feedback.UploaderConfig
)

// NewUploader builds an uploader shipping this host's corrective
// observations to a build server's POST /v1/observations endpoint — the
// upstream half of the measurement loop (§5 both ways: the aggregate of
// everyone's corrections comes back to every peer in the next daily
// delta). Wire it into a corrector through the Observe hook:
//
//	up := inano.NewUploader(inano.UploaderConfig{URL: buildURL + "/v1/observations"})
//	cor := client.NewCorrector(prober, inano.CorrectorConfig{Observe: up.Observe})
//	// ... periodically: up.Flush(ctx)
//
// Sharing is strictly opt-in: a client that never constructs an uploader
// shares nothing.
func NewUploader(cfg UploaderConfig) *Uploader { return feedback.NewUploader(cfg) }

// ObserveRTT reports an application-observed round-trip time for traffic
// from src to dst and returns how it compares with the current
// prediction. The error is attributed to dst's attachment cluster in the
// client's error tracker, feeding the corrective scheduler; observations
// for destinations unknown to the atlas are scored (Predicted=false,
// Err=1) but untracked, since a corrective traceroute could not patch
// them anyway.
func (c *Client) ObserveRTT(src, dst IP, observedMS float64) FeedbackSample {
	s, _ := c.ObserveRTTContext(context.Background(), src, dst, observedMS)
	return s
}

// ObserveRTTContext is ObserveRTT with cancellation: scoring an
// observation may build prediction trees for a cold destination, and ctx
// bounds that work (a serving daemon must not burn unbounded CPU on a
// hostile report naming thousands of cold destinations). On cancellation
// the observation is dropped and ctx.Err() returned.
func (c *Client) ObserveRTTContext(ctx context.Context, src, dst IP, observedMS float64) (FeedbackSample, error) {
	e := c.engineSnapshot()
	sp, dp := netsim.PrefixOf(src), netsim.PrefixOf(dst)
	infos, err := e.QueryBatch(ctx, [][2]Prefix{{sp, dp}})
	if err != nil {
		return FeedbackSample{}, err
	}
	info := infos[0]
	cl, ok := e.AttachmentCluster(dp)
	cluster := int32(-1)
	if ok {
		cluster = int32(cl)
	}
	return c.tracker.Record(cluster, sp, dp, info.RTTMS, observedMS, info.Found, time.Now()), nil
}

// FeedbackTracker exposes the client's error tracker (for serving-side
// scheduling and introspection).
func (c *Client) FeedbackTracker() *feedback.Tracker { return c.tracker }

// FeedbackStats summarizes the client's tracked prediction error.
func (c *Client) FeedbackStats() FeedbackStats { return c.tracker.Stats() }

// NewCorrector wires a corrective scheduler over this client: worst
// tracked destinations -> prober traceroutes -> AddTraceroutes (atlas
// patched copy-on-write, so queries in flight are never torn). Drive it
// with RunOnce for one round or Run for the background loop:
//
//	cor := client.NewCorrector(prober, inano.CorrectorConfig{Budget: 8})
//	go cor.Run(ctx, nil)
func (c *Client) NewCorrector(p Prober, cfg CorrectorConfig) *feedback.Corrector {
	if cfg.Predict == nil {
		cfg.Predict = func(src, dst Prefix) (float64, bool) {
			info := c.QueryPrefix(src, dst)
			return info.RTTMS, info.Found
		}
	}
	return feedback.NewCorrector(c.tracker, p, func(trs []feedback.Traceroute) int {
		return c.AddTraceroutes(trs)
	}, cfg)
}

// CorrectOnce runs a single corrective round with the given prober and
// configuration — the one-shot shape of the loop for callers that manage
// their own cadence.
func (c *Client) CorrectOnce(ctx context.Context, p Prober, cfg CorrectorConfig) CorrectorRound {
	return c.NewCorrector(p, cfg).RunOnce(ctx)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> content under a fresh
// temp dir and returns its root.
func writeTree(t *testing.T, tree map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range tree {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runIn runs the check from inside root so link targets resolve the same
// way they do in CI (which runs from the repo root).
func runIn(t *testing.T, root string, args ...string) *checkResult {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	res, err := run(args)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCleanTreePasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":     "# Top\n\nSee the [guide](docs/guide.md#setup) and [site](https://example.com).\n",
		"docs/guide.md": "# Guide\n\n## Setup\n\nBack to [README](../README.md).\n",
	})
	res := runIn(t, root, "README.md", "docs")
	if !res.ok() {
		t.Fatalf("clean tree reported problems: broken=%v orphans=%v", res.Broken, res.Orphans)
	}
	if res.Checked != 3 || res.Files != 2 {
		t.Fatalf("checked=%d files=%d, want 3 links across 2 files", res.Checked, res.Files)
	}
}

func TestBrokenLinkAndAnchor(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "[gone](missing.md)\n[bad anchor](guide.md#nope)\n",
		"guide.md":  "# Guide\n",
	})
	res := runIn(t, root, "README.md", "guide.md")
	if len(res.Broken) != 2 {
		t.Fatalf("broken = %v, want 2 entries", res.Broken)
	}
	if !strings.Contains(res.Broken[0], "missing.md") || !strings.Contains(res.Broken[1], "#nope") {
		t.Fatalf("broken messages don't name the failures: %v", res.Broken)
	}
}

func TestOrphanPageDetected(t *testing.T) {
	// linked.md is reachable from the root; lost.md is walked but nothing
	// links to it — the rot doccheck exists to catch.
	root := writeTree(t, map[string]string{
		"README.md":      "[linked](docs/linked.md)\n",
		"docs/linked.md": "# Linked\n",
		"docs/lost.md":   "# Lost\n",
	})
	res := runIn(t, root, "README.md", "docs")
	if len(res.Orphans) != 1 || !strings.Contains(res.Orphans[0], filepath.Join("docs", "lost.md")) {
		t.Fatalf("orphans = %v, want exactly docs/lost.md", res.Orphans)
	}
}

func TestTransitiveReachabilityCountsAsLinked(t *testing.T) {
	// root -> a -> b: b has no direct link from the root but is not an
	// orphan, because a chain reaches it.
	root := writeTree(t, map[string]string{
		"README.md": "[a](docs/a.md)\n",
		"docs/a.md": "[b](b.md)\n",
		"docs/b.md": "# B\n",
	})
	res := runIn(t, root, "README.md", "docs")
	if len(res.Orphans) != 0 {
		t.Fatalf("transitively linked page reported as orphan: %v", res.Orphans)
	}
}

func TestCodeFenceLinksSkipped(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "Real: [ok](guide.md)\n\n```\n[example](does-not-exist.md)\n```\n",
		"guide.md":  "# Guide\n",
	})
	res := runIn(t, root, "README.md", "guide.md")
	if !res.ok() {
		t.Fatalf("fenced example link was validated: %v", res.Broken)
	}
	if res.Checked != 1 {
		t.Fatalf("checked = %d, want 1 (the fenced link skipped)", res.Checked)
	}
}

func TestUnreachableWalk(t *testing.T) {
	links := map[string][]string{
		"root.md": {"a.md"},
		"a.md":    {"b.md", "a.md"}, // self-link must not loop the BFS
	}
	got := unreachable([]string{"root.md"}, []string{"a.md", "b.md", "c.md"}, links)
	if len(got) != 1 || got[0] != "c.md" {
		t.Fatalf("unreachable = %v, want [c.md]", got)
	}
}

func TestAnchorOf(t *testing.T) {
	cases := map[string]string{
		"Plain Heading":            "plain-heading",
		"With `code` and *stars*":  "with-code-and-stars",
		"Punct! (drops)  spaces":   "punct-drops--spaces",
		"under_scores-and-hyphens": "under_scores-and-hyphens",
	}
	for in, want := range cases {
		if got := anchorOf(in); got != want {
			t.Errorf("anchorOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMdTarget(t *testing.T) {
	if to, ok := mdTarget("docs/a.md", "../README.md#intro"); !ok || to != "README.md" {
		t.Fatalf("mdTarget = %q, %v; want README.md, true", to, ok)
	}
	for _, target := range []string{"https://example.com/x.md", "#local-anchor", "diagram.svg"} {
		if _, ok := mdTarget("a.md", target); ok {
			t.Errorf("mdTarget(%q) resolved; want external/anchor/non-md skipped", target)
		}
	}
}

// Command doccheck keeps the repository's markdown honest: it walks the
// given files and directories, extracts every [text](target) link from
// the .md files, and fails when a relative link points at a file that
// does not exist or an anchor no heading generates. It also fails on
// orphan pages: a .md file found by walking a directory argument that no
// chain of links from the explicitly named root files (README.md etc.)
// reaches — a page nobody can navigate to has already rotted, whatever
// its content says. External links (http, https, mailto) are not fetched
// — CI must not flake on the internet — but everything the repository
// can verify about itself is verified on every push, so the docs cannot
// rot silently.
//
// Usage:
//
//	doccheck README.md ROADMAP.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings, the only style the repo uses.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so example links inside them are
// not validated.
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

// checkResult is what one doccheck run found.
type checkResult struct {
	// Checked counts every link examined; Files every markdown file read.
	Checked, Files int
	// Broken lists resolution failures ("file: broken link ..."); Orphans
	// lists dir-walked pages no link chain from a root reaches.
	Broken, Orphans []string
}

func (r *checkResult) ok() bool { return len(r.Broken) == 0 && len(r.Orphans) == 0 }

// run is the whole check: args are markdown files (reachability roots) and
// directories (whose .md files must all be reachable from the roots).
func run(args []string) (*checkResult, error) {
	files, roots, walked, err := collectFiles(args)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no markdown files given")
	}
	res := &checkResult{Files: len(files)}
	// links[file] lists the cleaned paths of markdown files `file` links
	// to — the edges of the reachability walk below.
	links := make(map[string][]string)
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		body := codeFenceRe.ReplaceAllString(string(b), "")
		for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
			target := m[1]
			res.Checked++
			if err := checkLink(f, target); err != nil {
				res.Broken = append(res.Broken, fmt.Sprintf("%s: %v", f, err))
				continue
			}
			if to, ok := mdTarget(f, target); ok {
				links[filepath.Clean(f)] = append(links[filepath.Clean(f)], to)
			}
		}
	}
	for _, f := range unreachable(roots, walked, links) {
		res.Orphans = append(res.Orphans, fmt.Sprintf(
			"%s: orphan page (no link chain from %s reaches it)", f, strings.Join(roots, ", ")))
	}
	return res, nil
}

// collectFiles splits the arguments into the file set to scan, the
// explicitly named reachability roots, and the dir-discovered pages that
// must be reachable.
func collectFiles(args []string) (files, roots, walked []string, err error) {
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, nil, nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			roots = append(roots, filepath.Clean(arg))
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
				walked = append(walked, filepath.Clean(p))
			}
			return err
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return files, roots, walked, nil
}

// unreachable BFSes from the root files over the link graph and returns
// the walked pages no chain of links reaches, in input order.
func unreachable(roots, walked []string, links map[string][]string) []string {
	reached := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if reached[f] {
			continue
		}
		reached[f] = true
		queue = append(queue, links[f]...)
	}
	var orphans []string
	for _, f := range walked {
		if !reached[f] {
			orphans = append(orphans, f)
		}
	}
	return orphans
}

func main() {
	res, err := run(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	for _, msg := range res.Broken {
		fmt.Fprintf(os.Stderr, "doccheck: %s\n", msg)
	}
	for _, msg := range res.Orphans {
		fmt.Fprintf(os.Stderr, "doccheck: %s\n", msg)
	}
	fmt.Printf("doccheck: %d links across %d files", res.Checked, res.Files)
	if !res.ok() {
		fmt.Printf(", %d broken, %d orphaned\n", len(res.Broken), len(res.Orphans))
		os.Exit(1)
	}
	fmt.Println(", all resolvable and reachable")
}

// mdTarget resolves a link to the cleaned path of the markdown file it
// points at; ok is false for external links, anchors-only links, and
// non-markdown targets.
func mdTarget(from, target string) (string, bool) {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "", false
	}
	path, _, _ := strings.Cut(target, "#")
	if path == "" || !strings.HasSuffix(path, ".md") {
		return "", false
	}
	return filepath.Clean(filepath.Join(filepath.Dir(from), path)), true
}

// checkLink validates one link target relative to the file containing it.
func checkLink(from, target string) error {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return nil // external: not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	if path == "" {
		// Same-file anchor.
		return checkAnchor(from, frag)
	}
	resolved := filepath.Join(filepath.Dir(from), path)
	st, err := os.Stat(resolved)
	if err != nil {
		return fmt.Errorf("broken link %q: %v", target, err)
	}
	if frag != "" {
		if st.IsDir() || !strings.HasSuffix(resolved, ".md") {
			return fmt.Errorf("link %q carries an anchor into a non-markdown target", target)
		}
		return checkAnchor(resolved, frag)
	}
	return nil
}

// checkAnchor verifies a #fragment against the GitHub-style anchors the
// target file's headings generate.
func checkAnchor(file, frag string) error {
	if frag == "" {
		return nil
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	// Strip fenced code blocks first: a `# comment` inside an example is
	// not a heading and generates no anchor on the rendered page.
	body := codeFenceRe.ReplaceAllString(string(b), "")
	for _, m := range headingRe.FindAllStringSubmatch(body, -1) {
		if anchorOf(m[1]) == strings.ToLower(frag) {
			return nil
		}
	}
	return fmt.Errorf("broken anchor #%s (no matching heading in %s)", frag, file)
}

// anchorOf reproduces GitHub's heading-to-anchor rule closely enough for
// this repository: lowercase, punctuation dropped, spaces to hyphens.
func anchorOf(h string) string {
	// Inline code and links inside headings keep their text.
	h = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(h)
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(2)
}

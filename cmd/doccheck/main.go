// Command doccheck keeps the repository's markdown honest: it walks the
// given files and directories, extracts every [text](target) link from
// the .md files, and fails when a relative link points at a file that
// does not exist or an anchor no heading generates. External links
// (http, https, mailto) are not fetched — CI must not flake on the
// internet — but everything the repository can verify about itself is
// verified on every push, so the docs cannot rot silently.
//
// Usage:
//
//	doccheck README.md ROADMAP.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings, the only style the repo uses.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so example links inside them are
// not validated.
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

func main() {
	var files []string
	for _, arg := range os.Args[1:] {
		st, err := os.Stat(arg)
		if err != nil {
			fatal(err)
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no markdown files given"))
	}
	broken := 0
	checked := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		body := codeFenceRe.ReplaceAllString(string(b), "")
		for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
			target := m[1]
			checked++
			if err := checkLink(f, target); err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", f, err)
				broken++
			}
		}
	}
	fmt.Printf("doccheck: %d links across %d files", checked, len(files))
	if broken > 0 {
		fmt.Printf(", %d broken\n", broken)
		os.Exit(1)
	}
	fmt.Println(", all resolvable")
}

// checkLink validates one link target relative to the file containing it.
func checkLink(from, target string) error {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return nil // external: not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	if path == "" {
		// Same-file anchor.
		return checkAnchor(from, frag)
	}
	resolved := filepath.Join(filepath.Dir(from), path)
	st, err := os.Stat(resolved)
	if err != nil {
		return fmt.Errorf("broken link %q: %v", target, err)
	}
	if frag != "" {
		if st.IsDir() || !strings.HasSuffix(resolved, ".md") {
			return fmt.Errorf("link %q carries an anchor into a non-markdown target", target)
		}
		return checkAnchor(resolved, frag)
	}
	return nil
}

// checkAnchor verifies a #fragment against the GitHub-style anchors the
// target file's headings generate.
func checkAnchor(file, frag string) error {
	if frag == "" {
		return nil
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	// Strip fenced code blocks first: a `# comment` inside an example is
	// not a heading and generates no anchor on the rendered page.
	body := codeFenceRe.ReplaceAllString(string(b), "")
	for _, m := range headingRe.FindAllStringSubmatch(body, -1) {
		if anchorOf(m[1]) == strings.ToLower(frag) {
			return nil
		}
	}
	return fmt.Errorf("broken anchor #%s (no matching heading in %s)", frag, file)
}

// anchorOf reproduces GitHub's heading-to-anchor rule closely enough for
// this repository: lowercase, punctuation dropped, spaces to hyphens.
func anchorOf(h string) string {
	// Inline code and links inside headings keep their text.
	h = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(h)
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(2)
}

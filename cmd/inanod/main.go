// Command inanod is the iNano query daemon: it loads a compact atlas (from
// a file or the P2P swarm), serves path-prediction queries over HTTP, keeps
// the atlas fresh by hot-applying daily deltas, and exposes Prometheus
// metrics — the always-on serving shape of the paper's §5 client, grown
// into a service any peer can run.
//
// Endpoints: /v1/query, /v1/batch (streamed NDJSON), /v1/rank,
// /v1/feedback (observation reports), /v1/relay (relay selection),
// /healthz, /metrics, /debug/stats. See internal/server for the API
// contract.
//
// Usage:
//
//	inanod -atlas atlas.bin
//	inanod -atlas atlas.bin -listen 127.0.0.1:7353 -deadline 2s
//	inanod -atlas atlas.bin -watch-delta delta.bin -watch-interval 5s
//	inanod -fetch-manifest atlas.manifest -delta-manifest delta.manifest
//	inanod -atlas atlas.bin -probe-sim tiny:42 -correct-interval 30s -correct-budget 8
//	inanod -atlas atlas.bin -aggregate -obs-snapshot obs.json          (build server)
//	inanod -atlas atlas.bin -probe-sim tiny:42 \
//	       -upload-observations http://build:7353/v1/observations      (sharing client)
//
// With -probe-sim the daemon closes the measurement feedback loop:
// observations POSTed to /v1/feedback are aggregated per destination, and
// a background corrector spends -correct-budget traceroutes per
// -correct-interval on the worst mispredictions, probing the named
// synthetic world (scale:seed must match the served atlas's inano-build
// invocation). Real deployments plug a real traceroute prober in via
// server.RunCorrector.
//
// The loop's upstream half (§5 both ways): with -upload-observations the
// daemon opts in to sharing its corrective observations with a build
// server; with -aggregate it *is* the build server's ingest — clients'
// observations POSTed to /v1/observations are validated against the
// serving atlas, robustly aggregated (median per destination prefix
// across reporting source clusters), and periodically snapshotted to
// -obs-snapshot, where inano-build -observations folds them into the next
// daily delta for the whole swarm.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM, draining in-flight
// requests, and prints "inanod: shutdown complete" when done.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/server"
	"inano/internal/trace"
	"inano/sim"
)

func main() {
	atlasPath := flag.String("atlas", "", "atlas file produced by inano-build")
	atlasFlat := flag.String("atlas-flat", "", "compiled flat atlas (inano-build -flat): mmap'd read-only, so startup cost is O(1) in atlas size and N replicas share the page cache (alternative to -atlas)")
	flatValidate := flag.Bool("flat-validate", true, "structurally validate a -atlas-flat file at startup (the checksum is always verified)")
	fetchManifest := flag.String("fetch-manifest", "", "fetch the initial atlas from the swarm via this manifest file (alternative to -atlas)")
	listen := flag.String("listen", "127.0.0.1:7353", "HTTP listen address (port 0 picks one)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = uncapped)")
	window := flag.Int("window", 0, "batch stream window in pairs (0 = default)")
	watchDelta := flag.String("watch-delta", "", "delta file to poll and hot-apply when it changes")
	watchInterval := flag.Duration("watch-interval", 5*time.Second, "delta file poll interval")
	deltaManifest := flag.String("delta-manifest", "", "swarm manifest file to poll for daily deltas")
	manifestInterval := flag.Duration("manifest-interval", 30*time.Second, "delta manifest poll interval")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long to drain in-flight requests on shutdown")
	feedbackRate := flag.Float64("feedback-rate", 0, "per-source /v1/feedback observations per second (0 = default 64, negative = unlimited)")
	feedbackBurst := flag.Int("feedback-burst", 0, "per-source /v1/feedback burst (0 = default 256)")
	probeSim := flag.String("probe-sim", "", "enable the corrective prober against a synthetic world, as scale:seed (e.g. tiny:42; must match the atlas build)")
	correctInterval := flag.Duration("correct-interval", time.Minute, "corrective round interval")
	correctBudget := flag.Int("correct-budget", 8, "corrective traceroutes per round")
	correctMinError := flag.Float64("correct-min-error", 0.10, "EWMA error below which a destination is never probed")
	aggregate := flag.Bool("aggregate", false, "enable POST /v1/observations: aggregate clients' corrective observations for the next build")
	obsSnapshot := flag.String("obs-snapshot", "", "write the observation aggregate to this file (with -aggregate; inano-build -observations folds it into the next delta)")
	obsSnapshotInterval := flag.Duration("obs-snapshot-interval", time.Minute, "observation snapshot write interval")
	obsRate := flag.Float64("obs-rate", 0, "per-source /v1/observations observations per second (0 = default 8, negative = unlimited)")
	obsBurst := flag.Int("obs-burst", 0, "per-source /v1/observations burst (0 = default 64)")
	uploadURL := flag.String("upload-observations", "", "opt in to sharing this daemon's corrective observations: a build server's /v1/observations URL")
	uploadInterval := flag.Duration("upload-interval", time.Minute, "observation upload flush interval")
	peerID := flag.String("peer-id", "", "cluster peer identity, echoed in /healthz and the X-Inano-Peer response header")
	batchFast := flag.Bool("batch-fastpath", true, "serve canonical /v1/batch lines through the zero-allocation parser/encoder (answers are byte-identical either way; false is an operational escape hatch)")
	drain := flag.Bool("drain", false, "on SIGTERM, drain instead of hard shutdown: /healthz turns 503 so a router pulls this replica from the ring, in-flight requests finish, new serving requests are refused, and the process exits 0 once idle")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	var client *inano.Client
	if *atlasFlat != "" {
		if *atlasPath != "" || *fetchManifest != "" {
			fatal(errors.New("-atlas-flat cannot be combined with -atlas or -fetch-manifest"))
		}
		ff, err := atlas.OpenFlat(*atlasFlat, *flatValidate)
		if err != nil {
			fatal(err)
		}
		// The mapping lives as long as the daemon; process exit unmaps.
		client = inano.FromFlat(ff.Flat)
		logf("inanod: flat atlas day %d mapped: %d clusters, %d links, %d prefixes",
			ff.Day, ff.NumClusters, ff.NumEdges(), len(ff.PrefixClKeys))
	} else {
		var err error
		client, err = loadClient(*atlasPath, *fetchManifest)
		if err != nil {
			fatal(err)
		}
		a := client.Atlas()
		logf("inanod: atlas day %d loaded: %d clusters, %d links, %d prefixes",
			a.Day, a.NumClusters, len(a.Links), len(a.PrefixCluster))
	}

	var agg *feedback.Aggregator
	if *aggregate {
		agg = feedback.NewAggregator(feedback.AggregatorConfig{})
	} else if *obsSnapshot != "" {
		fatal(errors.New("-obs-snapshot requires -aggregate"))
	}
	s := server.New(server.Config{
		Client:           client,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		StreamWindow:     *window,
		FeedbackRate:     *feedbackRate,
		FeedbackBurst:    *feedbackBurst,
		Aggregator:       agg,
		ObservationRate:  *obsRate,
		ObservationBurst: *obsBurst,
		PeerID:           *peerID,
		Logf:             logf,

		DisableBatchFastPath: !*batchFast,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// Parsed by the smoke test and ops tooling: keep this line stable.
	fmt.Printf("inanod: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var watchers sync.WaitGroup
	if *watchDelta != "" {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			s.WatchDeltaFile(ctx, *watchDelta, *watchInterval)
		}()
	}
	if *deltaManifest != "" {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			s.WatchManifest(ctx, *deltaManifest, *manifestInterval)
		}()
	}
	// Upstream sharing (opt-in): the corrector's successful traceroutes
	// queue into an uploader that periodically flushes to the build server.
	var uploader *inano.Uploader
	if *uploadURL != "" {
		uploader = inano.NewUploader(inano.UploaderConfig{URL: *uploadURL})
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			t := time.NewTicker(*uploadInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					// Final flush so a draining daemon ships what it has.
					flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					if n, err := uploader.Flush(flushCtx); err != nil {
						logf("inanod: final observation flush: %v", err)
					} else if n > 0 {
						logf("inanod: shipped %d observations upstream at shutdown", n)
					}
					cancel()
					return
				case <-t.C:
					if n, err := uploader.Flush(ctx); err != nil {
						logf("inanod: observation upload: %v", err)
					} else if n > 0 {
						logf("inanod: shipped %d observations upstream", n)
					}
				}
			}
		}()
	}
	if *probeSim != "" {
		prober, err := simProber(*probeSim, client.Day)
		if err != nil {
			fatal(err)
		}
		cfg := feedback.Config{
			Budget:   *correctBudget,
			Interval: *correctInterval,
			MinError: *correctMinError,
		}
		if uploader != nil {
			cfg.Observe = uploader.Observe
		}
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			s.RunCorrector(ctx, prober, cfg)
		}()
	}
	if agg != nil && *obsSnapshot != "" {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			s.RunObservationSnapshots(ctx, *obsSnapshot, *obsSnapshotInterval)
		}()
	}

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	if *drain {
		// Cluster rotation: flip /healthz to 503 "draining" so the router's
		// next health pass pulls this replica from the ring, keep serving
		// what is already in flight, refuse new serving requests, and only
		// then stop the listener. The grace period bounds the wait.
		s.StartDraining()
		deadline := time.Now().Add(*shutdownGrace)
		for s.InFlight() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if n := s.InFlight(); n > 0 {
			logf("inanod: drain grace %v expired with %d requests in flight", *shutdownGrace, n)
		} else {
			logf("inanod: drained: no requests in flight")
		}
	} else {
		logf("inanod: signal received; draining for up to %v", *shutdownGrace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logf("inanod: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("inanod: serve: %v", err)
	}
	watchers.Wait()
	fmt.Println("inanod: shutdown complete")
}

// loadClient builds the serving client from a local atlas file or, when
// fetchManifest is set, by fetching the atlas from the swarm (§5's startup
// path).
func loadClient(atlasPath, fetchManifest string) (*inano.Client, error) {
	switch {
	case atlasPath != "" && fetchManifest != "":
		return nil, errors.New("use either -atlas or -fetch-manifest, not both")
	case atlasPath != "":
		f, err := os.Open(atlasPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return inano.Load(f)
	case fetchManifest != "":
		addr, m, err := server.ReadManifest(fetchManifest)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		return inano.FetchAtlas(ctx, addr, m)
	default:
		return nil, errors.New("one of -atlas or -fetch-manifest is required")
	}
}

// simProber rebuilds the synthetic world named by spec ("scale:seed") and
// returns a prober measuring it on the serving atlas's *current* day —
// looked up per probe, so a hot delta reload that advances the serving
// day moves the probes to the new day's ground truth with it. The spec
// must match the inano-build invocation that produced the atlas, or the
// probes will observe a different Internet.
func simProber(spec string, day func() int) (feedback.Prober, error) {
	scaleName, seedStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bad -probe-sim %q: want scale:seed", spec)
	}
	var scale sim.Scale
	switch scaleName {
	case "tiny":
		scale = sim.Tiny
	case "medium":
		scale = sim.Medium
	case "eval":
		scale = sim.Eval
	default:
		return nil, fmt.Errorf("bad -probe-sim scale %q", scaleName)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -probe-sim seed %q: %v", seedStr, err)
	}
	w := sim.NewWorld(scale, seed)
	return feedback.ProberFunc(func(ctx context.Context, src, dst inano.Prefix) (feedback.Traceroute, error) {
		m := trace.NewMeter(w.Sim.Day(day()), trace.DefaultOptions())
		return feedback.SimProber{Meter: m}.Probe(ctx, src, dst)
	}), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inanod:", err)
	os.Exit(1)
}

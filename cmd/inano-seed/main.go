// Command inano-seed serves an atlas file into a peer-to-peer swarm: it
// starts a tracker (unless one is given), seeds the file, and writes the
// manifest other clients need to fetch it — the dissemination side of §5.
//
// Usage:
//
//	inano-seed -atlas atlas.bin -manifest atlas.manifest
//	inano-fetchers then use swarm.Fetch / inano.FetchAtlas with the manifest.
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"inano/internal/swarm"
)

func main() {
	atlasPath := flag.String("atlas", "atlas.bin", "atlas file to seed")
	manifestPath := flag.String("manifest", "atlas.manifest", "manifest output file")
	trackerAddr := flag.String("tracker", "", "existing tracker address (empty = start one)")
	listen := flag.String("listen", "127.0.0.1:0", "tracker listen address when starting one")
	flag.Parse()

	data, err := os.ReadFile(*atlasPath)
	if err != nil {
		fatal(err)
	}
	m := swarm.NewManifest(*atlasPath, data, swarm.ChunkSize)

	addr := *trackerAddr
	if addr == "" {
		tr, err := swarm.StartTracker(*listen)
		if err != nil {
			fatal(err)
		}
		defer tr.Close()
		addr = tr.Addr()
		fmt.Printf("tracker listening on %s\n", addr)
	}

	mf, err := os.Create(*manifestPath)
	if err != nil {
		fatal(err)
	}
	enc := gob.NewEncoder(mf)
	if err := enc.Encode(addr); err != nil {
		fatal(err)
	}
	if err := enc.Encode(&m); err != nil {
		fatal(err)
	}
	if err := mf.Close(); err != nil {
		fatal(err)
	}

	seed, err := swarm.StartSeed(addr, m, data)
	if err != nil {
		fatal(err)
	}
	defer seed.Close()
	fmt.Printf("seeding %s (%d bytes, %d chunks) as %s; manifest written to %s\n",
		*atlasPath, len(data), m.NumChunks(), seed.Addr(), *manifestPath)
	fmt.Println("press ctrl-c to stop")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-seed:", err)
	os.Exit(1)
}

// Command benchgate compares `go test -bench` output against a checked-in
// baseline (BENCH_BASELINE.json) and fails on regressions — the CI gate
// that keeps the batch query path fast.
//
// It reads benchmark output (multiple -count runs of each benchmark),
// takes the per-benchmark median ns/op (benchstat's robust central
// tendency), and applies two kinds of rules from the baseline:
//
//   - absolute: a benchmark's median may not exceed its baseline ns/op by
//     more than max_regress (e.g. 0.20 = +20%). Because absolute timings
//     shift with runner hardware, the baseline may name a calibration
//     benchmark: the observed/baseline ratio of the calibration benchmark
//     rescales every absolute threshold, cancelling machine speed.
//   - ratio: the median of one benchmark divided by another must stay
//     above min_ratio — machine-independent invariants like "the shared-
//     destination batch beats the sequential baseline".
//
// Usage:
//
//	go test -run '^$' -bench B -benchtime 1x -count 6 . | tee bench.txt
//	benchgate -baseline BENCH_BASELINE.json -in bench.txt -report report.txt
//	benchgate -baseline BENCH_BASELINE.json -in bench.txt -update   # refresh baselines
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in gate configuration plus recorded timings.
type Baseline struct {
	// Note documents where the recorded numbers came from.
	Note string `json:"note"`
	// Calibration names a benchmark whose observed/baseline ratio rescales
	// absolute thresholds to the current machine ("" = no rescaling). Its
	// own entry is never gated.
	Calibration string `json:"calibration,omitempty"`
	// Benchmarks maps benchmark name (without -N suffix) to its gate.
	Benchmarks map[string]*BenchGate `json:"benchmarks"`
	// Ratios are machine-independent invariants between two benchmarks.
	Ratios []RatioGate `json:"ratios,omitempty"`
}

// BenchGate bounds one benchmark's regression.
type BenchGate struct {
	NsPerOp float64 `json:"ns_per_op"`
	// MaxRegress is the tolerated fractional slowdown (0 = default 0.20).
	MaxRegress float64 `json:"max_regress,omitempty"`
}

// RatioGate requires median(Slow)/median(Fast) >= MinRatio.
type RatioGate struct {
	Name     string  `json:"name"`
	Fast     string  `json:"fast"`
	Slow     string  `json:"slow"`
	MinRatio float64 `json:"min_ratio"`
	// MinProcs skips the gate (with a note) when the benchmarks ran with
	// fewer procs — for ratios that only hold given parallelism, like
	// "the fanned-out batch beats the sequential baseline", which is
	// pure noise on a 1-core dev container.
	MinProcs int `json:"min_procs,omitempty"`
}

// benchLine matches one result line, e.g.
// "BenchmarkQueryBatch_SharedDestination-8   	     100	   1234567 ns/op	..."
// The -N suffix is the GOMAXPROCS the benchmark ran with.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op`)

// parseBench collects all ns/op samples per benchmark name, plus the
// GOMAXPROCS the benchmarks ran with (0 if absent).
func parseBench(r io.Reader) (map[string][]float64, int, error) {
	samples := make(map[string][]float64)
	procs := 0
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil && p > procs {
				procs = p
			}
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	return samples, procs, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
	inPath := flag.String("in", "-", "benchmark output to check (- = stdin)")
	reportPath := flag.String("report", "", "also write the report to this file")
	update := flag.Bool("update", false, "rewrite the baseline's ns_per_op from the input instead of gating")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	samples, procs, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *update {
		updated := updateBaseline(&base, samples)
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline %s updated (%d of %d gates refreshed)\n", *baselinePath, updated, len(base.Benchmarks))
		return
	}

	var report strings.Builder
	failures := runGate(&base, samples, procs, &report)
	fmt.Print(report.String())
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(report.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gate failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}

// updateBaseline rewrites each gated benchmark's recorded ns_per_op to the
// observed median, returning how many entries were refreshed. Gates whose
// benchmark is absent from the input keep their old numbers: a partial
// bench run must not zero out the rest of the baseline.
func updateBaseline(base *Baseline, samples map[string][]float64) int {
	updated := 0
	for name, g := range base.Benchmarks {
		if xs, ok := samples[name]; ok {
			g.NsPerOp = median(xs)
			updated++
		}
	}
	return updated
}

// runGate evaluates every gate, appends human-readable lines to report,
// and returns the number of failures. procs is the GOMAXPROCS the
// benchmarks ran with (0 = unknown); ratio gates with min_procs skip on
// lesser machines.
func runGate(base *Baseline, samples map[string][]float64, procs int, report *strings.Builder) int {
	failures := 0
	failf := func(format string, args ...any) {
		failures++
		fmt.Fprintf(report, "FAIL "+format+"\n", args...)
	}

	// Machine-speed factor from the calibration benchmark.
	factor := 1.0
	if base.Calibration != "" {
		calBase, okBase := base.Benchmarks[base.Calibration]
		xs, okObs := samples[base.Calibration]
		switch {
		case !okBase || calBase.NsPerOp <= 0:
			failf("calibration %s has no baseline ns_per_op", base.Calibration)
		case !okObs:
			failf("calibration %s missing from benchmark output", base.Calibration)
		default:
			factor = median(xs) / calBase.NsPerOp
			// A wildly different factor means the calibration itself
			// regressed or the runner is incomparable; clamp so absolute
			// gates neither vanish nor become impossible.
			const lo, hi = 0.25, 4.0
			if factor < lo {
				factor = lo
			} else if factor > hi {
				factor = hi
			}
			fmt.Fprintf(report, "calibration %s: machine-speed factor %.2fx\n", base.Calibration, factor)
		}
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := base.Benchmarks[name]
		if name == base.Calibration {
			continue
		}
		xs, ok := samples[name]
		if !ok {
			failf("%s: missing from benchmark output", name)
			continue
		}
		got := median(xs)
		maxRegress := g.MaxRegress
		if maxRegress <= 0 {
			maxRegress = 0.20
		}
		limit := g.NsPerOp * factor * (1 + maxRegress)
		status := "ok  "
		if got > limit {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(report, "%s %s: %.0f ns/op (baseline %.0f, limit %.0f, n=%d)\n",
			status, name, got, g.NsPerOp, limit, len(xs))
	}

	for _, r := range base.Ratios {
		if r.MinProcs > 0 && procs < r.MinProcs {
			// Benchmark names carry a -N suffix only when GOMAXPROCS > 1.
			ranWith := procs
			if ranWith == 0 {
				ranWith = 1
			}
			fmt.Fprintf(report, "skip ratio %s: needs >=%d procs, benchmarks ran with %d\n",
				r.Name, r.MinProcs, ranWith)
			continue
		}
		fast, okF := samples[r.Fast]
		slow, okS := samples[r.Slow]
		if !okF || !okS {
			failf("ratio %s: missing %s or %s in benchmark output", r.Name, r.Fast, r.Slow)
			continue
		}
		ratio := median(slow) / median(fast)
		status := "ok  "
		if ratio < r.MinRatio {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(report, "%s ratio %s: %s/%s = %.2fx (min %.2fx)\n",
			status, r.Name, r.Slow, r.Fast, ratio, r.MinRatio)
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: inano
cpu: Some CPU @ 2.00GHz
BenchmarkQuery_HotDestination-8     	 1000000	      1000 ns/op
BenchmarkQuery_HotDestination-8     	 1000000	      1200 ns/op
BenchmarkQuery_HotDestination-8     	 1000000	      1100 ns/op
BenchmarkQueryBatch_SharedDestination-8   	     100	   2000000 ns/op	 12 B/op	 3 allocs/op
BenchmarkQueryBatch_SharedDestination-8   	     100	   2200000 ns/op
BenchmarkQueryBatch_SharedDestination-8   	     100	   2100000 ns/op
BenchmarkQueryBatch_SequentialBaseline-8  	      10	  10000000 ns/op
BenchmarkQueryBatch_SequentialBaseline-8  	      10	  11000000 ns/op
PASS
`

func parse(t *testing.T) (map[string][]float64, int) {
	t.Helper()
	samples, procs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return samples, procs
}

func TestParseBench(t *testing.T) {
	samples, procs := parse(t)
	if n := len(samples["BenchmarkQuery_HotDestination"]); n != 3 {
		t.Fatalf("hot-destination samples = %d, want 3", n)
	}
	if got := median(samples["BenchmarkQuery_HotDestination"]); got != 1100 {
		t.Fatalf("median = %v, want 1100", got)
	}
	if got := median(samples["BenchmarkQueryBatch_SequentialBaseline"]); got != 10500000 {
		t.Fatalf("even-count median = %v, want 10500000", got)
	}
	if procs != 8 {
		t.Fatalf("procs = %d, want 8 (from the -8 suffix)", procs)
	}
}

func gateWith(t *testing.T, base *Baseline) (int, string) {
	t.Helper()
	samples, procs := parse(t)
	var report strings.Builder
	failures := runGate(base, samples, procs, &report)
	return failures, report.String()
}

func TestGatePasses(t *testing.T) {
	failures, report := gateWith(t, &Baseline{
		Benchmarks: map[string]*BenchGate{
			"BenchmarkQueryBatch_SharedDestination": {NsPerOp: 2_000_000},
		},
		Ratios: []RatioGate{{
			Name: "batch_speedup",
			Fast: "BenchmarkQueryBatch_SharedDestination",
			Slow: "BenchmarkQueryBatch_SequentialBaseline",
			// 10.5ms / 2.1ms = 5x
			MinRatio: 4,
		}},
	})
	if failures != 0 {
		t.Fatalf("unexpected failures:\n%s", report)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Observed median 2.1ms vs baseline 1.5ms is a +40% regression —
	// beyond the default 20% tolerance.
	failures, report := gateWith(t, &Baseline{
		Benchmarks: map[string]*BenchGate{
			"BenchmarkQueryBatch_SharedDestination": {NsPerOp: 1_500_000},
		},
	})
	if failures != 1 || !strings.Contains(report, "FAIL BenchmarkQueryBatch_SharedDestination") {
		t.Fatalf("failures = %d, report:\n%s", failures, report)
	}
}

func TestCalibrationRescalesThreshold(t *testing.T) {
	// The same regression passes when the calibration benchmark shows the
	// machine is 2x slower than the baseline runner (1100 vs 550 ns).
	failures, report := gateWith(t, &Baseline{
		Calibration: "BenchmarkQuery_HotDestination",
		Benchmarks: map[string]*BenchGate{
			"BenchmarkQuery_HotDestination":         {NsPerOp: 550},
			"BenchmarkQueryBatch_SharedDestination": {NsPerOp: 1_500_000},
		},
	})
	if failures != 0 {
		t.Fatalf("machine-speed rescaling did not apply:\n%s", report)
	}
	if !strings.Contains(report, "factor 2.00x") {
		t.Fatalf("report missing calibration factor:\n%s", report)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	failures, report := gateWith(t, &Baseline{
		Benchmarks: map[string]*BenchGate{
			"BenchmarkDoesNotExist": {NsPerOp: 100},
		},
	})
	if failures != 1 || !strings.Contains(report, "missing from benchmark output") {
		t.Fatalf("failures = %d, report:\n%s", failures, report)
	}
}

func TestRatioGateFails(t *testing.T) {
	failures, report := gateWith(t, &Baseline{
		Ratios: []RatioGate{{
			Name:     "batch_speedup",
			Fast:     "BenchmarkQueryBatch_SharedDestination",
			Slow:     "BenchmarkQueryBatch_SequentialBaseline",
			MinRatio: 50, // 5x observed
		}},
	})
	if failures != 1 || !strings.Contains(report, "FAIL ratio batch_speedup") {
		t.Fatalf("failures = %d, report:\n%s", failures, report)
	}
}

func TestUpdateBaseline(t *testing.T) {
	samples, _ := parse(t)
	base := &Baseline{
		Benchmarks: map[string]*BenchGate{
			"BenchmarkQueryBatch_SharedDestination": {NsPerOp: 1_500_000, MaxRegress: 0.10},
			"BenchmarkNotInThisRun":                 {NsPerOp: 777},
		},
	}
	if updated := updateBaseline(base, samples); updated != 1 {
		t.Fatalf("updated = %d, want 1", updated)
	}
	if got := base.Benchmarks["BenchmarkQueryBatch_SharedDestination"].NsPerOp; got != 2_100_000 {
		t.Fatalf("refreshed ns_per_op = %v, want observed median 2100000", got)
	}
	// Tolerances are config, not measurements: -update must not touch them.
	if got := base.Benchmarks["BenchmarkQueryBatch_SharedDestination"].MaxRegress; got != 0.10 {
		t.Fatalf("max_regress = %v, want 0.10 preserved", got)
	}
	// A gate absent from this run keeps its recorded timing.
	if got := base.Benchmarks["BenchmarkNotInThisRun"].NsPerOp; got != 777 {
		t.Fatalf("absent benchmark ns_per_op = %v, want 777 untouched", got)
	}
}

func TestRatioGateSkippedBelowMinProcs(t *testing.T) {
	// A parallelism-dependent ratio must not fail on a machine with fewer
	// procs than it needs — the speedup physically cannot exist there.
	failures, report := gateWith(t, &Baseline{
		Ratios: []RatioGate{{
			Name:     "batch_speedup",
			Fast:     "BenchmarkQueryBatch_SharedDestination",
			Slow:     "BenchmarkQueryBatch_SequentialBaseline",
			MinRatio: 50,
			MinProcs: 16, // sample output ran with -8
		}},
	})
	if failures != 0 || !strings.Contains(report, "skip ratio batch_speedup") {
		t.Fatalf("failures = %d, report:\n%s", failures, report)
	}
}

package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"inano/internal/analysis"
)

func TestParseEscapeLine(t *testing.T) {
	cases := []struct {
		in      string
		file    string
		ln, col int
		msg     string
		ok      bool
	}{
		{"./internal/core/path.go:110:28: ctx escapes to heap", "./internal/core/path.go", 110, 28, "ctx escapes to heap", true},
		{"path.go:7: moved to heap: x", "path.go", 7, 0, "moved to heap: x", true},
		{"# inano/internal/core", "", 0, 0, "", false},
		{"notafile.txt:3:1: whatever", "", 0, 0, "", false},
		{"bad.go:notanumber: msg", "", 0, 0, "", false},
	}
	for _, c := range cases {
		file, ln, col, msg, ok := parseEscapeLine(c.in)
		if ok != c.ok || file != c.file || ln != c.ln || col != c.col || msg != c.msg {
			t.Errorf("parseEscapeLine(%q) = (%q,%d,%d,%q,%v), want (%q,%d,%d,%q,%v)",
				c.in, file, ln, col, msg, ok, c.file, c.ln, c.col, c.msg, c.ok)
		}
	}
}

const annotatedSrc = `package p

// Hot is on the zero-alloc path.
//
//inano:zeroalloc
func Hot() {
	_ = 1
	//inano:alloc-ok amortized
	_ = 2
	_ = 3
}

func Cold() {}
`

func TestAnnotatedRanges(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annotatedSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ranges := annotatedRanges(fset, []*analysis.Unit{{Fset: fset, Files: []*ast.File{f}}})
	fr, ok := ranges["p.go"]
	if !ok || len(fr) != 1 {
		t.Fatalf("ranges = %v, want one entry for p.go", ranges)
	}
	r := fr[0]
	if r.name != "Hot" {
		t.Fatalf("annotated function = %q, want Hot (Cold is unannotated)", r.name)
	}
	// The extent must span the body; the alloc-ok comment line and the line
	// after it are suppressed.
	if !(r.start <= 6 && r.end >= 11) {
		t.Fatalf("range [%d,%d] does not span Hot's body", r.start, r.end)
	}
	if !r.suppressed[8] {
		t.Fatalf("suppressed = %v, want the //inano:alloc-ok line marked", r.suppressed)
	}
}

func TestRelPos(t *testing.T) {
	d := analysis.Diagnostic{Pos: token.Position{Filename: "/repo/internal/core/path.go", Line: 3, Column: 7}}
	if got := relPos(d, "/repo"); got != "internal/core/path.go:3:7" {
		t.Fatalf("relPos inside root = %q", got)
	}
	if got := relPos(d, "/elsewhere"); got != "/repo/internal/core/path.go:3:7" {
		t.Fatalf("relPos outside root = %q, want absolute path kept", got)
	}
}

func TestModuleRootFrom(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := moduleRootFrom(nested); got != root {
		t.Fatalf("moduleRootFrom(%q) = %q, want %q", nested, got, root)
	}
	// Without a go.mod anywhere above, the starting dir comes back.
	orphan := t.TempDir()
	if got := moduleRootFrom(orphan); got != orphan {
		t.Fatalf("moduleRootFrom with no go.mod = %q, want %q", got, orphan)
	}
}

package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"inano/internal/analysis"
)

// escapeCheck replays the compiler's escape analysis (`go build
// -gcflags=-m`) over patterns and reports every heap-escape diagnostic
// that lands inside a //inano:zeroalloc function and is not suppressed by
// //inano:alloc-ok. The AST walk in the zeroalloc analyzer models the
// compiler; this mode asks the compiler itself, so the two cross-check
// each other (the walk runs without a build, this catches what the walk
// cannot prove, e.g. an argument unexpectedly escaping through a callee).
func escapeCheck(fset *token.FileSet, units []*analysis.Unit, patterns []string, root string) ([]analysis.Diagnostic, error) {
	ranges := annotatedRanges(fset, units)
	if len(ranges) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	var diags []analysis.Diagnostic
	for _, line := range strings.Split(out.String(), "\n") {
		file, ln, col, msg, ok := parseEscapeLine(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, file)
		}
		fr, ok := ranges[abs]
		if !ok {
			continue
		}
		for _, r := range fr {
			if ln >= r.start && ln <= r.end && !r.suppressed[ln] && !r.suppressed[ln-1] {
				diags = append(diags, analysis.Diagnostic{
					Pos:      token.Position{Filename: abs, Line: ln, Column: col},
					Analyzer: "zeroalloc/escape",
					Message:  fmt.Sprintf("compiler: %s (inside //inano:zeroalloc %s)", msg, r.name),
				})
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags, nil
}

// funcRange is the source extent of one annotated function.
type funcRange struct {
	name       string
	start, end int
	suppressed map[int]bool // lines carrying //inano:alloc-ok
}

// annotatedRanges maps absolute file path -> the //inano:zeroalloc
// function extents in it.
func annotatedRanges(fset *token.FileSet, units []*analysis.Unit) map[string][]funcRange {
	out := map[string][]funcRange{}
	for _, u := range units {
		for _, f := range u.Files {
			var sup map[int]bool
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !analysis.HasZeroAllocDirective(fd) {
					continue
				}
				if sup == nil {
					sup = analysis.AllocOKLines(fset, f)
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				out[start.Filename] = append(out[start.Filename], funcRange{
					name:       fd.Name.Name,
					start:      start.Line,
					end:        end.Line,
					suppressed: sup,
				})
			}
		}
	}
	return out
}

// parseEscapeLine splits "path:line:col: message" (column optional).
func parseEscapeLine(line string) (file string, ln, col int, msg string, ok bool) {
	line = strings.TrimSpace(line)
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 2 {
		return "", 0, 0, "", false
	}
	ln, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, 0, "", false
	}
	if len(parts) == 3 {
		if c, err := strconv.Atoi(parts[1]); err == nil {
			return file, ln, c, strings.TrimSpace(parts[2]), true
		}
	}
	return file, ln, 0, strings.TrimSpace(strings.Join(parts[1:], ":")), true
}

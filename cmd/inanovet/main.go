// Command inanovet runs the project's analyzer suite (internal/analysis):
// zeroalloc, mmapalias, lockorder, snapmut, and metricdoc — the lint-time
// proofs of inano's hot-path and concurrency invariants.
//
// Standalone:
//
//	inanovet [-analyzers a,b] [-escape] [-json] [packages]
//
// Packages default to ./... relative to the module root. The exit status
// is 1 when any diagnostic is reported, 2 on operational failure.
//
// As a vet tool (go vet -vettool=$(which inanovet) ./...) it speaks the
// cmd/go unitchecker protocol: the -V=full handshake, a single *.cfg
// argument per package, and .vetx fact files carrying the cross-package
// annotation database (//inano:mmap fields) between units.
//
// -escape cross-checks every //inano:zeroalloc function against the
// compiler's own escape analysis: it replays `go build -gcflags=-m` and
// reports any "escapes to heap"/"moved to heap" line landing inside an
// annotated function, catching allocations the AST walk cannot see.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inano/internal/analysis"
	"inano/internal/analysis/loader"
)

func main() {
	args := os.Args[1:]
	// go vet's tool handshake: print an identity line and exit.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version devel inanovet buildID=none\n", filepath.Base(os.Args[0]))
		return
	}
	// cmd/go also probes the tool's extra flags; it expects a JSON array.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unitchecker protocol: a single per-package config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}
	os.Exit(standalone(args))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("inanovet", flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	escape := fs.Bool("escape", false, "cross-check //inano:zeroalloc functions against the compiler escape log")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var names []string
	if *analyzersFlag != "" {
		names = strings.Split(*analyzersFlag, ",")
	}
	analyzers, err := analysis.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inanovet:", err)
		return 2
	}

	pkgs, fset, root, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inanovet: load:", err)
		return 2
	}
	units := make([]*analysis.Unit, len(pkgs))
	for i, p := range pkgs {
		units[i] = p.Unit
	}
	diags, err := analysis.RunAnalyzers(units, analyzers, nil, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inanovet:", err)
		return 2
	}
	if *escape {
		ediags, err := escapeCheck(fset, units, patterns, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inanovet: escape check:", err)
			return 2
		}
		diags = append(diags, ediags...)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "inanovet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", relPos(d, root), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPos renders a diagnostic position relative to the module root, which
// keeps output stable across checkouts (and CI log lines clickable).
func relPos(d analysis.Diagnostic, root string) string {
	pos := d.Pos
	if root != "" {
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}

package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"inano/internal/analysis"
	"inano/internal/analysis/loader"
)

// vetConfig is the per-package configuration cmd/go hands a vet tool (the
// unitchecker protocol). Field names match the JSON cmd/go emits.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes one package under go vet -vettool. Facts from
// dependencies arrive as gob-encoded .vetx files (PackageVetx); this
// package's collected facts are written to VetxOutput for its dependents.
// Exit status: 0 clean, 2 findings or failure — matching vet tools, where
// any nonzero status surfaces the stderr output through cmd/go.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inanovet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "inanovet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	imp := loader.ExportLookup(fset, cfg.PackageFile, cfg.ImportMap)
	unit, err := loader.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "inanovet:", err)
		return 2
	}

	facts := analysis.NewFactStore()
	for dep, path := range cfg.PackageVetx {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inanovet: facts of %s: %v\n", dep, err)
			return 2
		}
		var flat map[string][]string
		err = gob.NewDecoder(f).Decode(&flat)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inanovet: decoding facts of %s: %v\n", dep, err)
			return 2
		}
		facts.Merge(flat)
	}

	// The analyzers that read repository files resolve paths from the
	// module root; under the vet protocol the package Dir is the closest
	// stand-in (correct for this single-module repo).
	diags, err := analysis.RunAnalyzers([]*analysis.Unit{unit}, analysis.All(), facts, moduleRootFrom(cfg.Dir))
	if err != nil {
		fmt.Fprintln(os.Stderr, "inanovet:", err)
		return 2
	}

	if cfg.VetxOutput != "" {
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inanovet:", err)
			return 2
		}
		err = gob.NewEncoder(f).Encode(facts.Export())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "inanovet: writing facts:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// moduleRootFrom walks up from dir to the directory holding go.mod.
func moduleRootFrom(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(d + "/go.mod"); err == nil {
			return d
		}
		parent := d[:max(0, lastSlash(d))]
		if parent == "" || parent == d {
			return dir
		}
		d = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

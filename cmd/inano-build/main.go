// Command inano-build runs one day's measurement campaign against a
// synthetic world and writes the resulting atlas (and, for day > 0, the
// delta from the previous day) — the server side of §5.
//
// Usage:
//
//	inano-build [-scale tiny|medium|eval] [-seed N] [-day D] [-vps N] [-o atlas.bin] [-delta delta.bin]
package main

import (
	"flag"
	"fmt"
	"os"

	"inano/internal/atlas"
	"inano/sim"
)

func main() {
	scale := flag.String("scale", "medium", "world scale: tiny, medium, or eval")
	seed := flag.Int64("seed", 42, "world seed")
	day := flag.Int("day", 0, "measurement day")
	vps := flag.Int("vps", 60, "number of vantage points")
	out := flag.String("o", "atlas.bin", "output atlas file")
	deltaOut := flag.String("delta", "", "also write the delta from day-1 to this file")
	flag.Parse()

	var sc sim.Scale
	switch *scale {
	case "tiny":
		sc = sim.Tiny
	case "medium":
		sc = sim.Medium
	case "eval":
		sc = sim.Eval
	default:
		fmt.Fprintf(os.Stderr, "inano-build: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	w := sim.NewWorld(sc, *seed)
	fmt.Printf("world: %s\n", w.Top.Stats())
	vpList := w.VantagePoints(*vps)
	targets := w.EdgePrefixes()

	build := func(d int) *atlas.Atlas {
		c := w.Measure(sim.CampaignOptions{Day: d, VPs: vpList, Targets: targets})
		return c.BuildAtlas()
	}
	a := build(*day)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := a.Encode(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("day %d atlas: %d clusters, %d links, %d tuples -> %s (%d bytes)\n",
		*day, a.NumClusters, len(a.Links), len(a.Tuples), *out, a.EncodedSize())
	for _, s := range a.SectionSizes() {
		fmt.Printf("  %-38s %8d entries %8d bytes\n", s.Name, s.Entries, s.Compressed)
	}

	if *deltaOut != "" && *day > 0 {
		prev := build(*day - 1)
		d := atlas.Diff(prev, a)
		df, err := os.Create(*deltaOut)
		if err != nil {
			fatal(err)
		}
		if err := d.Encode(df); err != nil {
			fatal(err)
		}
		if err := df.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("delta day %d -> %d: %d entries -> %s (%d bytes)\n",
			*day-1, *day, d.Entries(), *deltaOut, d.EncodedSize())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-build:", err)
	os.Exit(1)
}

// Command inano-build runs one day's measurement campaign against a
// synthetic world and writes the resulting atlas (and, for day > 0, the
// delta from the previous day) — the server side of §5.
//
// With -observations it folds an aggregated client-observation snapshot
// (written by inanod -aggregate -obs-snapshot) into the build: scalar
// residuals become the GlobalAdjustMS dataset, and reporter-agreed hop
// paths become real links and attachment entries (FoldPaths) — so
// client-measured ground truth, structural coverage included, ships to
// every peer inside the ordinary daily delta.
//
// A correction's lifecycle across days is managed through -prev: pass the
// previous day's *archived* atlas (the -o output, corrections included)
// and the build carries yesterday's corrections forward — re-supported
// prefixes keep theirs, unsupported ones halve and expire, and the delta
// (diffed against that same archive) ships the updates and deletions
// clients need to stay exactly in sync. Without -prev the day-1 base is
// rebuilt plain, which ships today's corrections but cannot expire
// yesterday's on clients that follow deltas.
//
// Usage:
//
//	inano-build [-scale tiny|medium|eval] [-seed N] [-day D] [-vps N] [-o atlas.bin] [-delta delta.bin]
//	inano-build -delta delta0.bin -observations obs.json                 # day-0 correction-only delta
//	inano-build -day 1 -prev atlas0.bin -delta delta1.bin -observations obs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/netsim"
	"inano/sim"
)

func main() {
	scale := flag.String("scale", "medium", "world scale: tiny, medium, or eval")
	seed := flag.Int64("seed", 42, "world seed")
	day := flag.Int("day", 0, "measurement day")
	vps := flag.Int("vps", 60, "number of vantage points")
	out := flag.String("o", "atlas.bin", "output atlas file")
	flatOut := flag.String("flat", "", "also write the compiled flat serving form (mmap-able by inanod -atlas-flat) to this file")
	deltaOut := flag.String("delta", "", "also write the delta from the previous day to this file")
	prevPath := flag.String("prev", "", "previous day's archived atlas (the -o output, corrections included): delta base and carried-correction source; default rebuilds the previous day without corrections")
	obsPath := flag.String("observations", "", "aggregated observation snapshot (inanod -obs-snapshot) to fold into the build")
	obsMinReporters := flag.Int("obs-min-reporters", 3, "fold only aggregates backed by at least this many reporting source clusters")
	flag.Parse()

	var sc sim.Scale
	switch *scale {
	case "tiny":
		sc = sim.Tiny
	case "medium":
		sc = sim.Medium
	case "eval":
		sc = sim.Eval
	default:
		fmt.Fprintf(os.Stderr, "inano-build: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	w := sim.NewWorld(sc, *seed)
	fmt.Printf("world: %s\n", w.Top.Stats())
	vpList := w.VantagePoints(*vps)
	targets := w.EdgePrefixes()

	build := func(d int) *atlas.Atlas {
		c := w.Measure(sim.CampaignOptions{Day: d, VPs: vpList, Targets: targets})
		return c.BuildAtlas()
	}
	var residuals map[netsim.Prefix]float64
	var agreedPaths []atlas.ObservedPath
	if *obsPath != "" {
		snap, err := feedback.LoadSnapshot(*obsPath)
		if err != nil {
			fatal(err)
		}
		residuals = snap.Residuals(*obsMinReporters)
		agreedPaths = snap.AgreedPaths(*obsMinReporters)
		fmt.Printf("observations: %d aggregated prefixes, %d folded (>= %d reporters)\n",
			len(snap.Prefixes), len(residuals), *obsMinReporters)
		fmt.Printf("observations: %d voted path tails, %d agreed (>= %d reporters per link)\n",
			len(snap.Paths), len(agreedPaths), *obsMinReporters)
	}
	var prev *atlas.Atlas
	if *prevPath != "" {
		pf, err := os.Open(*prevPath)
		if err != nil {
			fatal(err)
		}
		prev, err = atlas.Decode(pf)
		pf.Close()
		if err != nil {
			fatal(err)
		}
	}
	plain := build(*day)
	if prev != nil && len(prev.GlobalAdjustMS) > 0 {
		// Yesterday's corrections carry onto today's build: fresh
		// residuals keep theirs full strength, unsupported ones halve and
		// expire — so the delta below can ship the deletions.
		carried := atlas.CarryCorrections(plain, prev, residuals)
		fmt.Printf("observations: %d corrections carried from %s\n", carried, *prevPath)
	}
	if prev != nil && (len(prev.ObservedLinks) > 0 || len(prev.ObservedAttach) > 0) {
		// Crowd-observed structure decays the same way: entries the
		// campaign re-measured graduate, entries today's snapshot
		// re-agrees on re-fold at full lifetime below, the rest lose one
		// roll and eventually drop — shipping the deletions in the delta.
		carried, dropped := atlas.CarryFoldedPaths(plain, prev)
		fmt.Printf("observations: %d observed links/attachments carried from %s, %d expired\n",
			carried, *prevPath, dropped)
	}
	a := plain
	if len(residuals) > 0 {
		var folded int
		a, folded = atlas.FoldObservations(plain, residuals)
		fmt.Printf("observations: %d corrections shipped in the atlas\n", folded)
	}
	if len(agreedPaths) > 0 {
		if a == plain {
			a = plain.Clone()
		}
		st := atlas.FoldPaths(a, agreedPaths)
		fmt.Printf("observations: %d agreed paths folded (%d new links, %d refreshed, %d already measured, %d new attachments, %d skipped)\n",
			st.PathsFolded, st.NewLinks, st.RefreshedLinks, st.MeasuredLinks, st.NewAttach, st.PathsSkipped)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := a.Encode(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("day %d atlas: %d clusters, %d links, %d tuples -> %s (%d bytes)\n",
		*day, a.NumClusters, len(a.Links), len(a.Tuples), *out, a.EncodedSize())
	for _, s := range a.SectionSizes() {
		fmt.Printf("  %-38s %8d entries %8d bytes\n", s.Name, s.Entries, s.Compressed)
	}
	if *flatOut != "" {
		// Compile from the encoded-then-decoded atlas, not the in-memory
		// one: the codec quantizes latencies, and the flat form must serve
		// bit-identical answers to a daemon that loaded the -o file.
		af, err := os.Open(*out)
		if err != nil {
			fatal(err)
		}
		roundTripped, err := atlas.Decode(af)
		af.Close()
		if err != nil {
			fatal(err)
		}
		fl := atlas.Compile(roundTripped)
		ff, err := os.Create(*flatOut)
		if err != nil {
			fatal(err)
		}
		if err := atlas.WriteFlat(ff, fl); err != nil {
			fatal(err)
		}
		if err := ff.Close(); err != nil {
			fatal(err)
		}
		st, err := os.Stat(*flatOut)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("day %d flat serving form: %d edges -> %s (%d bytes)\n",
			*day, fl.NumEdges(), *flatOut, st.Size())
	}

	if *deltaOut != "" && (*day > 0 || prev != nil || a != plain) {
		// The delta's base is the archived previous atlas (-prev) when
		// given, else yesterday's rebuild; at day 0 with folded
		// observations it is today's *plain* build instead, yielding a
		// correction-only delta (FromDay == ToDay) — an intra-day push of
		// the aggregated corrections to clients already serving today's
		// atlas.
		base := prev
		if base == nil {
			base = plain
			if *day > 0 {
				base = build(*day - 1)
			}
		}
		d := atlas.Diff(base, a)
		df, err := os.Create(*deltaOut)
		if err != nil {
			fatal(err)
		}
		if err := d.Encode(df); err != nil {
			fatal(err)
		}
		if err := df.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("delta day %d -> %d: %d entries -> %s (%d bytes)\n",
			d.FromDay, d.ToDay, d.Entries(), *deltaOut, d.EncodedSize())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-build:", err)
	os.Exit(1)
}

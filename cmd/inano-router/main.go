// Command inano-router fronts a set of inanod replicas with a thin HTTP
// routing tier: every query is consistent-hashed on its destination
// cluster — resolved through the same flat atlas the replicas serve — so
// each replica's prediction-tree cache stays hot for exactly its slice
// of the destination space. Answers are the replicas' answers, forwarded
// verbatim: a cluster behind the router is byte-identical to one node,
// just with N tree caches instead of one.
//
// The router proxies /v1/query, /v1/rank and /v1/relay, and demuxes
// streamed /v1/batch NDJSON onto per-replica sub-streams, reassembling
// answers in request order. It health-checks replicas every
// -health-interval, drops dead or draining ones from the ring, retries
// their work — in-flight batch pairs included — on the ring's next node,
// and re-shards when membership changes. Replicas sync atlases through
// their own delta/manifest watchers; a day roll needs nothing from the
// router.
//
// Usage:
//
//	inano-router -replicas http://127.0.0.1:7361,http://127.0.0.1:7362 \
//	             -atlas-flat atlas.flat
//
// The routing table is read once at startup. After an atlas day roll the
// table may place a few re-clustered destinations on a different replica
// than a freshly-started router would — that only moves cache locality,
// never correctness, since every replica can answer every query.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"inano/internal/atlas"
	"inano/internal/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7360", "HTTP listen address (port 0 picks one)")
	replicas := flag.String("replicas", "", "comma-separated inanod base URLs (required)")
	atlasFlat := flag.String("atlas-flat", "", "flat atlas (inano-build -flat) supplying the prefix→cluster routing table; must be the atlas the replicas serve (required)")
	flatValidate := flag.Bool("flat-validate", true, "structurally validate the flat atlas at startup")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica /healthz poll interval")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
	window := flag.Int("window", 0, "batch stream window in pairs (0 = default)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long to drain in-flight requests on shutdown")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	if *replicas == "" {
		fatal(errors.New("-replicas is required"))
	}
	if *atlasFlat == "" {
		fatal(errors.New("-atlas-flat is required"))
	}
	var nodes []string
	for _, n := range strings.Split(*replicas, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}

	ff, err := atlas.OpenFlat(*atlasFlat, *flatValidate)
	if err != nil {
		fatal(err)
	}
	// The mapping backs the routing table for the process lifetime.
	logf("inano-router: routing table from flat atlas day %d: %d clusters, %d prefixes",
		ff.Day, ff.NumClusters, len(ff.PrefixClKeys))

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          nodes,
		ClusterOf:      ff.ClusterOf,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		Window:         *window,
		Logf:           logf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// Parsed by the cluster smoke test and ops tooling: keep this line stable.
	fmt.Printf("inano-router: listening on http://%s\n", ln.Addr())
	logf("inano-router: fronting %d replicas: %s", len(nodes), strings.Join(nodes, " "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	srv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	logf("inano-router: signal received; draining for up to %v", *shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logf("inano-router: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("inano-router: serve: %v", err)
	}
	fmt.Println("inano-router: shutdown complete")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-router:", err)
	os.Exit(1)
}

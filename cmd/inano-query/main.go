// Command inano-query loads an atlas and answers path queries locally —
// the client side of §5 as a CLI.
//
// With one destination it prints the full bidirectional prediction; with
// several it issues one QueryBatch and prints a ranking table, the CDN
// replica-selection shape of §7.1.
//
// Usage:
//
//	inano-query -atlas atlas.bin 10.1.2.3 10.9.8.7
//	inano-query -atlas atlas.bin 10.1.2.3 10.9.8.7 10.4.4.4 10.7.0.9
//	inano-query -atlas atlas.bin -list        # show known prefixes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	inano "inano"
	"inano/internal/netsim"
)

func main() {
	atlasPath := flag.String("atlas", "atlas.bin", "atlas file produced by inano-build")
	list := flag.Bool("list", false, "list prefixes with attachment clusters and exit")
	timeout := flag.Duration("timeout", 0, "bound query time (0 = no limit); batches abort with an error when exceeded")
	flag.Parse()

	f, err := os.Open(*atlasPath)
	if err != nil {
		fatal(err)
	}
	client, err := inano.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("atlas day %d loaded\n", client.Day())

	if *list {
		a := client.Atlas()
		ps := make([]netsim.Prefix, 0, len(a.PrefixCluster))
		for p := range a.PrefixCluster {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for _, p := range ps {
			fmt.Printf("%s -> cluster %d (AS%d)\n", p, a.PrefixCluster[p], a.PrefixAS[p])
		}
		return
	}

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: inano-query -atlas atlas.bin <src-ip> <dst-ip> [<dst-ip>...]")
		os.Exit(2)
	}
	src, err := parseIP(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	dsts := make([]inano.IP, flag.NArg()-1)
	for i := 1; i < flag.NArg(); i++ {
		if dsts[i-1], err = parseIP(flag.Arg(i)); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	infos, err := client.QueryBatchContext(ctx, src, dsts)
	if err != nil {
		fatal(fmt.Errorf("query aborted: %w", err))
	}

	if len(dsts) == 1 {
		printSingle(infos[0])
		return
	}
	printRanking(dsts, infos)
}

// printSingle shows the full bidirectional answer for one destination.
func printSingle(info inano.PathInfo) {
	if !info.Found {
		fmt.Println("no prediction (prefix unknown or no policy-compliant path)")
		os.Exit(1)
	}
	fmt.Printf("RTT estimate:   %.1f ms\n", info.RTTMS)
	fmt.Printf("loss estimate:  %.2f%%\n", info.LossRate*100)
	fmt.Printf("forward AS path: %v  (%.1f ms one-way over %d clusters)\n",
		info.Fwd.ASPath, info.Fwd.LatencyMS, len(info.Fwd.Clusters))
	fmt.Printf("reverse AS path: %v  (%.1f ms one-way over %d clusters)\n",
		info.Rev.ASPath, info.Rev.LatencyMS, len(info.Rev.Clusters))
}

// printRanking shows a batch of destinations ordered by predicted RTT.
func printRanking(dsts []inano.IP, infos []inano.PathInfo) {
	type row struct {
		dst  inano.IP
		info inano.PathInfo
	}
	rows := make([]row, len(dsts))
	for i := range dsts {
		rows[i] = row{dsts[i], infos[i]}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].info.Found != rows[j].info.Found {
			return rows[i].info.Found
		}
		return rows[i].info.RTTMS < rows[j].info.RTTMS
	})
	fmt.Printf("%-18s %10s %8s %s\n", "destination", "rtt(ms)", "loss", "forward AS path")
	anyFound := false
	for _, r := range rows {
		if !r.info.Found {
			fmt.Printf("%-18v %10s %8s no prediction\n", r.dst, "-", "-")
			continue
		}
		anyFound = true
		fmt.Printf("%-18v %10.1f %7.2f%% %v\n", r.dst, r.info.RTTMS, r.info.LossRate*100, r.info.Fwd.ASPath)
	}
	if !anyFound {
		os.Exit(1)
	}
}

func parseIP(s string) (inano.IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return inano.IP(ip), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-query:", err)
	os.Exit(1)
}

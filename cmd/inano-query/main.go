// Command inano-query loads an atlas and answers path queries locally —
// the client side of §5 as a CLI.
//
// Usage:
//
//	inano-query -atlas atlas.bin 10.1.2.3 10.9.8.7
//	inano-query -atlas atlas.bin -list        # show known prefixes
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	inano "inano"
	"inano/internal/netsim"
)

func main() {
	atlasPath := flag.String("atlas", "atlas.bin", "atlas file produced by inano-build")
	list := flag.Bool("list", false, "list prefixes with attachment clusters and exit")
	flag.Parse()

	f, err := os.Open(*atlasPath)
	if err != nil {
		fatal(err)
	}
	client, err := inano.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("atlas day %d loaded\n", client.Day())

	if *list {
		a := client.Atlas()
		ps := make([]netsim.Prefix, 0, len(a.PrefixCluster))
		for p := range a.PrefixCluster {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for _, p := range ps {
			fmt.Printf("%s -> cluster %d (AS%d)\n", p, a.PrefixCluster[p], a.PrefixAS[p])
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: inano-query -atlas atlas.bin <src-ip> <dst-ip>")
		os.Exit(2)
	}
	src, err := parseIP(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	dst, err := parseIP(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	info := client.Query(src, dst)
	if !info.Found {
		fmt.Println("no prediction (prefix unknown or no policy-compliant path)")
		os.Exit(1)
	}
	fmt.Printf("RTT estimate:   %.1f ms\n", info.RTTMS)
	fmt.Printf("loss estimate:  %.2f%%\n", info.LossRate*100)
	fmt.Printf("forward AS path: %v  (%.1f ms one-way over %d clusters)\n",
		info.Fwd.ASPath, info.Fwd.LatencyMS, len(info.Fwd.Clusters))
	fmt.Printf("reverse AS path: %v  (%.1f ms one-way over %d clusters)\n",
		info.Rev.ASPath, info.Rev.LatencyMS, len(info.Rev.Clusters))
}

func parseIP(s string) (inano.IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return inano.IP(ip), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inano-query:", err)
	os.Exit(1)
}

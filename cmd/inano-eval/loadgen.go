package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	inano "inano"
	"inano/internal/netsim"
)

// Load-generator mode: drive a running inanod with the serving workloads
// the daemon is built for — concurrent single queries (the interactive
// shape) and streamed NDJSON batches (the bulk shape) — and report
// client-observed latency percentiles and throughput. The target prefixes
// come from the same atlas file the daemon serves, so every query is
// answerable.

type loadgenConfig struct {
	baseURL   string
	atlasPath string
	n         int // total queries (singles) or pairs (batch)
	conc      int // concurrent workers (singles) or concurrent streams (batch)
	batch     int // pairs per batch stream; 0 = single-query mode
	seed      int64
}

func runLoadgen(cfg loadgenConfig) error {
	prefixes, err := atlasPrefixes(cfg.atlasPath)
	if err != nil {
		return err
	}
	if len(prefixes) < 2 {
		return fmt.Errorf("atlas %s has %d prefixes; need at least 2", cfg.atlasPath, len(prefixes))
	}
	base := strings.TrimRight(cfg.baseURL, "/")
	if cfg.conc <= 0 {
		cfg.conc = 8
	}
	fmt.Printf("# inanod load generator — target %s, %d prefixes\n", base, len(prefixes))
	if cfg.batch > 0 {
		return loadBatches(cfg, base, prefixes)
	}
	return loadSingles(cfg, base, prefixes)
}

// atlasPrefixes lists the queryable prefixes of an atlas file in a
// deterministic order.
func atlasPrefixes(path string) ([]netsim.Prefix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := inano.Load(f)
	if err != nil {
		return nil, err
	}
	a := c.Atlas()
	ps := make([]netsim.Prefix, 0, len(a.PrefixCluster))
	for p := range a.PrefixCluster {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps, nil
}

// loadSingles hammers /v1/query from cfg.conc workers and reports latency
// percentiles — the interactive serving shape.
func loadSingles(cfg loadgenConfig, base string, prefixes []netsim.Prefix) error {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		found     int
		errs      int
	)
	var wg sync.WaitGroup
	perWorker := cfg.n / cfg.conc
	if perWorker == 0 {
		perWorker = 1
	}
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			client := &http.Client{Timeout: 30 * time.Second}
			local := make([]time.Duration, 0, perWorker)
			localFound, localErrs := 0, 0
			for i := 0; i < perWorker; i++ {
				src := prefixes[rng.Intn(len(prefixes))]
				dst := prefixes[rng.Intn(len(prefixes))]
				url := fmt.Sprintf("%s/v1/query?src=%s&dst=%s", base, src.HostIP(), dst.HostIP())
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					localErrs++
					continue
				}
				var res struct {
					Found bool `json:"found"`
				}
				switch {
				case resp.StatusCode != http.StatusOK:
					localErrs++
				case json.NewDecoder(resp.Body).Decode(&res) != nil:
					localErrs++
				default:
					if res.Found {
						localFound++
					}
					local = append(local, time.Since(t0))
				}
				resp.Body.Close()
			}
			mu.Lock()
			latencies = append(latencies, local...)
			found += localFound
			errs += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := len(latencies)
	fmt.Printf("singles: %d queries over %d workers in %v (%.0f qps)\n",
		total, cfg.conc, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  found %d (%.1f%%), errors %d\n", found, 100*float64(found)/float64(max(total, 1)), errs)
	fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), q(1).Round(time.Microsecond))
	if errs > 0 {
		return fmt.Errorf("%d request errors", errs)
	}
	return nil
}

// loadBatches opens cfg.conc concurrent /v1/batch streams of cfg.batch
// pairs each (up to cfg.n pairs total), writing the request body while
// reading results — the bulk serving shape. Reports pairs/s and
// time-to-first-result per stream.
func loadBatches(cfg loadgenConfig, base string, prefixes []netsim.Prefix) error {
	// Streams beyond cfg.conc run in waves, bounded by the semaphore below.
	streams := cfg.n / cfg.batch
	if streams < 1 {
		streams = 1
	}
	type streamResult struct {
		pairs    int
		firstRes time.Duration
		err      error
	}
	results := make([]streamResult, streams)
	sem := make(chan struct{}, cfg.conc)
	var wg sync.WaitGroup
	start := time.Now()
	for sID := 0; sID < streams; sID++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(sID int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[sID] = runOneBatchStream(cfg, base, prefixes, sID)
		}(sID)
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalPairs, errs := 0, 0
	var worstFirst time.Duration
	for _, r := range results {
		totalPairs += r.pairs
		if r.err != nil {
			errs++
			fmt.Printf("  stream error: %v\n", r.err)
		}
		if r.firstRes > worstFirst {
			worstFirst = r.firstRes
		}
	}
	fmt.Printf("batch: %d pairs over %d streams (%d pairs each, %d concurrent) in %v\n",
		totalPairs, streams, cfg.batch, cfg.conc, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput %.0f pairs/s, worst time-to-first-result %v, stream errors %d\n",
		float64(totalPairs)/elapsed.Seconds(), worstFirst.Round(time.Millisecond), errs)
	if errs > 0 {
		return fmt.Errorf("%d of %d streams failed", errs, streams)
	}
	return nil
}

func runOneBatchStream(cfg loadgenConfig, base string, prefixes []netsim.Prefix, sID int) (res struct {
	pairs    int
	firstRes time.Duration
	err      error
}) {
	rng := rand.New(rand.NewSource(cfg.seed + 1000*int64(sID)))
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriter(pw)
		for i := 0; i < cfg.batch; i++ {
			src := prefixes[rng.Intn(len(prefixes))]
			dst := prefixes[rng.Intn(len(prefixes))]
			if _, err := fmt.Fprintf(bw, `{"src":%q,"dst":%q}`+"\n", src.HostIP(), dst.HostIP()); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		bw.Flush()
		pw.Close()
	}()
	req, err := http.NewRequest("POST", base+"/v1/batch", pr)
	if err != nil {
		res.err = err
		return res
	}
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		if res.pairs == 0 {
			res.firstRes = time.Since(t0)
		}
		var line struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			res.err = fmt.Errorf("bad response line: %v", err)
			return res
		}
		if line.Error != "" {
			res.err = fmt.Errorf("stream aborted after %d pairs: %s", res.pairs, line.Error)
			return res
		}
		res.pairs++
	}
	res.err = sc.Err()
	return res
}

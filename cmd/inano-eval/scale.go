package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// scaleBuildConfig sizes the -scale-build mode.
type scaleBuildConfig struct {
	seed         int64
	ases         int
	prefixes     int
	vps          int
	targetsPerVP int
	clients      int
	verifyPairs  int
	maxRSSMB     int
}

// runScaleBuild generates an internet-scale synthetic world, builds its
// atlas out-of-core via the streaming two-pass builder (the traceroute
// corpus is synthesized twice and never materialized), writes the .bin
// and flat serving forms to disk, and verifies that both load paths
// serve byte-identical answers on a deterministic query workload.
// With -max-rss-mb it also gates the process's peak RSS — the proof the
// build stayed out-of-core.
func runScaleBuild(cfg scaleBuildConfig, stdout, stderr io.Writer) int {
	g := &gate{stderr: stderr}
	wc := netsim.DefaultScaleConfig(cfg.seed)
	wc.ASes = cfg.ases
	wc.Prefixes = cfg.prefixes
	if cfg.ases >= 20000 {
		// Big worlds get the million-scale shape (more tier-1s, denser
		// peering) so the graph stays realistic as it grows.
		wc = netsim.MillionScaleConfig(cfg.seed)
		wc.ASes = cfg.ases
		wc.Prefixes = cfg.prefixes
	}
	if err := wc.Validate(); err != nil {
		fmt.Fprintln(stderr, "inano-eval: scale config:", err)
		return 2
	}

	start := time.Now()
	fmt.Fprintf(stdout, "# iPlane Nano out-of-core scale build — seed=%d\n", cfg.seed)
	w := netsim.GenerateScale(wc)
	fmt.Fprintf(stdout, "world: %s [generated in %v]\n", w.Stats(), time.Since(start).Round(time.Millisecond))

	vps, clients := w.Population(cfg.vps, cfg.clients)
	camp := &trace.ScaleCampaign{
		W: w, VPs: vps, TargetsPerVP: cfg.targetsPerVP,
		ClientSrcs: clients, ClientDsts: 50,
	}
	sb := atlas.NewStreamBuilder(atlas.StreamInput{
		Tools:         atlas.NewScaleTools(w, 8),
		Day:           0,
		PrefsMaxDests: 512,
	})
	t0 := time.Now()
	traces := 0
	camp.Run(func(tr *trace.Traceroute, _ bool) bool { sb.ObserveIfaces(tr); traces++; return true })
	sb.StartTraces()
	camp.Run(func(tr *trace.Traceroute, fromVP bool) bool { sb.AddTrace(tr, fromVP); return true })
	a := sb.Finish()
	c := a.Counts()
	fmt.Fprintf(stdout, "build: %d traces/pass (streamed, never materialized), %d clusters, %d links, %d prefix attachments [%v]\n",
		traces, a.NumClusters, c.Links, c.PrefixCluster, time.Since(t0).Round(time.Millisecond))
	if !g.Check(c.Links > 0 && c.PrefixCluster > 0 && c.PrefixAS > 0, "streamed atlas is populated (%+v)", c) {
		return g.Code()
	}

	// Ship both serving forms to disk, then reload through the two load
	// paths clients actually take.
	dir, err := os.MkdirTemp("", "inano-scale")
	if !g.Check(err == nil, "temp dir: %v", err) {
		return g.Code()
	}
	defer os.RemoveAll(dir)
	binPath := filepath.Join(dir, "atlas.bin")
	flatPath := filepath.Join(dir, "atlas.flat")

	bf, err := os.Create(binPath)
	if !g.Check(err == nil, "create %s: %v", binPath, err) {
		return g.Code()
	}
	bw := bufio.NewWriterSize(bf, 1<<20)
	if err := a.Encode(bw); !g.Check(err == nil, "encode atlas: %v", err) {
		return g.Code()
	}
	if err := bw.Flush(); !g.Check(err == nil, "flush atlas: %v", err) {
		return g.Code()
	}
	bf.Close()
	binInfo, _ := os.Stat(binPath)

	ff, err := os.Open(binPath)
	if !g.Check(err == nil, "open %s: %v", binPath, err) {
		return g.Code()
	}
	dec, err := atlas.Decode(bufio.NewReaderSize(ff, 1<<20))
	ff.Close()
	if !g.Check(err == nil, "decode atlas.bin: %v", err) {
		return g.Code()
	}
	flat := atlas.Compile(dec.Clone())
	wf, err := os.Create(flatPath)
	if !g.Check(err == nil, "create %s: %v", flatPath, err) {
		return g.Code()
	}
	fw := bufio.NewWriterSize(wf, 1<<20)
	if err := atlas.WriteFlat(fw, flat); !g.Check(err == nil, "write flat: %v", err) {
		return g.Code()
	}
	if err := fw.Flush(); !g.Check(err == nil, "flush flat: %v", err) {
		return g.Code()
	}
	wf.Close()
	flatInfo, _ := os.Stat(flatPath)
	fmt.Fprintf(stdout, "serving forms: atlas.bin %d MB, atlas.flat %d MB\n",
		binInfo.Size()>>20, flatInfo.Size()>>20)

	mm, err := atlas.OpenFlat(flatPath, true)
	if !g.Check(err == nil, "open flat: %v", err) {
		return g.Code()
	}
	defer mm.Close()
	engBin := inano.FromAtlas(dec)
	engFlat := inano.FromFlat(mm.Flat)

	// Deterministic verification workload: each client source queries a
	// stride of edge prefixes; both load paths must agree byte-for-byte.
	t1 := time.Now()
	total := w.NumPrefixes()
	per := cfg.verifyPairs / len(clients)
	if per < 1 {
		per = 1
	}
	checked, found, mismatches := 0, 0, 0
	for ci, src := range clients {
		for k := 0; k < per; k++ {
			dst := w.EdgePrefixAt((ci*7919 + k*104729) % total)
			if src == dst {
				continue
			}
			ib := engBin.QueryPrefix(src, dst)
			fb := engFlat.QueryPrefix(src, dst)
			if fmt.Sprintf("%+v", ib) != fmt.Sprintf("%+v", fb) {
				mismatches++
			}
			if ib.Found {
				found++
			}
			checked++
		}
	}
	fmt.Fprintf(stdout, "verify: %d pairs, %d answered, %d load-path mismatches [%v]\n",
		checked, found, mismatches, time.Since(t1).Round(time.Millisecond))
	g.Check(found > 0, "scale atlas answered %d/%d verification pairs", found, checked)
	g.Check(mismatches == 0, ".bin and flat load paths byte-identical on %d pairs (%d mismatches)", checked, mismatches)

	if rss, ok := peakRSSMB(); ok {
		fmt.Fprintf(stdout, "peak RSS: %d MB\n", rss)
		if cfg.maxRSSMB > 0 {
			g.Check(rss <= cfg.maxRSSMB, "peak RSS %d MB within bound %d MB", rss, cfg.maxRSSMB)
		}
	} else if cfg.maxRSSMB > 0 {
		g.Check(false, "peak RSS unavailable on this platform but -max-rss-mb set")
	}
	fmt.Fprintf(stdout, "total: %v\n", time.Since(start).Round(time.Millisecond))
	return g.Code()
}

// peakRSSMB reads the process's peak resident set (VmHWM) from
// /proc/self/status. ok is false where procfs is unavailable.
func peakRSSMB() (int, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := strings.Fields(string(line))
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, false
		}
		return kb >> 10, true
	}
	return 0, false
}

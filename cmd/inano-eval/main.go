// Command inano-eval regenerates the paper's tables and figures against a
// synthetic world and prints them in the layout of the paper's evaluation
// section. See docs/evaluation.md for every mode's invariants and repro
// one-liners.
//
// Usage:
//
//	inano-eval [-scale quick|medium|eval] [-seed N] [-exp all|table2|scaling|fig4|loss|fig5|fig6|fig7|fig8|fig9|fig10|fig11]
//
// With -scenario it replays an adversarial timeline from
// internal/scenario (churn, partition, flashcrowd, rollback) and exits
// nonzero if any hard invariant fails; -scenario-mutate arms a known-bad
// sabotage that must make the replay fail:
//
//	inano-eval -scenario partition -scale quick -seed 42
//	inano-eval -scenario partition -scenario-mutate skip-missed  # must exit 1
//
// With -scale-build it generates an internet-scale synthetic world
// (power-law AS graph) and builds its atlas out-of-core through the
// streaming two-pass builder, verifying that the .bin and flat load
// paths serve byte-identical answers and (optionally) that peak RSS
// stayed under a bound:
//
//	inano-eval -scale-build -scale-ases 50000 -scale-prefixes 1000000 -max-rss-mb 12288
//
// With -loadgen it instead drives a running inanod daemon with serving
// workloads (concurrent singles or streamed batches) and reports
// client-observed latency percentiles and throughput:
//
//	inano-eval -loadgen http://127.0.0.1:7353 -load-atlas atlas.bin -load-n 50000 -load-conc 16
//	inano-eval -loadgen http://127.0.0.1:7353 -load-atlas atlas.bin -load-n 200000 -load-batch 50000 -load-conc 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"inano/internal/experiments"
	"inano/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// gate collects invariant verdicts for an eval mode: every mode shares
// this one failure/exit-code discipline instead of hand-rolling
// Fprintln+Exit. Usage errors are not gate failures — they exit 2 at the
// dispatch layer; gate failures are violated invariants and exit 1.
type gate struct {
	stderr   io.Writer
	failures []string
}

// Check records one invariant; a false ok prints the message to stderr
// (prefixed "inano-eval:") and marks the run failed. Returns ok.
func (g *gate) Check(ok bool, format string, args ...any) bool {
	if !ok {
		msg := fmt.Sprintf(format, args...)
		fmt.Fprintln(g.stderr, "inano-eval:", msg)
		g.failures = append(g.failures, msg)
	}
	return ok
}

// Code is the process exit code the gate's verdicts imply.
func (g *gate) Code() int {
	if len(g.failures) > 0 {
		return 1
	}
	return 0
}

// run is main without the process: flags parse from args, output goes to
// the given writers, and the exit code is returned (0 = pass, 1 =
// invariant failure, 2 = usage error). Tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inano-eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "medium", "world scale: quick, medium, or eval")
	seed := fs.Int64("seed", 42, "world seed")
	exp := fs.String("exp", "all", "experiment to run (comma-separated), or all")
	feedbackMode := fs.Bool("feedback", false, "run the measurement-feedback-loop experiment (error before/after corrective probes)")
	fbBudget := fs.Int("feedback-budget", 8, "corrective probes per round in -feedback mode")
	fbRounds := fs.Int("feedback-rounds", 4, "corrective rounds in -feedback mode")
	upstreamMode := fs.Bool("upstream", false, "run the upstream-observation-sharing replay (non-reporting client error before/after the aggregated delta)")
	upStructMode := fs.Bool("upstream-structure", false, "run the structural upstream replay (non-reporting client hop-level path accuracy before/after the hop-fold delta)")
	upReporters := fs.Int("upstream-reporters", 0, "reporting clients in -upstream/-upstream-structure mode (0 = all validation sources but one)")
	upMinReporters := fs.Int("upstream-min-reporters", 3, "min distinct reporters behind a folded aggregate in -upstream/-upstream-structure mode")
	scenarioName := fs.String("scenario", "", "replay an adversarial scenario: churn, partition, flashcrowd, or rollback")
	scenarioMut := fs.String("scenario-mutate", "", "arm a known-bad mutation of the chosen -scenario (the replay must then fail)")
	scaleBuild := fs.Bool("scale-build", false, "generate an internet-scale synthetic world and build its atlas out-of-core")
	scaleASes := fs.Int("scale-ases", 3000, "AS count of the -scale-build world")
	scalePrefixes := fs.Int("scale-prefixes", 20000, "edge prefix count of the -scale-build world")
	scaleVPs := fs.Int("scale-vps", 24, "vantage points of the -scale-build campaign")
	scaleTargetsPerVP := fs.Int("scale-targets-per-vp", 0, "per-VP probe-target cap in -scale-build (0 = full edge coverage)")
	scaleClients := fs.Int("scale-clients", 8, "reporting clients of the -scale-build campaign")
	scaleVerifyPairs := fs.Int("scale-verify-pairs", 2000, "query pairs verified across the .bin and flat load paths in -scale-build")
	maxRSSMB := fs.Int("max-rss-mb", 0, "fail -scale-build if peak RSS (VmHWM) exceeds this many MB (0 = no bound)")
	loadgen := fs.String("loadgen", "", "load-generator mode: base URL of a running inanod (e.g. http://127.0.0.1:7353)")
	loadAtlas := fs.String("load-atlas", "atlas.bin", "atlas file the daemon serves (source of queryable prefixes)")
	loadN := fs.Int("load-n", 10_000, "total queries (singles) or pairs (batch) to issue")
	loadConc := fs.Int("load-conc", 8, "concurrent workers (singles) or streams (batch)")
	loadBatch := fs.Int("load-batch", 0, "pairs per /v1/batch stream; 0 = single-query mode")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g := &gate{stderr: stderr}

	if *loadgen != "" {
		if err := runLoadgen(loadgenConfig{
			baseURL:   *loadgen,
			atlasPath: *loadAtlas,
			n:         *loadN,
			conc:      *loadConc,
			batch:     *loadBatch,
			seed:      *seed,
		}); err != nil {
			fmt.Fprintln(stderr, "inano-eval: loadgen:", err)
			return 1
		}
		return 0
	}

	if *scaleBuild {
		return runScaleBuild(scaleBuildConfig{
			seed: *seed, ases: *scaleASes, prefixes: *scalePrefixes,
			vps: *scaleVPs, targetsPerVP: *scaleTargetsPerVP, clients: *scaleClients,
			verifyPairs: *scaleVerifyPairs, maxRSSMB: *maxRSSMB,
		}, stdout, stderr)
	}

	if *scenarioName != "" {
		if *scale != "quick" && *scale != "medium" {
			fmt.Fprintf(stderr, "inano-eval: -scenario supports -scale quick or medium, not %q\n", *scale)
			return 2
		}
		rep, err := scenario.Replay(*scenarioName, scenario.Config{
			Seed: *seed, Scale: *scale, Mutation: *scenarioMut,
		})
		if err != nil {
			fmt.Fprintln(stderr, "inano-eval:", err)
			return 2
		}
		fmt.Fprintf(stdout, "# iPlane Nano scenario replay — scale=%s seed=%d\n", *scale, *seed)
		fmt.Fprint(stdout, rep.Render())
		g.Check(rep.Err() == nil, "%v", rep.Err())
		return g.Code()
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig(*seed)
	case "medium":
		cfg = experiments.MediumConfig(*seed)
	case "eval":
		cfg = experiments.EvalConfig(*seed)
	default:
		fmt.Fprintf(stderr, "inano-eval: unknown scale %q\n", *scale)
		return 2
	}

	if *upStructMode {
		fmt.Fprintf(stdout, "# iPlane Nano upstream structure — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Fprintf(stdout, "world: %s\n\n", lab.W.Top.Stats())
		res := experiments.UpstreamStructure(lab, *upReporters, *upMinReporters)
		fmt.Fprint(stdout, res.Render())
		g.Check(res.AccAfter > res.AccBefore, "hop-fold delta did not improve the non-reporter's hop-level path accuracy")
		g.Check(res.FabricatedShipped == 0, "a single lying reporter shipped fabricated path structure")
		return g.Code()
	}

	if *upstreamMode {
		fmt.Fprintf(stdout, "# iPlane Nano upstream sharing — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Fprintf(stdout, "world: %s\n\n", lab.W.Top.Stats())
		res := experiments.UpstreamLoop(lab, *upReporters, *upMinReporters)
		fmt.Fprint(stdout, res.Render())
		g.Check(res.ErrAfter < res.ErrBefore, "aggregated delta did not reduce the non-reporter's mean prediction error")
		g.Check(res.AdvWithin, "adversarial reporter escaped the median bound")
		return g.Code()
	}

	if *feedbackMode {
		fmt.Fprintf(stdout, "# iPlane Nano feedback loop — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Fprintf(stdout, "world: %s\n\n", lab.W.Top.Stats())
		res := experiments.FeedbackLoop(lab, *fbBudget, *fbRounds)
		fmt.Fprint(stdout, res.Render())
		g.Check(res.ErrAfter < res.ErrBefore, "feedback loop did not reduce mean prediction error")
		return g.Code()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	start := time.Now()
	fmt.Fprintf(stdout, "# iPlane Nano evaluation — scale=%s seed=%d\n", *scale, *seed)
	lab := experiments.NewLab(cfg)
	fmt.Fprintf(stdout, "world: %s\n", lab.W.Top.Stats())
	fmt.Fprintf(stdout, "campaign: %d vantage points x %d targets, %d validation sources\n\n",
		len(lab.VPs), len(lab.Targets), len(lab.ValSrcs))

	section := func(name string, f func() string) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		out := f()
		fmt.Fprintf(stdout, "%s\n[%s in %v]\n\n", out, name, time.Since(t0).Round(time.Millisecond))
	}

	section("table2", func() string { return experiments.Table2AtlasSize(lab).Render() })
	section("scaling", func() string { return experiments.VantagePointScaling(lab, 4, 20, 20).Render() })
	section("fig4", func() string { return experiments.Fig4PathStationarity(lab).Render() })
	section("loss", func() string { return experiments.LossStationarity(lab, 3000).Render() })
	section("fig5", func() string { return experiments.Fig5Accuracy(lab).Render() })
	section("fig6", func() string { return experiments.Fig6LatencyError(lab).Render() })
	section("fig7", func() string { return experiments.Fig7ClosestRanking(lab).Render() })
	section("fig8", func() string { return experiments.Fig8LossError(lab).Render() })
	section("fig9", func() string {
		a := experiments.Fig9CDN(lab, 30_000, 199, 5).Render()
		b := experiments.Fig9CDN(lab, 1_500_000, 199, 5).Render()
		return a + "\n" + b
	})
	section("fig10", func() string { return experiments.Fig10VoIP(lab, 1200).Render() })
	section("fig11", func() string { return experiments.Fig11Detour(lab, 30, 8).Render() })

	fmt.Fprintf(stdout, "total: %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

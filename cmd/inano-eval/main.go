// Command inano-eval regenerates the paper's tables and figures against a
// synthetic world and prints them in the layout of the paper's evaluation
// section. See EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	inano-eval [-scale quick|medium|eval] [-seed N] [-exp all|table2|scaling|fig4|loss|fig5|fig6|fig7|fig8|fig9|fig10|fig11]
//
// With -loadgen it instead drives a running inanod daemon with serving
// workloads (concurrent singles or streamed batches) and reports
// client-observed latency percentiles and throughput:
//
//	inano-eval -loadgen http://127.0.0.1:7353 -load-atlas atlas.bin -load-n 50000 -load-conc 16
//	inano-eval -loadgen http://127.0.0.1:7353 -load-atlas atlas.bin -load-n 200000 -load-batch 50000 -load-conc 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"inano/internal/experiments"
)

func main() {
	scale := flag.String("scale", "medium", "world scale: quick, medium, or eval")
	seed := flag.Int64("seed", 42, "world seed")
	exp := flag.String("exp", "all", "experiment to run (comma-separated), or all")
	feedbackMode := flag.Bool("feedback", false, "run the measurement-feedback-loop experiment (error before/after corrective probes)")
	fbBudget := flag.Int("feedback-budget", 8, "corrective probes per round in -feedback mode")
	fbRounds := flag.Int("feedback-rounds", 4, "corrective rounds in -feedback mode")
	upstreamMode := flag.Bool("upstream", false, "run the upstream-observation-sharing replay (non-reporting client error before/after the aggregated delta)")
	upStructMode := flag.Bool("upstream-structure", false, "run the structural upstream replay (non-reporting client hop-level path accuracy before/after the hop-fold delta)")
	upReporters := flag.Int("upstream-reporters", 0, "reporting clients in -upstream/-upstream-structure mode (0 = all validation sources but one)")
	upMinReporters := flag.Int("upstream-min-reporters", 3, "min distinct reporters behind a folded aggregate in -upstream/-upstream-structure mode")
	loadgen := flag.String("loadgen", "", "load-generator mode: base URL of a running inanod (e.g. http://127.0.0.1:7353)")
	loadAtlas := flag.String("load-atlas", "atlas.bin", "atlas file the daemon serves (source of queryable prefixes)")
	loadN := flag.Int("load-n", 10_000, "total queries (singles) or pairs (batch) to issue")
	loadConc := flag.Int("load-conc", 8, "concurrent workers (singles) or streams (batch)")
	loadBatch := flag.Int("load-batch", 0, "pairs per /v1/batch stream; 0 = single-query mode")
	flag.Parse()

	if *loadgen != "" {
		if err := runLoadgen(loadgenConfig{
			baseURL:   *loadgen,
			atlasPath: *loadAtlas,
			n:         *loadN,
			conc:      *loadConc,
			batch:     *loadBatch,
			seed:      *seed,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "inano-eval: loadgen:", err)
			os.Exit(1)
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig(*seed)
	case "medium":
		cfg = experiments.MediumConfig(*seed)
	case "eval":
		cfg = experiments.EvalConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "inano-eval: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *upStructMode {
		fmt.Printf("# iPlane Nano upstream structure — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Printf("world: %s\n\n", lab.W.Top.Stats())
		res := experiments.UpstreamStructure(lab, *upReporters, *upMinReporters)
		fmt.Print(res.Render())
		if res.AccAfter <= res.AccBefore {
			fmt.Fprintln(os.Stderr, "inano-eval: hop-fold delta did not improve the non-reporter's hop-level path accuracy")
			os.Exit(1)
		}
		if res.FabricatedShipped != 0 {
			fmt.Fprintln(os.Stderr, "inano-eval: a single lying reporter shipped fabricated path structure")
			os.Exit(1)
		}
		return
	}

	if *upstreamMode {
		fmt.Printf("# iPlane Nano upstream sharing — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Printf("world: %s\n\n", lab.W.Top.Stats())
		res := experiments.UpstreamLoop(lab, *upReporters, *upMinReporters)
		fmt.Print(res.Render())
		if res.ErrAfter >= res.ErrBefore {
			fmt.Fprintln(os.Stderr, "inano-eval: aggregated delta did not reduce the non-reporter's mean prediction error")
			os.Exit(1)
		}
		if !res.AdvWithin {
			fmt.Fprintln(os.Stderr, "inano-eval: adversarial reporter escaped the median bound")
			os.Exit(1)
		}
		return
	}

	if *feedbackMode {
		fmt.Printf("# iPlane Nano feedback loop — scale=%s seed=%d\n", *scale, *seed)
		lab := experiments.NewLab(cfg)
		fmt.Printf("world: %s\n\n", lab.W.Top.Stats())
		res := experiments.FeedbackLoop(lab, *fbBudget, *fbRounds)
		fmt.Print(res.Render())
		if res.ErrAfter >= res.ErrBefore {
			fmt.Fprintln(os.Stderr, "inano-eval: feedback loop did not reduce mean prediction error")
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }

	start := time.Now()
	fmt.Printf("# iPlane Nano evaluation — scale=%s seed=%d\n", *scale, *seed)
	lab := experiments.NewLab(cfg)
	fmt.Printf("world: %s\n", lab.W.Top.Stats())
	fmt.Printf("campaign: %d vantage points x %d targets, %d validation sources\n\n",
		len(lab.VPs), len(lab.Targets), len(lab.ValSrcs))

	section := func(name string, f func() string) {
		if !run(name) {
			return
		}
		t0 := time.Now()
		out := f()
		fmt.Printf("%s\n[%s in %v]\n\n", out, name, time.Since(t0).Round(time.Millisecond))
	}

	section("table2", func() string { return experiments.Table2AtlasSize(lab).Render() })
	section("scaling", func() string { return experiments.VantagePointScaling(lab, 4, 20, 20).Render() })
	section("fig4", func() string { return experiments.Fig4PathStationarity(lab).Render() })
	section("loss", func() string { return experiments.LossStationarity(lab, 3000).Render() })
	section("fig5", func() string { return experiments.Fig5Accuracy(lab).Render() })
	section("fig6", func() string { return experiments.Fig6LatencyError(lab).Render() })
	section("fig7", func() string { return experiments.Fig7ClosestRanking(lab).Render() })
	section("fig8", func() string { return experiments.Fig8LossError(lab).Render() })
	section("fig9", func() string {
		a := experiments.Fig9CDN(lab, 30_000, 199, 5).Render()
		b := experiments.Fig9CDN(lab, 1_500_000, 199, 5).Render()
		return a + "\n" + b
	})
	section("fig10", func() string { return experiments.Fig10VoIP(lab, 1200).Render() })
	section("fig11", func() string { return experiments.Fig11Detour(lab, 30, 8).Render() })

	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

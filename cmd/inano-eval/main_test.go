package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGateVerdicts(t *testing.T) {
	var errb bytes.Buffer
	g := &gate{stderr: &errb}
	if !g.Check(true, "fine") {
		t.Fatal("passing check returned false")
	}
	if g.Code() != 0 || errb.Len() != 0 {
		t.Fatalf("clean gate: code %d, stderr %q", g.Code(), errb.String())
	}
	if g.Check(false, "broken %d", 7) {
		t.Fatal("failing check returned true")
	}
	if g.Code() != 1 {
		t.Fatalf("failed gate code %d, want 1", g.Code())
	}
	if got := errb.String(); !strings.Contains(got, "inano-eval: broken 7") {
		t.Fatalf("stderr %q missing prefixed failure", got)
	}
}

// TestRunUsageErrors pins exit code 2 for every malformed invocation —
// distinct from 1, which means invariants failed.
func TestRunUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":      {"-no-such-flag"},
		"unknown scale":     {"-scale", "wat"},
		"unknown scenario":  {"-scenario", "nope"},
		"unknown mutation":  {"-scenario", "churn", "-scenario-mutate", "nope"},
		"scenario at eval":  {"-scenario", "churn", "-scale", "eval"},
		"scale-build tiny1": {"-scale-build", "-scale-ases", "1"},
		"scale-build huge":  {"-scale-build", "-scale-ases", "100", "-scale-prefixes", "-5"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", args, code, errb.String())
			}
		})
	}
}

// TestRunScenarioExitContract runs one full scenario through the CLI
// layer: the known-good replay must exit 0 and the armed mutation must
// exit 1 — the contract CI's scenario job relies on.
func TestRunScenarioExitContract(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario replay")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "flashcrowd", "-scale", "quick", "-seed", "42"}, &out, &errb); code != 0 {
		t.Fatalf("known-good flashcrowd exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "=> PASS") {
		t.Fatalf("missing pass verdict:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-scenario", "flashcrowd", "-scale", "quick", "-seed", "42", "-scenario-mutate", "cache-off"}, &out, &errb)
	if code != 1 {
		t.Fatalf("mutated flashcrowd exited %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "inano-eval:") {
		t.Fatalf("mutated run produced no stderr diagnostic")
	}
}

// TestRunScaleBuildTiny drives the out-of-core build mode end to end on
// a small world, including the RSS gate plumbing.
func TestRunScaleBuildTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("scale build")
	}
	var out, errb bytes.Buffer
	args := []string{
		"-scale-build", "-scale-ases", "400", "-scale-prefixes", "3000",
		"-scale-vps", "8", "-scale-clients", "3", "-scale-verify-pairs", "200",
		"-max-rss-mb", "4096",
	}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("scale build exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, want := range []string{"0 load-path mismatches", "peak RSS"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

package inano

import (
	"bytes"
	"context"
	"testing"
	"time"

	"inano/internal/atlas"
	"inano/internal/netsim"
	"inano/internal/swarm"
	"inano/sim"
)

type fixture struct {
	w       *sim.World
	a       *atlas.Atlas
	vps     []Prefix
	targets []Prefix
}

func buildFixture(t testing.TB, seed int64, day int) *fixture {
	t.Helper()
	w := sim.NewWorld(sim.Tiny, seed)
	vps := w.VantagePoints(12)
	targets := w.EdgePrefixes()
	if len(targets) > 80 {
		targets = targets[:80]
	}
	// The paper's campaign probes ~90% of edge prefixes, including the
	// vantage points' own; reverse-path prediction toward a prefix needs
	// it to have been a target.
	targets = append([]Prefix(nil), targets...)
	seen := make(map[Prefix]bool, len(targets))
	for _, p := range targets {
		seen[p] = true
	}
	for _, vp := range vps {
		if !seen[vp] {
			targets = append(targets, vp)
		}
	}
	c := w.Measure(sim.CampaignOptions{Day: day, VPs: vps, Targets: targets})
	return &fixture{w: w, a: c.BuildAtlas(), vps: vps, targets: targets}
}

func TestLoadRoundTrip(t *testing.T) {
	f := buildFixture(t, 101, 0)
	var buf bytes.Buffer
	if err := f.a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	client, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if client.Day() != 0 {
		t.Fatalf("day = %d", client.Day())
	}
	info := client.QueryPrefix(f.vps[0], f.targets[5])
	direct := FromAtlas(f.a).QueryPrefix(f.vps[0], f.targets[5])
	if info.Found != direct.Found {
		t.Fatalf("decoded atlas answers differently: %+v vs %+v", info, direct)
	}
	// Latencies round-trip through the codec's 0.01 ms quantization.
	if d := info.RTTMS - direct.RTTMS; d > 1 || d < -1 {
		t.Fatalf("decoded atlas RTT %v far from direct %v", info.RTTMS, direct.RTTMS)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage atlas loaded")
	}
}

func TestQueryByIP(t *testing.T) {
	f := buildFixture(t, 102, 0)
	c := FromAtlas(f.a)
	src, dst := f.vps[0], f.targets[3]
	byIP := c.Query(src.HostIP(), dst.HostIP())
	byPfx := c.QueryPrefix(src, dst)
	if byIP.Found != byPfx.Found || byIP.RTTMS != byPfx.RTTMS {
		t.Fatal("IP and prefix queries disagree")
	}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	f := buildFixture(t, 103, 0)
	c := FromAtlas(f.a)
	var pairs [][2]IP
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]IP{f.vps[i%len(f.vps)].HostIP(), f.targets[(i*7)%len(f.targets)].HostIP()})
	}
	batch := c.QueryPairs(pairs)
	for i, pr := range pairs {
		single := c.Query(pr[0], pr[1])
		if batch[i].Found != single.Found || batch[i].RTTMS != single.RTTMS {
			t.Fatalf("batch result %d differs from single query", i)
		}
	}
}

func TestApplyDelta(t *testing.T) {
	f0 := buildFixture(t, 104, 0)
	f1 := buildFixture(t, 104, 1)
	delta := atlas.Diff(f0.a, f1.a)
	var buf bytes.Buffer
	if err := delta.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	c := FromAtlas(f0.a.Clone())
	if err := c.ApplyDelta(&buf); err != nil {
		t.Fatal(err)
	}
	if c.Day() != 1 {
		t.Fatalf("day after delta = %d", c.Day())
	}
	// Applying the same delta again must fail (wrong base day).
	var buf2 bytes.Buffer
	if err := delta.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyDelta(&buf2); err == nil {
		t.Fatal("delta applied twice")
	}
}

func TestFetchAtlasViaSwarm(t *testing.T) {
	f := buildFixture(t, 105, 0)
	var buf bytes.Buffer
	if err := f.a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	m := swarm.NewManifest("atlas-day0", data, 16<<10)
	tr, err := swarm.StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	seed, err := swarm.StartSeed(tr.Addr(), m, data)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c, err := FetchAtlas(ctx, tr.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	// The fetched client must agree with a directly constructed one, up
	// to the codec's 0.01 ms latency quantization.
	direct := FromAtlas(f.a)
	agreed := 0
	for i, src := range f.vps {
		dst := f.targets[(i*7+1)%len(f.targets)]
		a := c.QueryPrefix(src, dst)
		b := direct.QueryPrefix(src, dst)
		if a.Found != b.Found {
			t.Fatalf("swarm-fetched atlas disagrees on %v->%v: found %v vs %v", src, dst, a.Found, b.Found)
		}
		if a.Found {
			agreed++
			if diff := a.RTTMS - b.RTTMS; diff > 1 || diff < -1 {
				t.Fatalf("RTT differs beyond quantization on %v->%v: %v vs %v", src, dst, a.RTTMS, b.RTTMS)
			}
		}
	}
	if agreed == 0 {
		t.Fatal("no predictable pair to compare")
	}
}

func TestAddTraceroutesImprovesSourceCoverage(t *testing.T) {
	f := buildFixture(t, 106, 0)
	c := FromAtlas(f.a.Clone())
	// A brand-new host not in the atlas measures a few traceroutes; its
	// prefix must become queryable.
	var newSrc Prefix
	for _, p := range f.w.EdgePrefixes() {
		if _, known := f.a.PrefixCluster[p]; !known {
			newSrc = p
			break
		}
	}
	if newSrc == 0 {
		t.Skip("every edge prefix already covered in this world")
	}
	day := f.w.Sim.Day(0)
	meter := f.w.Measure(sim.CampaignOptions{Day: 0, VPs: nil, Targets: f.targets[:1]}).Meter()
	var trs []LocalTraceroute
	for k := 0; k < 10; k++ {
		dst := f.targets[(k*7+1)%len(f.targets)]
		if dst == newSrc {
			continue
		}
		mt := meter.Traceroute(newSrc, dst)
		lt := LocalTraceroute{Src: newSrc, Dst: dst}
		for _, h := range mt.Hops {
			lt.Hops = append(lt.Hops, TracerouteHop{IP: h.IP, RTTMS: h.RTTMS})
		}
		trs = append(trs, lt)
	}
	// Client-side traceroutes improve *forward* predictions from this
	// host (§4.3.1); reverse paths to a never-observed prefix remain
	// unpredictable by design.
	before := 0
	for _, dst := range f.targets[:20] {
		if dst != newSrc && c.PredictForward(newSrc, dst).Found {
			before++
		}
	}
	added := c.AddTraceroutes(trs)
	if added == 0 {
		t.Fatal("no links merged from local traceroutes")
	}
	after := 0
	for _, dst := range f.targets[:20] {
		if dst != newSrc && c.PredictForward(newSrc, dst).Found {
			after++
		}
	}
	_ = day
	if after <= before {
		t.Fatalf("forward coverage did not improve: %d -> %d (merged %d links)", before, after, added)
	}
}

func TestRankByRTTPrefersCloser(t *testing.T) {
	f := buildFixture(t, 107, 0)
	c := FromAtlas(f.a)
	src := f.vps[0]
	ranked := c.RankByRTT(src, f.targets[:20])
	if len(ranked) != 20 {
		t.Fatalf("ranked %d, want 20", len(ranked))
	}
	prev := -1.0
	for _, d := range ranked {
		info := c.QueryPrefix(src, d)
		if !info.Found {
			break // unfound sort last
		}
		if prev >= 0 && info.RTTMS < prev {
			t.Fatalf("ranking not sorted: %v after %v", info.RTTMS, prev)
		}
		prev = info.RTTMS
	}
}

func TestBestReplicaAndRelay(t *testing.T) {
	f := buildFixture(t, 108, 0)
	c := FromAtlas(f.a)
	src := f.vps[0]
	replicas := f.vps[1:6]
	if _, ok := c.BestReplica(src, replicas, 30_000); !ok {
		t.Fatal("no replica chosen")
	}
	big, ok := c.BestReplica(src, replicas, 1_500_000)
	if !ok {
		t.Fatal("no large-file replica chosen")
	}
	if _, ok := c.RelayMOS(src, f.vps[1], big); big != src && !ok {
		// RelayMOS can fail only if a leg is unpredictable.
		t.Log("relay MOS unavailable for chosen replica")
	}
	relay, ok := c.BestRelay(src, f.vps[1], f.vps[2:8], 3)
	if !ok {
		t.Fatal("no relay chosen")
	}
	if relay == src || relay == f.vps[1] {
		t.Fatal("relay is an endpoint")
	}
}

func TestRankDetoursDisjointFirst(t *testing.T) {
	f := buildFixture(t, 109, 0)
	c := FromAtlas(f.a)
	src, dst := f.vps[0], f.vps[1]
	cands := f.vps[2:10]
	ranked := c.RankDetours(src, dst, cands)
	if len(ranked) != len(cands) {
		t.Fatalf("ranked %d of %d candidates", len(ranked), len(cands))
	}
	seen := map[Prefix]bool{}
	for _, p := range ranked {
		if seen[p] {
			t.Fatalf("duplicate detour %v", p)
		}
		seen[p] = true
	}
	// The first-ranked detour must share no more clusters with the
	// direct path than the last-ranked one (monotone by construction).
	direct := c.PredictForward(src, dst)
	if direct.Found && len(ranked) >= 2 {
		shared := func(d Prefix) int {
			n := 0
			onPath := map[int32]bool{}
			for _, cl := range direct.Clusters {
				onPath[int32(cl)] = true
			}
			via := c.PredictForward(src, d)
			onward := c.PredictForward(d, dst)
			for _, p := range []Prediction{via, onward} {
				if !p.Found {
					return 1 << 20
				}
				for _, cl := range p.Clusters {
					if onPath[int32(cl)] {
						n++
					}
				}
			}
			return n
		}
		if shared(ranked[0]) > shared(ranked[len(ranked)-1]) {
			t.Errorf("first detour shares more of the direct path (%d) than the last (%d)",
				shared(ranked[0]), shared(ranked[len(ranked)-1]))
		}
	}
}

func TestConcurrentQueriesAndDelta(t *testing.T) {
	f0 := buildFixture(t, 110, 0)
	f1 := buildFixture(t, 110, 1)
	c := FromAtlas(f0.a.Clone())
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 30; i++ {
				c.QueryPrefix(f0.vps[(g+i)%len(f0.vps)], f0.targets[(g*7+i)%len(f0.targets)])
			}
		}(g)
	}
	delta := atlas.Diff(f0.a, f1.a)
	var buf bytes.Buffer
	if err := delta.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyDelta(&buf); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Day() != 1 {
		t.Fatalf("day = %d", c.Day())
	}
}

func TestPrefixHelpers(t *testing.T) {
	ip := netsim.IP(10<<24 | 5<<16 | 3<<8 | 7)
	if netsim.PrefixOf(ip) != netsim.Prefix(10<<16|5<<8|3) {
		t.Fatal("PrefixOf broken")
	}
}

package inano

import (
	"sort"

	"inano/internal/tcpmodel"
	"inano/internal/voip"
)

// RankByRTT orders destinations by predicted round-trip latency from src,
// cheapest first. Destinations with no prediction sort last, in input
// order. This backs "which peers are closest" decisions (Fig. 7).
func (c *Client) RankByRTT(src Prefix, dsts []Prefix) []Prefix {
	type scored struct {
		p    Prefix
		rtt  float64
		ok   bool
		rank int
	}
	ss := make([]scored, len(dsts))
	for i, d := range dsts {
		info := c.QueryPrefix(src, d)
		ss[i] = scored{p: d, rtt: info.RTTMS, ok: info.Found, rank: i}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].ok != ss[j].ok {
			return ss[i].ok
		}
		if !ss[i].ok {
			return ss[i].rank < ss[j].rank
		}
		return ss[i].rtt < ss[j].rtt
	})
	out := make([]Prefix, len(ss))
	for i, s := range ss {
		out[i] = s.p
	}
	return out
}

// BestReplica picks the replica predicted to minimize the download time of
// sizeBytes for the client at src, using predicted latency and loss with
// the PFTK TCP model (§7.1): short transfers are latency-dominated, long
// ones loss-sensitive. ok is false when no replica has a prediction.
func (c *Client) BestReplica(src Prefix, replicas []Prefix, sizeBytes int) (Prefix, bool) {
	params := tcpmodel.DefaultParams()
	best, bestT := Prefix(0), 0.0
	found := false
	for _, r := range replicas {
		info := c.QueryPrefix(src, r)
		if !info.Found {
			continue
		}
		t := tcpmodel.TransferTimeMS(sizeBytes, info.RTTMS, info.LossRate, params)
		if !found || t < bestT || (t == bestT && r < best) {
			best, bestT, found = r, t, true
		}
	}
	return best, found
}

// BestRelay picks a relay for a VoIP call from src to dst using the paper's
// §7.2 strategy: take the k relays minimizing predicted end-to-end loss
// through the relay, then among those the one minimizing end-to-end
// latency. ok is false when no relay has predictions for both legs.
func (c *Client) BestRelay(src, dst Prefix, relays []Prefix, k int) (Prefix, bool) {
	if k <= 0 {
		k = 10
	}
	type cand struct {
		relay Prefix
		loss  float64
		rtt   float64
	}
	var cands []cand
	for _, r := range relays {
		if r == src || r == dst {
			continue
		}
		leg1 := c.QueryPrefix(src, r)
		leg2 := c.QueryPrefix(r, dst)
		if !leg1.Found || !leg2.Found {
			continue
		}
		cands = append(cands, cand{
			relay: r,
			loss:  1 - (1-leg1.LossRate)*(1-leg2.LossRate),
			rtt:   leg1.RTTMS + leg2.RTTMS,
		})
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].loss != cands[j].loss {
			return cands[i].loss < cands[j].loss
		}
		return cands[i].relay < cands[j].relay
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		if cd.rtt < best.rtt || (cd.rtt == best.rtt && cd.relay < best.relay) {
			best = cd
		}
	}
	return best.relay, true
}

// RelayMOS predicts the mean opinion score of a call from src to dst
// relayed through relay.
func (c *Client) RelayMOS(src, dst, relay Prefix) (float64, bool) {
	leg1 := c.QueryPrefix(src, relay)
	leg2 := c.QueryPrefix(relay, dst)
	if !leg1.Found || !leg2.Found {
		return 0, false
	}
	return voip.RelayScore(leg1.RTTMS, leg1.LossRate, leg2.RTTMS, leg2.LossRate), true
}

// RankDetours orders candidate detour nodes for recovering connectivity
// from src to dst, maximizing path disjointness (§7.3): the (k+1)-th detour
// minimizes first the PoP clusters and then the ASes shared with the direct
// path and with the k previously chosen detours.
func (c *Client) RankDetours(src, dst Prefix, candidates []Prefix) []Prefix {
	direct := c.PredictForward(src, dst)
	usedClusters := make(map[int32]int)
	usedASes := make(map[ASN]int)
	markPath := func(p Prediction) {
		for _, cl := range p.Clusters {
			usedClusters[int32(cl)]++
		}
		for _, a := range p.ASPath {
			usedASes[a]++
		}
	}
	if direct.Found {
		markPath(direct)
	}
	type detourPath struct {
		p      Prefix
		via    Prediction // src -> detour
		onward Prediction // detour -> dst
		ok     bool
	}
	paths := make([]detourPath, 0, len(candidates))
	for _, d := range candidates {
		if d == src || d == dst {
			continue
		}
		via := c.PredictForward(src, d)
		onward := c.PredictForward(d, dst)
		paths = append(paths, detourPath{p: d, via: via, onward: onward, ok: via.Found && onward.Found})
	}
	var out []Prefix
	remaining := paths
	for len(remaining) > 0 {
		bestIdx, bestPoP, bestAS := -1, 1<<30, 1<<30
		for i, dp := range remaining {
			pop, as := 1<<29, 1<<29 // unpredictable detours rank behind predictable ones
			if dp.ok {
				pop, as = 0, 0
				count := func(p Prediction, skipEnds int) {
					cls := p.Clusters
					asp := p.ASPath
					// The endpoints' own attachment clusters/ASes are
					// shared by construction; they carry no signal and
					// would swamp the disjointness comparison.
					if len(cls) > 2*skipEnds {
						cls = cls[skipEnds : len(cls)-skipEnds]
					}
					if len(asp) > 2*skipEnds {
						asp = asp[skipEnds : len(asp)-skipEnds]
					}
					for _, cl := range cls {
						if usedClusters[int32(cl)] > 0 {
							pop++
						}
					}
					for _, a := range asp {
						if usedASes[a] > 0 {
							as++
						}
					}
				}
				count(dp.via, 1)
				count(dp.onward, 1)
			}
			if pop < bestPoP || (pop == bestPoP && as < bestAS) ||
				(pop == bestPoP && as == bestAS && bestIdx >= 0 && dp.p < remaining[bestIdx].p) {
				bestIdx, bestPoP, bestAS = i, pop, as
			}
		}
		chosen := remaining[bestIdx]
		out = append(out, chosen.p)
		if chosen.ok {
			markPath(chosen.via)
			markPath(chosen.onward)
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

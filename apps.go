package inano

import (
	"context"
	"sort"

	"inano/internal/tcpmodel"
	"inano/internal/voip"
)

// The application helpers below are built on the batch query path: each
// call assembles its full set of (src, dst) legs and issues one
// QueryBatch/PredictForwardBatch, so predictions sharing a destination
// tree are computed once and distinct trees fan across workers, instead of
// running one Dijkstra per sequential Query.

// queryAll answers one src against many dsts on a single engine snapshot.
func (c *Client) queryAll(src Prefix, dsts []Prefix) []PathInfo {
	pairs := make([][2]Prefix, len(dsts))
	for i, d := range dsts {
		pairs[i] = [2]Prefix{src, d}
	}
	out, err := c.engineSnapshot().QueryBatch(context.Background(), pairs)
	if err != nil {
		// Unreachable with a background context; keep callers total anyway.
		return make([]PathInfo, len(dsts))
	}
	return out
}

// RankByRTT orders destinations by predicted round-trip latency from src,
// cheapest first. Destinations with no prediction sort last, in input
// order. This backs "which peers are closest" decisions (Fig. 7).
func (c *Client) RankByRTT(src Prefix, dsts []Prefix) []Prefix {
	infos := c.queryAll(src, dsts)
	type scored struct {
		p    Prefix
		rtt  float64
		ok   bool
		rank int
	}
	ss := make([]scored, len(dsts))
	for i, d := range dsts {
		ss[i] = scored{p: d, rtt: infos[i].RTTMS, ok: infos[i].Found, rank: i}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].ok != ss[j].ok {
			return ss[i].ok
		}
		if !ss[i].ok {
			return ss[i].rank < ss[j].rank
		}
		return ss[i].rtt < ss[j].rtt
	})
	out := make([]Prefix, len(ss))
	for i, s := range ss {
		out[i] = s.p
	}
	return out
}

// replicaScore is one replica's predicted download time; ok is false when
// the path has no prediction.
type replicaScore struct {
	p    Prefix
	t    float64
	ok   bool
	rank int // input position, preserved for no-prediction ordering
}

// scoreReplicas queries every replica in one batch and returns them sorted
// cheapest predicted download first (PFTK TCP model over predicted latency
// and loss, §7.1: short transfers are latency-dominated, long ones
// loss-sensitive). Replicas with no prediction sort last, in input order;
// ties break on the lower prefix. This ordering is the single definition
// shared by RankReplicas and BestReplica.
func (c *Client) scoreReplicas(src Prefix, replicas []Prefix, sizeBytes int) []replicaScore {
	infos := c.queryAll(src, replicas)
	params := tcpmodel.DefaultParams()
	ss := make([]replicaScore, len(replicas))
	for i, r := range replicas {
		s := replicaScore{p: r, ok: infos[i].Found, rank: i}
		if s.ok {
			s.t = tcpmodel.TransferTimeMS(sizeBytes, infos[i].RTTMS, infos[i].LossRate, params)
		}
		ss[i] = s
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].ok != ss[j].ok {
			return ss[i].ok
		}
		if !ss[i].ok {
			return ss[i].rank < ss[j].rank
		}
		if ss[i].t != ss[j].t {
			return ss[i].t < ss[j].t
		}
		return ss[i].p < ss[j].p
	})
	return ss
}

// RankReplicas orders replicas by predicted download time of sizeBytes for
// the client at src, cheapest first. Replicas with no prediction sort
// last, in input order.
func (c *Client) RankReplicas(src Prefix, replicas []Prefix, sizeBytes int) []Prefix {
	ss := c.scoreReplicas(src, replicas, sizeBytes)
	out := make([]Prefix, len(ss))
	for i, s := range ss {
		out[i] = s.p
	}
	return out
}

// BestReplica picks the replica predicted to minimize the download time of
// sizeBytes for the client at src — always RankReplicas' first entry. ok
// is false when no replica has a prediction.
func (c *Client) BestReplica(src Prefix, replicas []Prefix, sizeBytes int) (Prefix, bool) {
	ss := c.scoreReplicas(src, replicas, sizeBytes)
	if len(ss) == 0 || !ss[0].ok {
		return 0, false
	}
	return ss[0].p, true
}

// relayLegs predicts both legs (src->relay, relay->dst) for every usable
// relay in one batch; the src->relay legs share src's reverse tree and
// every relay->dst leg shares dst's forward tree. Relays equal to an
// endpoint cannot carry the call and are filtered out before querying;
// kept lists the relays actually scored, with legs[2*i] and legs[2*i+1]
// holding kept[i]'s legs.
func (c *Client) relayLegs(ctx context.Context, src, dst Prefix, relays []Prefix) (kept []Prefix, legs []PathInfo, err error) {
	kept = make([]Prefix, 0, len(relays))
	pairs := make([][2]Prefix, 0, 2*len(relays))
	for _, r := range relays {
		if r == src || r == dst {
			continue
		}
		kept = append(kept, r)
		pairs = append(pairs, [2]Prefix{src, r}, [2]Prefix{r, dst})
	}
	legs, err = c.engineSnapshot().QueryBatch(ctx, pairs)
	return kept, legs, err
}

// BestRelay picks a relay for a VoIP call from src to dst using the paper's
// §7.2 strategy: take the k relays minimizing predicted end-to-end loss
// through the relay, then among those the one minimizing end-to-end
// latency. ok is false when no relay has predictions for both legs.
func (c *Client) BestRelay(src, dst Prefix, relays []Prefix, k int) (Prefix, bool) {
	pick, ok, _ := c.BestRelayContext(context.Background(), src, dst, relays, k)
	return pick, ok
}

// BestRelayContext is BestRelay with cancellation bounding call-setup
// latency: when ctx expires the underlying batch aborts and ctx.Err() is
// returned.
func (c *Client) BestRelayContext(ctx context.Context, src, dst Prefix, relays []Prefix, k int) (Prefix, bool, error) {
	choice, ok, err := c.BestRelayInfo(ctx, src, dst, relays, k)
	return choice.Relay, ok, err
}

// RelayChoice is the outcome of relay selection: the chosen relay plus
// its predicted end-to-end performance through both legs — what a serving
// daemon reports back to the caller placing the call.
type RelayChoice struct {
	Relay Prefix
	// RTTMS is the predicted end-to-end round-trip latency through the
	// relay (both legs).
	RTTMS float64
	// LossRate is the predicted end-to-end loss rate through the relay.
	LossRate float64
	// MOS is the predicted mean opinion score of a call through the relay.
	MOS float64
}

// BestRelayInfo picks a relay with the paper's §7.2 strategy (top-k by
// predicted loss, then minimum latency among those) and returns the
// choice annotated with its predicted end-to-end performance. ok is false
// when no relay has predictions for both legs.
func (c *Client) BestRelayInfo(ctx context.Context, src, dst Prefix, relays []Prefix, k int) (RelayChoice, bool, error) {
	if k <= 0 {
		k = 10
	}
	kept, legs, err := c.relayLegs(ctx, src, dst, relays)
	if err != nil {
		return RelayChoice{}, false, err
	}
	type cand struct {
		relay      Prefix
		loss       float64
		rtt        float64
		leg1, leg2 PathInfo
	}
	var cands []cand
	for i, r := range kept {
		leg1, leg2 := legs[2*i], legs[2*i+1]
		if !leg1.Found || !leg2.Found {
			continue
		}
		cands = append(cands, cand{
			relay: r,
			loss:  1 - (1-leg1.LossRate)*(1-leg2.LossRate),
			rtt:   leg1.RTTMS + leg2.RTTMS,
			leg1:  leg1,
			leg2:  leg2,
		})
	}
	if len(cands) == 0 {
		return RelayChoice{}, false, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].loss != cands[j].loss {
			return cands[i].loss < cands[j].loss
		}
		return cands[i].relay < cands[j].relay
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		if cd.rtt < best.rtt || (cd.rtt == best.rtt && cd.relay < best.relay) {
			best = cd
		}
	}
	return RelayChoice{
		Relay:    best.relay,
		RTTMS:    best.rtt,
		LossRate: best.loss,
		MOS:      voip.RelayScore(best.leg1.RTTMS, best.leg1.LossRate, best.leg2.RTTMS, best.leg2.LossRate),
	}, true, nil
}

// RelayMOS predicts the mean opinion score of a call from src to dst
// relayed through relay.
func (c *Client) RelayMOS(src, dst, relay Prefix) (float64, bool) {
	pairs := [][2]Prefix{{src, relay}, {relay, dst}}
	legs, err := c.engineSnapshot().QueryBatch(context.Background(), pairs)
	if err != nil {
		return 0, false
	}
	leg1, leg2 := legs[0], legs[1]
	if !leg1.Found || !leg2.Found {
		return 0, false
	}
	return voip.RelayScore(leg1.RTTMS, leg1.LossRate, leg2.RTTMS, leg2.LossRate), true
}

// RankDetours orders candidate detour nodes for recovering connectivity
// from src to dst, maximizing path disjointness (§7.3): the (k+1)-th detour
// minimizes first the PoP clusters and then the ASes shared with the direct
// path and with the k previously chosen detours.
func (c *Client) RankDetours(src, dst Prefix, candidates []Prefix) []Prefix {
	// One batch predicts the direct path plus both legs of every detour:
	// all src->X legs share src's plane, all X->dst legs share dst's tree.
	pairs := make([][2]Prefix, 0, 2*len(candidates)+1)
	pairs = append(pairs, [2]Prefix{src, dst})
	kept := make([]Prefix, 0, len(candidates))
	for _, d := range candidates {
		if d == src || d == dst {
			continue
		}
		kept = append(kept, d)
		pairs = append(pairs, [2]Prefix{src, d}, [2]Prefix{d, dst})
	}
	preds, err := c.engineSnapshot().PredictBatch(context.Background(), pairs)
	if err != nil {
		// Unreachable with a background context; keep the helper total.
		preds = make([]Prediction, len(pairs))
	}
	direct := preds[0]

	usedClusters := make(map[int32]int)
	usedASes := make(map[ASN]int)
	markPath := func(p Prediction) {
		for _, cl := range p.Clusters {
			usedClusters[int32(cl)]++
		}
		for _, a := range p.ASPath {
			usedASes[a]++
		}
	}
	if direct.Found {
		markPath(direct)
	}
	type detourPath struct {
		p      Prefix
		via    Prediction // src -> detour
		onward Prediction // detour -> dst
		ok     bool
	}
	paths := make([]detourPath, len(kept))
	for i, d := range kept {
		via, onward := preds[1+2*i], preds[2+2*i]
		paths[i] = detourPath{p: d, via: via, onward: onward, ok: via.Found && onward.Found}
	}
	var out []Prefix
	remaining := paths
	for len(remaining) > 0 {
		bestIdx, bestPoP, bestAS := -1, 1<<30, 1<<30
		for i, dp := range remaining {
			pop, as := 1<<29, 1<<29 // unpredictable detours rank behind predictable ones
			if dp.ok {
				pop, as = 0, 0
				count := func(p Prediction, skipEnds int) {
					cls := p.Clusters
					asp := p.ASPath
					// The endpoints' own attachment clusters/ASes are
					// shared by construction; they carry no signal and
					// would swamp the disjointness comparison.
					if len(cls) > 2*skipEnds {
						cls = cls[skipEnds : len(cls)-skipEnds]
					}
					if len(asp) > 2*skipEnds {
						asp = asp[skipEnds : len(asp)-skipEnds]
					}
					for _, cl := range cls {
						if usedClusters[int32(cl)] > 0 {
							pop++
						}
					}
					for _, a := range asp {
						if usedASes[a] > 0 {
							as++
						}
					}
				}
				count(dp.via, 1)
				count(dp.onward, 1)
			}
			if pop < bestPoP || (pop == bestPoP && as < bestAS) ||
				(pop == bestPoP && as == bestAS && bestIdx >= 0 && dp.p < remaining[bestIdx].p) {
				bestIdx, bestPoP, bestAS = i, pop, as
			}
		}
		chosen := remaining[bestIdx]
		out = append(out, chosen.p)
		if chosen.ok {
			markPath(chosen.via)
			markPath(chosen.onward)
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

package inano

import "testing"

// TestAddTraceroutesAllUnresponsiveIsNoOp is the regression test for the
// no-op path: a batch of traceroutes whose hops are all unresponsive (zero
// IPs) must merge nothing — and must not clone the atlas or rebuild the
// engine, so a daemon feeding failed measurements through this path never
// invalidates the warm tree cache.
func TestAddTraceroutesAllUnresponsiveIsNoOp(t *testing.T) {
	f := buildFixture(t, 130, 0)
	c := FromAtlas(f.a)
	atlasBefore, engineBefore := c.atlas, c.engine
	clustersBefore := c.atlas.NumClusters

	trs := []LocalTraceroute{
		{Src: f.vps[0], Dst: f.targets[0], Hops: []TracerouteHop{{IP: 0}, {IP: 0}, {IP: 0}}},
		{Src: f.vps[1], Dst: f.targets[1], Hops: []TracerouteHop{{IP: 0}}},
		{Src: f.vps[2], Dst: f.targets[2]}, // no hops at all
	}
	if added := c.AddTraceroutes(trs); added != 0 {
		t.Fatalf("AddTraceroutes merged %d changes from all-unresponsive traceroutes, want 0", added)
	}
	if c.atlas != atlasBefore {
		t.Fatal("atlas was cloned for a no-op merge")
	}
	if c.engine != engineBefore {
		t.Fatal("engine was rebuilt for a no-op merge")
	}
	if c.atlas.NumClusters != clustersBefore {
		t.Fatalf("cluster count changed %d -> %d on a no-op merge", clustersBefore, c.atlas.NumClusters)
	}

	// Empty input is equally a no-op.
	if added := c.AddTraceroutes(nil); added != 0 || c.engine != engineBefore {
		t.Fatal("nil traceroute batch must not touch the engine")
	}
}

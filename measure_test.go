package inano

import (
	"bytes"
	"context"
	"testing"
	"time"

	"inano/internal/feedback"
	"inano/internal/netsim"
	"inano/sim"
)

// TestAddTraceroutesAllUnresponsiveIsNoOp is the regression test for the
// no-op path: a batch of traceroutes whose hops are all unresponsive (zero
// IPs) must merge nothing — and must not clone the atlas or rebuild the
// engine, so a daemon feeding failed measurements through this path never
// invalidates the warm tree cache.
func TestAddTraceroutesAllUnresponsiveIsNoOp(t *testing.T) {
	f := buildFixture(t, 130, 0)
	c := FromAtlas(f.a)
	atlasBefore, engineBefore := c.atlas, c.engine
	clustersBefore := c.atlas.NumClusters

	trs := []LocalTraceroute{
		{Src: f.vps[0], Dst: f.targets[0], Hops: []TracerouteHop{{IP: 0}, {IP: 0}, {IP: 0}}},
		{Src: f.vps[1], Dst: f.targets[1], Hops: []TracerouteHop{{IP: 0}}},
		{Src: f.vps[2], Dst: f.targets[2]}, // no hops at all
	}
	if added := c.AddTraceroutes(trs); added != 0 {
		t.Fatalf("AddTraceroutes merged %d changes from all-unresponsive traceroutes, want 0", added)
	}
	if c.atlas != atlasBefore {
		t.Fatal("atlas was cloned for a no-op merge")
	}
	if c.engine != engineBefore {
		t.Fatal("engine was rebuilt for a no-op merge")
	}
	if c.atlas.NumClusters != clustersBefore {
		t.Fatalf("cluster count changed %d -> %d on a no-op merge", clustersBefore, c.atlas.NumClusters)
	}

	// Empty input is equally a no-op.
	if added := c.AddTraceroutes(nil); added != 0 || c.engine != engineBefore {
		t.Fatal("nil traceroute batch must not touch the engine")
	}
}

// realTraceroutes measures a batch of traceroutes from src with the
// world's harness, converted to the client wire type.
func realTraceroutes(f *fixture, src Prefix, n int) []LocalTraceroute {
	meter := f.w.Measure(sim.CampaignOptions{Day: 0, VPs: nil, Targets: f.targets[:1]}).Meter()
	var trs []LocalTraceroute
	for k := 0; len(trs) < n; k++ {
		dst := f.targets[(k*7+1)%len(f.targets)]
		if dst == src {
			continue
		}
		mt := meter.Traceroute(src, dst)
		lt := LocalTraceroute{Src: src, Dst: dst}
		for _, h := range mt.Hops {
			lt.Hops = append(lt.Hops, TracerouteHop{IP: h.IP, RTTMS: h.RTTMS})
		}
		trs = append(trs, lt)
	}
	return trs
}

// TestAddTraceroutesIdempotent: merging the same measurements into an
// already-patched atlas must be a no-op — no second clone, no engine
// rebuild, no cluster-count drift — so a client re-reporting yesterday's
// traceroutes never invalidates its warm tree cache.
func TestAddTraceroutesIdempotent(t *testing.T) {
	f := buildFixture(t, 131, 0)
	c := FromAtlas(f.a.Clone())
	trs := realTraceroutes(f, f.vps[0], 8)
	if added := c.AddTraceroutes(trs); added == 0 {
		t.Skip("world produced no mergeable traceroutes")
	}
	engineAfterFirst, clustersAfterFirst := c.engine, c.atlas.NumClusters
	if again := c.AddTraceroutes(trs); again != 0 {
		t.Fatalf("second merge of identical traceroutes added %d changes", again)
	}
	if c.engine != engineAfterFirst {
		t.Fatal("engine rebuilt for an idempotent merge")
	}
	if c.atlas.NumClusters != clustersAfterFirst {
		t.Fatalf("cluster count drifted %d -> %d", clustersAfterFirst, c.atlas.NumClusters)
	}
}

// TestAddTraceroutesDuplicateHops: interfaces repeating along a path
// (consecutive duplicate answers, several interfaces of one cluster) must
// never produce self-links.
func TestAddTraceroutesDuplicateHops(t *testing.T) {
	f := buildFixture(t, 132, 0)
	c := FromAtlas(f.a.Clone())
	trs := realTraceroutes(f, f.vps[0], 6)
	// Duplicate every responsive hop in place.
	for i := range trs {
		var dup []TracerouteHop
		for _, h := range trs[i].Hops {
			dup = append(dup, h)
			if h.IP != 0 {
				dup = append(dup, TracerouteHop{IP: h.IP, RTTMS: h.RTTMS + 0.3})
			}
		}
		trs[i].Hops = dup
	}
	c.AddTraceroutes(trs)
	for _, l := range c.Atlas().Links {
		if l.From == l.To {
			t.Fatalf("self-link merged: %+v", l)
		}
	}
}

// TestAddTraceroutesDecreasingRTT: hop RTTs decreasing along a path (a
// common artifact of asymmetric reverse paths) must clamp link latencies
// at the floor, never merge a negative or zero latency.
func TestAddTraceroutesDecreasingRTT(t *testing.T) {
	f := buildFixture(t, 133, 0)
	c := FromAtlas(f.a.Clone())
	trs := realTraceroutes(f, f.vps[0], 6)
	for i := range trs {
		// Reverse each traceroute's RTT sequence so deltas go negative.
		hops := trs[i].Hops
		for j, k := 0, len(hops)-1; j < k; j, k = j+1, k-1 {
			hops[j].RTTMS, hops[k].RTTMS = hops[k].RTTMS, hops[j].RTTMS
		}
	}
	c.AddTraceroutes(trs)
	for _, l := range c.Atlas().Links {
		if l.LatencyMS < 0.1 {
			t.Fatalf("link below latency floor: %+v", l)
		}
	}
}

// TestResidualOnlyMergeKeepsTreeCache: a corrective round that only
// revises residual corrections (links already merged) must not
// cold-start the warm prediction-tree cache — route computation is
// untouched, so the new engine adopts the old cache.
func TestResidualOnlyMergeKeepsTreeCache(t *testing.T) {
	f := buildFixture(t, 108, 0)
	c := FromAtlas(f.a.Clone())
	src := f.vps[0]
	trs := realTraceroutes(f, src, 6)
	if c.AddTraceroutes(trs) == 0 {
		t.Skip("world produced no mergeable traceroutes")
	}
	// Warm the cache.
	for _, dst := range f.vps[1:] {
		c.QueryPrefix(src, dst)
	}
	warm := c.CacheStats()
	if warm.Len == 0 {
		t.Fatal("no trees cached after warming queries")
	}
	// The same paths re-measured with a prediction attached: structurally
	// a no-op, but the measured RTT teaches a residual.
	for i := range trs {
		info := c.QueryPrefix(trs[i].Src, trs[i].Dst)
		trs[i].PredictedRTTMS = info.RTTMS + 1000 // force a large residual step
		trs[i].Predicted = true
	}
	added := c.AddTraceroutes(trs)
	if added == 0 {
		t.Skip("no residuals learned (no traceroute reached its destination)")
	}
	if got := c.CacheStats(); got.Len < warm.Len || got.Builds < warm.Builds {
		t.Fatalf("residual-only merge dropped the warm tree cache: %+v -> %+v", warm, got)
	}
	if len(c.Atlas().AdjustMS) == 0 {
		t.Fatal("no residual corrections recorded")
	}
}

// TestObserveAndCorrectClosesLoop drives the full client-side feedback
// loop against the simulator: observations of true RTTs are tracked,
// the corrective budget is spent on the worst-mispredicted destinations,
// and the served predictions for those destinations move toward the
// observed truth.
func TestObserveAndCorrectClosesLoop(t *testing.T) {
	f := buildFixture(t, 108, 0)
	c := FromAtlas(f.a.Clone())
	src := f.vps[0]
	meter := f.w.Measure(sim.CampaignOptions{Day: 0, VPs: nil, Targets: f.targets[:1]}).Meter()

	type workItem struct {
		dst  Prefix
		rtt  float64
		err0 float64
	}
	// The workload queries the other vantage points: bidirectionally
	// predictable destinations, so the RTT residual corrections apply
	// (client-side probes cannot conjure reverse paths toward this host,
	// §4.3.1's asymmetric contract).
	var work []workItem
	for _, dst := range f.vps[1:] {
		if dst == src {
			continue
		}
		rtt, ok := f.w.TrueRTT(0, src, dst)
		if !ok {
			continue
		}
		info := c.QueryPrefix(src, dst)
		work = append(work, workItem{dst: dst, rtt: rtt, err0: feedback.RelErr(info.RTTMS, rtt, info.Found)})
		sample := c.ObserveRTT(src.HostIP(), dst.HostIP(), rtt)
		if sample.Err != work[len(work)-1].err0 {
			t.Fatalf("ObserveRTT error mismatch: %v vs %v", sample.Err, work[len(work)-1].err0)
		}
	}
	if len(work) < 8 {
		t.Skip("world too sparse for a feedback workload")
	}
	if got := c.FeedbackStats(); got.Entries == 0 || got.TotalSamples == 0 {
		t.Fatalf("tracker empty after observations: %+v", got)
	}

	round := c.CorrectOnce(context.Background(), feedback.SimProber{Meter: meter}, CorrectorConfig{
		Budget:   8,
		MinError: 0.05,
		Cooldown: time.Hour,
	})
	if round.Probes == 0 {
		t.Fatal("no corrective probes issued")
	}
	if round.Merged == 0 {
		t.Fatal("corrective probes merged nothing")
	}

	before, after := 0.0, 0.0
	for _, w := range work {
		info := c.QueryPrefix(src, w.dst)
		before += w.err0
		after += feedback.RelErr(info.RTTMS, w.rtt, info.Found)
	}
	if !(after < before) {
		t.Fatalf("mean error did not decrease: %.4f -> %.4f", before/float64(len(work)), after/float64(len(work)))
	}
}

// TestGlobalAdjustAppliesAndStacks: swarm-shipped corrections
// (GlobalAdjustMS, folded by the build from uploaded observations) shift
// served RTTs exactly once, survive the codec (unlike the local
// AdjustMS), and stack with a locally learned correction.
func TestGlobalAdjustAppliesAndStacks(t *testing.T) {
	f := buildFixture(t, 136, 0)
	c := FromAtlas(f.a.Clone())
	var src, dst Prefix
	var base float64
	found := false
	for _, s := range f.vps {
		for _, d := range f.vps {
			if s == d {
				continue
			}
			if info := c.QueryPrefix(s, d); info.Found {
				src, dst, base, found = s, d, info.RTTMS, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("world has no predictable pair")
	}

	a := f.a.Clone()
	a.GlobalAdjustMS[dst] = 25
	c2 := FromAtlas(a)
	if got := c2.QueryPrefix(src, dst).RTTMS; !close2(got, base+25) {
		t.Fatalf("global correction not applied: %v, want %v", got, base+25)
	}
	// The reverse query toward src must not absorb dst's correction
	// twice: only the forward leg of an answer carries its destination's
	// adjustment.
	if revBase := c.QueryPrefix(dst, src).RTTMS; revBase > 0 {
		if got := c2.QueryPrefix(dst, src).RTTMS; !close2(got, revBase) {
			t.Fatalf("reverse query absorbed dst correction: %v vs %v", got, revBase)
		}
	}

	// A local correction stacks on top of the shipped one.
	a2 := f.a.Clone()
	a2.GlobalAdjustMS[dst] = 25
	a2.AdjustMS[dst] = -10
	c3 := FromAtlas(a2)
	if got := c3.QueryPrefix(src, dst).RTTMS; !close2(got, base+15) {
		t.Fatalf("corrections did not stack: %v, want %v", got, base+15)
	}

	// And unlike AdjustMS, the global dataset survives the codec.
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Atlas().GlobalAdjustMS[dst]; got != 25 {
		t.Fatalf("global correction lost in the codec: %v", got)
	}
}

func close2(a, b float64) bool { d := a - b; return d < 0.01 && d > -0.01 }

// TestAdjustMSLocalOnly: the residual corrections are client-local state —
// they must survive Clone (the copy-on-write path) but never enter the
// encoded atlas.
func TestAdjustMSLocalOnly(t *testing.T) {
	f := buildFixture(t, 135, 0)
	a := f.a.Clone()
	a.AdjustMS[netsim.Prefix(42)] = 7
	if got := a.Clone().AdjustMS[netsim.Prefix(42)]; got != 7 {
		t.Fatalf("Clone dropped AdjustMS: %v", got)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Atlas().AdjustMS) != 0 {
		t.Fatal("AdjustMS leaked through the codec")
	}
}

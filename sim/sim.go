// Package sim is the public facade over the synthetic-Internet substrate:
// it generates deterministic worlds (topology + policy routing + churn),
// runs measurement campaigns, and builds atlases — everything a user needs
// to exercise the inano library without real traceroute datasets, and the
// data source for the evaluation harness.
package sim

import (
	"inano/internal/atlas"
	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// Scale selects a world size.
type Scale int

const (
	// Tiny worlds (tens of ASes) generate in milliseconds; good for
	// tests and quickstarts.
	Tiny Scale = iota
	// Medium worlds (hundreds of ASes) run the examples.
	Medium
	// Eval worlds (~2000 ASes) back the paper-reproduction harness.
	Eval
)

// World is a generated Internet with ground-truth routing.
type World struct {
	Top *netsim.Topology
	Sim *bgpsim.Sim
}

// NewWorld generates a world at the given scale, fully determined by seed.
func NewWorld(scale Scale, seed int64) *World {
	var cfg netsim.Config
	switch scale {
	case Tiny:
		cfg = netsim.TestConfig(seed)
	case Eval:
		cfg = netsim.EvalConfig(seed)
	default:
		cfg = netsim.DefaultConfig(seed)
	}
	top := netsim.Generate(cfg)
	return &World{Top: top, Sim: bgpsim.New(top, bgpsim.DefaultConfig())}
}

// EdgePrefixes returns the probe-able edge prefixes of the world.
func (w *World) EdgePrefixes() []netsim.Prefix { return w.Top.EdgePrefixes }

// VantagePoints picks n well-spread vantage point prefixes.
func (w *World) VantagePoints(n int) []netsim.Prefix {
	return trace.SelectVantagePoints(w.Top, n)
}

// TrueRTT returns the ground-truth RTT between two prefixes on a day.
func (w *World) TrueRTT(day int, src, dst netsim.Prefix) (float64, bool) {
	return w.Sim.Day(day).RTT(src, dst)
}

// TrueLoss returns the ground-truth one-way loss between two prefixes.
func (w *World) TrueLoss(day int, src, dst netsim.Prefix) (float64, bool) {
	return w.Sim.Day(day).FwdLoss(src, dst)
}

// TrueASPath returns the ground-truth AS path between two prefixes.
func (w *World) TrueASPath(day int, src, dst netsim.Prefix) ([]netsim.ASN, bool) {
	return w.Sim.Day(day).ASPath(w.Top.PrefixOrigin[src], dst)
}

// CampaignOptions tunes a measurement campaign.
type CampaignOptions struct {
	Day        int
	VPs        []netsim.Prefix
	Targets    []netsim.Prefix
	ClientVPs  []netsim.Prefix // end-host agents contributing FROM_SRC traces
	PerClient  int             // targets per client agent (default 50)
	LossProbes int
}

// Campaign is one day's measurements plus the artifacts needed to build an
// atlas from them.
type Campaign struct {
	world        *World
	day          *bgpsim.Day
	meter        *trace.Meter
	VPTraces     []trace.Traceroute
	ClientTraces []trace.Traceroute
	opts         CampaignOptions
}

// Measure runs a measurement campaign against the world.
func (w *World) Measure(o CampaignOptions) *Campaign {
	day := w.Sim.Day(o.Day)
	m := trace.NewMeter(day, trace.DefaultOptions())
	if o.PerClient <= 0 {
		o.PerClient = 50
	}
	c := &Campaign{world: w, day: day, meter: m, opts: o}
	vpc := trace.RunCampaign(m, o.VPs, o.Targets)
	c.VPTraces = vpc.Traceroutes
	for i, src := range o.ClientVPs {
		for k := 0; k < o.PerClient; k++ {
			dst := o.Targets[(i*131+k*17)%len(o.Targets)]
			if dst == src {
				continue
			}
			c.ClientTraces = append(c.ClientTraces, m.Traceroute(src, dst))
		}
	}
	return c
}

// BuildAtlas processes the campaign into an iNano atlas.
func (c *Campaign) BuildAtlas() *atlas.Atlas {
	return atlas.Build(atlas.BuildInput{
		Top:          c.world.Top,
		Day:          c.day,
		Meter:        c.meter,
		VPTraces:     c.VPTraces,
		ClientTraces: c.ClientTraces,
		BGPFeeds:     atlas.DefaultFeeds(c.world.Top, 8),
		ClusterCfg:   cluster.DefaultConfig(),
		LossProbes:   c.opts.LossProbes,
	})
}

// Meter exposes the campaign's measurement harness for ad-hoc probes (used
// by examples to emulate on-demand client measurements).
func (c *Campaign) Meter() *trace.Meter { return c.meter }

package sim

import "testing"

func TestWorldRoundTrip(t *testing.T) {
	w := NewWorld(Tiny, 11)
	if len(w.EdgePrefixes()) == 0 {
		t.Fatal("no edge prefixes")
	}
	vps := w.VantagePoints(8)
	if len(vps) != 8 {
		t.Fatalf("got %d vps", len(vps))
	}
	c := w.Measure(CampaignOptions{Day: 0, VPs: vps, Targets: w.EdgePrefixes()[:40]})
	if len(c.VPTraces) != 8*40 {
		t.Fatalf("got %d traces", len(c.VPTraces))
	}
	a := c.BuildAtlas()
	if a.NumClusters == 0 || len(a.Links) == 0 {
		t.Fatal("empty atlas")
	}
	if a.Day != 0 {
		t.Fatalf("atlas day %d", a.Day)
	}
}

func TestWorldTruthHelpers(t *testing.T) {
	w := NewWorld(Tiny, 12)
	eps := w.EdgePrefixes()
	src, dst := eps[0], eps[10]
	rtt, ok := w.TrueRTT(0, src, dst)
	if !ok || rtt <= 0 {
		t.Fatalf("TrueRTT = %v, %v", rtt, ok)
	}
	if loss, ok := w.TrueLoss(0, src, dst); !ok || loss < 0 || loss > 1 {
		t.Fatalf("TrueLoss = %v, %v", loss, ok)
	}
	path, ok := w.TrueASPath(0, src, dst)
	if !ok || len(path) == 0 {
		t.Fatalf("TrueASPath = %v, %v", path, ok)
	}
	if path[0] != w.Top.PrefixOrigin[src] || path[len(path)-1] != w.Top.PrefixOrigin[dst] {
		t.Fatalf("AS path endpoints wrong: %v", path)
	}
}

func TestClientAgents(t *testing.T) {
	w := NewWorld(Tiny, 13)
	vps := w.VantagePoints(4)
	agents := w.EdgePrefixes()[50:54]
	c := w.Measure(CampaignOptions{
		Day: 0, VPs: vps, Targets: w.EdgePrefixes()[:30],
		ClientVPs: agents, PerClient: 5,
	})
	if len(c.ClientTraces) == 0 {
		t.Fatal("no client traces")
	}
	for _, tr := range c.ClientTraces {
		found := false
		for _, a := range agents {
			if tr.Src == a {
				found = true
			}
		}
		if !found {
			t.Fatalf("client trace from non-agent %v", tr.Src)
		}
	}
}

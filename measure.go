package inano

import (
	"inano/internal/core"
	"inano/internal/feedback"
)

// TracerouteHop is one observed hop of a client-side traceroute. A zero IP
// records an unresponsive hop.
type TracerouteHop = feedback.Hop

// LocalTraceroute is a traceroute measured by this host (the library's
// measurement toolkit issues these daily to a few hundred random prefixes,
// §5 "Client-side Measurements" — and the feedback corrector issues them
// on demand at the worst-mispredicted destinations).
type LocalTraceroute = feedback.Traceroute

// AddTraceroutes merges locally measured traceroutes into the FROM_SRC
// plane of the atlas, improving predictions for paths out of this host
// (§4.3.1). Interfaces unknown to the atlas are grouped into local clusters
// by their /24 (a coarse client-side approximation of the server's full
// clustering). It returns the number of atlas changes merged (new links,
// plane tags, attachment entries) and rebuilds the prediction engine when
// anything changed. The merge mechanics live in internal/feedback, shared
// with the corrective scheduler.
func (c *Client) AddTraceroutes(trs []LocalTraceroute) int {
	// A traceroute can only contribute through hops that answered: links
	// need two resolvable hops, attachment entries one. A batch whose hops
	// are all unresponsive (zero IP) is a no-op — skip the atlas clone and
	// engine rebuild entirely.
	if !feedback.AnyResponsive(trs) {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.materializeLocked()
	// Copy-on-write: queries in flight keep the old snapshot.
	next := c.atlas.Clone()
	old := c.atlas
	c.atlas = next
	structural, residual := feedback.Merge(next, c.localCluster, trs)
	if structural == 0 && residual == 0 && next.NumClusters == old.NumClusters {
		c.atlas = old // nothing merged; keep the original snapshot
		return 0
	}
	if structural == 0 && next.NumClusters == old.NumClusters {
		// Residual-only merge: route computation is untouched, so the
		// new engine adopts the warm prediction-tree cache instead of
		// cold-starting the serving path every corrective round.
		c.engine = core.NewWithCache(next, c.opts, c.engine)
		return residual
	}
	feedback.Finalize(next)
	c.engine = core.New(next, c.opts)
	return structural + residual
}

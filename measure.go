package inano

import (
	"sort"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/core"
	"inano/internal/netsim"
)

// TracerouteHop is one observed hop of a client-side traceroute. A zero IP
// records an unresponsive hop.
type TracerouteHop struct {
	IP    IP
	RTTMS float64
}

// LocalTraceroute is a traceroute measured by this host (the library's
// measurement toolkit issues these daily to a few hundred random prefixes,
// §5 "Client-side Measurements").
type LocalTraceroute struct {
	Src  Prefix
	Dst  Prefix
	Hops []TracerouteHop
}

// AddTraceroutes merges locally measured traceroutes into the FROM_SRC
// plane of the atlas, improving predictions for paths out of this host
// (§4.3.1). Interfaces unknown to the atlas are grouped into local clusters
// by their /24 (a coarse client-side approximation of the server's full
// clustering). It returns the number of atlas changes merged (new links,
// plane tags, attachment entries) and rebuilds the prediction engine when
// anything changed.
func (c *Client) AddTraceroutes(trs []LocalTraceroute) int {
	// A traceroute can only contribute through hops that answered: links
	// need two resolvable hops, attachment entries one. A batch whose hops
	// are all unresponsive (zero IP) is a no-op — skip the atlas clone and
	// engine rebuild entirely.
	responsive := false
	for i := range trs {
		for _, h := range trs[i].Hops {
			if h.IP != 0 {
				responsive = true
				break
			}
		}
		if responsive {
			break
		}
	}
	if !responsive {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Copy-on-write: queries in flight keep the old snapshot.
	next := c.atlas.Clone()
	old := c.atlas
	c.atlas = next
	added := 0
	fresh := make(map[uint64]bool)
	for i := range trs {
		added += c.mergeTraceroute(&trs[i], fresh)
	}
	if added == 0 && next.NumClusters == old.NumClusters {
		c.atlas = old // nothing merged; keep the original snapshot
		return 0
	}
	sort.Slice(next.Links, func(i, j int) bool {
		a, b := next.Links[i], next.Links[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	next.InvalidateIndex()
	c.engine = core.New(next, c.opts)
	return added
}

func (c *Client) mergeTraceroute(tr *LocalTraceroute, fresh map[uint64]bool) int {
	type hopRef struct {
		cl  cluster.ClusterID
		rtt float64
	}
	var hops []hopRef
	for _, h := range tr.Hops {
		if h.IP == 0 {
			hops = append(hops, hopRef{cl: -1})
			continue
		}
		cl, ok := c.clusterForIP(h.IP)
		if !ok {
			hops = append(hops, hopRef{cl: -1})
			continue
		}
		hops = append(hops, hopRef{cl: cl, rtt: h.RTTMS})
	}
	added := 0
	for i := 0; i+1 < len(hops); i++ {
		a, b := hops[i], hops[i+1]
		if a.cl < 0 || b.cl < 0 || a.cl == b.cl {
			continue
		}
		key := atlas.LinkKey(a.cl, b.cl)
		if fresh[key] {
			continue // appended earlier in this batch
		}
		if li := c.atlas.LinkAt(a.cl, b.cl); li >= 0 {
			// Known link: make sure the FROM_SRC plane sees it.
			if c.atlas.Links[li].Planes&atlas.PlaneFromSrc == 0 {
				c.atlas.Links[li].Planes |= atlas.PlaneFromSrc
				added++
			}
			continue
		}
		lat := (b.rtt - a.rtt) / 2
		if lat < 0.1 {
			lat = 0.1
		}
		c.atlas.Links = append(c.atlas.Links, atlas.Link{
			From:      a.cl,
			To:        b.cl,
			LatencyMS: float32(lat),
			Planes:    atlas.PlaneFromSrc,
		})
		fresh[key] = true
		added++
	}
	// Record this host's attachment cluster if the atlas lacks it.
	if _, ok := c.atlas.PrefixCluster[tr.Src]; !ok {
		for _, h := range hops {
			if h.cl >= 0 {
				c.atlas.PrefixCluster[tr.Src] = h.cl
				added++
				break
			}
		}
	}
	return added
}

// clusterForIP maps an interface to a cluster: the attachment cluster of
// its /24 when the atlas knows it, otherwise a locally allocated cluster
// shared by all interfaces of that /24.
func (c *Client) clusterForIP(ip IP) (cluster.ClusterID, bool) {
	p := netsim.PrefixOf(ip)
	if cl, ok := c.atlas.PrefixCluster[p]; ok {
		return cl, true
	}
	if id, ok := c.localCluster[p]; ok {
		return cluster.ClusterID(id), true
	}
	asn, ok := c.atlas.PrefixAS[p]
	if !ok {
		return 0, false // not even BGP knows this space; ignore
	}
	id := int32(c.atlas.NumClusters)
	c.atlas.NumClusters++
	c.atlas.ClusterAS = append(c.atlas.ClusterAS, asn)
	c.localCluster[p] = id
	return cluster.ClusterID(id), true
}

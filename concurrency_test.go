package inano

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inano/internal/atlas"
)

// encodeDelta round-trips a delta through its codec, as a client applying
// swarm-fetched updates would see it.
func encodeDelta(t testing.TB, d *atlas.Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStressQueriesDuringDeltaChurn hammers Query, QueryBatch, and
// QueryPairs from many goroutines while the main goroutine ping-pongs the
// atlas between two days with ApplyDelta, rebuilding the engine each time.
// Run under -race this is the library-level concurrency stress; it also
// checks every answer is internally consistent regardless of which
// snapshot served it.
func TestStressQueriesDuringDeltaChurn(t *testing.T) {
	f0 := buildFixture(t, 120, 0)
	f1 := buildFixture(t, 120, 1)
	fwd := encodeDelta(t, atlas.Diff(f0.a, f1.a))
	back := encodeDelta(t, atlas.Diff(f1.a, f0.a))

	c := FromAtlas(f0.a.Clone())
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				src := f0.vps[(g+i)%len(f0.vps)]
				switch g % 3 {
				case 0:
					dsts := make([]IP, 6)
					for k := range dsts {
						dsts[k] = f0.targets[(g*7+i+k)%len(f0.targets)].HostIP()
					}
					infos := c.QueryBatch(src.HostIP(), dsts)
					for _, info := range infos {
						checkConsistent(t, info)
					}
					queries.Add(int64(len(infos)))
				case 1:
					pairs := make([][2]IP, 4)
					for k := range pairs {
						pairs[k] = [2]IP{src.HostIP(), f0.targets[(g*11+i*3+k)%len(f0.targets)].HostIP()}
					}
					for _, info := range c.QueryPairs(pairs) {
						checkConsistent(t, info)
					}
					queries.Add(int64(len(pairs)))
				default:
					checkConsistent(t, c.QueryPrefix(src, f0.targets[(g*13+i*5)%len(f0.targets)]))
					queries.Add(1)
				}
			}
		}(g)
	}

	// Churn the engine: each ApplyDelta swaps in a freshly built engine
	// while queries are in flight on the old snapshot.
	deadline := time.Now().Add(2 * time.Second)
	flips := 0
	for time.Now().Before(deadline) {
		d := fwd
		if flips%2 == 1 {
			d = back
		}
		if err := c.ApplyDelta(bytes.NewReader(d)); err != nil {
			t.Errorf("flip %d: %v", flips, err)
			break
		}
		flips++
	}
	stop.Store(true)
	wg.Wait()
	if flips < 2 {
		t.Fatalf("engine rebuilt only %d times", flips)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries issued during churn")
	}
	t.Logf("%d queries raced %d engine rebuilds", queries.Load(), flips)
}

// checkConsistent asserts the invariants any answer must satisfy no matter
// which atlas snapshot produced it.
func checkConsistent(t *testing.T, info PathInfo) {
	t.Helper()
	if !info.Found {
		return
	}
	if info.RTTMS != info.Fwd.LatencyMS+info.Rev.LatencyMS {
		t.Errorf("RTT %v != fwd %v + rev %v", info.RTTMS, info.Fwd.LatencyMS, info.Rev.LatencyMS)
	}
	if info.LossRate < 0 || info.LossRate > 1 {
		t.Errorf("loss %v out of range", info.LossRate)
	}
}

// TestClientQueryBatchMatchesSequential is the client-level parity check of
// the acceptance criteria: QueryBatch(src, dsts) must return exactly what
// N sequential Query calls return, in order.
func TestClientQueryBatchMatchesSequential(t *testing.T) {
	f := buildFixture(t, 121, 0)
	c := FromAtlas(f.a)
	src := f.vps[0].HostIP()
	dsts := make([]IP, 0, 25)
	for i := 0; i < 25; i++ {
		dsts = append(dsts, f.targets[(i*3)%len(f.targets)].HostIP())
	}
	batch := c.QueryBatch(src, dsts)
	if len(batch) != len(dsts) {
		t.Fatalf("batch returned %d results for %d destinations", len(batch), len(dsts))
	}
	for i, d := range dsts {
		single := c.Query(src, d)
		if batch[i].Found != single.Found || batch[i].RTTMS != single.RTTMS ||
			batch[i].LossRate != single.LossRate {
			t.Fatalf("dst %d: batch %+v != single %+v", i, batch[i], single)
		}
	}
}

// TestQueryBatchContextTimeout checks a cancelled batch surfaces the
// context error instead of partial results.
func TestQueryBatchContextTimeout(t *testing.T) {
	f := buildFixture(t, 122, 0)
	c := FromAtlas(f.a)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dsts := []IP{f.targets[0].HostIP(), f.targets[1].HostIP()}
	if _, err := c.QueryBatchContext(ctx, f.vps[0].HostIP(), dsts); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

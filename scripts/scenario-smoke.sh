#!/usr/bin/env bash
# Scenario smoke: replay every adversarial scenario on a quick seed and
# prove the harness works in both directions — each known-good replay
# must exit 0, and one armed known-bad mutation per scenario must exit
# nonzero (the exit codes the nightly and per-PR CI gates rely on).
# inano-eval is built to a real binary first: `go run` masks exit codes.
# Run from the repo root; used by CI's scenario job and runnable locally.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
bin="$workdir/inano-eval"

echo "== build"
go build -o "$bin" ./cmd/inano-eval

seed="${SCENARIO_SEED:-42}"
scenarios=(churn partition flashcrowd rollback)
declare -A mutations=(
  [churn]=poison
  [partition]=skip-missed
  [flashcrowd]=cache-off
  [rollback]=fossilize
)

for sc in "${scenarios[@]}"; do
  echo "== scenario $sc (known-good, must pass)"
  "$bin" -scenario "$sc" -scale quick -seed "$seed"

  mut="${mutations[$sc]}"
  echo "== scenario $sc -scenario-mutate $mut (known-bad, must fail)"
  if "$bin" -scenario "$sc" -scale quick -seed "$seed" -scenario-mutate "$mut" >/dev/null 2>&1; then
    echo "FATAL: mutated replay $sc/$mut exited 0 — the harness cannot detect sabotage" >&2
    exit 1
  fi
  rc=0
  "$bin" -scenario "$sc" -scale quick -seed "$seed" -scenario-mutate "$mut" >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "FATAL: mutated replay $sc/$mut exited $rc, want 1 (invariant failure, not usage error)" >&2
    exit 1
  fi
done

echo "== usage errors exit 2"
for args in "-scenario nope" "-scenario churn -scenario-mutate nope" "-scenario churn -scale eval"; do
  rc=0
  # shellcheck disable=SC2086
  "$bin" $args >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "FATAL: '$args' exited $rc, want 2" >&2
    exit 1
  fi
done

echo "scenario smoke: all ${#scenarios[@]} scenarios pass, every mutation caught, exit codes clean"

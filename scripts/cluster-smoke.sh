#!/usr/bin/env bash
# Cluster smoke test: boot 1 inano-router + 3 inanod replicas + 1
# single-node control from one flat atlas (plain processes on loopback,
# no Docker), and prove the sharded tier serves exactly what one node
# would:
#
#   1. parity        — batch + single answers through the router are
#                      byte-identical to the control's
#   2. partitioning  — per-replica /metrics show the hash ring actually
#                      split the destination space (every replica served,
#                      pairs sum to the total)
#   3. replica kill  — kill -9 one replica mid-batch-stream: zero failed
#                      pairs, answers still byte-identical, ring heals,
#                      restarted replica rejoins
#   4. day roll      — hot-apply the day-1 delta on every node mid-query:
#                      the open stream finishes clean, post-roll answers
#                      byte-identical again
#   5. drain         — SIGTERM a -drain replica under load: it leaves the
#                      ring, finishes its in-flight lines, exits 0, and
#                      the concurrent stream loses nothing
#
# Artifacts (logs, per-node /metrics and /debug/stats) land in
# $CLUSTER_OUT (default: a fresh mktemp -d) for CI upload on failure.
# Run from the repo root; used by CI's cluster job and runnable locally.
set -euo pipefail

out="${CLUSTER_OUT:-$(mktemp -d)}"
mkdir -p "$out"
workdir="$(mktemp -d)"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    if [[ -n "$pid" ]]; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# collect_stats: snapshot every node's observability surface into $out,
# so a CI failure ships the full cluster state.
collect_stats() {
  for name in router control r1 r2 r3; do
    local base_var="base_$name"
    local base="${!base_var:-}"
    [[ -n "$base" ]] || continue
    curl -fsS --max-time 2 "$base/metrics" >"$out/$name.metrics" 2>/dev/null || true
    curl -fsS --max-time 2 "$base/debug/stats" >"$out/$name.stats.json" 2>/dev/null || true
    curl -fsS --max-time 2 "$base/healthz" >"$out/$name.healthz.json" 2>/dev/null || true
  done
}

fail() {
  echo "FAIL: $*" >&2
  collect_stats
  echo "== node logs (tails) ==" >&2
  tail -n 20 "$out"/*.log >&2 || true
  exit 1
}

# wait_for LOGFILE PID BINNAME: echoes the process's base URL once the
# "BINNAME: listening on http://ADDR" line appears.
wait_for() {
  local log="$1" pid="$2" bin="$3" base=""
  for _ in $(seq 1 50); do
    base="$(sed -n "s#^$bin: listening on \(http://[0-9.:]*\)\$#\1#p" "$log" | head -1)"
    [[ -n "$base" ]] && { echo "$base"; return 0; }
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: $bin died at startup" >&2; cat "$log" >&2; return 1; }
    sleep 0.1
  done
  echo "FAIL: $bin never reported its address" >&2; cat "$log" >&2; return 1
}

# metric FILE NAME: extracts a counter's value (0 if absent).
metric() { awk -v n="$2" '$1 == n {print $2; found=1} END{if (!found) print 0}' "$1"; }

echo "== building binaries"
go build -o "$workdir/" ./cmd/inanod ./cmd/inano-router ./cmd/inano-build ./cmd/inano-query ./cmd/inano-eval

echo "== building atlas (day 0 flat form + day-1 delta)"
"$workdir/inano-build" -scale tiny -o "$workdir/atlas0.bin" -flat "$workdir/atlas0.flat" >"$out/build.log"
"$workdir/inano-build" -scale tiny -day 1 -prev "$workdir/atlas0.bin" \
  -o "$workdir/atlas1.bin" -delta "$workdir/delta1.bin" >>"$out/build.log"

start_replica() {
  # start_replica NAME [ADDR]: one inanod -atlas-flat replica with drain
  # mode and its own hot-reload watch file. Runs in this shell (not a
  # command substitution) so `wait` can reap it; the pid lands in
  # $replica_pid.
  local name="$1" addr="${2:-127.0.0.1:0}"
  "$workdir/inanod" -atlas-flat "$workdir/atlas0.flat" -listen "$addr" \
    -peer-id "$name" -drain -watch-delta "$workdir/wd-$name.bin" -watch-interval 0.2s \
    >"$out/$name.log" 2>&1 &
  replica_pid=$!
  disown "$replica_pid" # keep bash from reporting mid-test kills
  pids+=("$replica_pid")
}

echo "== starting control + 3 replicas from one flat atlas"
"$workdir/inanod" -atlas-flat "$workdir/atlas0.flat" -listen 127.0.0.1:0 \
  -watch-delta "$workdir/wd-control.bin" -watch-interval 0.2s \
  >"$out/control.log" 2>&1 &
control_pid=$!; disown "$control_pid"; pids+=("$control_pid")
start_replica r1; r1_pid="$replica_pid"
start_replica r2; r2_pid="$replica_pid"
start_replica r3; r3_pid="$replica_pid"

base_control="$(wait_for "$out/control.log" "$control_pid" inanod)"
base_r1="$(wait_for "$out/r1.log" "$r1_pid" inanod)"
base_r2="$(wait_for "$out/r2.log" "$r2_pid" inanod)"
base_r3="$(wait_for "$out/r3.log" "$r3_pid" inanod)"
echo "   control $base_control  replicas $base_r1 $base_r2 $base_r3"

curl -fsS "$base_r1/healthz" | grep -q '"peer":"r1"' || fail "replica r1 does not echo its peer id"

echo "== starting inano-router over the replica set"
"$workdir/inano-router" -listen 127.0.0.1:0 -replicas "$base_r1,$base_r2,$base_r3" \
  -atlas-flat "$workdir/atlas0.flat" -health-interval 0.2s \
  >"$out/router.log" 2>&1 &
router_pid=$!; disown "$router_pid"; pids+=("$router_pid")
base_router="$(wait_for "$out/router.log" "$router_pid" inano-router)"
echo "   router at $base_router"

curl -fsS "$base_router/healthz" | grep -q '"status":"ok"' || fail "router unhealthy at startup"

echo "== generating pair workload"
mapfile -t ips < <("$workdir/inano-query" -atlas "$workdir/atlas0.bin" -list \
  | sed -n 's#^\([0-9.]*\)\.0/24 .*#\1.1#p')
[[ "${#ips[@]}" -ge 4 ]] || fail "atlas lists only ${#ips[@]} prefixes"
n_pairs=600
pairs="$workdir/pairs.ndjson"
for i in $(seq 0 $((n_pairs - 1))); do
  printf '{"src":"%s","dst":"%s"}\n' \
    "${ips[$((i % ${#ips[@]}))]}" "${ips[$(((i * 7 + 3) % ${#ips[@]}))]}"
done >"$pairs"

echo "== parity: streamed batch, router vs control ($n_pairs pairs)"
curl -fsS --data-binary @"$pairs" -H 'Content-Type: application/x-ndjson' \
  "$base_router/v1/batch?window=64" >"$workdir/batch-router.out"
curl -fsS --data-binary @"$pairs" -H 'Content-Type: application/x-ndjson' \
  "$base_control/v1/batch?window=64" >"$workdir/batch-control.out"
[[ "$(wc -l <"$workdir/batch-router.out")" -eq "$n_pairs" ]] \
  || fail "router batch returned $(wc -l <"$workdir/batch-router.out") lines, want $n_pairs"
grep -q '"error"' "$workdir/batch-router.out" && fail "error line in router batch stream"
diff "$workdir/batch-router.out" "$workdir/batch-control.out" >/dev/null \
  || fail "router batch answers differ from single-node control"
echo "   $n_pairs pairs byte-identical"

echo "== parity: single queries and relay, router vs control"
for i in 0 1 2 3 4 5 6 7; do
  src="${ips[$i]}"; dst="${ips[$(((i + 3) % ${#ips[@]}))]}"
  a="$(curl -fsS "$base_router/v1/query?src=$src&dst=$dst")"
  b="$(curl -fsS "$base_control/v1/query?src=$src&dst=$dst")"
  [[ "$a" == "$b" ]] || fail "single query $src->$dst differs: router=$a control=$b"
done
relay_args="src=${ips[0]}&dst=${ips[1]}&relays=${ips[2]},${ips[3]}&k=1"
a="$(curl -fsS "$base_router/v1/relay?$relay_args")"
b="$(curl -fsS "$base_control/v1/relay?$relay_args")"
[[ "$a" == "$b" ]] || fail "relay answer differs: router=$a control=$b"
echo "   singles + relay byte-identical"

echo "== partitioning: per-replica metrics"
total_streamed=0
for name in r1 r2 r3; do
  base_var="base_$name"
  curl -fsS "${!base_var}/metrics" >"$out/$name.metrics"
  streamed="$(metric "$out/$name.metrics" inanod_batch_pairs_streamed_total)"
  [[ "$streamed" -gt 0 ]] || fail "replica $name streamed 0 batch pairs: ring did not partition"
  echo "   $name served $streamed pairs"
  total_streamed=$((total_streamed + streamed))
done
[[ "$total_streamed" -eq "$n_pairs" ]] \
  || fail "replicas streamed $total_streamed pairs in total, want exactly $n_pairs (no line lost or duplicated)"
curl -fsS "$base_router/metrics" >"$out/router.metrics"
[[ "$(metric "$out/router.metrics" inano_router_batch_lines_total)" -eq "$n_pairs" ]] \
  || fail "router batch_lines_total != $n_pairs"

echo "== loadgen through the router"
"$workdir/inano-eval" -loadgen "$base_router" -load-atlas "$workdir/atlas0.bin" \
  -load-n 2000 -load-conc 4 >"$out/loadgen-router.txt" || fail "router loadgen reported errors"
tail -2 "$out/loadgen-router.txt" | sed 's/^/   /'

echo "== replica kill mid-stream (kill -9 r1, stream stays open)"
split -l $((n_pairs / 2)) "$pairs" "$workdir/part-"
{ cat "$workdir/part-aa"; sleep 0.3; kill -9 "$r1_pid" 2>/dev/null || true; cat "$workdir/part-ab"; } \
  | curl -fsS -X POST -T - -H 'Content-Type: application/x-ndjson' \
      "$base_router/v1/batch?window=64" >"$workdir/batch-kill.out"
[[ "$(wc -l <"$workdir/batch-kill.out")" -eq "$n_pairs" ]] \
  || fail "kill stream returned $(wc -l <"$workdir/batch-kill.out") lines, want $n_pairs"
grep -q '"error"' "$workdir/batch-kill.out" && fail "failed pair in kill stream"
diff "$workdir/batch-kill.out" "$workdir/batch-control.out" >/dev/null \
  || fail "answers across a replica kill differ from the control"
echo "   $n_pairs pairs answered across the kill, byte-identical"

ring_ok=""
for _ in $(seq 1 30); do
  if curl -fsS "$base_router/healthz" | grep -q '"live":2'; then ring_ok=1; break; fi
  sleep 0.1
done
[[ -n "$ring_ok" ]] || fail "router never dropped the killed replica from the ring"

echo "== killed replica rejoins at its old address"
start_replica r1 "${base_r1#http://}"; r1_pid="$replica_pid"
base_r1="$(wait_for "$out/r1.log" "$r1_pid" inanod)"
rejoin_ok=""
for _ in $(seq 1 50); do
  if curl -fsS "$base_router/healthz" | grep -q '"live":3'; then rejoin_ok=1; break; fi
  sleep 0.1
done
[[ -n "$rejoin_ok" ]] || fail "restarted replica never rejoined the ring"
echo "   ring healed to 3 replicas"

echo "== day roll mid-query (delta hot-applies on every node under an open stream)"
{ cat "$workdir/part-aa"
  for name in control r1 r2 r3; do cp "$workdir/delta1.bin" "$workdir/wd-$name.bin"; done
  sleep 0.6
  cat "$workdir/part-ab"
} | curl -fsS -X POST -T - -H 'Content-Type: application/x-ndjson' \
      "$base_router/v1/batch?window=64" >"$workdir/batch-roll.out"
[[ "$(wc -l <"$workdir/batch-roll.out")" -eq "$n_pairs" ]] \
  || fail "mid-roll stream returned $(wc -l <"$workdir/batch-roll.out") lines, want $n_pairs"
grep -q '"error"' "$workdir/batch-roll.out" && fail "failed pair in mid-roll stream"
echo "   $n_pairs pairs answered across the roll"

for name in control r1 r2 r3; do
  base_var="base_$name"
  day_ok=""
  for _ in $(seq 1 40); do
    if curl -fsS "${!base_var}/healthz" | grep -q '"day":1'; then day_ok=1; break; fi
    sleep 0.1
  done
  [[ -n "$day_ok" ]] || fail "$name never rolled to day 1"
done
echo "   all nodes on day 1"

echo "== post-roll parity"
curl -fsS --data-binary @"$pairs" -H 'Content-Type: application/x-ndjson' \
  "$base_router/v1/batch?window=64" >"$workdir/batch-day1-router.out"
curl -fsS --data-binary @"$pairs" -H 'Content-Type: application/x-ndjson' \
  "$base_control/v1/batch?window=64" >"$workdir/batch-day1-control.out"
grep -q '"error"' "$workdir/batch-day1-router.out" && fail "error line in day-1 router batch"
diff "$workdir/batch-day1-router.out" "$workdir/batch-day1-control.out" >/dev/null \
  || fail "post-roll answers differ from the control"
grep -q '"day":1' "$workdir/batch-day1-router.out" || fail "post-roll answers not labeled day 1"
echo "   day-1 answers byte-identical"

echo "== drain rotation (SIGTERM r2 under an open stream)"
{ cat "$workdir/part-aa"
  kill -TERM "$r2_pid"
  sleep 0.6
  cat "$workdir/part-ab"
} | curl -fsS -X POST -T - -H 'Content-Type: application/x-ndjson' \
      "$base_router/v1/batch?window=64" >"$workdir/batch-drain.out"
[[ "$(wc -l <"$workdir/batch-drain.out")" -eq "$n_pairs" ]] \
  || fail "drain stream returned $(wc -l <"$workdir/batch-drain.out") lines, want $n_pairs"
grep -q '"error"' "$workdir/batch-drain.out" && fail "failed pair while a replica drained"
diff "$workdir/batch-drain.out" "$workdir/batch-day1-control.out" >/dev/null \
  || fail "answers across the drain differ from the control"

drain_rc=0
wait "$r2_pid" || drain_rc=$?
[[ "$drain_rc" -eq 0 ]] || fail "draining replica exited $drain_rc, want 0"
grep -q 'inanod: draining:' "$out/r2.log" || fail "r2 never entered the draining state"
grep -q 'inanod: shutdown complete' "$out/r2.log" || fail "r2 shut down dirty"
echo "   r2 drained and exited 0 with zero dropped pairs"

live_ok=""
for _ in $(seq 1 30); do
  if curl -fsS "$base_router/healthz" | grep -q '"live":2'; then live_ok=1; break; fi
  sleep 0.1
done
[[ -n "$live_ok" ]] || fail "router still counts the drained replica live"

collect_stats
echo "PASS: cluster smoke (artifacts in $out)"

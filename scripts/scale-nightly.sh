#!/usr/bin/env bash
# Nightly internet-scale gate: build a ~1M-prefix synthetic world's atlas
# through the out-of-core streaming builder and assert it stays within a
# peak-RSS bound while the .bin and flat load paths serve byte-identical
# answers, then replay one adversarial scenario at medium scale. Sizes
# are overridable for local runs:
#
#   SCALE_ASES=5000 SCALE_PREFIXES=100000 SCALE_MAX_RSS_MB=2048 ./scripts/scale-nightly.sh
#
# Run from the repo root; used by CI's nightly scale job.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
bin="$workdir/inano-eval"

ases="${SCALE_ASES:-50000}"
prefixes="${SCALE_PREFIXES:-1000000}"
max_rss_mb="${SCALE_MAX_RSS_MB:-12288}"
seed="${SCALE_SEED:-42}"

echo "== build"
go build -o "$bin" ./cmd/inano-eval

echo "== out-of-core scale build: $ases ASes, $prefixes prefixes, RSS bound ${max_rss_mb}MB"
"$bin" -scale-build -seed "$seed" \
  -scale-ases "$ases" -scale-prefixes "$prefixes" \
  -max-rss-mb "$max_rss_mb"

echo "== medium-scale scenario replay"
"$bin" -scenario partition -scale medium -seed "$seed"

echo "scale nightly: out-of-core build within ${max_rss_mb}MB, load paths byte-identical, scenario green"

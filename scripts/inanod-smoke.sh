#!/usr/bin/env bash
# Smoke test for the inanod daemon: build it, serve a sim-generated atlas,
# exercise /healthz, a single /v1/query, a streamed /v1/batch, a
# /v1/feedback observation report (with the corrective loop running
# against the generating world), and /v1/relay, then assert clean graceful
# shutdown on SIGTERM. Run from the repo root; used by CI's smoke job and
# runnable locally.
set -euo pipefail

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/" ./cmd/inanod ./cmd/inano-build ./cmd/inano-query

echo "== generating atlas"
"$workdir/inano-build" -scale tiny -o "$workdir/atlas.bin" >/dev/null

# Known-good IPs: take the first prefixes the atlas can answer for.
mapfile -t prefixes < <("$workdir/inano-query" -atlas "$workdir/atlas.bin" -list \
  | sed -n 's#^\([0-9.]*\)\.0/24 .*#\1.1#p' | head -6)
src="${prefixes[0]}"
dst="${prefixes[1]}"
echo "== querying $src -> $dst"

echo "== starting inanod (corrective loop against the generating world)"
"$workdir/inanod" -atlas "$workdir/atlas.bin" -listen 127.0.0.1:0 \
  -probe-sim tiny:42 -correct-interval 1s -correct-budget 4 \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 50); do
  base="$(sed -n 's#^inanod: listening on \(http://[0-9.:]*\)$#\1#p' "$workdir/daemon.log" | head -1)"
  [[ -n "$base" ]] && break
  kill -0 "$daemon_pid" || { echo "FAIL: daemon died at startup"; cat "$workdir/daemon.log"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { echo "FAIL: daemon never reported its address"; cat "$workdir/daemon.log"; exit 1; }
echo "   daemon at $base"

echo "== /healthz"
health="$(curl -fsS "$base/healthz")"
echo "   $health"
grep -q '"status":"ok"' <<<"$health" || { echo "FAIL: unhealthy"; exit 1; }

echo "== /v1/query"
answer="$(curl -fsS "$base/v1/query?src=$src&dst=$dst")"
echo "   $answer"
grep -q '"src":' <<<"$answer" || { echo "FAIL: no query answer"; exit 1; }

echo "== /v1/batch (streamed, 500 pairs)"
n_pairs=500
batch_out="$workdir/batch.ndjson"
for i in $(seq 1 "$n_pairs"); do printf '{"src":"%s","dst":"%s"}\n' "$src" "$dst"; done \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' \
      "$base/v1/batch?window=64" > "$batch_out"
lines=$(wc -l < "$batch_out")
[[ "$lines" -eq "$n_pairs" ]] || { echo "FAIL: $lines response lines, want $n_pairs"; exit 1; }
if grep -q '"error"' "$batch_out"; then echo "FAIL: error line in batch stream"; head "$batch_out"; exit 1; fi
echo "   $lines results streamed"

echo "== /metrics"
# Capture, then grep: grep -q exiting early would SIGPIPE curl and trip
# pipefail now that the metrics page is long.
metrics="$(curl -fsS "$base/metrics")"
grep -q '^inanod_batch_pairs_streamed_total 500$' <<<"$metrics" \
  || { echo "FAIL: streamed-pairs metric missing"; exit 1; }

echo "== /v1/feedback (observation report)"
feedback="$(printf '{"src":"%s","dst":"%s","rtt_ms":250}\n{"src":"%s","dst":"%s","rtt_ms":300}\n' \
  "$src" "$dst" "$src" "${prefixes[2]}" \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$base/v1/feedback")"
echo "   $feedback"
grep -q '"accepted":2' <<<"$feedback" || { echo "FAIL: feedback not accepted"; exit 1; }

echo "== /v1/relay"
relay="$(curl -fsS "$base/v1/relay?src=$src&dst=$dst&relays=${prefixes[3]},${prefixes[4]},${prefixes[5]}&k=2")"
echo "   $relay"
grep -q '"candidates":3' <<<"$relay" || { echo "FAIL: relay endpoint broken"; exit 1; }

echo "== corrective loop alive"
rounds_ok=""
for _ in $(seq 1 30); do
  metrics="$(curl -fsS "$base/metrics")"
  if awk '/^inanod_corrective_rounds_total /{found=($2>=1)} END{exit !found}' <<<"$metrics"; then
    rounds_ok=1; break
  fi
  sleep 0.2
done
[[ -n "$rounds_ok" ]] || { echo "FAIL: corrector never ran a round"; exit 1; }
grep -q '^inanod_feedback_observations_total 2$' <<<"$metrics" \
  || { echo "FAIL: feedback observations metric missing"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
shutdown_rc=0
wait "$daemon_pid" || shutdown_rc=$?
daemon_pid=""
[[ "$shutdown_rc" -eq 0 ]] || { echo "FAIL: daemon exited $shutdown_rc"; cat "$workdir/daemon.log"; exit 1; }
grep -q '^inanod: shutdown complete$' "$workdir/daemon.log" \
  || { echo "FAIL: no clean shutdown marker"; cat "$workdir/daemon.log"; exit 1; }

echo "PASS: inanod smoke"

#!/usr/bin/env bash
# Smoke test for the inanod daemon: build it, serve a sim-generated atlas,
# exercise /healthz, a single /v1/query, a streamed /v1/batch, a
# /v1/feedback observation report (with the corrective loop running
# against the generating world), and /v1/relay, then assert clean graceful
# shutdown on SIGTERM. A second phase drives the upstream observation loop
# end to end: POST /v1/observations into an aggregating daemon, snapshot
# the aggregate, fold it into the next day's delta with inano-build, hot-
# reload the delta through the file watcher, and assert the corrected
# prediction is served. Run from the repo root; used by CI's smoke job and
# runnable locally.
set -euo pipefail

workdir="$(mktemp -d)"
daemon_pid=""
daemon2_pid=""
cleanup() {
  for pid in "$daemon_pid" "$daemon2_pid"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# wait_for_addr LOGFILE PID: echoes the daemon's base URL once it appears.
wait_for_addr() {
  local log="$1" pid="$2" base=""
  for _ in $(seq 1 50); do
    base="$(sed -n 's#^inanod: listening on \(http://[0-9.:]*\)$#\1#p' "$log" | head -1)"
    [[ -n "$base" ]] && { echo "$base"; return 0; }
    kill -0 "$pid" || { echo "FAIL: daemon died at startup" >&2; cat "$log" >&2; return 1; }
    sleep 0.1
  done
  echo "FAIL: daemon never reported its address" >&2; cat "$log" >&2; return 1
}

# rtt_of JSON: extracts the rtt_ms number from a /v1/query answer.
rtt_of() { sed -n 's#.*"rtt_ms":\([0-9.]*\).*#\1#p' <<<"$1"; }

echo "== building binaries"
go build -o "$workdir/" ./cmd/inanod ./cmd/inano-build ./cmd/inano-query

echo "== generating atlas"
"$workdir/inano-build" -scale tiny -o "$workdir/atlas.bin" >/dev/null

# Known-good IPs: take the first prefixes the atlas can answer for.
mapfile -t prefixes < <("$workdir/inano-query" -atlas "$workdir/atlas.bin" -list \
  | sed -n 's#^\([0-9.]*\)\.0/24 .*#\1.1#p' | head -6)
src="${prefixes[0]}"
dst="${prefixes[1]}"
echo "== querying $src -> $dst"

echo "== starting inanod (corrective loop against the generating world)"
"$workdir/inanod" -atlas "$workdir/atlas.bin" -listen 127.0.0.1:0 \
  -probe-sim tiny:42 -correct-interval 1s -correct-budget 4 \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

base="$(wait_for_addr "$workdir/daemon.log" "$daemon_pid")"
echo "   daemon at $base"

echo "== /healthz"
health="$(curl -fsS "$base/healthz")"
echo "   $health"
grep -q '"status":"ok"' <<<"$health" || { echo "FAIL: unhealthy"; exit 1; }

echo "== /v1/query"
answer="$(curl -fsS "$base/v1/query?src=$src&dst=$dst")"
echo "   $answer"
grep -q '"src":' <<<"$answer" || { echo "FAIL: no query answer"; exit 1; }

echo "== /v1/batch (streamed, 500 pairs)"
n_pairs=500
batch_out="$workdir/batch.ndjson"
for _ in $(seq 1 "$n_pairs"); do printf '{"src":"%s","dst":"%s"}\n' "$src" "$dst"; done \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' \
      "$base/v1/batch?window=64" > "$batch_out"
lines=$(wc -l < "$batch_out")
[[ "$lines" -eq "$n_pairs" ]] || { echo "FAIL: $lines response lines, want $n_pairs"; exit 1; }
if grep -q '"error"' "$batch_out"; then echo "FAIL: error line in batch stream"; head "$batch_out"; exit 1; fi
echo "   $lines results streamed"

echo "== /metrics"
# Capture, then grep: grep -q exiting early would SIGPIPE curl and trip
# pipefail now that the metrics page is long.
metrics="$(curl -fsS "$base/metrics")"
grep -q '^inanod_batch_pairs_streamed_total 500$' <<<"$metrics" \
  || { echo "FAIL: streamed-pairs metric missing"; exit 1; }

echo "== /v1/feedback (observation report)"
feedback="$(printf '{"src":"%s","dst":"%s","rtt_ms":250}\n{"src":"%s","dst":"%s","rtt_ms":300}\n' \
  "$src" "$dst" "$src" "${prefixes[2]}" \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$base/v1/feedback")"
echo "   $feedback"
grep -q '"accepted":2' <<<"$feedback" || { echo "FAIL: feedback not accepted"; exit 1; }

echo "== /v1/relay"
relay="$(curl -fsS "$base/v1/relay?src=$src&dst=$dst&relays=${prefixes[3]},${prefixes[4]},${prefixes[5]}&k=2")"
echo "   $relay"
grep -q '"candidates":3' <<<"$relay" || { echo "FAIL: relay endpoint broken"; exit 1; }

echo "== corrective loop alive"
rounds_ok=""
for _ in $(seq 1 30); do
  metrics="$(curl -fsS "$base/metrics")"
  if awk '/^inanod_corrective_rounds_total /{found=($2>=1)} END{exit !found}' <<<"$metrics"; then
    rounds_ok=1; break
  fi
  sleep 0.2
done
[[ -n "$rounds_ok" ]] || { echo "FAIL: corrector never ran a round"; exit 1; }
grep -q '^inanod_feedback_observations_total 2$' <<<"$metrics" \
  || { echo "FAIL: feedback observations metric missing"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
shutdown_rc=0
wait "$daemon_pid" || shutdown_rc=$?
daemon_pid=""
[[ "$shutdown_rc" -eq 0 ]] || { echo "FAIL: daemon exited $shutdown_rc"; cat "$workdir/daemon.log"; exit 1; }
grep -q '^inanod: shutdown complete$' "$workdir/daemon.log" \
  || { echo "FAIL: no clean shutdown marker"; cat "$workdir/daemon.log"; exit 1; }

echo "== upstream loop: starting aggregating daemon (watching delta1.bin)"
"$workdir/inanod" -atlas "$workdir/atlas.bin" -listen 127.0.0.1:0 \
  -aggregate -obs-snapshot "$workdir/obs.json" -obs-snapshot-interval 1s \
  -watch-delta "$workdir/delta1.bin" -watch-interval 1s \
  >"$workdir/daemon2.log" 2>&1 &
daemon2_pid=$!
base2="$(wait_for_addr "$workdir/daemon2.log" "$daemon2_pid")"
echo "   daemon at $base2"

# Find a predictable pair for the observation report.
obs_src="" obs_dst="" rtt0=""
for cand in "${prefixes[@]:1}"; do
  answer="$(curl -fsS "$base2/v1/query?src=${prefixes[0]}&dst=$cand")"
  if grep -q '"found":true' <<<"$answer"; then
    obs_src="${prefixes[0]}"; obs_dst="$cand"; rtt0="$(rtt_of "$answer")"
    break
  fi
done
[[ -n "$obs_dst" ]] || { echo "FAIL: no predictable pair for the observation report"; exit 1; }
echo "   observing $obs_src -> $obs_dst (served rtt ${rtt0}ms)"

echo "== POST /v1/observations (measured = served + 50ms)"
measured="$(awk -v r="$rtt0" 'BEGIN{print r+50}')"
obs_resp="$(printf '{"src":"%s","dst":"%s","rtt_ms":%s,"predicted_ms":%s}\n' \
  "$obs_src" "$obs_dst" "$measured" "$rtt0" \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$base2/v1/observations")"
echo "   $obs_resp"
grep -q '"accepted":1' <<<"$obs_resp" || { echo "FAIL: observation not accepted"; exit 1; }

echo "== POST /v1/observations (structural: hop tails toward an unknown destination)"
# Two reporters (distinct claimed sources; loopback is not placeable, so
# the claimed src is the lab-mode reporter identity) upload the same hop
# tail toward a destination the atlas has never heard of. The hop
# addresses resolve through the atlas's prefix tables; agreement between
# the two reporters is what lets the build fold the tail.
hidden_dst="203.0.113.1"
hop1="${prefixes[2]}"; hop2="${prefixes[3]}"
path_resp="$( { printf '{"src":"%s","dst":"%s","rtt_ms":40,"hops":[{"ip":"%s","rtt_ms":10},{"ip":"%s","rtt_ms":20}]}\n' \
    "${prefixes[0]}" "$hidden_dst" "$hop1" "$hop2"; \
  printf '{"src":"%s","dst":"%s","rtt_ms":42,"hops":[{"ip":"%s","rtt_ms":11},{"ip":"%s","rtt_ms":21}]}\n' \
    "${prefixes[1]}" "$hidden_dst" "$hop1" "$hop2"; } \
  | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$base2/v1/observations")"
echo "   $path_resp"
grep -q '"paths":2' <<<"$path_resp" || { echo "FAIL: hop tails not accepted"; exit 1; }
stats2="$(curl -fsS "$base2/debug/stats")"
grep -q '"path_slots":2' <<<"$stats2" \
  || { echo "FAIL: want 2 distinct reporter path slots"; echo "$stats2" | head -40; exit 1; }

echo "== waiting for the aggregator snapshot"
snap_ok=""
for _ in $(seq 1 40); do
  if [[ -s "$workdir/obs.json" ]] && grep -q '"residual_ms"' "$workdir/obs.json" \
      && grep -q '"clusters"' "$workdir/obs.json"; then
    snap_ok=1; break
  fi
  sleep 0.25
done
[[ -n "$snap_ok" ]] || { echo "FAIL: aggregator snapshot never written"; cat "$workdir/daemon2.log"; exit 1; }

echo "== inano-build: folding the snapshot into a correction delta"
build_out="$("$workdir/inano-build" -scale tiny -o "$workdir/atlas-obs.bin" \
  -delta "$workdir/delta-obs.bin" -observations "$workdir/obs.json" -obs-min-reporters 1)"
grep -q 'corrections shipped' <<<"$build_out" || { echo "FAIL: build folded nothing"; echo "$build_out"; exit 1; }
grep -q 'agreed paths folded' <<<"$build_out" || { echo "FAIL: build folded no paths"; echo "$build_out"; exit 1; }
grep -q '1 new attachments' <<<"$build_out" \
  || { echo "FAIL: hidden destination gained no attachment"; echo "$build_out"; exit 1; }

# The unknown destination is unanswerable on the plain atlas and
# answerable on the folded one — coverage grown purely from uploaded hops.
# (inano-query exits nonzero on "no prediction"; capture, then grep.)
q_hidden_before="$("$workdir/inano-query" -atlas "$workdir/atlas.bin" "$obs_src" "$hidden_dst" || true)"
grep -q 'no prediction' <<<"$q_hidden_before" \
  || { echo "FAIL: hidden dst predictable before the fold"; echo "$q_hidden_before"; exit 1; }
q_hidden_after="$("$workdir/inano-query" -atlas "$workdir/atlas-obs.bin" "$obs_src" "$hidden_dst" || true)"
grep -q 'RTT estimate' <<<"$q_hidden_after" \
  || { echo "FAIL: hidden dst not predictable after the fold"; echo "$q_hidden_after"; exit 1; }
echo "   hidden destination $hidden_dst: no prediction -> predicted after the hop fold"

# The fold must change the file-level prediction for the observed pair by
# roughly FoldGain * 50ms = +25ms over the plain atlas.
q_plain="$("$workdir/inano-query" -atlas "$workdir/atlas.bin" "$obs_src" "$obs_dst" \
  | sed -n 's#^RTT estimate:[[:space:]]*\([0-9.]*\) ms$#\1#p')"
q_obs="$("$workdir/inano-query" -atlas "$workdir/atlas-obs.bin" "$obs_src" "$obs_dst" \
  | sed -n 's#^RTT estimate:[[:space:]]*\([0-9.]*\) ms$#\1#p')"
awk -v a="$q_obs" -v b="$q_plain" 'BEGIN{d=a-b; exit !(d>10 && d<50)}' \
  || { echo "FAIL: fold shifted file-level prediction by $q_plain -> $q_obs, want ~+25ms"; exit 1; }
echo "   file-level prediction: $q_plain -> $q_obs ms"

echo "== hot reload: publishing the correction delta to the watcher"
cp "$workdir/delta-obs.bin" "$workdir/delta1.bin"
reload_ok=""
for _ in $(seq 1 40); do
  metrics2="$(curl -fsS "$base2/metrics")"
  if grep -q '^inanod_atlas_reloads_total 1$' <<<"$metrics2"; then reload_ok=1; break; fi
  sleep 0.25
done
[[ -n "$reload_ok" ]] || { echo "FAIL: correction delta never hot-applied"; cat "$workdir/daemon2.log"; exit 1; }

echo "== corrected prediction is served"
answer1="$(curl -fsS "$base2/v1/query?src=$obs_src&dst=$obs_dst")"
rtt1="$(rtt_of "$answer1")"
awk -v served="$rtt1" -v want="$q_obs" 'BEGIN{d=served-want; if (d<0) d=-d; exit !(d<1.0)}' \
  || { echo "FAIL: served rtt $rtt1 != folded-atlas rtt $q_obs"; exit 1; }
awk -v served="$rtt1" -v plain="$q_plain" 'BEGIN{exit !(served-plain>10)}' \
  || { echo "FAIL: served rtt $rtt1 does not carry the correction (plain $q_plain)"; exit 1; }
echo "   served $rtt1 ms (uncorrected atlas would serve $q_plain ms)"

echo "== day roll: corrections carry and decay (inano-build -prev)"
build2_out="$("$workdir/inano-build" -scale tiny -day 1 -prev "$workdir/atlas-obs.bin" \
  -o "$workdir/atlas2.bin" -delta "$workdir/delta2.bin")"
grep -q 'corrections carried' <<<"$build2_out" || { echo "FAIL: -prev carried nothing"; echo "$build2_out"; exit 1; }
grep -q 'observed links/attachments carried' <<<"$build2_out" \
  || { echo "FAIL: -prev carried no observed structure"; echo "$build2_out"; exit 1; }
q2_hidden="$("$workdir/inano-query" -atlas "$workdir/atlas2.bin" "$obs_src" "$hidden_dst" || true)"
grep -q 'RTT estimate' <<<"$q2_hidden" \
  || { echo "FAIL: carried hop structure lost on the day roll"; echo "$q2_hidden"; exit 1; }
echo "   hidden destination still predictable on day 1 (carried at reduced lifetime)"
"$workdir/inano-build" -scale tiny -day 1 -o "$workdir/atlas2-plain.bin" >/dev/null
q2="$("$workdir/inano-query" -atlas "$workdir/atlas2.bin" "$obs_src" "$obs_dst" \
  | sed -n 's#^RTT estimate:[[:space:]]*\([0-9.]*\) ms$#\1#p')"
q2_plain="$("$workdir/inano-query" -atlas "$workdir/atlas2-plain.bin" "$obs_src" "$obs_dst" \
  | sed -n 's#^RTT estimate:[[:space:]]*\([0-9.]*\) ms$#\1#p')"
# The unsupported correction halves on the roll: ~+12.5ms over plain day 1.
awk -v a="$q2" -v b="$q2_plain" 'BEGIN{d=a-b; exit !(d>5 && d<20)}' \
  || { echo "FAIL: day-roll carry: $q2_plain -> $q2, want ~+12.5ms"; exit 1; }
echo "   day-1 prediction: $q2_plain plain, $q2 with the decayed carried correction"

# The day-roll delta (based on the archived folded atlas) hot-applies too.
cp "$workdir/delta2.bin" "$workdir/delta1.bin"
roll_ok=""
for _ in $(seq 1 40); do
  if curl -fsS "$base2/healthz" | grep -q '"day":1'; then roll_ok=1; break; fi
  sleep 0.25
done
[[ -n "$roll_ok" ]] || { echo "FAIL: day-roll delta never hot-applied"; cat "$workdir/daemon2.log"; exit 1; }
echo "   daemon rolled to day 1"

echo "== upstream daemon graceful shutdown"
kill -TERM "$daemon2_pid"
shutdown_rc=0
wait "$daemon2_pid" || shutdown_rc=$?
daemon2_pid=""
[[ "$shutdown_rc" -eq 0 ]] || { echo "FAIL: daemon2 exited $shutdown_rc"; cat "$workdir/daemon2.log"; exit 1; }

echo "PASS: inanod smoke"

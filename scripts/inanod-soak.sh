#!/usr/bin/env bash
# Extended -race soak of the inanod daemon under load: the daemon (built
# with the race detector) serves concurrent singles, streamed batches,
# feedback reports, and relay selections while the corrective loop patches
# the atlas in the background — the full serving surface racing the full
# mutation surface. Fails on request errors, a dirty shutdown, or any
# detected data race.
#
# A second phase (SOAK_CLUSTER=1, the default) soaks the sharded tier:
# 3 -race replicas behind a -race inano-router under batch loadgen while
# a churn loop repeatedly kill -9s and restarts replicas — the router's
# retry path must keep the client error count at exactly zero throughout.
#
# Tunables (env): SOAK_SINGLES (default 20000), SOAK_PAIRS (default
# 100000), SOAK_CONC (default 8), SOAK_FEEDBACK_ROUNDS (default 20),
# SOAK_CLUSTER (default 1), SOAK_CLUSTER_PAIRS (default 100000),
# SOAK_CLUSTER_CHURN (default 6 kill/restart cycles),
# SOAK_OUT (artifact directory, default a fresh mktemp -d).
set -euo pipefail

singles="${SOAK_SINGLES:-20000}"
pairs="${SOAK_PAIRS:-100000}"
conc="${SOAK_CONC:-8}"
fb_rounds="${SOAK_FEEDBACK_ROUNDS:-20}"
cluster="${SOAK_CLUSTER:-1}"
cluster_pairs="${SOAK_CLUSTER_PAIRS:-100000}"
cluster_churn="${SOAK_CLUSTER_CHURN:-6}"
out="${SOAK_OUT:-$(mktemp -d)}"
mkdir -p "$out"

workdir="$(mktemp -d)"
daemon_pid=""
pids=()
cleanup() {
  for pid in "$daemon_pid" "${pids[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building (daemon and router with -race)"
go build -race -o "$workdir/inanod" ./cmd/inanod
go build -race -o "$workdir/inano-router" ./cmd/inano-router
go build -o "$workdir/" ./cmd/inano-build ./cmd/inano-eval ./cmd/inano-query

echo "== generating atlas (medium world)"
"$workdir/inano-build" -scale medium -o "$workdir/atlas.bin" -flat "$workdir/atlas.flat" >"$out/build.log"

echo "== starting inanod -race with the corrective loop"
"$workdir/inanod" -atlas "$workdir/atlas.bin" -listen 127.0.0.1:0 \
  -probe-sim medium:42 -correct-interval 2s -correct-budget 8 \
  >"$out/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's#^inanod: listening on \(http://[0-9.:]*\)$#\1#p' "$out/daemon.log" | head -1)"
  [[ -n "$base" ]] && break
  kill -0 "$daemon_pid" || { echo "FAIL: daemon died at startup"; cat "$out/daemon.log"; exit 1; }
  sleep 0.2
done
[[ -n "$base" ]] || { echo "FAIL: daemon never reported its address"; cat "$out/daemon.log"; exit 1; }
echo "   daemon at $base"

# Feedback + relay churn in the background: every round reports skewed
# observations (keeping the corrector busy rebuilding the atlas
# copy-on-write under the query load) and asks for a relay.
mapfile -t ips < <("$workdir/inano-query" -atlas "$workdir/atlas.bin" -list \
  | sed -n 's#^\([0-9.]*\)\.0/24 .*#\1.1#p' | head -8)
feedback_churn() {
  for i in $(seq 1 "$fb_rounds"); do
    for j in 1 2 3 4; do
      printf '{"src":"%s","dst":"%s","rtt_ms":%d}\n' "${ips[0]}" "${ips[$j]}" "$((100 + i + j))"
    done | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' \
      "$base/v1/feedback" >>"$out/feedback.log" 2>&1 || true
    echo >>"$out/feedback.log"
    curl -fsS "$base/v1/relay?src=${ips[0]}&dst=${ips[1]}&relays=${ips[5]},${ips[6]},${ips[7]}" \
      >>"$out/relay.log" 2>&1 || true
    echo >>"$out/relay.log"
    sleep 0.5
  done
}
feedback_churn &
churn_pid=$!

echo "== loadgen: $singles concurrent singles"
"$workdir/inano-eval" -loadgen "$base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$singles" -load-conc "$conc" | tee "$out/loadgen-singles.txt"

echo "== loadgen: $pairs streamed batch pairs"
"$workdir/inano-eval" -loadgen "$base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$pairs" -load-batch "$((pairs / conc))" -load-conc "$conc" | tee "$out/loadgen-batch.txt"

wait "$churn_pid" || true

echo "== final metrics snapshot"
curl -fsS "$base/metrics" >"$out/metrics.txt"
grep -E '^inanod_(feedback_observations_total|corrective_rounds_total|batch_pairs_streamed_total)' "$out/metrics.txt" || true

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
shutdown_rc=0
wait "$daemon_pid" || shutdown_rc=$?
daemon_pid=""
[[ "$shutdown_rc" -eq 0 ]] || { echo "FAIL: daemon exited $shutdown_rc"; tail -50 "$out/daemon.log"; exit 1; }
grep -q '^inanod: shutdown complete$' "$out/daemon.log" \
  || { echo "FAIL: no clean shutdown marker"; tail -50 "$out/daemon.log"; exit 1; }
if grep -q 'DATA RACE' "$out/daemon.log"; then
  echo "FAIL: data race detected"; grep -A 20 'DATA RACE' "$out/daemon.log" | head -60; exit 1
fi

if [[ "$cluster" != "1" ]]; then
  echo "PASS: inanod soak (artifacts in $out)"
  exit 0
fi

# ---------------------------------------------------------------------
# Cluster soak: 3 -race replicas + -race router under batch loadgen with
# kill -9 / restart churn. The router's retry path must absorb every
# kill: the loadgen (which fails on any request error) is the assertion.
# ---------------------------------------------------------------------

wait_for_addr2() {
  # wait_for_addr2 LOG PID BIN: echoes the base URL from BIN's listen line.
  local log="$1" pid="$2" bin="$3" base=""
  for _ in $(seq 1 150); do
    base="$(sed -n "s#^$bin: listening on \(http://[0-9.:]*\)\$#\1#p" "$log" | head -1)"
    [[ -n "$base" ]] && { echo "$base"; return 0; }
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: $bin died at startup" >&2; cat "$log" >&2; return 1; }
    sleep 0.2
  done
  echo "FAIL: $bin never reported its address" >&2; cat "$log" >&2; return 1
}

start_soak_replica() {
  # start_soak_replica NAME [ADDR]: pid lands in $replica_pid.
  local name="$1" addr="${2:-127.0.0.1:0}"
  "$workdir/inanod" -atlas-flat "$workdir/atlas.flat" -listen "$addr" \
    -peer-id "$name" -drain >"$out/cluster-$name.log" 2>&1 &
  replica_pid=$!
  disown "$replica_pid"
  pids+=("$replica_pid")
}

echo "== cluster soak: starting 3 -race replicas + -race router"
declare -A rpid raddr
for name in r1 r2 r3; do
  start_soak_replica "$name"
  rpid[$name]=$replica_pid
done
for name in r1 r2 r3; do
  raddr[$name]="$(wait_for_addr2 "$out/cluster-$name.log" "${rpid[$name]}" inanod)"
done
"$workdir/inano-router" -listen 127.0.0.1:0 \
  -replicas "${raddr[r1]},${raddr[r2]},${raddr[r3]}" \
  -atlas-flat "$workdir/atlas.flat" -health-interval 0.5s \
  >"$out/cluster-router.log" 2>&1 &
router_pid=$!
disown "$router_pid"
pids+=("$router_pid")
router_base="$(wait_for_addr2 "$out/cluster-router.log" "$router_pid" inano-router)"
echo "   router at $router_base fronting ${raddr[r1]} ${raddr[r2]} ${raddr[r3]}"

echo "== cluster loadgen: $cluster_pairs batch pairs through the router under churn"
"$workdir/inano-eval" -loadgen "$router_base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$cluster_pairs" -load-batch "$((cluster_pairs / conc))" -load-conc "$conc" \
  >"$out/cluster-loadgen-batch.txt" 2>&1 &
lg_pid=$!

# Churn in the foreground (so restarted replicas stay children of this
# shell): kill -9 a replica, wait for the ring to drop it, restart it at
# the same address, wait for it to rejoin; round-robin over the replicas.
names=(r1 r2 r3)
for cycle in $(seq 1 "$cluster_churn"); do
  name="${names[$(((cycle - 1) % 3))]}"
  sleep 2
  echo "churn $cycle/$cluster_churn: kill -9 $name" | tee -a "$out/cluster-churn.log"
  kill -9 "${rpid[$name]}" 2>/dev/null || true
  for _ in $(seq 1 100); do
    curl -fsS --max-time 2 "$router_base/healthz" 2>/dev/null | grep -q '"live":2' && break
    sleep 0.2
  done
  start_soak_replica "$name" "${raddr[$name]#http://}"
  rpid[$name]=$replica_pid
  echo "churn $cycle/$cluster_churn: restarted $name at ${raddr[$name]}" | tee -a "$out/cluster-churn.log"
  for _ in $(seq 1 150); do
    curl -fsS --max-time 2 "$router_base/healthz" 2>/dev/null | grep -q '"live":3' && break
    sleep 0.2
  done
done

rc=0
wait "$lg_pid" || rc=$?
cat "$out/cluster-loadgen-batch.txt"
[[ "$rc" -eq 0 ]] || { echo "FAIL: cluster loadgen saw request errors under churn"; cat "$out/cluster-churn.log"; exit 1; }

echo "== cluster loadgen: $singles singles through the router"
"$workdir/inano-eval" -loadgen "$router_base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$singles" -load-conc "$conc" | tee "$out/cluster-loadgen-singles.txt" \
  || { echo "FAIL: cluster singles loadgen saw request errors"; exit 1; }

echo "== cluster metrics + race check"
curl -fsS "$router_base/metrics" >"$out/cluster-router.metrics"
grep -E '^inano_router_(retries_total|reshards_total|batch_retried_total|no_replica_total)' \
  "$out/cluster-router.metrics" || true
awk '$1 == "inano_router_no_replica_total" {exit ($2 == 0) ? 0 : 1}' "$out/cluster-router.metrics" \
  || { echo "FAIL: router ran out of replicas during churn"; exit 1; }
for f in "$out"/cluster-*.log; do
  if grep -q 'DATA RACE' "$f"; then
    echo "FAIL: data race in $f"; grep -A 20 'DATA RACE' "$f" | head -60; exit 1
  fi
done

echo "== cluster graceful shutdown"
kill -TERM "$router_pid" 2>/dev/null || true
for name in r1 r2 r3; do kill -TERM "${rpid[$name]}" 2>/dev/null || true; done
for name in r1 r2 r3; do
  rc=0; wait "${rpid[$name]}" 2>/dev/null || rc=$?
  [[ "$rc" -eq 0 ]] || { echo "FAIL: replica $name exited $rc"; tail -n 30 "$out/cluster-$name.log"; exit 1; }
done
wait "$router_pid" 2>/dev/null || true

echo "PASS: inanod soak (artifacts in $out)"

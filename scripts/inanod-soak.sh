#!/usr/bin/env bash
# Extended -race soak of the inanod daemon under load: the daemon (built
# with the race detector) serves concurrent singles, streamed batches,
# feedback reports, and relay selections while the corrective loop patches
# the atlas in the background — the full serving surface racing the full
# mutation surface. Fails on request errors, a dirty shutdown, or any
# detected data race.
#
# Tunables (env): SOAK_SINGLES (default 20000), SOAK_PAIRS (default
# 100000), SOAK_CONC (default 8), SOAK_FEEDBACK_ROUNDS (default 20),
# SOAK_OUT (artifact directory, default a fresh mktemp -d).
set -euo pipefail

singles="${SOAK_SINGLES:-20000}"
pairs="${SOAK_PAIRS:-100000}"
conc="${SOAK_CONC:-8}"
fb_rounds="${SOAK_FEEDBACK_ROUNDS:-20}"
out="${SOAK_OUT:-$(mktemp -d)}"
mkdir -p "$out"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building (daemon with -race)"
go build -race -o "$workdir/inanod" ./cmd/inanod
go build -o "$workdir/" ./cmd/inano-build ./cmd/inano-eval ./cmd/inano-query

echo "== generating atlas (medium world)"
"$workdir/inano-build" -scale medium -o "$workdir/atlas.bin" >"$out/build.log"

echo "== starting inanod -race with the corrective loop"
"$workdir/inanod" -atlas "$workdir/atlas.bin" -listen 127.0.0.1:0 \
  -probe-sim medium:42 -correct-interval 2s -correct-budget 8 \
  >"$out/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's#^inanod: listening on \(http://[0-9.:]*\)$#\1#p' "$out/daemon.log" | head -1)"
  [[ -n "$base" ]] && break
  kill -0 "$daemon_pid" || { echo "FAIL: daemon died at startup"; cat "$out/daemon.log"; exit 1; }
  sleep 0.2
done
[[ -n "$base" ]] || { echo "FAIL: daemon never reported its address"; cat "$out/daemon.log"; exit 1; }
echo "   daemon at $base"

# Feedback + relay churn in the background: every round reports skewed
# observations (keeping the corrector busy rebuilding the atlas
# copy-on-write under the query load) and asks for a relay.
mapfile -t ips < <("$workdir/inano-query" -atlas "$workdir/atlas.bin" -list \
  | sed -n 's#^\([0-9.]*\)\.0/24 .*#\1.1#p' | head -8)
feedback_churn() {
  for i in $(seq 1 "$fb_rounds"); do
    for j in 1 2 3 4; do
      printf '{"src":"%s","dst":"%s","rtt_ms":%d}\n' "${ips[0]}" "${ips[$j]}" "$((100 + i + j))"
    done | curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' \
      "$base/v1/feedback" >>"$out/feedback.log" 2>&1 || true
    echo >>"$out/feedback.log"
    curl -fsS "$base/v1/relay?src=${ips[0]}&dst=${ips[1]}&relays=${ips[5]},${ips[6]},${ips[7]}" \
      >>"$out/relay.log" 2>&1 || true
    echo >>"$out/relay.log"
    sleep 0.5
  done
}
feedback_churn &
churn_pid=$!

echo "== loadgen: $singles concurrent singles"
"$workdir/inano-eval" -loadgen "$base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$singles" -load-conc "$conc" | tee "$out/loadgen-singles.txt"

echo "== loadgen: $pairs streamed batch pairs"
"$workdir/inano-eval" -loadgen "$base" -load-atlas "$workdir/atlas.bin" \
  -load-n "$pairs" -load-batch "$((pairs / conc))" -load-conc "$conc" | tee "$out/loadgen-batch.txt"

wait "$churn_pid" || true

echo "== final metrics snapshot"
curl -fsS "$base/metrics" >"$out/metrics.txt"
grep -E '^inanod_(feedback_observations_total|corrective_rounds_total|batch_pairs_streamed_total)' "$out/metrics.txt" || true

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
shutdown_rc=0
wait "$daemon_pid" || shutdown_rc=$?
daemon_pid=""
[[ "$shutdown_rc" -eq 0 ]] || { echo "FAIL: daemon exited $shutdown_rc"; tail -50 "$out/daemon.log"; exit 1; }
grep -q '^inanod: shutdown complete$' "$out/daemon.log" \
  || { echo "FAIL: no clean shutdown marker"; tail -50 "$out/daemon.log"; exit 1; }
if grep -q 'DATA RACE' "$out/daemon.log"; then
  echo "FAIL: data race detected"; grep -A 20 'DATA RACE' "$out/daemon.log" | head -60; exit 1
fi

echo "PASS: inanod soak (artifacts in $out)"

// Example daemon: run the inanod serving stack in-process — build an
// atlas, serve it over HTTP, query it like a remote peer would, stream a
// batch, hot-apply a daily delta mid-flight, and observe it all in the
// metrics. This is the full serving loop of cmd/inanod, self-contained.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/server"
	"inano/sim"
)

func main() {
	// 1. Server side: two days of measurements — today's atlas plus
	// tomorrow's delta, as the build server would publish them.
	world := sim.NewWorld(sim.Tiny, 11)
	vps := world.VantagePoints(12)
	build := func(day int) *atlas.Atlas {
		return world.Measure(sim.CampaignOptions{
			Day: day, VPs: vps, Targets: world.EdgePrefixes(),
		}).BuildAtlas()
	}
	a0, a1 := build(0), build(1)
	var delta bytes.Buffer
	if err := atlas.Diff(a0, a1).Encode(&delta); err != nil {
		log.Fatal(err)
	}

	// 2. The daemon: an inano.Client wrapped in the HTTP serving surface.
	client := inano.FromAtlas(a0)
	s := server.New(server.Config{Client: client})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, s.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon listening on", base)

	// 3. A peer asks for one path prediction.
	src, dst := vps[0], world.EdgePrefixes()[7]
	var single struct {
		Found bool    `json:"found"`
		RTTMS float64 `json:"rtt_ms"`
		Day   int     `json:"day"`
	}
	getJSON(fmt.Sprintf("%s/v1/query?src=%s&dst=%s", base, src.HostIP(), dst.HostIP()), &single)
	fmt.Printf("single query: found=%v rtt=%.1fms (day %d)\n", single.Found, single.RTTMS, single.Day)

	// 4. A streamed batch: NDJSON pairs in, NDJSON results out, windowed —
	// the same path scales to millions of pairs without buffering.
	var body bytes.Buffer
	targets := world.EdgePrefixes()
	n := 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&body, `{"src":%q,"dst":%q}`+"\n",
			vps[i%len(vps)].HostIP(), targets[i%len(targets)].HostIP())
	}
	resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		log.Fatal(err)
	}
	results, found := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		results++
		if strings.Contains(sc.Text(), `"found":true`) {
			found++
		}
	}
	resp.Body.Close()
	fmt.Printf("streamed batch: %d pairs answered, %d with predictions\n", results, found)

	// 5. Hot reload: apply tomorrow's delta copy-on-write. In-flight
	// streams keep their snapshot; new queries see day 1.
	if err := client.ApplyDelta(&delta); err != nil {
		log.Fatal(err)
	}
	getJSON(fmt.Sprintf("%s/v1/query?src=%s&dst=%s", base, src.HostIP(), dst.HostIP()), &single)
	fmt.Printf("after delta:  found=%v rtt=%.1fms (day %d)\n", single.Found, single.RTTMS, single.Day)

	// 6. Observability: the serving metrics, Prometheus-style.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\nselected metrics:")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "inanod_batch_pairs_streamed_total") ||
			strings.HasPrefix(line, "inanod_tree_cache_builds") ||
			strings.HasPrefix(line, "inanod_tree_cache_hit_ratio") ||
			strings.HasPrefix(line, "inanod_atlas_day") {
			fmt.Println(" ", line)
		}
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// Quickstart: generate a synthetic Internet, run one day's measurement
// campaign, build the compact atlas, and answer a path query locally — the
// whole iNano pipeline in one file.
package main

import (
	"bytes"
	"fmt"
	"log"

	inano "inano"
	"inano/sim"
)

func main() {
	// 1. A deterministic synthetic Internet with ground-truth routing.
	world := sim.NewWorld(sim.Tiny, 1)
	fmt.Println("world:", world.Top.Stats())

	// 2. One day's measurement campaign: vantage points traceroute every
	// edge prefix (the PlanetLab role).
	vps := world.VantagePoints(14)
	campaign := world.Measure(sim.CampaignOptions{
		Day:     0,
		VPs:     vps,
		Targets: world.EdgePrefixes(),
	})

	// 3. The server-side build: cluster interfaces into PoPs, annotate
	// links, infer 3-tuples / preferences / providers.
	atlas := campaign.BuildAtlas()
	var buf bytes.Buffer
	if err := atlas.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("atlas: %d clusters, %d links, %d 3-tuples — %d bytes compressed\n",
		atlas.NumClusters, len(atlas.Links), len(atlas.Tuples), buf.Len())

	// 4. The client side: load the atlas and query it, exactly as an
	// application linking the library would.
	client, err := inano.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	src, dst := vps[0], world.EdgePrefixes()[7]
	info := client.QueryPrefix(src, dst)
	if !info.Found {
		log.Fatalf("no prediction for %v -> %v", src, dst)
	}
	fmt.Printf("\nquery %v -> %v\n", src, dst)
	fmt.Printf("  predicted RTT:   %.1f ms\n", info.RTTMS)
	fmt.Printf("  predicted loss:  %.2f%%\n", info.LossRate*100)
	fmt.Printf("  forward AS path: %v\n", info.Fwd.ASPath)

	// 5. Compare against the ground truth the simulator knows.
	if rtt, ok := world.TrueRTT(0, src, dst); ok {
		fmt.Printf("  true RTT:        %.1f ms (error %.1f ms)\n", rtt, abs(info.RTTMS-rtt))
	}
	if path, ok := world.TrueASPath(0, src, dst); ok {
		fmt.Printf("  true AS path:    %v\n", path)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// The feedback example closes the paper's client-side measurement loop
// (§4.3.1, §5) end to end, in process: a client serving predictions from
// a freshly fetched atlas compares them against the round-trip times its
// "applications" actually observe, aggregates the error per destination,
// and spends a small budget of corrective traceroutes on the worst
// mispredictions — patching its local atlas copy-on-write. Run it with:
//
//	go run ./examples/feedback
package main

import (
	"context"
	"fmt"
	"time"

	inano "inano"
	"inano/internal/feedback"
	"inano/sim"
)

func main() {
	// A synthetic Internet and one day's measured atlas (the serving side
	// of §5 — in production this arrives through the swarm).
	w := sim.NewWorld(sim.Tiny, 7)
	vps := w.VantagePoints(12)
	targets := w.EdgePrefixes()
	campaign := w.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: append(targets, vps...)})
	client := inano.FromAtlas(campaign.BuildAtlas())

	// This host is one of the vantage points; its workload talks to the
	// other vantage points (think: a P2P swarm of well-known peers).
	me := vps[0]
	peers := vps[1:]

	meanErr := func() float64 {
		sum := 0.0
		for _, p := range peers {
			truth, ok := w.TrueRTT(0, me, p)
			if !ok {
				continue
			}
			info := client.QueryPrefix(me, p)
			sum += feedback.RelErr(info.RTTMS, truth, info.Found)
		}
		return sum / float64(len(peers))
	}

	fmt.Printf("feedback loop: %d peers, mean RTT error before: %.3f\n", len(peers), meanErr())

	// Applications report what they actually measured (here: ground truth
	// from the simulator; in reality, TCP RTT samples or ping).
	for round := 1; round <= 3; round++ {
		for _, p := range peers {
			if truth, ok := w.TrueRTT(0, me, p); ok {
				client.ObserveRTT(me.HostIP(), p.HostIP(), truth)
			}
		}
		// The corrective scheduler traceroutes the worst-mispredicted
		// destinations, bounded by the budget, and merges the results.
		r := client.CorrectOnce(context.Background(), feedback.SimProber{Meter: campaign.Meter()},
			inano.CorrectorConfig{Budget: 4, MinError: 0.05, Cooldown: time.Hour})
		fmt.Printf("round %d: %d/%d probes spent, %d atlas changes, mean error now %.3f\n",
			round, r.Probes, r.Budget, r.Merged, meanErr())
	}

	st := client.FeedbackStats()
	fmt.Printf("tracker: %d destinations, %d samples, worst EWMA error %.3f\n",
		st.Entries, st.TotalSamples, st.WorstErr)
}

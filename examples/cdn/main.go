// CDN replica selection (§7.1): a client-based content delivery network
// picks the replica that minimizes predicted download time, using iNano's
// latency and loss estimates with a TCP throughput model — and we check the
// choice against ground truth.
//
// Each client scores all of its candidate replicas with one QueryBatch:
// the engine answers the whole candidate set off shared prediction trees
// instead of running one Dijkstra per replica.
package main

import (
	"fmt"
	"log"
	"math/rand"

	inano "inano"
	"inano/internal/tcpmodel"
	"inano/sim"
)

func main() {
	world := sim.NewWorld(sim.Tiny, 3)
	vps := world.VantagePoints(16)
	campaign := world.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: world.EdgePrefixes()})
	client := inano.FromAtlas(campaign.BuildAtlas())

	rng := rand.New(rand.NewSource(3))
	edge := world.EdgePrefixes()
	clients := vps[:8]
	const fileSize = 1_500_000 // the paper's large-file case

	fmt.Printf("CDN replica selection, %dKB file, 5 random replicas per client\n\n", fileSize/1000)
	var chosenSum, bestSum, randSum float64
	for _, cl := range clients {
		// Each client sees 5 random replicas (Akamai-server stand-ins).
		replicas := make([]inano.Prefix, 0, 5)
		for len(replicas) < 5 {
			r := edge[rng.Intn(len(edge))]
			if r != cl {
				replicas = append(replicas, r)
			}
		}
		// One batch query scores every replica by predicted download time
		// over the shared prediction trees.
		pick, ok := client.BestReplica(cl, replicas, fileSize)
		if !ok {
			log.Printf("client %v: no prediction for any replica", cl)
			continue
		}
		// Score every replica with ground truth to see what we gave up.
		best, bestT := replicas[0], 0.0
		var pickT, randT float64
		for i, r := range replicas {
			rtt, _ := world.TrueRTT(0, cl, r)
			loss, _ := world.TrueLoss(0, cl, r)
			t := transferMS(fileSize, rtt, loss)
			if i == 0 || t < bestT {
				best, bestT = r, t
			}
			if r == pick {
				pickT = t
			}
			if i == 0 {
				randT = t // "random" = first drawn
			}
		}
		chosenSum += pickT
		bestSum += bestT
		randSum += randT
		marker := " "
		if pick == best {
			marker = "*"
		}
		fmt.Printf("client %v: picked %v (true %.0f ms, optimal %.0f ms)%s\n", cl, pick, pickT, bestT, marker)
	}
	n := float64(len(clients))
	fmt.Printf("\nmean download: iNano %.0f ms, optimal %.0f ms, random %.0f ms\n",
		chosenSum/n, bestSum/n, randSum/n)
}

// transferMS scores a download with the same PFTK-based transfer model the
// library applies to its predictions, here fed with ground truth.
func transferMS(size int, rttMS, loss float64) float64 {
	return tcpmodel.TransferTimeMS(size, rttMS, loss, tcpmodel.DefaultParams())
}

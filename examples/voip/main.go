// VoIP relay selection (§7.2): two NATed endpoints relay a call through a
// third peer; iNano picks the relay by predicted loss then latency, and we
// score the resulting call quality (MOS) against the alternatives.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	inano "inano"
	"inano/internal/voip"
	"inano/sim"
)

func main() {
	world := sim.NewWorld(sim.Tiny, 5)
	vps := world.VantagePoints(18)
	campaign := world.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: world.EdgePrefixes()})
	client := inano.FromAtlas(campaign.BuildAtlas())

	src, dst := vps[0], vps[1]
	relays := vps[2:]
	fmt.Printf("call %v -> %v, %d candidate relays\n\n", src, dst, len(relays))

	// Relay selection is a batch workload: both legs of every candidate go
	// out as one QueryBatch under a deadline, bounding call-setup latency.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	pick, ok, err := client.BestRelayContext(ctx, src, dst, relays, 10)
	if err != nil {
		log.Fatalf("relay scoring timed out: %v", err)
	}
	if !ok {
		log.Fatal("no relay predictable for both legs")
	}
	if mos, ok := client.RelayMOS(src, dst, pick); ok {
		fmt.Printf("iNano picks relay %v (predicted MOS %.2f)\n", pick, mos)
	}

	// Score every relay with ground truth and show where the pick lands.
	fmt.Printf("\n%-18s %10s %10s %8s\n", "relay", "loss", "delay(ms)", "MOS")
	bestMOS, pickMOS := 0.0, 0.0
	for _, r := range relays {
		l1, ok1 := world.TrueLoss(0, src, r)
		l2, ok2 := world.TrueLoss(0, r, dst)
		r1, ok3 := world.TrueRTT(0, src, r)
		r2, ok4 := world.TrueRTT(0, r, dst)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		loss := 1 - (1-l1)*(1-l2)
		oneway := (r1 + r2) / 2
		mos := voip.MOS(oneway, loss)
		mark := ""
		if r == pick {
			mark = "  <- iNano's choice"
			pickMOS = mos
		}
		if mos > bestMOS {
			bestMOS = mos
		}
		fmt.Printf("%-18v %9.3f%% %10.1f %8.2f%s\n", r, loss*100, oneway, mos, mark)
	}
	fmt.Printf("\ntrue MOS of iNano's relay: %.2f (best possible %.2f)\n", pickMOS, bestMOS)
}

// Detour routing around failures (§7.3): when the direct path to a
// destination breaks, iNano ranks detour peers by how disjoint their
// predicted paths are from the broken one, so few attempts find a working
// route. We fail an AS adjacency on the direct path and watch the ranking
// route around it.
package main

import (
	"fmt"
	"log"

	inano "inano"
	"inano/internal/netsim"
	"inano/sim"
)

func main() {
	world := sim.NewWorld(sim.Tiny, 9)
	vps := world.VantagePoints(16)
	campaign := world.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: world.EdgePrefixes()})
	client := inano.FromAtlas(campaign.BuildAtlas())

	src, dst := vps[0], world.EdgePrefixes()[11]
	direct, ok := world.TrueASPath(0, src, dst)
	if !ok || len(direct) < 3 {
		log.Fatalf("need a multi-AS direct path, got %v", direct)
	}
	// Fail the AS adjacency closest to the destination's provider edge.
	fa, fb := direct[len(direct)-3], direct[len(direct)-2]
	fmt.Printf("direct path %v -> %v: %v\n", src, dst, direct)
	fmt.Printf("injected failure: AS%d-AS%d link down\n\n", fa, fb)

	crossesFailure := func(a, b inano.Prefix) bool {
		p, ok := world.TrueASPath(0, a, b)
		if !ok {
			return true
		}
		for i := 0; i+1 < len(p); i++ {
			if (p[i] == fa && p[i+1] == fb) || (p[i] == fb && p[i+1] == fa) {
				return true
			}
		}
		return false
	}
	if !crossesFailure(src, dst) {
		log.Fatal("direct path unexpectedly avoids the failed edge")
	}

	candidates := make([]inano.Prefix, 0, len(vps)-1)
	for _, v := range vps[1:] {
		candidates = append(candidates, v)
	}
	ranked := client.RankDetours(src, dst, candidates)
	fmt.Println("detours in iNano's disjointness order:")
	for i, d := range ranked {
		works := !crossesFailure(src, d) && !crossesFailure(d, dst)
		status := "still broken"
		if works {
			status = "WORKS"
		}
		fmt.Printf("%2d. %-16v %s\n", i+1, d, status)
		if works {
			fmt.Printf("\nrecovered after %d attempt(s)\n", i+1)
			return
		}
		if i == 7 {
			break
		}
	}
	fmt.Println("\nno working detour among the first 8 — widespread outage")
	_ = netsim.ASN(0)
}

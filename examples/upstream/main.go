// The upstream example closes the paper's measurement loop in BOTH
// directions, in process: reporting clients measure real round-trip
// times, their corrective observations flow through an Uploader into the
// build server's Aggregator (in production: POST /v1/observations), the
// build folds the robust per-prefix aggregate into the next daily delta,
// and a client that never reported anything applies that delta and serves
// better predictions — every peer benefits from any peer's probes. Run it
// with:
//
//	go run ./examples/upstream
package main

import (
	"context"
	"fmt"
	"net/http/httptest"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/server"
	"inano/sim"
)

func main() {
	// A synthetic Internet and one day's measured atlas.
	w := sim.NewWorld(sim.Tiny, 7)
	vps := w.VantagePoints(12)
	targets := w.EdgePrefixes()
	campaign := w.Measure(sim.CampaignOptions{Day: 0, VPs: vps, Targets: append(targets, vps...)})
	base := campaign.BuildAtlas()

	// The build server: serves the atlas and aggregates uploaded
	// observations (inanod -aggregate).
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	srv := server.New(server.Config{
		Client:     inano.FromAtlas(base.Clone()),
		Aggregator: agg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Reporting clients: each measures ground truth toward the shared
	// peer set and ships the residuals upstream through an uploader.
	reporters := vps[1:6]
	peers := vps[6:]
	shipped := 0
	for _, me := range reporters {
		c := inano.FromAtlas(base.Clone())
		up := inano.NewUploader(inano.UploaderConfig{URL: ts.URL + "/v1/observations"})
		for _, p := range peers {
			truth, ok := w.TrueRTT(0, me, p)
			if !ok {
				continue
			}
			info := c.QueryPrefix(me, p)
			if !info.Found {
				continue
			}
			up.Add(inano.UpstreamObservation{
				Src: me.HostIP(), Dst: p.HostIP(),
				RTTMS: truth, PredictedMS: info.RTTMS,
			})
		}
		n, err := up.Flush(context.Background())
		if err != nil {
			panic(err)
		}
		shipped += n
	}
	snap := agg.Snapshot(0)
	fmt.Printf("upstream: %d reporters shipped %d observations -> %d aggregated prefixes\n",
		len(reporters), shipped, len(snap.Prefixes))

	// The build folds the aggregate into the next delta
	// (inano-build -observations obs.json).
	delta, _, n := atlas.BuildDeltaWithObservations(base, base.Clone(), snap.Residuals(3))
	fmt.Printf("build: %d corrections folded into the delta (%d entries, %d bytes)\n",
		n, delta.Entries(), delta.EncodedSize())

	// A client that never reported applies the delta (in production it
	// arrives through the swarm via WatchManifest) and serves the
	// swarm-learned corrections.
	me := vps[0]
	freeRider := inano.FromAtlas(base.Clone())
	meanErr := func(c *inano.Client) float64 {
		sum, cnt := 0.0, 0
		for _, p := range peers {
			truth, ok := w.TrueRTT(0, me, p)
			if !ok {
				continue
			}
			info := c.QueryPrefix(me, p)
			sum += feedback.RelErr(info.RTTMS, truth, info.Found)
			cnt++
		}
		return sum / float64(cnt)
	}
	before := meanErr(freeRider)

	applied := base.Clone()
	applied.Apply(delta)
	after := meanErr(inano.FromAtlas(applied))
	fmt.Printf("non-reporting client: mean RTT error %.3f -> %.3f\n", before, after)
}

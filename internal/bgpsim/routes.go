package bgpsim

import (
	"sync"

	"inano/internal/netsim"
)

// RouteClass is the local-preference class of a selected route.
type RouteClass int8

const (
	// ClassNone means no route (unreachable).
	ClassNone RouteClass = iota
	// ClassOrigin marks the destination AS itself.
	ClassOrigin
	// ClassCustomer routes go through a customer (or sibling) and are the
	// most preferred.
	ClassCustomer
	// ClassPeer routes go through a settlement-free peer.
	ClassPeer
	// ClassProvider routes go through a paid provider and are least
	// preferred.
	ClassProvider
)

// RouteTable holds, for one destination AS, every AS's selected route:
// next-hop AS, AS-hop count, preference class, and the runner-up next hop
// (the second-best equally-valid choice, used for traffic-engineering
// deflections). Slices are indexed by ASN-1.
type RouteTable struct {
	Dst      netsim.ASN
	NextHop  []netsim.ASN // 0 = no route (or origin)
	Hops     []int32      // -1 = no route
	Class    []RouteClass
	RunnerUp []netsim.ASN // 0 = no alternative
}

// Day is the routing view for one simulated day.
type Day struct {
	sim       *Sim
	day       int
	quirkSalt []uint64

	mu       sync.Mutex
	tables   map[netsim.ASN]*RouteTable
	te       map[netsim.Prefix]*teOverride
	exitSalt map[uint64]uint64
}

// exitSaltFor chains per-day exit-noise re-rolls for one AS adjacency.
func (v *Day) exitSaltFor(pairKey uint64) uint64 {
	v.mu.Lock()
	if s, ok := v.exitSalt[pairKey]; ok {
		v.mu.Unlock()
		return s
	}
	v.mu.Unlock()
	s := v.sim
	last := 0
	for d := 1; d <= v.day; d++ {
		if hashFloat(mix(uint64(s.seed), 0xee, pairKey, uint64(d))) < s.Cfg.ExitChurnPerDay {
			last = d
		}
	}
	salt := mix(uint64(s.seed), 0xef, pairKey, uint64(last))
	v.mu.Lock()
	v.exitSalt[pairKey] = salt
	v.mu.Unlock()
	return salt
}

type teOverride struct {
	at   netsim.ASN // deflecting AS (0 = no deflection for this prefix)
	next netsim.ASN // forced next hop at that AS
}

// DayNum returns the simulated day this view describes.
func (v *Day) DayNum() int { return v.day }

// Sim returns the owning simulator.
func (v *Day) Sim() *Sim { return v.sim }

// prefRank orders AS a's neighbors: lower is more preferred. The ordering is
// an arbitrary-but-stable function of (a, neighbor, day-salt); it models the
// unobservable local policy that iNano's §4.3.3 preference inference learns
// from path observations.
func (v *Day) prefRank(a, nb netsim.ASN) uint64 {
	return mix(v.quirkSalt[a-1], uint64(nb), 0x17, 0)
}

// Table computes (or returns cached) the route table for destination AS d.
func (v *Day) Table(d netsim.ASN) *RouteTable {
	v.mu.Lock()
	if t, ok := v.tables[d]; ok {
		v.mu.Unlock()
		return t
	}
	v.mu.Unlock()
	t := v.computeTable(d)
	v.mu.Lock()
	v.tables[d] = t
	v.mu.Unlock()
	return t
}

// computeTable runs three-phase policy route selection for destination AS d,
// the standard model of BGP decision making:
//
//	phase 1: customer routes climb provider (and sibling) edges — an AS
//	         hears the routes its customers select;
//	phase 2: peer routes — an AS hears its peers' customer routes, one
//	         peering hop only (valley-free export);
//	phase 3: provider routes descend to customers (and siblings).
//
// Within a class, selection is shortest AS path; ties break by the AS's
// private preference ordering (prefRank). The no-self-export set filters the
// direct edge to d for marked neighbors.
func (v *Day) computeTable(d netsim.ASN) *RouteTable {
	top := v.sim.Top
	n := len(top.ASes)
	t := &RouteTable{
		Dst:      d,
		NextHop:  make([]netsim.ASN, n),
		Hops:     make([]int32, n),
		Class:    make([]RouteClass, n),
		RunnerUp: make([]netsim.ASN, n),
	}
	for i := range t.Hops {
		t.Hops[i] = -1
	}
	t.Hops[d-1] = 0
	t.Class[d-1] = ClassOrigin

	// blocked reports whether x may not learn d's own prefixes directly
	// from d (no-self-export transit engineering).
	blocked := func(x, via netsim.ASN) bool {
		return via == d && top.NoSelfExport[netsim.DirASPairKey(x, d)]
	}

	// Phase 1: customer routes, BFS by hop count (each wave settles hops
	// equal to the wave number, so plain BFS is exact shortest-path).
	frontier := []netsim.ASN{d}
	for hops := int32(1); len(frontier) > 0; hops++ {
		byAt := make(map[netsim.ASN][]netsim.ASN)
		for _, x := range frontier {
			for _, y := range top.ASAdj[x-1] {
				r := top.RelOf(x, y) // what y is to x
				if r != netsim.RelProvider && r != netsim.RelSibling {
					continue
				}
				if t.Hops[y-1] >= 0 || blocked(y, x) {
					continue
				}
				byAt[y] = append(byAt[y], x)
			}
		}
		frontier = frontier[:0]
		for at, vias := range byAt {
			best, runner := selectBest(t, at, vias, v)
			t.NextHop[at-1] = best
			t.RunnerUp[at-1] = runner
			t.Hops[at-1] = hops
			t.Class[at-1] = ClassCustomer
			frontier = append(frontier, at)
		}
	}

	// Phase 2: peer routes — single step from customer-settled ASes.
	{
		byAt := make(map[netsim.ASN][]netsim.ASN)
		for i := range top.ASes {
			x := netsim.ASN(i + 1)
			if t.Class[i] != ClassCustomer && t.Class[i] != ClassOrigin {
				continue
			}
			for _, y := range top.ASAdj[i] {
				if top.RelOf(x, y) != netsim.RelPeer {
					continue
				}
				if t.Hops[y-1] >= 0 || blocked(y, x) {
					continue
				}
				byAt[y] = append(byAt[y], x)
			}
		}
		for at, vias := range byAt {
			best, runner := selectBest(t, at, vias, v)
			t.NextHop[at-1] = best
			t.RunnerUp[at-1] = runner
			t.Hops[at-1] = t.Hops[best-1] + 1
			t.Class[at-1] = ClassPeer
		}
	}

	// Phase 3: provider routes descend. Settled ASes have heterogeneous
	// hop counts, so this is a bucketed Dijkstra: draining buckets in
	// increasing hop order guarantees each AS settles at its true
	// shortest provider-route length.
	maxHops := int32(0)
	for i := range t.Hops {
		if t.Hops[i] > maxHops {
			maxHops = t.Hops[i]
		}
	}
	buckets := make([][]netsim.ASN, maxHops+2)
	for i := range t.Hops {
		if h := t.Hops[i]; h >= 0 {
			buckets[h] = append(buckets[h], netsim.ASN(i+1))
		}
	}
	for h := int32(0); h < int32(len(buckets)); h++ {
		byAt := make(map[netsim.ASN][]netsim.ASN)
		for _, x := range buckets[h] {
			for _, y := range top.ASAdj[x-1] {
				r := top.RelOf(x, y)
				if r != netsim.RelCustomer && r != netsim.RelSibling {
					continue // only customers/siblings hear x's full table
				}
				if t.Hops[y-1] >= 0 || blocked(y, x) {
					continue
				}
				byAt[y] = append(byAt[y], x)
			}
		}
		for at, vias := range byAt {
			best, runner := selectBest(t, at, vias, v)
			t.NextHop[at-1] = best
			t.RunnerUp[at-1] = runner
			t.Hops[at-1] = h + 1
			t.Class[at-1] = ClassProvider
			if int(h+1) >= len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[h+1] = append(buckets[h+1], at)
		}
	}
	return t
}

// selectBest picks the preferred next hop for AS `at` among candidate vias,
// ordering by (hop count of via's route, at's private preference). It also
// returns the runner-up, if any.
func selectBest(t *RouteTable, at netsim.ASN, vias []netsim.ASN, v *Day) (best, runner netsim.ASN) {
	betterThan := func(a, b netsim.ASN) bool {
		ha, hb := t.Hops[a-1], t.Hops[b-1]
		if ha != hb {
			return ha < hb
		}
		return v.prefRank(at, a) < v.prefRank(at, b)
	}
	for _, via := range vias {
		switch {
		case best == 0 || betterThan(via, best):
			best, runner = via, best
		case via != best && (runner == 0 || betterThan(via, runner)):
			runner = via
		}
	}
	return best, runner
}

// teFor returns the traffic-engineering deflection for prefix p, computing
// and caching it on first use. A deflected prefix forces one AS on its
// routing tree to use its runner-up next hop; deflections that would create
// forwarding loops are discarded.
func (v *Day) teFor(p netsim.Prefix) *teOverride {
	v.mu.Lock()
	if o, ok := v.te[p]; ok {
		v.mu.Unlock()
		return o
	}
	v.mu.Unlock()

	o := v.computeTE(p)
	v.mu.Lock()
	v.te[p] = o
	v.mu.Unlock()
	return o
}

func (v *Day) computeTE(p netsim.Prefix) *teOverride {
	s := v.sim
	// Chain per-day TE re-rolls like quirks.
	last := 0
	for d := 1; d <= v.day; d++ {
		if hashFloat(mix(uint64(s.seed), 0xcc, uint64(p), uint64(d))) < s.Cfg.TEChurnPerDay {
			last = d
		}
	}
	salt := mix(uint64(s.seed), 0xcd, uint64(p), uint64(last))
	if hashFloat(mix(salt, 1, 0, 0)) >= s.Cfg.TEFrac {
		return &teOverride{}
	}
	origin, ok := s.Top.PrefixOrigin[p]
	if !ok {
		return &teOverride{}
	}
	t := v.Table(origin)
	// Gather deflectable ASes: those with a recorded runner-up.
	var deflectable []netsim.ASN
	for i := range t.NextHop {
		if t.RunnerUp[i] != 0 {
			deflectable = append(deflectable, netsim.ASN(i+1))
		}
	}
	if len(deflectable) == 0 {
		return &teOverride{}
	}
	at := deflectable[int(mix(salt, 2, 0, 0)%uint64(len(deflectable)))]
	forced := t.RunnerUp[at-1]
	// Reject deflections that loop or dead-end.
	cur, hops := at, 0
	for cur != origin {
		if hops++; hops > 64 {
			return &teOverride{}
		}
		nh := t.NextHop[cur-1]
		if cur == at {
			nh = forced
		}
		if nh == 0 {
			return &teOverride{}
		}
		cur = nh
	}
	return &teOverride{at: at, next: forced}
}

// ASPath returns the ground-truth AS-level path from srcAS to the origin of
// dst, including both endpoints, honoring any traffic-engineering
// deflection for dst. ok is false if srcAS has no route.
func (v *Day) ASPath(srcAS netsim.ASN, dst netsim.Prefix) (path []netsim.ASN, ok bool) {
	origin, exists := v.sim.Top.PrefixOrigin[dst]
	if !exists {
		return nil, false
	}
	if srcAS == origin {
		return []netsim.ASN{origin}, true
	}
	t := v.Table(origin)
	te := v.teFor(dst)
	cur := srcAS
	path = append(path, cur)
	for cur != origin {
		if len(path) > 64 {
			return nil, false
		}
		nh := t.NextHop[cur-1]
		if te.at == cur {
			nh = te.next
		}
		if nh == 0 {
			return nil, false
		}
		cur = nh
		path = append(path, cur)
	}
	return path, true
}

package bgpsim

import (
	"testing"

	"inano/internal/netsim"
)

func testSim(t *testing.T, seed int64) *Sim {
	t.Helper()
	top := netsim.Generate(netsim.TestConfig(seed))
	return New(top, DefaultConfig())
}

func TestAllPrefixesReachable(t *testing.T) {
	s := testSim(t, 1)
	day := s.Day(0)
	srcs := sampleASNs(s.Top, 20)
	for _, dst := range s.Top.EdgePrefixes {
		for _, src := range srcs {
			if _, ok := day.ASPath(src, dst); !ok {
				t.Fatalf("AS %d cannot reach %v", src, dst)
			}
		}
	}
}

func sampleASNs(top *netsim.Topology, n int) []netsim.ASN {
	var out []netsim.ASN
	step := len(top.ASes)/n + 1
	for i := 0; i < len(top.ASes); i += step {
		out = append(out, top.ASes[i].ASN)
	}
	return out
}

// Ground-truth AS paths must be valley-free: once the path crosses a
// peer-to-peer or provider-to-customer edge, it may never again cross a
// customer-to-provider or peer-to-peer edge. Sibling edges are transparent.
func TestASPathsValleyFree(t *testing.T) {
	s := testSim(t, 2)
	day := s.Day(0)
	srcs := sampleASNs(s.Top, 15)
	checked := 0
	for pi, dst := range s.Top.EdgePrefixes {
		if pi%3 != 0 {
			continue
		}
		for _, src := range srcs {
			path, ok := day.ASPath(src, dst)
			if !ok {
				t.Fatalf("no path %d -> %v", src, dst)
			}
			assertValleyFree(t, s.Top, path)
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func assertValleyFree(t *testing.T, top *netsim.Topology, path []netsim.ASN) {
	t.Helper()
	descended := false // crossed a p2c or p2p edge already
	for i := 0; i+1 < len(path); i++ {
		r := top.RelOf(path[i], path[i+1]) // what next is to cur
		switch r {
		case netsim.RelSibling:
			// transparent
		case netsim.RelProvider: // climbing up
			if descended {
				t.Fatalf("valley in path %v at %d->%d (climb after descend)", path, path[i], path[i+1])
			}
		case netsim.RelPeer:
			if descended {
				t.Fatalf("valley in path %v at %d->%d (peer after descend)", path, path[i], path[i+1])
			}
			descended = true
		case netsim.RelCustomer:
			descended = true
		default:
			t.Fatalf("path %v uses non-adjacent ASes %d -> %d", path, path[i], path[i+1])
		}
	}
}

func TestASPathNoLoops(t *testing.T) {
	s := testSim(t, 3)
	day := s.Day(0)
	for pi, dst := range s.Top.EdgePrefixes {
		if pi%5 != 0 {
			continue
		}
		for _, src := range sampleASNs(s.Top, 10) {
			path, ok := day.ASPath(src, dst)
			if !ok {
				continue
			}
			seen := make(map[netsim.ASN]bool, len(path))
			for _, a := range path {
				if seen[a] {
					t.Fatalf("AS loop in path %v", path)
				}
				seen[a] = true
			}
		}
	}
}

func TestRoutesDeterministicPerDay(t *testing.T) {
	s1 := testSim(t, 4)
	s2 := New(s1.Top, DefaultConfig())
	d1, d2 := s1.Day(3), s2.Day(3)
	for _, dst := range s1.Top.EdgePrefixes[:10] {
		for _, src := range sampleASNs(s1.Top, 8) {
			p1, ok1 := d1.ASPath(src, dst)
			p2, ok2 := d2.ASPath(src, dst)
			if ok1 != ok2 || !equalASPath(p1, p2) {
				t.Fatalf("nondeterministic path %d->%v: %v vs %v", src, dst, p1, p2)
			}
		}
	}
}

func equalASPath(a, b []netsim.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoutesChurnAcrossDays(t *testing.T) {
	s := testSim(t, 5)
	d0, d1 := s.Day(0), s.Day(1)
	same, diff := 0, 0
	for _, dst := range s.Top.EdgePrefixes {
		for _, src := range sampleASNs(s.Top, 10) {
			p0, _ := d0.ASPath(src, dst)
			p1, _ := d1.ASPath(src, dst)
			if equalASPath(p0, p1) {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("no routes changed across days; churn model inert")
	}
	if same == 0 {
		t.Fatal("all routes changed across days; churn model too aggressive")
	}
	frac := float64(same) / float64(same+diff)
	if frac < 0.5 {
		t.Errorf("fraction of stable AS paths across days = %.2f, want >= 0.5 (AS routes are mostly stationary)", frac)
	}
}

// PoP-level paths must churn more than AS paths (exit/IGP noise), which is
// what drives the Fig. 4 stationarity experiment.
func TestPoPPathChurnAcrossDays(t *testing.T) {
	s := testSim(t, 5)
	d0, d1 := s.Day(0), s.Day(1)
	same, diff := 0, 0
	eps := s.Top.EdgePrefixes
	for i, dst := range eps {
		src := eps[(i+17)%len(eps)]
		if src == dst {
			continue
		}
		p0, ok0 := d0.Route(src, dst)
		p1, ok1 := d1.Route(src, dst)
		if !ok0 || !ok1 {
			continue
		}
		if equalPoPs(p0.PoPs(), p1.PoPs()) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no PoP paths changed across days; exit churn inert")
	}
	if same == 0 {
		t.Error("all PoP paths changed across days; exit churn too aggressive")
	}
}

func equalPoPs(a, b []netsim.PoPID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPoPPathContiguity(t *testing.T) {
	s := testSim(t, 6)
	day := s.Day(0)
	for pi, dst := range s.Top.EdgePrefixes {
		if pi%4 != 0 {
			continue
		}
		src := s.Top.EdgePrefixes[(pi+7)%len(s.Top.EdgePrefixes)]
		p, ok := day.Route(src, dst)
		if !ok {
			t.Fatalf("no route %v -> %v", src, dst)
		}
		if p.Hops[0].Link != -1 {
			t.Fatalf("first hop has entering link")
		}
		for i := 1; i < len(p.Hops); i++ {
			l := s.Top.Links[p.Hops[i].Link]
			prev, cur := p.Hops[i-1].PoP, p.Hops[i].PoP
			if !(l.A == prev && l.B == cur || l.B == prev && l.A == cur) {
				t.Fatalf("hop %d link %d does not join PoPs %d-%d", i, l.ID, prev, cur)
			}
		}
		if last := p.Hops[len(p.Hops)-1].PoP; last != s.Top.PrefixHome[dst] {
			t.Fatalf("path ends at PoP %d, want home %d", last, s.Top.PrefixHome[dst])
		}
		// The PoP-level AS sequence must match the AS path.
		asPath, _ := day.ASPath(s.Top.PoPAS(p.Hops[0].PoP), dst)
		var popAS []netsim.ASN
		for _, h := range p.Hops {
			a := s.Top.PoPAS(h.PoP)
			if len(popAS) == 0 || popAS[len(popAS)-1] != a {
				popAS = append(popAS, a)
			}
		}
		if !equalASPath(asPath, popAS) {
			t.Fatalf("PoP path AS sequence %v != AS path %v", popAS, asPath)
		}
	}
}

func TestPathAsymmetryExists(t *testing.T) {
	s := testSim(t, 8)
	day := s.Day(0)
	asym := 0
	total := 0
	eps := s.Top.EdgePrefixes
	for i := 0; i < len(eps) && total < 200; i += 2 {
		src, dst := eps[i], eps[(i+11)%len(eps)]
		if src == dst {
			continue
		}
		fwd, ok1 := day.Route(src, dst)
		rev, ok2 := day.Route(dst, src)
		if !ok1 || !ok2 {
			continue
		}
		total++
		f := fwd.PoPs()
		r := rev.PoPs()
		if !reversedEqual(f, r) {
			asym++
		}
	}
	if total == 0 {
		t.Fatal("no pairs measured")
	}
	if asym == 0 {
		t.Error("no asymmetric routes; asymmetry model inert")
	}
}

func reversedEqual(f, r []netsim.PoPID) bool {
	if len(f) != len(r) {
		return false
	}
	for i := range f {
		if f[i] != r[len(r)-1-i] {
			return false
		}
	}
	return true
}

func TestRTTPositiveAndSymmetricComposition(t *testing.T) {
	s := testSim(t, 9)
	day := s.Day(0)
	eps := s.Top.EdgePrefixes
	for i := 0; i < 50; i++ {
		src, dst := eps[i%len(eps)], eps[(i*13+5)%len(eps)]
		if src == dst {
			continue
		}
		r1, ok := day.RTT(src, dst)
		if !ok {
			t.Fatalf("no RTT %v->%v", src, dst)
		}
		r2, _ := day.RTT(dst, src)
		if r1 <= 0 {
			t.Fatalf("RTT %v->%v = %v", src, dst, r1)
		}
		// RTT composes the same fwd+rev paths in either query order.
		if diff := r1 - r2; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("RTT not query-order invariant: %v vs %v", r1, r2)
		}
	}
}

func TestLossBoundsAndChurn(t *testing.T) {
	s := testSim(t, 10)
	day := s.Day(0)
	eps := s.Top.EdgePrefixes
	someLoss := false
	for i := 0; i < 100; i++ {
		src, dst := eps[i%len(eps)], eps[(i*7+3)%len(eps)]
		if src == dst {
			continue
		}
		l, ok := day.FwdLoss(src, dst)
		if !ok {
			continue
		}
		if l < 0 || l >= 1 {
			t.Fatalf("loss out of range: %v", l)
		}
		if l > 0 {
			someLoss = true
		}
	}
	if !someLoss {
		t.Error("no lossy paths at all; loss model inert")
	}
	// Loss must churn across days for at least one link.
	changed := false
	for lid := range s.Top.Links {
		l := netsim.LinkID(lid)
		from := s.Top.Links[lid].A
		if s.LinkLoss(l, from, 0) != s.LinkLoss(l, from, 5) {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("no link loss changed between day 0 and day 5")
	}
}

func TestRouteTableClasses(t *testing.T) {
	s := testSim(t, 11)
	day := s.Day(0)
	dst := s.Top.EdgePrefixes[0]
	origin := s.Top.PrefixOrigin[dst]
	tab := day.Table(origin)
	if tab.Class[origin-1] != ClassOrigin {
		t.Fatalf("origin class = %v", tab.Class[origin-1])
	}
	counts := map[RouteClass]int{}
	for i, c := range tab.Class {
		counts[c]++
		if c == ClassNone && tab.Hops[i] >= 0 {
			t.Fatalf("AS %d has hops %d but no class", i+1, tab.Hops[i])
		}
	}
	if counts[ClassProvider] == 0 {
		t.Error("no provider-class routes; phase 3 inert")
	}
	// The next-hop of every routed AS must itself have a route with
	// strictly fewer hops... except TE is not applied at table level, so
	// plain consistency: next hop routed.
	for i, nh := range tab.NextHop {
		if nh == 0 {
			continue
		}
		if tab.Hops[nh-1] < 0 {
			t.Fatalf("AS %d routes via AS %d which has no route", i+1, nh)
		}
		if tab.Hops[nh-1] >= tab.Hops[i] {
			t.Fatalf("AS %d (hops %d) routes via AS %d (hops %d)", i+1, tab.Hops[i], nh, tab.Hops[nh-1])
		}
	}
}

func TestTEDeflectionsExist(t *testing.T) {
	s := testSim(t, 12)
	day := s.Day(0)
	deflected := 0
	for _, p := range s.Top.EdgePrefixes {
		if day.teFor(p).at != 0 {
			deflected++
		}
	}
	if deflected == 0 {
		t.Error("no TE deflections in the whole world; TE model inert")
	}
}

package bgpsim

import (
	"math"
	"sync"

	"inano/internal/netsim"
)

// Hop is one PoP on a ground-truth path.
type Hop struct {
	PoP netsim.PoPID
	// Link is the link traversed to enter this PoP, -1 for the first hop.
	Link netsim.LinkID
}

// Path is a ground-truth one-way PoP-level path. OneWayMS covers the listed
// links only; last-mile access latency is accounted separately by RTT.
type Path struct {
	Hops     []Hop
	OneWayMS float64
}

// PoPs returns just the PoP sequence.
func (p Path) PoPs() []netsim.PoPID {
	out := make([]netsim.PoPID, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.PoP
	}
	return out
}

// intraCache lazily computes all-pairs shortest paths (by latency) among
// each AS's PoPs over intra-AS links, with next-link matrices for path
// reconstruction. ASes have at most a few dozen PoPs, so Floyd-Warshall per
// AS is cheap.
type intraCache struct {
	top  *netsim.Topology
	mu   sync.Mutex
	byAS map[netsim.ASN]*intraAS
}

type intraAS struct {
	idx  map[netsim.PoPID]int
	pops []netsim.PoPID
	dist [][]float64
	// next[i][j] is the first link to take from pops[i] toward pops[j];
	// -1 when i==j or unreachable.
	next [][]netsim.LinkID
}

func newIntraCache(top *netsim.Topology) *intraCache {
	return &intraCache{top: top, byAS: make(map[netsim.ASN]*intraAS)}
}

func (c *intraCache) get(a netsim.ASN) *intraAS {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ia, ok := c.byAS[a]; ok {
		return ia
	}
	ia := c.compute(a)
	c.byAS[a] = ia
	return ia
}

func (c *intraCache) compute(a netsim.ASN) *intraAS {
	pops := c.top.AS(a).PoPs
	n := len(pops)
	ia := &intraAS{idx: make(map[netsim.PoPID]int, n), pops: pops}
	for i, p := range pops {
		ia.idx[p] = i
	}
	ia.dist = make([][]float64, n)
	ia.next = make([][]netsim.LinkID, n)
	for i := range ia.dist {
		ia.dist[i] = make([]float64, n)
		ia.next[i] = make([]netsim.LinkID, n)
		for j := range ia.dist[i] {
			ia.dist[i][j] = math.Inf(1)
			ia.next[i][j] = -1
		}
		ia.dist[i][i] = 0
	}
	for _, p := range pops {
		i := ia.idx[p]
		for _, adj := range c.top.AdjPoP[p] {
			l := &c.top.Links[adj.Link]
			if l.Kind != netsim.LinkIntra {
				continue
			}
			j, ok := ia.idx[adj.To]
			if !ok {
				continue
			}
			if l.LatencyMS < ia.dist[i][j] {
				ia.dist[i][j] = l.LatencyMS
				ia.next[i][j] = l.ID
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := ia.dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + ia.dist[k][j]; d < ia.dist[i][j] {
					ia.dist[i][j] = d
					ia.next[i][j] = ia.next[i][k]
				}
			}
		}
	}
	return ia
}

// distBetween returns the intra-AS latency from p to q (both must belong to
// the AS).
func (ia *intraAS) distBetween(p, q netsim.PoPID) float64 {
	return ia.dist[ia.idx[p]][ia.idx[q]]
}

// appendPath appends the intra-AS hops from cur (exclusive) to dst
// (inclusive) to path, returning the updated path and accumulated latency.
func (ia *intraAS) appendPath(top *netsim.Topology, path []Hop, cur, dst netsim.PoPID) ([]Hop, float64) {
	total := 0.0
	for cur != dst {
		l := ia.next[ia.idx[cur]][ia.idx[dst]]
		if l < 0 {
			break // unreachable: generator guarantees this never happens
		}
		nxt := top.OtherEnd(l, cur)
		path = append(path, Hop{PoP: nxt, Link: l})
		total += top.Links[l].LatencyMS
		cur = nxt
	}
	return path, total
}

// PoPPath computes the ground-truth one-way PoP-level path from srcPoP to
// the home PoP of dst, expanding the AS path with early-exit (hot potato)
// exit selection, or late-exit for flagged AS pairs.
func (v *Day) PoPPath(srcPoP netsim.PoPID, dst netsim.Prefix) (Path, bool) {
	top := v.sim.Top
	home, ok := top.PrefixHome[dst]
	if !ok {
		return Path{}, false
	}
	asPath, ok := v.ASPath(top.PoPAS(srcPoP), dst)
	if !ok {
		return Path{}, false
	}
	dstLoc := top.PoPs[home].Loc
	path := []Hop{{PoP: srcPoP, Link: -1}}
	total := 0.0
	cur := srcPoP
	for i := 0; i+1 < len(asPath); i++ {
		a, b := asPath[i], asPath[i+1]
		ia := v.sim.intra.get(a)
		links := top.InterLinks(a, b)
		if len(links) == 0 {
			return Path{}, false
		}
		pairKey := netsim.ASPairKey(a, b)
		late := top.LateExit[pairKey]
		salt := v.exitSaltFor(pairKey)
		best, bestCost := netsim.LinkID(-1), math.Inf(1)
		var bestNear, bestFar netsim.PoPID
		for _, lid := range links {
			l := &top.Links[lid]
			near, far := l.A, l.B
			if top.PoPAS(near) != a {
				near, far = far, near
			}
			cost := ia.distBetween(cur, near)
			if late {
				// Cold potato: carry toward the destination, handing
				// off at the exit that minimizes the whole remaining
				// geographic haul.
				cost += l.LatencyMS + top.PoPs[far].Loc.Dist(dstLoc)*top.Cfg.MSPerUnit
			}
			// Day-varying IGP noise flips near-tie exit choices.
			cost = (cost + 0.1) * (1 + v.sim.Cfg.ExitNoiseFrac*hashFloat(mix(salt, uint64(lid), uint64(cur), 0)))
			if cost < bestCost || (cost == bestCost && lid < best) {
				best, bestCost = lid, cost
				bestNear, bestFar = near, far
			}
		}
		var ms float64
		path, ms = ia.appendPath(top, path, cur, bestNear)
		total += ms
		path = append(path, Hop{PoP: bestFar, Link: best})
		total += top.Links[best].LatencyMS
		cur = bestFar
	}
	// Final intra-AS stretch to the prefix's home PoP.
	ia := v.sim.intra.get(asPath[len(asPath)-1])
	var ms float64
	path, ms = ia.appendPath(top, path, cur, home)
	total += ms
	return Path{Hops: path, OneWayMS: total}, true
}

// Route computes the forward path between two prefixes (from src's home PoP
// to dst's home PoP). For end-to-end metrics call RTT / FwdLoss, which add
// the access tails.
func (v *Day) Route(src, dst netsim.Prefix) (Path, bool) {
	home, ok := v.sim.Top.PrefixHome[src]
	if !ok {
		return Path{}, false
	}
	return v.PoPPath(home, dst)
}

// PathLoss returns the one-way loss rate over the links of p on this day.
func (v *Day) PathLoss(p Path) float64 {
	return v.PathLossQuarter(p, v.day*lossQuartersPerDay)
}

// PathLossQuarter evaluates path loss at quarter-day granularity, used by
// the sub-day loss stationarity experiment (§6.2.2).
func (v *Day) PathLossQuarter(p Path, quarter int) float64 {
	deliver := 1.0
	for i := 1; i < len(p.Hops); i++ {
		prev := p.Hops[i-1].PoP
		deliver *= 1 - v.sim.LinkLossQuarter(p.Hops[i].Link, prev, quarter)
	}
	return 1 - deliver
}

// RTT returns the round-trip latency in milliseconds between hosts in two
// prefixes, composing the asymmetric forward and reverse paths plus both
// access tails (each crossed twice). ok is false if either direction has no
// route.
func (v *Day) RTT(src, dst netsim.Prefix) (float64, bool) {
	fwd, ok := v.Route(src, dst)
	if !ok {
		return 0, false
	}
	rev, ok := v.Route(dst, src)
	if !ok {
		return 0, false
	}
	top := v.sim.Top
	access := 2 * (top.PrefixAccessMS[src] + top.PrefixAccessMS[dst])
	return fwd.OneWayMS + rev.OneWayMS + access, true
}

// FwdLoss returns the one-way loss rate from a host in src to a host in
// dst, including both access tails.
func (v *Day) FwdLoss(src, dst netsim.Prefix) (float64, bool) {
	fwd, ok := v.Route(src, dst)
	if !ok {
		return 0, false
	}
	deliver := (1 - v.PathLoss(fwd)) *
		(1 - v.sim.AccessLoss(src, v.day)) *
		(1 - v.sim.AccessLoss(dst, v.day))
	return 1 - deliver, true
}

// RTLoss returns the round-trip (probe/response) loss rate between two
// prefixes: the probability that a probe or its response is dropped.
func (v *Day) RTLoss(src, dst netsim.Prefix) (float64, bool) {
	f, ok := v.FwdLoss(src, dst)
	if !ok {
		return 0, false
	}
	r, ok := v.FwdLoss(dst, src)
	if !ok {
		return 0, false
	}
	return 1 - (1-f)*(1-r), true
}

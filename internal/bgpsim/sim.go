// Package bgpsim computes ground-truth Internet routes over a netsim
// topology. It implements the "textbook plus exceptions" routing model the
// paper describes: valley-free export, customer<peer<provider local
// preference, shortest AS path, deterministic per-AS tie-break quirks (the
// policy detail iNano's preference inference must learn), hot-potato and
// late-exit PoP-level exit selection, per-prefix traffic-engineering
// deflections, and no-self-export upstreams (§4.3.4).
//
// Routes are a function of a simulated day: each day a small fraction of
// per-AS tie-break quirks and traffic-engineering choices re-roll and link
// loss rates drift, which drives the paper's stationarity experiments
// (Fig. 4, §6.2, Table 2 deltas).
package bgpsim

import (
	"math"
	"sync"

	"inano/internal/netsim"
)

// Config tunes the routing simulation.
type Config struct {
	// QuirkChurnPerDay is the per-day probability that one AS re-rolls its
	// neighbor tie-break ordering.
	QuirkChurnPerDay float64
	// TEFrac is the fraction of edge prefixes whose routes are deflected
	// by per-prefix traffic engineering on a given day.
	TEFrac float64
	// TEChurnPerDay is the per-day probability that a prefix's TE decision
	// re-rolls.
	TEChurnPerDay float64
	// LossChurnPerDay is the per-day probability that a directed link's
	// loss rate re-rolls.
	LossChurnPerDay float64
	// ExitNoiseFrac scales the multiplicative noise applied to candidate
	// exit-link costs during PoP-level path expansion, modeling IGP weight
	// changes and intradomain load balancing that flip near-tie exit
	// choices without changing the AS path.
	ExitNoiseFrac float64
	// ExitChurnPerDay is the per-day probability that one AS adjacency's
	// exit noise re-rolls.
	ExitChurnPerDay float64
}

// DefaultConfig returns churn rates calibrated so that roughly half of
// PoP-level paths are identical across consecutive days, matching the
// stationarity the paper measures (Fig. 4).
func DefaultConfig() Config {
	return Config{
		QuirkChurnPerDay: 0.06,
		TEFrac:           0.08,
		TEChurnPerDay:    0.35,
		LossChurnPerDay:  0.8,
		ExitNoiseFrac:    0.5,
		ExitChurnPerDay:  0.65,
	}
}

// Sim is the routing simulator. It is safe for concurrent use; per-day route
// state is built lazily and cached.
type Sim struct {
	Top *netsim.Topology
	Cfg Config

	seed int64

	mu    sync.Mutex
	days  map[int]*Day
	intra *intraCache
}

// New creates a simulator over top.
func New(top *netsim.Topology, cfg Config) *Sim {
	return &Sim{
		Top:   top,
		Cfg:   cfg,
		seed:  top.Cfg.Seed*0x9e3779b9 + 0x1234,
		days:  make(map[int]*Day),
		intra: newIntraCache(top),
	}
}

// Day returns the routing view for simulated day d (d >= 0).
func (s *Sim) Day(d int) *Day {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.days[d]; ok {
		return v
	}
	v := &Day{
		sim:      s,
		day:      d,
		tables:   make(map[netsim.ASN]*RouteTable),
		te:       make(map[netsim.Prefix]*teOverride),
		exitSalt: make(map[uint64]uint64),
	}
	v.quirkSalt = make([]uint64, len(s.Top.ASes))
	for i := range v.quirkSalt {
		v.quirkSalt[i] = s.quirkSaltFor(netsim.ASN(i+1), d)
	}
	s.days[d] = v
	return v
}

// quirkSaltFor chains per-day re-roll decisions: an AS's tie-break ordering
// on day d is determined by the most recent day at or before d on which it
// re-rolled (day 0 always counts as a roll).
func (s *Sim) quirkSaltFor(a netsim.ASN, day int) uint64 {
	last := 0
	for d := 1; d <= day; d++ {
		if hashFloat(mix(uint64(s.seed), 0x71, uint64(a), uint64(d))) < s.Cfg.QuirkChurnPerDay {
			last = d
		}
	}
	return mix(uint64(s.seed), 0x55, uint64(a), uint64(last))
}

// Loss rates churn on quarter-day boundaries so the 6/12/24-hour
// stationarity experiment (§6.2.2) has sub-day dynamics; the per-quarter
// churn probability compounds to LossChurnPerDay over four quarters.
const lossQuartersPerDay = 4

func (s *Sim) lossChurnPerQuarter() float64 {
	d := s.Cfg.LossChurnPerDay
	if d <= 0 {
		return 0
	}
	return 1 - math.Pow(1-d, 1.0/lossQuartersPerDay)
}

// lossSaltFor chains per-quarter loss re-rolls for one directed link.
func (s *Sim) lossSaltFor(l netsim.LinkID, dirAB bool, quarter int) (salt uint64, changed bool) {
	dir := uint64(0)
	if dirAB {
		dir = 1
	}
	q := s.lossChurnPerQuarter()
	last := 0
	for d := 1; d <= quarter; d++ {
		if hashFloat(mix(uint64(s.seed), 0x88, uint64(l)<<1|dir, uint64(d))) < q {
			last = d
		}
	}
	return mix(uint64(s.seed), 0x99, uint64(l)<<1|dir, uint64(last)), last != 0
}

// LinkLoss returns the loss rate of link l in the direction leaving PoP
// `from` on the given day (quarter 0 of that day).
func (s *Sim) LinkLoss(l netsim.LinkID, from netsim.PoPID, day int) float64 {
	return s.LinkLossQuarter(l, from, day*lossQuartersPerDay)
}

// LinkLossQuarter returns the loss rate at quarter-day granularity
// (quarter = 4*day + {0,1,2,3}). Quarter 0 uses the topology's base loss;
// later quarters chain deterministic re-rolls.
func (s *Sim) LinkLossQuarter(l netsim.LinkID, from netsim.PoPID, quarter int) float64 {
	lk := &s.Top.Links[l]
	dirAB := lk.A == from
	base := lk.LossBA
	if dirAB {
		base = lk.LossAB
	}
	if quarter == 0 {
		return base
	}
	salt, changed := s.lossSaltFor(l, dirAB, quarter)
	if !changed {
		return base
	}
	// Redraw from the same distribution the generator used.
	cfg := s.Top.Cfg
	if hashFloat(mix(salt, 1, 0, 0)) >= cfg.LossyLinkProb {
		return 0
	}
	return cfg.LossMin + hashFloat(mix(salt, 2, 0, 0))*(cfg.LossMax-cfg.LossMin)
}

// AccessLoss returns the last-mile loss of an edge prefix on the given day.
func (s *Sim) AccessLoss(p netsim.Prefix, day int) float64 {
	base := s.Top.PrefixAccessLoss[p]
	if day == 0 {
		return base
	}
	last := 0
	for d := 1; d <= day; d++ {
		if hashFloat(mix(uint64(s.seed), 0xaa, uint64(p), uint64(d))) < s.Cfg.LossChurnPerDay {
			last = d
		}
	}
	if last == 0 {
		return base
	}
	salt := mix(uint64(s.seed), 0xab, uint64(p), uint64(last))
	cfg := s.Top.Cfg
	if hashFloat(mix(salt, 1, 0, 0)) >= cfg.EdgeLossyProb {
		return 0
	}
	return cfg.LossMin + hashFloat(mix(salt, 2, 0, 0))*(cfg.LossMax-cfg.LossMin)
}

// mix is a splitmix64-style hash over four words; it is the deterministic
// randomness source for everything day-dependent.
func mix(a, b, c, d uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb ^ d*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashFloat maps a hash word to [0,1).
func hashFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

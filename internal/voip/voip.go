// Package voip scores call quality with an ITU E-model-style mean opinion
// score (MOS), the metric the paper cites [5] for VoIP relay selection
// (§2.1, §7.2): a function of one-way delay and packet loss.
package voip

import "math"

// MOS returns the estimated mean opinion score (1..4.5) for a call with
// the given one-way delay in milliseconds and loss rate in [0,1].
//
// R-factor: R = 93.2 - Id(delay) - Ie(loss) with the standard
// approximations Id = 0.024d + 0.11(d-177.3)·H(d-177.3) and
// Ie = 30·ln(1 + 15·loss) (G.711-like codec sensitivity).
func MOS(oneWayDelayMS, loss float64) float64 {
	if oneWayDelayMS < 0 {
		oneWayDelayMS = 0
	}
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	id := 0.024 * oneWayDelayMS
	if oneWayDelayMS > 177.3 {
		id += 0.11 * (oneWayDelayMS - 177.3)
	}
	ie := 30 * math.Log(1+15*loss)
	r := 93.2 - id - ie
	return mosFromR(r)
}

// mosFromR is the standard R-to-MOS mapping.
func mosFromR(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	default:
		m := 1 + 0.035*r + 7e-6*r*(r-60)*(100-r)
		// The cubic dips marginally below 1 near r=0; clamp to the
		// defined MOS range.
		if m < 1 {
			m = 1
		}
		if m > 4.5 {
			m = 4.5
		}
		return m
	}
}

// RelayScore combines the two legs of a relayed call: the delay and loss
// compose across the source-relay and relay-destination segments.
func RelayScore(rtt1MS, loss1, rtt2MS, loss2 float64) float64 {
	oneWay := (rtt1MS + rtt2MS) / 2
	loss := 1 - (1-loss1)*(1-loss2)
	return MOS(oneWay, loss)
}

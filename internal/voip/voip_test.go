package voip

import (
	"testing"
	"testing/quick"
)

func TestMOSRange(t *testing.T) {
	f := func(delayRaw, lossRaw uint16) bool {
		d := float64(delayRaw) / 10
		l := float64(lossRaw) / 65535
		m := MOS(d, l)
		return m >= 1 && m <= 4.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMOSMonotone(t *testing.T) {
	prev := 5.0
	for _, d := range []float64{0, 50, 100, 150, 200, 300, 500} {
		m := MOS(d, 0.01)
		if m > prev {
			t.Fatalf("MOS increased with delay %v", d)
		}
		prev = m
	}
	prev = 5.0
	for _, l := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.3} {
		m := MOS(100, l)
		if m > prev {
			t.Fatalf("MOS increased with loss %v", l)
		}
		prev = m
	}
}

func TestGoodCallScoresWell(t *testing.T) {
	if m := MOS(30, 0); m < 4.0 {
		t.Errorf("pristine call MOS %v, want >= 4.0", m)
	}
	if m := MOS(400, 0.2); m > 2.5 {
		t.Errorf("terrible call MOS %v, want <= 2.5", m)
	}
}

func TestRelayScoreComposesLoss(t *testing.T) {
	direct := RelayScore(50, 0, 50, 0)
	lossy := RelayScore(50, 0.05, 50, 0.05)
	if lossy >= direct {
		t.Fatalf("lossy relay (%v) not worse than clean (%v)", lossy, direct)
	}
	// Composition must treat the legs symmetrically.
	if a, b := RelayScore(40, 0.01, 80, 0.03), RelayScore(80, 0.03, 40, 0.01); a != b {
		t.Fatalf("relay score not symmetric: %v vs %v", a, b)
	}
}

// Package frontier partitions link-measurement work across vantage points,
// following iPlane's frontier-search idea: every link in the atlas should be
// measured by a small number of vantage points that can actually see it on
// their paths, with redundancy to absorb measurement noise, and with load
// spread evenly.
package frontier

import "sort"

// Assign distributes work items (links) over vantage points. observers[i]
// lists the vantage points that can measure item i (indices into the VP
// set). Each item is assigned to up to redundancy observers, chosen to
// balance per-VP load; items with fewer observers than the redundancy
// factor get all of them.
//
// The result maps item index -> assigned VP indices. Assignment is
// deterministic for identical input.
func Assign(observers [][]int, redundancy int) [][]int {
	if redundancy < 1 {
		redundancy = 1
	}
	load := make(map[int]int)
	out := make([][]int, len(observers))

	// Process scarcest items first so constrained links don't lose their
	// only observers to load balancing.
	order := make([]int, len(observers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(observers[order[a]]) < len(observers[order[b]])
	})

	for _, i := range order {
		obs := observers[i]
		if len(obs) == 0 {
			continue
		}
		n := redundancy
		if n > len(obs) {
			n = len(obs)
		}
		// Pick the n least-loaded observers (ties by VP index for
		// determinism).
		cand := make([]int, len(obs))
		copy(cand, obs)
		sort.SliceStable(cand, func(a, b int) bool {
			la, lb := load[cand[a]], load[cand[b]]
			if la != lb {
				return la < lb
			}
			return cand[a] < cand[b]
		})
		out[i] = make([]int, n)
		copy(out[i], cand[:n])
		for _, vp := range out[i] {
			load[vp]++
		}
	}
	return out
}

// LoadStats summarizes the per-VP assignment counts: minimum, maximum, and
// mean load over VPs that received any work.
func LoadStats(assign [][]int) (min, max int, mean float64) {
	load := make(map[int]int)
	for _, vps := range assign {
		for _, vp := range vps {
			load[vp]++
		}
	}
	if len(load) == 0 {
		return 0, 0, 0
	}
	min = 1 << 30
	total := 0
	for _, n := range load {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += n
	}
	return min, max, float64(total) / float64(len(load))
}

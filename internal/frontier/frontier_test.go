package frontier

import (
	"testing"
	"testing/quick"
)

func TestAssignRedundancy(t *testing.T) {
	obs := [][]int{
		{0, 1, 2},
		{1},
		{},
		{0, 2},
	}
	got := Assign(obs, 2)
	if len(got[0]) != 2 || len(got[3]) != 2 {
		t.Fatalf("items with enough observers must get 2 assignments: %v", got)
	}
	if len(got[1]) != 1 {
		t.Fatalf("item with one observer must get exactly it: %v", got[1])
	}
	if got[1][0] != 1 {
		t.Fatalf("item 1 assigned to %d, want 1", got[1][0])
	}
	if len(got[2]) != 0 {
		t.Fatalf("unobservable item got assignment %v", got[2])
	}
}

func TestAssignOnlyToObservers(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a small deterministic instance from the seed.
		n := int(seed%13) + 1
		obs := make([][]int, n)
		for i := range obs {
			for v := 0; v < 5; v++ {
				if (int(seed)+i*3+v*7)%3 == 0 {
					obs[i] = append(obs[i], v)
				}
			}
		}
		got := Assign(obs, 2)
		for i, vps := range got {
			seen := map[int]bool{}
			for _, vp := range vps {
				if seen[vp] {
					return false // duplicate assignment
				}
				seen[vp] = true
				found := false
				for _, o := range obs[i] {
					if o == vp {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignBalances(t *testing.T) {
	// 300 items all observable by 10 VPs: load should spread evenly.
	obs := make([][]int, 300)
	for i := range obs {
		for v := 0; v < 10; v++ {
			obs[i] = append(obs[i], v)
		}
	}
	got := Assign(obs, 2)
	min, max, mean := LoadStats(got)
	if mean != 60 {
		t.Fatalf("mean load %v, want 60", mean)
	}
	if max-min > 1 {
		t.Fatalf("unbalanced load: min %d max %d", min, max)
	}
}

func TestAssignDeterministic(t *testing.T) {
	obs := [][]int{{3, 1, 2}, {2, 3}, {1, 2, 3}, {3}}
	a := Assign(obs, 2)
	b := Assign(obs, 2)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic")
			}
		}
	}
}

// Package vivaldi implements the Vivaldi decentralized network coordinate
// system of Dabek et al. [13] — the latency-only baseline iNano is compared
// against (Figs. 6, 7, 9) — in the standard 2-dimensions-plus-height
// configuration with adaptive timesteps. It also provides the coarse
// geography-based replica selection used as the OASIS-like comparator in
// the CDN experiment.
package vivaldi

import (
	"math"
	"math/rand"

	"inano/internal/netsim"
)

// Coord is a 2D + height network coordinate.
type Coord struct {
	X, Y, H float64
}

// Dist returns the predicted latency between two coordinates: Euclidean
// distance in the plane plus both heights (the access-link model).
func (c Coord) Dist(d Coord) float64 {
	dx, dy := c.X-d.X, c.Y-d.Y
	// Group the heights so Dist(a,b) == Dist(b,a) bit-for-bit.
	return math.Sqrt(dx*dx+dy*dy) + (c.H + d.H)
}

// Space holds trained coordinates for a set of hosts.
type Space struct {
	Coords map[netsim.Prefix]Coord
	errs   map[netsim.Prefix]float64
}

// Params tunes the spring relaxation.
type Params struct {
	// Rounds of all-host updates; each host samples one neighbor per
	// round.
	Rounds int
	// Ce and Cc are the standard Vivaldi constants for the adaptive
	// timestep and error-weighted move.
	Ce, Cc float64
	Seed   int64
}

// DefaultParams converges well for a few hundred hosts.
func DefaultParams(seed int64) Params {
	return Params{Rounds: 220, Ce: 0.25, Cc: 0.25, Seed: seed}
}

// MeasureFunc returns the measured RTT between two hosts (ok=false when
// unreachable). Training calls it for randomly sampled pairs, as real
// Vivaldi nodes ping gossiped neighbors.
type MeasureFunc func(a, b netsim.Prefix) (rttMS float64, ok bool)

// Train runs Vivaldi over hosts using measure for RTT samples.
func Train(hosts []netsim.Prefix, measure MeasureFunc, p Params) *Space {
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Space{
		Coords: make(map[netsim.Prefix]Coord, len(hosts)),
		errs:   make(map[netsim.Prefix]float64, len(hosts)),
	}
	for _, h := range hosts {
		s.Coords[h] = Coord{
			X: rng.NormFloat64() * 0.1,
			Y: rng.NormFloat64() * 0.1,
			H: 1,
		}
		s.errs[h] = 1
	}
	if len(hosts) < 2 {
		return s
	}
	for round := 0; round < p.Rounds; round++ {
		for _, a := range hosts {
			b := hosts[rng.Intn(len(hosts))]
			if a == b {
				continue
			}
			rtt, ok := measure(a, b)
			if !ok || rtt <= 0 {
				continue
			}
			s.update(a, b, rtt, p)
		}
	}
	return s
}

// update applies one Vivaldi sample: node a measured rtt to node b.
func (s *Space) update(a, b netsim.Prefix, rtt float64, p Params) {
	ca, cb := s.Coords[a], s.Coords[b]
	ea, eb := s.errs[a], s.errs[b]
	dist := ca.Dist(cb)
	// Sample weight balances local vs remote error.
	w := ea / (ea + eb)
	es := math.Abs(dist-rtt) / rtt
	s.errs[a] = es*p.Ce*w + ea*(1-p.Ce*w)
	delta := p.Cc * w * (rtt - dist)
	// Unit vector from b toward a; random direction when coincident.
	ux, uy := ca.X-cb.X, ca.Y-cb.Y
	norm := math.Sqrt(ux*ux + uy*uy)
	if norm < 1e-9 {
		ang := float64(uint64(a)*2654435761+uint64(b)) * 1e-3
		ux, uy, norm = math.Cos(ang), math.Sin(ang), 1
	}
	ca.X += delta * ux / norm
	ca.Y += delta * uy / norm
	ca.H += delta
	if ca.H < 0.05 {
		ca.H = 0.05
	}
	s.Coords[a] = ca
}

// Estimate predicts the RTT between two hosts; ok is false if either is
// untrained.
func (s *Space) Estimate(a, b netsim.Prefix) (float64, bool) {
	ca, okA := s.Coords[a]
	cb, okB := s.Coords[b]
	if !okA || !okB {
		return 0, false
	}
	return ca.Dist(cb), true
}

// GeoSelector is the OASIS-like comparator: it knows coarse (region-level)
// geography for every host and picks the geographically closest replica.
// Coordinates are rounded to a grid to model OASIS's coarse geolocation
// database.
type GeoSelector struct {
	top  *netsim.Topology
	grid float64
}

// NewGeoSelector builds a selector with the given rounding grid (in map
// units; larger is coarser).
func NewGeoSelector(top *netsim.Topology, grid float64) *GeoSelector {
	if grid <= 0 {
		grid = 400
	}
	return &GeoSelector{top: top, grid: grid}
}

// loc returns the rounded location of a prefix's home PoP.
func (g *GeoSelector) loc(p netsim.Prefix) (netsim.Point, bool) {
	home, ok := g.top.PrefixHome[p]
	if !ok {
		return netsim.Point{}, false
	}
	l := g.top.PoPs[home].Loc
	return netsim.Point{
		X: math.Round(l.X/g.grid) * g.grid,
		Y: math.Round(l.Y/g.grid) * g.grid,
	}, true
}

// Best returns the replica geographically closest to the client.
func (g *GeoSelector) Best(client netsim.Prefix, replicas []netsim.Prefix) (netsim.Prefix, bool) {
	cl, ok := g.loc(client)
	if !ok || len(replicas) == 0 {
		return 0, false
	}
	best, bestD := netsim.Prefix(0), math.Inf(1)
	for _, r := range replicas {
		rl, ok := g.loc(r)
		if !ok {
			continue
		}
		if d := cl.Dist(rl); d < bestD || (d == bestD && r < best) {
			best, bestD = r, d
		}
	}
	return best, best != 0
}

package vivaldi

import (
	"math"
	"testing"

	"inano/internal/bgpsim"
	"inano/internal/netsim"
	"inano/internal/trace"
)

func TestTrainConvergesOnSyntheticWorld(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(81))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	hosts := trace.SelectVantagePoints(top, 30)
	measure := func(a, b netsim.Prefix) (float64, bool) { return day.RTT(a, b) }
	s := Train(hosts, measure, DefaultParams(81))

	// Relative estimation error should be small for most pairs; Vivaldi
	// cannot be perfect (triangle-inequality violations exist).
	var errs []float64
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			truth, ok := day.RTT(a, b)
			if !ok || truth <= 0 {
				continue
			}
			est, ok := s.Estimate(a, b)
			if !ok {
				t.Fatalf("no estimate for trained pair %v %v", a, b)
			}
			errs = append(errs, math.Abs(est-truth)/truth)
		}
	}
	if len(errs) == 0 {
		t.Fatal("no pairs evaluated")
	}
	med := median(errs)
	if med > 0.45 {
		t.Errorf("median relative error %.2f; Vivaldi failed to converge", med)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestEstimateSymmetric(t *testing.T) {
	// Coordinates always predict symmetric latencies — the fundamental
	// limitation of embeddings the paper calls out (§8.1).
	top := netsim.Generate(netsim.TestConfig(82))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	hosts := trace.SelectVantagePoints(top, 12)
	measure := func(a, b netsim.Prefix) (float64, bool) { return day.RTT(a, b) }
	s := Train(hosts, measure, DefaultParams(82))
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			ab, _ := s.Estimate(a, b)
			ba, _ := s.Estimate(b, a)
			if ab != ba {
				t.Fatalf("asymmetric coordinate estimate %v vs %v", ab, ba)
			}
		}
	}
}

func TestEstimateUntrainedHost(t *testing.T) {
	s := Train(nil, func(a, b netsim.Prefix) (float64, bool) { return 0, false }, DefaultParams(1))
	if _, ok := s.Estimate(1, 2); ok {
		t.Fatal("estimate for untrained hosts")
	}
}

func TestHeightNeverNegative(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(83))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	hosts := trace.SelectVantagePoints(top, 15)
	measure := func(a, b netsim.Prefix) (float64, bool) { return day.RTT(a, b) }
	s := Train(hosts, measure, DefaultParams(83))
	for h, c := range s.Coords {
		if c.H < 0 {
			t.Fatalf("host %v has negative height %v", h, c.H)
		}
	}
}

func TestGeoSelectorPicksNearby(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(84))
	g := NewGeoSelector(top, 100)
	client := top.EdgePrefixes[0]
	// Candidate set: the client's own prefix plus a far one; the client's
	// own location must win with a fine grid.
	var far netsim.Prefix
	ch := top.PoPs[top.PrefixHome[client]].Loc
	bestD := 0.0
	for _, p := range top.EdgePrefixes {
		d := top.PoPs[top.PrefixHome[p]].Loc.Dist(ch)
		if d > bestD {
			far, bestD = p, d
		}
	}
	got, ok := g.Best(client, []netsim.Prefix{far, client})
	if !ok || got != client {
		t.Fatalf("geo selector picked %v, want client-colocated %v", got, client)
	}
}

func TestGeoSelectorEmptyReplicas(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(85))
	g := NewGeoSelector(top, 0)
	if _, ok := g.Best(top.EdgePrefixes[0], nil); ok {
		t.Fatal("selection from empty replica set")
	}
}

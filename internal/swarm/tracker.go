package swarm

import (
	"encoding/gob"
	"net"
	"sync"
)

// Tracker messages.
type trackerReq struct {
	// Announce registers the sender's listen address for a swarm ID and
	// asks for the current peer list.
	ID   [32]byte
	Addr string // empty = query only
}

type trackerResp struct {
	Peers []string
}

// Tracker is the rendezvous service: it maps swarm IDs to peer addresses.
// It holds no file data.
type Tracker struct {
	ln net.Listener

	mu    sync.Mutex
	peers map[[32]byte]map[string]bool
	done  chan struct{}
}

// StartTracker listens on addr (use "127.0.0.1:0" for tests) and serves
// announce requests until Close.
func StartTracker(addr string) (*Tracker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		ln:    ln,
		peers: make(map[[32]byte]map[string]bool),
		done:  make(chan struct{}),
	}
	go t.serve()
	return t, nil
}

// Addr returns the tracker's listen address.
func (t *Tracker) Addr() string { return t.ln.Addr().String() }

// Close stops the tracker.
func (t *Tracker) Close() error {
	close(t.done)
	return t.ln.Close()
}

func (t *Tracker) serve() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue // transient accept error
			}
		}
		go t.handle(conn)
	}
}

func (t *Tracker) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req trackerReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		t.mu.Lock()
		set := t.peers[req.ID]
		if set == nil {
			set = make(map[string]bool)
			t.peers[req.ID] = set
		}
		resp := trackerResp{}
		for p := range set {
			if p != req.Addr {
				resp.Peers = append(resp.Peers, p)
			}
		}
		if req.Addr != "" {
			set[req.Addr] = true
		}
		t.mu.Unlock()
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// announce registers with the tracker and returns known peers.
func announce(trackerAddr string, id [32]byte, selfAddr string) ([]string, error) {
	conn, err := net.Dial("tcp", trackerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(&trackerReq{ID: id, Addr: selfAddr}); err != nil {
		return nil, err
	}
	var resp trackerResp
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	return resp.Peers, nil
}

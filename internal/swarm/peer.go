package swarm

import (
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Peer wire messages. Each connection starts with a hello carrying the
// sender's bitfield; afterwards peers exchange have-announcements, chunk
// requests, and chunks.
type peerMsg struct {
	Kind  byte // 'H' hello, 'A' have, 'R' request, 'P' piece
	Index int
	Bits  []bool
	Data  []byte
}

// Peer participates in one swarm: serving chunks it holds and (if started
// via Fetch) downloading the rest.
type Peer struct {
	m     Manifest
	id    [32]byte
	st    *store
	ln    net.Listener
	rng   *rand.Rand
	close sync.Once
	done  chan struct{}
	// wake is signaled (capacity 1, collapsing) whenever something that
	// could unblock the download loop happens: a new connection, a peer's
	// bitfield growing, a chunk arriving. The loop blocks on it instead of
	// busy-rescanning when nothing is requestable.
	wake chan struct{}
	// idleHook, when set, is called once per download-loop pass that found
	// nothing requestable (test instrumentation for the no-busy-spin
	// contract).
	idleHook func()

	mu    sync.Mutex
	conns map[string]*peerConn
}

// wakeDownload nudges the download loop; a pending nudge is enough.
func (p *Peer) wakeDownload() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

type peerConn struct {
	addr string
	enc  *gob.Encoder
	encM sync.Mutex
	bits []bool
	bitM sync.Mutex
	// piece delivers received chunks to the download loop.
	piece chan peerMsg
	conn  net.Conn
}

func (pc *peerConn) send(m *peerMsg) error {
	pc.encM.Lock()
	defer pc.encM.Unlock()
	return pc.enc.Encode(m)
}

func (pc *peerConn) peerHas(i int) bool {
	pc.bitM.Lock()
	defer pc.bitM.Unlock()
	return i < len(pc.bits) && pc.bits[i]
}

func (pc *peerConn) bitsCopy() []bool {
	pc.bitM.Lock()
	defer pc.bitM.Unlock()
	return append([]bool(nil), pc.bits...)
}

// StartSeed serves data for m until Close. It registers with the tracker.
func StartSeed(trackerAddr string, m Manifest, data []byte) (*Peer, error) {
	if err := m.Verify(data); err != nil {
		return nil, fmt.Errorf("swarm: seed data does not match manifest: %w", err)
	}
	p, err := newPeer(m, newSeedStore(&m, data))
	if err != nil {
		return nil, err
	}
	if _, err := announce(trackerAddr, p.id, p.Addr()); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

func newPeer(m Manifest, st *store) (*Peer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Peer{
		m:     m,
		id:    m.ID(),
		st:    st,
		ln:    ln,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(ln.Addr().(*net.TCPAddr).Port))),
		done:  make(chan struct{}),
		wake:  make(chan struct{}, 1),
		conns: make(map[string]*peerConn),
	}
	go p.accept()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Close leaves the swarm.
func (p *Peer) Close() error {
	p.close.Do(func() {
		close(p.done)
		p.ln.Close()
		p.mu.Lock()
		for _, c := range p.conns {
			c.conn.Close()
		}
		p.mu.Unlock()
	})
	return nil
}

// Bytes returns the assembled file; valid once complete.
func (p *Peer) Bytes() []byte { return p.st.bytes() }

// Complete reports whether all chunks are present.
func (p *Peer) Complete() bool { return p.st.complete() }

func (p *Peer) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		go p.runConn(conn, conn.RemoteAddr().String())
	}
}

// connectTo dials a peer and runs the connection; no-op if already
// connected.
func (p *Peer) connectTo(ctx context.Context, addr string) {
	p.mu.Lock()
	_, dup := p.conns[addr]
	p.mu.Unlock()
	if dup || addr == p.Addr() {
		return
	}
	conn, err := dialContext(ctx, addr)
	if err != nil {
		return
	}
	go p.runConn(conn, addr)
}

// runConn speaks the peer protocol on one connection until it breaks.
func (p *Peer) runConn(conn net.Conn, addr string) {
	defer conn.Close()
	pc := &peerConn{
		addr:  addr,
		enc:   gob.NewEncoder(conn),
		piece: make(chan peerMsg, 4),
		conn:  conn,
	}
	if err := pc.send(&peerMsg{Kind: 'H', Bits: p.st.bitfield()}); err != nil {
		return
	}
	p.mu.Lock()
	if _, dup := p.conns[addr]; dup {
		p.mu.Unlock()
		return
	}
	p.conns[addr] = pc
	p.mu.Unlock()
	p.wakeDownload()
	defer func() {
		p.mu.Lock()
		delete(p.conns, addr)
		p.mu.Unlock()
	}()

	dec := gob.NewDecoder(conn)
	for {
		var m peerMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		switch m.Kind {
		case 'H':
			pc.bitM.Lock()
			pc.bits = m.Bits
			pc.bitM.Unlock()
			p.wakeDownload()
		case 'A':
			pc.bitM.Lock()
			for len(pc.bits) <= m.Index {
				pc.bits = append(pc.bits, false)
			}
			if m.Index >= 0 {
				pc.bits[m.Index] = true
			}
			pc.bitM.Unlock()
			p.wakeDownload()
		case 'R':
			data := p.st.get(m.Index)
			if data == nil {
				continue
			}
			if err := pc.send(&peerMsg{Kind: 'P', Index: m.Index, Data: data}); err != nil {
				return
			}
		case 'P':
			select {
			case pc.piece <- m:
			default: // downloader gone or slow; drop
			}
		}
	}
}

// broadcastHave tells every connection about a new chunk.
func (p *Peer) broadcastHave(idx int) {
	p.mu.Lock()
	conns := make([]*peerConn, 0, len(p.conns))
	for _, c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.send(&peerMsg{Kind: 'A', Index: idx}) //nolint:errcheck // broken conns clean up in runConn
	}
}

// Fetch joins the swarm for m via the tracker, downloads all chunks
// (rarest-first, serving others while downloading), and returns the
// verified file. The peer keeps seeding until ctx is canceled only if
// keepSeeding is set; otherwise it leaves once complete.
func Fetch(ctx context.Context, trackerAddr string, m Manifest) ([]byte, error) {
	p, err := newPeer(m, newStore(&m))
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.download(ctx, trackerAddr); err != nil {
		return nil, err
	}
	data := p.Bytes()
	if err := m.Verify(data); err != nil {
		return nil, err
	}
	return data, nil
}

// FetchAndSeed is Fetch but leaves the peer running as a seeder; the caller
// must Close it.
func FetchAndSeed(ctx context.Context, trackerAddr string, m Manifest) (*Peer, []byte, error) {
	p, err := newPeer(m, newStore(&m))
	if err != nil {
		return nil, nil, err
	}
	if err := p.download(ctx, trackerAddr); err != nil {
		p.Close()
		return nil, nil, err
	}
	data := p.Bytes()
	if err := m.Verify(data); err != nil {
		p.Close()
		return nil, nil, err
	}
	return p, data, nil
}

// Stall pacing for the download loop: when nothing is requestable the
// loop re-announces to the tracker at most every downloadRefreshEvery and
// then *blocks* — on the wake channel (a new connection, bitfield growth,
// or an arriving chunk ends the stall instantly) with downloadIdleWait as
// the tracker-repoll backstop — instead of spinning through the scan.
const (
	downloadRefreshEvery = 50 * time.Millisecond
	downloadIdleWait     = 100 * time.Millisecond
)

func (p *Peer) download(ctx context.Context, trackerAddr string) error {
	refresh := func() {
		peers, err := announce(trackerAddr, p.id, p.Addr())
		if err != nil {
			return
		}
		for _, addr := range peers {
			p.connectTo(ctx, addr)
		}
	}
	refresh()
	lastRefresh := time.Now()
	// stall blocks until something changes (or the backstop timer fires);
	// it returns a non-nil error only when the download should abort.
	stall := func() error {
		if time.Since(lastRefresh) > downloadRefreshEvery {
			refresh()
			lastRefresh = time.Now()
		}
		if p.idleHook != nil {
			p.idleHook()
		}
		t := time.NewTimer(downloadIdleWait)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.done:
			return errClosed
		case <-p.wake:
		case <-t.C:
		}
		return nil
	}
	for !p.st.complete() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.done:
			return errClosed
		default:
		}
		// Snapshot connections and their bitfields.
		p.mu.Lock()
		conns := make([]*peerConn, 0, len(p.conns))
		for _, c := range p.conns {
			conns = append(conns, c)
		}
		p.mu.Unlock()
		bitfields := make([][]bool, len(conns))
		for i, c := range conns {
			bitfields[i] = c.bitsCopy()
		}
		idx := pickRarest(p.st.bitfield(), bitfields, p.rng)
		if idx < 0 {
			// No connected peer has anything we need: wait for one.
			if err := stall(); err != nil {
				return err
			}
			continue
		}
		// Ask a random holder.
		holders := conns[:0:0]
		for _, c := range conns {
			if c.peerHas(idx) {
				holders = append(holders, c)
			}
		}
		if len(holders) == 0 {
			// The holder vanished between the snapshot and the re-check;
			// wait for the connection set to change rather than re-scanning
			// in a hot loop.
			if err := stall(); err != nil {
				return err
			}
			continue
		}
		c := holders[p.rng.Intn(len(holders))]
		if err := c.send(&peerMsg{Kind: 'R', Index: idx}); err != nil {
			// A conn whose send fails is dead but may linger until its
			// reader notices; close it now and pause so a half-closed
			// socket cannot turn the request loop into a spin.
			c.conn.Close()
			if err := stall(); err != nil {
				return err
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m := <-c.piece:
			if m.Index != idx {
				// Out-of-order piece from a pipelined request; store it
				// anyway.
			}
			if fresh, err := p.st.put(m.Index, m.Data); err == nil && fresh {
				p.broadcastHave(m.Index)
			}
		case <-time.After(2 * time.Second):
			// Peer unresponsive; drop it and re-announce.
			c.conn.Close()
			refresh()
			lastRefresh = time.Now()
		}
	}
	return nil
}

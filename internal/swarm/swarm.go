// Package swarm distributes the atlas and its daily deltas peer-to-peer,
// the dissemination strategy of §5: iNano's server only seeds; end hosts
// swarm chunks among themselves (the paper used CoBlitz and was moving to
// BitTorrent). This implementation is a compact BitTorrent-like protocol
// over TCP: a tracker hands out peer lists, peers exchange have-bitfields,
// and downloaders pick rarest-first verified chunks while serving what they
// already hold.
package swarm

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
)

// ChunkSize is the default chunk size; the ~7MB atlas splits into ~100
// chunks, matching swarming granularity.
const ChunkSize = 64 << 10

// Manifest describes a swarmed file: its identity is the hash of all chunk
// hashes, so peers can verify every chunk independently.
type Manifest struct {
	Name      string
	Size      int
	ChunkSize int
	Hashes    [][32]byte
}

// NumChunks returns the chunk count.
func (m *Manifest) NumChunks() int { return len(m.Hashes) }

// ID returns the swarm identity of the file.
func (m *Manifest) ID() [32]byte {
	h := sha256.New()
	h.Write([]byte(m.Name))
	for _, c := range m.Hashes {
		h.Write(c[:])
	}
	var id [32]byte
	copy(id[:], h.Sum(nil))
	return id
}

// chunkBounds returns the byte range of chunk i.
func (m *Manifest) chunkBounds(i int) (lo, hi int) {
	lo = i * m.ChunkSize
	hi = lo + m.ChunkSize
	if hi > m.Size {
		hi = m.Size
	}
	return lo, hi
}

// NewManifest builds the manifest of data.
func NewManifest(name string, data []byte, chunkSize int) Manifest {
	if chunkSize <= 0 {
		chunkSize = ChunkSize
	}
	m := Manifest{Name: name, Size: len(data), ChunkSize: chunkSize}
	for off := 0; off < len(data) || off == 0; off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		m.Hashes = append(m.Hashes, sha256.Sum256(data[off:end]))
		if end == len(data) {
			break
		}
	}
	return m
}

// Verify checks data against the manifest.
func (m *Manifest) Verify(data []byte) error {
	if len(data) != m.Size {
		return fmt.Errorf("swarm: size %d, want %d", len(data), m.Size)
	}
	for i := range m.Hashes {
		lo, hi := m.chunkBounds(i)
		if sha256.Sum256(data[lo:hi]) != m.Hashes[i] {
			return fmt.Errorf("swarm: chunk %d hash mismatch", i)
		}
	}
	return nil
}

// store holds a peer's chunks.
type store struct {
	mu     sync.RWMutex
	m      *Manifest
	chunks [][]byte // nil = missing
	nHave  int
}

func newStore(m *Manifest) *store {
	return &store{m: m, chunks: make([][]byte, m.NumChunks())}
}

func newSeedStore(m *Manifest, data []byte) *store {
	s := newStore(m)
	for i := range s.chunks {
		lo, hi := m.chunkBounds(i)
		s.chunks[i] = append([]byte(nil), data[lo:hi]...)
	}
	s.nHave = len(s.chunks)
	return s
}

func (s *store) have(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return i >= 0 && i < len(s.chunks) && s.chunks[i] != nil
}

func (s *store) get(i int) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.chunks) {
		return nil
	}
	return s.chunks[i]
}

// put verifies and stores chunk i; it reports whether the chunk was new.
func (s *store) put(i int, data []byte) (bool, error) {
	if i < 0 || i >= len(s.chunks) {
		return false, fmt.Errorf("swarm: chunk index %d out of range", i)
	}
	if sha256.Sum256(data) != s.m.Hashes[i] {
		return false, fmt.Errorf("swarm: chunk %d failed verification", i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chunks[i] != nil {
		return false, nil
	}
	s.chunks[i] = append([]byte(nil), data...)
	s.nHave++
	return true, nil
}

func (s *store) bitfield() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]bool, len(s.chunks))
	for i, c := range s.chunks {
		out[i] = c != nil
	}
	return out
}

func (s *store) complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nHave == len(s.chunks)
}

func (s *store) bytes() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, 0, s.m.Size)
	for _, c := range s.chunks {
		out = append(out, c...)
	}
	return out
}

// pickRarest chooses the missing chunk that is rarest among the peers'
// bitfields (classic rarest-first), breaking ties randomly. It returns -1
// when nothing obtainable is missing.
func pickRarest(mine []bool, peers [][]bool, rng *rand.Rand) int {
	best, bestCount, ties := -1, int(^uint(0)>>1), 0
	for i, have := range mine {
		if have {
			continue
		}
		count := 0
		for _, pb := range peers {
			if i < len(pb) && pb[i] {
				count++
			}
		}
		if count == 0 {
			continue // nobody connected has it yet
		}
		switch {
		case count < bestCount:
			best, bestCount, ties = i, count, 1
		case count == bestCount:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

var errClosed = errors.New("swarm: closed")

// dialContext dials with cancellation.
func dialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

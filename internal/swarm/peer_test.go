package swarm

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestStalledDownloadDoesNotSpin: a downloader whose swarm has no seed
// must block between scans, not busy-spin. The idle hook counts scheduler
// passes that found nothing requestable; with the 100ms idle backstop a
// 600ms stall allows a handful of passes, not the thousands a hot loop
// would rack up.
func TestStalledDownloadDoesNotSpin(t *testing.T) {
	data := testData(100_000, 20)
	m := NewManifest("stalled", data, 16<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	p, err := newPeer(m, newStore(&m))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var idle atomic.Int64
	p.idleHook = func() { idle.Add(1) }

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	if err := p.download(ctx, tr.Addr()); err == nil {
		t.Fatal("download completed with no seed")
	}
	// 600ms / 100ms backstop ≈ 6 passes; allow generous slack for timer
	// jitter and spurious wakes. The pre-fix loop ran 10ms sleeps at best
	// (≥60) and unbounded spins at worst.
	if n := idle.Load(); n > 25 {
		t.Fatalf("stalled download looped %d times in 600ms; loop is spinning", n)
	} else if n == 0 {
		t.Fatal("idle hook never ran; test is not exercising the stall path")
	}
}

// TestStalledDownloadWakesOnLateSeed: a downloader that started before
// any seed existed must pick the file up once a seed joins — the stall
// must end via tracker re-polling (the wake channel cannot know about
// peers it has never met).
func TestStalledDownloadWakesOnLateSeed(t *testing.T) {
	data := testData(120_000, 21)
	m := NewManifest("late-seed", data, 16<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fetched := make(chan error, 1)
	var got []byte
	go func() {
		b, err := Fetch(ctx, tr.Addr(), m)
		got = b
		fetched <- err
	}()

	time.Sleep(250 * time.Millisecond) // let the fetcher stall first
	seed, err := StartSeed(tr.Addr(), m, data)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	if err := <-fetched; err != nil {
		t.Fatalf("fetch after late seed: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("fetched data differs")
	}
}

// TestFetchErrorClosesPeer: when Fetch fails (context cancelled before
// the swarm could supply the data), the temporary peer it spun up must be
// fully closed — its listener unreachable — not leaked.
func TestFetchErrorClosesPeer(t *testing.T) {
	data := testData(80_000, 22)
	m := NewManifest("close-on-error", data, 16<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := Fetch(ctx, tr.Addr(), m)
		errCh <- err
	}()

	// The fetching peer announces itself immediately; grab its address
	// through a tracker query (empty Addr = query only).
	var peerAddr string
	for i := 0; i < 50 && peerAddr == ""; i++ {
		peers, err := announce(tr.Addr(), m.ID(), "")
		if err != nil {
			t.Fatal(err)
		}
		if len(peers) > 0 {
			peerAddr = peers[0]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if peerAddr == "" {
		t.Fatal("fetching peer never announced itself")
	}
	// While the fetch is alive its listener accepts.
	conn, err := net.DialTimeout("tcp", peerAddr, time.Second)
	if err != nil {
		t.Fatalf("fetching peer unreachable while downloading: %v", err)
	}
	conn.Close()

	if err := <-errCh; err == nil {
		t.Fatal("fetch succeeded with no seed")
	}
	// After the error return the peer must be gone: the listener refuses.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", peerAddr, 200*time.Millisecond)
		if err != nil {
			break // closed, as required
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("failed Fetch left its peer listening")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

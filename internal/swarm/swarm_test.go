package swarm

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

func TestManifestVerify(t *testing.T) {
	data := testData(200_000, 1)
	m := NewManifest("atlas", data, 64<<10)
	if m.NumChunks() != 4 {
		t.Fatalf("chunks = %d, want 4", m.NumChunks())
	}
	if err := m.Verify(data); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[100_000] ^= 0xff
	if err := m.Verify(bad); err == nil {
		t.Fatal("corrupted data verified")
	}
	if err := m.Verify(data[:100]); err == nil {
		t.Fatal("truncated data verified")
	}
}

func TestManifestEmptyAndSmall(t *testing.T) {
	m := NewManifest("empty", nil, 0)
	if m.NumChunks() != 1 || m.Size != 0 {
		t.Fatalf("empty manifest: %d chunks size %d", m.NumChunks(), m.Size)
	}
	if err := m.Verify(nil); err != nil {
		t.Fatal(err)
	}
	small := testData(10, 2)
	ms := NewManifest("small", small, 1<<20)
	if ms.NumChunks() != 1 {
		t.Fatalf("small file chunks = %d", ms.NumChunks())
	}
}

func TestPickRarest(t *testing.T) {
	mine := []bool{true, false, false, false}
	peers := [][]bool{
		{true, true, true, false},
		{true, false, true, false},
	}
	rng := rand.New(rand.NewSource(1))
	// Chunk 1 held by one peer, chunk 2 by two, chunk 3 by none.
	if got := pickRarest(mine, peers, rng); got != 1 {
		t.Fatalf("pickRarest = %d, want 1", got)
	}
	// Nothing missing and obtainable.
	if got := pickRarest([]bool{true, true}, peers, rng); got != -1 {
		t.Fatalf("pickRarest on complete = %d", got)
	}
}

func TestSingleFetch(t *testing.T) {
	data := testData(300_000, 3)
	m := NewManifest("atlas-day0", data, 32<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	seed, err := StartSeed(tr.Addr(), m, data)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := Fetch(ctx, tr.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data differs")
	}
}

func TestSwarmManyPeers(t *testing.T) {
	data := testData(500_000, 4)
	m := NewManifest("atlas-day1", data, 32<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	seed, err := StartSeed(tr.Addr(), m, data)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := Fetch(ctx, tr.Addr(), m)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data) {
				errs[i] = context.DeadlineExceeded
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
}

func TestFetchAndSeedServesOthers(t *testing.T) {
	data := testData(200_000, 5)
	m := NewManifest("atlas-day2", data, 32<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	origin, err := StartSeed(tr.Addr(), m, data)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	peer, got, err := FetchAndSeed(ctx, tr.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("first fetch differs")
	}
	// Kill the origin seed; the second fetch must succeed purely from
	// the first downloader.
	origin.Close()
	got2, err := Fetch(ctx, tr.Addr(), m)
	if err != nil {
		t.Fatalf("fetch from peer seeder: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("second fetch differs")
	}
}

func TestFetchCancel(t *testing.T) {
	data := testData(100_000, 6)
	m := NewManifest("atlas-day3", data, 32<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// No seed: the fetch can never complete and must honor cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := Fetch(ctx, tr.Addr(), m); err == nil {
		t.Fatal("fetch succeeded with no seed")
	}
}

func TestSeedRejectsWrongData(t *testing.T) {
	data := testData(50_000, 7)
	m := NewManifest("atlas-day4", data, 16<<10)
	tr, err := StartTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := StartSeed(tr.Addr(), m, testData(50_000, 8)); err == nil {
		t.Fatal("seed accepted mismatched data")
	}
}

// Package zeroalloc exercises the zeroalloc analyzer: every construct the
// check flags, the //inano:alloc-ok suppression, and the compiler-elided
// conversion idioms it must stay silent on.
package zeroalloc

type sink interface{ m() }

type val struct{ x int }

func (v val) m() {}

var global interface{}

func helper() {}

func variadicInt(xs ...int) int { return len(xs) }

func variadicIface(xs ...interface{}) int { return len(xs) }

// cold carries no annotation: nothing in it is reported.
func cold(n int) []int {
	s := make([]int, n)
	return append(s, 1)
}

//inano:zeroalloc
func allocators(n int, b []byte, s string) {
	_ = make([]int, n)   // want `make allocates`
	_ = new(val)         // want `new allocates`
	_ = []int{1, 2}      // want `slice literal allocates its backing array`
	_ = map[string]int{} // want `map literal allocates`
	_ = &val{x: 1}       // want `&composite literal escapes to the heap`
	go helper()          // want `go statement allocates a goroutine stack`
	f := func() {}       // want `closure literal allocates`
	f()
	_ = string(b) // want `\[\]byte/\[\]rune to string conversion allocates`
	_ = []byte(s) // want `string to \[\]byte/\[\]rune conversion allocates`
	_ = s + s     // want `string concatenation allocates`
}

//inano:zeroalloc
func boxing(n int, v val, sk sink) {
	global = v      // want `conversion of zeroalloc\.val to interface`
	var si sink = v // want `conversion of zeroalloc\.val to interface`
	_ = si
	g := v.m // want `method value allocates a bound-method closure`
	_ = g
	_ = variadicInt(n, n) // want `variadic call allocates its argument slice`
	_ = variadicIface(n)  // want `conversion of int to interface` `variadic call allocates its argument slice`
	sk.m()                // calling through an interface does not box
}

//inano:zeroalloc
func retIface(n int) interface{} {
	return n // want `conversion of int to interface`
}

//inano:zeroalloc
func appends(dst []int, n int) []int {
	out := append([]int{}, n) // want `slice literal allocates its backing array` `append to a fresh slice literal allocates`
	_ = out
	dst = append(dst, n) // capacity is the caller's contract: not reported
	//inano:alloc-ok amortized regrow on overflow
	grown := make([]int, 2*n)
	_ = grown
	return dst
}

//inano:zeroalloc
func compares(b, key []byte, m map[string]int) int {
	if string(b) == string(key) { // comparison operands: the copy is elided
		return m[string(b)] // map-key conversion is elided too
	}
	return 0
}

// Package mmapflat declares a struct whose slices alias a read-only file
// mapping, marked //inano:mmap for the mmapalias analyzer — the fixture
// mirror of atlas.Flat.
package mmapflat

// Flat holds slices built by unsafe.Slice over a shared mapping.
type Flat struct {
	//inano:mmap
	EdgeLat []uint16
	//inano:mmap
	EdgeFrom []uint32
	Scratch  []uint16 // unmarked: writable
}

// Build constructs a Flat from private memory; writes during construction
// are allowed (fresh-local exemption).
func Build(n int) *Flat {
	f := &Flat{}
	f.EdgeLat = make([]uint16, n)
	f.EdgeFrom = make([]uint32, n)
	for i := range f.EdgeLat {
		f.EdgeLat[i] = uint16(i)
	}
	return f
}

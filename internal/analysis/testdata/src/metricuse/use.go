// Package metricuse exercises the metricdoc analyzer against the fixture
// docs/api.md next to this tree.
package metricuse

import "fixmetrics"

func register(r *fixmetrics.Registry, dyn string) {
	r.NewCounter("fix_requests_total", "requests")
	r.NewGauge("fix_tree_cache_hits", "hits")        // documented via brace group
	r.NewGauge("fix_tree_cache_misses", "misses")    // documented via brace group
	r.NewCounter("fix_orphan_total", "undocumented") // want `metric "fix_orphan_total" registered via NewCounter is not documented`
	r.NewCounter(dyn, "dynamic names cannot be checked statically")
}

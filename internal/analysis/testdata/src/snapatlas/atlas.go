// Package snapatlas is the fixture atlas type for the snapmut analyzer.
package snapatlas

// Atlas mirrors the mutable map-based atlas the engine snapshots.
type Atlas struct {
	PrefixCluster map[string]int
	Clusters      []int
}

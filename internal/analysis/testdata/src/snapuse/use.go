// Package snapuse exercises the snapmut analyzer: mutating an atlas after
// the engine snapshotted it is flagged; building beforehand is not.
package snapuse

import (
	"snapatlas"
	"snapcore"
)

func mutatesAfterSnapshot() *snapcore.Engine {
	a := &snapatlas.Atlas{PrefixCluster: map[string]int{}}
	a.PrefixCluster["p"] = 1 // building before the snapshot is fine
	eng := snapcore.New(a)
	a.PrefixCluster["q"] = 2           // want `mutates atlas a in place after snapcore\.New`
	delete(a.PrefixCluster, "p")       // want `mutates atlas a in place after snapcore\.New`
	a.Clusters = append(a.Clusters, 3) // want `field reassignment a\.Clusters mutates atlas a` `append to a\.Clusters mutates atlas a`
	return eng
}

func buildsOnly() *snapatlas.Atlas {
	a := &snapatlas.Atlas{PrefixCluster: map[string]int{}}
	a.PrefixCluster["p"] = 1
	a.Clusters = append(a.Clusters, 1)
	return a
}

func snapshotLast() *snapcore.Engine {
	a := &snapatlas.Atlas{PrefixCluster: map[string]int{"p": 1}}
	return snapcore.New(a)
}

// Package lockorder exercises the lockorder analyzer: copy-by-value,
// missing-unlock paths, and inconsistent acquisition order, next to the
// clean idioms (defer unlock, unlock-and-early-return) it must accept.
package lockorder

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func byValueParam(g guarded) int { // want `passed by value contains a mutex`
	return g.n
}

func takes(g guarded) { // want `passed by value contains a mutex`
	_ = g.n
}

func copies(g *guarded) {
	local := *g // want `assignment copies a mutex-containing value`
	local.n++
}

func passesByValue(g *guarded) {
	takes(*g) // want `call passes a mutex-containing value by value`
}

func missingUnlockOnReturn(g *guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		return g.n // want `return while lockorder\.guarded\.mu is held`
	}
	g.mu.Unlock()
	return 0
}

func forgottenUnlock(g *guarded) {
	g.mu.Lock() // want `lockorder\.guarded\.mu is still held when the function returns`
	g.n++
}

func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func earlyReturn(g *guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		g.mu.Unlock()
		return g.n
	}
	g.mu.Unlock()
	return 0
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `inconsistent lock order: lockorder\.pair\.b acquired while holding lockorder\.pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// Package fixmetrics is the fixture registry for the metricdoc analyzer;
// the method set mirrors internal/metrics.Registry.
package fixmetrics

// Registry registers fixture metrics.
type Registry struct{}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string, labels ...string) int { return 0 }

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string, labels ...string) int { return 0 }

// NewGaugeFunc registers a computed gauge.
func (r *Registry) NewGaugeFunc(name, help string, f func() float64) int { return 0 }

// NewHistogram registers a histogram.
func (r *Registry) NewHistogram(name, help string, labels []string, bounds []float64) int { return 0 }

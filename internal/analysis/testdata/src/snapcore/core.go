// Package snapcore is the fixture engine constructor for the snapmut
// analyzer: New compiles its atlas argument into a snapshot.
package snapcore

import "snapatlas"

// Engine is the fixture engine.
type Engine struct{ a *snapatlas.Atlas }

// New snapshots a.
func New(a *snapatlas.Atlas) *Engine { return &Engine{a: a} }

// Package mmapuse consumes mmapflat.Flat outside its declaring package:
// reads and transient aliasing are fine, writes and retention are flagged.
package mmapuse

import "mmapflat"

var leaked []uint16

type holder struct {
	lat []uint16
}

func reads(f *mmapflat.Flat) uint16 {
	var sum uint16
	for _, v := range f.EdgeLat {
		sum += v
	}
	view := f.EdgeLat[1:] // transient local aliasing is fine
	if len(view) > 0 {
		sum += view[0]
	}
	return sum
}

func writes(f *mmapflat.Flat, src []uint16) {
	f.EdgeLat[0] = 1                 // want `write to mmap-aliased slice f\.EdgeLat`
	f.EdgeLat[0]++                   // want `write to mmap-aliased slice f\.EdgeLat`
	copy(f.EdgeLat, src)             // want `copy into mmap-aliased slice f\.EdgeLat`
	f.EdgeLat = append(f.EdgeLat, 9) // want `append to mmap-aliased slice f\.EdgeLat` `reassignment of mmap-aliased field f\.EdgeLat outside mmapflat`
	f.Scratch[0] = 1                 // unmarked field: writable
}

func aliasChain(f *mmapflat.Flat) {
	lat := f.EdgeLat
	sub := lat[2:]
	sub[0] = 3 // want `write to mmap-aliased slice sub`
}

func retains(f *mmapflat.Flat) {
	leaked = f.EdgeLat // want `mmap-aliased slice retained in package-level leaked`
}

func retainsField(f *mmapflat.Flat, h *holder) {
	h.lat = f.EdgeLat                       // want `mmap-aliased slice retained in struct field h\.lat`
	h.lat = make([]uint16, len(f.EdgeFrom)) // a fresh slice is not retention
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation contract (docs/development.md):
//
//	//inano:zeroalloc   on a function's doc comment: the body must contain
//	                    no allocation-introducing construct.
//	//inano:alloc-ok reason
//	                    on (or immediately above) a line inside a
//	                    //inano:zeroalloc function: that line's allocation
//	                    is accepted (e.g. amortized buffer growth).
//	//inano:mmap        on a struct field: the slice may alias a read-only
//	                    mmap; writes through it are forbidden everywhere.
const (
	directivePrefix   = "//inano:"
	DirectiveZeroArc  = "zeroalloc"
	DirectiveAllocOK  = "alloc-ok"
	DirectiveMmapSafe = "mmap"
)

// parseDirective returns the directive name in a comment line, "" if the
// comment is not an //inano: directive.
func parseDirective(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// hasDirective reports whether a doc comment group carries the directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if parseDirective(c.Text) == name {
			return true
		}
	}
	return false
}

// directiveLines maps source line -> directive names present on that line,
// for suppression lookups ("is this allocation //inano:alloc-ok'd?").
func directiveLines(fset *token.FileSet, file *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d := parseDirective(c.Text); d != "" {
				line := fset.Position(c.Pos()).Line
				out[line] = append(out[line], d)
			}
		}
	}
	return out
}

// HasZeroAllocDirective reports whether fd is annotated //inano:zeroalloc
// (exported for cmd/inanovet's escape-log cross-check).
func HasZeroAllocDirective(fd *ast.FuncDecl) bool {
	return hasDirective(fd.Doc, DirectiveZeroArc)
}

// AllocOKLines returns the lines of file carrying //inano:alloc-ok.
func AllocOKLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for line, ds := range directiveLines(fset, file) {
		for _, d := range ds {
			if d == DirectiveAllocOK {
				out[line] = true
			}
		}
	}
	return out
}

// suppressedAt reports whether directive name appears on pos's line or the
// line directly above it (both placements read naturally in source).
func suppressedAt(lines map[int][]string, fset *token.FileSet, pos token.Pos, name string) bool {
	l := fset.Position(pos).Line
	for _, d := range lines[l] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[l-1] {
		if d == name {
			return true
		}
	}
	return false
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the repository's lock discipline with three checks:
//
//  1. copy-by-value: a value whose type contains a sync.Mutex/RWMutex
//     (recursively, through struct fields and arrays) must not be copied —
//     by assignment, argument passing, range, or by-value
//     parameter/receiver/result declarations. This is the vet copylocks
//     family, reimplemented so the whole suite runs in one tool.
//
//  2. missing unlock: a path that returns (or falls off the end of the
//     function) while a mutex acquired in that function is still held and
//     no defer covers it. This is the exact shape of the PR 6 linkIndex
//     lost-invalidation fix — invalidateIndex exists because a bare
//     store outside idxMu raced buildIndex; a forgotten unlock on an early
//     return is the same class of one-path mistake.
//
//  3. inconsistent acquisition order: when one function in a package
//     acquires lock B while holding A, and another acquires A while
//     holding B (locks keyed by declaring type + field, e.g.
//     atlas.Atlas.idxMu), the pair can deadlock. Both sites are reported.
//
// The unlock analysis is a conservative per-block state walk, not a full
// CFG: conditional unlocks without a following return release the lock on
// all paths (under-approximating, so real code's early-return-with-unlock
// idiom never false-positives), and a defer anywhere in the function that
// unlocks a mutex marks it covered for the rest of the walk.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex copy-by-value, missing-unlock paths, and inconsistent lock order",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrderCheck{pass: pass, edges: map[[2]string]token.Pos{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				lo.checkFieldList(fd.Recv)
				if fd.Type != nil {
					lo.checkFieldList(fd.Type.Params)
					lo.checkFieldList(fd.Type.Results)
				}
				if fd.Body != nil {
					lo.checkCopies(fd.Body)
					lo.checkUnlocks(fd.Body)
				}
			}
		}
	}
	// Inconsistent order: an edge in both directions across the package.
	for edge, pos := range lo.edges {
		rev := [2]string{edge[1], edge[0]}
		if rpos, ok := lo.edges[rev]; ok && edge[0] < edge[1] {
			pass.Reportf(pos, "inconsistent lock order: %s acquired while holding %s here, but the reverse order is used at %s",
				edge[1], edge[0], pass.Fset.Position(rpos))
		}
	}
	return nil
}

type lockOrderCheck struct {
	pass *Pass
	// edges records "B acquired while holding A" -> first such position.
	edges map[[2]string]token.Pos
}

// --- check 1: copy-by-value ---------------------------------------------

func (lo *lockOrderCheck) checkFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := lo.pass.TypesInfo.TypeOf(f.Type)
		if t != nil && containsLock(t) {
			lo.pass.Reportf(f.Pos(), "%s passed by value contains a mutex (copying a held lock deadlocks)", t)
		}
	}
}

// checkCopies flags assignments, call arguments, and range clauses that
// copy a lock-containing value. Composite literals and call results are
// fresh values and allowed, matching vet's copylocks.
func (lo *lockOrderCheck) checkCopies(body *ast.BlockStmt) {
	info := lo.pass.TypesInfo
	isCopy := func(e ast.Expr) bool {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
		default:
			return false
		}
		t := info.TypeOf(e)
		return t != nil && containsLock(t)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if isCopy(rhs) {
					lo.pass.Reportf(rhs.Pos(), "assignment copies a mutex-containing value (%s)", info.TypeOf(rhs))
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversions don't copy lock semantics away
			}
			for _, arg := range n.Args {
				if isCopy(arg) {
					lo.pass.Reportf(arg.Pos(), "call passes a mutex-containing value by value (%s)", info.TypeOf(arg))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := info.TypeOf(n.Value); t != nil && containsLock(t) {
					lo.pass.Reportf(n.Value.Pos(), "range clause copies mutex-containing values (%s)", t)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isCopy(r) {
					lo.pass.Reportf(r.Pos(), "return copies a mutex-containing value (%s)", info.TypeOf(r))
				}
			}
		}
		return true
	})
}

// containsLock reports whether t (not a pointer to t) embeds a sync mutex.
func containsLock(t types.Type) bool {
	seen := map[types.Type]bool{}
	var rec func(t types.Type) bool
	rec = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if isSyncLock(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(t)
}

func isSyncLock(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
		return true
	}
	return false
}

// --- checks 2+3: unlock paths and acquisition order ---------------------

// lockKey identifies a mutex for held-state tracking: the declaring type
// and field for struct mutexes ("core.cacheShard.mu"), the object position
// for locals. Distinct instances of one field are deliberately conflated —
// precise enough for path checks, and exactly what order checking needs.
func (lo *lockOrderCheck) lockKey(recv ast.Expr) string {
	switch e := recv.(type) {
	case *ast.ParenExpr:
		return lo.lockKey(e.X)
	case *ast.SelectorExpr:
		if s, ok := lo.pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + s.Obj().Name()
			}
		}
		return exprString(e)
	case *ast.Ident:
		if obj := lo.pass.TypesInfo.Uses[e]; obj != nil {
			return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
		}
		return e.Name
	}
	return exprString(recv)
}

// lockCall classifies stmt as a mutex Lock/Unlock call, returning the lock
// key and kind ("lock" for Lock/RLock, "unlock" for Unlock/RUnlock).
func (lo *lockOrderCheck) lockCall(call *ast.CallExpr) (key, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := lo.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	m := s.Obj()
	if m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", ""
	}
	switch m.Name() {
	case "Lock", "RLock":
		return lo.lockKey(sel.X), "lock"
	case "Unlock", "RUnlock":
		return lo.lockKey(sel.X), "unlock"
	}
	return "", ""
}

type heldState struct {
	held     map[string]token.Pos
	deferred map[string]bool
	// terminated marks that this path ended in a return: its unlocks must
	// not be credited to the fall-through path.
	terminated bool
}

func (h *heldState) clone() *heldState {
	c := &heldState{held: map[string]token.Pos{}, deferred: map[string]bool{}, terminated: h.terminated}
	for k, v := range h.held {
		c.held[k] = v
	}
	for k := range h.deferred {
		c.deferred[k] = true
	}
	return c
}

// checkUnlocks walks the function body tracking held mutexes. Nested
// function literals are analyzed as their own functions (their lock state
// does not leak into the enclosing walk).
func (lo *lockOrderCheck) checkUnlocks(body *ast.BlockStmt) {
	st := &heldState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	lo.walkStmts(body.List, st)
	for key, pos := range st.held {
		if !st.deferred[key] {
			lo.pass.Reportf(pos, "%s is still held when the function returns (no unlock or defer on this path)", key)
		}
	}
	// Analyze nested closures independently.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lo.checkUnlocks(fl.Body)
			return false
		}
		return true
	})
}

// walkStmts advances the held-state machine through one statement list.
func (lo *lockOrderCheck) walkStmts(stmts []ast.Stmt, st *heldState) {
	for _, stmt := range stmts {
		lo.walkStmt(stmt, st)
	}
}

func (lo *lockOrderCheck) walkStmt(stmt ast.Stmt, st *heldState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			lo.applyCall(call, st)
		}
	case *ast.DeferStmt:
		// Any unlock reachable from the deferred call covers that mutex
		// for the rest of the function (conservatively, including
		// defer func() { ... mu.Unlock() ... }() cleanup blocks).
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, kind := lo.lockCall(call); kind == "unlock" {
					st.deferred[key] = true
				}
			}
			return true
		})
	case *ast.ReturnStmt:
		for key, pos := range st.held {
			if !st.deferred[key] {
				lo.pass.Reportf(s.Pos(), "return while %s is held (locked at %s, no unlock on this path)",
					key, lo.pass.Fset.Position(pos))
			}
		}
		// The path ends here; what was held has been reported.
		st.held = map[string]token.Pos{}
		st.terminated = true
	case *ast.BlockStmt:
		lo.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, st)
		}
		lo.walkBranch(s.Body.List, st)
		if s.Else != nil {
			lo.walkBranch([]ast.Stmt{s.Else}, st)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, st)
		}
		lo.walkBranch(s.Body.List, st)
	case *ast.RangeStmt:
		lo.walkBranch(s.Body.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			switch cc := c.(type) {
			case *ast.CaseClause:
				lo.walkBranch(cc.Body, st)
			case *ast.CommClause:
				lo.walkBranch(cc.Body, st)
			}
		}
	case *ast.LabeledStmt:
		lo.walkStmt(s.Stmt, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				lo.applyCall(call, st)
			}
		}
	}
}

// walkBranch analyzes a conditional branch with a copy of the state. If
// the branch unlocks a held mutex and can fall through (no terminating
// return), the unlock is propagated to the parent state — treating the
// lock as released on all paths under-approximates holding, which is the
// direction that avoids false positives.
func (lo *lockOrderCheck) walkBranch(stmts []ast.Stmt, st *heldState) {
	branch := st.clone()
	branch.terminated = false
	lo.walkStmts(stmts, branch)
	if !branch.terminated {
		// A branch that ends in return does not release locks for the
		// fall-through path (the unlock-and-early-return idiom).
		for key := range st.held {
			if _, still := branch.held[key]; !still {
				delete(st.held, key)
			}
		}
	}
	for key := range branch.deferred {
		st.deferred[key] = true
	}
}

func (lo *lockOrderCheck) applyCall(call *ast.CallExpr, st *heldState) {
	key, kind := lo.lockCall(call)
	if key == "" {
		return
	}
	switch kind {
	case "lock":
		for heldKey := range st.held {
			if heldKey != key {
				edge := [2]string{heldKey, key}
				if _, ok := lo.edges[edge]; !ok {
					lo.edges[edge] = call.Pos()
				}
			}
		}
		st.held[key] = call.Pos()
	case "unlock":
		delete(st.held, key)
	}
}

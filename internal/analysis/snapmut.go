package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapMut flags in-place mutation of an atlas.Atlas after it has been
// handed to a snapshot-compiling constructor (core.New, inano.FromAtlas,
// ...). The engine compiles the map-based atlas into an immutable flat
// snapshot at construction; writing a.PrefixCluster[p] = c afterwards
// changes nothing the engine serves — the compiled-snapshot invisibility
// trap that bit the server tests in PR 6. The correct idioms are
// ApplyDelta (copy-on-write, returns a new atlas) or rebuilding the
// engine, and the diagnostic says so.
//
// The check is intraprocedural and position-based: within one function,
// a map write / delete / field reassignment on a variable that was passed
// to a snapshot taker earlier in the source is reported. That is exactly
// the shape the trap takes in practice (tests and examples build an atlas,
// construct an engine, then keep editing the atlas variable).
var SnapMut = &Analyzer{
	Name: "snapmut",
	Doc:  "flag in-place atlas mutation after the engine snapshotted it",
	Run:  runSnapMut,
}

// SnapshotTakers are the fully-qualified functions whose atlas argument is
// compiled into a snapshot at call time. Exported (with SnapshotAtlasType)
// so the analysistest harness can retarget the check at fixture types.
var SnapshotTakers = map[string]bool{
	"inano/internal/core.New":          true,
	"inano/internal/core.NewWithCache": true,
	"inano.FromAtlas":                  true,
	"inano.FromAtlasOptions":           true,
}

// SnapshotAtlasType is the fully-qualified snapshotted type.
var SnapshotAtlasType = "inano/internal/atlas.Atlas"

func runSnapMut(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSnapMut(pass, fd.Body)
			}
		}
	}
	return nil
}

// snapshotCall records one atlas-consuming constructor call.
type snapshotCall struct {
	pos    token.Pos
	callee string
}

func checkSnapMut(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find atlas variables handed to snapshot takers.
	snapped := map[types.Object]snapshotCall{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeName(pass, call)
		if callee == "" || !SnapshotTakers[callee] {
			return true
		}
		for _, arg := range call.Args {
			id := atlasIdent(pass, arg)
			if id == nil {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			if prev, ok := snapped[obj]; !ok || call.Pos() < prev.pos {
				snapped[obj] = snapshotCall{pos: call.Pos(), callee: callee}
			}
		}
		return true
	})
	if len(snapped) == 0 {
		return
	}
	// Pass 2: report mutations positioned after the snapshot call.
	report := func(pos token.Pos, base *ast.Ident, what string) {
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			return
		}
		sc, ok := snapped[obj]
		if !ok || pos < sc.pos {
			return
		}
		pass.Reportf(pos, "%s mutates atlas %s in place after %s compiled it into a snapshot at %s (the engine cannot see this; use ApplyDelta or rebuild the engine)",
			what, base.Name, sc.callee, pass.Fset.Position(sc.pos))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					if sel, base := atlasFieldSel(pass, l.X); sel != nil {
						report(n.Pos(), base, "map/element write "+exprString(l.X)+"[...]")
					}
				case *ast.SelectorExpr:
					if sel, base := atlasFieldSel(pass, l); sel != nil {
						report(n.Pos(), base, "field reassignment "+exprString(l))
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "delete":
						if sel, base := atlasFieldSel(pass, n.Args[0]); sel != nil {
							report(n.Pos(), base, "delete from "+exprString(n.Args[0]))
						}
					case "append":
						if sel, base := atlasFieldSel(pass, n.Args[0]); sel != nil {
							report(n.Pos(), base, "append to "+exprString(n.Args[0]))
						}
					}
				}
			}
		}
		return true
	})
}

// calleeName resolves a call's target to "pkgpath.Func" ("" when not a
// simple named function).
func calleeName(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// atlasIdent returns the identifier when arg is an atlas variable (a or
// &a of the snapshotted type), nil otherwise.
func atlasIdent(pass *Pass, arg ast.Expr) *ast.Ident {
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
		arg = ue.X
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	if !isAtlasType(pass.TypesInfo.TypeOf(id)) {
		return nil
	}
	return id
}

// atlasFieldSel matches expressions of the shape a.Field where a is an
// atlas variable, returning the selector and the base identifier.
func atlasFieldSel(pass *Pass, e ast.Expr) (*ast.SelectorExpr, *ast.Ident) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isAtlasType(pass.TypesInfo.TypeOf(id)) {
		return nil, nil
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	return sel, id
}

func isAtlasType(t types.Type) bool {
	if t == nil {
		return false
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if full == SnapshotAtlasType {
		return true
	}
	// Test fixtures use a bare package name path.
	return strings.HasSuffix(SnapshotAtlasType, "."+named.Obj().Name()) &&
		named.Obj().Pkg().Path() == strings.TrimSuffix(SnapshotAtlasType, "."+named.Obj().Name())
}

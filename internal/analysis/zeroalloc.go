package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroAlloc checks functions annotated //inano:zeroalloc for constructs the
// compiler's escape analysis would heap-allocate: make/new, slice and map
// literals, &composite literals, appends to fresh slices, closures, go
// statements, string concatenation and string<->[]byte conversions, method
// values, and implicit conversions of non-pointer-shaped values to
// interface types. The warm-path alloc-count tests (TestWarmQueryZeroAlloc
// and friends) gate one benchmarked window; this analyzer gates every line
// of every annotated function, on every build, with the finding on the
// offending construct instead of a flaky counter in bench CI.
//
// A line whose allocation is intentional (amortized buffer growth, a
// first-use sizing) is suppressed with //inano:alloc-ok <reason> on or
// directly above it. The check is intraprocedural: callees must either be
// annotated themselves or be known-clean (the -escape mode of cmd/inanovet
// cross-checks the compiler's actual escape log over the same functions).
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "report allocation-introducing constructs in //inano:zeroalloc functions",
	Run:  runZeroAlloc,
}

func runZeroAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		suppress := directiveLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, DirectiveZeroArc) {
				continue
			}
			za := &zeroAllocCheck{pass: pass, suppress: suppress, fd: fd}
			za.checkFunc(fd.Body)
		}
	}
	return nil
}

type zeroAllocCheck struct {
	pass     *Pass
	suppress map[int][]string
	fd       *ast.FuncDecl
	// calleePos marks expressions appearing in call position, so a method
	// selector being invoked is not misread as an allocating method value.
	calleePos map[ast.Expr]bool
	// safeConv marks string([]byte) conversions the compiler elides: used
	// only as a comparison operand or a map-index key, no copy is made.
	safeConv map[ast.Expr]bool
}

func (za *zeroAllocCheck) report(pos ast.Node, format string, args ...any) {
	if suppressedAt(za.suppress, za.pass.Fset, pos.Pos(), DirectiveAllocOK) {
		return
	}
	za.pass.Reportf(pos.Pos(), format, args...)
}

// checkFunc walks one annotated function body. Nested function literals are
// flagged as a whole (the closure itself allocates) and not descended into.
func (za *zeroAllocCheck) checkFunc(body *ast.BlockStmt) {
	za.calleePos = make(map[ast.Expr]bool)
	za.safeConv = make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			za.calleePos[n.Fun] = true
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				za.markSafeConv(n.X)
				za.markSafeConv(n.Y)
			}
		case *ast.IndexExpr:
			if t := za.typeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					za.markSafeConv(n.Index)
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			za.report(n, "closure literal allocates (heap-allocated func value and captures)")
			return false // the closure's own body is not on the annotated path
		case *ast.GoStmt:
			za.report(n, "go statement allocates a goroutine stack")
			return false
		case *ast.CompositeLit:
			za.checkCompositeLit(n)
		case *ast.UnaryExpr:
			za.checkUnary(n)
		case *ast.CallExpr:
			za.checkCall(n)
		case *ast.BinaryExpr:
			za.checkBinary(n)
		case *ast.SelectorExpr:
			za.checkMethodValue(n)
		case *ast.AssignStmt:
			za.checkAssign(n)
		case *ast.ValueSpec:
			if n.Type != nil {
				if t := za.typeOf(n.Type); t != nil {
					for _, v := range n.Values {
						za.checkIfaceConv(v, t)
					}
				}
			}
		case *ast.ReturnStmt:
			za.checkReturn(n)
		}
		return true
	})
}

// markSafeConv records e when it is a conversion call whose result the
// compiler can use without materializing (comparison operand, map key).
func (za *zeroAllocCheck) markSafeConv(e ast.Expr) {
	if p, ok := e.(*ast.ParenExpr); ok {
		za.markSafeConv(p.X)
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	if tv, ok := za.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		za.safeConv[call] = true
	}
}

func (za *zeroAllocCheck) typeOf(e ast.Expr) types.Type {
	return za.pass.TypesInfo.TypeOf(e)
}

func (za *zeroAllocCheck) checkCompositeLit(n *ast.CompositeLit) {
	t := za.typeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		za.report(n, "slice literal allocates its backing array")
	case *types.Map:
		za.report(n, "map literal allocates")
	}
	// Struct and fixed-size array literals are stack values unless their
	// address escapes; &T{...} is handled by checkUnary.
}

func (za *zeroAllocCheck) checkUnary(n *ast.UnaryExpr) {
	if n.Op.String() != "&" {
		return
	}
	if _, ok := n.X.(*ast.CompositeLit); ok {
		za.report(n, "&composite literal escapes to the heap")
	}
}

func (za *zeroAllocCheck) checkCall(call *ast.CallExpr) {
	info := za.pass.TypesInfo
	// Type conversion: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		za.checkConversion(call, tv.Type, call.Args[0])
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				za.report(call, "make allocates")
			case "new":
				za.report(call, "new allocates")
			case "append":
				za.checkAppend(call)
			}
			return
		}
	}
	// Ordinary call: arguments implicitly converted to interface
	// parameters are boxed.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... spreads an existing slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		za.checkIfaceConv(arg, pt)
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > params.Len()-1 {
		// The variadic backing slice itself is an allocation when any
		// variadic argument is passed.
		za.report(call, "variadic call allocates its argument slice")
	}
}

// checkConversion flags T(x) conversions that copy memory or box.
func (za *zeroAllocCheck) checkConversion(n ast.Node, to types.Type, arg ast.Expr) {
	from := za.typeOf(arg)
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(toU) && isByteOrRuneSlice(fromU) {
		if e, ok := n.(ast.Expr); ok && za.safeConv[e] {
			return // comparison operand / map key: the compiler elides the copy
		}
		za.report(n, "[]byte/[]rune to string conversion allocates")
		return
	}
	if isByteOrRuneSlice(toU) && isString(fromU) {
		za.report(n, "string to []byte/[]rune conversion allocates")
		return
	}
	za.checkIfaceConvTo(n, arg, to)
}

func (za *zeroAllocCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	if tv, ok := za.pass.TypesInfo.Types[dst]; ok && tv.IsNil() {
		za.report(call, "append to nil slice allocates")
		return
	}
	if _, ok := dst.(*ast.CompositeLit); ok {
		za.report(call, "append to a fresh slice literal allocates")
	}
	// Appends into caller-provided or pre-grown buffers are the idiom the
	// hot paths are built on; whether they regrow is a capacity question
	// the alloc-count tests and -escape mode own.
}

func (za *zeroAllocCheck) checkBinary(n *ast.BinaryExpr) {
	if n.Op.String() != "+" {
		return
	}
	t := za.typeOf(n)
	if t == nil || !isString(t.Underlying()) {
		return
	}
	if tv, ok := za.pass.TypesInfo.Types[n]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	za.report(n, "string concatenation allocates")
}

// checkMethodValue flags x.M used as a value (not called): the compiler
// materializes a bound-method closure.
func (za *zeroAllocCheck) checkMethodValue(n *ast.SelectorExpr) {
	if za.calleePos[n] {
		return
	}
	sel, ok := za.pass.TypesInfo.Selections[n]
	if ok && sel.Kind() == types.MethodVal {
		za.report(n, "method value allocates a bound-method closure")
	}
}

func (za *zeroAllocCheck) checkAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := za.typeOf(lhs)
		if lt == nil {
			continue
		}
		za.checkIfaceConv(n.Rhs[i], lt)
	}
}

func (za *zeroAllocCheck) checkReturn(n *ast.ReturnStmt) {
	def, ok := za.pass.TypesInfo.Defs[za.fd.Name]
	if !ok {
		return
	}
	results := def.Type().(*types.Signature).Results()
	if len(n.Results) != results.Len() {
		return
	}
	for i, r := range n.Results {
		za.checkIfaceConv(r, results.At(i).Type())
	}
}

// checkIfaceConv reports when expr (a concrete, non-pointer-shaped value)
// is used where typ (an interface) is expected — the implicit boxing that
// heap-allocates the value.
func (za *zeroAllocCheck) checkIfaceConv(expr ast.Expr, typ types.Type) {
	if typ == nil {
		return
	}
	if _, ok := typ.Underlying().(*types.Interface); !ok {
		return
	}
	za.checkIfaceConvTo(expr, expr, typ)
}

func (za *zeroAllocCheck) checkIfaceConvTo(at ast.Node, expr ast.Expr, typ types.Type) {
	if _, ok := typ.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := za.pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	from := tv.Type
	if _, ok := from.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no boxing
	}
	if pointerShaped(from) || zeroSized(from) {
		return // stored directly in the interface word
	}
	za.report(at, "conversion of %s to interface %s allocates", from, typ)
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t are stored directly in an
// interface word (no convT allocation).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func zeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !zeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || zeroSized(u.Elem())
	}
	return false
}

// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework, housing the project-specific
// analyzers that prove inano's hot-path and concurrency invariants at lint
// time (see docs/development.md for the catalogue and the annotation
// contract). The container this repository builds in has no module proxy,
// so the framework itself — Analyzer, Pass, diagnostics, cross-package
// facts — is reimplemented here on the standard library's go/ast and
// go/types; the API deliberately mirrors x/tools so the analyzers could be
// ported to a real multichecker by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Collect, when non-nil, runs over every
// package before any Run: it records package-source facts (e.g. which
// struct fields carry an //inano:mmap marker) into the shared FactStore,
// so a Run pass over package P can act on annotations declared in package
// Q even though Q is only visible to P as compiled export data.
type Analyzer struct {
	Name string
	Doc  string

	// Collect gathers cross-package facts. It must only write pass.Facts
	// and must not report diagnostics.
	Collect func(pass *Pass) error

	// Run performs the check, reporting findings via pass.Report*.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is shared across all packages of one driver invocation (or
	// deserialized from dependency .vetx files in vettool mode).
	Facts *FactStore

	// RepoRoot is the module root directory, for analyzers that check
	// source against repository files (metricdoc reads docs/api.md).
	// Empty when unknown; such analyzers must then skip, not fail.
	RepoRoot string

	diagnostics *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FactStore is the cross-package annotation database: namespace -> set of
// keys. Namespaces are per-analyzer strings ("mmap.fields"); keys encode
// whatever the analyzer needs ("inano/internal/atlas.Flat.EdgeLat"). The
// representation is flat strings so vettool mode can serialize it.
type FactStore struct {
	m map[string]map[string]bool
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]bool)}
}

// Add records key under namespace ns.
func (s *FactStore) Add(ns, key string) {
	set := s.m[ns]
	if set == nil {
		set = make(map[string]bool)
		s.m[ns] = set
	}
	set[key] = true
}

// Has reports whether key is recorded under ns.
func (s *FactStore) Has(ns, key string) bool { return s.m[ns][key] }

// Keys returns the sorted keys under ns.
func (s *FactStore) Keys(ns string) []string {
	out := make([]string, 0, len(s.m[ns]))
	for k := range s.m[ns] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Export flattens the store for serialization (vettool fact files).
func (s *FactStore) Export() map[string][]string {
	out := make(map[string][]string, len(s.m))
	for ns := range s.m {
		out[ns] = s.Keys(ns)
	}
	return out
}

// Merge folds a flattened store (a dependency's fact file) into s.
func (s *FactStore) Merge(flat map[string][]string) {
	for ns, keys := range flat {
		for _, k := range keys {
			s.Add(ns, k)
		}
	}
}

// Unit is one loaded, type-checked package handed to the driver.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// RunAnalyzers executes the full two-phase protocol — every analyzer's
// Collect over every unit, then every Run — and returns the diagnostics
// sorted by position. facts may be pre-seeded (vettool mode); pass nil for
// a fresh store.
func RunAnalyzers(units []*Unit, analyzers []*Analyzer, facts *FactStore, repoRoot string) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var diags []Diagnostic
	pass := func(a *Analyzer, u *Unit) *Pass {
		return &Pass{
			Analyzer:    a,
			Fset:        u.Fset,
			Files:       u.Files,
			Pkg:         u.Pkg,
			TypesInfo:   u.TypesInfo,
			Facts:       facts,
			RepoRoot:    repoRoot,
			diagnostics: &diags,
		}
	}
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, u := range units {
			if err := a.Collect(pass(a, u)); err != nil {
				return nil, fmt.Errorf("%s: collect %s: %w", a.Name, u.Pkg.Path(), err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, u := range units {
			if err := a.Run(pass(a, u)); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Pkg.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{ZeroAlloc, MmapAlias, LockOrder, SnapMut, MetricDoc}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Package analysistest runs inanovet analyzers over fixture packages and
// checks their diagnostics against // want "regex" comments — the same
// convention as golang.org/x/tools/go/analysis/analysistest, reimplemented
// over the stdlib-only loader. A want comment attaches to its own source
// line; every diagnostic on that line must match one of the quoted
// regexps, every regexp must match at least one diagnostic, and lines
// without a want comment must stay silent.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"inano/internal/analysis"
	"inano/internal/analysis/loader"
)

// expectation is one compiled want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\b(.*)$`)
var quoteRE = regexp.MustCompile(`(?:\x60[^\x60]*\x60)|(?:"(?:[^"\\]|\\.)*")`)

// Run typechecks testdata/src/<pkg> for each named package (in order, so
// later fixtures may import earlier ones), runs the analyzers, and
// verifies the // want expectations.
func Run(t *testing.T, testdata string, pkgs []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	specs := make([][2]string, len(pkgs))
	for i, p := range pkgs {
		specs[i] = [2]string{filepath.Join(testdata, "src", p), p}
	}
	units, fset, err := loader.TypeCheckDirs(specs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var wants []*expectation
	for _, u := range units {
		for _, f := range u.Files {
			ws, err := collectWants(fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}
	diags, err := analysis.RunAnalyzers(units, analyzers, nil, testdata)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim marks the first unhit expectation matching d; a want regexp that
// several diagnostics satisfy may be claimed once per diagnostic.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants extracts the expectations of one parsed file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			quoted := quoteRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
			}
			for _, q := range quoted {
				var pat string
				if strings.HasPrefix(q, "`") {
					pat = strings.Trim(q, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out, nil
}

package analysis_test

import (
	"testing"

	"inano/internal/analysis"
	"inano/internal/analysis/analysistest"
)

func TestZeroAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"zeroalloc"}, analysis.ZeroAlloc)
}

func TestMmapAlias(t *testing.T) {
	// mmapflat declares the //inano:mmap fields; mmapuse violates the
	// contract from another package, exercising the Collect fact flow.
	analysistest.Run(t, "testdata", []string{"mmapflat", "mmapuse"}, analysis.MmapAlias)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"lockorder"}, analysis.LockOrder)
}

func TestSnapMut(t *testing.T) {
	defer func(tk map[string]bool, at string) {
		analysis.SnapshotTakers, analysis.SnapshotAtlasType = tk, at
	}(analysis.SnapshotTakers, analysis.SnapshotAtlasType)
	analysis.SnapshotTakers = map[string]bool{"snapcore.New": true}
	analysis.SnapshotAtlasType = "snapatlas.Atlas"
	analysistest.Run(t, "testdata", []string{"snapatlas", "snapcore", "snapuse"}, analysis.SnapMut)
}

func TestMetricDoc(t *testing.T) {
	defer func(p string) { analysis.MetricsPkgPath = p }(analysis.MetricsPkgPath)
	analysis.MetricsPkgPath = "fixmetrics"
	analysistest.Run(t, "testdata", []string{"fixmetrics", "metricuse"}, analysis.MetricDoc)
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName(nil)
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	some, err := analysis.ByName([]string{"zeroalloc", "lockorder"})
	if err != nil || len(some) != 2 {
		t.Fatalf("ByName subset: %d, %v", len(some), err)
	}
	if _, err := analysis.ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// MetricDoc cross-checks the metrics the code registers against the
// operator-facing reference: every name passed to a Registry constructor
// (NewCounter, NewGauge, NewGaugeFunc, NewHistogram in internal/metrics)
// must appear in docs/api.md. A metric that ships undocumented is invisible
// to whoever builds the dashboards; this turns that gap into a lint
// finding at the registration site. docs/api.md may group families with
// brace shorthand (inanod_tree_cache_{hits,misses}), which is expanded
// before matching.
var MetricDoc = &Analyzer{
	Name: "metricdoc",
	Doc:  "require every registered metric name to appear in docs/api.md",
	Run:  runMetricDoc,
}

// MetricsPkgPath is the package whose Registry constructors register
// metrics. Exported so the analysistest harness can retarget fixtures.
var MetricsPkgPath = "inano/internal/metrics"

// MetricsDocFile is the documentation file, relative to the repo root.
var MetricsDocFile = filepath.Join("docs", "api.md")

var metricCtors = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewGaugeFunc": true,
	"NewHistogram": true,
}

func runMetricDoc(pass *Pass) error {
	documented, docErr := documentedMetrics(filepath.Join(pass.RepoRoot, MetricsDocFile))
	reportedDocErr := false
	for _, file := range pass.Files {
		// Metrics registered by tests never reach an operator's scrape.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricCtors[sel.Sel.Name] || len(call.Args) < 1 {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != MetricsPkgPath {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				// Dynamic names can't be checked statically; the doccheck
				// runtime dump covers those.
				return true
			}
			if docErr != nil {
				if !reportedDocErr {
					pass.Reportf(call.Pos(), "cannot verify metric %q: reading %s: %v", name, MetricsDocFile, docErr)
					reportedDocErr = true
				}
				return true
			}
			if !documented[name] {
				pass.Reportf(call.Args[0].Pos(), "metric %q registered via %s is not documented in %s", name, sel.Sel.Name, MetricsDocFile)
			}
			return true
		})
	}
	return nil
}

// constString evaluates arg as a compile-time constant string.
func constString(pass *Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// documentedMetrics extracts every documented metric name from the doc
// file: tokens that look like metric identifiers, with {a,b,c} brace
// groups expanded (one level, as used by docs/api.md's metric tables).
func documentedMetrics(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, tok := range splitMetricTokens(string(data)) {
		for _, name := range expandBraces(tok) {
			names[name] = true
		}
		// name{handler} documents metric "name" with a label set, not a
		// brace group: the bare prefix counts as documented too.
		if open := strings.IndexByte(tok, '{'); open > 0 {
			names[tok[:open]] = true
		}
	}
	return names, nil
}

// splitMetricTokens cuts the document into maximal runs of the characters
// that can appear in a metric token, including { } , for brace groups.
func splitMetricTokens(s string) []string {
	isTok := func(r rune) bool {
		return r == '_' || r == '{' || r == '}' || r == ',' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
	}
	var toks []string
	start := -1
	for i, r := range s {
		if isTok(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, s[start:])
	}
	return toks
}

// expandBraces expands prefix{a,b,c}suffix into prefixasuffix, ... . Tokens
// without a well-formed single brace group are returned as-is.
func expandBraces(tok string) []string {
	open := strings.IndexByte(tok, '{')
	if open < 0 {
		return []string{tok}
	}
	close := strings.IndexByte(tok, '}')
	if close < open {
		return []string{tok}
	}
	prefix, group, suffix := tok[:open], tok[open+1:close], tok[close+1:]
	var out []string
	for _, alt := range strings.Split(group, ",") {
		out = append(out, expandBraces(prefix+alt+suffix)...)
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MmapAlias enforces the read-only contract of slices that may alias a
// shared file mapping: struct fields annotated //inano:mmap (the zero-copy
// arrays of atlas.Flat, built by unsafe.Slice over an INANOFL1 mmap) must
// never be the target of an element write, an append, or a copy
// destination, and must not be retained in globals or other structs where
// they could outlive the mapping's Close. Writing through such a slice
// either faults (read-only mapping) or silently corrupts every replica
// sharing the page cache — a class of bug no test reliably catches.
//
// The fields are discovered in a Collect pre-pass, so the check applies in
// every package that touches them, not just the declaring one. Writes
// through a struct value freshly constructed in the same function (the
// Compile/parseFlat build path, where the slices are still private) are
// allowed: the invariant attaches when the value escapes the constructor.
var MmapAlias = &Analyzer{
	Name:    "mmapalias",
	Doc:     "forbid writes through and retention of //inano:mmap slices",
	Collect: collectMmapFields,
	Run:     runMmapAlias,
}

const mmapFieldsNS = "mmap.fields"

// collectMmapFields records "pkgpath.Type.Field" for every annotated field.
func collectMmapFields(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !hasDirective(field.Doc, DirectiveMmapSafe) && !hasDirective(field.Comment, DirectiveMmapSafe) {
						continue
					}
					for _, name := range field.Names {
						pass.Facts.Add(mmapFieldsNS, pass.Pkg.Path()+"."+ts.Name.Name+"."+name.Name)
					}
				}
			}
		}
	}
	return nil
}

func runMmapAlias(pass *Pass) error {
	for _, file := range pass.Files {
		// Tests mutate heap-built Flat fixtures (Compile output, never
		// mapping-backed) on purpose; the contract binds serving code.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ma := &mmapAliasCheck{pass: pass}
			ma.checkFunc(fd.Body)
		}
	}
	return nil
}

type mmapAliasCheck struct {
	pass *Pass
	// fresh holds locals initialized from &T{}/T{}/new(T) in this
	// function: a struct still being built, whose slices are private.
	fresh map[types.Object]bool
	// aliases holds locals assigned from a protected expression: writing
	// through them is writing through the mapping.
	aliases map[types.Object]bool
}

func (ma *mmapAliasCheck) checkFunc(body *ast.BlockStmt) {
	ma.fresh = map[types.Object]bool{}
	ma.aliases = map[types.Object]bool{}
	// Two passes over the assignment graph so alias chains (x := f.EdgeLat;
	// y := x[1:]) resolve regardless of declaration order.
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := ma.objOf(id)
				if obj == nil {
					continue
				}
				switch rhs := as.Rhs[i].(type) {
				case *ast.CompositeLit:
					ma.fresh[obj] = true
				case *ast.UnaryExpr:
					if _, lit := rhs.X.(*ast.CompositeLit); lit && rhs.Op.String() == "&" {
						ma.fresh[obj] = true
					}
				case *ast.CallExpr:
					if bid, ok := rhs.Fun.(*ast.Ident); ok {
						if b, ok := ma.pass.TypesInfo.Uses[bid].(*types.Builtin); ok && b.Name() == "new" {
							ma.fresh[obj] = true
						}
					}
				}
				if ma.protected(as.Rhs[i]) {
					ma.aliases[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ma.checkAssign(n)
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && ma.protected(ix.X) {
				ma.pass.Reportf(n.Pos(), "write to mmap-aliased slice %s", exprString(ix.X))
			}
		case *ast.CallExpr:
			ma.checkCall(n)
		}
		return true
	})
}

func (ma *mmapAliasCheck) objOf(id *ast.Ident) types.Object {
	if o := ma.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return ma.pass.TypesInfo.Uses[id]
}

// protected reports whether e aliases an //inano:mmap field: the selector
// itself, a slice of it, or a local already known to alias one.
func (ma *mmapAliasCheck) protected(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ma.protected(e.X)
	case *ast.SliceExpr:
		return ma.protected(e.X)
	case *ast.Ident:
		obj := ma.objOf(e)
		return obj != nil && ma.aliases[obj]
	case *ast.SelectorExpr:
		key, base := ma.fieldKey(e)
		if key == "" || !ma.pass.Facts.Has(mmapFieldsNS, key) {
			return false
		}
		// A field of a struct still under construction in this function is
		// not yet mapping-backed.
		if id, ok := base.(*ast.Ident); ok {
			if obj := ma.objOf(id); obj != nil && ma.fresh[obj] {
				return false
			}
		}
		return true
	}
	return false
}

// fieldKey resolves a selector to its "pkgpath.Type.Field" fact key and
// the base expression ("" when not a struct field selection).
func (ma *mmapAliasCheck) fieldKey(sel *ast.SelectorExpr) (string, ast.Expr) {
	s, ok := ma.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	f := s.Obj().(*types.Var)
	named := namedOf(s.Recv())
	if named == nil || f.Pkg() == nil {
		return "", nil
	}
	return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name(), sel.X
}

func (ma *mmapAliasCheck) checkAssign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && ma.protected(ix.X) {
			ma.pass.Reportf(as.Pos(), "write to mmap-aliased slice %s (read-only mapping)", exprString(ix.X))
		}
		// Reassigning the whole field outside its declaring package
		// detaches serving state from the mapping mid-flight.
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if key, base := ma.fieldKey(sel); key != "" && ma.pass.Facts.Has(mmapFieldsNS, key) {
				declPkg := key[:strings.LastIndex(key[:strings.LastIndex(key, ".")], ".")]
				freshBase := false
				if id, ok := base.(*ast.Ident); ok {
					if obj := ma.objOf(id); obj != nil && ma.fresh[obj] {
						freshBase = true
					}
				}
				if declPkg != ma.pass.Pkg.Path() && !freshBase {
					ma.pass.Reportf(as.Pos(), "reassignment of mmap-aliased field %s outside %s", exprString(sel), declPkg)
				}
			}
		}
	}
	// Retention: a protected slice stored into a global or a struct field
	// can outlive FlatFile.Close and fault on a dead mapping.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !ma.protected(rhs) {
			continue
		}
		switch lhs := as.Lhs[i].(type) {
		case *ast.Ident:
			if obj := ma.objOf(lhs); obj != nil && obj.Parent() == ma.pass.Pkg.Scope() {
				ma.pass.Reportf(as.Pos(), "mmap-aliased slice retained in package-level %s (may outlive Close)", lhs.Name)
			}
		case *ast.SelectorExpr:
			if s, ok := ma.pass.TypesInfo.Selections[lhs]; ok && s.Kind() == types.FieldVal {
				if key, _ := ma.fieldKey(lhs); key == "" || !ma.pass.Facts.Has(mmapFieldsNS, key) {
					ma.pass.Reportf(as.Pos(), "mmap-aliased slice retained in struct field %s (may outlive Close)", exprString(lhs))
				}
			}
		}
	}
}

func (ma *mmapAliasCheck) checkCall(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	b, ok := ma.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok || len(call.Args) == 0 {
		return
	}
	switch b.Name() {
	case "append":
		if ma.protected(call.Args[0]) {
			ma.pass.Reportf(call.Pos(), "append to mmap-aliased slice %s (writes the mapping in place)", exprString(call.Args[0]))
		}
	case "copy":
		if ma.protected(call.Args[0]) {
			ma.pass.Reportf(call.Pos(), "copy into mmap-aliased slice %s (read-only mapping)", exprString(call.Args[0]))
		}
	}
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// exprString renders a simple expression chain for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "expr"
}

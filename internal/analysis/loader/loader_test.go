package loader

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inano/internal/analysis"
)

// TestLoadModulePackage exercises the real driver path: go list -export
// over a small module package, export-data importing for its stdlib deps,
// and type-checking from source (the analyzers need comments and bodies).
func TestLoadModulePackage(t *testing.T) {
	// An import-path pattern, not a ./ one: the test's cwd is this package's
	// directory, but import paths resolve anywhere inside the module.
	pkgs, fset, root, err := Load([]string{"inano/internal/metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if fset == nil || root == "" {
		t.Fatalf("fset=%v root=%q", fset, root)
	}
	var metrics *Package
	for _, p := range pkgs {
		if p.ImportPath == "inano/internal/metrics" {
			metrics = p
		}
	}
	if metrics == nil {
		t.Fatalf("inano/internal/metrics not among %d loaded packages", len(pkgs))
	}
	if metrics.Unit == nil || metrics.Unit.Pkg == nil || len(metrics.Unit.Files) == 0 {
		t.Fatal("metrics package loaded without a typed unit")
	}
	// Comments must survive: the analyzers read //inano: directives.
	hasComment := false
	for _, f := range metrics.Unit.Files {
		if len(f.Comments) > 0 {
			hasComment = true
		}
	}
	if !hasComment {
		t.Fatal("parsed files carry no comments; analyzers need ParseComments")
	}
	if !filepath.IsAbs(root) {
		t.Fatalf("module root %q is not absolute", root)
	}
}

// TestLoadReportsBrokenPackage: a pattern that matches nothing loadable
// must surface go list's error, not silently analyze zero packages.
func TestLoadReportsBrokenPackage(t *testing.T) {
	_, _, _, err := Load([]string{"./does/not/exist"})
	if err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded")
	}
}

func TestTypeCheckDirSingle(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "lockorder")
	unit, err := TypeCheckDir(dir, "lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if unit.Pkg.Path() != "lockorder" {
		t.Fatalf("pkg path = %q", unit.Pkg.Path())
	}
}

func TestTypeCheckDirsCrossPackage(t *testing.T) {
	// mmapuse imports mmapflat by package path: the later spec must resolve
	// the earlier one from the typed map, not from export data.
	base := filepath.Join("..", "testdata", "src")
	units, fset, err := TypeCheckDirs([][2]string{
		{filepath.Join(base, "mmapflat"), "mmapflat"},
		{filepath.Join(base, "mmapuse"), "mmapuse"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2", len(units))
	}
	use := units[1]
	found := false
	for _, imp := range use.Pkg.Imports() {
		if imp.Path() == "mmapflat" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mmapuse imports %v, missing mmapflat", use.Pkg.Imports())
	}
	if fset != units[0].Fset || fset != use.Fset {
		t.Fatal("units do not share the FileSet; analyzer positions would disagree")
	}
}

func TestTypeCheckDirsRejectsEmptyDir(t *testing.T) {
	if _, _, err := TypeCheckDirs([][2]string{{t.TempDir(), "empty"}}); err == nil {
		t.Fatal("empty dir type-checked successfully")
	}
}

// TestCheckFilesTypeError: the vettool entry point must return the type
// error (cmd/go decides via SucceedOnTypecheckFailure what to do with it).
func TestCheckFilesTypeError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(bad, []byte("package bad\n\nfunc f() { undefined() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := CheckFiles(token.NewFileSet(), "bad", []string{bad}, ExportLookup(token.NewFileSet(), nil, nil))
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("err = %v, want type-checking failure", err)
	}
}

// Checked units from TypeCheckDirs must be usable by the framework as-is.
func TestUnitsRunThroughFramework(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "lockorder")
	unit, err := TypeCheckDir(dir, "lockorder")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Unit{unit}, []*analysis.Analyzer{analysis.LockOrder}, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("lockorder fixture produced no diagnostics through the framework")
	}
}

// Package loader type-checks Go packages for the inanovet analyzers using
// only the standard library and the go command. Module packages are parsed
// from source (the analyzers need comments and bodies); their dependencies
// are imported from the compiled export data the build cache already holds,
// discovered via `go list -export`. This is the same shape x/tools'
// packages.Load(LoadAllSyntax) produces, minus the dependency on a module
// proxy the build container does not have.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"inano/internal/analysis"
)

// Package is one loaded module package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Unit       *analysis.Unit
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load lists patterns (plus their dependency closure), type-checks every
// non-standard package from source, and returns them in dependency order
// together with the shared FileSet and the module root directory.
func Load(patterns []string) ([]*Package, *token.FileSet, string, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,Standard,GoFiles,Incomplete,Error,DepsErrors",
	}, patterns...)
	out, err := runGo(args...)
	if err != nil {
		return nil, nil, "", err
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, nil, "", err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	typed := make(map[string]*types.Package)
	imp := &depImporter{exports: exports, typed: typed}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, "", fmt.Errorf("go list output: %w", err)
		}
		if e.Error != nil || e.Incomplete {
			msg := "incomplete package"
			if e.Error != nil {
				msg = e.Error.Err
			}
			return nil, nil, "", fmt.Errorf("%s: %s", e.ImportPath, msg)
		}
		if e.Standard {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
			continue
		}
		p, err := typeCheck(fset, &e, imp)
		if err != nil {
			return nil, nil, "", err
		}
		typed[e.ImportPath] = p.Unit.Pkg
		pkgs = append(pkgs, p)
	}
	return pkgs, fset, root, nil
}

// TypeCheckDir loads the .go files of one directory as a single package
// (the analysistest entry point: testdata trees are not part of the module
// graph). Imports are restricted to the standard library.
func TypeCheckDir(dir, pkgPath string) (*analysis.Unit, error) {
	units, _, err := TypeCheckDirs([][2]string{{dir, pkgPath}})
	if err != nil {
		return nil, err
	}
	return units[0], nil
}

// TypeCheckDirs loads several directories as packages sharing one FileSet,
// in order; later directories may import earlier ones by package path (the
// analysistest fixtures exercising cross-package facts need this). Other
// imports are restricted to the standard library.
func TypeCheckDirs(specs [][2]string) ([]*analysis.Unit, *token.FileSet, error) {
	fset := token.NewFileSet()
	typed := map[string]*types.Package{}
	imports := map[string]bool{}
	type parsedPkg struct {
		pkgPath string
		files   []*ast.File
	}
	var parsedPkgs []parsedPkg
	for _, spec := range specs {
		dir, pkgPath := spec[0], spec[1]
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var parsed []*ast.File
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
				continue
			}
			af, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, err
			}
			for _, spec := range af.Imports {
				imports[strings.Trim(spec.Path.Value, `"`)] = true
			}
			parsed = append(parsed, af)
		}
		if len(parsed) == 0 {
			return nil, nil, fmt.Errorf("no .go files in %s", dir)
		}
		parsedPkgs = append(parsedPkgs, parsedPkg{pkgPath: pkgPath, files: parsed})
	}
	for _, spec := range specs {
		delete(imports, spec[1]) // resolved from typed, not export data
	}
	exports, err := stdlibExports(imports)
	if err != nil {
		return nil, nil, err
	}
	imp := &depImporter{exports: exports, typed: typed}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)
	var units []*analysis.Unit
	for _, p := range parsedPkgs {
		u, err := check(fset, p.pkgPath, p.files, imp)
		if err != nil {
			return nil, nil, err
		}
		typed[p.pkgPath] = u.Pkg
		units = append(units, u)
	}
	return units, fset, nil
}

// stdlibExports resolves export-data files for a set of stdlib import
// paths (plus their dependency closure) via one go list invocation.
func stdlibExports(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export,Standard,Error"}
	for p := range imports {
		args = append(args, p)
	}
	out, err := runGo(args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

func typeCheck(fset *token.FileSet, e *listEntry, imp *depImporter) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range e.GoFiles {
		path := filepath.Join(e.Dir, name)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		paths = append(paths, path)
	}
	unit, err := check(fset, e.ImportPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: e.ImportPath, Dir: e.Dir, GoFiles: paths, Unit: unit}, nil
}

func check(fset *token.FileSet, pkgPath string, files []*ast.File, imp *depImporter) (*analysis.Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// depImporter resolves imports: already-typechecked module packages first,
// then compiled export data through the gc importer.
type depImporter struct {
	exports map[string]string
	typed   map[string]*types.Package
	gc      types.Importer
}

func (i *depImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.typed[path]; ok {
		return p, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

func (i *depImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := i.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// ExportLookup adapts an explicit path->export-file map (the vettool
// config's PackageFile) plus an import-path canonicalization map into a
// types importer.
func ExportLookup(fset *token.FileSet, packageFile, importMap map[string]string) types.Importer {
	imp := &vetImporter{packageFile: packageFile, importMap: importMap}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)
	return imp
}

type vetImporter struct {
	packageFile map[string]string
	importMap   map[string]string
	gc          types.Importer
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if c, ok := i.importMap[path]; ok {
		path = c
	}
	return i.gc.Import(path)
}

func (i *vetImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := i.packageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// CheckFiles type-checks an explicit file list with an explicit importer —
// the vettool entry point, where cmd/go supplies both.
func CheckFiles(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*analysis.Unit, error) {
	var files []*ast.File
	for _, f := range filenames {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

func moduleRoot() (string, error) {
	out, err := runGo("list", "-m", "-f", "{{.Dir}}")
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}

func runGo(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

package trace

import (
	"testing"

	"inano/internal/bgpsim"
	"inano/internal/netsim"
)

func testMeter(t *testing.T, seed int64, day int) (*Meter, *netsim.Topology) {
	t.Helper()
	top := netsim.Generate(netsim.TestConfig(seed))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	return NewMeter(sim.Day(day), DefaultOptions()), top
}

func TestTracerouteDeterministic(t *testing.T) {
	m, top := testMeter(t, 1, 0)
	src, dst := top.EdgePrefixes[0], top.EdgePrefixes[10]
	a := m.Traceroute(src, dst)
	b := m.Traceroute(src, dst)
	if len(a.Hops) != len(b.Hops) || a.Reached != b.Reached {
		t.Fatalf("nondeterministic traceroute: %v vs %v", a, b)
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			t.Fatalf("hop %d differs: %v vs %v", i, a.Hops[i], b.Hops[i])
		}
	}
}

func TestTracerouteHopsConsistent(t *testing.T) {
	m, top := testMeter(t, 2, 0)
	reached := 0
	for i := 0; i < 60; i++ {
		src := top.EdgePrefixes[i%len(top.EdgePrefixes)]
		dst := top.EdgePrefixes[(i*7+13)%len(top.EdgePrefixes)]
		if src == dst {
			continue
		}
		tr := m.Traceroute(src, dst)
		if len(tr.Hops) == 0 {
			t.Fatalf("empty traceroute %v -> %v", src, dst)
		}
		var lastRTT float64
		for hi, h := range tr.Hops {
			if h.IP == 0 {
				continue
			}
			if h.RTTMS <= 0 {
				t.Fatalf("hop %d responsive but RTT %v", hi, h.RTTMS)
			}
			_ = lastRTT // RTTs need not be monotone (asymmetric reverse paths)
			lastRTT = h.RTTMS
			// Every revealed interface except the destination host must
			// belong to a router in the true PoP at that position.
			if hi < len(tr.TruePoPs) {
				got := top.RouterPoP(h.IP)
				if got != tr.TruePoPs[hi] {
					t.Fatalf("hop %d interface %v in PoP %d, want %d", hi, h.IP, got, tr.TruePoPs[hi])
				}
			}
		}
		if tr.Reached {
			reached++
			last := tr.Hops[len(tr.Hops)-1]
			if last.IP != dst.HostIP() {
				t.Fatalf("reached but last hop %v != host %v", last.IP, dst.HostIP())
			}
		}
	}
	if reached == 0 {
		t.Fatal("no traceroute reached its destination")
	}
}

func TestTracerouteHasUnresponsiveHops(t *testing.T) {
	m, top := testMeter(t, 3, 0)
	stars := 0
	for i := 0; i < 80; i++ {
		src := top.EdgePrefixes[i%len(top.EdgePrefixes)]
		dst := top.EdgePrefixes[(i*5+1)%len(top.EdgePrefixes)]
		if src == dst {
			continue
		}
		for _, h := range m.Traceroute(src, dst).Hops {
			if h.IP == 0 {
				stars++
			}
		}
	}
	if stars == 0 {
		t.Error("no unresponsive hops in 80 traceroutes; dark-router model inert")
	}
}

func TestMeasureLossBinomial(t *testing.T) {
	m, top := testMeter(t, 4, 0)
	day := bgpsim.New(top, bgpsim.DefaultConfig()).Day(0)
	found := false
	for i := 0; i < len(top.EdgePrefixes) && !found; i++ {
		src := top.EdgePrefixes[i]
		dst := top.EdgePrefixes[(i+9)%len(top.EdgePrefixes)]
		if src == dst {
			continue
		}
		truth, ok := day.RTLoss(src, dst)
		if !ok || truth < 0.03 {
			continue
		}
		found = true
		got, ok := m.MeasureLoss(src, dst, 2000)
		if !ok {
			t.Fatal("loss measurement failed")
		}
		if got < truth/3 || got > truth*3+0.02 {
			t.Errorf("measured loss %v far from truth %v", got, truth)
		}
	}
	if !found {
		t.Skip("no sufficiently lossy path in this world")
	}
}

func TestMeasureLinkLatencyUnbiased(t *testing.T) {
	m, top := testMeter(t, 5, 0)
	for lid := range top.Links[:50] {
		truth := top.Links[lid].LatencyMS
		got := m.MeasureLinkLatency(netsim.LinkID(lid))
		if got < truth*0.97 || got > truth*1.03 {
			t.Fatalf("link %d latency measurement %v outside 3%% of %v", lid, got, truth)
		}
	}
}

func TestRunCampaignShape(t *testing.T) {
	m, top := testMeter(t, 6, 0)
	vps := SelectVantagePoints(top, 8)
	if len(vps) != 8 {
		t.Fatalf("got %d VPs, want 8", len(vps))
	}
	targets := top.EdgePrefixes[:20]
	c := RunCampaign(m, vps, targets)
	if len(c.Traceroutes) != len(vps)*len(targets) {
		t.Fatalf("got %d traceroutes, want %d", len(c.Traceroutes), len(vps)*len(targets))
	}
	for i, tr := range c.Traceroutes {
		wantSrc := vps[i/len(targets)]
		wantDst := targets[i%len(targets)]
		if tr.Src != wantSrc || tr.Dst != wantDst {
			t.Fatalf("traceroute %d is %v->%v, want %v->%v", i, tr.Src, tr.Dst, wantSrc, wantDst)
		}
	}
}

func TestSelectVantagePointsDistinctASes(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(7))
	vps := SelectVantagePoints(top, 10)
	seen := map[netsim.Prefix]bool{}
	for _, p := range vps {
		if seen[p] {
			t.Fatalf("duplicate vantage point %v", p)
		}
		seen[p] = true
	}
}

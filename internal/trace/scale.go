package trace

import "inano/internal/netsim"

// ScaleCampaign streams a measurement campaign over a ScaleWorld without
// ever materializing it: Run synthesizes each traceroute from the world's
// deterministic route function and yields it through a reused buffer, so
// a million-trace campaign allocates O(1) and re-emits byte-identically
// on every pass — the contract the out-of-core atlas builder's two-pass
// ingestion relies on (ftsb-style seeded streaming emission).
type ScaleCampaign struct {
	W *netsim.ScaleWorld
	// VPs are the vantage-point source prefixes (TO_DST plane). VP k
	// probes the edge prefixes congruent to k modulo len(VPs) — together
	// the VPs cover every edge prefix exactly once — plus every VP and
	// client prefix (so reverse paths toward the population resolve).
	VPs []netsim.Prefix
	// TargetsPerVP caps each VP's stride walk (0 = full coverage).
	TargetsPerVP int
	// ClientSrcs contribute FROM_SRC-plane traceroutes, ClientDsts
	// stride-sampled destinations each.
	ClientSrcs []netsim.Prefix
	ClientDsts int
	// Day stamps the emitted traceroutes.
	Day int
}

// Run emits the campaign. The *Traceroute passed to yield aliases an
// internal buffer that the next emission overwrites: consumers must copy
// anything they keep. Returning false from yield stops the run. fromVP
// distinguishes the TO_DST (vantage point) plane from FROM_SRC (client).
func (c *ScaleCampaign) Run(yield func(tr *Traceroute, fromVP bool) bool) {
	w := c.W
	var tr Traceroute
	var pathBuf [96]int32
	tr.Day = c.Day

	emit := func(src, dst netsim.Prefix, fromVP bool) bool {
		if src == dst {
			return true
		}
		srcAS, dstAS := w.OriginIdx(src), w.OriginIdx(dst)
		if srcAS < 0 || dstAS < 0 {
			return true
		}
		path := w.RoutePath(srcAS, dstAS, pathBuf[:])
		if len(path) == 0 {
			return true
		}
		tr.Src, tr.Dst = src, dst
		tr.Hops = tr.Hops[:0]
		tr.Reached = true
		access := w.AccessMS(src)
		// First hop: the source AS's access gateway.
		tr.Hops = append(tr.Hops, Hop{IP: w.IfaceIP(srcAS, srcAS), RTTMS: 2 * access})
		oneway := access
		for k := 1; k < len(path); k++ {
			e := w.EdgeBetween(path[k-1], path[k])
			oneway += w.LinkLatencyMS(e)
			tr.Hops = append(tr.Hops, Hop{IP: w.IfaceIP(path[k], path[k-1]), RTTMS: 2 * oneway})
		}
		oneway += w.AccessMS(dst)
		tr.Hops = append(tr.Hops, Hop{IP: dst.HostIP(), RTTMS: 2 * oneway})
		return yield(&tr, fromVP)
	}

	nv := len(c.VPs)
	total := w.NumPrefixes()
	for k, vp := range c.VPs {
		// Stride walk: VP k covers prefixes k, k+nv, k+2nv, ...
		emitted := 0
		for j := k; j < total; j += nv {
			if c.TargetsPerVP > 0 && emitted >= c.TargetsPerVP {
				break
			}
			if !emit(vp, w.EdgePrefixAt(j), true) {
				return
			}
			emitted++
		}
		// The population itself is always probed.
		for _, p := range c.VPs {
			if !emit(vp, p, true) {
				return
			}
		}
		for _, p := range c.ClientSrcs {
			if !emit(vp, p, true) {
				return
			}
		}
	}
	for ci, src := range c.ClientSrcs {
		for k := 0; k < c.ClientDsts; k++ {
			// A client's own deterministic destination sample, offset per
			// client so the FROM_SRC plane spreads across the edge.
			j := (ci*7919 + k*104729) % total
			if !emit(src, w.EdgePrefixAt(j), false) {
				return
			}
		}
		for _, p := range c.VPs {
			if !emit(src, p, false) {
				return
			}
		}
	}
}

// TrueRTT returns the ground-truth round-trip time between two prefixes
// of the world (the value the emitted traceroutes report end to end), or
// false when either prefix is unallocated.
func (c *ScaleCampaign) TrueRTT(src, dst netsim.Prefix) (float64, bool) {
	w := c.W
	srcAS, dstAS := w.OriginIdx(src), w.OriginIdx(dst)
	if srcAS < 0 || dstAS < 0 {
		return 0, false
	}
	var pathBuf [96]int32
	path := w.RoutePath(srcAS, dstAS, pathBuf[:])
	if len(path) == 0 {
		return 0, false
	}
	// Accumulate in emission order so the value matches the emitted
	// traces bit for bit.
	oneway := w.AccessMS(src)
	for k := 1; k < len(path); k++ {
		oneway += w.LinkLatencyMS(w.EdgeBetween(path[k-1], path[k]))
	}
	oneway += w.AccessMS(dst)
	return 2 * oneway, true
}

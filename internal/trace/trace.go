// Package trace simulates the measurement infrastructure the paper's atlas
// is built from: traceroutes issued by vantage points (PlanetLab-like) and
// end-host agents (DIMES-like), and ICMP probe trains for loss rates.
//
// Traceroutes observe interface-level hops: entering a PoP through a given
// link consistently reveals the same router interface (as on real routers,
// where the ingress interface answers), so alias resolution and PoP
// clustering (internal/cluster) are a genuine inference problem. Hop RTTs
// compose the forward sub-path with the asymmetric reverse path from the
// hop back to the source, plus measurement noise; some routers never
// respond and individual hops drop transiently.
package trace

import (
	"math/rand"
	"runtime"
	"sync"

	"inano/internal/bgpsim"
	"inano/internal/netsim"
)

// Options tunes measurement realism.
type Options struct {
	// DarkRouterProb is the probability that a PoP's routers never answer
	// traceroute probes (consistent per PoP).
	DarkRouterProb float64
	// TransientLossProb is the per-hop probability of a missing response
	// on an otherwise responsive router.
	TransientLossProb float64
	// RTTNoiseFrac scales multiplicative RTT measurement noise.
	RTTNoiseFrac float64
	// UnreachableProb is the probability a destination host does not
	// answer at all (probe filtered); the traceroute still records
	// intermediate hops but Reached is false.
	UnreachableProb float64
}

// DefaultOptions matches the realism knobs used throughout the evaluation.
func DefaultOptions() Options {
	return Options{
		DarkRouterProb:    0.04,
		TransientLossProb: 0.02,
		RTTNoiseFrac:      0.03,
		UnreachableProb:   0.03,
	}
}

// Hop is one observed traceroute hop.
type Hop struct {
	// IP is the responding interface, or 0 for a '*' (no response).
	IP netsim.IP
	// RTTMS is the measured round-trip time to this hop (0 when IP==0).
	RTTMS float64
}

// Traceroute is one measured forward path.
type Traceroute struct {
	Src     netsim.Prefix
	Dst     netsim.Prefix
	Day     int
	Hops    []Hop
	Reached bool
	// TruePoPs is the ground-truth PoP sequence; retained for evaluation
	// only and never consulted by the predictor or the atlas builder's
	// inference (the builder works from Hops).
	TruePoPs []netsim.PoPID
}

// Meter issues simulated measurements against one routing day.
type Meter struct {
	day  *bgpsim.Day
	top  *netsim.Topology
	opts Options
	seed uint64
}

// NewMeter creates a measurement harness for the given day view.
func NewMeter(day *bgpsim.Day, opts Options) *Meter {
	s := day.Sim()
	return &Meter{
		day:  day,
		top:  s.Top,
		opts: opts,
		seed: uint64(s.Top.Cfg.Seed)*0x5851f42d4c957f2d + uint64(day.DayNum())*0x14057b7ef767814f,
	}
}

// rngFor derives a deterministic RNG for one measurement so campaigns are
// reproducible regardless of execution order.
func (m *Meter) rngFor(kind uint64, a, b uint64) *rand.Rand {
	h := m.seed ^ kind*0x9e3779b97f4a7c15 ^ a*0xbf58476d1ce4e5b9 ^ b*0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// rngStable is rngFor without the day component, for measurements whose
// outcome must not drift day over day (link latencies are "extremely
// stable" per §6.2 — re-rolling them daily would balloon the deltas).
func (m *Meter) rngStable(kind uint64, a, b uint64) *rand.Rand {
	h := uint64(m.top.Cfg.Seed)*0x5851f42d4c957f2d ^ kind*0x9e3779b97f4a7c15 ^ a*0xbf58476d1ce4e5b9 ^ b*0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// ifaceFor returns the interface revealed when entering PoP p via link l
// (l == -1 for the first hop). The choice is stable: the same ingress
// always shows the same interface.
func (m *Meter) ifaceFor(p netsim.PoPID, l netsim.LinkID) netsim.IP {
	pop := &m.top.PoPs[p]
	if len(pop.Routers) == 0 {
		return 0
	}
	h := uint64(p)*0x9e3779b97f4a7c15 ^ uint64(l+1)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	r := m.top.Routers[pop.Routers[h%uint64(len(pop.Routers))]]
	if len(r.Ifaces) == 0 {
		return 0
	}
	return r.Ifaces[(h>>16)%uint64(len(r.Ifaces))]
}

// popDark reports whether a PoP's routers are consistently unresponsive.
func (m *Meter) popDark(p netsim.PoPID) bool {
	h := uint64(m.top.Cfg.Seed)*0x2545f4914f6cdd1d ^ uint64(p)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return float64(h>>11)/float64(1<<53) < m.opts.DarkRouterProb
}

// Traceroute measures the path from a host in src to the probe host of dst.
func (m *Meter) Traceroute(src, dst netsim.Prefix) Traceroute {
	tr := Traceroute{Src: src, Dst: dst, Day: m.day.DayNum()}
	fwd, ok := m.day.Route(src, dst)
	if !ok {
		return tr
	}
	rng := m.rngFor(1, uint64(src), uint64(dst))
	top := m.top
	accessSrc := top.PrefixAccessMS[src]
	fwdAccum := 0.0
	tr.TruePoPs = fwd.PoPs()
	for i, h := range fwd.Hops {
		if i > 0 {
			fwdAccum += top.Links[h.Link].LatencyMS
		}
		if m.popDark(h.PoP) || rng.Float64() < m.opts.TransientLossProb {
			tr.Hops = append(tr.Hops, Hop{})
			continue
		}
		rev, ok := m.day.PoPPath(h.PoP, src)
		if !ok {
			tr.Hops = append(tr.Hops, Hop{})
			continue
		}
		rtt := 2*accessSrc + fwdAccum + rev.OneWayMS
		rtt *= 1 + m.opts.RTTNoiseFrac*rng.Float64()
		tr.Hops = append(tr.Hops, Hop{IP: m.ifaceFor(h.PoP, h.Link), RTTMS: rtt})
	}
	// Destination host hop.
	if rng.Float64() >= m.opts.UnreachableProb {
		rtt, ok := m.day.RTT(src, dst)
		if ok {
			rtt *= 1 + m.opts.RTTNoiseFrac*rng.Float64()
			tr.Hops = append(tr.Hops, Hop{IP: dst.HostIP(), RTTMS: rtt})
			tr.Reached = true
		}
	}
	return tr
}

// MeasureLoss sends a probe train from src to dst and returns the observed
// loss fraction (probes with no response). Sampling is binomial around the
// true round-trip loss, as with real ICMP trains.
func (m *Meter) MeasureLoss(src, dst netsim.Prefix, probes int) (lossFrac float64, ok bool) {
	p, ok := m.day.RTLoss(src, dst)
	if !ok {
		return 0, false
	}
	rng := m.rngFor(2, uint64(src), uint64(dst))
	lost := 0
	for i := 0; i < probes; i++ {
		if rng.Float64() < p {
			lost++
		}
	}
	return float64(lost) / float64(probes), true
}

// MeasureLinkLatency simulates iNano's symmetric-traversal link latency
// measurement [28]: an unbiased estimate of the link's one-way latency with
// small multiplicative error.
func (m *Meter) MeasureLinkLatency(l netsim.LinkID) float64 {
	rng := m.rngStable(3, uint64(l), 0)
	lat := m.top.Links[l].LatencyMS
	return lat * (1 + 0.04*(rng.Float64()-0.5))
}

// CoarseLinkLatency estimates a link's latency by differencing hop RTTs, as
// the builder must do for links no vantage point was assigned to measure
// directly. Reverse-path asymmetry makes this much noisier than
// MeasureLinkLatency (±30% versus ±2%).
func (m *Meter) CoarseLinkLatency(l netsim.LinkID) float64 {
	rng := m.rngStable(5, uint64(l), 0)
	lat := m.top.Links[l].LatencyMS * (1 + 0.6*(rng.Float64()-0.5))
	if lat < 0.05 {
		lat = 0.05
	}
	return lat
}

// MeasureLinkLoss simulates probing one directed link's loss rate with a
// probe train (achieved by frontier-assigned vantage points in the paper).
func (m *Meter) MeasureLinkLoss(l netsim.LinkID, from netsim.PoPID, probes int) float64 {
	rng := m.rngFor(4, uint64(l), uint64(from))
	p := m.day.Sim().LinkLoss(l, from, m.day.DayNum())
	lost := 0
	for i := 0; i < probes; i++ {
		if rng.Float64() < p {
			lost++
		}
	}
	return float64(lost) / float64(probes)
}

// Campaign is one day's measurement run: every vantage point traceroutes
// every target (paper: 197 PlanetLab nodes x 140K prefixes).
type Campaign struct {
	Day         int
	VPs         []netsim.Prefix
	Targets     []netsim.Prefix
	Traceroutes []Traceroute
}

// RunCampaign traceroutes all targets from all vantage points, in parallel
// across vantage points. Results are deterministic and ordered by (vp,
// target).
func RunCampaign(m *Meter, vps, targets []netsim.Prefix) *Campaign {
	c := &Campaign{Day: m.day.DayNum(), VPs: vps, Targets: targets}
	c.Traceroutes = make([]Traceroute, len(vps)*len(targets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for vi, vp := range vps {
		wg.Add(1)
		sem <- struct{}{}
		go func(vi int, vp netsim.Prefix) {
			defer wg.Done()
			defer func() { <-sem }()
			for ti, dst := range targets {
				c.Traceroutes[vi*len(targets)+ti] = m.Traceroute(vp, dst)
			}
		}(vi, vp)
	}
	wg.Wait()
	return c
}

// SelectVantagePoints picks n edge prefixes spread across the AS population
// to act as PlanetLab-like vantage points (deterministic for a topology).
func SelectVantagePoints(top *netsim.Topology, n int) []netsim.Prefix {
	eps := top.EdgePrefixes
	if n >= len(eps) {
		n = len(eps)
	}
	out := make([]netsim.Prefix, 0, n)
	seen := make(map[netsim.ASN]bool)
	step := len(eps) / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(eps) && len(out) < n; i += step {
		p := eps[i]
		asn := top.PrefixOrigin[p]
		if seen[asn] {
			continue
		}
		seen[asn] = true
		out = append(out, p)
	}
	// Backfill if AS dedup left us short.
	for i := 0; i < len(eps) && len(out) < n; i++ {
		dup := false
		for _, q := range out {
			if q == eps[i] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, eps[i])
		}
	}
	return out
}

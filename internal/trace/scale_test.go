package trace

import (
	"testing"

	"inano/internal/netsim"
)

func scaleTestCampaign(t *testing.T) *ScaleCampaign {
	t.Helper()
	cfg := netsim.DefaultScaleConfig(21)
	cfg.ASes, cfg.Prefixes = 300, 1200
	w := netsim.GenerateScale(cfg)
	vps, clients := w.Population(8, 4)
	return &ScaleCampaign{W: w, VPs: vps, ClientSrcs: clients, ClientDsts: 30}
}

// fingerprint folds a trace into a comparable value without retaining it.
func fingerprint(tr *Traceroute, fromVP bool) uint64 {
	h := uint64(tr.Src)*0x9e3779b97f4a7c15 ^ uint64(tr.Dst)*0xbf58476d1ce4e5b9
	if fromVP {
		h ^= 0xF00F
	}
	for _, hop := range tr.Hops {
		h = h*0x100000001b3 ^ uint64(hop.IP) ^ uint64(int64(hop.RTTMS*1000))
	}
	return h
}

func TestScaleCampaignReEmitsIdentically(t *testing.T) {
	c := scaleTestCampaign(t)
	var a, b []uint64
	c.Run(func(tr *Traceroute, fromVP bool) bool { a = append(a, fingerprint(tr, fromVP)); return true })
	c.Run(func(tr *Traceroute, fromVP bool) bool { b = append(b, fingerprint(tr, fromVP)); return true })
	if len(a) == 0 {
		t.Fatal("campaign emitted nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("passes emitted %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace %d differs between passes", i)
		}
	}
}

func TestScaleCampaignShape(t *testing.T) {
	c := scaleTestCampaign(t)
	w := c.W
	covered := make(map[netsim.Prefix]bool)
	vpTraces, clientTraces := 0, 0
	c.Run(func(tr *Traceroute, fromVP bool) bool {
		if !tr.Reached {
			t.Fatal("scale traces are always reached")
		}
		if len(tr.Hops) < 2 {
			t.Fatalf("trace %v->%v too short", tr.Src, tr.Dst)
		}
		// First hop sits in the source AS, last is the destination host.
		if got := w.ASOfIface(tr.Hops[0].IP); got != w.OriginIdx(tr.Src) {
			t.Fatalf("first hop of %v->%v in AS %d, want source AS", tr.Src, tr.Dst, got)
		}
		if tr.Hops[len(tr.Hops)-1].IP != tr.Dst.HostIP() {
			t.Fatalf("last hop of %v->%v is not the destination host", tr.Src, tr.Dst)
		}
		// RTTs are monotone along the path.
		for i := 1; i < len(tr.Hops); i++ {
			if tr.Hops[i].RTTMS < tr.Hops[i-1].RTTMS {
				t.Fatalf("non-monotone RTT in %v->%v", tr.Src, tr.Dst)
			}
		}
		if fromVP {
			vpTraces++
			covered[tr.Dst] = true
		} else {
			clientTraces++
		}
		truth, ok := c.TrueRTT(tr.Src, tr.Dst)
		if !ok || truth != tr.Hops[len(tr.Hops)-1].RTTMS {
			t.Fatalf("end-to-end RTT of %v->%v disagrees with ground truth", tr.Src, tr.Dst)
		}
		return true
	})
	if vpTraces == 0 || clientTraces == 0 {
		t.Fatalf("campaign planes empty: vp=%d client=%d", vpTraces, clientTraces)
	}
	// Full-coverage mode: every edge prefix is probed at least once
	// (minus the population's own source prefixes, which skip self-pairs
	// but are probed by every other VP anyway).
	for j := 0; j < w.NumPrefixes(); j++ {
		if !covered[w.EdgePrefixAt(j)] {
			t.Fatalf("edge prefix %d never probed", j)
		}
	}
}

func TestScaleCampaignTargetCapAndStop(t *testing.T) {
	c := scaleTestCampaign(t)
	c.TargetsPerVP = 5
	n := 0
	c.Run(func(tr *Traceroute, fromVP bool) bool { n++; return true })
	maxExpected := len(c.VPs)*(5+len(c.VPs)+len(c.ClientSrcs)) + len(c.ClientSrcs)*(c.ClientDsts+len(c.VPs))
	if n == 0 || n > maxExpected {
		t.Fatalf("capped campaign emitted %d traces, want (0, %d]", n, maxExpected)
	}
	// Early stop is honored.
	n = 0
	c.Run(func(tr *Traceroute, fromVP bool) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop after %d traces, want 3", n)
	}
}

package atlas

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// buildTestAtlas runs a small end-to-end measurement campaign and builds an
// atlas from it.
func buildTestAtlas(t testing.TB, seed int64, day int) (*Atlas, *netsim.Topology, *bgpsim.Sim) {
	t.Helper()
	top := netsim.Generate(netsim.TestConfig(seed))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	dv := sim.Day(day)
	m := trace.NewMeter(dv, trace.DefaultOptions())
	vps := trace.SelectVantagePoints(top, 12)
	targets := top.EdgePrefixes
	if len(targets) > 80 {
		targets = targets[:80]
	}
	c := trace.RunCampaign(m, vps, targets)
	a := Build(BuildInput{
		Top:      top,
		Day:      dv,
		Meter:    m,
		VPTraces: c.Traceroutes,
		BGPFeeds: DefaultFeeds(top, 5),

		ClusterCfg: cluster.DefaultConfig(),
	})
	return a, top, sim
}

func TestBuildPopulatesAllDatasets(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 41, 0)
	c := a.Counts()
	if c.Links == 0 {
		t.Error("no links")
	}
	if c.PrefixCluster == 0 {
		t.Error("no prefix->cluster entries")
	}
	if c.PrefixAS == 0 {
		t.Error("no prefix->AS entries")
	}
	if c.ASDegree == 0 {
		t.Error("no AS degrees")
	}
	if c.Tuples == 0 {
		t.Error("no 3-tuples")
	}
	if c.Providers == 0 {
		t.Error("no provider mappings")
	}
	if c.Rels == 0 {
		t.Error("no inferred relationships")
	}
	if a.NumClusters == 0 {
		t.Error("no clusters")
	}
}

func TestBuildLinksAnnotated(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 42, 0)
	for _, l := range a.Links {
		if l.LatencyMS <= 0 {
			t.Fatalf("link %d->%d has latency %v", l.From, l.To, l.LatencyMS)
		}
		if l.Planes == 0 {
			t.Fatalf("link %d->%d has no plane tag", l.From, l.To)
		}
		if int(l.From) >= a.NumClusters || int(l.To) >= a.NumClusters {
			t.Fatalf("link %d->%d outside cluster space %d", l.From, l.To, a.NumClusters)
		}
	}
	for k, loss := range a.Loss {
		if loss < 0.005 || loss > 1 {
			t.Fatalf("recorded loss %v out of range for key %d", loss, k)
		}
		if a.LinkAt(cluster.ClusterID(k>>32), cluster.ClusterID(uint32(k))) < 0 {
			t.Fatalf("loss entry for unknown link %d", k)
		}
	}
}

func TestBuildTuplesCommutative(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 43, 0)
	for k := range a.Tuples {
		x, y, z := UnpackTriple(k)
		if !a.HasTuple(z, y, x) {
			t.Fatalf("tuple (%d,%d,%d) present but reverse missing", x, y, z)
		}
	}
}

func TestBuildPrefsConsistent(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 44, 0)
	for k := range a.Prefs {
		x, y, z := UnpackTriple(k)
		if a.Prefers(x, z, y) {
			t.Fatalf("contradictory preferences (%d: %d>%d) and (%d: %d>%d)", x, y, z, x, z, y)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a1, _, _ := buildTestAtlas(t, 45, 0)
	a2, _, _ := buildTestAtlas(t, 45, 0)
	if a1.Counts() != a2.Counts() {
		t.Fatalf("nondeterministic build: %+v vs %+v", a1.Counts(), a2.Counts())
	}
	for i := range a1.Links {
		if a1.Links[i] != a2.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 46, 0)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != a.Day || got.NumClusters != a.NumClusters {
		t.Fatalf("header mismatch: day %d/%d clusters %d/%d", got.Day, a.Day, got.NumClusters, a.NumClusters)
	}
	if got.Counts() != a.Counts() {
		t.Fatalf("counts mismatch: %+v vs %+v", got.Counts(), a.Counts())
	}
	for i := range a.Links {
		w, g := a.Links[i], got.Links[i]
		if w.From != g.From || w.To != g.To || w.Planes != g.Planes {
			t.Fatalf("link %d mismatch: %+v vs %+v", i, w, g)
		}
		if math.Abs(float64(w.LatencyMS-g.LatencyMS)) > 0.006 {
			t.Fatalf("link %d latency quantization error too large: %v vs %v", i, w.LatencyMS, g.LatencyMS)
		}
	}
	for k := range a.Tuples {
		if !got.Tuples[k] {
			t.Fatalf("tuple %d lost", k)
		}
	}
	for k, v := range a.Rels {
		if got.Rels[k] != v {
			t.Fatalf("rel %d mismatch", k)
		}
	}
	for p, c := range a.PrefixCluster {
		if got.PrefixCluster[p] != c {
			t.Fatalf("prefix %v cluster mismatch", p)
		}
	}
}

// TestCodecRoundTripLargeASN covers ASN values above the decoder's
// record-count sanity limit: 32-bit ASNs (RFC 6793) are legitimate values,
// and the value reader must not confuse them with a hostile record count.
func TestCodecRoundTripLargeASN(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 48, 0)
	const bigASN = netsim.ASN(4_200_000_000) // 32-bit private-use range
	var p netsim.Prefix
	for p = range a.PrefixAS {
		break
	}
	a.PrefixAS[p] = bigASN
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("atlas with 32-bit ASN failed to decode: %v", err)
	}
	if got.PrefixAS[p] != bigASN {
		t.Fatalf("prefix %v AS mismatch: got %d, want %d", p, got.PrefixAS[p], bigASN)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not an atlas"))); err == nil {
		t.Fatal("garbage accepted")
	}
	a, _, _ := buildTestAtlas(t, 47, 0)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncations at various points must error, not panic or hang.
	for _, cut := range []int{10, 50, buf.Len() / 2, buf.Len() - 5} {
		if cut >= buf.Len() {
			continue
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDiffApplyInvariant(t *testing.T) {
	d0, _, _ := buildTestAtlas(t, 48, 0)
	d1, _, _ := buildTestAtlas(t, 48, 1)
	delta := Diff(d0, d1)
	if delta.Entries() == 0 {
		t.Fatal("no delta between consecutive days; churn inert")
	}
	applied := d0.Clone()
	applied.Apply(delta)
	if applied.Day != d1.Day {
		t.Fatalf("day %d after apply, want %d", applied.Day, d1.Day)
	}
	if len(applied.Links) != len(d1.Links) {
		t.Fatalf("links %d after apply, want %d", len(applied.Links), len(d1.Links))
	}
	for i := range d1.Links {
		if applied.Links[i] != d1.Links[i] {
			t.Fatalf("link %d mismatch after apply: %+v vs %+v", i, applied.Links[i], d1.Links[i])
		}
	}
	if len(applied.Loss) != len(d1.Loss) {
		t.Fatalf("loss %d after apply, want %d", len(applied.Loss), len(d1.Loss))
	}
	for k, v := range d1.Loss {
		if applied.Loss[k] != v {
			t.Fatalf("loss %d mismatch", k)
		}
	}
	if len(applied.Tuples) != len(d1.Tuples) {
		t.Fatalf("tuples %d after apply, want %d", len(applied.Tuples), len(d1.Tuples))
	}
	for k := range d1.Tuples {
		if !applied.Tuples[k] {
			t.Fatalf("tuple %d missing after apply", k)
		}
	}
}

func TestDeltaSmallerThanAtlas(t *testing.T) {
	d0, _, _ := buildTestAtlas(t, 49, 0)
	d1, _, _ := buildTestAtlas(t, 49, 1)
	delta := Diff(d0, d1)
	full := d1.EncodedSize()
	ds := delta.EncodedSize()
	if ds == 0 || full == 0 {
		t.Fatal("encoding failed")
	}
	if ds >= full {
		t.Errorf("delta (%d B) not smaller than full atlas (%d B); stationarity broken", ds, full)
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d0, _, _ := buildTestAtlas(t, 50, 0)
	d1, _, _ := buildTestAtlas(t, 50, 1)
	delta := Diff(d0, d1)
	var buf bytes.Buffer
	if err := delta.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromDay != delta.FromDay || got.ToDay != delta.ToDay {
		t.Fatalf("delta header mismatch")
	}
	if len(got.UpLinks) != len(delta.UpLinks) ||
		len(got.DelLinks) != len(delta.DelLinks) ||
		len(got.UpLoss) != len(delta.UpLoss) ||
		len(got.AddTuples) != len(delta.AddTuples) ||
		len(got.DelTuples) != len(delta.DelTuples) {
		t.Fatalf("delta shape mismatch: %d/%d links, %d/%d dels", len(got.UpLinks), len(delta.UpLinks), len(got.DelLinks), len(delta.DelLinks))
	}
	for _, k := range delta.AddTuples {
		found := false
		for _, g := range got.AddTuples {
			if g == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tuple %d lost in delta codec", k)
		}
	}
}

func TestDeltaDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeDelta(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("garbage delta accepted")
	}
}

func TestPackTripleRoundTrip(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x := netsim.ASN(a % MaxASN)
		y := netsim.ASN(b % MaxASN)
		z := netsim.ASN(c % MaxASN)
		ga, gb, gc := UnpackTriple(PackTriple(x, y, z))
		return ga == x && gb == y && gc == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantization(t *testing.T) {
	f := func(raw uint16) bool {
		ms := float32(raw) / 50 // up to ~1310 ms
		got := unquantLat(quantLat(ms))
		return math.Abs(float64(got-ms)) <= 0.005001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(raw uint16) bool {
		l := float32(raw) / 65535
		got := unquantLoss(quantLoss(l))
		return math.Abs(float64(got-l)) <= 0.00005001
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAtIndex(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 51, 0)
	for i, l := range a.Links {
		if got := a.LinkAt(l.From, l.To); got != int32(i) {
			t.Fatalf("LinkAt(%d,%d) = %d, want %d", l.From, l.To, got, i)
		}
	}
	if a.LinkAt(cluster.ClusterID(a.NumClusters+5), 0) != -1 {
		t.Fatal("bogus link found")
	}
}

func TestSectionSizesCoverAtlas(t *testing.T) {
	a, _, _ := buildTestAtlas(t, 52, 0)
	sizes := a.SectionSizes()
	if len(sizes) != numSections {
		t.Fatalf("got %d sections", len(sizes))
	}
	totalEntries := 0
	for _, s := range sizes {
		if s.Compressed <= 0 {
			t.Fatalf("section %s has no bytes", s.Name)
		}
		totalEntries += s.Entries
	}
	if totalEntries == 0 {
		t.Fatal("no entries in any section")
	}
}

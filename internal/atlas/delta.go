package atlas

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// AdjustDecayEpsilonMS is the magnitude below which a decayed client
// residual correction is dropped entirely on a day roll (see Apply);
// it matches the feedback merge's materiality threshold for learning a
// correction in the first place.
const AdjustDecayEpsilonMS = 0.5

// Delta is the day-over-day update shipped to clients. Per §6.2.3 only the
// fast-changing datasets travel daily — links (with re-annotated
// latencies), loss rates, 3-tuples, and the aggregated client corrections;
// everything else refreshes with the monthly full atlas.
type Delta struct {
	// FromDay and ToDay bound the update: a client holding FromDay's
	// atlas applies the delta to reach ToDay.
	FromDay, ToDay int

	// UpLinks adds new links or re-annotates existing ones.
	UpLinks []Link
	// DelLinks removes links by LinkKey.
	DelLinks []uint64

	// UpLoss sets loss rates (keyed by LinkKey); DelLoss clears them.
	UpLoss  map[uint64]float32
	DelLoss []uint64 // LinkKeys whose loss annotation is cleared

	// AddTuples and DelTuples adjust the observed 3-tuple set (PackTriple
	// keys).
	AddTuples []uint64
	DelTuples []uint64

	// UpAdjust sets aggregated per-prefix corrections (GlobalAdjustMS);
	// DelAdjust clears them — a destination nobody reports on any more
	// sheds its correction with the next delta instead of keeping it
	// forever.
	UpAdjust  map[netsim.Prefix]float32
	DelAdjust []uint64 // prefixes whose correction is cleared

	// AddClusterAS grows the cluster space: the owning ASes of the
	// clusters the new day's registry allocated beyond the old day's
	// NumClusters. Registry-stabilized clustering (cluster.Stabilize)
	// keeps surviving IDs identical day over day, so growth is always an
	// append. Without it, delta-shipped links into new clusters — the
	// crowd-observed structure fold among them — would be dead on arrival.
	AddClusterAS []netsim.ASN

	// UpPrefixCluster re-homes or adds prefix attachment entries;
	// DelPrefixCluster (prefix keys) removes them. Attachment entries
	// learned from uploaded hops ride here, and day-over-day re-homing no
	// longer waits for the monthly full atlas.
	UpPrefixCluster  map[netsim.Prefix]cluster.ClusterID
	DelPrefixCluster []uint64

	// UpIfaceCluster/DelIfaceCluster keep the hop-placement table
	// (IfaceCluster) current on delta-following daemons, so an
	// aggregating inanod can clusterize uploaded hops against today's
	// registry without waiting for a full atlas.
	UpIfaceCluster  map[netsim.Prefix]cluster.ClusterID
	DelIfaceCluster []uint64
}

// Diff computes the delta that transforms old's daily datasets into new's.
func Diff(old, next *Atlas) *Delta {
	d := &Delta{
		FromDay:         old.Day,
		ToDay:           next.Day,
		UpLoss:          make(map[uint64]float32),
		UpAdjust:        make(map[netsim.Prefix]float32),
		UpPrefixCluster: make(map[netsim.Prefix]cluster.ClusterID),
		UpIfaceCluster:  make(map[netsim.Prefix]cluster.ClusterID),
	}

	oldLinks := make(map[uint64]Link, len(old.Links))
	for _, l := range old.Links {
		oldLinks[LinkKey(l.From, l.To)] = l
	}
	for _, l := range next.Links {
		k := LinkKey(l.From, l.To)
		if prev, ok := oldLinks[k]; !ok || prev != l {
			d.UpLinks = append(d.UpLinks, l)
		}
		delete(oldLinks, k)
	}
	for k := range oldLinks {
		d.DelLinks = append(d.DelLinks, k)
	}
	sort.Slice(d.DelLinks, func(i, j int) bool { return d.DelLinks[i] < d.DelLinks[j] })

	for k, v := range next.Loss {
		// Comma-ok: a present-but-zero entry still differs from an
		// absent one.
		if ov, ok := old.Loss[k]; !ok || ov != v {
			d.UpLoss[k] = v
		}
	}
	for k := range old.Loss {
		if _, ok := next.Loss[k]; !ok {
			d.DelLoss = append(d.DelLoss, k)
		}
	}
	sort.Slice(d.DelLoss, func(i, j int) bool { return d.DelLoss[i] < d.DelLoss[j] })

	for k := range next.Tuples {
		if !old.Tuples[k] {
			d.AddTuples = append(d.AddTuples, k)
		}
	}
	for k := range old.Tuples {
		if !next.Tuples[k] {
			d.DelTuples = append(d.DelTuples, k)
		}
	}
	sort.Slice(d.AddTuples, func(i, j int) bool { return d.AddTuples[i] < d.AddTuples[j] })
	sort.Slice(d.DelTuples, func(i, j int) bool { return d.DelTuples[i] < d.DelTuples[j] })

	for p, v := range next.GlobalAdjustMS {
		if ov, ok := old.GlobalAdjustMS[p]; !ok || ov != v {
			d.UpAdjust[p] = v
		}
	}
	for p := range old.GlobalAdjustMS {
		if _, ok := next.GlobalAdjustMS[p]; !ok {
			d.DelAdjust = append(d.DelAdjust, uint64(p))
		}
	}
	sort.Slice(d.DelAdjust, func(i, j int) bool { return d.DelAdjust[i] < d.DelAdjust[j] })

	if next.NumClusters > old.NumClusters {
		lo, hi := old.NumClusters, next.NumClusters
		if hi > len(next.ClusterAS) {
			hi = len(next.ClusterAS) // defensive: malformed atlas
		}
		if lo < hi {
			d.AddClusterAS = append([]netsim.ASN(nil), next.ClusterAS[lo:hi]...)
		}
	}
	for p, c := range next.PrefixCluster {
		if oc, ok := old.PrefixCluster[p]; !ok || oc != c {
			d.UpPrefixCluster[p] = c
		}
	}
	for p := range old.PrefixCluster {
		if _, ok := next.PrefixCluster[p]; !ok {
			d.DelPrefixCluster = append(d.DelPrefixCluster, uint64(p))
		}
	}
	sort.Slice(d.DelPrefixCluster, func(i, j int) bool { return d.DelPrefixCluster[i] < d.DelPrefixCluster[j] })
	for p, c := range next.IfaceCluster {
		if oc, ok := old.IfaceCluster[p]; !ok || oc != c {
			d.UpIfaceCluster[p] = c
		}
	}
	for p := range old.IfaceCluster {
		if _, ok := next.IfaceCluster[p]; !ok {
			d.DelIfaceCluster = append(d.DelIfaceCluster, uint64(p))
		}
	}
	sort.Slice(d.DelIfaceCluster, func(i, j int) bool { return d.DelIfaceCluster[i] < d.DelIfaceCluster[j] })
	return d
}

// Entries returns the total record count of the delta.
func (d *Delta) Entries() int {
	return len(d.UpLinks) + len(d.DelLinks) + len(d.UpLoss) + len(d.DelLoss) +
		len(d.AddTuples) + len(d.DelTuples) + len(d.UpAdjust) + len(d.DelAdjust) +
		len(d.AddClusterAS) + len(d.UpPrefixCluster) + len(d.DelPrefixCluster) +
		len(d.UpIfaceCluster) + len(d.DelIfaceCluster)
}

// Apply updates a in place. Applying Diff(a, b) to a makes a's daily
// datasets identical to b's (links, loss, tuples, corrections, cluster
// growth, and prefix attachments; the build-side observed-lifetime tables
// are archive metadata and do not travel).
func (a *Atlas) Apply(d *Delta) {
	// Cluster growth first: everything below may reference the new IDs.
	if len(d.AddClusterAS) > 0 {
		a.ClusterAS = append(a.ClusterAS, d.AddClusterAS...)
		if a.NumClusters < len(a.ClusterAS) {
			a.NumClusters = len(a.ClusterAS)
		}
	}
	del := make(map[uint64]bool, len(d.DelLinks))
	for _, k := range d.DelLinks {
		del[k] = true
	}
	up := make(map[uint64]Link, len(d.UpLinks))
	for _, l := range d.UpLinks {
		up[LinkKey(l.From, l.To)] = l
	}
	kept := a.Links[:0]
	for _, l := range a.Links {
		k := LinkKey(l.From, l.To)
		if del[k] {
			continue
		}
		if nl, ok := up[k]; ok {
			l = nl
			delete(up, k)
		}
		kept = append(kept, l)
	}
	a.Links = kept
	for _, l := range d.UpLinks {
		if _, ok := up[LinkKey(l.From, l.To)]; ok {
			a.Links = append(a.Links, l)
		}
	}
	sort.Slice(a.Links, func(i, j int) bool {
		if a.Links[i].From != a.Links[j].From {
			return a.Links[i].From < a.Links[j].From
		}
		return a.Links[i].To < a.Links[j].To
	})

	for _, k := range d.DelLoss {
		delete(a.Loss, k)
	}
	for k, v := range d.UpLoss {
		a.Loss[k] = v
	}
	for _, k := range d.DelTuples {
		delete(a.Tuples, k)
	}
	for _, k := range d.AddTuples {
		a.Tuples[k] = true
	}
	if a.GlobalAdjustMS == nil && len(d.UpAdjust) > 0 {
		a.GlobalAdjustMS = make(map[netsim.Prefix]float32, len(d.UpAdjust))
	}
	for _, k := range d.DelAdjust {
		delete(a.GlobalAdjustMS, netsim.Prefix(k))
	}
	for p, v := range d.UpAdjust {
		a.GlobalAdjustMS[p] = v
	}
	for _, k := range d.DelPrefixCluster {
		delete(a.PrefixCluster, netsim.Prefix(k))
	}
	for p, c := range d.UpPrefixCluster {
		if c < 0 || int(c) >= a.NumClusters {
			continue // defensive: never attach outside the cluster space
		}
		a.PrefixCluster[p] = c
	}
	if a.IfaceCluster == nil && len(d.UpIfaceCluster) > 0 {
		a.IfaceCluster = make(map[netsim.Prefix]cluster.ClusterID, len(d.UpIfaceCluster))
	}
	for _, k := range d.DelIfaceCluster {
		delete(a.IfaceCluster, netsim.Prefix(k))
	}
	for p, c := range d.UpIfaceCluster {
		if c < 0 || int(c) >= a.NumClusters {
			continue
		}
		a.IfaceCluster[p] = c
	}
	// Age client-learned residual corrections across the day roll: a
	// correction learned against day N's structure says progressively less
	// about later days' (the delta may even ship the aggregated fix for
	// the same misprediction, which a surviving local correction would
	// double-count). Halve per roll, drop below the materiality epsilon —
	// a correction the host keeps re-earning stays, an abandoned one is
	// gone within a few days instead of misadjusting day N+30.
	if d.ToDay != d.FromDay {
		for k, v := range a.AdjustMS {
			v /= 2
			if v < AdjustDecayEpsilonMS && v > -AdjustDecayEpsilonMS {
				delete(a.AdjustMS, k)
				continue
			}
			a.AdjustMS[k] = v
		}
	}
	a.Day = d.ToDay
	a.invalidateIndex()
}

const deltaMagic = "INANODLT"

// Encode writes the delta as a gzip-compressed binary stream.
func (d *Delta) Encode(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write([]byte(deltaMagic)); err != nil {
		return err
	}
	var sw sectionWriter
	sw.uvarint(atlasVersion)
	sw.uvarint(uint64(d.FromDay))
	sw.uvarint(uint64(d.ToDay))

	sw.uvarint(uint64(len(d.UpLinks)))
	prevFrom := uint64(0)
	links := append([]Link(nil), d.UpLinks...)
	sort.Slice(links, func(i, j int) bool {
		return LinkKey(links[i].From, links[i].To) < LinkKey(links[j].From, links[j].To)
	})
	for _, l := range links {
		f := uint64(uint32(l.From))
		sw.uvarint(f - prevFrom)
		prevFrom = f
		sw.uvarint(uint64(uint32(l.To)))
		sw.uvarint(quantLat(l.LatencyMS))
		sw.uvarint(uint64(l.Planes))
	}
	writeDeltaKeys(&sw, d.DelLinks)

	lossKeys := sortedKeysF32(d.UpLoss)
	sw.uvarint(uint64(len(lossKeys)))
	prev := uint64(0)
	for _, k := range lossKeys {
		sw.uvarint(k - prev)
		prev = k
		sw.uvarint(quantLoss(d.UpLoss[k]))
	}
	writeDeltaKeys(&sw, d.DelLoss)
	writeDeltaKeys(&sw, d.AddTuples)
	writeDeltaKeys(&sw, d.DelTuples)
	writePrefixF32(&sw, d.UpAdjust)
	writeDeltaKeys(&sw, d.DelAdjust)

	sw.uvarint(uint64(len(d.AddClusterAS)))
	for _, asn := range d.AddClusterAS {
		sw.uvarint(uint64(asn))
	}
	writePrefixClusterMap(&sw, d.UpPrefixCluster)
	writeDeltaKeys(&sw, d.DelPrefixCluster)
	writePrefixClusterMap(&sw, d.UpIfaceCluster)
	writeDeltaKeys(&sw, d.DelIfaceCluster)

	if _, err := gz.Write(sw.buf.Bytes()); err != nil {
		return err
	}
	return gz.Close()
}

func writeDeltaKeys(sw *sectionWriter, keys []uint64) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sw.uvarint(uint64(len(sorted)))
	prev := uint64(0)
	for _, k := range sorted {
		sw.uvarint(k - prev)
		prev = k
	}
}

func readDeltaKeys(sr *sectionReader) ([]uint64, error) {
	n, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		prev += d
		out = append(out, prev)
	}
	return out, nil
}

// DecodeDelta reads a delta produced by Encode.
func DecodeDelta(r io.Reader) (*Delta, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("atlas: not a compressed delta: %w", err)
	}
	defer gz.Close()
	br := bufio.NewReader(gz)
	magic := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("atlas: truncated delta header: %w", err)
	}
	if string(magic) != deltaMagic {
		return nil, fmt.Errorf("atlas: bad delta magic %q", magic)
	}
	sr := &sectionReader{r: br}
	ver, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != atlasVersion {
		return nil, fmt.Errorf("atlas: unsupported delta version %d", ver)
	}
	d := &Delta{UpLoss: make(map[uint64]float32)}
	from, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	to, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	d.FromDay, d.ToDay = int(from), int(to)

	n, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	prevFrom := uint64(0)
	for i := uint64(0); i < n; i++ {
		df, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		prevFrom += df
		to, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		lat, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		planes, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		d.UpLinks = append(d.UpLinks, Link{
			From:      cluster.ClusterID(uint32(prevFrom)),
			To:        cluster.ClusterID(uint32(to)),
			LatencyMS: unquantLat(lat),
			Planes:    uint8(planes),
		})
	}
	if d.DelLinks, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	n, err = sr.uvarint()
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		dk, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		prev += dk
		q, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		d.UpLoss[prev] = unquantLoss(q)
	}
	if d.DelLoss, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	if d.AddTuples, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	if d.DelTuples, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	d.UpAdjust = make(map[netsim.Prefix]float32)
	if err := readPrefixF32(sr, d.UpAdjust); err != nil {
		return nil, err
	}
	for p, v := range d.UpAdjust {
		if v > MaxObservationFoldMS+0.01 || v < -MaxObservationFoldMS-0.01 {
			return nil, fmt.Errorf("atlas: delta correction for %v is %.2f ms, outside ±%v bound", p, v, MaxObservationFoldMS)
		}
	}
	if d.DelAdjust, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	n, err = sr.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		d.AddClusterAS = make([]netsim.ASN, 0, allocHint(n))
		for i := uint64(0); i < n; i++ {
			asn, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			d.AddClusterAS = append(d.AddClusterAS, netsim.ASN(asn))
		}
	}
	d.UpPrefixCluster = make(map[netsim.Prefix]cluster.ClusterID)
	if err := readPrefixClusterMap(sr, d.UpPrefixCluster); err != nil {
		return nil, err
	}
	if d.DelPrefixCluster, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	d.UpIfaceCluster = make(map[netsim.Prefix]cluster.ClusterID)
	if err := readPrefixClusterMap(sr, d.UpIfaceCluster); err != nil {
		return nil, err
	}
	if d.DelIfaceCluster, err = readDeltaKeys(sr); err != nil {
		return nil, err
	}
	if n, err := io.Copy(io.Discard, br); err != nil {
		return nil, fmt.Errorf("atlas: corrupt delta trailer: %w", err)
	} else if n != 0 {
		return nil, fmt.Errorf("atlas: %d bytes of trailing garbage in delta", n)
	}
	return d, nil
}

// EncodedSize returns the compressed delta size in bytes.
func (d *Delta) EncodedSize() int {
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return 0
	}
	return buf.Len()
}

//go:build !unix

package atlas

import "os"

// mmapFile fallback for platforms without a usable mmap: read the file
// into memory. Startup loses the O(1)/shared-pages property but the
// serving behavior is identical (parseFlat aliases the private buffer).
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

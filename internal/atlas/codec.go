package atlas

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// The wire format is a gzip stream over: magic, version, day, cluster count,
// then one section per dataset. Sections carry sorted, delta-encoded varint
// records; latencies quantize to 0.01 ms and loss rates to 0.01%, matching
// the paper's "pocket-sized" representation goals.
const (
	atlasMagic = "INANOATL"
	// atlasVersion 2 added the aggregated-corrections dataset
	// (GlobalAdjustMS) to both the atlas and the delta streams.
	// atlasVersion 3 added the crowd-observed structure fold: the
	// observed-link and observed-attachment TTL sections in the atlas
	// stream, and cluster growth + prefix-attachment updates in the delta
	// stream, so structure learned from uploaded traceroute hops ships to
	// delta-following clients.
	atlasVersion = 3

	// maxDecodedBytes caps how far Decode will inflate a stream. Real
	// atlases decompress to tens of megabytes; the cap only exists so a
	// corrupt or hostile stream (a gzip bomb) fails with an error instead
	// of exhausting memory.
	maxDecodedBytes = 64 << 20
	// maxSectionRecords bounds any one section's declared record count —
	// orders of magnitude above a real atlas (the paper's full atlas holds
	// low millions of entries), but small enough that a lying count is
	// rejected before the decoder does any work on it.
	maxSectionRecords = 1 << 22
)

// Section identifiers (also the keys of SectionSizes).
const (
	secClusterAS = iota
	secLinks
	secLoss
	secPrefixCluster
	secPrefixAS
	secASDegree
	secTuples
	secPrefs
	secProviders
	secRels
	secLateExit
	secGlobalAdjust
	secObservedLink
	secObservedAttach
	secIfaceCluster
	numSections
)

// SectionName returns the human-readable dataset name used in Table 2.
func SectionName(sec int) string {
	switch sec {
	case secClusterAS:
		return "Cluster to AS"
	case secLinks:
		return "Inter-cluster links with latencies"
	case secLoss:
		return "Link loss rates"
	case secPrefixCluster:
		return "Prefix to cluster"
	case secPrefixAS:
		return "Prefix to AS"
	case secASDegree:
		return "AS degrees"
	case secTuples:
		return "AS three-tuples"
	case secPrefs:
		return "AS preferences"
	case secProviders:
		return "Provider mappings"
	case secRels:
		return "AS relationships"
	case secLateExit:
		return "Late-exit pairs"
	case secGlobalAdjust:
		return "Aggregated corrections"
	case secObservedLink:
		return "Observed-link lifetimes"
	case secObservedAttach:
		return "Observed-attachment lifetimes"
	case secIfaceCluster:
		return "Interface prefix to cluster"
	default:
		return fmt.Sprintf("section %d", sec)
	}
}

type sectionWriter struct {
	buf bytes.Buffer
}

func (w *sectionWriter) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

type sectionReader struct {
	r *bufio.Reader
}

func (r *sectionReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r.r)
}

// count reads a record count and rejects implausible values.
func (r *sectionReader) count() (uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > maxSectionRecords {
		return 0, fmt.Errorf("record count %d exceeds limit %d", n, int64(maxSectionRecords))
	}
	return n, nil
}

// allocHint bounds slice preallocation from an untrusted record count. A
// corrupted stream can claim billions of records; since every record costs
// at least one stream byte, lying counts hit EOF quickly — but only if we
// grow with append instead of allocating the claimed size up front.
func allocHint(n uint64) int {
	const maxHint = 1 << 16
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

// quantLat converts latency milliseconds to 0.01 ms wire units.
func quantLat(ms float32) uint64 {
	if ms < 0 {
		return 0
	}
	return uint64(ms*100 + 0.5)
}

func unquantLat(u uint64) float32 { return float32(u) / 100 }

// quantLoss converts a loss rate to 0.01% wire units.
func quantLoss(l float32) uint64 {
	if l < 0 {
		return 0
	}
	if l > 1 {
		l = 1
	}
	return uint64(l*10000 + 0.5)
}

func unquantLoss(u uint64) float32 { return float32(u) / 10000 }

// quantAdj converts a signed correction to zigzagged 0.01 ms wire units.
func quantAdj(ms float32) uint64 {
	var q int64
	if ms >= 0 {
		q = int64(ms*100 + 0.5)
	} else {
		q = int64(ms*100 - 0.5)
	}
	return zigzag(q)
}

func unquantAdj(u uint64) float32 { return float32(unzigzag(u)) / 100 }

// zigzag maps a signed value to an unsigned one with small magnitudes
// staying small (varint-friendly): 0,-1,1,-2,2 -> 0,1,2,3,4.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// writePrefixF32 writes a prefix-keyed float32 map as sorted delta-coded
// keys with zigzag-quantized values.
func writePrefixF32(w *sectionWriter, m map[netsim.Prefix]float32) {
	keys := make([]netsim.Prefix, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for _, p := range keys {
		w.uvarint(uint64(p) - prev)
		prev = uint64(p)
		w.uvarint(quantAdj(m[p]))
	}
}

// readPrefixF32 reads a map written by writePrefixF32.
func readPrefixF32(r *sectionReader, into map[netsim.Prefix]float32) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += d
		q, err := r.uvarint()
		if err != nil {
			return err
		}
		into[netsim.Prefix(prev)] = unquantAdj(q)
	}
	return nil
}

// writeKeyU8 writes a uint64-keyed uint8 map as sorted delta-coded keys
// with uvarint values.
func writeKeyU8(w *sectionWriter, m map[uint64]uint8) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for _, k := range keys {
		w.uvarint(k - prev)
		prev = k
		w.uvarint(uint64(m[k]))
	}
}

// readKeyU8 reads a map written by writeKeyU8.
func readKeyU8(r *sectionReader, set func(k uint64, v uint8)) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += d
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		set(prev, uint8(v))
	}
	return nil
}

// writePrefixClusterMap writes a prefix -> cluster map as sorted
// delta-coded keys with uvarint cluster IDs.
func writePrefixClusterMap(w *sectionWriter, m map[netsim.Prefix]cluster.ClusterID) {
	keys := make([]netsim.Prefix, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for _, p := range keys {
		w.uvarint(uint64(p) - prev)
		prev = uint64(p)
		w.uvarint(uint64(uint32(m[p])))
	}
}

// readPrefixClusterMap reads a map written by writePrefixClusterMap.
func readPrefixClusterMap(r *sectionReader, into map[netsim.Prefix]cluster.ClusterID) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += d
		c, err := r.uvarint()
		if err != nil {
			return err
		}
		into[netsim.Prefix(prev)] = cluster.ClusterID(uint32(c))
	}
	return nil
}

// encodeSection renders one dataset into w.
func (a *Atlas) encodeSection(sec int, w *sectionWriter) {
	switch sec {
	case secClusterAS:
		w.uvarint(uint64(len(a.ClusterAS)))
		for _, asn := range a.ClusterAS {
			w.uvarint(uint64(asn))
		}
	case secLinks:
		w.uvarint(uint64(len(a.Links)))
		prevFrom := uint64(0)
		for _, l := range a.Links {
			f := uint64(uint32(l.From))
			w.uvarint(f - prevFrom) // Links are sorted by From
			prevFrom = f
			w.uvarint(uint64(uint32(l.To)))
			w.uvarint(quantLat(l.LatencyMS))
			w.uvarint(uint64(l.Planes))
		}
	case secLoss:
		keys := sortedKeysF32(a.Loss)
		w.uvarint(uint64(len(keys)))
		prev := uint64(0)
		for _, k := range keys {
			w.uvarint(k - prev)
			prev = k
			w.uvarint(quantLoss(a.Loss[k]))
		}
	case secPrefixCluster:
		writePrefixClusterMap(w, a.PrefixCluster)
	case secPrefixAS:
		keys := make([]netsim.Prefix, 0, len(a.PrefixAS))
		for p := range a.PrefixAS {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.uvarint(uint64(len(keys)))
		prev := uint64(0)
		for _, p := range keys {
			w.uvarint(uint64(p) - prev)
			prev = uint64(p)
			w.uvarint(uint64(a.PrefixAS[p]))
		}
	case secASDegree:
		keys := make([]netsim.ASN, 0, len(a.ASDegree))
		for asn := range a.ASDegree {
			keys = append(keys, asn)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.uvarint(uint64(len(keys)))
		prev := uint64(0)
		for _, asn := range keys {
			w.uvarint(uint64(asn) - prev)
			prev = uint64(asn)
			w.uvarint(uint64(a.ASDegree[asn]))
		}
	case secTuples:
		writeSortedSet(w, a.Tuples)
	case secPrefs:
		writeSortedSet(w, a.Prefs)
	case secProviders:
		keys := make([]netsim.ASN, 0, len(a.Providers))
		for asn := range a.Providers {
			keys = append(keys, asn)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.uvarint(uint64(len(keys)))
		prev := uint64(0)
		for _, asn := range keys {
			w.uvarint(uint64(asn) - prev)
			prev = uint64(asn)
			ps := a.Providers[asn]
			w.uvarint(uint64(len(ps)))
			pp := uint64(0)
			for _, p := range ps { // builder keeps these sorted
				w.uvarint(uint64(p) - pp)
				pp = uint64(p)
			}
		}
	case secRels:
		keys := make([]uint64, 0, len(a.Rels))
		for k := range a.Rels {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.uvarint(uint64(len(keys)))
		prev := uint64(0)
		for _, k := range keys {
			w.uvarint(k - prev)
			prev = k
			w.uvarint(uint64(uint8(a.Rels[k])))
		}
	case secLateExit:
		writeSortedSet(w, a.LateExit)
	case secGlobalAdjust:
		writePrefixF32(w, a.GlobalAdjustMS)
	case secObservedLink:
		writeKeyU8(w, a.ObservedLinks)
	case secObservedAttach:
		m := make(map[uint64]uint8, len(a.ObservedAttach))
		for p, v := range a.ObservedAttach {
			m[uint64(p)] = v
		}
		writeKeyU8(w, m)
	case secIfaceCluster:
		writePrefixClusterMap(w, a.IfaceCluster)
	}
}

func sortedKeysF32(m map[uint64]float32) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedSet(m map[uint64]bool) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func writeSortedSet(w *sectionWriter, m map[uint64]bool) {
	keys := sortedSet(m)
	w.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for _, k := range keys {
		w.uvarint(k - prev)
		prev = k
	}
}

func readSet(r *sectionReader, into map[uint64]bool) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += d
		into[prev] = true
	}
	return nil
}

func (a *Atlas) decodeSection(sec int, r *sectionReader) error {
	switch sec {
	case secClusterAS:
		n, err := r.count()
		if err != nil {
			return err
		}
		a.ClusterAS = make([]netsim.ASN, 0, allocHint(n))
		for i := uint64(0); i < n; i++ {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			a.ClusterAS = append(a.ClusterAS, netsim.ASN(v))
		}
	case secLinks:
		n, err := r.count()
		if err != nil {
			return err
		}
		a.Links = make([]Link, 0, allocHint(n))
		prevFrom := uint64(0)
		for i := uint64(0); i < n; i++ {
			df, err := r.uvarint()
			if err != nil {
				return err
			}
			prevFrom += df
			to, err := r.uvarint()
			if err != nil {
				return err
			}
			lat, err := r.uvarint()
			if err != nil {
				return err
			}
			planes, err := r.uvarint()
			if err != nil {
				return err
			}
			a.Links = append(a.Links, Link{
				From:      cluster.ClusterID(uint32(prevFrom)),
				To:        cluster.ClusterID(uint32(to)),
				LatencyMS: unquantLat(lat),
				Planes:    uint8(planes),
			})
		}
	case secLoss:
		n, err := r.count()
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += d
			q, err := r.uvarint()
			if err != nil {
				return err
			}
			a.Loss[prev] = unquantLoss(q)
		}
	case secPrefixCluster:
		return readPrefixClusterMap(r, a.PrefixCluster)
	case secPrefixAS:
		n, err := r.count()
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += d
			asn, err := r.uvarint()
			if err != nil {
				return err
			}
			a.PrefixAS[netsim.Prefix(prev)] = netsim.ASN(asn)
		}
	case secASDegree:
		n, err := r.count()
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += d
			deg, err := r.uvarint()
			if err != nil {
				return err
			}
			a.ASDegree[netsim.ASN(prev)] = int32(deg)
		}
	case secTuples:
		return readSet(r, a.Tuples)
	case secPrefs:
		return readSet(r, a.Prefs)
	case secProviders:
		n, err := r.count()
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += d
			cnt, err := r.count()
			if err != nil {
				return err
			}
			ps := make([]netsim.ASN, 0, allocHint(cnt))
			pp := uint64(0)
			for j := uint64(0); j < cnt; j++ {
				dp, err := r.uvarint()
				if err != nil {
					return err
				}
				pp += dp
				ps = append(ps, netsim.ASN(pp))
			}
			a.Providers[netsim.ASN(prev)] = ps
		}
	case secRels:
		n, err := r.count()
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += d
			rel, err := r.uvarint()
			if err != nil {
				return err
			}
			a.Rels[prev] = netsim.Rel(int8(rel))
		}
	case secLateExit:
		return readSet(r, a.LateExit)
	case secGlobalAdjust:
		return readPrefixF32(r, a.GlobalAdjustMS)
	case secObservedLink:
		return readKeyU8(r, func(k uint64, v uint8) { a.ObservedLinks[k] = v })
	case secObservedAttach:
		return readKeyU8(r, func(k uint64, v uint8) { a.ObservedAttach[netsim.Prefix(k)] = v })
	case secIfaceCluster:
		return readPrefixClusterMap(r, a.IfaceCluster)
	}
	return nil
}

// Encode writes the atlas as a gzip-compressed binary stream.
func (a *Atlas) Encode(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write([]byte(atlasMagic)); err != nil {
		return err
	}
	var hdr sectionWriter
	hdr.uvarint(atlasVersion)
	hdr.uvarint(uint64(a.Day))
	hdr.uvarint(uint64(a.NumClusters))
	if _, err := gz.Write(hdr.buf.Bytes()); err != nil {
		return err
	}
	for sec := 0; sec < numSections; sec++ {
		var sw sectionWriter
		sw.uvarint(uint64(sec))
		a.encodeSection(sec, &sw)
		if _, err := gz.Write(sw.buf.Bytes()); err != nil {
			return err
		}
	}
	return gz.Close()
}

// Decode reads an atlas produced by Encode. It fails with a descriptive
// error on malformed or truncated input.
func Decode(r io.Reader) (*Atlas, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("atlas: not a compressed atlas: %w", err)
	}
	defer gz.Close()
	// One byte of headroom so a stream of exactly maxDecodedBytes is not
	// misreported as over-limit (N==0 below). Streams far past the limit
	// usually surface earlier as truncated-section or trailing-garbage
	// errors once the LimitedReader runs dry; the N==0 check catches the
	// ones that end right at the boundary.
	lr := &io.LimitedReader{R: gz, N: maxDecodedBytes + 1}
	br := bufio.NewReader(lr)
	magic := make([]byte, len(atlasMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("atlas: truncated header: %w", err)
	}
	if string(magic) != atlasMagic {
		return nil, fmt.Errorf("atlas: bad magic %q", magic)
	}
	sr := &sectionReader{r: br}
	ver, err := sr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("atlas: truncated version: %w", err)
	}
	if ver != atlasVersion {
		return nil, fmt.Errorf("atlas: unsupported version %d", ver)
	}
	a := New()
	day, err := sr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("atlas: truncated day: %w", err)
	}
	a.Day = int(day)
	nc, err := sr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("atlas: truncated cluster count: %w", err)
	}
	a.NumClusters = int(nc)
	for i := 0; i < numSections; i++ {
		sec, err := sr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("atlas: truncated at section %d: %w", i, err)
		}
		if sec >= numSections {
			return nil, fmt.Errorf("atlas: unknown section id %d", sec)
		}
		if err := a.decodeSection(int(sec), sr); err != nil {
			return nil, fmt.Errorf("atlas: section %s: %w", SectionName(int(sec)), err)
		}
	}
	// Drain to EOF so the gzip checksum is verified and truncated
	// trailers are caught.
	if n, err := io.Copy(io.Discard, br); err != nil {
		return nil, fmt.Errorf("atlas: corrupt stream trailer: %w", err)
	} else if n != 0 {
		return nil, fmt.Errorf("atlas: %d bytes of trailing garbage", n)
	}
	if lr.N == 0 {
		return nil, fmt.Errorf("atlas: stream exceeds %d-byte decode limit", int64(maxDecodedBytes))
	}
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("atlas: %w", err)
	}
	a.invalidateIndex()
	return a, nil
}

// validate rejects decoded atlases whose cross-references are inconsistent
// — corruption the per-section decoders cannot see. Consumers (the engine,
// Clone, Diff) index ClusterAS and Links by cluster ID, so these
// invariants are what make a decoded atlas safe to use.
func (a *Atlas) validate() error {
	if a.NumClusters < 0 || a.NumClusters != len(a.ClusterAS) {
		return fmt.Errorf("cluster count %d does not match AS table size %d", a.NumClusters, len(a.ClusterAS))
	}
	for i, l := range a.Links {
		if int(l.From) >= a.NumClusters || int(l.To) >= a.NumClusters || l.From < 0 || l.To < 0 {
			return fmt.Errorf("link %d endpoints (%d,%d) outside cluster space %d", i, l.From, l.To, a.NumClusters)
		}
		if l.Planes&^PlaneMask != 0 {
			return fmt.Errorf("link %d carries undefined plane bits %#x", i, l.Planes)
		}
	}
	for p, c := range a.PrefixCluster {
		if int(c) >= a.NumClusters || c < 0 {
			return fmt.Errorf("prefix %v attaches to cluster %d outside cluster space %d", p, c, a.NumClusters)
		}
	}
	for p, c := range a.IfaceCluster {
		if int(c) >= a.NumClusters || c < 0 {
			return fmt.Errorf("interface prefix %v maps to cluster %d outside cluster space %d", p, c, a.NumClusters)
		}
	}
	for p, ms := range a.GlobalAdjustMS {
		// The fold clamps to ±MaxObservationFoldMS; anything past the
		// bound (plus quantization slack) is a forged or corrupt stream.
		if ms > MaxObservationFoldMS+0.01 || ms < -MaxObservationFoldMS-0.01 {
			return fmt.Errorf("prefix %v correction %.2f ms outside ±%v bound", p, ms, MaxObservationFoldMS)
		}
	}
	// Crowd-observed lifetimes: the fold never writes TTLs above
	// ObservedTTLDays, so a larger value is a forged stream trying to make
	// unsupported structure immortal.
	for k, ttl := range a.ObservedLinks {
		if ttl == 0 || ttl > ObservedTTLDays {
			return fmt.Errorf("observed link %#x lifetime %d outside 1..%d", k, ttl, ObservedTTLDays)
		}
	}
	for p, ttl := range a.ObservedAttach {
		if ttl == 0 || ttl > ObservedTTLDays {
			return fmt.Errorf("observed attachment %v lifetime %d outside 1..%d", p, ttl, ObservedTTLDays)
		}
	}
	return nil
}

// SectionSize describes one dataset's footprint (a row of Table 2).
type SectionSize struct {
	Name       string // dataset name as written in the section header
	Entries    int    // number of entries in the dataset
	Compressed int    // bytes after per-section gzip
}

// SectionSizes reports per-dataset entry counts and compressed sizes, the
// data behind Table 2.
func (a *Atlas) SectionSizes() []SectionSize {
	counts := a.Counts()
	entries := []int{
		secClusterAS:      len(a.ClusterAS),
		secLinks:          counts.Links,
		secLoss:           counts.Loss,
		secPrefixCluster:  counts.PrefixCluster,
		secPrefixAS:       counts.PrefixAS,
		secASDegree:       counts.ASDegree,
		secTuples:         counts.Tuples,
		secPrefs:          counts.Prefs,
		secProviders:      counts.Providers,
		secRels:           counts.Rels,
		secLateExit:       counts.LateExit,
		secGlobalAdjust:   len(a.GlobalAdjustMS),
		secObservedLink:   len(a.ObservedLinks),
		secObservedAttach: len(a.ObservedAttach),
		secIfaceCluster:   len(a.IfaceCluster),
	}
	out := make([]SectionSize, 0, numSections)
	for sec := 0; sec < numSections; sec++ {
		var sw sectionWriter
		a.encodeSection(sec, &sw)
		var gzBuf bytes.Buffer
		gz := gzip.NewWriter(&gzBuf)
		gz.Write(sw.buf.Bytes()) //nolint:errcheck // bytes.Buffer cannot fail
		gz.Close()               //nolint:errcheck
		out = append(out, SectionSize{
			Name:       SectionName(sec),
			Entries:    entries[sec],
			Compressed: gzBuf.Len(),
		})
	}
	return out
}

// EncodedSize returns the total compressed atlas size in bytes.
func (a *Atlas) EncodedSize() int {
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return 0
	}
	return buf.Len()
}

package atlas

import (
	"math/bits"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Eytzinger-layout search index over a sorted key table.
//
// The flat atlas's lookup tables are sorted parallel slices, and a plain
// binary search over a sorted slice touches a new cache line on almost
// every probe: the first few midpoints are far apart, so nothing the
// previous query loaded helps the next one. Laying the same keys out in
// BFS (Eytzinger) order fixes that — the first levels of the implicit
// tree pack into a handful of cache lines shared by *every* search, and
// the descent is branch-free (the comparison folds into the slot
// arithmetic, so the branch predictor has nothing to mispredict). Each
// node carries its value alongside its key, so a hit costs no second
// lookup into the sorted value slices at all — one array, one walk.
//
// The index is derived, never serialized: the sorted slices remain the
// canonical form (the INANOFL1 codec, mmap aliasing, and Inflate are all
// untouched), and buildIndex reconstructs the Eytzinger arrays from them
// after Compile or after a flat file is decoded.
type eytIndex[K ~uint32 | ~uint64, V any] struct {
	// nodes is the sorted table permuted into 1-based BFS order;
	// nodes[0] is an unused sentinel so slot arithmetic starts at 1.
	nodes []eytNode[K, V]
}

type eytNode[K ~uint32 | ~uint64, V any] struct {
	key K
	val V
}

// newEytIndex builds the index over sorted (strictly ascending) keys and
// their parallel values. vals may be nil (existence-only sets): every
// node then carries the zero V, which for V = struct{} occupies nothing.
func newEytIndex[K ~uint32 | ~uint64, V any](keys []K, vals []V) eytIndex[K, V] {
	n := len(keys)
	e := eytIndex[K, V]{nodes: make([]eytNode[K, V], n+1)}
	// In-order traversal of the implicit BFS tree visits slots in sorted
	// key order, so walking it while consuming `keys` left to right
	// places every entry at its Eytzinger position.
	next := 0
	var fill func(slot int)
	fill = func(slot int) {
		if slot > n {
			return
		}
		fill(2 * slot)
		e.nodes[slot].key = keys[next]
		if vals != nil {
			e.nodes[slot].val = vals[next]
		}
		next++
		fill(2*slot + 1)
	}
	fill(1)
	return e
}

// built reports whether the index was constructed (an empty table still
// counts: its nodes slice holds the sentinel). The accessors fall back
// to plain binary search over the sorted slices when it is false, so a
// Flat assembled without buildIndex — hand-built in a test, say — still
// answers correctly.
func (e *eytIndex[K, V]) built() bool { return len(e.nodes) > 0 }

// ceil returns the smallest key >= k with its value — the lower bound.
// ok is false when every key is smaller (or the table is empty).
//
// The descent is branch-free: the comparison result is folded into the
// slot arithmetic (compiled to a conditional move, nothing for the
// branch predictor to mispredict). On exit, slot's trailing one-bits are
// the right-turns taken since the lower bound was last visited;
// shifting them off (plus one) lands back on it.
func (e *eytIndex[K, V]) ceil(k K) (K, V, bool) {
	nodes := e.nodes
	n := uint(len(nodes))
	slot := uint(1)
	for slot < n {
		// bits.Sub64's borrow is the unsigned key<k comparison as an
		// integer — an SBB instruction, no branch anywhere in the loop.
		_, lt := bits.Sub64(uint64(nodes[slot].key), uint64(k), 0)
		slot = 2*slot + uint(lt)
	}
	slot >>= uint(bits.TrailingZeros(^slot)) + 1
	if slot == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	nd := &nodes[slot]
	return nd.key, nd.val, true
}

// find returns the value stored under exactly k.
func (e *eytIndex[K, V]) find(k K) (V, bool) {
	key, v, ok := e.ceil(k)
	if !ok || key != k {
		var zv V
		return zv, false
	}
	return v, true
}

// contains reports whether exactly k is present.
func (e *eytIndex[K, V]) contains(k K) bool {
	key, _, ok := e.ceil(k)
	return ok && key == k
}

// adjustVal is the payload of the correction index: both residual terms
// of one destination prefix in a single node.
type adjustVal struct {
	global, local float32
}

// flatIndex bundles the derived search indexes of one Flat: every sorted
// table the serving path probes, in Eytzinger layout.
type flatIndex struct {
	prefixCl eytIndex[netsim.Prefix, cluster.ClusterID]
	prefixAS eytIndex[netsim.Prefix, netsim.ASN]
	iface    eytIndex[netsim.Prefix, cluster.ClusterID]
	adjust   eytIndex[netsim.Prefix, adjustVal]
	tuples   eytIndex[uint64, struct{}]
	prefs    eytIndex[uint64, struct{}]
	provs    eytIndex[uint64, struct{}]
	rels     eytIndex[uint64, netsim.Rel]
}

// buildIndex (re)derives the Eytzinger search indexes from the sorted
// key tables. Compile and the flat codec's decode path both call it
// before the Flat is published; after that the Flat (index included) is
// immutable.
func (f *Flat) buildIndex() {
	f.idx.prefixCl = newEytIndex(f.PrefixClKeys, f.PrefixClVals)
	f.idx.prefixAS = newEytIndex(f.PrefixASKeys, f.PrefixASVals)
	f.idx.iface = newEytIndex(f.IfaceKeys, f.IfaceVals)
	adj := make([]adjustVal, len(f.AdjustKeys))
	for i := range adj {
		adj[i] = adjustVal{global: f.AdjustGlobal[i], local: f.AdjustLocal[i]}
	}
	f.idx.adjust = newEytIndex(f.AdjustKeys, adj)
	f.idx.tuples = newEytIndex[uint64, struct{}](f.Tuples, nil)
	f.idx.prefs = newEytIndex[uint64, struct{}](f.Prefs, nil)
	f.idx.provs = newEytIndex[uint64, struct{}](f.Providers, nil)
	f.idx.rels = newEytIndex(f.RelKeys, f.RelVals)
}

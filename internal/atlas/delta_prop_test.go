package atlas

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// makeRandomAtlas builds a small arbitrary atlas straight from an RNG —
// independent of the builder pipeline, so the delta machinery is tested on
// shapes the builder would never produce.
func makeRandomAtlas(rng *rand.Rand, day int) *Atlas {
	a := New()
	a.Day = day
	n := 20 + rng.Intn(30)
	a.NumClusters = n
	for i := 0; i < n; i++ {
		a.ClusterAS = append(a.ClusterAS, netsim.ASN(1+rng.Intn(10)))
	}
	seen := map[uint64]bool{}
	for i := 0; i < 50+rng.Intn(100); i++ {
		from := cluster.ClusterID(rng.Intn(n))
		to := cluster.ClusterID(rng.Intn(n))
		if from == to || seen[LinkKey(from, to)] {
			continue
		}
		seen[LinkKey(from, to)] = true
		a.Links = append(a.Links, Link{
			From:      from,
			To:        to,
			LatencyMS: float32(rng.Intn(10000)) / 100,
			Planes:    uint8(1 + rng.Intn(3)),
		})
		if rng.Float64() < 0.2 {
			a.Loss[LinkKey(from, to)] = float32(rng.Intn(1000)) / 10000
		}
	}
	sortLinks(a)
	for i := 0; i < 100+rng.Intn(200); i++ {
		a.Tuples[PackTriple(
			netsim.ASN(1+rng.Intn(10)),
			netsim.ASN(1+rng.Intn(10)),
			netsim.ASN(1+rng.Intn(10)))] = true
	}
	for i := 0; i < 10+rng.Intn(30); i++ {
		a.PrefixCluster[netsim.Prefix(100+rng.Intn(200))] = cluster.ClusterID(rng.Intn(n))
	}
	for i := 0; i < 10+rng.Intn(30); i++ {
		a.IfaceCluster[netsim.Prefix(1000+rng.Intn(200))] = cluster.ClusterID(rng.Intn(n))
	}
	a.invalidateIndex()
	return a
}

func sortLinks(a *Atlas) {
	for i := 1; i < len(a.Links); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Links[j-1], a.Links[j]
			if LinkKey(x.From, x.To) <= LinkKey(y.From, y.To) {
				break
			}
			a.Links[j-1], a.Links[j] = y, x
		}
	}
}

// Diff/Apply must be exact on arbitrary atlases: applying Diff(a,b) to a
// clone of a reproduces b's daily datasets, and the delta survives its
// codec.
func TestDiffApplyPropertyRandomAtlases(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := makeRandomAtlas(rng, 0)
		b := makeRandomAtlas(rng, 1)
		if b.NumClusters < a.NumClusters {
			b.NumClusters = a.NumClusters
		}
		d := Diff(a, b)
		got := a.Clone()
		got.Apply(d)
		if got.Day != b.Day || len(got.Links) != len(b.Links) {
			return false
		}
		for i := range b.Links {
			if got.Links[i] != b.Links[i] {
				return false
			}
		}
		if len(got.Loss) != len(b.Loss) || len(got.Tuples) != len(b.Tuples) {
			return false
		}
		for k, v := range b.Loss {
			if got.Loss[k] != v {
				return false
			}
		}
		for k := range b.Tuples {
			if !got.Tuples[k] {
				return false
			}
		}
		if got.NumClusters != b.NumClusters {
			return false
		}
		if len(got.PrefixCluster) != len(b.PrefixCluster) || len(got.IfaceCluster) != len(b.IfaceCluster) {
			return false
		}
		for p, c := range b.PrefixCluster {
			if got.PrefixCluster[p] != c {
				return false
			}
		}
		for p, c := range b.IfaceCluster {
			if got.IfaceCluster[p] != c {
				return false
			}
		}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			return false
		}
		d2, err := DecodeDelta(&buf)
		if err != nil {
			return false
		}
		return len(d2.UpLinks) == len(d.UpLinks) &&
			len(d2.DelLinks) == len(d.DelLinks) &&
			len(d2.AddTuples) == len(d.AddTuples) &&
			len(d2.DelTuples) == len(d.DelTuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

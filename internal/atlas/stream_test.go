package atlas

import (
	"bytes"
	"testing"

	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// TestStreamBuilderMatchesBuild pins the out-of-core contract: driving
// StreamBuilder by hand over the same trace stream produces an atlas
// byte-identical to Build's.
func TestStreamBuilderMatchesBuild(t *testing.T) {
	top := netsim.Generate(netsim.TestConfig(91))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	dv := sim.Day(0)
	m := trace.NewMeter(dv, trace.DefaultOptions())
	vps := trace.SelectVantagePoints(top, 10)
	targets := top.EdgePrefixes
	if len(targets) > 60 {
		targets = targets[:60]
	}
	c := trace.RunCampaign(m, vps, targets)
	in := BuildInput{
		Top: top, Day: dv, Meter: m,
		VPTraces:   c.Traceroutes,
		BGPFeeds:   DefaultFeeds(top, 5),
		ClusterCfg: cluster.DefaultConfig(),
	}
	want := Build(in)

	sb := NewStreamBuilder(StreamInput{
		Tools: NewSimTools(top, dv, m, in.BGPFeeds, in.ClusterCfg),
		Day:   dv.DayNum(),
	})
	// Stream the same traces through a copy buffer to prove nothing of a
	// trace is retained across AddTrace calls.
	var buf trace.Traceroute
	feed := func(f func(*trace.Traceroute, bool)) {
		for i := range c.Traceroutes {
			src := &c.Traceroutes[i]
			buf.Src, buf.Dst, buf.Day, buf.Reached = src.Src, src.Dst, src.Day, src.Reached
			buf.Hops = append(buf.Hops[:0], src.Hops...)
			f(&buf, true)
		}
	}
	feed(func(tr *trace.Traceroute, _ bool) { sb.ObserveIfaces(tr) })
	sb.StartTraces()
	feed(func(tr *trace.Traceroute, fromVP bool) { sb.AddTrace(tr, fromVP) })
	got := sb.Finish()

	var wb, gb bytes.Buffer
	if err := want.Encode(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.Encode(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("streamed atlas differs from Build: %d vs %d bytes", gb.Len(), wb.Len())
	}
}

// streamScaleAtlas runs a two-pass out-of-core build over a small scale
// world and returns the atlas plus the campaign that produced it.
func streamScaleAtlas(t testing.TB, seed int64, prefsMax int) (*Atlas, *trace.ScaleCampaign) {
	t.Helper()
	cfg := netsim.DefaultScaleConfig(seed)
	cfg.ASes, cfg.Prefixes = 250, 900
	w := netsim.GenerateScale(cfg)
	vps, clients := w.Population(6, 3)
	camp := &trace.ScaleCampaign{W: w, VPs: vps, ClientSrcs: clients, ClientDsts: 25}
	sb := NewStreamBuilder(StreamInput{
		Tools:         NewScaleTools(w, 5),
		Day:           0,
		PrefsMaxDests: prefsMax,
	})
	camp.Run(func(tr *trace.Traceroute, _ bool) bool { sb.ObserveIfaces(tr); return true })
	sb.StartTraces()
	camp.Run(func(tr *trace.Traceroute, fromVP bool) bool { sb.AddTrace(tr, fromVP); return true })
	return sb.Finish(), camp
}

func TestScaleStreamBuild(t *testing.T) {
	a, camp := streamScaleAtlas(t, 17, 64)
	c := a.Counts()
	if c.Links == 0 || c.PrefixCluster == 0 || c.PrefixAS == 0 || c.Tuples == 0 || c.Providers == 0 {
		t.Fatalf("scale atlas missing datasets: %+v", c)
	}
	if a.NumClusters == 0 {
		t.Fatal("no clusters")
	}
	// Every edge prefix got both an origin and an attachment (full
	// coverage campaign, all traces reach).
	w := camp.W
	for j := 0; j < w.NumPrefixes(); j += 17 {
		p := w.EdgePrefixAt(j)
		if a.PrefixAS[p] == 0 {
			t.Fatalf("edge prefix %v missing origin", p)
		}
		if _, ok := a.PrefixCluster[p]; !ok {
			t.Fatalf("edge prefix %v missing attachment", p)
		}
	}
	// Round-trips through the codec and the flat form.
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := dec.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("scale atlas does not round-trip the codec")
	}
	if f := Compile(a); f == nil {
		t.Fatal("scale atlas does not compile to flat form")
	}

	// Re-running the identical out-of-core build is byte-identical
	// (seeded world + deterministic two-pass stream).
	b, _ := streamScaleAtlas(t, 17, 64)
	var bb bytes.Buffer
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), bb.Bytes()) {
		t.Fatal("scale build not deterministic across runs")
	}
}

// TestPrefsMaxDestsCaps checks the preference-BFS cap only ever shrinks
// the preference set and that 0 means unlimited.
func TestPrefsMaxDestsCaps(t *testing.T) {
	full, _ := streamScaleAtlas(t, 23, 0)
	capped, _ := streamScaleAtlas(t, 23, 2)
	if len(capped.Prefs) > len(full.Prefs) {
		t.Fatalf("capped prefs (%d) exceed uncapped (%d)", len(capped.Prefs), len(full.Prefs))
	}
	for k := range capped.Prefs {
		if !full.Prefs[k] {
			t.Fatalf("capped inference invented preference %d", k)
		}
	}
}

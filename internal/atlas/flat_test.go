package atlas

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// flatFixture compiles a realistic built atlas, with residual corrections
// added so the Adjust tables are exercised.
func flatFixture(t testing.TB, seed int64) (*Atlas, *Flat) {
	t.Helper()
	a, _, _ := buildTestAtlas(t, seed, 0)
	i := 0
	for p := range a.PrefixCluster {
		switch i % 3 {
		case 0:
			a.GlobalAdjustMS[p] = float32(5 + i%7)
		case 1:
			a.AdjustMS[p] = float32(-(3 + i%5))
		case 2:
			a.GlobalAdjustMS[p] = -2.5
			a.AdjustMS[p] = 1.25
		}
		i++
		if i >= 12 {
			break
		}
	}
	return a, Compile(a)
}

// TestFlatCompileMatchesMaps checks every flat accessor against the map
// atlas it was compiled from, over all present keys plus guaranteed
// misses.
func TestFlatCompileMatchesMaps(t *testing.T) {
	a, f := flatFixture(t, 21)
	if err := f.Validate(); err != nil {
		t.Fatalf("compiled flat fails validation: %v", err)
	}
	if int(f.Day) != a.Day || int(f.NumClusters) != a.NumClusters {
		t.Fatalf("flat header (%d, %d) != atlas (%d, %d)", f.Day, f.NumClusters, a.Day, a.NumClusters)
	}
	if f.NumEdges() != len(a.Links) {
		t.Fatalf("flat has %d edges, atlas has %d links", f.NumEdges(), len(a.Links))
	}
	for p, cl := range a.PrefixCluster {
		if got, ok := f.ClusterOf(p); !ok || got != cl {
			t.Fatalf("ClusterOf(%d) = (%d, %v), want %d", p, got, ok, cl)
		}
	}
	if _, ok := f.ClusterOf(netsim.Prefix(0xFFFFFF)); ok {
		t.Fatal("ClusterOf hit on an absent prefix")
	}
	for p, as := range a.PrefixAS {
		if got := f.OriginAS(p); got != as {
			t.Fatalf("OriginAS(%d) = %d, want %d", p, got, as)
		}
	}
	for p, cl := range a.IfaceCluster {
		if got, ok := f.IfaceClusterOf(p); !ok || got != cl {
			t.Fatalf("IfaceClusterOf(%d) = (%d, %v), want %d", p, got, ok, cl)
		}
	}
	for k := range a.Tuples {
		x, y, z := UnpackTriple(k)
		if !f.HasTuple(x, y, z) {
			t.Fatalf("HasTuple(%d,%d,%d) missing", x, y, z)
		}
	}
	for k := range a.Prefs {
		x, y, z := UnpackTriple(k)
		if !f.Prefers(x, y, z) {
			t.Fatalf("Prefers(%d,%d,%d) missing", x, y, z)
		}
	}
	if f.HasTuple(1, 2, 0xFFFF) || f.Prefers(1, 2, 0xFFFF) {
		t.Fatal("tuple/pref hit on an absent triple")
	}
	// Relationship parity over all AS pairs that appear on links.
	for _, l := range a.Links {
		fa, ta := a.ClusterAS[l.From], a.ClusterAS[l.To]
		if got, want := f.RelOf(fa, ta), a.RelOf(fa, ta); got != want {
			t.Fatalf("RelOf(%d,%d) = %v, want %v", fa, ta, got, want)
		}
	}
	for origin, provs := range a.Providers {
		for _, up := range provs {
			if !f.ProviderCheck(origin, up) {
				t.Fatalf("ProviderCheck(%d, %d) rejected a recorded provider", origin, up)
			}
		}
		if len(provs) > 0 && f.ProviderCheck(origin, netsim.ASN(0x1FFFFE)) {
			t.Fatalf("ProviderCheck(%d, bogus) accepted a non-provider despite provider data", origin)
		}
	}
	if !f.ProviderCheck(netsim.ASN(0x1FFFFD), 1) {
		t.Fatal("ProviderCheck without provider data must not enforce")
	}
	// Residual corrections: the flat table carries global and local terms
	// key-aligned.
	seen := map[netsim.Prefix]bool{}
	for p, g := range a.GlobalAdjustMS {
		gg, ll, ok := f.Adjust(p)
		if !ok || gg != g || ll != a.AdjustMS[p] {
			t.Fatalf("Adjust(%d) = (%v,%v,%v), want (%v,%v,true)", p, gg, ll, ok, g, a.AdjustMS[p])
		}
		seen[p] = true
	}
	for p, l := range a.AdjustMS {
		if seen[p] {
			continue
		}
		gg, ll, ok := f.Adjust(p)
		if !ok || gg != 0 || ll != l {
			t.Fatalf("Adjust(%d) = (%v,%v,%v), want (0,%v,true)", p, gg, ll, ok, l)
		}
	}
	// Per-edge annotations match the link + datasets they were baked from.
	for w := 0; w < int(f.NumClusters); w++ {
		for ei := f.EdgeStart[w]; ei < f.EdgeStart[w+1]; ei++ {
			from := f.EdgeFrom[ei]
			li := a.LinkAt(from, cluster.ClusterID(w))
			if li < 0 {
				t.Fatalf("edge %d->%d not in atlas links", from, w)
			}
			l := a.Links[li]
			if f.EdgeLat[ei] != l.LatencyMS || f.EdgePlanes[ei] != l.Planes {
				t.Fatalf("edge %d->%d annotation mismatch", from, w)
			}
			if f.EdgeLoss[ei] != a.Loss[LinkKey(from, cluster.ClusterID(w))] {
				t.Fatalf("edge %d->%d loss mismatch", from, w)
			}
			fa, ta := a.ClusterAS[from], a.ClusterAS[l.To]
			wantSame := fa == ta
			if (f.EdgeFlags[ei]&EdgeSameAS != 0) != wantSame {
				t.Fatalf("edge %d->%d sameAS flag mismatch", from, w)
			}
			wantLate := !wantSame && a.LateExit[netsim.ASPairKey(fa, ta)]
			if (f.EdgeFlags[ei]&EdgeLate != 0) != wantLate {
				t.Fatalf("edge %d->%d late flag mismatch", from, w)
			}
			if f.EdgeFromAS[ei] != fa || f.EdgeToAS[ei] != ta ||
				f.EdgeRel[ei] != a.RelOf(fa, ta) || f.EdgeToDeg[ei] != a.ASDegree[ta] {
				t.Fatalf("edge %d->%d AS annotation mismatch", from, w)
			}
		}
	}
}

// TestFlatInflateRoundTrip checks Compile -> Inflate reconstructs every
// serving dataset of the original atlas (the bridge that lets a
// flat-started daemon still apply deltas).
func TestFlatInflateRoundTrip(t *testing.T) {
	a, f := flatFixture(t, 22)
	b := f.Inflate()
	if b.Day != a.Day || b.NumClusters != a.NumClusters {
		t.Fatalf("inflated header (%d,%d) != (%d,%d)", b.Day, b.NumClusters, a.Day, a.NumClusters)
	}
	if len(b.Links) != len(a.Links) {
		t.Fatalf("inflated %d links, want %d", len(b.Links), len(a.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d: %+v != %+v", i, b.Links[i], a.Links[i])
		}
	}
	cmpU64F32 := func(name string, x, y map[uint64]float32) {
		if len(x) != len(y) {
			t.Fatalf("%s: %d entries, want %d", name, len(y), len(x))
		}
		for k, v := range x {
			if y[k] != v {
				t.Fatalf("%s[%d] = %v, want %v", name, k, y[k], v)
			}
		}
	}
	cmpU64F32("Loss", a.Loss, b.Loss)
	if len(b.PrefixCluster) != len(a.PrefixCluster) || len(b.IfaceCluster) != len(a.IfaceCluster) ||
		len(b.PrefixAS) != len(a.PrefixAS) || len(b.ASDegree) != len(a.ASDegree) ||
		len(b.Tuples) != len(a.Tuples) || len(b.Prefs) != len(a.Prefs) ||
		len(b.Rels) != len(a.Rels) || len(b.LateExit) != len(a.LateExit) {
		t.Fatal("inflated dataset cardinality mismatch")
	}
	for p, cl := range a.PrefixCluster {
		if b.PrefixCluster[p] != cl {
			t.Fatalf("PrefixCluster[%d] lost", p)
		}
	}
	for k, r := range a.Rels {
		if b.Rels[k] != r {
			t.Fatalf("Rels[%d] = %v, want %v", k, b.Rels[k], r)
		}
	}
	for origin, provs := range a.Providers {
		if len(b.Providers[origin]) != len(provs) {
			t.Fatalf("Providers[%d] has %d entries, want %d", origin, len(b.Providers[origin]), len(provs))
		}
		got := map[netsim.ASN]bool{}
		for _, up := range b.Providers[origin] {
			got[up] = true
		}
		for _, up := range provs {
			if !got[up] {
				t.Fatalf("Providers[%d] lost %d", origin, up)
			}
		}
	}
	for p, v := range a.GlobalAdjustMS {
		if b.GlobalAdjustMS[p] != v {
			t.Fatalf("GlobalAdjustMS[%d] = %v, want %v", p, b.GlobalAdjustMS[p], v)
		}
	}
	for p, v := range a.AdjustMS {
		if b.AdjustMS[p] != v {
			t.Fatalf("AdjustMS[%d] = %v, want %v", p, b.AdjustMS[p], v)
		}
	}
	// And the round trip is a fixed point: compiling the inflated atlas
	// reproduces the same serialized bytes.
	var w1, w2 bytes.Buffer
	if err := WriteFlat(&w1, f); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlat(&w2, Compile(b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("Compile(Inflate(f)) serializes differently from f")
	}
}

// TestFlatCodecRoundTrip checks WriteFlat -> ReadFlat is exact (compared
// via re-serialization, which covers every field).
func TestFlatCodecRoundTrip(t *testing.T) {
	_, f := flatFixture(t, 23)
	var buf bytes.Buffer
	if err := WriteFlat(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlat(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteFlat(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("decode -> re-encode does not reproduce the file")
	}
}

// TestFlatOpenMmap checks the mmap'd (zero-copy on little-endian hosts)
// open path serves the same data as the in-memory form.
func TestFlatOpenMmap(t *testing.T) {
	a, f := flatFixture(t, 24)
	path := filepath.Join(t.TempDir(), "atlas.flat")
	fd, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFlat(fd, f); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	ff, err := OpenFlat(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	var orig, mapped bytes.Buffer
	if err := WriteFlat(&orig, f); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlat(&mapped, ff.Flat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), mapped.Bytes()) {
		t.Fatal("mapped flat differs from the one written")
	}
	for p, cl := range a.PrefixCluster {
		if got, ok := ff.ClusterOf(p); !ok || got != cl {
			t.Fatalf("mapped ClusterOf(%d) = (%d,%v), want %d", p, got, ok, cl)
		}
	}
	if err := ff.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlatOpenRejectsCorruption flips one payload byte and checks the
// checksum catches it; truncations and bad magic are rejected too.
func TestFlatOpenRejectsCorruption(t *testing.T) {
	_, f := flatFixture(t, 25)
	var buf bytes.Buffer
	if err := WriteFlat(&buf, f); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := append([]byte(nil), good...)
	flip[len(flip)-5] ^= 0x40
	if _, err := ReadFlat(flip); err == nil {
		t.Fatal("flipped payload byte not caught by checksum")
	}
	if _, err := ReadFlat(good[:len(good)/2]); err == nil {
		t.Fatal("truncated file decoded")
	}
	if _, err := ReadFlat([]byte("INANOXX9 not a flat file at all.....")); err == nil {
		t.Fatal("bad magic decoded")
	}
	bad := append([]byte(nil), good...)
	bad[8] = 99 // unsupported version
	if _, err := ReadFlat(bad); err == nil {
		t.Fatal("unsupported version decoded")
	}

	path := filepath.Join(t.TempDir(), "corrupt.flat")
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFlat(path, true); err == nil {
		t.Fatal("OpenFlat accepted a corrupt file")
	}
}

// TestFlatValidateCatchesStructuralDamage mutates a valid Flat in ways a
// checksum cannot catch (the file was written that way) and checks the
// structural validator does.
func TestFlatValidateCatchesStructuralDamage(t *testing.T) {
	mk := func() *Flat { _, f := flatFixture(t, 26); return f }
	cases := []struct {
		name string
		mut  func(*Flat)
	}{
		{"non-monotone CSR", func(f *Flat) { f.EdgeStart[1] = f.EdgeStart[len(f.EdgeStart)-1] + 7 }},
		{"edge source out of range", func(f *Flat) { f.EdgeFrom[0] = cluster.ClusterID(f.NumClusters) }},
		{"unsorted prefix keys", func(f *Flat) {
			f.PrefixClKeys[0], f.PrefixClKeys[1] = f.PrefixClKeys[1], f.PrefixClKeys[0]
		}},
		{"unsorted tuple keys", func(f *Flat) { f.Tuples[0] = f.Tuples[len(f.Tuples)-1] + 1 }},
		{"prefix value out of range", func(f *Flat) { f.PrefixClVals[0] = cluster.ClusterID(-2) }},
		{"table length mismatch", func(f *Flat) { f.PrefixClVals = f.PrefixClVals[:len(f.PrefixClVals)-1] }},
		{"edge array length mismatch", func(f *Flat) { f.EdgeLat = f.EdgeLat[:len(f.EdgeLat)-1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := mk()
			if err := f.Validate(); err != nil {
				t.Fatalf("fixture invalid before mutation: %v", err)
			}
			tc.mut(f)
			if err := f.Validate(); err == nil {
				t.Fatal("validator missed the damage")
			}
		})
	}
}

// TestFlatRandomAtlasAccessorProperty cross-checks flat lookups against
// random map atlases (the delta property-test generator), including keys
// guaranteed absent.
func TestFlatRandomAtlasAccessorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 25; round++ {
		a := makeRandomAtlas(rng, round)
		f := Compile(a)
		if err := f.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for p := netsim.Prefix(90); p < 320; p++ {
			wantCl, wantOK := a.PrefixCluster[p]
			if got, ok := f.ClusterOf(p); ok != wantOK || (ok && got != wantCl) {
				t.Fatalf("round %d: ClusterOf(%d) = (%d,%v), want (%d,%v)", round, p, got, ok, wantCl, wantOK)
			}
		}
		for x := netsim.ASN(1); x <= 10; x++ {
			for y := netsim.ASN(1); y <= 10; y++ {
				for z := netsim.ASN(1); z <= 10; z++ {
					if f.HasTuple(x, y, z) != a.HasTuple(x, y, z) {
						t.Fatalf("round %d: HasTuple(%d,%d,%d) mismatch", round, x, y, z)
					}
				}
			}
		}
	}
}

// TestFlatCompileSkipsCorruptLinks mirrors the engine's defensive handling
// of out-of-range link rows.
func TestFlatCompileSkipsCorruptLinks(t *testing.T) {
	a := indexAtlas(4)
	a.Links = append(a.Links, Link{From: 99, To: 0, LatencyMS: 1, Planes: PlaneToDst})
	a.Links = append(a.Links, Link{From: 0, To: -3, LatencyMS: 1, Planes: PlaneToDst})
	f := Compile(a)
	if f.NumEdges() != 4 {
		t.Fatalf("compiled %d edges, want 4 (corrupt rows skipped)", f.NumEdges())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFlatAdjustZeroGlobal checks a max-magnitude float latency doesn't
// break the writer (NaN/Inf never reach the codec in practice, but the
// writer must round-trip whatever Compile produces).
func TestFlatExtremeLatencyRoundTrip(t *testing.T) {
	a := indexAtlas(2)
	a.Links[0].LatencyMS = math.MaxFloat32
	f := Compile(a)
	var buf bytes.Buffer
	if err := WriteFlat(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlat(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.EdgeLat[0] != math.MaxFloat32 && got.EdgeLat[1] != math.MaxFloat32 {
		t.Fatal("extreme latency lost in round trip")
	}
}

package atlas

import (
	"bytes"
	"testing"

	"inano/internal/netsim"
)

// obsTestAtlas builds a minimal valid atlas: 3 clusters in a line with
// two prefixes attached.
func obsTestAtlas() *Atlas {
	a := New()
	a.Day = 4
	a.NumClusters = 3
	a.ClusterAS = []netsim.ASN{1, 2, 3}
	a.Links = []Link{
		{From: 0, To: 1, LatencyMS: 10, Planes: PlaneToDst},
		{From: 1, To: 2, LatencyMS: 20, Planes: PlaneToDst},
	}
	a.PrefixCluster[netsim.Prefix(100)] = 0
	a.PrefixCluster[netsim.Prefix(200)] = 2
	a.PrefixAS[netsim.Prefix(100)] = 1
	a.PrefixAS[netsim.Prefix(200)] = 3
	return a
}

func TestFoldObservations(t *testing.T) {
	a := obsTestAtlas()
	folded, n := FoldObservations(a, map[netsim.Prefix]float64{
		200: 30,  // known prefix: folded at FoldGain
		999: 50,  // unknown prefix: skipped
		100: 0.1, // below the deadband after gain: not shipped
	})
	if n != 1 {
		t.Fatalf("corrections = %d, want 1", n)
	}
	if got := folded.GlobalAdjustMS[200]; got != float32(30*FoldGain) {
		t.Fatalf("correction = %v, want %v", got, 30*FoldGain)
	}
	if _, ok := folded.GlobalAdjustMS[999]; ok {
		t.Fatal("unknown prefix folded")
	}
	if _, ok := folded.GlobalAdjustMS[100]; ok {
		t.Fatal("sub-deadband correction shipped")
	}
	// The original atlas is untouched (copy-on-write contract).
	if len(a.GlobalAdjustMS) != 0 {
		t.Fatal("FoldObservations mutated its input")
	}

	// Clamping: a huge residual folds to the cap, and repeated folds
	// cannot stack past it.
	b := folded
	for i := 0; i < 10; i++ {
		b, _ = FoldObservations(b, map[netsim.Prefix]float64{200: 10 * MaxObservationFoldMS})
	}
	if got := b.GlobalAdjustMS[200]; got != MaxObservationFoldMS {
		t.Fatalf("correction = %v, want clamp %v", got, MaxObservationFoldMS)
	}

	// A negative residual walks an existing correction back down and the
	// deadband eventually clears it.
	c := folded
	for i := 0; i < 20; i++ {
		c, _ = FoldObservations(c, map[netsim.Prefix]float64{200: -float64(c.GlobalAdjustMS[200])})
	}
	if _, ok := c.GlobalAdjustMS[200]; ok {
		t.Fatalf("correction never cleared: %v", c.GlobalAdjustMS[200])
	}
}

func TestBuildDeltaWithObservationsShipsCorrections(t *testing.T) {
	prev := obsTestAtlas()
	next := obsTestAtlas()
	next.Day = 5
	d, folded, n := BuildDeltaWithObservations(prev, next, map[netsim.Prefix]float64{200: 40})
	if n != 1 || len(d.UpAdjust) != 1 {
		t.Fatalf("delta corrections: n=%d UpAdjust=%v", n, d.UpAdjust)
	}

	// Encode/decode the delta and apply it to the client's previous-day
	// atlas: the client must end up serving exactly the folded state.
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clientAtlas := prev.Clone()
	clientAtlas.Apply(back)
	if clientAtlas.Day != 5 {
		t.Fatalf("day = %d", clientAtlas.Day)
	}
	if got, want := clientAtlas.GlobalAdjustMS[200], folded.GlobalAdjustMS[200]; got != want {
		t.Fatalf("client correction %v, folded %v", got, want)
	}

	// The next day's delta can also *remove* a correction nobody
	// re-supports.
	gone := folded.Clone()
	gone.Day = 6
	delete(gone.GlobalAdjustMS, 200)
	d2 := Diff(folded, gone)
	if len(d2.DelAdjust) != 1 {
		t.Fatalf("DelAdjust = %v", d2.DelAdjust)
	}
	var buf2 bytes.Buffer
	if err := d2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	back2, err := DecodeDelta(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	clientAtlas.Apply(back2)
	if _, ok := clientAtlas.GlobalAdjustMS[200]; ok {
		t.Fatal("deleted correction survived the delta")
	}
}

func TestAtlasCodecRoundTripsCorrections(t *testing.T) {
	a := obsTestAtlas()
	a.GlobalAdjustMS[100] = -12.34
	a.GlobalAdjustMS[200] = 56.78
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.GlobalAdjustMS) != 2 {
		t.Fatalf("corrections lost: %v", back.GlobalAdjustMS)
	}
	if got := back.GlobalAdjustMS[100]; got != -12.34 {
		t.Fatalf("negative correction %v, want -12.34", got)
	}
	if got := back.GlobalAdjustMS[200]; got != 56.78 {
		t.Fatalf("positive correction %v, want 56.78", got)
	}
}

func TestDecodeRejectsOutOfBoundCorrections(t *testing.T) {
	a := obsTestAtlas()
	a.GlobalAdjustMS[100] = MaxObservationFoldMS * 3 // forged: past the cap
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Fatal("atlas with out-of-bound correction decoded")
	}

	d := &Delta{FromDay: 4, ToDay: 5,
		UpLoss:   map[uint64]float32{},
		UpAdjust: map[netsim.Prefix]float32{100: -MaxObservationFoldMS * 2}}
	var dbuf bytes.Buffer
	if err := d.Encode(&dbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(&dbuf); err == nil {
		t.Fatal("delta with out-of-bound correction decoded")
	}
}

func TestCarryCorrections(t *testing.T) {
	prev := obsTestAtlas()
	prev.GlobalAdjustMS[100] = 8
	prev.GlobalAdjustMS[200] = 0.6

	next := obsTestAtlas()
	next.Day = 5
	// Prefix 100 is re-supported today; 200 is not and decays; a prefix
	// the new atlas cannot place is dropped outright.
	prev.GlobalAdjustMS[netsim.Prefix(999)] = 50
	n := CarryCorrections(next, prev, map[netsim.Prefix]float64{100: 1})
	if n != 2 {
		t.Fatalf("carried = %d, want 2", n)
	}
	if got := next.GlobalAdjustMS[100]; got != 8 {
		t.Fatalf("re-supported correction decayed: %v", got)
	}
	if got := next.GlobalAdjustMS[200]; got != 0.3 {
		t.Fatalf("unsupported correction = %v, want halved 0.3", got)
	}
	if _, ok := next.GlobalAdjustMS[999]; ok {
		t.Fatal("unplaceable correction carried")
	}
	// Another unsupported day drops 200 below the floor entirely.
	day3 := obsTestAtlas()
	day3.Day = 6
	CarryCorrections(day3, next, nil)
	if _, ok := day3.GlobalAdjustMS[200]; ok {
		t.Fatalf("correction never expired: %v", day3.GlobalAdjustMS[200])
	}
}

// TestAdjustDecayAcrossDayRolls is the regression for the
// stale-local-correction bug: AdjustMS survived ApplyDelta verbatim
// forever, so a correction learned against day N structure misadjusted
// day N+30. Day rolls now halve it and drop it below the epsilon.
func TestAdjustDecayAcrossDayRolls(t *testing.T) {
	a := obsTestAtlas()
	a.AdjustMS[netsim.Prefix(100)] = 8
	a.AdjustMS[netsim.Prefix(200)] = -0.9

	roll := func(from, to int) *Delta {
		return &Delta{FromDay: from, ToDay: to, UpLoss: map[uint64]float32{}}
	}

	// A same-day (re-)apply must NOT decay: nothing structural changed.
	a.Apply(roll(4, 4))
	if a.AdjustMS[100] != 8 || a.AdjustMS[200] != -0.9 {
		t.Fatalf("same-day apply decayed corrections: %v", a.AdjustMS)
	}

	// Day roll 1: both halve; -0.45 falls below the 0.5 epsilon and drops.
	a.Apply(roll(4, 5))
	if got := a.AdjustMS[100]; got != 4 {
		t.Fatalf("after one roll: %v, want 4", got)
	}
	if _, ok := a.AdjustMS[200]; ok {
		t.Fatal("sub-epsilon correction survived the roll")
	}

	// A multi-day sequence of rolls erases the rest: 4 -> 2 -> 1 -> 0.5
	// -> gone (0.25 < epsilon after the halving).
	for d := 5; d < 9; d++ {
		a.Apply(roll(d, d+1))
	}
	if len(a.AdjustMS) != 0 {
		t.Fatalf("corrections survived a multi-day roll: %v", a.AdjustMS)
	}

	// Global corrections are not subject to the local decay — the delta
	// stream manages their lifecycle explicitly.
	b := obsTestAtlas()
	b.GlobalAdjustMS[100] = 8
	b.Apply(roll(4, 5))
	if got := b.GlobalAdjustMS[100]; got != 8 {
		t.Fatalf("global correction decayed locally: %v", got)
	}
}

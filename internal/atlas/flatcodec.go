package atlas

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Flat serving-form file format ("INANOFL1"). The design goal is O(1)
// startup: every array in Flat is stored as raw little-endian elements in
// 8-byte-aligned sections, so on a little-endian host an mmap'd file is
// served directly — the slices alias the mapping, nothing is decoded, and
// N daemons on one box share the page cache. Big-endian (or misaligned)
// hosts fall back to an element-wise copy decode of the same bytes.
//
// Layout:
//
//	header (32 B): magic "INANOFL1" | u32 version | u32 reserved
//	               | u64 payload length | u32 crc32(payload) | u32 reserved
//	payload:       u32 day | u32 numClusters | sections...
//	section:       u64 element count | elements, padded to 8 bytes
//
// Sections appear in a fixed order (see writeFlatPayload / parseFlat,
// which must stay in lockstep). All integers are little-endian.
const flatMagic = "INANOFL1"

const flatVersion = 1

// flatHeaderSize is 8 (magic) + 4 + 4 + 8 + 4 + 4 — a multiple of 8 so
// the payload (and every section in it) stays 8-byte aligned relative to
// the page-aligned mmap base.
const flatHeaderSize = 32

// hostLittleEndian reports whether this machine stores integers
// little-endian — the precondition for serving an mmap'd file zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// WriteFlat serializes f in the flat file format.
func WriteFlat(w io.Writer, f *Flat) error {
	payload := writeFlatPayload(f)
	hdr := make([]byte, flatHeaderSize)
	copy(hdr, flatMagic)
	binary.LittleEndian.PutUint32(hdr[8:], flatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

type flatWriter struct{ buf []byte }

func (w *flatWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *flatWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *flatWriter) pad() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

func sec32[T ~uint32 | ~int32](w *flatWriter, s []T) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u32(uint32(v))
	}
	w.pad()
}

func secF32(w *flatWriter, s []float32) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u32(math.Float32bits(v))
	}
	w.pad()
}

func sec64(w *flatWriter, s []uint64) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u64(v)
	}
	w.pad()
}

func sec8[T ~uint8 | ~int8](w *flatWriter, s []T) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.buf = append(w.buf, byte(v))
	}
	w.pad()
}

func writeFlatPayload(f *Flat) []byte {
	w := &flatWriter{buf: make([]byte, 0, 64+f.NumEdges()*32)}
	w.u32(uint32(f.Day))
	w.u32(uint32(f.NumClusters))
	sec32(w, f.ClusterAS)
	sec32(w, f.EdgeStart)
	sec32(w, f.EdgeFrom)
	secF32(w, f.EdgeLat)
	secF32(w, f.EdgeLoss)
	sec8(w, f.EdgePlanes)
	sec8(w, f.EdgeFlags)
	sec8(w, f.EdgeRel)
	sec32(w, f.EdgeFromAS)
	sec32(w, f.EdgeToAS)
	sec32(w, f.EdgeToDeg)
	sec32(w, f.PrefixClKeys)
	sec32(w, f.PrefixClVals)
	sec32(w, f.PrefixASKeys)
	sec32(w, f.PrefixASVals)
	sec32(w, f.IfaceKeys)
	sec32(w, f.IfaceVals)
	sec32(w, f.AdjustKeys)
	secF32(w, f.AdjustGlobal)
	secF32(w, f.AdjustLocal)
	sec64(w, f.Tuples)
	sec64(w, f.Prefs)
	sec64(w, f.Providers)
	sec64(w, f.RelKeys)
	sec8(w, f.RelVals)
	sec64(w, f.LateExit)
	sec32(w, f.DegKeys)
	sec32(w, f.DegVals)
	sec64(w, f.LossKeys)
	secF32(w, f.LossVals)
	return w.buf
}

// flatReader walks the payload. With alias set (little-endian host,
// 8-aligned base), returned slices point into data; otherwise they are
// freshly decoded copies.
type flatReader struct {
	data  []byte
	off   int
	alias bool
	err   error
}

func (r *flatReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("atlas: flat: "+format, args...)
	}
}

func (r *flatReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *flatReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// take returns n payload bytes and advances past them plus padding.
func (r *flatReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("section of %d bytes overruns payload at offset %d", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	for r.off%8 != 0 && r.off < len(r.data) {
		r.off++
	}
	return b
}

// castSlice reinterprets a slice as a same-element-size type (e.g.
// []uint32 -> []netsim.ASN). Caller guarantees the sizes match.
func castSlice[Dst, Src any](s []Src) []Dst {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*Dst)(unsafe.Pointer(&s[0])), len(s))
}

func rdSec32[T ~uint32 | ~int32 | ~float32](r *flatReader) []T {
	n := r.u64()
	if n > uint64(len(r.data)) {
		r.fail("section count %d exceeds payload", n)
		return nil
	}
	b := r.take(int(n) * 4)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.alias {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	raw := castSlice[uint32](out)
	for i := range raw {
		raw[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func rdSec64(r *flatReader) []uint64 {
	n := r.u64()
	if n > uint64(len(r.data)) {
		r.fail("section count %d exceeds payload", n)
		return nil
	}
	b := r.take(int(n) * 8)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.alias {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func rdSec8[T ~uint8 | ~int8](r *flatReader) []T {
	n := r.u64()
	if n > uint64(len(r.data)) {
		r.fail("section count %d exceeds payload", n)
		return nil
	}
	b := r.take(int(n))
	if r.err != nil || n == 0 {
		return nil
	}
	if r.alias {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(b[i])
	}
	return out
}

// parseFlat decodes a full flat file (header + payload). With alias set,
// slice fields of the result point into data, which must stay mapped and
// immutable for the Flat's lifetime.
func parseFlat(data []byte, alias bool) (*Flat, error) {
	if len(data) < flatHeaderSize || string(data[:8]) != flatMagic {
		return nil, fmt.Errorf("atlas: flat: bad magic (not an %s file)", flatMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != flatVersion {
		return nil, fmt.Errorf("atlas: flat: unsupported version %d (want %d)", v, flatVersion)
	}
	plen := binary.LittleEndian.Uint64(data[16:])
	if plen != uint64(len(data)-flatHeaderSize) {
		return nil, fmt.Errorf("atlas: flat: payload length %d does not match file size %d", plen, len(data)-flatHeaderSize)
	}
	payload := data[flatHeaderSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[24:]); got != want {
		return nil, fmt.Errorf("atlas: flat: checksum mismatch (file %08x, computed %08x)", want, got)
	}
	if alias && (!hostLittleEndian || uintptr(unsafe.Pointer(&payload[0]))%8 != 0) {
		alias = false // big-endian or misaligned base: decode a copy
	}

	r := &flatReader{data: payload, alias: alias}
	f := &Flat{
		Day:         int32(r.u32()),
		NumClusters: int32(r.u32()),
	}
	f.ClusterAS = rdSec32[netsim.ASN](r)
	f.EdgeStart = rdSec32[uint32](r)
	f.EdgeFrom = rdSec32[cluster.ClusterID](r)
	f.EdgeLat = rdSec32[float32](r)
	f.EdgeLoss = rdSec32[float32](r)
	f.EdgePlanes = rdSec8[uint8](r)
	f.EdgeFlags = rdSec8[uint8](r)
	f.EdgeRel = rdSec8[netsim.Rel](r)
	f.EdgeFromAS = rdSec32[netsim.ASN](r)
	f.EdgeToAS = rdSec32[netsim.ASN](r)
	f.EdgeToDeg = rdSec32[int32](r)
	f.PrefixClKeys = rdSec32[netsim.Prefix](r)
	f.PrefixClVals = rdSec32[cluster.ClusterID](r)
	f.PrefixASKeys = rdSec32[netsim.Prefix](r)
	f.PrefixASVals = rdSec32[netsim.ASN](r)
	f.IfaceKeys = rdSec32[netsim.Prefix](r)
	f.IfaceVals = rdSec32[cluster.ClusterID](r)
	f.AdjustKeys = rdSec32[netsim.Prefix](r)
	f.AdjustGlobal = rdSec32[float32](r)
	f.AdjustLocal = rdSec32[float32](r)
	f.Tuples = rdSec64(r)
	f.Prefs = rdSec64(r)
	f.Providers = rdSec64(r)
	f.RelKeys = rdSec64(r)
	f.RelVals = rdSec8[netsim.Rel](r)
	f.LateExit = rdSec64(r)
	f.DegKeys = rdSec32[netsim.ASN](r)
	f.DegVals = rdSec32[int32](r)
	f.LossKeys = rdSec64(r)
	f.LossVals = rdSec32[float32](r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("atlas: flat: %d trailing bytes after last section", len(payload)-r.off)
	}
	f.buildIndex()
	return f, nil
}

// ReadFlat decodes a flat file from an in-memory byte slice. The result
// never aliases data (safe to discard data afterwards). The structural
// validator runs before returning.
func ReadFlat(data []byte) (*Flat, error) {
	f, err := parseFlat(data, false)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FlatFile is a flat atlas backed by a file mapping (or, on platforms
// without mmap, a private copy). The Flat must not be used after Close.
type FlatFile struct {
	*Flat
	close func() error
}

// Close releases the file mapping.
func (ff *FlatFile) Close() error {
	if ff.close == nil {
		return nil
	}
	c := ff.close
	ff.close = nil
	return c()
}

// OpenFlat maps a flat atlas file into memory for zero-copy serving: on a
// little-endian host the returned Flat's arrays alias the shared mapping
// directly, so startup cost is O(1) in atlas size and replicas share
// pages. The checksum is always verified (one sequential pass); with
// validate set, the structural validator runs too — skip it only for
// files produced by a trusted pipeline where open latency matters.
func OpenFlat(path string, validate bool) (*FlatFile, error) {
	data, closer, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := parseFlat(data, true)
	if err == nil && validate {
		err = f.Validate()
	}
	if err != nil {
		closer()
		return nil, err
	}
	return &FlatFile{Flat: f, close: closer}, nil
}

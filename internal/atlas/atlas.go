// Package atlas defines iNano's compact link-level Internet atlas — the
// artifact that replaces iPlane's multi-gigabyte path atlas — together with
// its builder, a compact binary codec, and day-over-day deltas.
//
// The atlas carries the eight datasets of the paper's Table 2:
//
//	inter-cluster links with latencies   (directed, plane-tagged)
//	link loss rates                      (sparse: lossy links only)
//	prefix -> cluster                    (attachment cluster per prefix)
//	prefix -> AS                         (BGP origin table)
//	AS degrees                           (observed AS-graph degree)
//	AS three-tuples                      (observed export triples, §4.3.2)
//	AS preferences                       ((a: b>c) tuples, §4.3.3)
//	provider mappings                    (providers per origin AS, §4.3.4)
//
// plus two small auxiliary datasets the prediction engine needs: inferred
// AS relationships (for the GRAPH baseline's valley-free construction) and
// inferred late-exit AS pairs.
package atlas

import (
	"fmt"
	"sync"
	"sync/atomic"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Plane flags record which atlas plane(s) observed a directed link
// (§4.3.1): TO_DST links come from vantage-point traceroutes, FROM_SRC
// links from end-host-contributed traceroutes.
const (
	PlaneToDst   uint8 = 1 << 0
	PlaneFromSrc uint8 = 1 << 1

	// PlaneMask is the set of defined plane bits; decoders reject links
	// carrying bits outside it.
	PlaneMask = PlaneToDst | PlaneFromSrc
)

// Link is one directed inter-cluster (or intra-AS cluster-to-cluster) link.
type Link struct {
	// From and To are the link's endpoint clusters, in traversal order.
	From, To cluster.ClusterID
	// LatencyMS is the annotated one-way latency estimate.
	LatencyMS float32
	// Planes records which measurement planes observed the link
	// (PlaneToDst, PlaneFromSrc, or both).
	Planes uint8
}

// LinkKey packs a directed cluster pair for indexing.
func LinkKey(from, to cluster.ClusterID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// MaxASN is the largest ASN representable in packed 3-tuples (21 bits per
// component). Dense synthetic ASNs are far below this.
const MaxASN = 1<<21 - 1

// PackTriple packs three ASNs into one word for the 3-tuple and preference
// sets. It panics if an ASN exceeds MaxASN, which would corrupt the set.
func PackTriple(a, b, c netsim.ASN) uint64 {
	if a > MaxASN || b > MaxASN || c > MaxASN {
		panic(fmt.Sprintf("atlas: ASN out of packed range: %d %d %d", a, b, c))
	}
	return uint64(a)<<42 | uint64(b)<<21 | uint64(c)
}

// UnpackTriple reverses PackTriple.
func UnpackTriple(k uint64) (a, b, c netsim.ASN) {
	return netsim.ASN(k >> 42), netsim.ASN(k >> 21 & MaxASN), netsim.ASN(k & MaxASN)
}

// Atlas is the complete artifact distributed to clients.
type Atlas struct {
	// Day is the measurement day this atlas describes.
	Day int
	// NumClusters is the cluster-ID space size.
	NumClusters int
	// ClusterAS maps each cluster to its owning AS.
	ClusterAS []netsim.ASN
	// Links is the annotated link set, sorted by (From, To).
	Links []Link
	// Loss holds loss rates for lossy directed links, keyed by LinkKey.
	Loss map[uint64]float32
	// PrefixCluster maps a prefix to the cluster it attaches to (for
	// destinations: the last infrastructure cluster before the host; for
	// sources: the first-hop cluster).
	PrefixCluster map[netsim.Prefix]cluster.ClusterID
	// IfaceCluster maps infrastructure /24s — the address space traceroute
	// hops answer from — to the cluster owning most of their observed
	// interfaces. It is what lets an atlas consumer place a raw hop IP
	// with nothing but the atlas in hand: the upstream-observation ingest
	// clusterizes uploaded hop lists through it. Kept separate from
	// PrefixCluster so end-host attachment semantics (and the client-side
	// merge that keys on them) are unaffected.
	IfaceCluster map[netsim.Prefix]cluster.ClusterID
	// PrefixAS is the BGP origin table.
	PrefixAS map[netsim.Prefix]netsim.ASN
	// ASDegree is the degree of each AS in the observed AS graph.
	ASDegree map[netsim.ASN]int32
	// Tuples is the observed-export 3-tuple set (commutatively closed),
	// keyed by PackTriple(a,b,c).
	Tuples map[uint64]bool
	// Prefs holds preference tuples: PackTriple(a,b,c) present means
	// "AS a prefers next-hop b over next-hop c at equal path length".
	Prefs map[uint64]bool
	// Providers maps an origin AS to the ASes observed (or advertised)
	// directly upstream of it for its own prefixes.
	Providers map[netsim.ASN][]netsim.ASN
	// Rels is the Gao-inferred relationship map (netsim.ASPairKey keys),
	// used by the GRAPH baseline's valley-free construction.
	Rels map[uint64]netsim.Rel
	// LateExit holds AS pair keys inferred to run late-exit routing.
	LateExit map[uint64]bool

	// AdjustMS holds client-learned signed latency corrections per
	// destination prefix: the converging residual between what this
	// host's own corrective traceroutes measured end-to-end and what the
	// atlas predicted. It captures everything the link-level datasets
	// structurally miss for that destination — access tails, stale link
	// annotations, mispredicted paths — without perturbing destinations
	// the client never measured. The engine adds it to the one-way
	// prediction toward the prefix (so a bidirectional query absorbs it
	// once, on the forward leg). Local-only: never encoded, deltaed, or
	// shipped; it decays across day rolls (see Delta.Apply).
	AdjustMS map[netsim.Prefix]float32

	// GlobalAdjustMS is the shipped counterpart of AdjustMS: signed
	// per-destination-prefix corrections the *build server* folded from
	// clients' uploaded corrective observations (robust median across
	// reporting source clusters — see FoldObservations). Unlike AdjustMS
	// it is real atlas structure: encoded, bounded (±MaxObservationFoldMS,
	// enforced at decode), deltaed day over day, and distributed through
	// the swarm, so a peer that never probed a destination still serves
	// the swarm-wide correction for it. The engine applies it exactly
	// like AdjustMS — once per answer, on the forward leg — and the two
	// stack: the local term converges on whatever residual remains after
	// the global one.
	GlobalAdjustMS map[netsim.Prefix]float32

	// ObservedLinks records the provenance and remaining lifetime of links
	// the build folded from clients' uploaded traceroute hops rather than
	// from its own measurement campaign (see FoldPaths): LinkKey -> rolls
	// of unsupported carry remaining. A freshly agreed path resets its
	// links to ObservedTTLDays; each day roll without renewed reporter
	// agreement decrements (CarryFoldedPaths), and at zero the link drops
	// out of the next build — the structural mirror of CarryCorrections'
	// halve-then-drop. A link the measurement campaign later observes
	// itself graduates out of this table (it no longer needs crowd
	// support to survive).
	ObservedLinks map[uint64]uint8

	// ObservedAttach is the same lifetime bookkeeping for prefix
	// attachment entries learned from uploaded hops: destinations the
	// measurement campaign never probed gain a PrefixCluster entry from
	// the agreed path's last infrastructure cluster, and shed it again a
	// few rolls after reporters stop re-supporting it.
	ObservedAttach map[netsim.Prefix]uint8

	// linkIndex is the lazily built (From,To) -> Links index. It is an
	// atomic pointer so concurrent readers stay lock-free; idxMu
	// serializes (re)builds.
	linkIndex atomic.Pointer[map[uint64]int32]
	idxMu     sync.Mutex
}

// New returns an empty atlas with all maps allocated.
func New() *Atlas {
	return &Atlas{
		Loss:           make(map[uint64]float32),
		PrefixCluster:  make(map[netsim.Prefix]cluster.ClusterID),
		IfaceCluster:   make(map[netsim.Prefix]cluster.ClusterID),
		PrefixAS:       make(map[netsim.Prefix]netsim.ASN),
		ASDegree:       make(map[netsim.ASN]int32),
		Tuples:         make(map[uint64]bool),
		Prefs:          make(map[uint64]bool),
		Providers:      make(map[netsim.ASN][]netsim.ASN),
		Rels:           make(map[uint64]netsim.Rel),
		AdjustMS:       make(map[netsim.Prefix]float32),
		GlobalAdjustMS: make(map[netsim.Prefix]float32),
		LateExit:       make(map[uint64]bool),
		ObservedLinks:  make(map[uint64]uint8),
		ObservedAttach: make(map[netsim.Prefix]uint8),
	}
}

// LinkAt returns the index of the directed link from->to in Links, or -1.
// Safe for concurrent use as long as Links is not being mutated.
func (a *Atlas) LinkAt(from, to cluster.ClusterID) int32 {
	idx := a.linkIndex.Load()
	if idx == nil {
		idx = a.buildIndex()
	}
	if i, ok := (*idx)[LinkKey(from, to)]; ok {
		return i
	}
	return -1
}

func (a *Atlas) buildIndex() *map[uint64]int32 {
	a.idxMu.Lock()
	defer a.idxMu.Unlock()
	if idx := a.linkIndex.Load(); idx != nil {
		return idx
	}
	m := make(map[uint64]int32, len(a.Links))
	for i, l := range a.Links {
		m[LinkKey(l.From, l.To)] = int32(i)
	}
	a.linkIndex.Store(&m)
	return &m
}

// invalidateIndex must be called after Links mutates. It takes idxMu so
// the invalidation serializes against a concurrent buildIndex: a bare
// Store(nil) could be overwritten by a build that loaded nil before this
// mutation and finished (under idxMu) after it, resurrecting an index over
// the pre-mutation Links — a lost invalidation that would serve stale link
// positions forever.
func (a *Atlas) invalidateIndex() {
	a.idxMu.Lock()
	a.linkIndex.Store(nil)
	a.idxMu.Unlock()
}

// InvalidateIndex discards the link lookup index; callers that mutate Links
// directly (e.g. merging client-side measurements) must call it before the
// next LinkAt.
func (a *Atlas) InvalidateIndex() { a.invalidateIndex() }

// LossOf returns the loss rate of a directed link (0 when not recorded).
func (a *Atlas) LossOf(from, to cluster.ClusterID) float64 {
	return float64(a.Loss[LinkKey(from, to)])
}

// HasTuple reports whether the 3-tuple (x,y,z) was observed.
func (a *Atlas) HasTuple(x, y, z netsim.ASN) bool {
	return a.Tuples[PackTriple(x, y, z)]
}

// Prefers reports whether AS a prefers next-hop b over next-hop c.
func (a *Atlas) Prefers(at, b, c netsim.ASN) bool {
	return a.Prefs[PackTriple(at, b, c)]
}

// IsProvider reports whether up is a recorded provider of origin.
func (a *Atlas) IsProvider(origin, up netsim.ASN) bool {
	for _, p := range a.Providers[origin] {
		if p == up {
			return true
		}
	}
	return false
}

// RelOf returns the inferred relationship of b from a's perspective.
func (a *Atlas) RelOf(x, y netsim.ASN) netsim.Rel {
	r, ok := a.Rels[netsim.ASPairKey(x, y)]
	if !ok {
		return netsim.RelNone
	}
	if x <= y {
		return r
	}
	return r.Invert()
}

// Counts summarizes dataset cardinalities (the "No. of entries" column of
// Table 2). Each field counts the entries of the same-named atlas dataset:
// inter-cluster links, loss annotations, prefix-to-cluster and
// prefix-to-origin-AS mappings, AS-graph degrees, observed 3-tuples,
// next-hop preferences, provider records, AS relationships, and
// late-exit AS pairs.
type Counts struct {
	Links, Loss, PrefixCluster, PrefixAS int
	ASDegree, Tuples, Prefs, Providers   int
	Rels, LateExit                       int
}

// Counts returns dataset cardinalities.
func (a *Atlas) Counts() Counts {
	nprov := 0
	for _, ps := range a.Providers {
		nprov += len(ps)
	}
	return Counts{
		Links:         len(a.Links),
		Loss:          len(a.Loss),
		PrefixCluster: len(a.PrefixCluster),
		PrefixAS:      len(a.PrefixAS),
		ASDegree:      len(a.ASDegree),
		Tuples:        len(a.Tuples),
		Prefs:         len(a.Prefs),
		Providers:     nprov,
		Rels:          len(a.Rels),
		LateExit:      len(a.LateExit),
	}
}

// Clone deep-copies the atlas (used by delta tests and clients that keep
// yesterday's atlas while applying an update).
func (a *Atlas) Clone() *Atlas {
	b := New()
	b.Day = a.Day
	b.NumClusters = a.NumClusters
	b.ClusterAS = append([]netsim.ASN(nil), a.ClusterAS...)
	b.Links = append([]Link(nil), a.Links...)
	for k, v := range a.Loss {
		b.Loss[k] = v
	}
	for k, v := range a.PrefixCluster {
		b.PrefixCluster[k] = v
	}
	for k, v := range a.IfaceCluster {
		b.IfaceCluster[k] = v
	}
	for k, v := range a.PrefixAS {
		b.PrefixAS[k] = v
	}
	for k, v := range a.ASDegree {
		b.ASDegree[k] = v
	}
	for k := range a.Tuples {
		b.Tuples[k] = true
	}
	for k := range a.Prefs {
		b.Prefs[k] = true
	}
	for k, v := range a.Providers {
		b.Providers[k] = append([]netsim.ASN(nil), v...)
	}
	for k, v := range a.Rels {
		b.Rels[k] = v
	}
	for k := range a.LateExit {
		b.LateExit[k] = true
	}
	for k, v := range a.AdjustMS {
		b.AdjustMS[k] = v
	}
	for k, v := range a.GlobalAdjustMS {
		b.GlobalAdjustMS[k] = v
	}
	for k, v := range a.ObservedLinks {
		b.ObservedLinks[k] = v
	}
	for k, v := range a.ObservedAttach {
		b.ObservedAttach[k] = v
	}
	return b
}

package atlas

import (
	"bytes"
	"testing"
)

// FuzzAtlasDecode feeds the atlas decoder arbitrary bytes. The decoder
// must never panic: it either rejects the input with an error or returns
// an atlas consistent enough to survive a re-encode/re-decode round trip.
// The seed corpus holds real encoded atlases (the mutation starting
// points), a valid header with garbage sections, and torn prefixes of a
// valid encoding.
func FuzzAtlasDecode(f *testing.F) {
	for _, seed := range []int64{1, 2} {
		a, _, _ := buildTestAtlas(f, seed, 0)
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		raw := buf.Bytes()
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // torn download
		f.Add(raw[:16])
	}
	f.Add([]byte{})
	f.Add([]byte("INANOATL"))
	f.Add([]byte("INANOATL\x01junkjunkjunk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		// Anything the decoder accepts must re-encode and decode cleanly.
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			t.Fatalf("accepted atlas failed to re-encode: %v", err)
		}
		b, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded atlas failed to decode: %v", err)
		}
		if b.Day != a.Day || b.NumClusters != a.NumClusters || len(b.Links) != len(a.Links) {
			t.Fatalf("round trip changed shape: day %d->%d, clusters %d->%d, links %d->%d",
				a.Day, b.Day, a.NumClusters, b.NumClusters, len(a.Links), len(b.Links))
		}
	})
}

package atlas

import (
	"inano/internal/netsim"
)

// Folding aggregated client observations into the build (§5 both ways):
// the build server's feedback.Aggregator reduces uploaded corrective
// observations to one robust RTT residual per destination prefix;
// FoldObservations turns those residuals into the atlas's
// GlobalAdjustMS dataset so the correction ships to every peer inside
// the ordinary daily delta — the encoded, bounded, auditable path the
// client-local AdjustMS corrections deliberately never take.

// MaxObservationFoldMS caps the magnitude of one shipped per-prefix
// correction, mirroring the client-side cap on a single host's residual
// corrections (feedback.MaxAdjustMS). Decoders reject atlases and deltas
// that exceed it, so a compromised build cannot ship unbounded skew.
const MaxObservationFoldMS = 100.0

// FoldGain is the fraction of the aggregated residual one day's fold
// applies. The build re-measures residuals against its *already
// corrected* serving atlas, so successive days converge geometrically on
// the measured truth (the same half-step the client-local merge uses);
// a gain below 1 also damps the reporter-side noise a one-shot median
// cannot remove.
const FoldGain = 0.5

// minFoldMS is the smallest correction worth shipping; below it the
// signal drowns in the codec's 0.01ms quantization and day-to-day
// annotation noise, and the delta bytes are better spent elsewhere.
const minFoldMS = 0.25

// FoldObservations returns a copy of a with the aggregated residuals
// folded into its GlobalAdjustMS dataset, plus the number of corrections
// now carried. Starting from the measured atlas's own (usually empty)
// correction set, each aggregated prefix the atlas can place (a known
// attachment cluster) gains the *stacked* correction: whatever the atlas
// already carried for the prefix plus FoldGain of the newly measured
// residual, clamped to ±MaxObservationFoldMS. Prefixes absent from the
// snapshot keep (or shed, per the builder's choice of base) their prior
// correction; prefixes the atlas cannot place are skipped.
func FoldObservations(a *Atlas, residuals map[netsim.Prefix]float64) (*Atlas, int) {
	b := a.Clone()
	for p, r := range residuals {
		if _, ok := b.PrefixCluster[p]; !ok {
			continue
		}
		next := float64(b.GlobalAdjustMS[p]) + FoldGain*r
		if next > MaxObservationFoldMS {
			next = MaxObservationFoldMS
		} else if next < -MaxObservationFoldMS {
			next = -MaxObservationFoldMS
		}
		if next < minFoldMS && next > -minFoldMS {
			delete(b.GlobalAdjustMS, p)
			continue
		}
		b.GlobalAdjustMS[p] = float32(next)
	}
	return b, len(b.GlobalAdjustMS)
}

// BuildDeltaWithObservations computes the daily delta from prev to next
// with the aggregated observation residuals folded into next first — so
// the corrections ship to the swarm as ordinary delta structure and every
// client applying the delta (reporting or not) serves them. next is
// typically a fresh measurement build carrying prev's corrections forward
// (CarryCorrections), so a destination nobody re-reported keeps its
// correction until the builder expires it. It returns the delta, the
// folded next-day atlas (what the build should archive as the day's
// canonical atlas), and the number of corrections it carries.
func BuildDeltaWithObservations(prev, next *Atlas, residuals map[netsim.Prefix]float64) (*Delta, *Atlas, int) {
	folded, n := FoldObservations(next, residuals)
	return Diff(prev, folded), folded, n
}

// CarryCorrections copies prev's aggregated corrections onto a freshly
// measured atlas (which starts with none), dropping prefixes the new
// atlas cannot place and halving entries absent from keep — the same
// decay discipline clients apply to their local corrections — so a
// correction no reporter re-supports fades over a few builds instead of
// fossilizing. keep may be nil (everything decays).
func CarryCorrections(next, prev *Atlas, keep map[netsim.Prefix]float64) int {
	if next.GlobalAdjustMS == nil {
		next.GlobalAdjustMS = make(map[netsim.Prefix]float32)
	}
	for p, v := range prev.GlobalAdjustMS {
		if _, ok := next.PrefixCluster[p]; !ok {
			continue
		}
		if _, fresh := keep[p]; !fresh {
			v /= 2
			if v < minFoldMS && v > -minFoldMS {
				continue
			}
		}
		next.GlobalAdjustMS[p] = v
	}
	return len(next.GlobalAdjustMS)
}

package atlas

import (
	"sort"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Folding aggregated client observations into the build (§5 both ways):
// the build server's feedback.Aggregator reduces uploaded corrective
// observations to one robust RTT residual per destination prefix;
// FoldObservations turns those residuals into the atlas's
// GlobalAdjustMS dataset so the correction ships to every peer inside
// the ordinary daily delta — the encoded, bounded, auditable path the
// client-local AdjustMS corrections deliberately never take.

// MaxObservationFoldMS caps the magnitude of one shipped per-prefix
// correction, mirroring the client-side cap on a single host's residual
// corrections (feedback.MaxAdjustMS). Decoders reject atlases and deltas
// that exceed it, so a compromised build cannot ship unbounded skew.
const MaxObservationFoldMS = 100.0

// FoldGain is the fraction of the aggregated residual one day's fold
// applies. The build re-measures residuals against its *already
// corrected* serving atlas, so successive days converge geometrically on
// the measured truth (the same half-step the client-local merge uses);
// a gain below 1 also damps the reporter-side noise a one-shot median
// cannot remove.
const FoldGain = 0.5

// minFoldMS is the smallest correction worth shipping; below it the
// signal drowns in the codec's 0.01ms quantization and day-to-day
// annotation noise, and the delta bytes are better spent elsewhere.
const minFoldMS = 0.25

// FoldObservations returns a copy of a with the aggregated residuals
// folded into its GlobalAdjustMS dataset, plus the number of corrections
// now carried. Starting from the measured atlas's own (usually empty)
// correction set, each aggregated prefix the atlas can place (a known
// attachment cluster) gains the *stacked* correction: whatever the atlas
// already carried for the prefix plus FoldGain of the newly measured
// residual, clamped to ±MaxObservationFoldMS. Prefixes absent from the
// snapshot keep (or shed, per the builder's choice of base) their prior
// correction; prefixes the atlas cannot place are skipped.
func FoldObservations(a *Atlas, residuals map[netsim.Prefix]float64) (*Atlas, int) {
	b := a.Clone()
	for p, r := range residuals {
		if _, ok := b.PrefixCluster[p]; !ok {
			continue
		}
		next := float64(b.GlobalAdjustMS[p]) + FoldGain*r
		if next > MaxObservationFoldMS {
			next = MaxObservationFoldMS
		} else if next < -MaxObservationFoldMS {
			next = -MaxObservationFoldMS
		}
		if next < minFoldMS && next > -minFoldMS {
			delete(b.GlobalAdjustMS, p)
			continue
		}
		b.GlobalAdjustMS[p] = float32(next)
	}
	return b, len(b.GlobalAdjustMS)
}

// BuildDeltaWithObservations computes the daily delta from prev to next
// with the aggregated observation residuals folded into next first — so
// the corrections ship to the swarm as ordinary delta structure and every
// client applying the delta (reporting or not) serves them. next is
// typically a fresh measurement build carrying prev's corrections forward
// (CarryCorrections), so a destination nobody re-reported keeps its
// correction until the builder expires it. It returns the delta, the
// folded next-day atlas (what the build should archive as the day's
// canonical atlas), and the number of corrections it carries.
func BuildDeltaWithObservations(prev, next *Atlas, residuals map[netsim.Prefix]float64) (*Delta, *Atlas, int) {
	folded, n := FoldObservations(next, residuals)
	return Diff(prev, folded), folded, n
}

// Structural fold (the FROM_SRC growth loop): beyond scalar residuals,
// uploaded corrective traceroutes carry hop lists. The ingest clusterizes
// them against the serving atlas, the aggregator reduces them to one
// reporter-agreed destination-side tail per prefix, and FoldPaths turns
// those agreed tails into real atlas structure — links and attachment
// entries — so a destination only reporting clients ever probed becomes
// predictable for every peer through the ordinary daily delta. This is
// the ROADMAP's "clients as measurement vantage points": a cluster
// sequence corroborated by independent reporter networks is treated as
// vantage-point-grade evidence, so folded links carry both plane tags.

// ObservedTTLDays is the carry lifetime of crowd-observed structure: a
// folded link or attachment entry survives this many day rolls without
// renewed reporter agreement before the build drops it (the structural
// mirror of CarryCorrections' halve-then-drop for scalar corrections).
const ObservedTTLDays = 2

// MinObservedLatencyMS floors a folded link's latency annotation: hop RTT
// deltas are noisy (reverse-path asymmetry) and can go negative, and a
// zero-cost link would distort every tree that touches it.
const MinObservedLatencyMS = 0.1

// ObservedPath is one reporter-agreed destination-side path tail, ready to
// fold into the build: the cluster sequence (source end first, every
// cluster already known to the serving atlas) and the per-link one-way
// latency estimates derived from the reporters' hop RTTs
// (len(LinkMS) == len(Clusters)-1).
type ObservedPath struct {
	// Dst is the destination /24 the reporters reached.
	Dst netsim.Prefix
	// Clusters is the agreed cluster sequence, source end first.
	Clusters []cluster.ClusterID
	// LinkMS carries per-link one-way latency estimates
	// (len(LinkMS) == len(Clusters)-1).
	LinkMS []float64
}

// PathFoldStats summarizes one FoldPaths run.
type PathFoldStats struct {
	// PathsFolded counts agreed paths applied; PathsSkipped counts paths
	// rejected at fold time (clusters outside the build's registry, loops,
	// too short — a stale or corrupt snapshot, not an honest aggregate).
	PathsFolded, PathsSkipped int
	// NewLinks is links the fold added; RefreshedLinks is folded links
	// whose agreement was renewed; MeasuredLinks counts agreed links the
	// campaign had already measured itself (nothing to add).
	NewLinks, RefreshedLinks, MeasuredLinks int
	// NewAttach counts destination attachment entries learned from tails.
	NewAttach int
}

// FoldPaths folds reporter-agreed path tails into a, in place (the caller
// owns copy-on-write; inano-build applies it to the already-cloned folded
// atlas). For each agreed tail it adds the missing directed links
// (annotated with the reporters' median hop-RTT-delta latencies, both
// plane tags, and an ObservedLinks TTL), refreshes the TTL of folded links
// the snapshot re-supports, and — when the destination prefix has no
// attachment cluster — learns one from the tail's last infrastructure
// cluster, so the destination becomes predictable at all. Links entering
// the destination prefix's origin AS also fold in reverse (stub access
// circuits are symmetric; the same reversal the builder applies). Paths
// naming clusters outside a's registry are skipped: agreement happened
// against a serving day whose IDs this build no longer carries.
func FoldPaths(a *Atlas, paths []ObservedPath) PathFoldStats {
	var st PathFoldStats
	if a.ObservedLinks == nil {
		a.ObservedLinks = make(map[uint64]uint8)
	}
	if a.ObservedAttach == nil {
		a.ObservedAttach = make(map[netsim.Prefix]uint8)
	}
	changed := false
	fresh := make(map[uint64]bool)
	for _, p := range paths {
		if !foldablePath(a, p) {
			st.PathsSkipped++
			continue
		}
		st.PathsFolded++
		originAS := a.PrefixAS[p.Dst]
		for i := 0; i+1 < len(p.Clusters); i++ {
			from, to := p.Clusters[i], p.Clusters[i+1]
			lat := p.LinkMS[i]
			if lat < MinObservedLatencyMS {
				lat = MinObservedLatencyMS
			}
			if foldLink(a, &st, fresh, from, to, lat) {
				changed = true
			}
			// Access-tail reversal, as in the builder: links inside (or
			// entering) the destination's origin AS are the same circuits
			// in both directions, and without the reverse direction no
			// path out of the destination's network is ever predictable.
			if originAS != 0 && a.ClusterAS[to] == originAS {
				if foldLink(a, &st, fresh, to, from, lat) {
					changed = true
				}
			}
		}
		last := p.Clusters[len(p.Clusters)-1]
		if _, ok := a.PrefixCluster[p.Dst]; !ok {
			a.PrefixCluster[p.Dst] = last
			a.ObservedAttach[p.Dst] = ObservedTTLDays
			st.NewAttach++
			changed = true
		} else if _, obs := a.ObservedAttach[p.Dst]; obs {
			a.ObservedAttach[p.Dst] = ObservedTTLDays
		}
	}
	if changed {
		sort.Slice(a.Links, func(i, j int) bool {
			if a.Links[i].From != a.Links[j].From {
				return a.Links[i].From < a.Links[j].From
			}
			return a.Links[i].To < a.Links[j].To
		})
		a.invalidateIndex()
	}
	return st
}

// foldablePath validates one agreed tail against the build's registry.
func foldablePath(a *Atlas, p ObservedPath) bool {
	if len(p.Clusters) < 2 || len(p.LinkMS) != len(p.Clusters)-1 {
		return false
	}
	seen := make(map[cluster.ClusterID]bool, len(p.Clusters))
	for _, c := range p.Clusters {
		if c < 0 || int(c) >= a.NumClusters || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// foldLink folds one agreed directed link, reporting whether the link set
// changed. Links the campaign measured itself are left untouched — a
// precise vantage-point annotation beats a hop-RTT-delta estimate — and
// graduate out of the observed table. fresh tracks links appended earlier
// in this fold, which the stale link index cannot see yet.
func foldLink(a *Atlas, st *PathFoldStats, fresh map[uint64]bool, from, to cluster.ClusterID, lat float64) bool {
	k := LinkKey(from, to)
	if fresh[k] {
		a.ObservedLinks[k] = ObservedTTLDays
		return false
	}
	if li := a.LinkAt(from, to); li >= 0 {
		if _, obs := a.ObservedLinks[k]; obs {
			a.ObservedLinks[k] = ObservedTTLDays
			st.RefreshedLinks++
		} else {
			st.MeasuredLinks++
		}
		return false
	}
	a.Links = append(a.Links, Link{
		From:      from,
		To:        to,
		LatencyMS: float32(lat),
		Planes:    PlaneToDst | PlaneFromSrc,
	})
	a.ObservedLinks[k] = ObservedTTLDays
	fresh[k] = true
	st.NewLinks++
	return true
}

// CarryFoldedPaths carries prev's crowd-observed structure onto a freshly
// measured atlas, decaying what reporters no longer support: every
// surviving ObservedLinks/ObservedAttach entry loses one TTL roll, entries
// reaching zero are dropped (their links and attachment entries with
// them), and entries whose link the new campaign measured itself graduate
// out of the observed table. Run it before FoldPaths — a tail re-agreed in
// today's snapshot re-folds at full TTL afterwards. Returns the carried
// and dropped entry counts (links + attachments).
func CarryFoldedPaths(next, prev *Atlas) (carried, dropped int) {
	if next.ObservedLinks == nil {
		next.ObservedLinks = make(map[uint64]uint8)
	}
	if next.ObservedAttach == nil {
		next.ObservedAttach = make(map[netsim.Prefix]uint8)
	}
	changed := false
	for k, ttl := range prev.ObservedLinks {
		from := cluster.ClusterID(uint32(k >> 32))
		to := cluster.ClusterID(uint32(k))
		if int(from) >= next.NumClusters || int(to) >= next.NumClusters {
			dropped++
			continue
		}
		if next.LinkAt(from, to) >= 0 {
			continue // measured this campaign: graduated
		}
		if ttl <= 1 {
			dropped++
			continue
		}
		li := prev.LinkAt(from, to)
		if li < 0 {
			dropped++ // prev lost the link some other way
			continue
		}
		next.Links = append(next.Links, prev.Links[li])
		next.ObservedLinks[k] = ttl - 1
		carried++
		changed = true
	}
	for p, ttl := range prev.ObservedAttach {
		cl, ok := prev.PrefixCluster[p]
		if !ok || int(cl) >= next.NumClusters {
			dropped++
			continue
		}
		if _, measured := next.PrefixCluster[p]; measured {
			continue // the campaign probed it: graduated
		}
		if ttl <= 1 {
			dropped++
			continue
		}
		next.PrefixCluster[p] = cl
		next.ObservedAttach[p] = ttl - 1
		carried++
	}
	if changed {
		sort.Slice(next.Links, func(i, j int) bool {
			if next.Links[i].From != next.Links[j].From {
				return next.Links[i].From < next.Links[j].From
			}
			return next.Links[i].To < next.Links[j].To
		})
		next.invalidateIndex()
	}
	return carried, dropped
}

// CarryCorrections copies prev's aggregated corrections onto a freshly
// measured atlas (which starts with none), dropping prefixes the new
// atlas cannot place and halving entries absent from keep — the same
// decay discipline clients apply to their local corrections — so a
// correction no reporter re-supports fades over a few builds instead of
// fossilizing. keep may be nil (everything decays).
func CarryCorrections(next, prev *Atlas, keep map[netsim.Prefix]float64) int {
	if next.GlobalAdjustMS == nil {
		next.GlobalAdjustMS = make(map[netsim.Prefix]float32)
	}
	for p, v := range prev.GlobalAdjustMS {
		if _, ok := next.PrefixCluster[p]; !ok {
			continue
		}
		if _, fresh := keep[p]; !fresh {
			v /= 2
			if v < minFoldMS && v > -minFoldMS {
				continue
			}
		}
		next.GlobalAdjustMS[p] = v
	}
	return len(next.GlobalAdjustMS)
}

package atlas

import (
	"sync"
	"testing"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// indexAtlas builds a small atlas with n sequential links 0->1->...->n and
// a few cross links, enough to make stale-index bugs observable.
func indexAtlas(n int) *Atlas {
	a := New()
	a.NumClusters = n + 1
	a.ClusterAS = make([]netsim.ASN, n+1)
	for i := range a.ClusterAS {
		a.ClusterAS[i] = netsim.ASN(100 + i)
	}
	for i := 0; i < n; i++ {
		a.Links = append(a.Links, Link{
			From: cluster.ClusterID(i), To: cluster.ClusterID(i + 1),
			LatencyMS: float32(i + 1), Planes: PlaneToDst,
		})
	}
	return a
}

// TestCloneIndexIsolation checks that a copy-on-write clone and its parent
// never see each other's link index: mutating the clone's link set (the
// Merge/FoldPaths pattern) must not surface in the parent's lookups, and
// vice versa.
func TestCloneIndexIsolation(t *testing.T) {
	parent := indexAtlas(8)
	// Force the parent's index to exist before cloning — the sharing bug
	// shape is a clone inheriting (or rebuilding into) the parent's map.
	if got := parent.LinkAt(0, 1); got != 0 {
		t.Fatalf("parent.LinkAt(0,1) = %d, want 0", got)
	}

	clone := parent.Clone()
	// Mutate the clone the way feedback.Merge/Finalize does: append a
	// link, restore sort order, invalidate.
	clone.Links = append(clone.Links, Link{From: 7, To: 0, LatencyMS: 9, Planes: PlaneFromSrc})
	sortLinksForTest(clone)
	clone.InvalidateIndex()

	if got := clone.LinkAt(7, 0); got < 0 {
		t.Fatal("clone cannot see its own appended link")
	}
	if got := parent.LinkAt(7, 0); got >= 0 {
		t.Fatalf("parent sees the clone's link at %d: index shared across clone", got)
	}
	// And the parent's own lookups still resolve to its own slice.
	for i := 0; i < 8; i++ {
		li := parent.LinkAt(cluster.ClusterID(i), cluster.ClusterID(i+1))
		if li < 0 || parent.Links[li].From != cluster.ClusterID(i) {
			t.Fatalf("parent.LinkAt(%d,%d) resolved to %d", i, i+1, li)
		}
	}

	// Mutate the parent; the clone must be unaffected.
	parent.Links = append(parent.Links, Link{From: 5, To: 0, LatencyMS: 3, Planes: PlaneToDst})
	sortLinksForTest(parent)
	parent.InvalidateIndex()
	if got := clone.LinkAt(5, 0); got >= 0 {
		t.Fatalf("clone sees the parent's new link at %d", got)
	}
}

func sortLinksForTest(a *Atlas) {
	// Insertion sort by (From, To) — the Finalize invariant without
	// importing the feedback package (which would cycle).
	for i := 1; i < len(a.Links); i++ {
		for j := i; j > 0; j-- {
			x, y := a.Links[j-1], a.Links[j]
			if x.From < y.From || (x.From == y.From && x.To <= y.To) {
				break
			}
			a.Links[j-1], a.Links[j] = y, x
		}
	}
}

// TestLinkIndexCloneMutateRace interleaves parent lookups with
// clone+mutate+lookup cycles under -race: the copy-on-write contract says
// a clone's mutations never touch parent state, so this must be free of
// data races and the parent's answers must stay correct throughout.
func TestLinkIndexCloneMutateRace(t *testing.T) {
	parent := indexAtlas(16)
	stop := make(chan struct{})
	readerDone := make(chan struct{})

	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 16; i++ {
				li := parent.LinkAt(cluster.ClusterID(i), cluster.ClusterID(i+1))
				if li < 0 {
					t.Error("parent lost a link during concurrent clone+mutate")
					return
				}
			}
		}
	}()

	var cloners sync.WaitGroup
	for g := 0; g < 4; g++ {
		cloners.Add(1)
		go func(g int) {
			defer cloners.Done()
			for iter := 0; iter < 50; iter++ {
				c := parent.Clone()
				c.Links = append(c.Links, Link{
					From: cluster.ClusterID(16), To: cluster.ClusterID(g),
					LatencyMS: 1, Planes: PlaneFromSrc,
				})
				sortLinksForTest(c)
				c.InvalidateIndex()
				if c.LinkAt(16, cluster.ClusterID(g)) < 0 {
					t.Errorf("clone %d lost its own appended link", g)
					return
				}
			}
		}(g)
	}
	cloners.Wait()
	close(stop)
	<-readerDone
}

// TestInvalidateDuringBuildNotLost hammers one atlas with concurrent index
// builds (LinkAt) and invalidations, then appends a link and checks the
// final invalidation was not lost to an in-flight build — the race fixed
// by taking idxMu inside invalidateIndex. Run with -race.
func TestInvalidateDuringBuildNotLost(t *testing.T) {
	for round := 0; round < 200; round++ {
		a := indexAtlas(4)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.LinkAt(0, 1) // concurrent index build
		}()
		// Append is not concurrency-safe against LinkAt's slice read, so
		// mutate a private field only after the builder raced with the
		// invalidation below — here the mutation is the invalidation
		// ordering itself: invalidate, then append+invalidate once the
		// builder is done.
		a.InvalidateIndex()
		wg.Wait()
		a.Links = append(a.Links, Link{From: 4, To: 0, LatencyMS: 1, Planes: PlaneToDst})
		sortLinksForTest(a)
		a.InvalidateIndex()
		if a.LinkAt(4, 0) < 0 {
			t.Fatalf("round %d: invalidation lost to an in-flight build; LinkAt serves a stale index", round)
		}
	}
}

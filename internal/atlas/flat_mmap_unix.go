//go:build unix

package atlas

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and shared, so every process serving the
// same flat atlas shares one copy of the page cache. The descriptor is
// closed immediately — the mapping keeps the file alive.
func mmapFile(path string) ([]byte, func() error, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < flatHeaderSize {
		return nil, nil, fmt.Errorf("atlas: flat: %s: %d bytes is smaller than the header", path, size)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("atlas: flat: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("atlas: flat: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package atlas

import (
	"sort"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// ScaleTools implements Tools over an arithmetic netsim.ScaleWorld: every
// answer is computed from the world's seeded hash functions, so a
// million-prefix build touches no materialized topology, routing table,
// or meter. PoP IDs are AS indices (one infrastructure cluster per AS —
// the scale world's /24-per-AS address plan makes that exact), link IDs
// are scale-world edge indices.
type ScaleTools struct {
	W     *netsim.ScaleWorld
	feeds []int32
}

// NewScaleTools wires the builder toolbox to a scale world with the
// numFeeds highest-degree ASes acting as BGP route collectors.
func NewScaleTools(w *netsim.ScaleWorld, numFeeds int) *ScaleTools {
	return &ScaleTools{W: w, feeds: w.Feeds(numFeeds)}
}

// scaleToolMix is the measurement-noise hash (deterministic per link, so
// repeated probes of one link agree and re-runs are byte-identical).
func scaleToolMix(l netsim.LinkID, salt uint64) float64 {
	h := uint64(l)*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

func (t *ScaleTools) RouterPoP(ip netsim.IP) netsim.PoPID {
	return netsim.PoPID(t.W.ASOfIface(ip))
}

func (t *ScaleTools) OriginAS(p netsim.Prefix) netsim.ASN { return t.W.OriginAS(p) }

func (t *ScaleTools) PhysicalLink(a, b netsim.PoPID) netsim.LinkID {
	if a < 0 || b < 0 {
		return -1
	}
	return netsim.LinkID(t.W.EdgeBetween(int32(a), int32(b)))
}

// MeasureLinkLatency is a precise probe: truth within ±2%.
func (t *ScaleTools) MeasureLinkLatency(l netsim.LinkID) float64 {
	return t.W.LinkLatencyMS(int32(l)) * (0.98 + 0.04*scaleToolMix(l, 0x11A7))
}

// CoarseLinkLatency is the unassigned-link fallback: truth within ±30%.
func (t *ScaleTools) CoarseLinkLatency(l netsim.LinkID) float64 {
	return t.W.LinkLatencyMS(int32(l)) * (0.7 + 0.6*scaleToolMix(l, 0xC0A53))
}

func (t *ScaleTools) MeasureLinkLoss(l netsim.LinkID, _ netsim.PoPID, _ int) float64 {
	return t.W.LinkLossRate(int32(l))
}

// LateExitTruth: the scale world models early-exit routing everywhere.
func (t *ScaleTools) LateExitTruth(uint64) bool { return false }

func (t *ScaleTools) ForEachPrefixOrigin(emit func(p netsim.Prefix, as netsim.ASN)) {
	t.W.ForEachPrefixOrigin(emit)
}

func (t *ScaleTools) FeedPaths(dst netsim.Prefix, emit func(path []netsim.ASN)) {
	d := t.W.OriginIdx(dst)
	if d < 0 {
		return
	}
	for _, f := range t.feeds {
		// Fresh slice per path: the builder retains first-seen paths.
		if p := t.W.RouteASNs(f, d, nil); len(p) > 0 {
			emit(p)
		}
	}
}

// Cluster groups observed interfaces one cluster per AS. The scale
// world's address plan gives each AS exactly one infrastructure /24, so
// sorting the interfaces groups each AS's addresses contiguously and the
// alias-resolution outcome is exact by construction. Cluster IDs are
// dense in sorted-IP (= AS index) order, matching the registry contract.
func (t *ScaleTools) Cluster(ifaces []netsim.IP) *cluster.Clustering {
	sorted := append([]netsim.IP(nil), ifaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cl := &cluster.Clustering{ClusterOf: make(map[netsim.IP]cluster.ClusterID, len(sorted))}
	lastAS := int32(-1)
	for i, ip := range sorted {
		if i > 0 && ip == sorted[i-1] {
			continue
		}
		as := t.W.ASOfIface(ip)
		if as < 0 {
			continue
		}
		if as != lastAS {
			cl.ClusterAS = append(cl.ClusterAS, netsim.ASN(as+1))
			cl.TruePoP = append(cl.TruePoP, netsim.PoPID(as))
			cl.NumClusters++
			lastAS = as
		}
		cl.ClusterOf[ip] = cluster.ClusterID(cl.NumClusters - 1)
	}
	return cl
}

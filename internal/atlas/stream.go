package atlas

import (
	"sort"

	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/frontier"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// Tools abstracts the simulated measurement and resolution toolbox the
// builder consults alongside the traceroute stream: physical-link
// annotation probes, BGP feed snapshots, the origin table, alias/DNS
// clustering, and late-exit detection. Build wires it to a materialized
// Topology/Day/Meter triple; internet-scale worlds wire it to
// netsim.ScaleWorld arithmetic so nothing world-sized is materialized.
type Tools interface {
	// RouterPoP places an infrastructure interface, or -1.
	RouterPoP(ip netsim.IP) netsim.PoPID
	// OriginAS is the BGP origin of a prefix, or 0.
	OriginAS(p netsim.Prefix) netsim.ASN
	// PhysicalLink locates the measurable link joining two PoPs, or -1.
	PhysicalLink(a, b netsim.PoPID) netsim.LinkID
	// MeasureLinkLatency / CoarseLinkLatency / MeasureLinkLoss are the
	// per-link measurement probes (precise for frontier-assigned VPs,
	// coarse otherwise).
	MeasureLinkLatency(l netsim.LinkID) float64
	CoarseLinkLatency(l netsim.LinkID) float64
	MeasureLinkLoss(l netsim.LinkID, from netsim.PoPID, probes int) float64
	// LateExitTruth reports whether the AS pair runs late-exit routing.
	LateExitTruth(pair uint64) bool
	// ForEachPrefixOrigin streams the full origin table.
	ForEachPrefixOrigin(emit func(p netsim.Prefix, as netsim.ASN))
	// FeedPaths emits each BGP feed's AS path toward dst.
	FeedPaths(dst netsim.Prefix, emit func(path []netsim.ASN))
	// Cluster groups observed infrastructure interfaces into PoP clusters.
	Cluster(ifaces []netsim.IP) *cluster.Clustering
}

// simTools adapts the materialized simulation world to Tools.
type simTools struct {
	top        *netsim.Topology
	day        *bgpsim.Day
	meter      *trace.Meter
	feeds      []netsim.ASN
	clusterCfg cluster.Config
}

// NewSimTools wires Tools to a materialized topology, BGP day, and meter
// — the toolbox Build has always used.
func NewSimTools(top *netsim.Topology, day *bgpsim.Day, meter *trace.Meter, feeds []netsim.ASN, clusterCfg cluster.Config) Tools {
	return &simTools{top: top, day: day, meter: meter, feeds: feeds, clusterCfg: clusterCfg}
}

func (t *simTools) RouterPoP(ip netsim.IP) netsim.PoPID { return t.top.RouterPoP(ip) }
func (t *simTools) OriginAS(p netsim.Prefix) netsim.ASN { return t.top.PrefixOrigin[p] }
func (t *simTools) LateExitTruth(pair uint64) bool      { return t.top.LateExit[pair] }
func (t *simTools) MeasureLinkLatency(l netsim.LinkID) float64 {
	return t.meter.MeasureLinkLatency(l)
}
func (t *simTools) CoarseLinkLatency(l netsim.LinkID) float64 {
	return t.meter.CoarseLinkLatency(l)
}
func (t *simTools) MeasureLinkLoss(l netsim.LinkID, from netsim.PoPID, probes int) float64 {
	return t.meter.MeasureLinkLoss(l, from, probes)
}

// PhysicalLink locates the lowest-latency ground-truth link joining two
// PoPs. Returns -1 if the PoPs are not directly joined (possible when
// clustering merged remote interfaces; the builder then falls back to a
// default annotation).
func (t *simTools) PhysicalLink(a, b netsim.PoPID) netsim.LinkID {
	return physicalLink(t.top, a, b)
}

func (t *simTools) ForEachPrefixOrigin(emit func(p netsim.Prefix, as netsim.ASN)) {
	for p, asn := range t.top.PrefixOrigin {
		emit(p, asn)
	}
}

func (t *simTools) FeedPaths(dst netsim.Prefix, emit func(path []netsim.ASN)) {
	for _, feed := range t.feeds {
		if fp, ok := t.day.ASPath(feed, dst); ok {
			emit(fp)
		}
	}
}

func (t *simTools) Cluster(ifaces []netsim.IP) *cluster.Clustering {
	return cluster.Cluster(t.top, ifaces, t.clusterCfg)
}

// StreamInput configures an out-of-core build.
type StreamInput struct {
	Tools Tools
	// Day stamps the atlas.
	Day int
	// Clusters optionally supplies a precomputed (registry-stabilized)
	// clustering; when nil the builder clusters pass-1 interfaces itself.
	Clusters *cluster.Clustering
	// LossProbes, Redundancy, DegreeThreshold as in BuildInput.
	LossProbes      int
	Redundancy      int
	DegreeThreshold int
	// PrefsMaxDests caps the destination-AS count the preference
	// inference runs BFS for (0 = unlimited, Build's behavior). Capping
	// keeps million-prefix builds out of the O(dests * ASes) regime; the
	// kept destinations are the most-observed ones.
	PrefsMaxDests int
}

// linkInfo accumulates one directed cluster link's evidence.
type linkInfo struct {
	planes    uint8
	popA      netsim.PoPID
	popB      netsim.PoPID
	observers map[int]bool
}

// clusterVote is one (cluster, count) attachment vote; votes per prefix
// are a short inline slice rather than a map so million-prefix builds
// stay cheap.
type clusterVote struct {
	c cluster.ClusterID
	n int32
}

// StreamBuilder ingests a traceroute stream one trace at a time and
// produces the same atlas Build produces from materialized slices, with
// memory bounded by the atlas (clusters, links, observed paths), not the
// trace corpus. Usage is two passes over the same deterministic stream:
//
//	sb := NewStreamBuilder(in)
//	emit(func(tr, fromVP) { sb.ObserveIfaces(tr) })   // pass 1 (skipped when in.Clusters != nil)
//	sb.StartTraces()
//	emit(func(tr, fromVP) { sb.AddTrace(tr, fromVP) }) // pass 2, VP traces before client traces
//	a := sb.Finish()
//
// Traces may alias a reused buffer: nothing of a trace is retained
// across calls. AddTrace must see vantage-point traces in a stable order
// (frontier assignment indexes VPs by first appearance).
type StreamBuilder struct {
	in StreamInput

	ifaceSet map[netsim.IP]bool
	cl       *cluster.Clustering

	links       map[uint64]*linkInfo
	vpIndex     map[netsim.Prefix]int
	votes       map[netsim.Prefix][]clusterVote
	uniq        map[string]*weightedPath
	feedTargets map[netsim.Prefix]bool
	ipsBuf      []netsim.IP
}

// NewStreamBuilder prepares an out-of-core build.
func NewStreamBuilder(in StreamInput) *StreamBuilder {
	if in.LossProbes <= 0 {
		in.LossProbes = 100
	}
	if in.Redundancy <= 0 {
		in.Redundancy = 2
	}
	if in.DegreeThreshold <= 0 {
		in.DegreeThreshold = 5
	}
	return &StreamBuilder{
		in:          in,
		ifaceSet:    make(map[netsim.IP]bool),
		links:       make(map[uint64]*linkInfo),
		vpIndex:     make(map[netsim.Prefix]int),
		votes:       make(map[netsim.Prefix][]clusterVote),
		uniq:        make(map[string]*weightedPath),
		feedTargets: make(map[netsim.Prefix]bool),
	}
}

// ObserveIfaces records a pass-1 trace's responsive hop interfaces for
// clustering. A no-op when a precomputed clustering was supplied.
func (b *StreamBuilder) ObserveIfaces(tr *trace.Traceroute) {
	if b.in.Clusters != nil {
		return
	}
	for _, h := range tr.Hops {
		if h.IP != 0 {
			b.ifaceSet[h.IP] = true
		}
	}
}

// StartTraces closes pass 1: the interface set is clustered (or the
// supplied clustering adopted) and pass-2 ingestion may begin.
func (b *StreamBuilder) StartTraces() {
	if b.in.Clusters != nil {
		b.cl = b.in.Clusters
		return
	}
	ifaces := make([]netsim.IP, 0, len(b.ifaceSet))
	for ip := range b.ifaceSet {
		ifaces = append(ifaces, ip)
	}
	b.ifaceSet = nil
	b.cl = b.in.Tools.Cluster(ifaces)
}

// addVote casts one attachment vote.
func (b *StreamBuilder) addVote(p netsim.Prefix, c cluster.ClusterID) {
	vs := b.votes[p]
	for i := range vs {
		if vs[i].c == c {
			vs[i].n++
			return
		}
	}
	b.votes[p] = append(vs, clusterVote{c: c, n: 1})
}

// addPath folds one observed AS path with weight w.
func (b *StreamBuilder) addPath(p []netsim.ASN, w int) {
	if len(p) < 1 {
		return
	}
	k := asPathKey(p)
	if u, ok := b.uniq[k]; ok {
		u.count += w
		return
	}
	b.uniq[k] = &weightedPath{path: p, count: w}
}

// AddTrace ingests one pass-2 trace: link extraction with access-tail
// reversal, attachment votes, and AS-path observation. Nothing of tr is
// retained.
func (b *StreamBuilder) AddTrace(tr *trace.Traceroute, fromVP bool) {
	cl := b.cl
	plane := PlaneFromSrc
	if fromVP {
		plane = PlaneToDst
		if _, ok := b.vpIndex[tr.Src]; !ok {
			b.vpIndex[tr.Src] = len(b.vpIndex)
		}
		b.feedTargets[tr.Dst] = true
	}
	originAS := b.in.Tools.OriginAS(tr.Dst)
	add := func(ip1, ip2 netsim.IP, c1, c2 cluster.ClusterID) {
		k := LinkKey(c1, c2)
		li := b.links[k]
		if li == nil {
			li = &linkInfo{
				popA:      b.in.Tools.RouterPoP(ip1),
				popB:      b.in.Tools.RouterPoP(ip2),
				observers: make(map[int]bool),
			}
			b.links[k] = li
		}
		li.planes |= plane
		if fromVP {
			li.observers[b.vpIndex[tr.Src]] = true
		}
	}
	for i := 0; i+1 < len(tr.Hops); i++ {
		ip1, ip2 := tr.Hops[i].IP, tr.Hops[i+1].IP
		if ip1 == 0 || ip2 == 0 {
			continue
		}
		c1, ok1 := cl.ClusterOf[ip1]
		c2, ok2 := cl.ClusterOf[ip2]
		if !ok1 || !ok2 || c1 == c2 {
			continue
		}
		add(ip1, ip2, c1, c2)
		// Access-tail reversal: links inside (or entering) the
		// destination's origin AS also yield the reverse direction.
		// Stubs never transit, so traceroutes can only ever *enter*
		// them; without this, no path out of a stub-attached source
		// is ever predictable. Physically these access tails are the
		// same circuits in both directions, so the annotation holds.
		if cl.ClusterAS[c2] == originAS && originAS != 0 {
			add(ip2, ip1, c2, c1)
		}
	}

	// Attachment votes: destinations vote with their last responsive
	// infrastructure hop, sources with their first.
	var first, last cluster.ClusterID = -1, -1
	for _, h := range tr.Hops {
		if h.IP == 0 {
			continue
		}
		c, ok := cl.ClusterOf[h.IP]
		if !ok {
			continue
		}
		if first < 0 {
			first = c
		}
		last = c
	}
	if first >= 0 {
		b.addVote(tr.Src, first)
	}
	if tr.Reached && last >= 0 {
		b.addVote(tr.Dst, last)
	}

	// AS-level path observation.
	b.ipsBuf = b.ipsBuf[:0]
	for _, h := range tr.Hops {
		b.ipsBuf = append(b.ipsBuf, h.IP)
	}
	if p, ok := cluster.ASPathOfFunc(b.ipsBuf, b.in.Tools.OriginAS); ok {
		b.addPath(p, 1)
	}
}

// pickBestVote resolves an attachment election; the comparison is a
// strict total order, so the result is iteration-order independent.
func pickBestVote(vs []clusterVote) cluster.ClusterID {
	best, bestN := cluster.ClusterID(-1), int32(-1)
	for _, v := range vs {
		if v.n > bestN || (v.n == bestN && v.c < best) {
			best, bestN = v.c, v.n
		}
	}
	return best
}

// Finish runs the aggregate inference stages over the accumulated
// evidence and returns the atlas.
func (b *StreamBuilder) Finish() *Atlas {
	in := b.in
	cl := b.cl
	a := New()
	a.Day = in.Day
	a.NumClusters = cl.NumClusters
	a.ClusterAS = append([]netsim.ASN(nil), cl.ClusterAS...)

	// Frontier-assign links to vantage points and annotate.
	keys := make([]uint64, 0, len(b.links))
	for k := range b.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	observers := make([][]int, len(keys))
	for i, k := range keys {
		for vp := range b.links[k].observers {
			observers[i] = append(observers[i], vp)
		}
		sort.Ints(observers[i])
	}
	assign := frontier.Assign(observers, in.Redundancy)
	for i, k := range keys {
		li := b.links[k]
		phys := in.Tools.PhysicalLink(li.popA, li.popB)
		var lat float64
		if len(assign[i]) > 0 && phys >= 0 {
			// Assigned vantage points measure precisely; average the
			// redundant samples.
			sum := 0.0
			for range assign[i] {
				sum += in.Tools.MeasureLinkLatency(phys)
			}
			lat = sum / float64(len(assign[i]))
		} else if phys >= 0 {
			lat = in.Tools.CoarseLinkLatency(phys)
		} else {
			lat = 1.0 // adjacent clusters of one PoP pair we cannot place
		}
		a.Links = append(a.Links, Link{
			From:      cluster.ClusterID(k >> 32),
			To:        cluster.ClusterID(uint32(k)),
			LatencyMS: float32(lat),
			Planes:    li.planes,
		})
		if len(assign[i]) > 0 && phys >= 0 {
			loss := in.Tools.MeasureLinkLoss(phys, li.popA, in.LossProbes)
			if loss >= 0.005 {
				a.Loss[k] = float32(loss)
			}
		}
	}

	// Prefix attachment elections.
	for p, vs := range b.votes {
		a.PrefixCluster[p] = pickBestVote(vs)
	}

	// Interface prefixes: every clustered interface votes its /24 for
	// its own cluster, building the hop-placement table (IfaceCluster)
	// the upstream-observation ingest resolves uploaded traceroute hops
	// through. A /24 spanning several clusters goes to the majority — a
	// coarsening the agreement voting downstream tolerates.
	ifaceVotes := make(map[netsim.Prefix][]clusterVote)
	for ip, c := range cl.ClusterOf {
		p := netsim.PrefixOf(ip)
		vs := ifaceVotes[p]
		grown := false
		for i := range vs {
			if vs[i].c == c {
				vs[i].n++
				grown = true
				break
			}
		}
		if !grown {
			ifaceVotes[p] = append(vs, clusterVote{c: c, n: 1})
		}
	}
	for p, vs := range ifaceVotes {
		a.IfaceCluster[p] = pickBestVote(vs)
	}

	// BGP origin table (full, as RouteViews provides).
	in.Tools.ForEachPrefixOrigin(func(p netsim.Prefix, asn netsim.ASN) {
		a.PrefixAS[p] = asn
	})

	// BGP feeds advertise paths for every prefix targeted by the
	// campaign (a full-table stand-in).
	feedList := make([]netsim.Prefix, 0, len(b.feedTargets))
	for p := range b.feedTargets {
		feedList = append(feedList, p)
	}
	sort.Slice(feedList, func(i, j int) bool { return feedList[i] < feedList[j] })
	for _, p := range feedList {
		in.Tools.FeedPaths(p, func(fp []netsim.ASN) { b.addPath(fp, 1) })
	}
	paths := make([]*weightedPath, 0, len(b.uniq))
	for _, u := range b.uniq {
		paths = append(paths, u)
	}
	sort.Slice(paths, func(i, j int) bool { return asPathKey(paths[i].path) < asPathKey(paths[j].path) })

	// AS degrees over the observed AS graph.
	asAdj := make(map[netsim.ASN]map[netsim.ASN]bool)
	addAdj := func(x, y netsim.ASN) {
		m := asAdj[x]
		if m == nil {
			m = make(map[netsim.ASN]bool)
			asAdj[x] = m
		}
		m[y] = true
	}
	for _, u := range paths {
		for i := 0; i+1 < len(u.path); i++ {
			addAdj(u.path[i], u.path[i+1])
			addAdj(u.path[i+1], u.path[i])
		}
	}
	for asn, nbs := range asAdj {
		a.ASDegree[asn] = int32(len(nbs))
	}

	// 3-tuples with commutative closure, recorded only when the middle
	// AS clears the degree threshold (low-degree edge ASes are too poorly
	// observed for the check to be sound, §4.3.2).
	for _, u := range paths {
		p := u.path
		for i := 0; i+2 < len(p); i++ {
			if int(a.ASDegree[p[i+1]]) <= in.DegreeThreshold {
				continue
			}
			a.Tuples[PackTriple(p[i], p[i+1], p[i+2])] = true
			a.Tuples[PackTriple(p[i+2], p[i+1], p[i])] = true
		}
	}

	// Preference tuples (§4.3.3).
	a.Prefs = inferPreferences(paths, asAdj, in.PrefsMaxDests)

	// Provider mappings: penultimate ASes of paths that terminate at
	// the origin.
	provSet := make(map[netsim.ASN]map[netsim.ASN]bool)
	for _, u := range paths {
		p := u.path
		if len(p) < 2 {
			continue
		}
		d, up := p[len(p)-1], p[len(p)-2]
		m := provSet[d]
		if m == nil {
			m = make(map[netsim.ASN]bool)
			provSet[d] = m
		}
		m[up] = true
	}
	for d, ups := range provSet {
		list := make([]netsim.ASN, 0, len(ups))
		for u := range ups {
			list = append(list, u)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		a.Providers[d] = list
	}

	// Gao relationship inference for the GRAPH baseline.
	plain := make([][]netsim.ASN, len(paths))
	for i, u := range paths {
		plain[i] = u.path
	}
	a.Rels = cluster.InferRelationships(plain)

	// Late-exit detection (Spring et al. [54] stand-in): adjacencies
	// present in the observed link set are tested against the ground
	// truth with a 90% detection rate.
	seenPairs := make(map[uint64]bool)
	for _, l := range a.Links {
		x, y := a.ClusterAS[l.From], a.ClusterAS[l.To]
		if x != y && x != 0 && y != 0 {
			seenPairs[netsim.ASPairKey(x, y)] = true
		}
	}
	for k := range seenPairs {
		if in.Tools.LateExitTruth(k) && detect(k, 0.9) {
			a.LateExit[k] = true
		}
	}

	sort.Slice(a.Links, func(i, j int) bool {
		if a.Links[i].From != a.Links[j].From {
			return a.Links[i].From < a.Links[j].From
		}
		return a.Links[i].To < a.Links[j].To
	})
	a.invalidateIndex()
	return a
}

package atlas

import (
	"encoding/binary"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// TestEytzingerCeilExhaustive pins ceil against the sorted-slice searches
// for every table size 0..64 and every probe position: below the first
// key, on each key, between each pair, and past the last.
func TestEytzingerCeilExhaustive(t *testing.T) {
	for n := 0; n <= 64; n++ {
		keys := make([]uint64, n)
		vals := make([]int32, n)
		for i := range keys {
			keys[i] = uint64(10*i + 5) // gaps so misses exist
			vals[i] = int32(i)
		}
		e := newEytIndex(keys, vals)
		if !e.built() {
			t.Fatalf("n=%d: index reports unbuilt", n)
		}
		for probe := uint64(0); probe <= uint64(10*n+10); probe++ {
			wantI, wantEq := searchU64(keys, probe)
			gotK, gotV, gotOK := e.ceil(probe)
			if wantI < len(keys) {
				if !gotOK || gotK != keys[wantI] || gotV != vals[wantI] {
					t.Fatalf("n=%d ceil(%d) = (%d,%d,%v), want (%d,%d,true)",
						n, probe, gotK, gotV, gotOK, keys[wantI], vals[wantI])
				}
			} else if gotOK {
				t.Fatalf("n=%d ceil(%d) = (%d,%d,true), want none", n, probe, gotK, gotV)
			}
			v, ok := e.find(probe)
			if ok != wantEq {
				t.Fatalf("n=%d find(%d) ok=%v, want %v", n, probe, ok, wantEq)
			}
			if wantEq && v != vals[wantI] {
				t.Fatalf("n=%d find(%d) = %d, want %d", n, probe, v, vals[wantI])
			}
			if e.contains(probe) != wantEq {
				t.Fatalf("n=%d contains(%d) = %v, want %v", n, probe, !wantEq, wantEq)
			}
		}
	}
}

// TestEytzingerPrefixKeys exercises the 32-bit key instantiation with
// random netsim.Prefix tables against searchPrefix.
func TestEytzingerPrefixKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		set := make(map[netsim.Prefix]bool, n)
		for len(set) < n {
			set[netsim.Prefix(rng.Uint32())] = true
		}
		keys := make([]netsim.Prefix, 0, n)
		for p := range set {
			keys = append(keys, p)
		}
		slices.Sort(keys)
		vals := make([]cluster.ClusterID, n)
		for i := range vals {
			vals[i] = cluster.ClusterID(i + 1)
		}
		e := newEytIndex(keys, vals)
		for probes := 0; probes < 300; probes++ {
			p := netsim.Prefix(rng.Uint32())
			if probes < len(keys) {
				p = keys[probes] // ensure every key is probed too
			}
			wantI, wantEq := searchPrefix(keys, p)
			gotK, gotV, gotOK := e.ceil(p)
			if wantI < len(keys) {
				if !gotOK || gotK != keys[wantI] || gotV != vals[wantI] {
					t.Fatalf("ceil(%#x) = (%#x,%d,%v), want (%#x,%d,true)",
						p, gotK, gotV, gotOK, keys[wantI], vals[wantI])
				}
			} else if gotOK {
				t.Fatalf("ceil(%#x) matched past the end", p)
			}
			if v, ok := e.find(p); ok != wantEq || (ok && v != vals[wantI]) {
				t.Fatalf("find(%#x) = (%d,%v), want eq=%v", p, v, ok, wantEq)
			}
		}
	}
}

// TestEytzingerUnbuiltFallback proves a hand-assembled Flat (no
// buildIndex call) still answers through the sorted-slice fallback.
func TestEytzingerUnbuiltFallback(t *testing.T) {
	f := &Flat{
		PrefixClKeys: []netsim.Prefix{10, 20, 30},
		PrefixClVals: []cluster.ClusterID{1, 2, 3},
	}
	if f.idx.prefixCl.built() {
		t.Fatal("hand-built Flat should have no index")
	}
	if c, ok := f.ClusterOf(20); !ok || c != 2 {
		t.Fatalf("fallback ClusterOf(20) = (%d,%v), want (2,true)", c, ok)
	}
	if _, ok := f.ClusterOf(25); ok {
		t.Fatal("fallback ClusterOf(25) should miss")
	}
}

// FuzzEytzinger feeds arbitrary sorted key sets and probes through the
// Eytzinger index and pins every answer to the sorted-slice reference
// search the index replaced.
func FuzzEytzinger(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42})
	seed := make([]byte, 8+8*5)
	binary.LittleEndian.PutUint64(seed, 17)
	for i := 0; i < 5; i++ {
		binary.LittleEndian.PutUint64(seed[8+8*i:], uint64(i*100))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		probe := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		keys := make([]uint64, 0, len(data)/8)
		for len(data) >= 8 {
			keys = append(keys, binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		keys = slices.Compact(keys)
		vals := make([]int32, len(keys))
		for i := range vals {
			vals[i] = int32(i)
		}
		e := newEytIndex(keys, vals)

		check := func(p uint64) {
			wantI, wantEq := searchU64(keys, p)
			gotK, gotV, gotOK := e.ceil(p)
			if wantI < len(keys) {
				if !gotOK || gotK != keys[wantI] || gotV != vals[wantI] {
					t.Fatalf("ceil(%d) = (%d,%d,%v), want (%d,%d,true)",
						p, gotK, gotV, gotOK, keys[wantI], vals[wantI])
				}
			} else if gotOK {
				t.Fatalf("ceil(%d) matched past the end", p)
			}
			if e.contains(p) != wantEq {
				t.Fatalf("contains(%d) = %v, want %v", p, !wantEq, wantEq)
			}
		}
		check(probe)
		for _, k := range keys {
			check(k)
		}
	})
}

// BenchmarkSearch compares the sorted-slice binary search against the
// Eytzinger descent across table sizes. The gap is negligible while the
// table fits in L1/L2 and widens as the sorted search starts missing
// cache on its first few midpoints.
func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)*7 + 3
		}
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(i)
		}
		e := newEytIndex(keys, vals)
		probes := make([]uint64, 1024)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range probes {
			probes[i] = uint64(rng.Intn(n*7 + 10))
		}
		b.Run(benchName("sorted", n), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				lo, _ := searchU64(keys, probes[i&1023])
				sink += lo
			}
			_ = sink
		})
		b.Run(benchName("eytzinger", n), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				k, _, _ := e.ceil(probes[i&1023])
				sink += k
			}
			_ = sink
		})
	}
}

func benchName(kind string, n int) string {
	switch {
	case n >= 1<<20:
		return kind + "/1M"
	case n >= 1<<16:
		return kind + "/64k"
	default:
		return kind + "/1k"
	}
}

package atlas

import (
	"bytes"
	"strings"
	"testing"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// pathTestAtlas builds a small atlas for fold tests: 5 clusters, a
// measured TO_DST chain 0->1->2, and cluster 4 owned by the destination
// prefix's origin AS so access-tail reversal can trigger.
func pathTestAtlas() *Atlas {
	a := New()
	a.Day = 4
	a.NumClusters = 5
	a.ClusterAS = []netsim.ASN{1, 2, 3, 3, 9}
	a.Links = []Link{
		{From: 0, To: 1, LatencyMS: 10, Planes: PlaneToDst},
		{From: 1, To: 2, LatencyMS: 20, Planes: PlaneToDst},
	}
	a.PrefixCluster[netsim.Prefix(100)] = 0
	a.PrefixAS[netsim.Prefix(100)] = 1
	a.PrefixAS[netsim.Prefix(777)] = 9 // the hidden destination's origin
	a.invalidateIndex()
	return a
}

func cids(ids ...int32) []cluster.ClusterID {
	out := make([]cluster.ClusterID, len(ids))
	for i, id := range ids {
		out[i] = cluster.ClusterID(id)
	}
	return out
}

func TestFoldPathsAddsStructure(t *testing.T) {
	a := pathTestAtlas()
	dst := netsim.Prefix(777)
	st := FoldPaths(a, []ObservedPath{{
		Dst:      dst,
		Clusters: cids(1, 2, 4),
		LinkMS:   []float64{5, 7},
	}})
	if st.PathsFolded != 1 || st.PathsSkipped != 0 {
		t.Fatalf("stats %+v", st)
	}
	// 1->2 was already measured; 2->4 is new, and since cluster 4 sits in
	// the destination's origin AS, the reverse 4->2 folds too.
	if st.MeasuredLinks != 1 || st.NewLinks != 2 {
		t.Fatalf("stats %+v, want 1 measured + 2 new (fwd + access reversal)", st)
	}
	li := a.LinkAt(2, 4)
	if li < 0 {
		t.Fatal("folded link 2->4 missing")
	}
	l := a.Links[li]
	if l.Planes != PlaneToDst|PlaneFromSrc {
		t.Fatalf("folded link planes %#x, want both (crowd-corroborated = vantage-point grade)", l.Planes)
	}
	if l.LatencyMS != 7 {
		t.Fatalf("folded latency %v, want the agreed estimate 7", l.LatencyMS)
	}
	if a.LinkAt(4, 2) < 0 {
		t.Fatal("access-tail reversal 4->2 missing")
	}
	if a.ObservedLinks[LinkKey(2, 4)] != ObservedTTLDays {
		t.Fatalf("observed TTL %d, want %d", a.ObservedLinks[LinkKey(2, 4)], ObservedTTLDays)
	}
	if _, ok := a.ObservedLinks[LinkKey(1, 2)]; ok {
		t.Fatal("measured link must not enter the observed table")
	}
	// The destination learned its attachment from the tail's last cluster.
	if got := a.PrefixCluster[dst]; got != 4 {
		t.Fatalf("attachment %d, want 4", got)
	}
	if a.ObservedAttach[dst] != ObservedTTLDays {
		t.Fatalf("attachment TTL %d, want %d", a.ObservedAttach[dst], ObservedTTLDays)
	}
	// The measured link's annotation is untouched.
	if got := a.Links[a.LinkAt(1, 2)].LatencyMS; got != 20 {
		t.Fatalf("measured link latency %v, want untouched 20", got)
	}
}

func TestFoldPathsSkipsInvalid(t *testing.T) {
	a := pathTestAtlas()
	st := FoldPaths(a, []ObservedPath{
		{Dst: 777, Clusters: cids(1, 99), LinkMS: []float64{1}},      // outside registry
		{Dst: 777, Clusters: cids(1), LinkMS: nil},                   // too short
		{Dst: 777, Clusters: cids(1, 2, 1), LinkMS: []float64{1, 1}}, // loop
		{Dst: 777, Clusters: cids(1, 2), LinkMS: []float64{1, 2}},    // mismatched linkMS
	})
	if st.PathsFolded != 0 || st.PathsSkipped != 4 || st.NewLinks != 0 || st.NewAttach != 0 {
		t.Fatalf("stats %+v, want everything skipped", st)
	}
}

func TestCarryFoldedPathsDecayAndGraduation(t *testing.T) {
	day0 := pathTestAtlas()
	dst := netsim.Prefix(777)
	FoldPaths(day0, []ObservedPath{{Dst: dst, Clusters: cids(2, 4), LinkMS: []float64{3}}})

	// Roll 1, no renewed agreement: the link and attachment carry with one
	// less lifetime roll.
	day1 := pathTestAtlas()
	day1.Day = 5
	carried, dropped := CarryFoldedPaths(day1, day0)
	if carried != 3 || dropped != 0 { // fwd link + access reversal + attachment
		t.Fatalf("roll 1: carried %d dropped %d, want 3/0", carried, dropped)
	}
	if day1.LinkAt(2, 4) < 0 || day1.ObservedLinks[LinkKey(2, 4)] != ObservedTTLDays-1 {
		t.Fatalf("roll 1: link not carried at TTL-1: %v", day1.ObservedLinks)
	}
	if day1.PrefixCluster[dst] != 4 || day1.ObservedAttach[dst] != ObservedTTLDays-1 {
		t.Fatalf("roll 1: attachment not carried: %v %v", day1.PrefixCluster[dst], day1.ObservedAttach[dst])
	}

	// Roll 2, still unsupported: everything expires, and the diff against
	// roll 1 ships the deletions to delta-following clients.
	day2 := pathTestAtlas()
	day2.Day = 6
	carried, dropped = CarryFoldedPaths(day2, day1)
	if carried != 0 || dropped != 3 {
		t.Fatalf("roll 2: carried %d dropped %d, want 0/3", carried, dropped)
	}
	if day2.LinkAt(2, 4) >= 0 {
		t.Fatal("roll 2: expired link survived")
	}
	if _, ok := day2.PrefixCluster[dst]; ok {
		t.Fatal("roll 2: expired attachment survived")
	}
	d := Diff(day1, day2)
	wantDel := LinkKey(2, 4)
	foundLink, foundAttach := false, false
	for _, k := range d.DelLinks {
		if k == wantDel {
			foundLink = true
		}
	}
	for _, k := range d.DelPrefixCluster {
		if netsim.Prefix(k) == dst {
			foundAttach = true
		}
	}
	if !foundLink || !foundAttach {
		t.Fatalf("expiry must ship deletions: %+v / %+v", d.DelLinks, d.DelPrefixCluster)
	}

	// Graduation: a campaign that measures the link itself takes over and
	// the observed entry disappears without dropping the link.
	day1b := pathTestAtlas()
	day1b.Day = 5
	day1b.Links = append(day1b.Links, Link{From: 2, To: 4, LatencyMS: 4, Planes: PlaneToDst})
	Finalize := func(a *Atlas) { a.invalidateIndex() }
	Finalize(day1b)
	carried, _ = CarryFoldedPaths(day1b, day0)
	if _, ok := day1b.ObservedLinks[LinkKey(2, 4)]; ok {
		t.Fatal("measured link must graduate out of the observed table")
	}
	if day1b.Links[day1b.LinkAt(2, 4)].LatencyMS != 4 {
		t.Fatal("graduated link must keep the measured annotation")
	}
	_ = carried
}

func TestFoldRenewalResetsTTL(t *testing.T) {
	day0 := pathTestAtlas()
	dst := netsim.Prefix(777)
	p := []ObservedPath{{Dst: dst, Clusters: cids(2, 4), LinkMS: []float64{3}}}
	FoldPaths(day0, p)

	day1 := pathTestAtlas()
	day1.Day = 5
	CarryFoldedPaths(day1, day0)
	// Today's snapshot re-agrees on the tail: the fold refreshes the
	// carried link back to full lifetime.
	st := FoldPaths(day1, p)
	if st.RefreshedLinks == 0 {
		t.Fatalf("stats %+v, want a refreshed link", st)
	}
	if day1.ObservedLinks[LinkKey(2, 4)] != ObservedTTLDays {
		t.Fatalf("TTL %d, want reset to %d", day1.ObservedLinks[LinkKey(2, 4)], ObservedTTLDays)
	}
	if day1.ObservedAttach[dst] != ObservedTTLDays {
		t.Fatalf("attachment TTL %d, want reset to %d", day1.ObservedAttach[dst], ObservedTTLDays)
	}
}

func TestCodecRoundTripsObservedStructure(t *testing.T) {
	a := pathTestAtlas()
	FoldPaths(a, []ObservedPath{{Dst: 777, Clusters: cids(1, 2, 4), LinkMS: []float64{5, 7}}})
	a.IfaceCluster[netsim.Prefix(321)] = 2
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ObservedLinks[LinkKey(2, 4)] != ObservedTTLDays {
		t.Fatalf("observed link TTL lost: %v", got.ObservedLinks)
	}
	if got.ObservedAttach[netsim.Prefix(777)] != ObservedTTLDays {
		t.Fatalf("observed attachment TTL lost: %v", got.ObservedAttach)
	}
	if got.IfaceCluster[netsim.Prefix(321)] != 2 {
		t.Fatalf("iface cluster lost: %v", got.IfaceCluster)
	}
}

func TestDecodeRejectsForgedObservedTTL(t *testing.T) {
	a := pathTestAtlas()
	a.ObservedLinks[LinkKey(0, 1)] = ObservedTTLDays + 7 // immortal structure
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil || !strings.Contains(err.Error(), "lifetime") {
		t.Fatalf("err %v, want observed-lifetime rejection", err)
	}
}

func TestDeltaShipsClusterGrowthAndIfaceClusters(t *testing.T) {
	old := pathTestAtlas()
	next := pathTestAtlas()
	next.Day = 5
	next.NumClusters = 7
	next.ClusterAS = append(next.ClusterAS, 11, 12)
	next.Links = append(next.Links, Link{From: 5, To: 6, LatencyMS: 2, Planes: PlaneToDst})
	next.invalidateIndex()
	next.PrefixCluster[netsim.Prefix(888)] = 6
	next.IfaceCluster[netsim.Prefix(432)] = 5

	d := Diff(old, next)
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := old.Clone()
	got.Apply(d2)
	if got.NumClusters != 7 || len(got.ClusterAS) != 7 || got.ClusterAS[6] != 12 {
		t.Fatalf("cluster growth did not apply: %d %v", got.NumClusters, got.ClusterAS)
	}
	if got.LinkAt(5, 6) < 0 {
		t.Fatal("link into grown cluster space missing after apply")
	}
	if got.PrefixCluster[netsim.Prefix(888)] != 6 {
		t.Fatalf("new attachment missing: %v", got.PrefixCluster)
	}
	if got.IfaceCluster[netsim.Prefix(432)] != 5 {
		t.Fatalf("iface mapping missing: %v", got.IfaceCluster)
	}
}

func TestApplyRejectsOutOfSpaceAttachment(t *testing.T) {
	a := pathTestAtlas()
	d := &Delta{
		FromDay: a.Day, ToDay: a.Day + 1,
		UpLoss:          map[uint64]float32{},
		UpAdjust:        map[netsim.Prefix]float32{},
		UpPrefixCluster: map[netsim.Prefix]cluster.ClusterID{netsim.Prefix(888): 42},
		UpIfaceCluster:  map[netsim.Prefix]cluster.ClusterID{netsim.Prefix(432): 42},
	}
	a.Apply(d)
	if _, ok := a.PrefixCluster[netsim.Prefix(888)]; ok {
		t.Fatal("attachment outside the cluster space must not apply")
	}
	if _, ok := a.IfaceCluster[netsim.Prefix(432)]; ok {
		t.Fatal("iface mapping outside the cluster space must not apply")
	}
}

package atlas

import (
	"math"
	"sort"

	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/frontier"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// BuildInput carries one day's measurements into the builder.
//
// Top and Day are consulted only by the *simulated measurement tools*
// (physical-link annotation, BGP feed snapshots, late-exit detection) — the
// stand-ins for probing real routers and reading RouteViews. All inference
// operates on the observed traceroutes.
type BuildInput struct {
	// Top is the simulated topology the campaign probed.
	Top *netsim.Topology
	// Day is the BGP feed snapshot for the build day.
	Day *bgpsim.Day
	// Meter annotates physical link latencies (the probing stand-in).
	Meter *trace.Meter

	// VPTraces are vantage-point traceroutes (the TO_DST plane).
	VPTraces []trace.Traceroute
	// ClientTraces are end-host-contributed traceroutes (FROM_SRC plane).
	ClientTraces []trace.Traceroute
	// BGPFeeds lists route-collector peer ASes whose tables seed
	// 3-tuples and provider mappings (RouteViews/RIPE stand-in).
	BGPFeeds []netsim.ASN

	ClusterCfg cluster.Config
	// Clusters optionally supplies a precomputed clustering (e.g. one
	// stabilized against the previous day's via cluster.Stabilize, as the
	// production server's persistent registry would). When nil, the
	// builder clusters the observed interfaces itself.
	Clusters *cluster.Clustering
	// LossProbes is the probe-train length per link loss measurement.
	LossProbes int
	// Redundancy is the frontier assignment redundancy.
	Redundancy int
	// DegreeThreshold gates the 3-tuple check: tuples are only recorded
	// and enforced when the middle AS has a degree above it (§4.3.2).
	DegreeThreshold int
}

// DefaultFeeds picks the highest-degree ASes as BGP route collectors.
func DefaultFeeds(top *netsim.Topology, n int) []netsim.ASN {
	type dv struct {
		asn netsim.ASN
		deg int
	}
	ds := make([]dv, len(top.ASes))
	for i := range top.ASes {
		ds[i] = dv{top.ASes[i].ASN, len(top.ASAdj[i])}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].deg != ds[j].deg {
			return ds[i].deg > ds[j].deg
		}
		return ds[i].asn < ds[j].asn
	})
	if n > len(ds) {
		n = len(ds)
	}
	out := make([]netsim.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = ds[i].asn
	}
	return out
}

// Build processes one day's measurements into an atlas.
func Build(in BuildInput) *Atlas {
	if in.LossProbes <= 0 {
		in.LossProbes = 100
	}
	if in.Redundancy <= 0 {
		in.Redundancy = 2
	}
	if in.DegreeThreshold <= 0 {
		in.DegreeThreshold = 5
	}
	a := New()
	a.Day = in.Day.DayNum()

	// 1. Cluster every observed infrastructure interface (unless the
	// caller supplied a registry-stabilized clustering).
	cl := in.Clusters
	if cl == nil {
		var ifaces []netsim.IP
		forEachTrace(in, func(tr *trace.Traceroute, _ bool) {
			for _, h := range tr.Hops {
				if h.IP != 0 {
					ifaces = append(ifaces, h.IP)
				}
			}
		})
		cl = cluster.Cluster(in.Top, ifaces, in.ClusterCfg)
	}
	a.NumClusters = cl.NumClusters
	a.ClusterAS = append([]netsim.ASN(nil), cl.ClusterAS...)

	// 2. Extract directed cluster-level links from adjacent responsive
	// hops, remembering which VP observed each (for frontier assignment)
	// and an exemplar physical PoP pair (for the measurement tools).
	type linkInfo struct {
		planes    uint8
		popA      netsim.PoPID
		popB      netsim.PoPID
		observers map[int]bool
	}
	links := make(map[uint64]*linkInfo)
	vpIndex := make(map[netsim.Prefix]int)
	for _, tr := range in.VPTraces {
		if _, ok := vpIndex[tr.Src]; !ok {
			vpIndex[tr.Src] = len(vpIndex)
		}
	}
	forEachTrace(in, func(tr *trace.Traceroute, fromVP bool) {
		plane := PlaneFromSrc
		if fromVP {
			plane = PlaneToDst
		}
		originAS := in.Top.PrefixOrigin[tr.Dst]
		add := func(ip1, ip2 netsim.IP, c1, c2 cluster.ClusterID) *linkInfo {
			k := LinkKey(c1, c2)
			li := links[k]
			if li == nil {
				li = &linkInfo{
					popA:      in.Top.RouterPoP(ip1),
					popB:      in.Top.RouterPoP(ip2),
					observers: make(map[int]bool),
				}
				links[k] = li
			}
			li.planes |= plane
			if fromVP {
				li.observers[vpIndex[tr.Src]] = true
			}
			return li
		}
		for i := 0; i+1 < len(tr.Hops); i++ {
			ip1, ip2 := tr.Hops[i].IP, tr.Hops[i+1].IP
			if ip1 == 0 || ip2 == 0 {
				continue
			}
			c1, ok1 := cl.ClusterOf[ip1]
			c2, ok2 := cl.ClusterOf[ip2]
			if !ok1 || !ok2 || c1 == c2 {
				continue
			}
			add(ip1, ip2, c1, c2)
			// Access-tail reversal: links inside (or entering) the
			// destination's origin AS also yield the reverse direction.
			// Stubs never transit, so traceroutes can only ever *enter*
			// them; without this, no path out of a stub-attached source
			// is ever predictable. Physically these access tails are the
			// same circuits in both directions, so the annotation holds.
			if cl.ClusterAS[c2] == originAS && originAS != 0 {
				add(ip2, ip1, c2, c1)
			}
		}
	})

	// 3. Frontier-assign links to vantage points and annotate.
	keys := make([]uint64, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	observers := make([][]int, len(keys))
	for i, k := range keys {
		for vp := range links[k].observers {
			observers[i] = append(observers[i], vp)
		}
		sort.Ints(observers[i])
	}
	assign := frontier.Assign(observers, in.Redundancy)
	for i, k := range keys {
		li := links[k]
		phys := physicalLink(in.Top, li.popA, li.popB)
		var lat float64
		if len(assign[i]) > 0 && phys >= 0 {
			// Assigned vantage points measure precisely; average the
			// redundant samples.
			sum := 0.0
			for range assign[i] {
				sum += in.Meter.MeasureLinkLatency(phys)
			}
			lat = sum / float64(len(assign[i]))
		} else if phys >= 0 {
			lat = in.Meter.CoarseLinkLatency(phys)
		} else {
			lat = 1.0 // adjacent clusters of one PoP pair we cannot place
		}
		a.Links = append(a.Links, Link{
			From:      cluster.ClusterID(k >> 32),
			To:        cluster.ClusterID(uint32(k)),
			LatencyMS: float32(lat),
			Planes:    li.planes,
		})
		if len(assign[i]) > 0 && phys >= 0 {
			loss := in.Meter.MeasureLinkLoss(phys, li.popA, in.LossProbes)
			if loss >= 0.005 {
				a.Loss[k] = float32(loss)
			}
		}
	}

	// 4. Prefix attachment clusters: destinations vote with their last
	// responsive infrastructure hop, sources with their first.
	votes := make(map[netsim.Prefix]map[cluster.ClusterID]int)
	addVote := func(p netsim.Prefix, c cluster.ClusterID) {
		m := votes[p]
		if m == nil {
			m = make(map[cluster.ClusterID]int)
			votes[p] = m
		}
		m[c]++
	}
	forEachTrace(in, func(tr *trace.Traceroute, _ bool) {
		var first, last cluster.ClusterID = -1, -1
		for _, h := range tr.Hops {
			if h.IP == 0 {
				continue
			}
			c, ok := cl.ClusterOf[h.IP]
			if !ok {
				continue
			}
			if first < 0 {
				first = c
			}
			last = c
		}
		if first >= 0 {
			addVote(tr.Src, first)
		}
		if tr.Reached && last >= 0 {
			addVote(tr.Dst, last)
		}
	})
	pickBest := func(vs map[cluster.ClusterID]int) cluster.ClusterID {
		best, bestN := cluster.ClusterID(-1), -1
		for c, n := range vs {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		return best
	}
	for p, vs := range votes {
		a.PrefixCluster[p] = pickBest(vs)
	}

	// 4b. Interface prefixes: every clustered interface votes its /24 for
	// its own cluster, building the hop-placement table (IfaceCluster)
	// the upstream-observation ingest resolves uploaded traceroute hops
	// through. A /24 spanning several clusters goes to the majority — a
	// coarsening the agreement voting downstream tolerates.
	ifaceVotes := make(map[netsim.Prefix]map[cluster.ClusterID]int)
	for ip, c := range cl.ClusterOf {
		p := netsim.PrefixOf(ip)
		m := ifaceVotes[p]
		if m == nil {
			m = make(map[cluster.ClusterID]int)
			ifaceVotes[p] = m
		}
		m[c]++
	}
	for p, vs := range ifaceVotes {
		a.IfaceCluster[p] = pickBest(vs)
	}

	// 5. BGP origin table (full, as RouteViews provides).
	for p, asn := range in.Top.PrefixOrigin {
		a.PrefixAS[p] = asn
	}

	// 6. AS-level paths from traceroutes and BGP feeds.
	uniq := make(map[string]*weightedPath)
	addPath := func(p []netsim.ASN, w int) {
		if len(p) < 1 {
			return
		}
		k := asPathKey(p)
		if u, ok := uniq[k]; ok {
			u.count += w
			return
		}
		uniq[k] = &weightedPath{path: p, count: w}
	}
	forEachTrace(in, func(tr *trace.Traceroute, _ bool) {
		ips := make([]netsim.IP, 0, len(tr.Hops))
		for _, h := range tr.Hops {
			ips = append(ips, h.IP)
		}
		if p, ok := cluster.ASPathOf(ips, in.Top.PrefixOrigin); ok {
			addPath(p, 1)
		}
	})
	// BGP feeds advertise paths for every prefix targeted by the
	// campaign (a full-table stand-in).
	feedTargets := make(map[netsim.Prefix]bool)
	for _, tr := range in.VPTraces {
		feedTargets[tr.Dst] = true
	}
	feedList := make([]netsim.Prefix, 0, len(feedTargets))
	for p := range feedTargets {
		feedList = append(feedList, p)
	}
	sort.Slice(feedList, func(i, j int) bool { return feedList[i] < feedList[j] })
	for _, p := range feedList {
		for _, feed := range in.BGPFeeds {
			if fp, ok := in.Day.ASPath(feed, p); ok {
				addPath(fp, 1)
			}
		}
	}
	paths := make([]*weightedPath, 0, len(uniq))
	for _, u := range uniq {
		paths = append(paths, u)
	}
	sort.Slice(paths, func(i, j int) bool { return asPathKey(paths[i].path) < asPathKey(paths[j].path) })

	// 7. AS degrees over the observed AS graph.
	asAdj := make(map[netsim.ASN]map[netsim.ASN]bool)
	addAdj := func(x, y netsim.ASN) {
		m := asAdj[x]
		if m == nil {
			m = make(map[netsim.ASN]bool)
			asAdj[x] = m
		}
		m[y] = true
	}
	for _, u := range paths {
		for i := 0; i+1 < len(u.path); i++ {
			addAdj(u.path[i], u.path[i+1])
			addAdj(u.path[i+1], u.path[i])
		}
	}
	for asn, nbs := range asAdj {
		a.ASDegree[asn] = int32(len(nbs))
	}

	// 8. 3-tuples with commutative closure, recorded only when the middle
	// AS clears the degree threshold (low-degree edge ASes are too poorly
	// observed for the check to be sound, §4.3.2).
	for _, u := range paths {
		p := u.path
		for i := 0; i+2 < len(p); i++ {
			if int(a.ASDegree[p[i+1]]) <= in.DegreeThreshold {
				continue
			}
			a.Tuples[PackTriple(p[i], p[i+1], p[i+2])] = true
			a.Tuples[PackTriple(p[i+2], p[i+1], p[i])] = true
		}
	}

	// 9. Preference tuples (§4.3.3): for each observed route, any
	// equal-length alternative visible in the observed AS graph that
	// diverges at position k yields a vote (r[k]: r[k+1] > alternative).
	a.Prefs = inferPreferences(paths, asAdj)

	// 10. Provider mappings: penultimate ASes of paths that terminate at
	// the origin.
	provSet := make(map[netsim.ASN]map[netsim.ASN]bool)
	for _, u := range paths {
		p := u.path
		if len(p) < 2 {
			continue
		}
		d, up := p[len(p)-1], p[len(p)-2]
		m := provSet[d]
		if m == nil {
			m = make(map[netsim.ASN]bool)
			provSet[d] = m
		}
		m[up] = true
	}
	for d, ups := range provSet {
		list := make([]netsim.ASN, 0, len(ups))
		for u := range ups {
			list = append(list, u)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		a.Providers[d] = list
	}

	// 11. Gao relationship inference for the GRAPH baseline.
	plain := make([][]netsim.ASN, len(paths))
	for i, u := range paths {
		plain[i] = u.path
	}
	a.Rels = cluster.InferRelationships(plain)

	// 12. Late-exit detection (Spring et al. [54] stand-in): adjacencies
	// present in the observed link set are tested against the ground
	// truth with a 90% detection rate.
	seenPairs := make(map[uint64]bool)
	for _, l := range a.Links {
		x, y := a.ClusterAS[l.From], a.ClusterAS[l.To]
		if x != y && x != 0 && y != 0 {
			seenPairs[netsim.ASPairKey(x, y)] = true
		}
	}
	for k := range seenPairs {
		if in.Top.LateExit[k] && detect(k, 0.9) {
			a.LateExit[k] = true
		}
	}

	sort.Slice(a.Links, func(i, j int) bool {
		if a.Links[i].From != a.Links[j].From {
			return a.Links[i].From < a.Links[j].From
		}
		return a.Links[i].To < a.Links[j].To
	})
	a.invalidateIndex()
	return a
}

// forEachTrace visits VP traces (fromVP=true) then client traces.
func forEachTrace(in BuildInput, f func(tr *trace.Traceroute, fromVP bool)) {
	for i := range in.VPTraces {
		f(&in.VPTraces[i], true)
	}
	for i := range in.ClientTraces {
		f(&in.ClientTraces[i], false)
	}
}

// physicalLink locates the lowest-latency ground-truth link joining two
// PoPs, the target of the simulated link measurement tools. Returns -1 if
// the PoPs are not directly joined (possible when clustering merged remote
// interfaces; the builder then falls back to a default annotation).
func physicalLink(top *netsim.Topology, a, b netsim.PoPID) netsim.LinkID {
	if a < 0 || b < 0 {
		return -1
	}
	best := netsim.LinkID(-1)
	bestLat := math.Inf(1)
	for _, adj := range top.AdjPoP[a] {
		if adj.To == b && top.Links[adj.Link].LatencyMS < bestLat {
			best, bestLat = adj.Link, top.Links[adj.Link].LatencyMS
		}
	}
	return best
}

// asPathKey builds a compact string key for an AS path.
func asPathKey(p []netsim.ASN) string {
	b := make([]byte, 0, len(p)*4)
	for _, a := range p {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}

// weightedPath is an observed AS path with its observation count.
type weightedPath struct {
	path  []netsim.ASN
	count int
}

// inferPreferences implements §4.3.3. For every observed route r and
// position k, an equal-length alternative exists through neighbor x of r[k]
// when dist(x, dst) == len(r)-k-2 in the observed AS graph; each such
// alternative casts a vote (r[k]: r[k+1] > x). A preference is kept only if
// observed at least three times as often as its reverse.
func inferPreferences(paths []*weightedPath, asAdj map[netsim.ASN]map[netsim.ASN]bool) map[uint64]bool {
	// Hop distances from each destination AS over the observed graph.
	dests := make(map[netsim.ASN]bool)
	for _, u := range paths {
		if len(u.path) >= 3 {
			dests[u.path[len(u.path)-1]] = true
		}
	}
	distTo := make(map[netsim.ASN]map[netsim.ASN]int32, len(dests))
	for d := range dests {
		distTo[d] = bfsDist(d, asAdj)
	}
	votes := make(map[uint64]int)
	for _, u := range paths {
		p := u.path
		if len(p) < 3 {
			continue
		}
		d := p[len(p)-1]
		dist := distTo[d]
		for k := 0; k+2 < len(p); k++ {
			at, taken := p[k], p[k+1]
			remaining := int32(len(p) - k - 2) // hops from the next AS to d
			for x := range asAdj[at] {
				if x == taken || (k > 0 && x == p[k-1]) {
					continue
				}
				if dx, ok := dist[x]; ok && dx == remaining {
					votes[PackTriple(at, taken, x)] += u.count
				}
			}
		}
	}
	prefs := make(map[uint64]bool)
	for k, n := range votes {
		at, b, c := UnpackTriple(k)
		rev := votes[PackTriple(at, c, b)]
		if n >= 2 && n >= 3*rev {
			prefs[k] = true
		}
	}
	return prefs
}

func bfsDist(d netsim.ASN, asAdj map[netsim.ASN]map[netsim.ASN]bool) map[netsim.ASN]int32 {
	dist := map[netsim.ASN]int32{d: 0}
	frontier := []netsim.ASN{d}
	for h := int32(1); len(frontier) > 0; h++ {
		var next []netsim.ASN
		for _, x := range frontier {
			for y := range asAdj[x] {
				if _, ok := dist[y]; !ok {
					dist[y] = h
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return dist
}

// detect is the deterministic coin for simulated tool detections.
func detect(x uint64, p float64) bool {
	h := x*0x9e3779b97f4a7c15 ^ 0xD37EC7
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return float64(h>>11)/float64(1<<53) < p
}

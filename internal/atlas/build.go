package atlas

import (
	"math"
	"sort"

	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// BuildInput carries one day's measurements into the builder.
//
// Top and Day are consulted only by the *simulated measurement tools*
// (physical-link annotation, BGP feed snapshots, late-exit detection) — the
// stand-ins for probing real routers and reading RouteViews. All inference
// operates on the observed traceroutes.
type BuildInput struct {
	// Top is the simulated topology the campaign probed.
	Top *netsim.Topology
	// Day is the BGP feed snapshot for the build day.
	Day *bgpsim.Day
	// Meter annotates physical link latencies (the probing stand-in).
	Meter *trace.Meter

	// VPTraces are vantage-point traceroutes (the TO_DST plane).
	VPTraces []trace.Traceroute
	// ClientTraces are end-host-contributed traceroutes (FROM_SRC plane).
	ClientTraces []trace.Traceroute
	// BGPFeeds lists route-collector peer ASes whose tables seed
	// 3-tuples and provider mappings (RouteViews/RIPE stand-in).
	BGPFeeds []netsim.ASN

	ClusterCfg cluster.Config
	// Clusters optionally supplies a precomputed clustering (e.g. one
	// stabilized against the previous day's via cluster.Stabilize, as the
	// production server's persistent registry would). When nil, the
	// builder clusters the observed interfaces itself.
	Clusters *cluster.Clustering
	// LossProbes is the probe-train length per link loss measurement.
	LossProbes int
	// Redundancy is the frontier assignment redundancy.
	Redundancy int
	// DegreeThreshold gates the 3-tuple check: tuples are only recorded
	// and enforced when the middle AS has a degree above it (§4.3.2).
	DegreeThreshold int
}

// DefaultFeeds picks the highest-degree ASes as BGP route collectors.
func DefaultFeeds(top *netsim.Topology, n int) []netsim.ASN {
	type dv struct {
		asn netsim.ASN
		deg int
	}
	ds := make([]dv, len(top.ASes))
	for i := range top.ASes {
		ds[i] = dv{top.ASes[i].ASN, len(top.ASAdj[i])}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].deg != ds[j].deg {
			return ds[i].deg > ds[j].deg
		}
		return ds[i].asn < ds[j].asn
	})
	if n > len(ds) {
		n = len(ds)
	}
	out := make([]netsim.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = ds[i].asn
	}
	return out
}

// Build processes one day's measurements into an atlas. It is a
// materialized-slice convenience over StreamBuilder: two passes over the
// same traces (VP plane first, then clients) produce an atlas
// byte-identical to what the streaming path yields from an equivalent
// out-of-core trace stream.
func Build(in BuildInput) *Atlas {
	sb := NewStreamBuilder(StreamInput{
		Tools:           NewSimTools(in.Top, in.Day, in.Meter, in.BGPFeeds, in.ClusterCfg),
		Day:             in.Day.DayNum(),
		Clusters:        in.Clusters,
		LossProbes:      in.LossProbes,
		Redundancy:      in.Redundancy,
		DegreeThreshold: in.DegreeThreshold,
	})
	forEachTrace(in, func(tr *trace.Traceroute, _ bool) { sb.ObserveIfaces(tr) })
	sb.StartTraces()
	forEachTrace(in, func(tr *trace.Traceroute, fromVP bool) { sb.AddTrace(tr, fromVP) })
	return sb.Finish()
}

// forEachTrace visits VP traces (fromVP=true) then client traces.
func forEachTrace(in BuildInput, f func(tr *trace.Traceroute, fromVP bool)) {
	for i := range in.VPTraces {
		f(&in.VPTraces[i], true)
	}
	for i := range in.ClientTraces {
		f(&in.ClientTraces[i], false)
	}
}

// physicalLink locates the lowest-latency ground-truth link joining two
// PoPs, the target of the simulated link measurement tools. Returns -1 if
// the PoPs are not directly joined (possible when clustering merged remote
// interfaces; the builder then falls back to a default annotation).
func physicalLink(top *netsim.Topology, a, b netsim.PoPID) netsim.LinkID {
	if a < 0 || b < 0 {
		return -1
	}
	best := netsim.LinkID(-1)
	bestLat := math.Inf(1)
	for _, adj := range top.AdjPoP[a] {
		if adj.To == b && top.Links[adj.Link].LatencyMS < bestLat {
			best, bestLat = adj.Link, top.Links[adj.Link].LatencyMS
		}
	}
	return best
}

// asPathKey builds a compact string key for an AS path.
func asPathKey(p []netsim.ASN) string {
	b := make([]byte, 0, len(p)*4)
	for _, a := range p {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}

// weightedPath is an observed AS path with its observation count.
type weightedPath struct {
	path  []netsim.ASN
	count int
}

// inferPreferences implements §4.3.3. For every observed route r and
// position k, an equal-length alternative exists through neighbor x of r[k]
// when dist(x, dst) == len(r)-k-2 in the observed AS graph; each such
// alternative casts a vote (r[k]: r[k+1] > x). A preference is kept only if
// observed at least three times as often as its reverse.
//
// maxDests caps how many destination ASes get a BFS distance field
// (0 = all of them, the materialized-build behavior). At internet scale
// the per-destination BFS is the one superlinear stage left, so the
// streaming builder keeps only the most-observed destinations; routes to
// dropped destinations simply cast no preference votes.
func inferPreferences(paths []*weightedPath, asAdj map[netsim.ASN]map[netsim.ASN]bool, maxDests int) map[uint64]bool {
	// Hop distances from each destination AS over the observed graph.
	destWeight := make(map[netsim.ASN]int)
	for _, u := range paths {
		if len(u.path) >= 3 {
			destWeight[u.path[len(u.path)-1]] += u.count
		}
	}
	dests := make([]netsim.ASN, 0, len(destWeight))
	for d := range destWeight {
		dests = append(dests, d)
	}
	if maxDests > 0 && len(dests) > maxDests {
		sort.Slice(dests, func(i, j int) bool {
			if destWeight[dests[i]] != destWeight[dests[j]] {
				return destWeight[dests[i]] > destWeight[dests[j]]
			}
			return dests[i] < dests[j]
		})
		dests = dests[:maxDests]
	}
	distTo := make(map[netsim.ASN]map[netsim.ASN]int32, len(dests))
	for _, d := range dests {
		distTo[d] = bfsDist(d, asAdj)
	}
	votes := make(map[uint64]int)
	for _, u := range paths {
		p := u.path
		if len(p) < 3 {
			continue
		}
		d := p[len(p)-1]
		dist := distTo[d]
		for k := 0; k+2 < len(p); k++ {
			at, taken := p[k], p[k+1]
			remaining := int32(len(p) - k - 2) // hops from the next AS to d
			for x := range asAdj[at] {
				if x == taken || (k > 0 && x == p[k-1]) {
					continue
				}
				if dx, ok := dist[x]; ok && dx == remaining {
					votes[PackTriple(at, taken, x)] += u.count
				}
			}
		}
	}
	prefs := make(map[uint64]bool)
	for k, n := range votes {
		at, b, c := UnpackTriple(k)
		rev := votes[PackTriple(at, c, b)]
		if n >= 2 && n >= 3*rev {
			prefs[k] = true
		}
	}
	return prefs
}

func bfsDist(d netsim.ASN, asAdj map[netsim.ASN]map[netsim.ASN]bool) map[netsim.ASN]int32 {
	dist := map[netsim.ASN]int32{d: 0}
	frontier := []netsim.ASN{d}
	for h := int32(1); len(frontier) > 0; h++ {
		var next []netsim.ASN
		for _, x := range frontier {
			for y := range asAdj[x] {
				if _, ok := dist[y]; !ok {
					dist[y] = h
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return dist
}

// detect is the deterministic coin for simulated tool detections.
func detect(x uint64, p float64) bool {
	h := x*0x9e3779b97f4a7c15 ^ 0xD37EC7
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return float64(h>>11)/float64(1<<53) < p
}

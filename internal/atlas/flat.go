package atlas

import (
	"fmt"
	"sort"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Flat is the compiled, index-addressed serving form of an Atlas: every
// dataset the query engine reads on its hot path, laid out as flat arrays
// instead of Go maps. The mutable map-based Atlas stays the edit and codec
// surface (deltas, merges, folds all operate on it); Compile produces a
// Flat from it once per snapshot swap, and the engine answers every query
// against the Flat without chasing a single map bucket or pointer.
//
// Layout:
//
//   - The link table is a structure-of-arrays CSR keyed by destination
//     cluster: EdgeStart[w]..EdgeStart[w+1] index the edges arriving at
//     cluster w (traffic direction from->w), with parallel latency, loss,
//     plane, relationship, AS, and degree arrays — exactly the shape the
//     backtracking Dijkstra relaxes over. Per-edge derived facts the old
//     engine recomputed from maps (same-AS, late-exit, inferred rel,
//     origin degree) are baked in at compile time.
//   - Prefix tables (attachment cluster, BGP origin, interface clusters,
//     residual corrections) are sorted parallel key/value slices answered
//     by branch-free binary search.
//   - The 3-tuple, preference, provider, relationship, and late-exit sets
//     are sorted uint64 slices.
//
// Every field is a plain slice of fixed-width scalars, so a Flat can be
// serialized as raw little-endian sections and mapped back into memory
// with zero copies (see WriteFlat/OpenFlat): daemon startup is one mmap
// instead of a gzip decode + map build, and N replicas on one box share
// the page cache. A Flat is immutable after Compile/OpenFlat; all methods
// are safe for unbounded concurrent use.
type Flat struct {
	// Day is the atlas day this snapshot was compiled from.
	Day int32
	// NumClusters bounds the cluster ID space: every ClusterID in the
	// tables below is < NumClusters.
	NumClusters int32
	// ClusterAS maps each cluster to its owning AS (index = cluster ID).
	//inano:mmap
	ClusterAS []netsim.ASN

	// CSR link table, bucketed by destination (To) cluster. Buckets
	// preserve the Links slice order, so the engine relaxes edges in
	// exactly the order the map-based engine did (tie-break parity).
	//inano:mmap
	EdgeStart []uint32 // len NumClusters+1
	//inano:mmap
	EdgeFrom []cluster.ClusterID // source cluster of the edge
	//inano:mmap
	EdgeLat []float32
	//inano:mmap
	EdgeLoss []float32 // 0 when the link has no loss annotation
	//inano:mmap
	EdgePlanes []uint8
	//inano:mmap
	EdgeFlags []uint8 // EdgeSameAS | EdgeLate
	//inano:mmap
	EdgeRel []netsim.Rel // relationship of To's AS from From's perspective
	//inano:mmap
	EdgeFromAS []netsim.ASN
	//inano:mmap
	EdgeToAS []netsim.ASN
	//inano:mmap
	EdgeToDeg []int32 // observed AS-graph degree of the edge's To AS

	// Sorted prefix tables (parallel key/value slices): destination /24
	// to attachment cluster, destination /24 to BGP origin AS, and
	// infrastructure /24 to owning cluster.
	//inano:mmap
	PrefixClKeys []netsim.Prefix
	//inano:mmap
	PrefixClVals []cluster.ClusterID
	//inano:mmap
	PrefixASKeys []netsim.Prefix
	//inano:mmap
	PrefixASVals []netsim.ASN
	//inano:mmap
	IfaceKeys []netsim.Prefix
	//inano:mmap
	IfaceVals []cluster.ClusterID
	// Residual corrections: the union of the atlas's shipped
	// (GlobalAdjustMS) and client-local (AdjustMS) tables, key-aligned so
	// one binary search answers both terms.
	//inano:mmap
	AdjustKeys []netsim.Prefix
	//inano:mmap
	AdjustGlobal []float32
	//inano:mmap
	AdjustLocal []float32

	// Sorted policy sets.
	//inano:mmap
	Tuples []uint64 // PackTriple keys
	//inano:mmap
	Prefs []uint64 // PackTriple keys
	//inano:mmap
	Providers []uint64 // origin<<32 | provider
	//inano:mmap
	RelKeys []uint64 // netsim.ASPairKey
	//inano:mmap
	RelVals []netsim.Rel
	//inano:mmap
	LateExit []uint64 // netsim.ASPairKey
	// Full degree and loss tables (the per-edge arrays above carry the
	// hot-path values; these exist so Inflate can reconstruct the maps).
	//inano:mmap
	DegKeys []netsim.ASN
	//inano:mmap
	DegVals []int32
	//inano:mmap
	LossKeys []uint64
	//inano:mmap
	LossVals []float32

	// idx holds the derived Eytzinger-layout search indexes over the
	// sorted key tables above (see eytzinger.go). It is rebuilt by
	// buildIndex after Compile or a codec decode, never serialized, and
	// never aliases the mmap; the sorted slices stay the canonical form.
	idx flatIndex
}

// Per-edge flag bits in EdgeFlags.
const (
	// EdgeSameAS marks an intra-AS edge (From and To clusters share an AS).
	EdgeSameAS uint8 = 1 << 0
	// EdgeLate marks an inter-AS edge whose AS pair runs late-exit routing.
	EdgeLate uint8 = 1 << 1
)

// Compile builds the flat serving form of a. The atlas must not be mutated
// concurrently; the returned Flat does not alias any of a's mutable state,
// so a may keep evolving (copy-on-write or in place) afterwards.
func Compile(a *Atlas) *Flat {
	n := a.NumClusters
	f := &Flat{
		Day:         int32(a.Day),
		NumClusters: int32(n),
		ClusterAS:   append([]netsim.ASN(nil), a.ClusterAS...),
	}

	// Counting sort of links by To cluster, preserving slice order inside
	// each bucket (the order the map engine appended its in-edges).
	counts := make([]uint32, n+1)
	valid := 0
	for i := range a.Links {
		l := &a.Links[i]
		if int(l.From) >= n || int(l.To) >= n || l.From < 0 || l.To < 0 {
			continue // defensive: corrupt atlas rows are skipped
		}
		counts[l.To]++
		valid++
	}
	f.EdgeStart = make([]uint32, n+1)
	var sum uint32
	for w := 0; w < n; w++ {
		f.EdgeStart[w] = sum
		sum += counts[w]
	}
	f.EdgeStart[n] = sum
	f.EdgeFrom = make([]cluster.ClusterID, valid)
	f.EdgeLat = make([]float32, valid)
	f.EdgeLoss = make([]float32, valid)
	f.EdgePlanes = make([]uint8, valid)
	f.EdgeFlags = make([]uint8, valid)
	f.EdgeRel = make([]netsim.Rel, valid)
	f.EdgeFromAS = make([]netsim.ASN, valid)
	f.EdgeToAS = make([]netsim.ASN, valid)
	f.EdgeToDeg = make([]int32, valid)
	next := make([]uint32, n)
	copy(next, f.EdgeStart[:n])
	for i := range a.Links {
		l := &a.Links[i]
		if int(l.From) >= n || int(l.To) >= n || l.From < 0 || l.To < 0 {
			continue
		}
		ei := next[l.To]
		next[l.To]++
		fa, ta := a.ClusterAS[l.From], a.ClusterAS[l.To]
		f.EdgeFrom[ei] = l.From
		f.EdgeLat[ei] = l.LatencyMS
		f.EdgeLoss[ei] = a.Loss[LinkKey(l.From, l.To)]
		f.EdgePlanes[ei] = l.Planes
		var flags uint8
		if fa == ta {
			flags |= EdgeSameAS
		} else if a.LateExit[netsim.ASPairKey(fa, ta)] {
			flags |= EdgeLate
		}
		f.EdgeFlags[ei] = flags
		f.EdgeRel[ei] = a.RelOf(fa, ta)
		f.EdgeFromAS[ei] = fa
		f.EdgeToAS[ei] = ta
		f.EdgeToDeg[ei] = a.ASDegree[ta]
	}

	f.PrefixClKeys, f.PrefixClVals = sortedPrefixClusters(a.PrefixCluster)
	f.IfaceKeys, f.IfaceVals = sortedPrefixClusters(a.IfaceCluster)
	f.PrefixASKeys, f.PrefixASVals = sortedPrefixASNs(a.PrefixAS)
	f.AdjustKeys, f.AdjustGlobal, f.AdjustLocal = sortedAdjust(a.GlobalAdjustMS, a.AdjustMS)
	f.Tuples = sortedSetKeys(a.Tuples)
	f.Prefs = sortedSetKeys(a.Prefs)
	f.LateExit = sortedSetKeys(a.LateExit)
	f.RelKeys, f.RelVals = sortedRels(a.Rels)
	f.DegKeys, f.DegVals = sortedDegrees(a.ASDegree)
	f.LossKeys, f.LossVals = sortedLoss(a.Loss)

	provs := make([]uint64, 0, len(a.Providers))
	for origin, ups := range a.Providers {
		for _, up := range ups {
			provs = append(provs, uint64(origin)<<32|uint64(up))
		}
	}
	sort.Slice(provs, func(i, j int) bool { return provs[i] < provs[j] })
	f.Providers = provs
	f.buildIndex()
	return f
}

func sortedPrefixClusters(m map[netsim.Prefix]cluster.ClusterID) ([]netsim.Prefix, []cluster.ClusterID) {
	keys := make([]netsim.Prefix, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]cluster.ClusterID, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

func sortedPrefixASNs(m map[netsim.Prefix]netsim.ASN) ([]netsim.Prefix, []netsim.ASN) {
	keys := make([]netsim.Prefix, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]netsim.ASN, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

func sortedAdjust(global, local map[netsim.Prefix]float32) ([]netsim.Prefix, []float32, []float32) {
	union := make(map[netsim.Prefix]struct{}, len(global)+len(local))
	for k := range global {
		union[k] = struct{}{}
	}
	for k := range local {
		union[k] = struct{}{}
	}
	keys := make([]netsim.Prefix, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	g := make([]float32, len(keys))
	l := make([]float32, len(keys))
	for i, k := range keys {
		g[i] = global[k]
		l[i] = local[k]
	}
	return keys, g, l
}

func sortedSetKeys(m map[uint64]bool) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedRels(m map[uint64]netsim.Rel) ([]uint64, []netsim.Rel) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]netsim.Rel, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

func sortedDegrees(m map[netsim.ASN]int32) ([]netsim.ASN, []int32) {
	keys := make([]netsim.ASN, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]int32, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

func sortedLoss(m map[uint64]float32) ([]uint64, []float32) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]float32, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

// Closure-free binary searches: the query hot path must not allocate, and
// sort.Search's func parameter is one escape-analysis hiccup away from a
// heap closure. These compile to tight branch loops.

func searchPrefix(keys []netsim.Prefix, k netsim.Prefix) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}

func searchU64(keys []uint64, k uint64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}

func searchASN(keys []netsim.ASN, k netsim.ASN) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}

// ClusterOf returns the attachment cluster of a prefix.
func (f *Flat) ClusterOf(p netsim.Prefix) (cluster.ClusterID, bool) {
	if f.idx.prefixCl.built() {
		return f.idx.prefixCl.find(p)
	}
	if i, ok := searchPrefix(f.PrefixClKeys, p); ok {
		return f.PrefixClVals[i], true
	}
	return 0, false
}

// OriginAS returns the BGP origin of a prefix (0 when unknown).
func (f *Flat) OriginAS(p netsim.Prefix) netsim.ASN {
	if f.idx.prefixAS.built() {
		as, _ := f.idx.prefixAS.find(p)
		return as // zero when absent
	}
	if i, ok := searchPrefix(f.PrefixASKeys, p); ok {
		return f.PrefixASVals[i]
	}
	return 0
}

// IfaceClusterOf returns the cluster owning an infrastructure /24.
func (f *Flat) IfaceClusterOf(p netsim.Prefix) (cluster.ClusterID, bool) {
	if f.idx.iface.built() {
		return f.idx.iface.find(p)
	}
	if i, ok := searchPrefix(f.IfaceKeys, p); ok {
		return f.IfaceVals[i], true
	}
	return 0, false
}

// Adjust returns the shipped (global) and client-local residual correction
// terms for a destination prefix; ok is false when neither is carried.
func (f *Flat) Adjust(p netsim.Prefix) (global, local float32, ok bool) {
	if f.idx.adjust.built() {
		v, found := f.idx.adjust.find(p)
		return v.global, v.local, found
	}
	i, found := searchPrefix(f.AdjustKeys, p)
	if !found {
		return 0, 0, false
	}
	return f.AdjustGlobal[i], f.AdjustLocal[i], true
}

// HasTuple reports whether the 3-tuple (x,y,z) was observed.
func (f *Flat) HasTuple(x, y, z netsim.ASN) bool {
	k := PackTriple(x, y, z)
	if f.idx.tuples.built() {
		return f.idx.tuples.contains(k)
	}
	_, ok := searchU64(f.Tuples, k)
	return ok
}

// Prefers reports whether AS at prefers next-hop b over next-hop c.
func (f *Flat) Prefers(at, b, c netsim.ASN) bool {
	k := PackTriple(at, b, c)
	if f.idx.prefs.built() {
		return f.idx.prefs.contains(k)
	}
	_, ok := searchU64(f.Prefs, k)
	return ok
}

// ProviderCheck applies the §4.3.4 provider test for an edge from fromAS
// into the destination origin AS: true when the atlas has no provider data
// for origin, or records fromAS as one of its providers.
func (f *Flat) ProviderCheck(origin, fromAS netsim.ASN) bool {
	if f.idx.provs.built() {
		// Lower-bound probe: is any provider entry recorded for origin?
		key, _, any := f.idx.provs.ceil(uint64(origin) << 32)
		if !any || netsim.ASN(key>>32) != origin {
			return true // no provider data: cannot enforce
		}
		return f.idx.provs.contains(uint64(origin)<<32 | uint64(fromAS))
	}
	lo, _ := searchU64(f.Providers, uint64(origin)<<32)
	if lo >= len(f.Providers) || netsim.ASN(f.Providers[lo]>>32) != origin {
		return true // no provider data: cannot enforce
	}
	_, ok := searchU64(f.Providers, uint64(origin)<<32|uint64(fromAS))
	return ok
}

// RelOf returns the inferred relationship of y from x's perspective.
func (f *Flat) RelOf(x, y netsim.ASN) netsim.Rel {
	k := netsim.ASPairKey(x, y)
	var r netsim.Rel
	var ok bool
	if f.idx.rels.built() {
		r, ok = f.idx.rels.find(k)
	} else {
		var i int
		if i, ok = searchU64(f.RelKeys, k); ok {
			r = f.RelVals[i]
		}
	}
	if !ok {
		return netsim.RelNone
	}
	if x <= y {
		return r
	}
	return r.Invert()
}

// NumEdges returns the CSR link count.
func (f *Flat) NumEdges() int { return len(f.EdgeFrom) }

// Inflate reconstructs a mutable map-based Atlas from the flat form — the
// bridge that lets a daemon started from a mapped Flat still apply deltas
// and merge traceroutes (both of which edit the map form and recompile).
// The build-side ObservedLinks/ObservedAttach lifetime tables are not part
// of the serving form (deltas never carry them) and come back empty.
func (f *Flat) Inflate() *Atlas {
	a := New()
	a.Day = int(f.Day)
	a.NumClusters = int(f.NumClusters)
	a.ClusterAS = append([]netsim.ASN(nil), f.ClusterAS...)
	a.Links = make([]Link, 0, f.NumEdges())
	for w := 0; w < int(f.NumClusters); w++ {
		for ei := f.EdgeStart[w]; ei < f.EdgeStart[w+1]; ei++ {
			a.Links = append(a.Links, Link{
				From:      f.EdgeFrom[ei],
				To:        cluster.ClusterID(w),
				LatencyMS: f.EdgeLat[ei],
				Planes:    f.EdgePlanes[ei],
			})
		}
	}
	sort.Slice(a.Links, func(i, j int) bool {
		if a.Links[i].From != a.Links[j].From {
			return a.Links[i].From < a.Links[j].From
		}
		return a.Links[i].To < a.Links[j].To
	})
	for i, k := range f.LossKeys {
		a.Loss[k] = f.LossVals[i]
	}
	for i, k := range f.PrefixClKeys {
		a.PrefixCluster[k] = f.PrefixClVals[i]
	}
	for i, k := range f.IfaceKeys {
		a.IfaceCluster[k] = f.IfaceVals[i]
	}
	for i, k := range f.PrefixASKeys {
		a.PrefixAS[k] = f.PrefixASVals[i]
	}
	for i, k := range f.DegKeys {
		a.ASDegree[k] = f.DegVals[i]
	}
	for _, k := range f.Tuples {
		a.Tuples[k] = true
	}
	for _, k := range f.Prefs {
		a.Prefs[k] = true
	}
	for _, k := range f.LateExit {
		a.LateExit[k] = true
	}
	for i, k := range f.RelKeys {
		a.Rels[k] = f.RelVals[i]
	}
	for _, pk := range f.Providers {
		origin := netsim.ASN(pk >> 32)
		a.Providers[origin] = append(a.Providers[origin], netsim.ASN(uint32(pk)))
	}
	for i, k := range f.AdjustKeys {
		if g := f.AdjustGlobal[i]; g != 0 {
			a.GlobalAdjustMS[k] = g
		}
		if l := f.AdjustLocal[i]; l != 0 {
			a.AdjustMS[k] = l
		}
	}
	return a
}

// Validate checks the structural invariants every accessor relies on:
// consistent array lengths, a monotone CSR, in-range cluster IDs, and
// sorted key tables. OpenFlat runs it by default so a truncated or
// hand-edited file fails fast instead of answering garbage.
func (f *Flat) Validate() error {
	n := int(f.NumClusters)
	if n < 0 {
		return fmt.Errorf("atlas: flat: negative cluster count %d", n)
	}
	if len(f.ClusterAS) != n {
		return fmt.Errorf("atlas: flat: ClusterAS has %d entries, want %d", len(f.ClusterAS), n)
	}
	if len(f.EdgeStart) != n+1 {
		return fmt.Errorf("atlas: flat: EdgeStart has %d entries, want %d", len(f.EdgeStart), n+1)
	}
	ne := f.NumEdges()
	if n > 0 && (f.EdgeStart[0] != 0 || int(f.EdgeStart[n]) != ne) {
		return fmt.Errorf("atlas: flat: CSR bounds [%d,%d] do not span %d edges", f.EdgeStart[0], f.EdgeStart[n], ne)
	}
	for w := 0; w < n; w++ {
		if f.EdgeStart[w] > f.EdgeStart[w+1] {
			return fmt.Errorf("atlas: flat: CSR not monotone at cluster %d", w)
		}
	}
	for _, lens := range []struct {
		name string
		got  int
	}{
		{"EdgeLat", len(f.EdgeLat)}, {"EdgeLoss", len(f.EdgeLoss)},
		{"EdgePlanes", len(f.EdgePlanes)}, {"EdgeFlags", len(f.EdgeFlags)},
		{"EdgeRel", len(f.EdgeRel)}, {"EdgeFromAS", len(f.EdgeFromAS)},
		{"EdgeToAS", len(f.EdgeToAS)}, {"EdgeToDeg", len(f.EdgeToDeg)},
	} {
		if lens.got != ne {
			return fmt.Errorf("atlas: flat: %s has %d entries, want %d edges", lens.name, lens.got, ne)
		}
	}
	for _, from := range f.EdgeFrom {
		if from < 0 || int(from) >= n {
			return fmt.Errorf("atlas: flat: edge source cluster %d outside [0,%d)", from, n)
		}
	}
	if len(f.PrefixClVals) != len(f.PrefixClKeys) || len(f.PrefixASVals) != len(f.PrefixASKeys) ||
		len(f.IfaceVals) != len(f.IfaceKeys) || len(f.RelVals) != len(f.RelKeys) ||
		len(f.DegVals) != len(f.DegKeys) || len(f.LossVals) != len(f.LossKeys) ||
		len(f.AdjustGlobal) != len(f.AdjustKeys) || len(f.AdjustLocal) != len(f.AdjustKeys) {
		return fmt.Errorf("atlas: flat: key/value table length mismatch")
	}
	for i, cl := range f.PrefixClVals {
		if cl < 0 || int(cl) >= n {
			return fmt.Errorf("atlas: flat: prefix %v attached to cluster %d outside [0,%d)", f.PrefixClKeys[i], cl, n)
		}
	}
	for i, cl := range f.IfaceVals {
		if cl < 0 || int(cl) >= n {
			return fmt.Errorf("atlas: flat: iface prefix %v in cluster %d outside [0,%d)", f.IfaceKeys[i], cl, n)
		}
	}
	if err := prefixesSorted("PrefixCluster", f.PrefixClKeys); err != nil {
		return err
	}
	if err := prefixesSorted("PrefixAS", f.PrefixASKeys); err != nil {
		return err
	}
	if err := prefixesSorted("IfaceCluster", f.IfaceKeys); err != nil {
		return err
	}
	if err := prefixesSorted("Adjust", f.AdjustKeys); err != nil {
		return err
	}
	for _, set := range []struct {
		name string
		keys []uint64
	}{
		{"Tuples", f.Tuples}, {"Prefs", f.Prefs}, {"Providers", f.Providers},
		{"Rels", f.RelKeys}, {"LateExit", f.LateExit}, {"Loss", f.LossKeys},
	} {
		for i := 1; i < len(set.keys); i++ {
			if set.keys[i-1] >= set.keys[i] {
				return fmt.Errorf("atlas: flat: %s keys not strictly sorted at %d", set.name, i)
			}
		}
	}
	for i := 1; i < len(f.DegKeys); i++ {
		if f.DegKeys[i-1] >= f.DegKeys[i] {
			return fmt.Errorf("atlas: flat: ASDegree keys not strictly sorted at %d", i)
		}
	}
	return nil
}

func prefixesSorted(name string, keys []netsim.Prefix) error {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("atlas: flat: %s keys not strictly sorted at %d", name, i)
		}
	}
	return nil
}

package server

import (
	"context"
	"net/http"
	"time"

	inano "inano"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// Upstream observation ingest: the build-server half of the paper's
// bidirectional §5 loop. Clients POST their corrective observations
// (measured vs predicted RTT per destination, NDJSON) to
// /v1/observations; the daemon validates them against the serving atlas,
// attributes each report to the connecting peer's source attachment
// cluster, and feeds a feedback.Aggregator whose periodic snapshots the
// build pipeline folds into the next daily delta
// (atlas.BuildDeltaWithObservations). The endpoint is enabled by setting
// Config.Aggregator (inanod -aggregate); without one it answers 501.

// maxObservationBody caps one /v1/observations request body: 512 full-size
// observation lines is far beyond any honest corrective budget, and small
// enough that a hostile stream cannot hold the handler's memory hostage.
const maxObservationBody = 512 * feedback.MaxObservationLineBytes

// observationsResponse summarizes one /v1/observations report.
type observationsResponse struct {
	// Accepted observations entered the aggregate (as a residual, a hop
	// path, or both).
	Accepted int `json:"accepted"`
	// Paths counts accepted observations whose hop list survived
	// clusterization and joined the structural aggregate.
	Paths int `json:"paths"`
	// PathsRejected counts hop lists the ingest refused: unmappable or
	// looping tails (see feedback.ClusterizeHops). The observation's
	// scalar residual, if any, was still processed.
	PathsRejected int `json:"paths_rejected"`
	// RateLimited observations were dropped by the per-source token
	// bucket; retry after backing off.
	RateLimited int `json:"rate_limited"`
	// Unknown observations named destinations (or came from sources) the
	// serving atlas cannot place, so they cannot join the aggregate.
	Unknown int `json:"unknown"`
	// Error reports a malformed report line; observations before it were
	// still processed.
	Error string `json:"error,omitempty"`
	Day   int    `json:"day"`
}

// handleObservations ingests an NDJSON upstream-observation report: one
// {"src","dst","rtt_ms","predicted_ms","hops":[...]} line per corrective
// measurement (see feedback.ParseObservationReport for the hardened
// contract). Ingestion is token-bucket rate-limited per connecting peer.
// Each accepted observation is validated against the serving atlas: the
// destination must have an attachment cluster, the reporter must resolve
// to one (see reporterCluster — the connecting peer's cluster when the
// atlas can place it, so claimed addresses buy no extra votes), and the
// residual is computed against the *server's own* prediction for the
// pair, so a stale or lying predicted_ms cannot skew the aggregate.
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return httpError(w, http.StatusMethodNotAllowed, "use POST")
	}
	if s.cfg.Aggregator == nil {
		return httpError(w, http.StatusNotImplemented, "observation ingest not enabled on this daemon")
	}
	body := http.MaxBytesReader(w, r.Body, maxObservationBody)
	obs, parseErr := feedback.ParseObservationReport(body)
	if parseErr != nil && len(obs) == 0 {
		return httpError(w, http.StatusBadRequest, "%v", parseErr)
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	granted := s.obsLimiter.take(sourceKey(r), len(obs))
	// One pinned snapshot scores and labels the whole report: a hot
	// reload mid-report cannot mix residuals measured against different
	// atlas days into one aggregate entry.
	snap := s.c.Snapshot()
	resp := observationsResponse{
		RateLimited: len(obs) - granted,
		Day:         snap.Day(),
	}
	if parseErr != nil {
		resp.Error = parseErr.Error()
	}
	for i := range obs[:granted] {
		res, err := s.ingestObservation(ctx, r, snap, &obs[i])
		if err != nil {
			resp.Error = err.Error()
			break
		}
		if res.pathRejected {
			resp.PathsRejected++
		}
		if res.path {
			resp.Paths++
		}
		if !res.path && !res.residual {
			resp.Unknown++
			continue
		}
		resp.Accepted++
	}
	s.obsAccepted.Add(uint64(resp.Accepted))
	s.obsPaths.Add(uint64(resp.Paths))
	s.obsPathRejects.Add(uint64(resp.PathsRejected))
	s.obsUnknown.Add(uint64(resp.Unknown))
	s.obsRateLimited.Add(uint64(resp.RateLimited))
	if granted == 0 && resp.RateLimited > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		return writeJSONBody(w, resp)
	}
	return writeJSON(w, resp)
}

// ingestResult reports what one observation contributed to the aggregate.
type ingestResult struct {
	// residual: the scalar residual was recorded; path: the clusterized
	// hop tail was recorded; pathRejected: the hop list was present but
	// refused (unmappable or looping).
	residual, path, pathRejected bool
}

// ingestObservation validates one observation against the serving atlas
// and records its two independent contributions: the scalar RTT residual
// (which needs a served prediction for the pair) and the clusterized hop
// tail (which needs only mappable hops — the whole point is destinations
// the atlas cannot yet predict). A zero result means the atlas could
// place neither: unknown source, or a destination with neither a served
// prediction nor a usable hop tail.
func (s *Server) ingestObservation(ctx context.Context, r *http.Request, snap inano.Snapshot, o *feedback.UpstreamObservation) (ingestResult, error) {
	var res ingestResult
	srcP, dstP := netsim.PrefixOf(o.Src), netsim.PrefixOf(o.Dst)
	srcCl, ok := s.reporterCluster(r, snap, srcP)
	if !ok {
		return res, nil
	}

	// Structural contribution: clusterize the hop list against the
	// serving atlas (hop /24 -> attachment cluster) and store the
	// destination-side tail under this reporter's identity for agreement
	// voting. Unmappable or looping hop lists are rejected wholesale.
	if len(o.Hops) >= 2 {
		path, linkMS, perr := feedback.ClusterizeHops(o.Hops, dstP, snap.HopCluster)
		switch {
		case perr != nil:
			res.pathRejected = true
		case len(path) >= 2:
			s.cfg.Aggregator.RecordPath(srcCl, dstP, path, linkMS)
			res.path = true
		}
	}

	// Scalar contribution: the residual against the server's own served
	// prediction. Requires a placeable destination and a prediction (the
	// tree build for a cold destination is bounded by the request
	// deadline) plus a claimed predicted_ms, which marks the observation
	// as corrective rather than structure-only.
	if o.PredictedMS > 0 {
		if _, ok := snap.AttachmentCluster(dstP); ok {
			infos, err := snap.QueryBatch(ctx, [][2]netsim.Prefix{{srcP, dstP}})
			if err != nil {
				return res, err
			}
			if infos[0].Found {
				s.cfg.Aggregator.Record(srcCl, dstP, o.RTTMS-infos[0].RTTMS)
				res.residual = true
			}
		}
	}
	return res, nil
}

// reporterCluster resolves the reporter's identity in the aggregate: the
// attachment cluster of the *connecting peer* whenever the serving atlas
// can place it — a reporter cannot claim its way into other networks'
// votes by rotating the report's src field. Only when the connection
// address is meaningless to the atlas (labs, NATed deployments) does the
// claimed source's cluster stand in; the per-connection rate limit still
// bounds how fast such a reporter can touch slots. The claimed src always
// drives the prediction pair the residual is scored against.
func (s *Server) reporterCluster(r *http.Request, snap inano.Snapshot, claimed netsim.Prefix) (int32, bool) {
	if ip, err := feedback.ParseIPv4(sourceKey(r)); err == nil {
		if cl, ok := snap.AttachmentCluster(netsim.PrefixOf(ip)); ok {
			return cl, true
		}
	}
	return snap.AttachmentCluster(claimed)
}

// RunObservationSnapshots periodically cuts the aggregator's snapshot to
// path (atomically), where the build pipeline picks it up for the next
// delta (inano-build -observations). It blocks until ctx is done, writing
// one final snapshot on shutdown so the freshest aggregate survives a
// restart. Run it in a goroutine alongside the HTTP server.
func (s *Server) RunObservationSnapshots(ctx context.Context, path string, interval time.Duration) {
	if s.cfg.Aggregator == nil {
		return
	}
	if interval <= 0 {
		interval = time.Minute
	}
	write := func() {
		snap := s.cfg.Aggregator.Snapshot(s.c.Day())
		if err := feedback.SaveSnapshot(path, snap); err != nil {
			s.cfg.Logf("inanod: observation snapshot %s: %v", path, err)
			return
		}
		s.obsSnapshots.Inc()
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			write()
			return
		case <-t.C:
			write()
		}
	}
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestPeerIDEchoed(t *testing.T) {
	f := buildFixture(t, 230)
	_, ts := start(t, f, func(cfg *Config) { cfg.PeerID = "replica-7" })

	var body struct {
		Status string `json:"status"`
		Peer   string `json:"peer"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if body.Peer != "replica-7" {
		t.Fatalf("healthz peer = %q, want replica-7", body.Peer)
	}
	if got := resp.Header.Get("X-Inano-Peer"); got != "replica-7" {
		t.Fatalf("X-Inano-Peer = %q, want replica-7", got)
	}
}

// TestDrainServesInFlightRefusesNew is the rolling-restart contract: a
// draining replica flips /healthz to 503 (so a router pulls it from the
// ring), refuses new serving requests with 503, but keeps answering the
// streams it already accepted.
func TestDrainServesInFlightRefusesNew(t *testing.T) {
	f := buildFixture(t, 231)
	s, ts := start(t, f, func(cfg *Config) { cfg.PeerID = "r1" })
	src, dst := ipStr(f.vps[0]), ipStr(f.targets[3])

	// Open a batch stream and get one answer so the request is in flight.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch?window=1", pr)
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- resp
	}()
	line := fmt.Sprintf(`{"src":%q,"dst":%q}`+"\n", src, dst)
	if _, err := io.WriteString(pw, line); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-resCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers")
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	s.StartDraining()
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDraining")
	}
	if n := s.InFlight(); n < 1 {
		t.Fatalf("InFlight = %d with a batch stream open", n)
	}

	// Health flips to 503 "draining" so the router's next pass drops us.
	var h struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz = %d %q, want 503 draining", hr.StatusCode, h.Status)
	}
	if h.Inflight < 1 {
		t.Fatalf("healthz inflight = %d, want >= 1", h.Inflight)
	}

	// New serving requests are refused with a retryable 503.
	qr, err := http.Get(fmt.Sprintf("%s/v1/query?src=%s&dst=%s", ts.URL, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()
	if qr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %d, want 503", qr.StatusCode)
	}
	if qr.Header.Get("X-Inano-Draining") != "1" {
		t.Fatal("503 during drain missing X-Inano-Draining header")
	}

	// Observability stays up while draining.
	for _, path := range []string{"/metrics", "/debug/stats"} {
		mr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, mr.Body)
		mr.Body.Close()
		if mr.StatusCode != http.StatusOK {
			t.Fatalf("%s during drain: %d, want 200", path, mr.StatusCode)
		}
	}

	// The in-flight stream still answers new pairs.
	if _, err := io.WriteString(pw, line); err != nil {
		t.Fatal(err)
	}
	answer, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(answer, dst) {
		t.Fatalf("in-flight answer during drain: %q", answer)
	}
	pw.Close()
	if rest, err := io.ReadAll(br); err != nil || strings.Contains(string(rest), "error") {
		t.Fatalf("stream end: %q, %v", rest, err)
	}

	// With the stream closed the replica goes idle — what the daemon's
	// drain loop polls for before exiting 0.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after stream closed", n)
	}
}

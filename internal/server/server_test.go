package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/netsim"
	"inano/sim"
)

// fixture is a served world: a client over day 0's atlas plus the encoded
// day 0 -> day 1 delta for reload tests.
type fixture struct {
	client  *inano.Client
	vps     []netsim.Prefix
	targets []netsim.Prefix
	delta   []byte
	day1    *atlas.Atlas
}

func buildFixture(t testing.TB, seed int64) *fixture {
	t.Helper()
	w := sim.NewWorld(sim.Tiny, seed)
	vps := w.VantagePoints(12)
	targets := append([]netsim.Prefix(nil), w.EdgePrefixes()...)
	seen := make(map[netsim.Prefix]bool, len(targets))
	for _, p := range targets {
		seen[p] = true
	}
	for _, vp := range vps {
		if !seen[vp] {
			targets = append(targets, vp)
		}
	}
	build := func(day int) *atlas.Atlas {
		return w.Measure(sim.CampaignOptions{Day: day, VPs: vps, Targets: targets}).BuildAtlas()
	}
	a0, a1 := build(0), build(1)
	var buf bytes.Buffer
	if err := atlas.Diff(a0, a1).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		client:  inano.FromAtlas(a0),
		vps:     vps,
		targets: targets,
		delta:   buf.Bytes(),
		day1:    a1,
	}
}

// start serves the fixture over httptest with the given extra config.
func start(t testing.TB, f *fixture, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Client: f.client, Logf: t.Logf}
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp
}

func ipStr(p netsim.Prefix) string { return p.HostIP().String() }

func TestHealthz(t *testing.T) {
	f := buildFixture(t, 200)
	_, ts := start(t, f, nil)
	var body struct {
		Status string `json:"status"`
		Day    int    `json:"day"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != 200 || body.Status != "ok" || body.Day != 0 {
		t.Fatalf("healthz = %d %+v, want 200 ok day 0", resp.StatusCode, body)
	}
}

// TestQueryEndpointParity checks /v1/query returns exactly the library
// answer, including the torn-read invariant rtt == fwd + rev.
func TestQueryEndpointParity(t *testing.T) {
	f := buildFixture(t, 201)
	_, ts := start(t, f, nil)
	src, dst := f.vps[0], f.targets[7]
	want := f.client.QueryPrefix(src, dst)

	var got queryResult
	resp := getJSON(t, fmt.Sprintf("%s/v1/query?src=%s&dst=%s", ts.URL, ipStr(src), ipStr(dst)), &got)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Found != want.Found || got.RTTMS != want.RTTMS || got.LossRate != want.LossRate {
		t.Fatalf("wire %+v != library %+v", got, want)
	}
	if want.Found && math.Abs(got.FwdMS+got.RevMS-got.RTTMS) > 1e-9 {
		t.Fatalf("fwd %v + rev %v != rtt %v", got.FwdMS, got.RevMS, got.RTTMS)
	}

	// Bad input surfaces as a 400 with a JSON error, not a 500.
	resp2, err := http.Get(ts.URL + "/v1/query?src=nonsense&dst=1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad src: status %d, want 400", resp2.StatusCode)
	}
}

// TestQueryCoalescesConcurrentSingles is the daemon-level cache-warming
// property: N concurrent /v1/query requests for one cold pair must cost
// exactly one forward and one reverse tree build (engine singleflight), not
// N of each.
func TestQueryCoalescesConcurrentSingles(t *testing.T) {
	f := buildFixture(t, 202)
	_, ts := start(t, f, nil)
	src, dst := f.vps[1], f.targets[3]
	url := fmt.Sprintf("%s/v1/query?src=%s&dst=%s", ts.URL, ipStr(src), ipStr(dst))

	const n = 16
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-startCh
			var res queryResult
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- err
				return
			}
			if !res.Found {
				errs <- fmt.Errorf("no prediction for %s", url)
			}
		}()
	}
	close(startCh)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := f.client.CacheStats()
	if st.Builds != 2 {
		t.Fatalf("16 concurrent singles to one cold pair cost %d tree builds, want 2 (1 fwd + 1 rev)", st.Builds)
	}
	if st.Hits+st.Misses < 2*n {
		t.Fatalf("lookups = %d, want >= %d", st.Hits+st.Misses, 2*n)
	}
}

func batchLine(src, dst netsim.Prefix) string {
	return fmt.Sprintf(`{"src":%q,"dst":%q}`+"\n", ipStr(src), ipStr(dst))
}

// TestBatchStreamsIncrementally proves /v1/batch buffers neither the
// request nor the response: the client writes one window of pairs, reads
// that window's results while the request body is still open, and repeats.
// If the server buffered the full request (or full response), the first
// read would deadlock.
func TestBatchStreamsIncrementally(t *testing.T) {
	f := buildFixture(t, 203)
	_, ts := start(t, f, nil)
	const window = 4

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/batch?window=4", pr)
	if err != nil {
		t.Fatal(err)
	}

	writeWindow := func(k int) {
		for i := 0; i < window; i++ {
			src := f.vps[(k*window+i)%len(f.vps)]
			dst := f.targets[(k*window+i)%len(f.targets)]
			if _, err := io.WriteString(pw, batchLine(src, dst)); err != nil {
				t.Errorf("writing window %d: %v", k, err)
			}
		}
	}

	// First window goes out before Do returns (the server only commits
	// response headers once it has results to flush).
	go writeWindow(0)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	readWindow := func() []queryResult {
		out := make([]queryResult, 0, window)
		for i := 0; i < window; i++ {
			line, err := br.ReadBytes('\n')
			if err != nil {
				t.Fatalf("reading result %d: %v", i, err)
			}
			var res queryResult
			if err := json.Unmarshal(line, &res); err != nil {
				t.Fatalf("bad result line %q: %v", line, err)
			}
			if res.Error != "" {
				t.Fatalf("stream error: %s", res.Error)
			}
			out = append(out, res)
		}
		return out
	}

	for k := 0; k < 3; k++ {
		if k > 0 {
			writeWindow(k) // request body still open: interleaved round k
		}
		for i, res := range readWindow() {
			src := f.vps[(k*window+i)%len(f.vps)]
			dst := f.targets[(k*window+i)%len(f.targets)]
			want := f.client.QueryPrefix(src, dst)
			if res.Found != want.Found || res.RTTMS != want.RTTMS {
				t.Fatalf("round %d result %d: wire %+v != library %+v", k, i, res, want)
			}
		}
	}
	pw.Close()
	if _, err := br.ReadBytes('\n'); err != io.EOF {
		t.Fatalf("expected clean EOF after closing request body, got %v", err)
	}
}

// TestBatchHotReloadMidStream is the acceptance scenario: a 100k-pair
// streamed batch runs while a delta hot-reload swaps the atlas. Every
// result must be internally consistent (rtt == fwd + rev — no torn reads),
// the whole stream must answer from its pinned snapshot, and the daemon
// must serve the new day afterwards.
func TestBatchHotReloadMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-pair stream")
	}
	f := buildFixture(t, 204)
	s, ts := start(t, f, func(c *Config) { c.StreamWindow = 2048 })

	deltaPath := filepath.Join(t.TempDir(), "delta.bin")
	if err := os.WriteFile(deltaPath, f.delta, 0o644); err != nil {
		t.Fatal(err)
	}

	const nPairs = 120_000
	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		bw := bufio.NewWriter(pw)
		for i := 0; i < nPairs; i++ {
			src := f.vps[i%len(f.vps)]
			dst := f.targets[i%len(f.targets)]
			if _, err := bw.WriteString(batchLine(src, dst)); err != nil {
				return // reader gone; the test will report it
			}
		}
		bw.Flush()
	}()

	req, err := http.NewRequest("POST", ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	reloaded := false
	got := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		var res queryResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("result %d: bad line %q: %v", got, sc.Text(), err)
		}
		if res.Error != "" {
			t.Fatalf("stream aborted after %d results: %s", got, res.Error)
		}
		if res.Found {
			if math.Abs(res.FwdMS+res.RevMS-res.RTTMS) > 1e-9 {
				t.Fatalf("result %d torn: fwd %v + rev %v != rtt %v", got, res.FwdMS, res.RevMS, res.RTTMS)
			}
			if res.LossRate < 0 || res.LossRate > 1 {
				t.Fatalf("result %d: loss %v out of range", got, res.LossRate)
			}
		}
		// The stream's snapshot is pinned at request start: every line
		// reports day 0 even after the reload lands.
		if res.Day != 0 {
			t.Fatalf("result %d answered from day %d, want pinned day 0", got, res.Day)
		}
		got++
		if !reloaded && got > nPairs/4 {
			reloaded = true
			if err := s.ApplyDeltaFile(deltaPath); err != nil {
				t.Fatalf("hot reload failed: %v", err)
			}
			if d := f.client.Day(); d != f.day1.Day {
				t.Fatalf("after reload client serves day %d, want %d", d, f.day1.Day)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != nPairs {
		t.Fatalf("streamed %d results, want %d", got, nPairs)
	}
	if !reloaded {
		t.Fatal("reload never happened")
	}

	// New requests see the new day.
	var health struct {
		Day int `json:"day"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Day != f.day1.Day {
		t.Fatalf("post-reload day = %d, want %d", health.Day, f.day1.Day)
	}
}

// TestBatchDeadlineAbortsStream: the producer stalls past the request's
// deadline between two windows; the stream must answer the first window,
// then end with an error line naming the deadline, and the daemon must
// keep serving.
func TestBatchDeadlineAbortsStream(t *testing.T) {
	f := buildFixture(t, 205)
	_, ts := start(t, f, nil)
	const window = 8

	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < window; i++ {
			io.WriteString(pw, batchLine(f.vps[i%len(f.vps)], f.targets[i%len(f.targets)]))
		}
		time.Sleep(30 * time.Millisecond) // outlives the 10ms deadline
		for i := window; i < 2*window; i++ {
			io.WriteString(pw, batchLine(f.vps[i%len(f.vps)], f.targets[i%len(f.targets)]))
		}
	}()
	req, err := http.NewRequest("POST", ts.URL+"/v1/batch?deadline_ms=10&window=8", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawError := false
	results := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var res queryResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if res.Error != "" {
			sawError = true
			if !strings.Contains(res.Error, "context deadline exceeded") {
				t.Fatalf("error line %q does not name the deadline", res.Error)
			}
			break
		}
		results++
	}
	if !sawError {
		t.Fatalf("stream completed (%d results) despite the expired deadline", results)
	}
	// Results arrive in whole windows: either the first window beat the
	// deadline or nothing did — never a torn window.
	if results != 0 && results != window {
		t.Fatalf("answered %d results before the deadline error, want 0 or %d", results, window)
	}
	// The daemon survives an aborted stream.
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("daemon unhealthy after aborted batch: %+v", health)
	}
}

// TestBatchWindowClamped: an absurd client-supplied window must not let
// one request size the daemon's buffers — it is clamped, and the batch
// still answers.
func TestBatchWindowClamped(t *testing.T) {
	f := buildFixture(t, 210)
	_, ts := start(t, f, nil)
	body := strings.NewReader(batchLine(f.vps[0], f.targets[0]) + batchLine(f.vps[1], f.targets[1]))
	resp, err := http.Post(ts.URL+"/v1/batch?window=2000000000", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || strings.Contains(lines[0], "error") {
		t.Fatalf("clamped-window batch failed:\n%s", raw)
	}
}

func TestBatchMalformedLine(t *testing.T) {
	f := buildFixture(t, 206)
	_, ts := start(t, f, nil)
	body := strings.NewReader(batchLine(f.vps[0], f.targets[0]) + "this is not json\n")
	resp, err := http.Post(ts.URL+"/v1/batch?window=1", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 result + 1 error:\n%s", len(lines), raw)
	}
	var last queryResult
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(last.Error, "line 2") {
		t.Fatalf("error %q does not name the offending line", last.Error)
	}
}

// TestRankEndpoint checks /v1/rank orders candidates exactly like the
// library's RankByRTT.
func TestRankEndpoint(t *testing.T) {
	f := buildFixture(t, 207)
	_, ts := start(t, f, nil)
	src := f.vps[2]
	cands := f.targets[:8]
	wantOrder := f.client.RankByRTT(src, cands)

	reqBody := rankRequest{Src: ipStr(src)}
	for _, c := range cands {
		reqBody.Candidates = append(reqBody.Candidates, ipStr(c))
	}
	raw, _ := json.Marshal(reqBody)
	resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Ranked []rankedCandidate `json:"ranked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ranked) != len(cands) {
		t.Fatalf("ranked %d candidates, want %d", len(out.Ranked), len(cands))
	}
	for i, rc := range out.Ranked {
		if want := ipStr(wantOrder[i]); rc.IP != want {
			t.Fatalf("rank %d = %s, want %s (full: %+v)", i, rc.IP, want, out.Ranked)
		}
	}
}

// TestMetricsAndStats drives a few requests and checks both observability
// surfaces expose them.
func TestMetricsAndStats(t *testing.T) {
	f := buildFixture(t, 208)
	_, ts := start(t, f, nil)
	url := fmt.Sprintf("%s/v1/query?src=%s&dst=%s", ts.URL, ipStr(f.vps[0]), ipStr(f.targets[0]))
	for i := 0; i < 3; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	prom := string(raw)
	st := f.client.CacheStats()
	for _, w := range []string{
		`inanod_http_requests_total{handler="query"} 3`,
		`inanod_http_request_seconds_bucket{handler="query",le="+Inf"} 3`,
		fmt.Sprintf("inanod_tree_cache_builds %d", st.Builds),
		"inanod_atlas_day 0",
		"inanod_http_inflight",
		"inanod_atlas_reloads_total 0",
	} {
		if !strings.Contains(prom, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}

	var stats struct {
		TreeCache struct {
			Builds   uint64  `json:"builds"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"tree_cache"`
		HTTP map[string]struct {
			Requests uint64 `json:"requests"`
		} `json:"http"`
	}
	getJSON(t, ts.URL+"/debug/stats", &stats)
	if stats.TreeCache.Builds != st.Builds {
		t.Errorf("stats builds = %d, want %d", stats.TreeCache.Builds, st.Builds)
	}
	if stats.HTTP["query"].Requests != 3 {
		t.Errorf("stats query requests = %d, want 3", stats.HTTP["query"].Requests)
	}
}

// TestWatchDeltaFile drops a delta file and waits for the poller to apply
// it copy-on-write.
func TestWatchDeltaFile(t *testing.T) {
	f := buildFixture(t, 209)
	s, _ := start(t, f, nil)
	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "delta.bin")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchDeltaFile(ctx, deltaPath, 10*time.Millisecond)
	}()

	time.Sleep(30 * time.Millisecond) // a few polls with no file: no-op
	if err := os.WriteFile(deltaPath, f.delta, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.client.Day() != f.day1.Day {
		if time.Now().After(deadline) {
			t.Fatalf("watcher did not apply the delta (still day %d)", f.client.Day())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.reloads.Value() != 1 {
		t.Fatalf("reloads = %d, want 1", s.reloads.Value())
	}

	// Re-writing the same delta now mismatches FromDay: counted as an
	// error, daemon unaffected.
	if err := os.WriteFile(deltaPath, f.delta, 0o644); err != nil {
		t.Fatal(err)
	}
	for s.reloadErrors.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale delta was not counted as a reload error")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if f.client.Day() != f.day1.Day {
		t.Fatalf("stale delta changed the serving day to %d", f.client.Day())
	}
	cancel()
	<-done
}

package server

import (
	"sync"
	"time"
)

// tokenBuckets rate-limits feedback ingestion per source: each key (the
// reporting peer) gets an independent token bucket of `burst` capacity
// refilled at `rate` tokens/second. The table is bounded — when full, the
// stalest bucket is evicted — so an attacker rotating source addresses
// cannot grow daemon memory without bound (each fresh key starts with
// only `burst` tokens, so rotation buys burst observations per key, not
// an unlimited rate-free ride on a fresh bucket's refill history).
type tokenBuckets struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	maxKeys int
	buckets map[string]*bucket
	nowFn   func() time.Time // test hook
	evicted uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets builds a limiter; rate <= 0 disables limiting (every
// take succeeds).
func newTokenBuckets(rate float64, burst int, maxKeys int) *tokenBuckets {
	if burst <= 0 {
		burst = 1
	}
	if maxKeys <= 0 {
		maxKeys = 4096
	}
	return &tokenBuckets{
		rate:    rate,
		burst:   float64(burst),
		maxKeys: maxKeys,
		buckets: make(map[string]*bucket),
		nowFn:   time.Now,
	}
}

// take attempts to spend n tokens for key, returning how many were
// granted (0..n): a report larger than the available tokens is partially
// accepted, matching the endpoint's accept-a-prefix contract.
func (t *tokenBuckets) take(key string, n int) int {
	if t.rate <= 0 {
		return n
	}
	now := t.nowFn()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[key]
	if b == nil {
		if len(t.buckets) >= t.maxKeys {
			t.evictStalestLocked()
		}
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
		b.last = now
	}
	grant := n
	if float64(grant) > b.tokens {
		grant = int(b.tokens)
	}
	b.tokens -= float64(grant)
	return grant
}

func (t *tokenBuckets) evictStalestLocked() {
	var victimKey string
	var victim *bucket
	for k, b := range t.buckets {
		if victim == nil || b.last.Before(victim.last) {
			victimKey, victim = k, b
		}
	}
	if victim != nil {
		delete(t.buckets, victimKey)
		t.evicted++
	}
}

// len reports tracked sources (for /debug/stats).
func (t *tokenBuckets) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets)
}

// evictions reports how many source buckets were evicted to stay within
// maxKeys (for /debug/stats).
func (t *tokenBuckets) evictions() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

package server

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	inano "inano"
)

// Hot reload: the daemon keeps its atlas current while serving. Both
// watchers poll cheaply (one stat per interval) and apply updates through
// inano.Client's copy-on-write swap, so queries and batch streams in
// flight keep reading their pinned snapshot — a reload never tears an
// answer, it only makes later requests see the new day.

// ApplyDeltaFile applies one encoded delta file immediately, updating the
// reload metrics. A delta whose FromDay doesn't match the serving atlas is
// rejected by the client and counted as a reload error.
func (s *Server) ApplyDeltaFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		s.reloadErrors.Inc()
		return err
	}
	defer f.Close()
	if err := s.c.ApplyDelta(f); err != nil {
		s.reloadErrors.Inc()
		return err
	}
	s.noteReload()
	s.cfg.Logf("inanod: applied delta %s; serving day %d", path, s.c.Day())
	return nil
}

func (s *Server) noteReload() {
	s.reloads.Inc()
	s.lastReload.Set(time.Now().Unix())
}

// fileStamp identifies a file version cheaply.
type fileStamp struct {
	mod  time.Time
	size int64
}

func stampOf(path string) (fileStamp, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}, false
	}
	return fileStamp{mod: fi.ModTime(), size: fi.Size()}, true
}

// WatchDeltaFile polls path every interval and applies the delta whenever
// the file appears or changes. It blocks until ctx is done; run it in a
// goroutine alongside the HTTP server. A file present at start is applied
// immediately. Failed applies are logged and counted, never fatal: the
// daemon keeps serving its current snapshot.
func (s *Server) WatchDeltaFile(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	var last fileStamp
	var seen bool
	check := func() {
		st, ok := stampOf(path)
		if !ok || (seen && st == last) {
			return
		}
		last, seen = st, true
		if err := s.ApplyDeltaFile(path); err != nil {
			s.cfg.Logf("inanod: delta %s not applied: %v", path, err)
		}
	}
	check()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			check()
		}
	}
}

// ReadManifest decodes a manifest file as written by inano-seed: a gob
// stream of the tracker address followed by the swarm manifest. Shared by
// the daemon's initial -fetch-manifest load and the delta watcher below.
func ReadManifest(path string) (addr string, m inano.Manifest, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", m, err
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	if err := dec.Decode(&addr); err != nil {
		return "", m, fmt.Errorf("manifest %s: tracker address: %w", path, err)
	}
	if err := dec.Decode(&m); err != nil {
		return "", m, fmt.Errorf("manifest %s: %w", path, err)
	}
	return addr, m, nil
}

// WatchManifest polls a swarm manifest file (as written by inano-seed for a
// delta) and, whenever the manifest changes, fetches the delta from the
// swarm and applies it — the tracker-polling reload path of §5: each day
// the build server seeds a new delta and publishes its manifest; every
// serving peer picks it up from the swarm, not from the server. It blocks
// until ctx is done.
func (s *Server) WatchManifest(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	var last fileStamp
	var seen bool
	check := func() {
		st, ok := stampOf(path)
		if !ok || (seen && st == last) {
			return
		}
		last, seen = st, true
		addr, m, err := ReadManifest(path)
		if err != nil {
			s.reloadErrors.Inc()
			s.cfg.Logf("inanod: %v", err)
			return
		}
		fctx, cancel := context.WithTimeout(ctx, interval)
		defer cancel()
		if err := s.c.FetchDelta(fctx, addr, m); err != nil {
			s.reloadErrors.Inc()
			s.cfg.Logf("inanod: swarm delta %s not applied: %v", m.Name, err)
			return
		}
		s.noteReload()
		s.cfg.Logf("inanod: fetched+applied swarm delta %s; serving day %d", m.Name, s.c.Day())
	}
	check()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			check()
		}
	}
}

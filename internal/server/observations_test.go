package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"inano/internal/feedback"
	"inano/internal/netsim"

	inano "inano"
)

func postObservations(t *testing.T, url, body string) (observationsResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/observations", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out observationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding observations response: %v", err)
	}
	return out, resp.StatusCode
}

func upObsLine(src, dst netsim.Prefix, rtt, predicted float64) string {
	return fmt.Sprintf(`{"src":"%s","dst":"%s","rtt_ms":%g,"predicted_ms":%g}`+"\n",
		src.HostIP(), dst.HostIP(), rtt, predicted)
}

// predictablePair finds a (vp, target) pair the fixture's atlas answers.
func predictablePair(t *testing.T, f *fixture) (netsim.Prefix, netsim.Prefix, float64) {
	t.Helper()
	for _, vp := range f.vps {
		for _, dst := range f.targets {
			if dst == vp {
				continue
			}
			if info := f.client.QueryPrefix(vp, dst); info.Found {
				return vp, dst, info.RTTMS
			}
		}
	}
	t.Fatal("fixture has no predictable pair")
	return 0, 0, 0
}

func TestObservationsDisabledWithoutAggregator(t *testing.T) {
	f := buildFixture(t, 70)
	_, ts := start(t, f, nil)
	src, dst, pred := predictablePair(t, f)
	out, code := postObservations(t, ts.URL, upObsLine(src, dst, pred+20, pred))
	if code != http.StatusNotImplemented {
		t.Fatalf("status %d (%+v), want 501 without an aggregator", code, out)
	}
}

func TestObservationsIngestAndAggregate(t *testing.T) {
	f := buildFixture(t, 71)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src, dst, pred := predictablePair(t, f)
	// The reporter claims a nonsense predicted_ms; the server must compute
	// the residual against its own prediction, not the claim.
	out, code := postObservations(t, ts.URL, upObsLine(src, dst, pred+20, 1))
	if code != http.StatusOK || out.Accepted != 1 || out.Unknown != 0 {
		t.Fatalf("ingest: %d %+v", code, out)
	}
	snap := agg.Snapshot(0)
	if len(snap.Prefixes) != 1 {
		t.Fatalf("aggregate: %+v", snap)
	}
	ag := snap.Prefixes[0]
	if ag.Prefix != dst || ag.Reporters != 1 {
		t.Fatalf("aggregate: %+v", ag)
	}
	if d := ag.ResidualMS - 20; d > 0.01 || d < -0.01 {
		t.Fatalf("residual %v, want ~20 (vs the server's own prediction)", ag.ResidualMS)
	}

	// An unknown destination cannot join the aggregate.
	out, code = postObservations(t, ts.URL,
		fmt.Sprintf(`{"src":"%s","dst":"203.0.113.9","rtt_ms":50,"predicted_ms":40}`+"\n", src.HostIP()))
	if code != http.StatusOK || out.Unknown != 1 || out.Accepted != 0 {
		t.Fatalf("unknown dst: %d %+v", code, out)
	}

	// Malformed reports are rejected wholesale; a valid prefix before the
	// bad line is still accounted.
	if _, code := postObservations(t, ts.URL, "junk\n"); code != http.StatusBadRequest {
		t.Fatalf("malformed report status %d", code)
	}
	out, code = postObservations(t, ts.URL, upObsLine(src, dst, pred+10, pred)+"junk\n")
	if code != http.StatusOK || out.Accepted != 1 || out.Error == "" {
		t.Fatalf("partial accept: %d %+v", code, out)
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/observations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

// TestObservationsReporterIdentityFromConnection: when the serving atlas
// can place the *connecting* peer, that cluster is the reporter identity —
// rotating the report's claimed src field does not buy extra reporter
// slots in the aggregate.
func TestObservationsReporterIdentityFromConnection(t *testing.T) {
	f := buildFixture(t, 74)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	// Bind the loopback prefix (what httptest connections resolve to)
	// into the serving atlas so the connection is placeable.
	loopIP, err := feedback.ParseIPv4("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	a := f.client.Atlas()
	a.PrefixCluster[netsim.PrefixOf(loopIP)] = a.PrefixCluster[f.vps[0]]
	// The engine serves from a compiled snapshot of the atlas, so the
	// patched attachment table only takes effect through a rebuild.
	f.client = inano.FromAtlas(a)
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src1, dst, pred := predictablePair(t, f)
	var src2 netsim.Prefix
	for _, vp := range f.vps {
		if vp != src1 && vp != dst && f.client.QueryPrefix(vp, dst).Found {
			src2 = vp
			break
		}
	}
	if src2 == 0 {
		t.Skip("fixture has no second predictable source")
	}
	body := upObsLine(src1, dst, pred+10, pred) + upObsLine(src2, dst, pred+10, pred)
	out, code := postObservations(t, ts.URL, body)
	if code != http.StatusOK || out.Accepted != 2 {
		t.Fatalf("ingest: %d %+v", code, out)
	}
	snap := agg.Snapshot(0)
	if len(snap.Prefixes) != 1 {
		t.Fatalf("aggregate: %+v", snap)
	}
	if got := snap.Prefixes[0].Reporters; got != 1 {
		t.Fatalf("claimed-src rotation bought %d reporter slots, want 1 (connection identity)", got)
	}
}

func TestObservationsRateLimit(t *testing.T) {
	f := buildFixture(t, 72)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) {
		c.Aggregator = agg
		c.ObservationRate = 0.001
		c.ObservationBurst = 2
	})
	src, dst, pred := predictablePair(t, f)
	var body strings.Builder
	for i := 0; i < 5; i++ {
		body.WriteString(upObsLine(src, dst, pred+10+float64(i), pred))
	}
	out, code := postObservations(t, ts.URL, body.String())
	if code != http.StatusOK || out.Accepted != 2 || out.RateLimited != 3 {
		t.Fatalf("partial grant: %d %+v", code, out)
	}
	// The bucket is empty: the next report is fully limited -> 429.
	out, code = postObservations(t, ts.URL, upObsLine(src, dst, pred+10, pred))
	if code != http.StatusTooManyRequests || out.RateLimited != 1 {
		t.Fatalf("drained bucket: %d %+v", code, out)
	}
}

func TestRunObservationSnapshots(t *testing.T) {
	f := buildFixture(t, 73)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	s, ts := start(t, f, func(c *Config) { c.Aggregator = agg })
	src, dst, pred := predictablePair(t, f)
	if out, code := postObservations(t, ts.URL, upObsLine(src, dst, pred+30, pred)); code != 200 || out.Accepted != 1 {
		t.Fatalf("ingest: %d %+v", code, out)
	}

	path := filepath.Join(t.TempDir(), "obs.json")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunObservationSnapshots(ctx, path, 10*time.Millisecond)
	}()
	waitFor(t, time.Second, func() bool {
		_, err := os.Stat(path)
		return err == nil
	})
	cancel()
	<-done

	snap, err := feedback.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Prefixes) != 1 || snap.Prefixes[0].Prefix != dst {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	inano "inano"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// The measurement feedback loop's serving surface: clients report
// observed-vs-predicted performance over /v1/feedback, the daemon
// aggregates the error per destination cluster, and a background
// corrector (RunCorrector) spends a bounded traceroute budget on the
// worst mispredictions. /v1/relay exposes relay selection — the
// application that most wants fresh loss/latency estimates — over the
// same serving client.

// feedbackResponse summarizes one /v1/feedback report.
type feedbackResponse struct {
	// Accepted observations entered the error tracker (or were scored
	// untracked).
	Accepted int `json:"accepted"`
	// RateLimited observations were dropped by the per-source token
	// bucket; retry after backing off.
	RateLimited int `json:"rate_limited"`
	// Untracked observations were accepted but name destinations unknown
	// to the serving atlas, so no corrective probe can help them.
	Untracked int `json:"untracked"`
	// Error reports a malformed report line; observations before it were
	// still processed.
	Error string `json:"error,omitempty"`
	Day   int    `json:"day"`
}

// handleFeedback ingests an NDJSON observation report: one
// {"src","dst","rtt_ms"} line per observed flow. Ingestion is token-bucket
// rate-limited per reporting source (the connecting peer): each source
// holds Config.FeedbackBurst tokens refilled at Config.FeedbackRate
// observations/second, and a report finding fewer tokens than lines is
// accepted only up to the grant. A malformed line ends parsing; the valid
// prefix is still accounted.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return httpError(w, http.StatusMethodNotAllowed, "use POST")
	}
	// ParseReport bounds lines and observation counts; the byte cap below
	// bounds the whole body so a hostile stream cannot hold the handler
	// forever.
	body := http.MaxBytesReader(w, r.Body, int64(feedback.MaxObservations)*feedback.MaxLineBytes)
	obs, parseErr := feedback.ParseReport(body)
	if parseErr != nil && len(obs) == 0 {
		return httpError(w, http.StatusBadRequest, "%v", parseErr)
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	granted := s.fbLimiter.take(sourceKey(r), len(obs))
	resp := feedbackResponse{
		RateLimited: len(obs) - granted,
		Day:         s.c.Day(),
	}
	if parseErr != nil {
		resp.Error = parseErr.Error()
	}
	for _, o := range obs[:granted] {
		// Scoring may build trees for cold destinations; the request
		// deadline bounds that work so one report cannot stall the
		// handler indefinitely.
		sample, err := s.c.ObserveRTTContext(ctx, o.Src, o.Dst, o.RTTMS)
		if err != nil {
			resp.Error = fmt.Sprintf("aborted after %d observations: %v", resp.Accepted, err)
			break
		}
		resp.Accepted++
		s.fbError.Observe(sample.Err)
		if !sample.Tracked {
			resp.Untracked++
		}
	}
	s.fbObservations.Add(uint64(resp.Accepted))
	s.fbRateLimited.Add(uint64(resp.RateLimited))
	if granted == 0 && resp.RateLimited > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		return writeJSONBody(w, resp)
	}
	return writeJSON(w, resp)
}

// sourceKey identifies the reporting peer for rate limiting: the
// connection's remote host (not the report's src field, which an abuser
// could rotate freely).
func sourceKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// relayResponse is the /v1/relay answer.
type relayResponse struct {
	Src        string  `json:"src"`
	Dst        string  `json:"dst"`
	Found      bool    `json:"found"`
	Relay      string  `json:"relay,omitempty"`
	RTTMS      float64 `json:"rtt_ms,omitempty"`
	LossRate   float64 `json:"loss_rate,omitempty"`
	MOS        float64 `json:"mos,omitempty"`
	Candidates int     `json:"candidates"`
	Day        int     `json:"day"`
}

// handleRelay picks a VoIP relay for src->dst out of ?relays= (comma-
// separated candidate IPs) with the paper's §7.2 strategy: among the ?k=
// (default 10) candidates minimizing predicted end-to-end loss, the one
// minimizing latency. GET with query parameters; ?deadline_ms= bounds the
// underlying batch.
func (s *Server) handleRelay(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return httpError(w, http.StatusMethodNotAllowed, "use GET")
	}
	q := r.URL.Query()
	src, err := parseIP(q.Get("src"))
	if err != nil {
		return httpError(w, http.StatusBadRequest, "src: %v", err)
	}
	dst, err := parseIP(q.Get("dst"))
	if err != nil {
		return httpError(w, http.StatusBadRequest, "dst: %v", err)
	}
	rawRelays := strings.Split(q.Get("relays"), ",")
	var cands []string
	var relays []inano.Prefix
	for _, raw := range rawRelays {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		ip, err := parseIP(raw)
		if err != nil {
			return httpError(w, http.StatusBadRequest, "relays: %v", err)
		}
		cands = append(cands, raw)
		relays = append(relays, netsim.PrefixOf(ip))
	}
	if len(relays) == 0 {
		return httpError(w, http.StatusBadRequest, "no relay candidates")
	}
	k := 0
	if raw := q.Get("k"); raw != "" {
		if k, err = strconv.Atoi(raw); err != nil || k <= 0 {
			return httpError(w, http.StatusBadRequest, "bad k %q", raw)
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	choice, ok, err := s.c.BestRelayInfo(ctx, netsim.PrefixOf(src), netsim.PrefixOf(dst), relays, k)
	if err != nil {
		return httpError(w, http.StatusGatewayTimeout, "relay selection aborted: %v", err)
	}
	resp := relayResponse{
		Src:        q.Get("src"),
		Dst:        q.Get("dst"),
		Found:      ok,
		Candidates: len(relays),
		Day:        s.c.Day(),
	}
	if ok {
		resp.RTTMS = choice.RTTMS
		resp.LossRate = choice.LossRate
		resp.MOS = choice.MOS
		// Echo the candidate string whose prefix won, so callers get back
		// an address they sent.
		for i, p := range relays {
			if p == choice.Relay {
				resp.Relay = cands[i]
				break
			}
		}
	}
	return writeJSON(w, resp)
}

// RunCorrector runs the background corrective loop over the serving
// client until ctx is done: each round the worst-mispredicted tracked
// destinations (up to cfg.Budget) are re-measured through prober and the
// results merged into the atlas copy-on-write. Round accounting feeds the
// corrective metrics. Run it in a goroutine alongside the HTTP server.
func (s *Server) RunCorrector(ctx context.Context, prober feedback.Prober, cfg feedback.Config) {
	cor := s.c.NewCorrector(prober, cfg)
	s.cfg.Logf("inanod: corrector running: budget %d per %v", cor.Config().Budget, cor.Config().Interval)
	cor.Run(ctx, s.noteRound)
}

// noteRound folds one corrective round into the metrics.
func (s *Server) noteRound(r feedback.Round) {
	s.corrRounds.Inc()
	s.corrProbes.Add(uint64(r.Probes))
	s.corrProbeErrors.Add(uint64(r.ProbeErrors))
	s.corrMerged.Add(uint64(r.Merged))
	s.mu.Lock()
	s.lastRound = r
	s.mu.Unlock()
	if r.Probes > 0 {
		s.cfg.Logf("inanod: corrective round: %d/%d probes, %d atlas changes merged",
			r.Probes, r.Budget, r.Merged)
	}
}

// lastRoundUtilization samples the most recent round's budget
// utilization for the gauge.
func (s *Server) lastRoundUtilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRound.Utilization()
}

// Package server implements inanod's HTTP/JSON query API: the always-on
// serving surface over an inano.Client. One daemon answers single queries
// (/v1/query), streamed NDJSON batches with per-request deadlines
// (/v1/batch), candidate ranking (/v1/rank), and exposes liveness
// (/healthz), Prometheus metrics (/metrics), and human-readable internals
// (/debug/stats).
//
// Serving properties:
//
//   - Batches stream: request pairs are consumed and response lines written
//     in bounded windows, so a million-pair batch never buffers in memory
//     on either side. Each stream reads one atlas snapshot pinned at
//     request start — a hot reload mid-stream never tears an answer.
//   - Concurrent single queries to the same cold destination coalesce into
//     one prediction-tree build via the engine's singleflight cache.
//   - Hot reload (WatchDeltaFile / WatchManifest) applies daily deltas
//     copy-on-write: in-flight requests keep their snapshot, new requests
//     see the new day.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	inano "inano"
	"inano/internal/core"
	"inano/internal/feedback"
	"inano/internal/metrics"
	"inano/internal/netsim"
	"inano/internal/tcpmodel"
)

// maxStreamWindow caps the client-controlled /v1/batch window: 64k pairs
// of ring + result buffers is a few megabytes, large enough to amortize
// any fan-out and small enough that a hostile request cannot OOM the
// daemon.
const maxStreamWindow = 1 << 16

// Config configures a Server.
type Config struct {
	// Client answers the queries. Required.
	Client *inano.Client
	// DefaultDeadline bounds requests that don't set deadline_ms (0 = none).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (0 = uncapped).
	MaxDeadline time.Duration
	// StreamWindow is the pairs-per-flush window of /v1/batch
	// (0 = core.DefaultStreamWindow). Smaller windows lower first-result
	// latency; larger ones amortize fan-out.
	StreamWindow int
	// MaxBatchLineBytes caps one NDJSON request line (0 = 64KiB).
	MaxBatchLineBytes int
	// FeedbackRate is the per-source token refill rate of /v1/feedback in
	// observations/second (0 = default 64; negative = unlimited).
	FeedbackRate float64
	// FeedbackBurst is the per-source bucket capacity (0 = default 256).
	FeedbackBurst int
	// Aggregator enables POST /v1/observations (upstream observation
	// sharing): validated reports feed it, and RunObservationSnapshots
	// periodically cuts its state to disk for the build pipeline. Nil
	// disables the endpoint (501).
	Aggregator *feedback.Aggregator
	// ObservationRate is the per-source token refill rate of
	// /v1/observations in observations/second (0 = default 8; negative =
	// unlimited). Deliberately tighter than FeedbackRate: observations
	// mutate the global build, feedback only local scheduling.
	ObservationRate float64
	// ObservationBurst is the per-source bucket capacity (0 = default 64).
	ObservationBurst int
	// PeerID names this replica in a serving cluster: echoed in /healthz
	// and as an X-Inano-Peer response header so routers and harnesses can
	// tell replicas apart. Empty = standalone (no header).
	PeerID string
	// DisableBatchFastPath turns off the zero-allocation /v1/batch fast
	// path (strict-canonical line parser + hand-rolled NDJSON answer
	// encoder + reusable core.StreamBatch runner) and serves every stream
	// through the generic json.Unmarshal/Encoder path instead. Answers
	// are byte-identical either way — this exists as an operational
	// escape hatch (inanod -batch-fastpath=false), not a behavior switch.
	DisableBatchFastPath bool
	// Logf logs serving events (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the daemon's HTTP surface. Create with New, mount Handler.
type Server struct {
	c       *inano.Client
	cfg     Config
	reg     *metrics.Registry
	started time.Time

	inflight     *metrics.Gauge
	pairsTotal   *metrics.Counter
	reloads      *metrics.Counter
	reloadErrors *metrics.Counter
	lastReload   *metrics.Gauge

	// Feedback-loop instrumentation.
	fbLimiter       *tokenBuckets
	fbObservations  *metrics.Counter
	fbRateLimited   *metrics.Counter
	fbError         *metrics.Histogram
	corrRounds      *metrics.Counter
	corrProbes      *metrics.Counter
	corrProbeErrors *metrics.Counter
	corrMerged      *metrics.Counter

	// Upstream observation ingest instrumentation.
	obsLimiter     *tokenBuckets
	obsAccepted    *metrics.Counter
	obsPaths       *metrics.Counter
	obsPathRejects *metrics.Counter
	obsUnknown     *metrics.Counter
	obsRateLimited *metrics.Counter
	obsSnapshots   *metrics.Counter

	mu        sync.Mutex
	lastRound feedback.Round

	// draining flips once (StartDraining) when the replica is being
	// rotated out: /healthz answers 503 so routers re-shard away, new
	// serving requests are refused with 503 (the router retries them on
	// another replica), and in-flight ones run to completion.
	draining atomic.Bool

	handlers map[string]*handlerMetrics
}

// handlerMetrics instruments one endpoint.
type handlerMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// New builds a server over cfg.Client and registers its metrics.
func New(cfg Config) *Server {
	if cfg.Client == nil {
		panic("server: Config.Client is required")
	}
	if cfg.MaxBatchLineBytes <= 0 {
		cfg.MaxBatchLineBytes = 64 << 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	fbRate := cfg.FeedbackRate
	if fbRate == 0 {
		fbRate = 64
	}
	fbBurst := cfg.FeedbackBurst
	if fbBurst <= 0 {
		fbBurst = 256
	}
	obsRate := cfg.ObservationRate
	if obsRate == 0 {
		obsRate = 8
	}
	obsBurst := cfg.ObservationBurst
	if obsBurst <= 0 {
		obsBurst = 64
	}
	s := &Server{
		c:          cfg.Client,
		cfg:        cfg,
		reg:        metrics.NewRegistry(),
		started:    time.Now(),
		fbLimiter:  newTokenBuckets(fbRate, fbBurst, 0),
		obsLimiter: newTokenBuckets(obsRate, obsBurst, 0),
		handlers:   make(map[string]*handlerMetrics),
	}
	s.inflight = s.reg.NewGauge("inanod_http_inflight",
		"Requests currently being served.", "")
	for _, h := range []string{"query", "batch", "rank", "feedback", "relay", "observations", "healthz", "metrics", "stats"} {
		labels := `handler="` + h + `"`
		s.handlers[h] = &handlerMetrics{
			requests: s.reg.NewCounter("inanod_http_requests_total",
				"HTTP requests served, by endpoint.", labels),
			errors: s.reg.NewCounter("inanod_http_errors_total",
				"HTTP requests that failed, by endpoint.", labels),
			latency: s.reg.NewHistogram("inanod_http_request_seconds",
				"Request latency, by endpoint.", labels, nil),
		}
	}
	s.pairsTotal = s.reg.NewCounter("inanod_batch_pairs_streamed_total",
		"Batch pairs answered over /v1/batch.", "")
	s.reloads = s.reg.NewCounter("inanod_atlas_reloads_total",
		"Atlas deltas hot-applied.", "")
	s.reloadErrors = s.reg.NewCounter("inanod_atlas_reload_errors_total",
		"Failed atlas reload attempts.", "")
	s.lastReload = s.reg.NewGauge("inanod_atlas_last_reload_timestamp_seconds",
		"Unix time of the last successful reload (0 = never).", "")

	// Feedback loop: error distribution (the quantile source), ingestion
	// accounting, and the corrective budget's spend.
	s.fbObservations = s.reg.NewCounter("inanod_feedback_observations_total",
		"Observations accepted over /v1/feedback.", "")
	s.fbRateLimited = s.reg.NewCounter("inanod_feedback_rate_limited_total",
		"Observations dropped by the per-source rate limit.", "")
	s.fbError = s.reg.NewHistogram("inanod_feedback_prediction_error",
		"Relative |observed-predicted|/observed RTT error of reported observations.",
		"", metrics.DefErrorBuckets)
	s.corrRounds = s.reg.NewCounter("inanod_corrective_rounds_total",
		"Corrective scheduler rounds executed.", "")
	s.corrProbes = s.reg.NewCounter("inanod_corrective_probes_issued_total",
		"Corrective traceroutes issued.", "")
	s.corrProbeErrors = s.reg.NewCounter("inanod_corrective_probe_errors_total",
		"Corrective traceroutes that failed.", "")
	s.corrMerged = s.reg.NewCounter("inanod_corrective_changes_merged_total",
		"Atlas changes merged from corrective traceroutes.", "")

	// Upstream observation ingest: what clients share toward the next
	// build, and the aggregate's size.
	s.obsAccepted = s.reg.NewCounter("inanod_observations_accepted_total",
		"Upstream observations accepted over /v1/observations.", "")
	s.obsPaths = s.reg.NewCounter("inanod_observation_paths_total",
		"Clusterized hop-path tails accepted into the structural aggregate.", "")
	s.obsPathRejects = s.reg.NewCounter("inanod_observation_path_rejects_total",
		"Uploaded hop lists rejected at clusterization (unmappable or looping).", "")
	s.obsUnknown = s.reg.NewCounter("inanod_observations_unknown_total",
		"Upstream observations the serving atlas could not place.", "")
	s.obsRateLimited = s.reg.NewCounter("inanod_observations_rate_limited_total",
		"Upstream observations dropped by the per-source rate limit.", "")
	s.obsSnapshots = s.reg.NewCounter("inanod_observation_snapshots_total",
		"Aggregator snapshots written to disk.", "")
	if cfg.Aggregator != nil {
		s.reg.NewGaugeFunc("inanod_observation_prefixes",
			"Destination prefixes in the upstream-observation aggregate.", "",
			func() float64 { return float64(cfg.Aggregator.Stats().Prefixes) })
		s.reg.NewGaugeFunc("inanod_observation_reporters",
			"Reporter slots in use across aggregated prefixes.", "",
			func() float64 { return float64(cfg.Aggregator.Stats().Reporters) })
		s.reg.NewGaugeFunc("inanod_observation_path_slots",
			"Reporter slots holding a clusterized hop path.", "",
			func() float64 { return float64(cfg.Aggregator.Stats().Paths) })
	}
	s.reg.NewGaugeFunc("inanod_corrective_budget_utilization",
		"Fraction of the corrective budget spent in the last round.", "",
		s.lastRoundUtilization)
	s.reg.NewGaugeFunc("inanod_feedback_tracked_destinations",
		"Destination clusters currently tracked by the error tracker.", "",
		func() float64 { return float64(s.c.FeedbackStats().Entries) })
	s.reg.NewGaugeFunc("inanod_feedback_mean_error",
		"Mean EWMA relative RTT error over tracked destinations.", "",
		func() float64 { return s.c.FeedbackStats().MeanErr })

	// Engine-owned values are sampled at scrape time. The tree cache resets
	// when a reload swaps the engine, so these are gauges, not counters.
	s.reg.NewGaugeFunc("inanod_tree_cache_hits", "Tree cache hits (resets on reload).", "",
		func() float64 { return float64(s.c.CacheStats().Hits) })
	s.reg.NewGaugeFunc("inanod_tree_cache_misses", "Tree cache misses (resets on reload).", "",
		func() float64 { return float64(s.c.CacheStats().Misses) })
	s.reg.NewGaugeFunc("inanod_tree_cache_builds", "Dijkstra tree builds (resets on reload).", "",
		func() float64 { return float64(s.c.CacheStats().Builds) })
	s.reg.NewGaugeFunc("inanod_tree_cache_resident", "Prediction trees currently cached.", "",
		func() float64 { return float64(s.c.CacheStats().Len) })
	s.reg.NewGaugeFunc("inanod_tree_cache_hit_ratio", "Hits / lookups of the tree cache.", "",
		func() float64 {
			st := s.c.CacheStats()
			if st.Hits+st.Misses == 0 {
				return 0
			}
			return float64(st.Hits) / float64(st.Hits+st.Misses)
		})
	s.reg.NewGaugeFunc("inanod_atlas_day", "Measurement day of the serving atlas.", "",
		func() float64 { return float64(s.c.Day()) })
	return s
}

// Registry exposes the server's metrics registry (for extra app metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// StartDraining moves the server into its terminal draining state:
// /healthz answers 503 "draining" (pulling this replica out of any
// router's ring on the next health pass), new serving requests are
// refused with 503, and in-flight requests finish normally. There is no
// way back — draining exists for rolling restarts, where the process
// exits once InFlight reaches zero.
func (s *Server) StartDraining() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Logf("inanod: draining: refusing new requests, %d in flight", s.InFlight())
	}
}

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Value() }

// drainGated marks the endpoints a draining replica refuses: the serving
// surface. Health, metrics and stats keep answering so operators and
// routers can watch the drain.
var drainGated = map[string]bool{
	"query": true, "batch": true, "rank": true,
	"feedback": true, "relay": true, "observations": true,
}

// Handler returns the daemon's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/debug/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("/v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("/v1/rank", s.instrument("rank", s.handleRank))
	mux.HandleFunc("/v1/feedback", s.instrument("feedback", s.handleFeedback))
	mux.HandleFunc("/v1/relay", s.instrument("relay", s.handleRelay))
	mux.HandleFunc("/v1/observations", s.instrument("observations", s.handleObservations))
	return mux
}

// instrument wraps a handler with in-flight, request-count, error-count,
// and latency instrumentation. The accounting is deferred so a panicking
// handler (net/http recovers it and keeps serving) still decrements the
// in-flight gauge and is counted as an error instead of silently skewing
// the metrics.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	hm := s.handlers[name]
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.PeerID != "" {
			w.Header().Set("X-Inano-Peer", s.cfg.PeerID)
		}
		if s.draining.Load() && drainGated[name] {
			// Refused, not dropped: a router retries the request on the
			// ring's next replica, so a rolling restart loses no queries.
			hm.requests.Inc()
			hm.errors.Inc()
			w.Header().Set("X-Inano-Draining", "1")
			_ = httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.inflight.Inc()
		hm.requests.Inc()
		start := time.Now()
		var err error
		panicked := true
		defer func() {
			hm.latency.Observe(time.Since(start).Seconds())
			s.inflight.Dec()
			if panicked {
				hm.errors.Inc()
				s.cfg.Logf("inanod: %s: handler panicked", name)
			} else if err != nil {
				hm.errors.Inc()
				s.cfg.Logf("inanod: %s: %v", name, err)
			}
		}()
		err = h(w, r)
		panicked = false
	}
}

// requestContext derives the per-request deadline: deadline_ms from the
// query string, else the server default, capped by MaxDeadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad deadline_ms %q", raw)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// httpError writes a JSON error body and reports the error for counting.
func httpError(w http.ResponseWriter, code int, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
	return errors.New(msg)
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers — for handlers that
// already wrote a non-200 status.
func writeJSONBody(w http.ResponseWriter, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// --- wire types ---

// pairRequest is one NDJSON line of a /v1/batch request. DeadlineMS, when
// positive, bounds this pair alone (measured from line receipt): if its
// prediction trees are not ready in time the pair comes back expired
// while the stream continues.
type pairRequest struct {
	Src        string `json:"src"`
	Dst        string `json:"dst"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// queryResult is the answer for one (src, dst) pair, shared by /v1/query
// and /v1/batch lines. FwdMS+RevMS always sum to RTTMS — a cheap
// client-side integrity check that an answer was not torn.
type queryResult struct {
	Src      string       `json:"src"`
	Dst      string       `json:"dst"`
	Found    bool         `json:"found"`
	RTTMS    float64      `json:"rtt_ms,omitempty"`
	LossRate float64      `json:"loss_rate,omitempty"`
	FwdMS    float64      `json:"fwd_ms,omitempty"`
	RevMS    float64      `json:"rev_ms,omitempty"`
	FwdAS    []netsim.ASN `json:"fwd_as_path,omitempty"`
	RevAS    []netsim.ASN `json:"rev_as_path,omitempty"`
	Day      int          `json:"day"`
	Error    string       `json:"error,omitempty"`
}

func resultFor(src, dst string, day int, info inano.PathInfo, withPaths bool) queryResult {
	res := queryResult{Src: src, Dst: dst, Found: info.Found, Day: day}
	if !info.Found {
		return res
	}
	res.RTTMS = info.RTTMS
	res.LossRate = info.LossRate
	res.FwdMS = info.Fwd.LatencyMS
	res.RevMS = info.Rev.LatencyMS
	if withPaths {
		res.FwdAS = info.Fwd.ASPath
		res.RevAS = info.Rev.ASPath
	}
	return res
}

// parseIP parses a dotted-quad IPv4 address — one strict parser shared
// with the /v1/feedback wire format, so the endpoints can never diverge
// on what an address is.
func parseIP(s string) (inano.IP, error) {
	return feedback.ParseIPv4(s)
}

// --- endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	body := map[string]any{
		"status":   "ok",
		"day":      s.c.Day(),
		"uptime_s": int64(time.Since(s.started).Seconds()),
	}
	if s.cfg.PeerID != "" {
		body["peer"] = s.cfg.PeerID
	}
	if s.draining.Load() {
		body["status"] = "draining"
		body["inflight"] = s.InFlight()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		return writeJSONBody(w, body)
	}
	return writeJSON(w, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return s.reg.WritePrometheus(w)
}

// handleQuery answers one (src, dst) query. GET with ?src=&dst= or POST
// with a {"src","dst"} body; ?deadline_ms= bounds it. Concurrent queries to
// one cold destination share a single tree build (engine singleflight).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req pairRequest
	switch r.Method {
	case http.MethodGet:
		req.Src, req.Dst = r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
	default:
		return httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
	src, err := parseIP(req.Src)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "src: %v", err)
	}
	dst, err := parseIP(req.Dst)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "dst: %v", err)
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	// One pinned snapshot answers and labels the result, so the reported
	// day always matches the atlas that produced the numbers.
	snap := s.c.Snapshot()
	infos, err := snap.QueryBatch(ctx, [][2]inano.Prefix{{netsim.PrefixOf(src), netsim.PrefixOf(dst)}})
	if err != nil {
		return httpError(w, http.StatusGatewayTimeout, "query aborted: %v", err)
	}
	return writeJSON(w, resultFor(req.Src, req.Dst, snap.Day(), infos[0], true))
}

// handleBatch streams answers for an NDJSON stream of {"src","dst"} pairs.
// The response is NDJSON too, one result line per request line, in request
// order, flushed every window so results reach the client while the request
// body is still being produced. Memory on the server is O(window)
// regardless of batch size. The whole stream reads one atlas snapshot.
//
// A line may carry its own "deadline_ms": a per-pair answer-latency
// bound measured from line receipt. A pair whose deadline passes before
// its answer is ready — window buffering included, so clients pairing
// tight deadlines with a large ?window= or a slow producer will expire
// their own pairs — comes back as a per-pair failure line (src/dst
// echoed, "found":false, "error":"deadline_ms exceeded") while the
// stream continues: partial results instead of an aborted window.
//
// A malformed line or an expired request deadline terminates the stream
// with a final {"error": ...} line; clients must treat a line bearing
// "error" but no "src" as the (failed) end of the stream.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return httpError(w, http.StatusMethodNotAllowed, "use POST")
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	window := s.cfg.StreamWindow
	if raw := r.URL.Query().Get("window"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return httpError(w, http.StatusBadRequest, "bad window %q", raw)
		}
		window = n
	}
	if window <= 0 {
		window = core.DefaultStreamWindow
	}
	// The window sizes per-request allocations; clamp it so one cheap
	// request cannot ask the daemon for gigabytes of buffer.
	if window > maxStreamWindow {
		window = maxStreamWindow
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	// Full duplex lets us keep reading request pairs after response lines
	// start flowing; without it the HTTP/1 server drains the request body
	// before the first response flush, deadlocking an interleaved producer.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		return httpError(w, http.StatusInternalServerError, "streaming unsupported: %v", err)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flush := func() {
		bw.Flush()
		_ = rc.Flush()
	}

	scanner := bufio.NewScanner(r.Body)
	scanner.Buffer(make([]byte, 0, 4096), s.cfg.MaxBatchLineBytes)
	var inputErr error
	lineNo := 0

	// One pinned snapshot serves the whole stream and labels every line;
	// prediction trees built for one window stay cached for the next.
	snap := s.c.Snapshot()
	day := snap.Day()

	useFast := !s.cfg.DisableBatchFastPath
	var sb *inano.StreamBatch
	if useFast {
		// The reusable runner keeps the stream's per-window buffers alive
		// across flushes (and skips AS-path derivation: batch lines never
		// serialize them), so steady-state windows allocate nothing.
		sb = snap.StreamBatch(true)
	}
	reqs := make([]core.PairReq, 0, window)
	echoes := make([]batchEcho, 0, window)
	var lineBuf []byte // reused fast-path answer line
	answered := 0
	var streamErr error
	// flushWindow answers the buffered window in one per-pair-deadline
	// batch and streams the result lines. A request-level failure (ctx
	// expiry) lands in streamErr for the terminal error line; a non-nil
	// return means the client went away and there is nothing left to
	// write.
	flushWindow := func() error {
		if len(reqs) == 0 {
			return nil
		}
		var infos []inano.PathInfo
		var expired []bool
		var err error
		if useFast {
			infos, expired, err = sb.Run(ctx, reqs)
		} else {
			infos, expired, err = snap.QueryReqs(ctx, reqs)
		}
		if err != nil {
			streamErr = err
			return nil
		}
		for i := range infos {
			errMsg := ""
			if expired[i] {
				errMsg = "deadline_ms exceeded"
			}
			if useFast && jsonSafe(echoes[i].src) && jsonSafe(echoes[i].dst) {
				lineBuf = appendResultLine(lineBuf[:0], &echoes[i], day, &infos[i], errMsg)
				if _, encErr := bw.Write(lineBuf); encErr != nil {
					return fmt.Errorf("writing batch response: %w", encErr)
				}
			} else {
				res := resultFor(echoes[i].src, echoes[i].dst, day, infos[i], false)
				res.Error = errMsg
				if encErr := enc.Encode(res); encErr != nil {
					return fmt.Errorf("writing batch response: %w", encErr)
				}
			}
			answered++
		}
		reqs = reqs[:0]
		echoes = echoes[:0]
		flush()
		return nil
	}

	now := time.Now
	for scanner.Scan() {
		lineNo++
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		var src, dst inano.IP
		var deadlineMS int64
		var e batchEcho
		fastOK := false
		if useFast {
			src, dst, deadlineMS, fastOK = parseBatchLine(line)
		}
		if fastOK {
			e = batchEcho{srcIP: src, dstIP: dst}
		} else {
			var req pairRequest
			if err := json.Unmarshal(line, &req); err != nil {
				inputErr = fmt.Errorf("line %d: bad pair: %v", lineNo, err)
				break
			}
			src, err = parseIP(req.Src)
			if err != nil {
				inputErr = fmt.Errorf("line %d: src: %v", lineNo, err)
				break
			}
			dst, err = parseIP(req.Dst)
			if err != nil {
				inputErr = fmt.Errorf("line %d: dst: %v", lineNo, err)
				break
			}
			if req.DeadlineMS < 0 {
				inputErr = fmt.Errorf("line %d: bad deadline_ms %d", lineNo, req.DeadlineMS)
				break
			}
			deadlineMS = req.DeadlineMS
			e = batchEcho{src: req.Src, dst: req.Dst}
		}
		pr := core.PairReq{Src: netsim.PrefixOf(src), Dst: netsim.PrefixOf(dst)}
		if deadlineMS > 0 {
			pr.Deadline = now().Add(time.Duration(deadlineMS) * time.Millisecond)
		}
		reqs = append(reqs, pr)
		echoes = append(echoes, e)
		if len(reqs) >= window {
			if err := flushWindow(); err != nil {
				s.pairsTotal.Add(uint64(answered))
				return err
			}
			if streamErr != nil {
				break
			}
		}
	}
	if err := scanner.Err(); err != nil && inputErr == nil && streamErr == nil {
		inputErr = fmt.Errorf("reading batch body: %w", err)
	}
	if streamErr == nil {
		if err := flushWindow(); err != nil {
			s.pairsTotal.Add(uint64(answered))
			return err
		}
	}
	s.pairsTotal.Add(uint64(answered))
	switch {
	case streamErr != nil:
		_ = enc.Encode(queryResult{Error: fmt.Sprintf("batch aborted after %d results: %v", answered, streamErr)})
	case inputErr != nil:
		_ = enc.Encode(queryResult{Error: inputErr.Error()})
	}
	flush()
	if streamErr != nil {
		return streamErr
	}
	return inputErr
}

// rankRequest asks to order candidate IPs for a source. With SizeBytes > 0
// candidates are ranked by predicted TCP transfer time of that many bytes
// (the CDN shape, §7.1); otherwise by predicted RTT.
type rankRequest struct {
	Src        string   `json:"src"`
	Candidates []string `json:"candidates"`
	SizeBytes  int      `json:"size_bytes"`
}

type rankedCandidate struct {
	IP         string  `json:"ip"`
	Found      bool    `json:"found"`
	RTTMS      float64 `json:"rtt_ms,omitempty"`
	LossRate   float64 `json:"loss_rate,omitempty"`
	TransferMS float64 `json:"transfer_ms,omitempty"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return httpError(w, http.StatusMethodNotAllowed, "use POST")
	}
	var req rankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	src, err := parseIP(req.Src)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "src: %v", err)
	}
	if len(req.Candidates) == 0 {
		return httpError(w, http.StatusBadRequest, "no candidates")
	}
	dsts := make([]inano.IP, len(req.Candidates))
	for i, c := range req.Candidates {
		if dsts[i], err = parseIP(c); err != nil {
			return httpError(w, http.StatusBadRequest, "candidate %d: %v", i, err)
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return httpError(w, http.StatusBadRequest, "%v", err)
	}
	defer cancel()
	snap := s.c.Snapshot()
	pairs := make([][2]inano.Prefix, len(dsts))
	for i, d := range dsts {
		pairs[i] = [2]inano.Prefix{netsim.PrefixOf(src), netsim.PrefixOf(d)}
	}
	infos, err := snap.QueryBatch(ctx, pairs)
	if err != nil {
		return httpError(w, http.StatusGatewayTimeout, "rank aborted: %v", err)
	}
	params := tcpmodel.DefaultParams()
	ranked := make([]rankedCandidate, len(infos))
	for i, info := range infos {
		rc := rankedCandidate{IP: req.Candidates[i], Found: info.Found}
		if info.Found {
			rc.RTTMS = info.RTTMS
			rc.LossRate = info.LossRate
			if req.SizeBytes > 0 {
				rc.TransferMS = tcpmodel.TransferTimeMS(req.SizeBytes, info.RTTMS, info.LossRate, params)
			}
		}
		ranked[i] = rc
	}
	// Predictable candidates first, cheapest first; the unpredictable keep
	// input order at the tail (the ordering contract of RankByRTT/
	// RankReplicas).
	key := func(rc rankedCandidate) float64 {
		if req.SizeBytes > 0 {
			return rc.TransferMS
		}
		return rc.RTTMS
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Found != ranked[j].Found {
			return ranked[i].Found
		}
		if !ranked[i].Found {
			return false
		}
		return key(ranked[i]) < key(ranked[j])
	})
	return writeJSON(w, map[string]any{"src": req.Src, "day": snap.Day(), "ranked": ranked})
}

// handleStats renders a human-oriented JSON snapshot of the daemon's
// internals; /metrics is the machine-oriented view of the same state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	st := s.c.CacheStats()
	a := s.c.Atlas()
	hitRatio := 0.0
	if st.Hits+st.Misses > 0 {
		hitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	perHandler := make(map[string]any, len(s.handlers))
	for name, hm := range s.handlers {
		perHandler[name] = map[string]any{
			"requests": hm.requests.Value(),
			"errors":   hm.errors.Value(),
			"p50_ms":   hm.latency.Quantile(0.50) * 1000,
			"p90_ms":   hm.latency.Quantile(0.90) * 1000,
			"p99_ms":   hm.latency.Quantile(0.99) * 1000,
		}
	}
	return writeJSON(w, map[string]any{
		"uptime_s": int64(time.Since(s.started).Seconds()),
		"atlas": map[string]any{
			"day":      a.Day,
			"clusters": a.NumClusters,
			"links":    len(a.Links),
			"prefixes": len(a.PrefixCluster),
		},
		"tree_cache": map[string]any{
			"hits":      st.Hits,
			"misses":    st.Misses,
			"builds":    st.Builds,
			"resident":  st.Len,
			"hit_ratio": hitRatio,
		},
		"reloads": map[string]any{
			"applied":     s.reloads.Value(),
			"errors":      s.reloadErrors.Value(),
			"last_unix_s": s.lastReload.Value(),
		},
		"feedback":             s.feedbackStats(),
		"observations":         s.observationStats(),
		"inflight":             s.inflight.Value(),
		"batch_pairs_streamed": s.pairsTotal.Value(),
		"http":                 perHandler,
	})
}

// observationStats renders the upstream-observation ingest state for
// /debug/stats.
func (s *Server) observationStats() map[string]any {
	out := map[string]any{
		"enabled":      s.cfg.Aggregator != nil,
		"accepted":     s.obsAccepted.Value(),
		"paths":        s.obsPaths.Value(),
		"path_rejects": s.obsPathRejects.Value(),
		"unknown":      s.obsUnknown.Value(),
		"rate_limited": s.obsRateLimited.Value(),
		"snapshots":    s.obsSnapshots.Value(),
	}
	if s.cfg.Aggregator != nil {
		st := s.cfg.Aggregator.Stats()
		out["prefixes"] = st.Prefixes
		out["reporters"] = st.Reporters
		out["path_slots"] = st.Paths
		out["evicted_prefixes"] = st.EvictedPrefixes
	}
	return out
}

// feedbackStats renders the feedback loop's state for /debug/stats.
func (s *Server) feedbackStats() map[string]any {
	fs := s.c.FeedbackStats()
	s.mu.Lock()
	last := s.lastRound
	s.mu.Unlock()
	return map[string]any{
		"observations":    s.fbObservations.Value(),
		"rate_limited":    s.fbRateLimited.Value(),
		"sources":         s.fbLimiter.len(),
		"sources_evicted": s.fbLimiter.evictions(),
		"tracked":         fs.Entries,
		"mean_error":      fs.MeanErr,
		"worst_error":     fs.WorstErr,
		"error_p50":       s.fbError.Quantile(0.50),
		"error_p90":       s.fbError.Quantile(0.90),
		"error_p99":       s.fbError.Quantile(0.99),
		"rounds":          s.corrRounds.Value(),
		"probes_issued":   s.corrProbes.Value(),
		"probe_errors":    s.corrProbeErrors.Value(),
		"merged":          s.corrMerged.Value(),
		"last_round": map[string]any{
			"budget":      last.Budget,
			"probes":      last.Probes,
			"merged":      last.Merged,
			"utilization": last.Utilization(),
		},
	}
}

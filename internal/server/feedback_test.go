package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"inano/internal/netsim"
)

// postFeedback POSTs an NDJSON report and decodes the summary.
func postFeedback(t *testing.T, url, body string) (feedbackResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/feedback", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out feedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding feedback response: %v", err)
	}
	return out, resp.StatusCode
}

// decodeNDJSON reads every result line of a batch response.
func decodeNDJSON(t *testing.T, r io.Reader) []queryResult {
	t.Helper()
	var out []queryResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var res queryResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func obsLine(src, dst netsim.Prefix, rtt float64) string {
	return fmt.Sprintf(`{"src":"%s","dst":"%s","rtt_ms":%g}`+"\n", src.HostIP(), dst.HostIP(), rtt)
}

func TestFeedbackEndpointAcceptsAndTracks(t *testing.T) {
	f := buildFixture(t, 60)
	_, ts := start(t, f, nil)

	var body strings.Builder
	n := 0
	for i, dst := range f.targets {
		if dst == f.vps[0] {
			continue
		}
		body.WriteString(obsLine(f.vps[0], dst, 50+float64(i)))
		n++
		if n == 10 {
			break
		}
	}
	out, code := postFeedback(t, ts.URL, body.String())
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, out)
	}
	if out.Accepted != 10 || out.RateLimited != 0 {
		t.Fatalf("summary: %+v", out)
	}
	st := f.client.FeedbackStats()
	if st.TotalSamples != 10-out.Untracked {
		t.Fatalf("tracker samples %d, accepted %d untracked %d", st.TotalSamples, out.Accepted, out.Untracked)
	}
	if st.Entries == 0 {
		t.Fatal("no destinations tracked")
	}
}

func TestFeedbackEndpointBadReport(t *testing.T) {
	f := buildFixture(t, 61)
	_, ts := start(t, f, nil)

	// Entirely malformed: 400.
	out, code := postFeedback(t, ts.URL, "not json\n")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %+v", code, out)
	}
	// Valid prefix then garbage: the prefix is accepted, the error reported.
	body := obsLine(f.vps[0], f.targets[1], 42) + "garbage\n"
	out, code = postFeedback(t, ts.URL, body)
	if code != http.StatusOK || out.Accepted != 1 || out.Error == "" {
		t.Fatalf("partial accept: %d %+v", code, out)
	}
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/feedback")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestFeedbackRateLimitPerSource(t *testing.T) {
	f := buildFixture(t, 62)
	_, ts := start(t, f, func(c *Config) {
		c.FeedbackRate = 0.001 // effectively no refill during the test
		c.FeedbackBurst = 3
	})

	var body strings.Builder
	for i := 0; i < 5; i++ {
		body.WriteString(obsLine(f.vps[0], f.targets[1+i], 50))
	}
	out, code := postFeedback(t, ts.URL, body.String())
	if code != http.StatusOK {
		t.Fatalf("first report status %d: %+v", code, out)
	}
	if out.Accepted != 3 || out.RateLimited != 2 {
		t.Fatalf("burst not enforced: %+v", out)
	}
	// The bucket is empty now: a second report is fully rejected with 429.
	out, code = postFeedback(t, ts.URL, body.String())
	if code != http.StatusTooManyRequests || out.Accepted != 0 || out.RateLimited != 5 {
		t.Fatalf("second report: %d %+v", code, out)
	}
}

func TestRelayEndpoint(t *testing.T) {
	f := buildFixture(t, 63)
	_, ts := start(t, f, nil)

	src, dst := f.vps[0], f.vps[1]
	cands := f.vps[2:8]
	var candStrs []string
	for _, c := range cands {
		candStrs = append(candStrs, c.HostIP().String())
	}
	url := fmt.Sprintf("%s/v1/relay?src=%s&dst=%s&relays=%s&k=3",
		ts.URL, src.HostIP(), dst.HostIP(), strings.Join(candStrs, ","))
	var out relayResponse
	resp := getJSON(t, url, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Candidates != len(cands) {
		t.Fatalf("candidates = %d, want %d", out.Candidates, len(cands))
	}
	want, ok := f.client.BestRelay(src, dst, cands, 3)
	if out.Found != ok {
		t.Fatalf("found=%v, library says %v", out.Found, ok)
	}
	if ok {
		if out.Relay != want.HostIP().String() {
			t.Fatalf("relay %q, library picked %v", out.Relay, want)
		}
		if out.RTTMS <= 0 || out.MOS <= 0 {
			t.Fatalf("missing performance annotations: %+v", out)
		}
	}

	// Bad inputs are rejected.
	for _, bad := range []string{
		"/v1/relay?src=1.1.1.1&dst=2.2.2.2",                      // no relays
		"/v1/relay?src=nope&dst=2.2.2.2&relays=3.3.3.3",          // bad src
		"/v1/relay?src=1.1.1.1&dst=2.2.2.2&relays=3.3.3.3&k=-1",  // bad k
		"/v1/relay?src=1.1.1.1&dst=2.2.2.2&relays=3.3.3.3,nonIP", // bad relay
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestBatchPerPairDeadline: a /v1/batch line carrying deadline_ms comes
// back as a per-pair failure when its deadline expires — src/dst echoed,
// error set — while later lines and the stream itself keep going.
func TestBatchPerPairDeadline(t *testing.T) {
	f := buildFixture(t, 64)
	_, ts := start(t, f, nil)

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/batch?window=3", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		// Line 1 allows 1ms; by the time the window fills (after the
		// sleep below) it is long expired. Lines 2 and 3 have no deadline.
		fmt.Fprintf(pw, `{"src":"%s","dst":"%s","deadline_ms":1}`+"\n", f.vps[0].HostIP(), f.targets[1].HostIP())
		time.Sleep(100 * time.Millisecond)
		fmt.Fprintf(pw, `{"src":"%s","dst":"%s"}`+"\n", f.vps[1].HostIP(), f.targets[2].HostIP())
		fmt.Fprintf(pw, `{"src":"%s","dst":"%s"}`+"\n", f.vps[2].HostIP(), f.targets[3].HostIP())
		pw.Close()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := decodeNDJSON(t, resp.Body)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %+v", len(lines), lines)
	}
	if lines[0].Error == "" || lines[0].Src == "" || lines[0].Found {
		t.Fatalf("line 1 should be a per-pair deadline failure: %+v", lines[0])
	}
	for i := 1; i < 3; i++ {
		if lines[i].Error != "" {
			t.Fatalf("line %d failed: %+v", i+1, lines[i])
		}
	}
	// A negative per-line deadline is malformed input and terminates the
	// stream with a terminal (no-src) error line.
	body := fmt.Sprintf(`{"src":"%s","dst":"%s","deadline_ms":-5}`+"\n", f.vps[0].HostIP(), f.targets[1].HostIP())
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines = decodeNDJSON(t, resp2.Body)
	if len(lines) != 1 || lines[0].Error == "" || lines[0].Src != "" {
		t.Fatalf("want one terminal error line, got %+v", lines)
	}
}

package server

import (
	"testing"
	"time"
)

func TestTokenBucketsBurstAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBuckets(2, 4, 0) // 2 tokens/s, burst 4
	tb.nowFn = func() time.Time { return now }

	if got := tb.take("a", 3); got != 3 {
		t.Fatalf("initial take = %d, want 3", got)
	}
	if got := tb.take("a", 3); got != 1 {
		t.Fatalf("burst exceeded: got %d, want 1", got)
	}
	if got := tb.take("a", 1); got != 0 {
		t.Fatalf("empty bucket granted %d", got)
	}
	// Another source has its own bucket.
	if got := tb.take("b", 4); got != 4 {
		t.Fatalf("source b: %d, want 4", got)
	}
	// 1.5s refills 3 tokens for a, capped at burst.
	now = now.Add(1500 * time.Millisecond)
	if got := tb.take("a", 10); got != 3 {
		t.Fatalf("after refill: %d, want 3", got)
	}
	// A long idle period caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	if got := tb.take("a", 10); got != 4 {
		t.Fatalf("after idle: %d, want burst 4", got)
	}
}

func TestTokenBucketsUnlimited(t *testing.T) {
	tb := newTokenBuckets(-1, 4, 0)
	if got := tb.take("a", 1_000_000); got != 1_000_000 {
		t.Fatalf("negative rate should disable limiting: %d", got)
	}
}

func TestTokenBucketsEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBuckets(1, 1, 3)
	tb.nowFn = func() time.Time { return now }
	for i, k := range []string{"a", "b", "c"} {
		now = now.Add(time.Duration(i) * time.Second)
		tb.take(k, 1)
	}
	if tb.len() != 3 {
		t.Fatalf("len = %d", tb.len())
	}
	// A fourth source evicts the stalest ("a"); the table stays bounded.
	now = now.Add(time.Second)
	tb.take("d", 1)
	if tb.len() != 3 {
		t.Fatalf("table grew past maxKeys: %d", tb.len())
	}
	// "a" was evicted: a fresh bucket starts at burst, not its drained state.
	if got := tb.take("a", 1); got != 1 {
		t.Fatalf("re-added source should start with burst: %d", got)
	}
}

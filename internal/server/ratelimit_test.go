package server

import (
	"fmt"
	"testing"
	"time"
)

func TestTokenBucketsBurstAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBuckets(2, 4, 0) // 2 tokens/s, burst 4
	tb.nowFn = func() time.Time { return now }

	if got := tb.take("a", 3); got != 3 {
		t.Fatalf("initial take = %d, want 3", got)
	}
	if got := tb.take("a", 3); got != 1 {
		t.Fatalf("burst exceeded: got %d, want 1", got)
	}
	if got := tb.take("a", 1); got != 0 {
		t.Fatalf("empty bucket granted %d", got)
	}
	// Another source has its own bucket.
	if got := tb.take("b", 4); got != 4 {
		t.Fatalf("source b: %d, want 4", got)
	}
	// 1.5s refills 3 tokens for a, capped at burst.
	now = now.Add(1500 * time.Millisecond)
	if got := tb.take("a", 10); got != 3 {
		t.Fatalf("after refill: %d, want 3", got)
	}
	// A long idle period caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	if got := tb.take("a", 10); got != 4 {
		t.Fatalf("after idle: %d, want burst 4", got)
	}
}

// TestTokenBucketsPartialGrantTruncation: a fractional token balance
// grants its floor, never rounds up past what the bucket holds, and the
// fraction stays behind for the next refill.
func TestTokenBucketsPartialGrantTruncation(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBuckets(1, 10, 0) // 1 token/s, burst 10
	tb.nowFn = func() time.Time { return now }

	if got := tb.take("a", 10); got != 10 {
		t.Fatalf("drain: %d", got)
	}
	// 2.5s of refill = 2.5 tokens; a request for 3 gets the floor, 2.
	now = now.Add(2500 * time.Millisecond)
	if got := tb.take("a", 3); got != 2 {
		t.Fatalf("fractional balance granted %d, want 2", got)
	}
	// The half token survived the truncation: another 0.5s completes it.
	now = now.Add(500 * time.Millisecond)
	if got := tb.take("a", 3); got != 1 {
		t.Fatalf("carried fraction granted %d, want 1", got)
	}
	// An over-ask against a fresh bucket is truncated to the burst.
	if got := tb.take("fresh", 1_000_000); got != 10 {
		t.Fatalf("over-ask granted %d, want burst 10", got)
	}
}

// TestTokenBucketsRotationChurnKeepsActiveBucket: an attacker rotating
// through fresh source keys fills the table, but every eviction takes the
// stalest bucket — so an actively reporting legitimate source is never
// evicted while any staler (abandoned) bucket exists.
func TestTokenBucketsRotationChurnKeepsActiveBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	const maxKeys = 8
	tb := newTokenBuckets(1, 4, maxKeys)
	tb.nowFn = func() time.Time { return now }

	// The legitimate source drains half its bucket, establishing history.
	if got := tb.take("legit", 2); got != 2 {
		t.Fatalf("legit initial take: %d", got)
	}
	// Churn: far more rotating keys than the table holds, each used once
	// and abandoned, while the legitimate source keeps reporting.
	for i := 0; i < 10*maxKeys; i++ {
		now = now.Add(100 * time.Millisecond)
		tb.take(fmt.Sprintf("attacker-%d", i), 4)
		now = now.Add(100 * time.Millisecond)
		if got := tb.take("legit", 0); got != 0 {
			t.Fatalf("zero-take granted %d", got)
		}
	}
	if n := tb.len(); n != maxKeys {
		t.Fatalf("table size %d, want bound %d", n, maxKeys)
	}
	if ev := tb.evictions(); ev == 0 {
		t.Fatal("churn produced no evictions; test is not exercising the bound")
	}
	// The legitimate bucket survived with its refill history: after the
	// ~16s of churn above it holds its full burst but NOT a fresh-bucket
	// reset — prove it is the same bucket by draining it and checking the
	// next take sees an empty (not burst-fresh) bucket.
	if got := tb.take("legit", 10); got != 4 {
		t.Fatalf("legit bucket after churn granted %d, want burst 4", got)
	}
	if got := tb.take("legit", 4); got != 0 {
		t.Fatalf("drained legit bucket granted %d; it was evicted and reborn", got)
	}
	// Sanity: a rotated-away attacker key *was* evicted (re-taking it
	// yields a fresh bucket at full burst).
	if got := tb.take("attacker-0", 4); got != 4 {
		t.Fatalf("stale attacker bucket kept state: %d", got)
	}
}

func TestTokenBucketsUnlimited(t *testing.T) {
	tb := newTokenBuckets(-1, 4, 0)
	if got := tb.take("a", 1_000_000); got != 1_000_000 {
		t.Fatalf("negative rate should disable limiting: %d", got)
	}
}

func TestTokenBucketsEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTokenBuckets(1, 1, 3)
	tb.nowFn = func() time.Time { return now }
	for i, k := range []string{"a", "b", "c"} {
		now = now.Add(time.Duration(i) * time.Second)
		tb.take(k, 1)
	}
	if tb.len() != 3 {
		t.Fatalf("len = %d", tb.len())
	}
	// A fourth source evicts the stalest ("a"); the table stays bounded.
	now = now.Add(time.Second)
	tb.take("d", 1)
	if tb.len() != 3 {
		t.Fatalf("table grew past maxKeys: %d", tb.len())
	}
	// "a" was evicted: a fresh bucket starts at burst, not its drained state.
	if got := tb.take("a", 1); got != 1 {
		t.Fatalf("re-added source should start with burst: %d", got)
	}
}

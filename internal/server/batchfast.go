package server

import (
	"math"
	"strconv"

	inano "inano"
)

// The /v1/batch fast path: a strict-canonical NDJSON line parser and a
// hand-rolled answer encoder that together make the streamed batch loop
// allocation-free per line (paired with core.StreamBatch for the
// per-window prediction work).
//
// Correctness contract: the fast parser claims a line only when it is
// byte-for-byte in the canonical shape
//
//	{"src":"A.B.C.D","dst":"A.B.C.D"}
//	{"src":"A.B.C.D","dst":"A.B.C.D","deadline_ms":N}
//
// with strictly canonical dotted quads (digit-only octets, no leading
// zeros, 0-255) and a plain non-negative integer deadline. Everything
// else — reordered fields, whitespace, escapes, exponents, and the
// non-canonical addresses feedback.ParseIPv4 happens to accept (leading
// '+', "-0") — falls back to the json.Unmarshal path, which echoes the
// original strings and produces the same errors it always has. The
// encoder replicates encoding/json's output for queryResult byte for
// byte (field order, omitempty, float formatting, trailing newline),
// pinned by TestAppendResultLineMatchesEncoder.

var (
	fastLineSrc = []byte(`{"src":"`)
	fastLineDst = []byte(`","dst":"`)
	fastLineEnd = []byte(`"}`)
	fastLineDMS = []byte(`","deadline_ms":`)
)

// parseCanonIPv4 parses a strictly canonical dotted quad at the start of
// b, returning the address and the number of bytes consumed (-1 when b
// does not start with one).
//
//inano:zeroalloc
func parseCanonIPv4(b []byte) (inano.IP, int) {
	var ip uint32
	i := 0
	for oct := 0; oct < 4; oct++ {
		if oct > 0 {
			if i >= len(b) || b[i] != '.' {
				return 0, -1
			}
			i++
		}
		start := i
		v := 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' && i-start < 3 {
			v = v*10 + int(b[i]-'0')
			i++
		}
		if i == start || v > 255 {
			return 0, -1
		}
		if b[start] == '0' && i-start > 1 {
			return 0, -1 // leading zero: not canonical
		}
		ip = ip<<8 | uint32(v)
	}
	return inano.IP(ip), i
}

// parseBatchLine parses one canonical batch request line without
// allocating. ok is false when the line is anything but the exact
// canonical shape; the caller must then fall back to json.Unmarshal.
//
//inano:zeroalloc
func parseBatchLine(line []byte) (src, dst inano.IP, deadlineMS int64, ok bool) {
	if len(line) < len(fastLineSrc) || string(line[:len(fastLineSrc)]) != string(fastLineSrc) {
		return 0, 0, 0, false
	}
	i := len(fastLineSrc)
	src, n := parseCanonIPv4(line[i:])
	if n < 0 {
		return 0, 0, 0, false
	}
	i += n
	if len(line)-i < len(fastLineDst) || string(line[i:i+len(fastLineDst)]) != string(fastLineDst) {
		return 0, 0, 0, false
	}
	i += len(fastLineDst)
	dst, n = parseCanonIPv4(line[i:])
	if n < 0 {
		return 0, 0, 0, false
	}
	i += n
	rest := line[i:]
	if len(rest) == len(fastLineEnd) && string(rest) == string(fastLineEnd) {
		return src, dst, 0, true
	}
	if len(rest) < len(fastLineDMS) || string(rest[:len(fastLineDMS)]) != string(fastLineDMS) {
		return 0, 0, 0, false
	}
	rest = rest[len(fastLineDMS):]
	if len(rest) < 2 || rest[len(rest)-1] != '}' {
		return 0, 0, 0, false
	}
	digits := rest[:len(rest)-1]
	// 1-18 plain digits: no sign, no exponent, no int64 overflow. A lone
	// "0" is fine ("no deadline", same as the slow path). Longer numbers
	// fall back so json.Unmarshal reports overflow exactly as before.
	if len(digits) == 0 || len(digits) > 18 {
		return 0, 0, 0, false
	}
	if len(digits) > 1 && digits[0] == '0' {
		return 0, 0, 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, 0, 0, false
		}
		deadlineMS = deadlineMS*10 + int64(c-'0')
	}
	return src, dst, deadlineMS, true
}

// appendIPv4 appends the canonical dotted-quad form of ip. For addresses
// claimed by parseCanonIPv4 this regenerates the request bytes exactly,
// so fast-path lines need not retain their src/dst strings at all.
func appendIPv4(b []byte, ip inano.IP) []byte {
	for shift := 24; shift >= 0; shift -= 8 {
		if shift < 24 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(uint8(ip>>uint(shift))), 10)
	}
	return b
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest representation, 'f' form unless the magnitude calls for 'e'
// form, with the exponent's leading zero stripped.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans "e-09" to "e-9" etc.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonSafe reports whether s can be embedded in a JSON string without
// any escaping, under json.Encoder's default HTML-escaping rules. Every
// string feedback.ParseIPv4 accepts is safe (digits, '.', '+', '-');
// the check guards the fast encoder against that ever changing — an
// unsafe echo string routes its line through the generic encoder.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// batchEcho is what a batch stream retains per buffered pair to echo the
// request's src/dst back on its answer line. Fast-parsed lines store
// only the addresses (src == "") and regenerate the canonical text;
// slow-parsed lines keep the original strings verbatim.
type batchEcho struct {
	src, dst     string
	srcIP, dstIP inano.IP
}

// appendEchoString appends the echoed address: the retained string when
// present, the canonical regeneration otherwise.
func appendEchoString(b []byte, s string, ip inano.IP) []byte {
	if s == "" {
		return appendIPv4(b, ip)
	}
	return append(b, s...)
}

// appendResultLine appends one /v1/batch answer line + '\n', byte-for-
// byte identical to json.Encoder encoding the equivalent queryResult
// (withPaths=false shape): declared field order, found/day always
// present, zero-valued floats omitted, error last. errMsg must need no
// JSON escaping (the only caller passes a literal) and the echo strings
// must be jsonSafe (the caller checks).
//
//inano:zeroalloc
func appendResultLine(buf []byte, e *batchEcho, day int, info *inano.PathInfo, errMsg string) []byte {
	buf = append(buf, `{"src":"`...)
	buf = appendEchoString(buf, e.src, e.srcIP)
	buf = append(buf, `","dst":"`...)
	buf = appendEchoString(buf, e.dst, e.dstIP)
	buf = append(buf, `","found":`...)
	if info.Found {
		buf = append(buf, "true"...)
		if info.RTTMS != 0 {
			buf = append(buf, `,"rtt_ms":`...)
			buf = appendJSONFloat(buf, info.RTTMS)
		}
		if info.LossRate != 0 {
			buf = append(buf, `,"loss_rate":`...)
			buf = appendJSONFloat(buf, info.LossRate)
		}
		if info.Fwd.LatencyMS != 0 {
			buf = append(buf, `,"fwd_ms":`...)
			buf = appendJSONFloat(buf, info.Fwd.LatencyMS)
		}
		if info.Rev.LatencyMS != 0 {
			buf = append(buf, `,"rev_ms":`...)
			buf = appendJSONFloat(buf, info.Rev.LatencyMS)
		}
	} else {
		buf = append(buf, "false"...)
	}
	buf = append(buf, `,"day":`...)
	buf = strconv.AppendInt(buf, int64(day), 10)
	if errMsg != "" {
		buf = append(buf, `,"error":"`...)
		buf = append(buf, errMsg...)
		buf = append(buf, '"')
	}
	buf = append(buf, '}', '\n')
	return buf
}

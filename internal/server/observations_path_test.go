package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"inano/internal/cluster"
	"inano/internal/feedback"
	"inano/internal/netsim"

	inano "inano"
)

// hopChain finds n interface prefixes mapping to n distinct clusters in
// the fixture's atlas — raw material for a mappable, loop-free hop list.
func hopChain(t *testing.T, f *fixture, n int) []netsim.Prefix {
	t.Helper()
	a := f.client.Atlas()
	seen := make(map[cluster.ClusterID]bool)
	var out []netsim.Prefix
	for p, c := range a.IfaceCluster {
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, p)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("fixture atlas has only %d distinct-cluster interface prefixes, need %d", len(out), n)
	return nil
}

// hopsJSON renders a hops array for the observation wire format, one hop
// per prefix with increasing RTTs.
func hopsJSON(prefixes []netsim.Prefix) string {
	var parts []string
	for i, p := range prefixes {
		parts = append(parts, fmt.Sprintf(`{"ip":"%s","rtt_ms":%d}`, p.HostIP(), 5+5*i))
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func obsLineWithHops(src, dst netsim.Prefix, rtt, predicted float64, hops string) string {
	pred := ""
	if predicted > 0 {
		pred = fmt.Sprintf(`,"predicted_ms":%g`, predicted)
	}
	return fmt.Sprintf(`{"src":"%s","dst":"%s","rtt_ms":%g%s,"hops":%s}`+"\n",
		src.HostIP(), dst.HostIP(), rtt, pred, hops)
}

func TestObservationPathIngest(t *testing.T) {
	f := buildFixture(t, 80)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src, dst, pred := predictablePair(t, f)
	chain := hopChain(t, f, 3)
	out, code := postObservations(t, ts.URL, obsLineWithHops(src, dst, pred+20, pred, hopsJSON(chain)))
	if code != http.StatusOK || out.Accepted != 1 || out.Paths != 1 || out.PathsRejected != 0 {
		t.Fatalf("ingest: %d %+v", code, out)
	}
	st := agg.Stats()
	if st.Paths != 1 {
		t.Fatalf("aggregator stats %+v, want one stored path", st)
	}
	snap := agg.Snapshot(0)
	if len(snap.Paths) != 1 || snap.Paths[0].Prefix != dst || len(snap.Paths[0].Clusters) != 3 {
		t.Fatalf("snapshot paths %+v", snap.Paths)
	}
	// The scalar residual rode along on the same line.
	if len(snap.Prefixes) != 1 || snap.Prefixes[0].Prefix != dst {
		t.Fatalf("snapshot residuals %+v", snap.Prefixes)
	}
}

func TestObservationPathLoopRejectedResidualKept(t *testing.T) {
	f := buildFixture(t, 81)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src, dst, pred := predictablePair(t, f)
	chain := hopChain(t, f, 2)
	loop := []netsim.Prefix{chain[0], chain[1], chain[0]}
	out, code := postObservations(t, ts.URL, obsLineWithHops(src, dst, pred+20, pred, hopsJSON(loop)))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.PathsRejected != 1 || out.Paths != 0 {
		t.Fatalf("looping hop list not rejected: %+v", out)
	}
	if out.Accepted != 1 {
		t.Fatalf("scalar residual must survive a rejected hop list: %+v", out)
	}
	if st := agg.Stats(); st.Paths != 0 {
		t.Fatalf("rejected path stored: %+v", st)
	}
}

func TestObservationPathUnmappableRejected(t *testing.T) {
	f := buildFixture(t, 82)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src, dst, pred := predictablePair(t, f)
	chain := hopChain(t, f, 2)
	hops := fmt.Sprintf(`[{"ip":"%s","rtt_ms":5},{"ip":"203.0.113.9","rtt_ms":9},{"ip":"%s","rtt_ms":12}]`,
		chain[0].HostIP(), chain[1].HostIP())
	out, code := postObservations(t, ts.URL, obsLineWithHops(src, dst, pred+20, pred, hops))
	if code != http.StatusOK || out.PathsRejected != 1 || out.Paths != 0 {
		t.Fatalf("unmappable hop not rejected: %d %+v", code, out)
	}
}

func TestObservationStructureOnlyUnknownDestination(t *testing.T) {
	f := buildFixture(t, 83)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	// A destination the serving atlas cannot place, probed by a client
	// that got no prediction (no predicted_ms): the hop tail is the whole
	// point — structure-only coverage growth.
	src := f.vps[0]
	dst := netsim.Prefix(0xCB0071) // 203.0.113.0/24
	chain := hopChain(t, f, 3)
	out, code := postObservations(t, ts.URL, obsLineWithHops(src, dst, 45, 0, hopsJSON(chain)))
	if code != http.StatusOK || out.Accepted != 1 || out.Paths != 1 || out.Unknown != 0 {
		t.Fatalf("structure-only ingest: %d %+v", code, out)
	}
	snap := agg.Snapshot(0)
	if len(snap.Paths) != 1 || snap.Paths[0].Prefix != dst {
		t.Fatalf("snapshot paths %+v", snap.Paths)
	}
	if len(snap.Prefixes) != 0 {
		t.Fatalf("no residual should exist for an unpredicted pair: %+v", snap.Prefixes)
	}
}

// TestObservationPathRotationBuysNoAgreement: a reporter whose connection
// the atlas can place gets one path slot per destination no matter how
// many source addresses its report lines claim — so its uploads can never
// corroborate each other into shipped structure.
func TestObservationPathRotationBuysNoAgreement(t *testing.T) {
	f := buildFixture(t, 84)
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	loopIP, err := feedback.ParseIPv4("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	a := f.client.Atlas()
	a.PrefixCluster[netsim.PrefixOf(loopIP)] = a.PrefixCluster[f.vps[0]]
	// The engine serves from a compiled snapshot of the atlas, so the
	// patched attachment table only takes effect through a rebuild.
	f.client = inano.FromAtlas(a)
	_, ts := start(t, f, func(c *Config) { c.Aggregator = agg })

	src1, dst, pred := predictablePair(t, f)
	var src2 netsim.Prefix
	for _, vp := range f.vps {
		if vp != src1 && vp != dst && f.client.QueryPrefix(vp, dst).Found {
			src2 = vp
			break
		}
	}
	if src2 == 0 {
		t.Skip("fixture has no second predictable source")
	}
	chain := hopsJSON(hopChain(t, f, 3))
	body := obsLineWithHops(src1, dst, pred+10, pred, chain) + obsLineWithHops(src2, dst, pred+10, pred, chain)
	out, code := postObservations(t, ts.URL, body)
	if code != http.StatusOK || out.Paths != 2 {
		t.Fatalf("ingest: %d %+v", code, out)
	}
	if st := agg.Stats(); st.Paths != 1 {
		t.Fatalf("claimed-src rotation bought %d path slots, want 1 (connection identity)", st.Paths)
	}
	// One reporter's self-agreement never clears the bar.
	if agreed := agg.Snapshot(0).AgreedPaths(2); len(agreed) != 0 {
		t.Fatalf("single rotating reporter shipped structure: %+v", agreed)
	}
}

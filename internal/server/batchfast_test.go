package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	inano "inano"
	"inano/internal/core"
	"inano/internal/netsim"
)

func TestParseBatchLine(t *testing.T) {
	cases := []struct {
		line     string
		ok       bool
		src, dst string // canonical echo when ok
		dms      int64
	}{
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8"}`, ok: true, src: "1.2.3.4", dst: "5.6.7.8", dms: 0},
		{line: `{"src":"0.0.0.0","dst":"255.255.255.255"}`, ok: true, src: "0.0.0.0", dst: "255.255.255.255"},
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":250}`, ok: true, src: "1.2.3.4", dst: "5.6.7.8", dms: 250},
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":0}`, ok: true, src: "1.2.3.4", dst: "5.6.7.8", dms: 0},
		// Everything below must fall back to the generic decoder.
		{line: `{"src": "1.2.3.4","dst":"5.6.7.8"}`},                                  // whitespace
		{line: `{"dst":"5.6.7.8","src":"1.2.3.4"}`},                                   // reordered
		{line: `{"src":"+1.2.3.4","dst":"5.6.7.8"}`},                                  // ParseIPv4 quirk form
		{line: `{"src":"01.2.3.4","dst":"5.6.7.8"}`},                                  // leading zero
		{line: `{"src":"1.2.3.256","dst":"5.6.7.8"}`},                                 // octet overflow
		{line: `{"src":"1.2.3","dst":"5.6.7.8"}`},                                     // 3 octets
		{line: `{"src":"1.2.3.4.5","dst":"5.6.7.8"}`},                                 // 5 octets
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":-1}`},                  // negative
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":1e3}`},                 // exponent
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":01}`},                  // leading zero
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","deadline_ms":9999999999999999999}`}, // overflow
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8"} `},                                  // trailing junk
		{line: `{"src":"1.2.3.4","dst":"5.6.7.8","x":1}`},                             // unknown field
		{line: `{"src":"1.2.3.4"}`},
		{line: ``},
	}
	for _, tc := range cases {
		src, dst, dms, ok := parseBatchLine([]byte(tc.line))
		if ok != tc.ok {
			t.Errorf("parseBatchLine(%q) ok=%v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		gotSrc := string(appendIPv4(nil, src))
		gotDst := string(appendIPv4(nil, dst))
		if gotSrc != tc.src || gotDst != tc.dst || dms != tc.dms {
			t.Errorf("parseBatchLine(%q) = %s,%s,%d want %s,%s,%d",
				tc.line, gotSrc, gotDst, dms, tc.src, tc.dst, tc.dms)
		}
		// Round trip through the strict parser must agree with the
		// shared production parser.
		want, err := parseIP(tc.src)
		if err != nil || want != src {
			t.Errorf("parseBatchLine(%q) src %v != ParseIPv4 %v (%v)", tc.line, src, want, err)
		}
	}
}

// TestAppendResultLineMatchesEncoder pins the hand-rolled answer encoder
// to encoding/json byte for byte, across found/not-found, expired, zero
// and extreme float values — the property that lets the fast path and
// the generic path interleave on one stream without a client noticing.
func TestAppendResultLineMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	floats := []float64{0, 0.05, 12.5, 1.0 / 3, 9.999999999e-7, 1e-7, 3e21, 123456789.000001}
	randInfo := func() inano.PathInfo {
		var info inano.PathInfo
		info.Found = rng.Intn(4) > 0
		if info.Found {
			info.RTTMS = floats[rng.Intn(len(floats))]
			info.LossRate = floats[rng.Intn(len(floats))]
			info.Fwd.LatencyMS = floats[rng.Intn(len(floats))]
			info.Rev.LatencyMS = floats[rng.Intn(len(floats))]
		}
		return info
	}
	for trial := 0; trial < 2000; trial++ {
		info := randInfo()
		e := batchEcho{srcIP: inano.IP(rng.Uint32()), dstIP: inano.IP(rng.Uint32())}
		if trial%3 == 0 {
			e.src = "+1.2.3.4" // slow-path echo string, kept verbatim
			e.dst = "9.9.9.9"
		}
		errMsg := ""
		if trial%5 == 0 {
			info = inano.PathInfo{}
			errMsg = "deadline_ms exceeded"
		}
		day := rng.Intn(1000)

		got := appendResultLine(nil, &e, day, &info, errMsg)

		srcStr, dstStr := e.src, e.dst
		if srcStr == "" {
			srcStr = string(appendIPv4(nil, e.srcIP))
			dstStr = string(appendIPv4(nil, e.dstIP))
		}
		res := resultFor(srcStr, dstStr, day, info, false)
		res.Error = errMsg
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("trial %d:\nappend  %q\nencoder %q\ninfo %+v", trial, got, want.Bytes(), info)
		}
	}
}

// TestBatchFastPathParity runs one mixed stream — canonical lines,
// whitespace variants, ParseIPv4-quirk addresses, per-pair deadlines,
// unknown destinations, blank lines — through a fast-path server and a
// fast-path-disabled server and requires byte-identical response bodies.
func TestBatchFastPathParity(t *testing.T) {
	f := buildFixture(t, 210)
	_, tsFast := start(t, f, nil)
	_, tsSlow := start(t, f, func(c *Config) { c.DisableBatchFastPath = true })

	var b strings.Builder
	for i := 0; i < 40; i++ {
		src := ipStr(f.vps[i%len(f.vps)])
		dst := ipStr(f.targets[(i*7)%len(f.targets)])
		switch i % 5 {
		case 0:
			fmt.Fprintf(&b, "{\"src\":%q,\"dst\":%q}\n", src, dst)
		case 1: // whitespace: generic path, same answer
			fmt.Fprintf(&b, "{\"src\": %q, \"dst\": %q}\n", src, dst)
		case 2: // generous per-pair deadline on the fast shape
			fmt.Fprintf(&b, "{\"src\":%q,\"dst\":%q,\"deadline_ms\":60000}\n", src, dst)
		case 3: // unknown destination: found=false line
			fmt.Fprintf(&b, "{\"src\":%q,\"dst\":\"255.255.255.254\"}\n", src)
		case 4: // quirk address ParseIPv4 accepts; echo must stay verbatim
			fmt.Fprintf(&b, "{\"src\":\"+%s\",\"dst\":%q}\n\n", src, dst)
		}
	}
	body := b.String()

	post := func(url string) string {
		resp, err := http.Post(url+"/v1/batch?window=7", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, out)
		}
		return string(out)
	}
	fast, slow := post(tsFast.URL), post(tsSlow.URL)
	if fast != slow {
		t.Fatalf("fast and slow batch bodies differ:\nfast:\n%s\nslow:\n%s", fast, slow)
	}
	if n := strings.Count(fast, "\n"); n != 40 {
		t.Fatalf("batch answered %d lines, want 40", n)
	}
}

// TestBatchFastPathExpiredParity checks the expired-pair line shape
// through the fast path: src/dst echoed, found false, the deadline error
// — and that it matches the disabled path byte for byte.
func TestBatchFastPathExpiredParity(t *testing.T) {
	f := buildFixture(t, 211)
	_, tsFast := start(t, f, nil)
	_, tsSlow := start(t, f, func(c *Config) { c.DisableBatchFastPath = true })
	// deadline_ms:1 expires during window buffering (the server only
	// answers at flush, and the producer holds the stream open past the
	// deadline), so the pair comes back expired; the second pair has no
	// deadline and must still answer.
	body := fmt.Sprintf("{\"src\":%q,\"dst\":%q,\"deadline_ms\":1}\n{\"src\":%q,\"dst\":%q}\n",
		ipStr(f.vps[0]), ipStr(f.targets[1]), ipStr(f.vps[1]), ipStr(f.targets[2]))
	post := func(url string) string {
		pr, pw := io.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			io.WriteString(pw, body)
			time.Sleep(100 * time.Millisecond) // let deadline_ms=1 lapse
			pw.Close()                         // EOF triggers the flush
		}()
		resp, err := http.Post(url+"/v1/batch", "application/x-ndjson", pr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		<-done
		return string(out)
	}
	fast, slow := post(tsFast.URL), post(tsSlow.URL)
	if fast != slow {
		t.Fatalf("expired-pair bodies differ:\nfast:\n%s\nslow:\n%s", fast, slow)
	}
	if !strings.Contains(fast, "deadline_ms exceeded") {
		t.Fatalf("expired pair not reported: %s", fast)
	}
}

// TestBatchFastPathZeroAlloc is the CI allocation gate for the streamed
// batch fast path, mirroring TestWarmQueryZeroAlloc: one warm window's
// full serving loop — strict line parse, StreamBatch run, answer-line
// encode — must not allocate. It drives the same functions handleBatch
// does, outside HTTP (the transport writes are covered by bufio either
// way).
func TestBatchFastPathZeroAlloc(t *testing.T) {
	f := buildFixture(t, 212)
	snap := f.client.Snapshot()
	sb := snap.StreamBatch(true)
	day := snap.Day()

	lines := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Appendf(nil, "{\"src\":%q,\"dst\":%q}",
			ipStr(f.vps[i%len(f.vps)]), ipStr(f.targets[(i*7)%len(f.targets)])))
	}
	reqs := make([]core.PairReq, 0, len(lines))
	echoes := make([]batchEcho, 0, len(lines))
	var lineBuf []byte
	var sink int
	window := func() {
		reqs, echoes = reqs[:0], echoes[:0]
		for _, line := range lines {
			src, dst, _, ok := parseBatchLine(line)
			if !ok {
				t.Fatal("fixture line not canonical")
			}
			reqs = append(reqs, core.PairReq{Src: netsim.PrefixOf(src), Dst: netsim.PrefixOf(dst)})
			echoes = append(echoes, batchEcho{srcIP: src, dstIP: dst})
		}
		infos, expired, err := sb.Run(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range infos {
			errMsg := ""
			if expired[i] {
				errMsg = "deadline_ms exceeded"
			}
			lineBuf = appendResultLine(lineBuf[:0], &echoes[i], day, &infos[i], errMsg)
			sink += len(lineBuf)
		}
	}
	window() // warm trees + buffers
	allocs := testing.AllocsPerRun(50, window)
	if allocs != 0 {
		t.Fatalf("warm batch fast-path window allocates %v times, want 0 (sink %d)", allocs, sink)
	}
}

// BenchmarkBatchStream measures the streamed /v1/batch serving loop
// end-to-end over HTTP: 64-pair windows, warm trees, fast path on
// ("fast") and off ("generic") for an A/B of the zero-alloc line
// parser/encoder against the json.Unmarshal/Encoder path.
// pairs/s = 64 * window ops/s.
func BenchmarkBatchStream(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{{"fast", false}, {"generic", true}} {
		b.Run(bc.name, func(b *testing.B) {
			f := buildFixture(b, 212)
			_, ts := start(b, f, func(c *Config) {
				c.StreamWindow = 64
				c.DisableBatchFastPath = bc.disable
			})
			var body bytes.Buffer
			for i := 0; i < 64; i++ {
				fmt.Fprintf(&body, "{\"src\":%q,\"dst\":%q}\n",
					ipStr(f.vps[i%len(f.vps)]), ipStr(f.targets[(i*7)%len(f.targets)]))
			}
			lines := body.Bytes()
			run := func() {
				resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", bytes.NewReader(lines))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			run() // warm trees
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

package scenario

import (
	"strings"
	"sync"
	"testing"

	"inano/internal/experiments"
)

// sharedLab caches one quick lab across every subtest: scenarios must
// never mutate lab-owned state (they clone before applying anything), so
// replaying all of them — good and sabotaged — against one world is both
// a speedup and an isolation check.
var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func quickLab(t *testing.T) *experiments.Lab {
	t.Helper()
	labOnce.Do(func() {
		lab = experiments.NewLab(experiments.QuickConfig(42))
	})
	return lab
}

// TestScenariosKnownGood replays every scenario unmutated: all
// invariants must hold.
func TestScenariosKnownGood(t *testing.T) {
	for _, sc := range All() {
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Replay(sc.Name, Config{Seed: 42, Scale: "quick", Lab: quickLab(t)})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("known-good replay failed:\n%s", rep.Render())
			}
			if !strings.Contains(rep.Render(), "PASS") {
				t.Fatal("report records no passing checks")
			}
		})
	}
}

// TestScenariosKnownBad arms every declared mutation: each sabotaged
// replay MUST fail its invariants — a scenario that cannot detect its
// own known-bad timeline is not testing anything.
func TestScenariosKnownBad(t *testing.T) {
	for _, sc := range All() {
		if len(sc.Mutations) == 0 {
			t.Fatalf("scenario %s declares no known-bad mutations", sc.Name)
		}
		for _, m := range sc.Mutations {
			t.Run(sc.Name+"/"+m, func(t *testing.T) {
				rep, err := Replay(sc.Name, Config{Seed: 42, Scale: "quick", Mutation: m, Lab: quickLab(t)})
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if rep.Err() == nil {
					t.Fatalf("mutation %q went undetected:\n%s", m, rep.Render())
				}
			})
		}
	}
}

// TestScenarioIsolation replays one scenario twice against the shared
// lab and requires identical verdicts — a scenario that mutates lab
// state would diverge on the second run.
func TestScenarioIsolation(t *testing.T) {
	l := quickLab(t)
	a, err := Replay("rollback", Config{Seed: 42, Lab: l})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay("rollback", Config{Seed: 42, Lab: l})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("replay not idempotent against a shared lab:\n--- first\n%s--- second\n%s", a.Render(), b.Render())
	}
}

func TestReplayUsageErrors(t *testing.T) {
	if _, err := Replay("no-such", Config{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Replay("churn", Config{Mutation: "no-such"}); err == nil {
		t.Fatal("unknown mutation accepted")
	}
}

func TestReportVerdicts(t *testing.T) {
	r := &Report{Name: "x"}
	r.Logf("step %d", 1)
	if !r.Check(true, "ok") || r.Err() != nil {
		t.Fatal("passing check reported failure")
	}
	if r.Check(false, "broken %s", "thing") {
		t.Fatal("failing check returned true")
	}
	if r.Err() == nil {
		t.Fatal("failed check not surfaced by Err")
	}
	out := r.Render()
	for _, want := range []string{"step 1", "PASS ok", "FAIL broken thing", "=> FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

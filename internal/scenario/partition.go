package scenario

import (
	"bytes"
	"context"
	"fmt"
	"time"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/swarm"
)

// partitionScenario replays a swarm partition across a day roll: deltas
// for day 0->1 and 1->2 are published through a real loopback swarm
// (tracker + seeds + chunk-hash-verified fetches); replica A receives
// both on time, replica B is partitioned when the day-1 delta ships and
// only heals after day 2. On heal B fetches the backlog and applies it
// in order. Invariants: both replicas converge to the byte-identical
// day-2 atlas, serve identical answers on the validation workload, and
// the flat (compiled) serving form of the converged atlas answers
// byte-identically to the map form.
//
// Mutation "skip-missed": on heal, B applies only the latest delta,
// skipping the one it missed — the classic gap bug. The byte-equality
// invariant must trip.
func partitionScenario() Scenario {
	return Scenario{
		Name:      "partition",
		Summary:   "replicas split across a day roll must converge byte-identically after heal",
		Mutations: []string{"skip-missed"},
		Run: func(cfg Config, rep *Report) {
			l := cfg.lab()
			a0, a1, a2 := l.Day(0).Atlas, l.Day(1).Atlas, l.Day(2).Atlas
			encDelta := func(d *atlas.Delta) []byte {
				var b bytes.Buffer
				if err := d.Encode(&b); err != nil {
					rep.Check(false, "delta encode: %v", err)
					return nil
				}
				return b.Bytes()
			}
			b01 := encDelta(atlas.Diff(a0, a1))
			b12 := encDelta(atlas.Diff(a1, a2))
			if b01 == nil || b12 == nil {
				return
			}
			rep.Logf("deltas: day0->1 %dB, day1->2 %dB", len(b01), len(b12))

			// Publish both deltas through a real loopback swarm.
			tk, err := swarm.StartTracker("127.0.0.1:0")
			if !rep.Check(err == nil, "tracker started: %v", err) {
				return
			}
			defer tk.Close()
			m01 := swarm.NewManifest("delta-01", b01, 1<<14)
			m12 := swarm.NewManifest("delta-12", b12, 1<<14)
			s1, err := swarm.StartSeed(tk.Addr(), m01, b01)
			if !rep.Check(err == nil, "seeded delta-01: %v", err) {
				return
			}
			defer s1.Close()
			s2, err := swarm.StartSeed(tk.Addr(), m12, b12)
			if !rep.Check(err == nil, "seeded delta-12: %v", err) {
				return
			}
			defer s2.Close()

			fetch := func(m swarm.Manifest) []byte {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				data, err := swarm.Fetch(ctx, tk.Addr(), m)
				if !rep.Check(err == nil, "fetched %s: %v", m.Name, err) {
					return nil
				}
				return data
			}
			apply := func(a *atlas.Atlas, raw []byte, who string) bool {
				d, err := atlas.DecodeDelta(bytes.NewReader(raw))
				if !rep.Check(err == nil, "%s decoded delta: %v", who, err) {
					return false
				}
				a.Apply(d)
				return true
			}

			// Replica A follows the roll live: applies each delta as it ships.
			sideA := a0.Clone()
			if ra := fetch(m01); ra == nil || !apply(sideA, ra, "A") {
				return
			}
			if ra := fetch(m12); ra == nil || !apply(sideA, ra, "A") {
				return
			}

			// Replica B was partitioned when delta-01 shipped. After the
			// heal it fetches the backlog and applies in order — unless the
			// skip-missed mutation drops the missed one.
			sideB := a0.Clone()
			if cfg.Mutation == "skip-missed" {
				rep.Logf("B (mutated) skips the missed delta and applies only delta-12")
				if rb := fetch(m12); rb == nil || !apply(sideB, rb, "B") {
					return
				}
			} else {
				rep.Logf("B heals and applies the backlog in order")
				if rb := fetch(m01); rb == nil || !apply(sideB, rb, "B") {
					return
				}
				if rb := fetch(m12); rb == nil || !apply(sideB, rb, "B") {
					return
				}
			}

			// Invariant 1: byte-identical converged atlases.
			var ea, eb bytes.Buffer
			if err := sideA.Encode(&ea); !rep.Check(err == nil, "A encodes: %v", err) {
				return
			}
			if err := sideB.Encode(&eb); !rep.Check(err == nil, "B encodes: %v", err) {
				return
			}
			rep.Check(bytes.Equal(ea.Bytes(), eb.Bytes()),
				"replicas byte-identical after heal (A %dB, B %dB)", ea.Len(), eb.Len())
			rep.Check(sideA.Day == a2.Day && sideB.Day == a2.Day,
				"both replicas at day %d (A=%d, B=%d)", a2.Day, sideA.Day, sideB.Day)

			// Invariant 2: identical served answers on the day-2 validation
			// workload, and — on the serialized converged state — the .bin
			// load path (decode into a map atlas) and the flat load path
			// (compile to the serving form) must answer byte-identically.
			engA := inano.FromAtlas(sideA.Clone())
			engB := inano.FromAtlas(sideB.Clone())
			dec, err := atlas.Decode(bytes.NewReader(ea.Bytes()))
			if !rep.Check(err == nil, "A's encoding decodes: %v", err) {
				return
			}
			engBin := inano.FromAtlas(dec)
			engFlat := inano.FromFlat(atlas.Compile(dec.Clone()))
			pairs := l.Day(2).Validation
			if len(pairs) > 400 {
				pairs = pairs[:400]
			}
			mismatchAB, mismatchFlat, found := 0, 0, 0
			for _, vp := range pairs {
				ra := fmt.Sprintf("%+v", engA.QueryPrefix(vp.Src, vp.Dst))
				rb := fmt.Sprintf("%+v", engB.QueryPrefix(vp.Src, vp.Dst))
				rbin := fmt.Sprintf("%+v", engBin.QueryPrefix(vp.Src, vp.Dst))
				rf := fmt.Sprintf("%+v", engFlat.QueryPrefix(vp.Src, vp.Dst))
				if ra != rb {
					mismatchAB++
				}
				if rbin != rf {
					mismatchFlat++
				}
				if engA.QueryPrefix(vp.Src, vp.Dst).Found {
					found++
				}
			}
			rep.Check(found > 0, "converged atlas answers %d/%d workload pairs", found, len(pairs))
			rep.Check(mismatchAB == 0, "A and B agree on all %d pairs (%d mismatches)", len(pairs), mismatchAB)
			rep.Check(mismatchFlat == 0, ".bin and flat load paths agree on all %d pairs (%d mismatches)", len(pairs), mismatchFlat)
		},
	}
}

// Package scenario is the adversarial scenario-replay harness: each
// scenario drives the full stack — lab world, atlas builds, deltas,
// swarm distribution, serving engines, upstream feedback — through a
// scripted adversarial timeline and ends in hard pass/fail invariants.
// Every scenario is deterministic (seeded world, no wall-clock in any
// decision), and every scenario ships with at least one known-bad
// mutation that must make the replay fail — the harness is tested in
// both directions, so a scenario that cannot fail cannot pass either.
//
// cmd/inano-eval exposes them as `-scenario <name>` (with
// `-scenario-mutate <m>` for the sabotage runs); CI replays all of them
// on quick seeds per PR.
package scenario

import (
	"fmt"
	"strings"

	"inano/internal/experiments"
)

// Config selects the world a scenario replays against.
type Config struct {
	// Seed fixes the lab world; every scenario is deterministic in it.
	Seed int64
	// Scale is "quick" (CI per-PR) or "medium" (nightly).
	Scale string
	// Mutation optionally arms one of the scenario's known-bad mutations;
	// the replay must then fail its invariants.
	Mutation string
	// Lab optionally injects a pre-built lab so a test suite can replay
	// every scenario against one cached world. When nil the scenario
	// builds its own from Seed and Scale.
	Lab *experiments.Lab
}

func (c Config) lab() *experiments.Lab {
	if c.Lab != nil {
		return c.Lab
	}
	switch c.Scale {
	case "medium":
		return experiments.NewLab(experiments.MediumConfig(c.Seed))
	default:
		return experiments.NewLab(experiments.QuickConfig(c.Seed))
	}
}

// Report accumulates a replay's narration and invariant verdicts.
type Report struct {
	Name  string
	lines []string
	fails []string
}

// Logf records a narration line.
func (r *Report) Logf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// Check records one invariant verdict; a false ok is a scenario failure.
// It returns ok so replays can abort dependent steps.
func (r *Report) Check(ok bool, format string, args ...any) bool {
	msg := fmt.Sprintf(format, args...)
	if ok {
		r.lines = append(r.lines, "PASS "+msg)
	} else {
		r.lines = append(r.lines, "FAIL "+msg)
		r.fails = append(r.fails, msg)
	}
	return ok
}

// Err returns nil if every invariant held, else an error naming the
// first violated one.
func (r *Report) Err() error {
	if len(r.fails) == 0 {
		return nil
	}
	return fmt.Errorf("scenario %s: %d invariant(s) violated; first: %s", r.Name, len(r.fails), r.fails[0])
}

// Render formats the full replay transcript.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s:\n", r.Name)
	for _, l := range r.lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	if len(r.fails) == 0 {
		fmt.Fprintf(&b, "  => PASS (%d checks)\n", len(r.lines))
	} else {
		fmt.Fprintf(&b, "  => FAIL (%d violations)\n", len(r.fails))
	}
	return b.String()
}

// Scenario is one scripted adversarial timeline.
type Scenario struct {
	Name string
	// Summary is the one-line description shown by usage text and docs.
	Summary string
	// Mutations lists the known-bad sabotages the scenario understands;
	// replaying with any of them armed must fail.
	Mutations []string
	// Run replays the timeline, recording checks into rep.
	Run func(cfg Config, rep *Report)
}

// All returns every scenario in stable order.
func All() []Scenario {
	return []Scenario{
		churnScenario(),
		partitionScenario(),
		flashcrowdScenario(),
		rollbackScenario(),
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Replay validates cfg against the named scenario and runs it. The
// returned error reports usage problems (unknown scenario or mutation);
// invariant outcomes live in the Report.
func Replay(name string, cfg Config) (*Report, error) {
	sc, ok := Lookup(name)
	if !ok {
		names := make([]string, 0, 4)
		for _, s := range All() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(names, ", "))
	}
	if cfg.Mutation != "" {
		found := false
		for _, m := range sc.Mutations {
			if m == cfg.Mutation {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("scenario %s has no mutation %q (have: %s)", name, cfg.Mutation, strings.Join(sc.Mutations, ", "))
		}
	}
	rep := &Report{Name: sc.Name}
	if cfg.Mutation != "" {
		rep.Logf("mutation armed: %s (replay must fail)", cfg.Mutation)
	}
	sc.Run(cfg, rep)
	return rep, nil
}

package scenario

import (
	"bytes"
	"math"

	"inano/internal/atlas"
	"inano/internal/experiments"
	"inano/internal/netsim"
)

// rollbackScenario replays a bad-build rollback: day 0 ships with folded
// upstream corrections; the day-1 build is declared bad and never ships
// (the serving tier keeps the day-0 corrected atlas); days 2 and 3 ship
// fresh builds that carry the surviving corrections forward with the
// halve-then-drop decay discipline — no reporter re-confirms anything
// after the rollback. Invariants: corrections decay geometrically (the
// max |GlobalAdjustMS| at least halves per carry), the correction count
// never grows, every surviving day-3 correction is exactly half its
// day-2 value, and a delta-following client that stayed on the day-0
// corrected atlas through the rollback converges to the same corrections
// as the day-3 archive.
//
// Mutation "fossilize": the builder passes every prior correction as
// "freshly re-reported" (keep=everything), so nothing ever decays —
// stale corrections from before the rollback fossilize and the decay
// invariant must trip.
func rollbackScenario() Scenario {
	return Scenario{
		Name:      "rollback",
		Summary:   "serving an older atlas after a bad build: corrections decay, never fossilize",
		Mutations: []string{"fossilize"},
		Run: func(cfg Config, rep *Report) {
			l := cfg.lab()
			d0 := l.Day(0)
			pool := l.ValSrcs[1:]
			dsts := experiments.SharedTargets(d0)
			ro := experiments.CollectResiduals(l, 0, pool, dsts, 2, nil)
			a0c, n0 := atlas.FoldObservations(d0.Atlas, ro.Residuals)
			rep.Logf("day 0: %d reporters folded %d corrections", ro.Reporters, n0)
			if !rep.Check(n0 > 0, "day-0 archive carries %d > 0 corrections (scenario not vacuous)", n0) {
				return
			}
			max0 := maxAbsAdjust(a0c)
			rep.Logf("day 0 max |GlobalAdjustMS| = %.3f", max0)

			// keepFor models what the builder believes was freshly
			// re-reported. After a rollback nobody re-reported anything —
			// unless the fossilize mutation lies about it.
			keepFor := func(prev *atlas.Atlas) map[netsim.Prefix]float64 {
				if cfg.Mutation != "fossilize" {
					return nil
				}
				keep := make(map[netsim.Prefix]float64, len(prev.GlobalAdjustMS))
				for p, v := range prev.GlobalAdjustMS {
					keep[p] = float64(v)
				}
				return keep
			}

			// Day 1 is the bad build: it never ships, serving stays on a0c.
			rep.Logf("day 1 build is bad; serving tier stays on the day-0 corrected atlas")

			// Days 2 and 3 ship, carrying corrections with decay.
			b2 := l.Day(2).Atlas.Clone()
			n2 := atlas.CarryCorrections(b2, a0c, keepFor(a0c))
			b3 := l.Day(3).Atlas.Clone()
			n3 := atlas.CarryCorrections(b3, b2, keepFor(b2))
			max2, max3 := maxAbsAdjust(b2), maxAbsAdjust(b3)
			rep.Logf("carry: day2 %d corrections (max %.3f), day3 %d (max %.3f)", n2, max2, n3, max3)

			// Invariant 1: geometric decay of the strongest correction.
			rep.Check(max2 <= max0/2+1e-6, "day-2 max correction %.3f <= half of day-0 %.3f", max2, max0)
			rep.Check(max3 <= max0/4+1e-6, "day-3 max correction %.3f <= quarter of day-0 %.3f", max3, max0)
			// Invariant 2: the correction set only shrinks without fresh
			// reports.
			rep.Check(n2 <= n0 && n3 <= n2, "correction count non-increasing: %d -> %d -> %d", n0, n2, n3)
			// Invariant 3: every surviving day-3 correction is exactly half
			// its day-2 value (halve-then-drop, no other mutation).
			exact := true
			for p, v := range b3.GlobalAdjustMS {
				prev, ok := b2.GlobalAdjustMS[p]
				if !ok || v != prev/2 {
					exact = false
					break
				}
			}
			if cfg.Mutation != "fossilize" {
				rep.Check(exact, "every surviving day-3 correction is exactly half its day-2 value")
			}

			// Invariant 4: a delta-following client that stayed on a0c
			// through the rollback converges to the day-3 archive's
			// corrections after applying the day-2 and day-3 deltas (wire
			// round-trip included).
			client := a0c.Clone()
			for _, step := range []*atlas.Atlas{b2, b3} {
				var buf bytes.Buffer
				if err := atlas.Diff(client, step).Encode(&buf); !rep.Check(err == nil, "delta encodes: %v", err) {
					return
				}
				d, err := atlas.DecodeDelta(bytes.NewReader(buf.Bytes()))
				if !rep.Check(err == nil, "delta decodes: %v", err) {
					return
				}
				client.Apply(d)
			}
			rep.Check(len(client.GlobalAdjustMS) == len(b3.GlobalAdjustMS),
				"client converged to %d corrections, archive has %d", len(client.GlobalAdjustMS), len(b3.GlobalAdjustMS))
			worst := 0.0
			for p, v := range b3.GlobalAdjustMS {
				if d := math.Abs(float64(client.GlobalAdjustMS[p] - v)); d > worst {
					worst = d
				}
			}
			// The wire format quantizes corrections to 0.01ms, so the
			// delta-follower can sit up to half a quantum off the archive.
			rep.Check(worst <= 0.0051, "client corrections match archive within wire quantization (worst %.6f)", worst)
		},
	}
}

func maxAbsAdjust(a *atlas.Atlas) float64 {
	m := 0.0
	for _, v := range a.GlobalAdjustMS {
		if x := math.Abs(float64(v)); x > m {
			m = x
		}
	}
	return m
}

package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	inano "inano"
	"inano/internal/netsim"
)

// flashcrowdScenario replays a query storm on a single destination (a
// flash crowd: every peer in a swarm suddenly wants paths to the same
// hot prefix). A reference engine answers the workload serially to pin
// the expected answers and the number of prediction-tree builds it
// costs; then 16 concurrent workers hammer one shared engine with the
// same workload many times over. Invariants: the tree cache's
// singleflight keeps the total Dijkstra builds O(1) — no higher than the
// serial reference plus slack — every concurrent answer is byte-equal to
// the reference, and tail latency stays bounded.
//
// Mutation "cache-off": each worker gets a private engine (no shared
// cache), multiplying builds by the worker count; the O(1) build
// invariant must trip.
func flashcrowdScenario() Scenario {
	return Scenario{
		Name:      "flashcrowd",
		Summary:   "query storm on one destination: singleflight keeps builds O(1), answers exact, p99 bounded",
		Mutations: []string{"cache-off"},
		Run: func(cfg Config, rep *Report) {
			l := cfg.lab()
			a0 := l.Day(0).Atlas

			// The hot destination: the first validation destination the
			// engine can actually answer, stormed from every distinct
			// validation source.
			ref := inano.FromAtlas(a0.Clone())
			var hotDst netsim.Prefix
			var srcs []netsim.Prefix
			seenSrc := make(map[netsim.Prefix]bool)
			for _, vp := range l.Day(0).Validation {
				if hotDst == 0 && ref.QueryPrefix(vp.Src, vp.Dst).Found {
					hotDst = vp.Dst
				}
				if !seenSrc[vp.Src] {
					seenSrc[vp.Src] = true
					srcs = append(srcs, vp.Src)
				}
			}
			if !rep.Check(hotDst != 0, "found an answerable hot destination") {
				return
			}
			rep.Logf("hot destination %v, %d distinct sources", hotDst, len(srcs))

			// Serial reference: answers + build cost.
			refAnswers := make(map[netsim.Prefix]string, len(srcs))
			for _, s := range srcs {
				refAnswers[s] = fmt.Sprintf("%+v", ref.QueryPrefix(s, hotDst))
			}
			refBuilds := ref.CacheStats().Builds
			rep.Logf("serial reference: %d tree builds for the hot workload", refBuilds)
			rep.Check(refBuilds > 0, "reference performed %d > 0 builds", refBuilds)

			const workers = 16
			const perWorker = 200
			shared := inano.FromAtlas(a0.Clone())
			engines := make([]*inano.Client, workers)
			for i := range engines {
				if cfg.Mutation == "cache-off" {
					engines[i] = inano.FromAtlas(a0.Clone()) // private cache per worker
				} else {
					engines[i] = shared
				}
			}

			latencies := make([][]time.Duration, workers)
			mismatches := make([]int, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					eng := engines[w]
					for q := 0; q < perWorker; q++ {
						src := srcs[(w*perWorker+q)%len(srcs)]
						t0 := time.Now()
						got := fmt.Sprintf("%+v", eng.QueryPrefix(src, hotDst))
						latencies[w] = append(latencies[w], time.Since(t0))
						if got != refAnswers[src] {
							mismatches[w]++
						}
					}
				}(w)
			}
			wg.Wait()

			var all []time.Duration
			badAnswers := 0
			for w := 0; w < workers; w++ {
				all = append(all, latencies[w]...)
				badAnswers += mismatches[w]
			}
			var builds uint64
			if cfg.Mutation == "cache-off" {
				for _, e := range engines {
					builds += e.CacheStats().Builds
				}
			} else {
				builds = shared.CacheStats().Builds
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			p99 := all[len(all)*99/100]
			rep.Logf("storm: %d workers x %d queries, %d total builds, p99 %v", workers, perWorker, builds, p99)

			// Invariant 1: singleflight keeps builds O(1) — the storm costs
			// no more than the serial reference plus slack for in-flight
			// races at worker startup.
			rep.Check(builds <= refBuilds+2,
				"storm builds %d within O(1) bound (reference %d + 2)", builds, refBuilds)
			// Invariant 2: every concurrent answer equals the reference.
			rep.Check(badAnswers == 0, "all %d storm answers byte-equal the reference (%d mismatches)",
				workers*perWorker, badAnswers)
			// Invariant 3: bounded tail latency (generous: cached queries
			// are microseconds; this only trips on pathological serialization).
			rep.Check(p99 < 250*time.Millisecond, "p99 %v under 250ms", p99)
		},
	}
}

package scenario

import (
	"inano/internal/atlas"
	"inano/internal/experiments"
	"inano/internal/netsim"
)

// churnScenario replays reporter churn: across several upstream rolls
// the reporting population rotates (peers join and leave, as swarms do),
// and each roll's folded delta is scored on a client that never reports.
// Invariant: churn must never regress the non-reporter's RTT error
// meaningfully past the plain (no-feedback) delta — folding residuals
// from whoever happens to be around is strictly opportunistic, so a
// shrinking or shifting reporter set may reduce the benefit but must not
// poison the baseline.
//
// Mutation "poison": every reporter inflates every residual by +80ms
// (a colluding-majority attack, beyond the single-liar median bound).
// The folded corrections then drag served predictions far off truth and
// the per-roll regression bound must trip.
func churnScenario() Scenario {
	return Scenario{
		Name:      "churn",
		Summary:   "rotating reporter population must never poison the non-reporter's predictions",
		Mutations: []string{"poison"},
		Run: func(cfg Config, rep *Report) {
			l := cfg.lab()
			d0, d1 := l.Day(0), l.Day(1)
			nonReporter := l.ValSrcs[0]
			pool := l.ValSrcs[1:]
			if !rep.Check(len(pool) >= 3, "reporter pool has %d members, need >= 3 for churn", len(pool)) {
				return
			}
			dsts := experiments.SharedTargets(d0)
			plainDelta := atlas.Diff(d0.Atlas, d1.Atlas)
			plainErr, _, pairs := experiments.ScoreDelta(l, 0, 1, nonReporter, plainDelta)
			rep.Logf("plain day-roll delta: mean err %.4f over %d held-out pairs", plainErr, pairs)
			rep.Check(pairs > 0, "non-reporter has %d held-out pairs", pairs)

			var mut experiments.Mutator
			if cfg.Mutation == "poison" {
				mut = func(_, _ netsim.Prefix, resid float64) float64 { return resid + 80 }
			}

			// Three rolls with a rotating majority subset of the pool: roll
			// i uses reporters i, i+1, ... i+k-1 (mod pool), so membership
			// churns every roll but overlap keeps the median supported.
			k := (len(pool) + 1) / 2
			if k < 2 {
				k = 2
			}
			foldSum, plainSum := 0.0, 0.0
			for roll := 0; roll < 3; roll++ {
				reps := make([]netsim.Prefix, 0, k)
				for j := 0; j < k; j++ {
					reps = append(reps, pool[(roll+j)%len(pool)])
				}
				ro := experiments.CollectResiduals(l, 0, reps, dsts, 2, mut)
				obsDelta, _, folded := atlas.BuildDeltaWithObservations(d0.Atlas, d1.Atlas, ro.Residuals)
				foldedErr, _, _ := experiments.ScoreDelta(l, 0, 1, nonReporter, obsDelta)
				rep.Logf("roll %d: %d reporters, %d observations, %d folded prefixes, %d corrections, folded err %.4f",
					roll, ro.Reporters, ro.Observations, len(ro.Residuals), folded, foldedErr)
				rep.Check(ro.Observations > 0, "roll %d collected %d observations", roll, ro.Observations)
				// The hard bound: a churned reporter set must not regress
				// the non-reporter beyond 10% relative + 0.01 absolute.
				rep.Check(foldedErr <= plainErr*1.10+0.01,
					"roll %d: folded err %.4f within regression bound of plain %.4f", roll, foldedErr, plainErr)
				foldSum += foldedErr
				plainSum += plainErr
			}
			// Net across the churn, feedback must not be a loss.
			rep.Check(foldSum <= plainSum+1e-9,
				"net folded err %.4f no worse than net plain %.4f across churn", foldSum, plainSum)
		},
	}
}

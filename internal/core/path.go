package core

import (
	"context"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Prediction is a one-way predicted path with composed link annotations.
type Prediction struct {
	// Found reports whether a path to the destination was predicted.
	Found bool
	// DstCluster is the destination attachment cluster whose prediction
	// tree produced this path — the provenance key the measurement
	// feedback loop uses to attribute observed-vs-predicted error to a
	// destination. Valid only when Found.
	DstCluster cluster.ClusterID
	// Clusters is the predicted cluster-level path, source end first.
	Clusters []cluster.ClusterID
	// ASPath is the predicted AS-level path including the endpoint
	// prefixes' origin ASes.
	ASPath []netsim.ASN
	// LatencyMS is the sum of atlas link latencies along the path.
	LatencyMS float64
	// LossRate is the composed one-way loss rate of the path's links.
	LossRate float64
}

// reset clears p for reuse, keeping the capacity of its path slices so a
// caller-owned Prediction answers repeated queries without allocating.
func (p *Prediction) reset() {
	p.Found = false
	p.DstCluster = 0
	p.Clusters = p.Clusters[:0]
	p.ASPath = p.ASPath[:0]
	p.LatencyMS = 0
	p.LossRate = 0
}

// PathInfo is the answer to a bidirectional path query: forward and reverse
// predictions with end-to-end estimates (§3: "predicts the forward and
// reverse paths ... and composes the properties of the inter-cluster
// links").
type PathInfo struct {
	// Found reports whether both directions produced a prediction.
	Found bool
	// Fwd and Rev are the per-direction path predictions.
	Fwd, Rev Prediction
	// RTTMS is the predicted round-trip latency (forward + reverse).
	RTTMS float64
	// LossRate is the predicted round-trip loss rate.
	LossRate float64
}

// minServedLatencyMS floors a residually corrected latency: stacked
// negative corrections (each within the ±feedback.MaxAdjustMS codec bound)
// must never drive a served prediction to zero or below.
const minServedLatencyMS = 0.05

func treeKey(dst cluster.ClusterID, origin netsim.ASN) uint64 {
	return uint64(uint32(dst))<<32 | uint64(origin)
}

// buildTree computes the prediction tree for a cache key — the
// treeBuilder hook the tree cache invokes on a miss. Taking the key (and
// not a closure) keeps the warm-hit lookup allocation-free.
func (e *Engine) buildTree(k uint64) *tree {
	return e.run(cluster.ClusterID(uint32(k>>32)), netsim.ASN(uint32(k)))
}

// treeFor returns (building if needed) the prediction tree for a
// destination cluster and origin AS. Concurrent callers for the same cold
// destination share one Dijkstra run (see shardedTreeCache); a caller
// joining another caller's in-flight build stops waiting and returns
// ctx.Err() when ctx is cancelled.
func (e *Engine) treeFor(ctx context.Context, dst cluster.ClusterID, origin netsim.ASN) (*tree, error) {
	return e.trees.getOrCompute(ctx, treeKey(dst, origin), e)
}

// PredictForward predicts the one-way path from a host in src to a host in
// dst. Found is false when either prefix has no attachment cluster in the
// atlas or no policy-compliant path exists.
func (e *Engine) PredictForward(src, dst netsim.Prefix) Prediction {
	p := e.predictForwardRaw(src, dst)
	e.adjustLatency(&p, dst)
	return p
}

// predictForwardRaw is PredictForward without the residual correction —
// the reverse-leg shape, where the correction must not apply.
func (e *Engine) predictForwardRaw(src, dst netsim.Prefix) Prediction {
	var p Prediction
	e.predictForwardRawInto(&p, src, dst)
	return p
}

// predictForwardRawInto fills p with the residual-uncorrected forward
// prediction, reusing p's slice capacity. This is the allocation-free
// core of every query shape.
//
// bgCtx hoists context.Background() out of the query hot path: building
// the Context interface value per call is an escape-analysis hit inside a
// //inano:zeroalloc function (found by inanovet -escape), and the
// singleton is what every call produced anyway.
var bgCtx = context.Background()

//inano:zeroalloc
func (e *Engine) predictForwardRawInto(p *Prediction, src, dst netsim.Prefix) {
	p.reset()
	srcCl, okS := e.f.ClusterOf(src)
	dstCl, okD := e.f.ClusterOf(dst)
	if !okS || !okD {
		return
	}
	t, _ := e.treeFor(bgCtx, dstCl, e.f.OriginAS(dst))
	e.pathFromInto(t, srcCl, p)
	if !p.Found {
		return
	}
	p.DstCluster = dstCl
	p.ASPath = e.asPathInto(p.ASPath, p.Clusters, e.f.OriginAS(src), e.f.OriginAS(dst))
}

// adjustLatency applies the residual corrections for the prediction's
// destination prefix: the swarm-shipped aggregate (atlas.GlobalAdjustMS,
// folded by the build from everyone's uploaded observations) plus the
// client-local converging term (atlas.AdjustMS, this host's own probes).
// The two stack — the local term is learned against served predictions
// that already include the global one, so it converges on whatever
// residual remains. Applied exactly once per answer — on a standalone
// one-way prediction, or on the forward leg of a bidirectional query
// (see composeQuery) — and floored so a correction can never drive a
// latency to zero or below. A no-op for unfound predictions and for
// atlases without corrections.
func (e *Engine) adjustLatency(p *Prediction, dst netsim.Prefix) {
	if !p.Found {
		return
	}
	g, l, ok := e.f.Adjust(dst)
	if !ok {
		return
	}
	adj := float64(g) + float64(l)
	if adj == 0 {
		return
	}
	p.LatencyMS += adj
	if p.LatencyMS < minServedLatencyMS {
		p.LatencyMS = minServedLatencyMS
	}
}

// AttachmentCluster returns the atlas attachment cluster of a prefix: the
// cluster whose prediction tree answers queries toward it. The feedback
// loop keys its per-destination error aggregation on this, so corrective
// measurements and served predictions attribute error identically.
func (e *Engine) AttachmentCluster(p netsim.Prefix) (cluster.ClusterID, bool) {
	return e.f.ClusterOf(p)
}

// pathFrom extracts the predicted path from a source cluster out of a
// prediction tree, preferring the FROM_SRC plane and falling back to
// TO_DST-only (§4.3.1).
func (e *Engine) pathFrom(t *tree, srcCl cluster.ClusterID) Prediction {
	var p Prediction
	e.pathFromInto(t, srcCl, &p)
	return p
}

// pathFromInto is pathFrom writing into a caller-owned Prediction. The
// walk reads link latency and loss from the tree's recorded CSR edge
// indices — no link-table lookups at all. p must be reset (or zero)
// except for slice capacity.
func (e *Engine) pathFromInto(t *tree, srcCl cluster.ClusterID, p *Prediction) {
	start := int32(-1)
	if e.opts.Asymmetry {
		if id := e.nodeID(srcCl, planeFromSrc, stateUp); t.cost[id] != infCost {
			start = id
		}
	}
	if start < 0 {
		if id := e.nodeID(srcCl, planeToDst, stateUp); t.cost[id] != infCost {
			start = id
		}
	}
	if start < 0 {
		return
	}
	p.Found = true
	if p.Clusters == nil {
		// First use of this Prediction: size for a typical path up front
		// so the walk's appends don't regrow 1->2->4->8. Reused
		// Predictions keep whatever capacity they grew to.
		p.Clusters = make([]cluster.ClusterID, 0, 16)
	}
	deliver := 1.0
	prevCl := cluster.ClusterID(-1)
	prev := int32(-1)
	steps := 0
	for id := start; id >= 0; id = t.next[id] {
		if steps++; steps > e.numNodes()+1 {
			*p = Prediction{Clusters: p.Clusters[:0], ASPath: p.ASPath[:0]}
			return // defensive: malformed tree must not hang
		}
		c := e.nodeCluster(id)
		if c != prevCl {
			if prevCl >= 0 {
				// The relaxation recorded the crossing link's CSR index
				// on the walk's source-side node (prev = the tree's vid).
				if ei := t.edge[prev]; ei >= 0 {
					p.LatencyMS += float64(e.f.EdgeLat[ei])
					deliver *= 1 - float64(e.f.EdgeLoss[ei])
				}
			}
			p.Clusters = append(p.Clusters, c)
			prevCl = c
		}
		prev = id
	}
	p.LossRate = 1 - deliver
}

// asPath derives the AS-level path from a cluster path, bracketing it with
// the endpoint prefixes' origin ASes when the attachment clusters sit in a
// different AS (e.g. the stub's own routers never answered probes).
func (e *Engine) asPath(clusters []cluster.ClusterID, srcAS, dstAS netsim.ASN) []netsim.ASN {
	return e.asPathInto(nil, clusters, srcAS, dstAS)
}

// asPathInto is asPath appending into out[:0] (which may be nil).
func (e *Engine) asPathInto(out []netsim.ASN, clusters []cluster.ClusterID, srcAS, dstAS netsim.ASN) []netsim.ASN {
	if out == nil {
		out = make([]netsim.ASN, 0, len(clusters)+2)
	}
	out = out[:0]
	if srcAS != 0 {
		out = append(out, srcAS)
	}
	for _, c := range clusters {
		a := e.f.ClusterAS[c]
		if a == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == a {
			continue
		}
		out = append(out, a)
	}
	if dstAS != 0 && (len(out) == 0 || out[len(out)-1] != dstAS) {
		out = append(out, dstAS)
	}
	return out
}

// Query predicts both directions between two prefixes and composes
// end-to-end estimates. The destination's residual correction applies
// once, on the forward leg (see composeQuery); the reverse leg is the
// uncorrected prediction, so Rev may differ from a standalone
// PredictForward(dst, src) when src itself carries a correction.
func (e *Engine) Query(src, dst netsim.Prefix) PathInfo {
	var info PathInfo
	e.QueryInto(&info, src, dst)
	return info
}

// QueryInto is Query writing into a caller-owned PathInfo, reusing the
// capacity of its Clusters/ASPath slices across calls. After the trees for
// both directions are warm (cached), a QueryInto performs zero heap
// allocations — the serving loop's steady state. The previous contents of
// info are overwritten; its slices must not be aliased elsewhere.
//
//inano:zeroalloc
func (e *Engine) QueryInto(info *PathInfo, src, dst netsim.Prefix) {
	e.predictForwardRawInto(&info.Fwd, src, dst)
	e.predictForwardRawInto(&info.Rev, dst, src)
	e.finishQuery(info, dst)
}

// finishQuery applies the forward-leg residual correction and composes the
// bidirectional estimates, resetting the top-level fields.
func (e *Engine) finishQuery(info *PathInfo, dst netsim.Prefix) {
	e.adjustLatency(&info.Fwd, dst)
	info.Found = false
	info.RTTMS = 0
	info.LossRate = 0
	if !info.Fwd.Found || !info.Rev.Found {
		return
	}
	info.Found = true
	info.RTTMS = info.Fwd.LatencyMS + info.Rev.LatencyMS
	info.LossRate = 1 - (1-info.Fwd.LossRate)*(1-info.Rev.LossRate)
}

package core

import (
	"context"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Prediction is a one-way predicted path with composed link annotations.
type Prediction struct {
	Found bool
	// DstCluster is the destination attachment cluster whose prediction
	// tree produced this path — the provenance key the measurement
	// feedback loop uses to attribute observed-vs-predicted error to a
	// destination. Valid only when Found.
	DstCluster cluster.ClusterID
	// Clusters is the predicted cluster-level path, source end first.
	Clusters []cluster.ClusterID
	// ASPath is the predicted AS-level path including the endpoint
	// prefixes' origin ASes.
	ASPath []netsim.ASN
	// LatencyMS is the sum of atlas link latencies along the path.
	LatencyMS float64
	// LossRate is the composed one-way loss rate of the path's links.
	LossRate float64
}

// PathInfo is the answer to a bidirectional path query: forward and reverse
// predictions with end-to-end estimates (§3: "predicts the forward and
// reverse paths ... and composes the properties of the inter-cluster
// links").
type PathInfo struct {
	Found    bool
	Fwd, Rev Prediction
	// RTTMS is the predicted round-trip latency (forward + reverse).
	RTTMS float64
	// LossRate is the predicted round-trip loss rate.
	LossRate float64
}

func treeKey(dst cluster.ClusterID, origin netsim.ASN) uint64 {
	return uint64(uint32(dst))<<32 | uint64(origin)
}

// treeFor returns (building if needed) the prediction tree for a
// destination cluster and origin AS. Concurrent callers for the same cold
// destination share one Dijkstra run (see shardedTreeCache); a caller
// joining another caller's in-flight build stops waiting and returns
// ctx.Err() when ctx is cancelled.
func (e *Engine) treeFor(ctx context.Context, dst cluster.ClusterID, origin netsim.ASN) (*tree, error) {
	return e.trees.getOrCompute(ctx, treeKey(dst, origin), func() *tree {
		return e.run(dst, origin)
	})
}

// PredictForward predicts the one-way path from a host in src to a host in
// dst. Found is false when either prefix has no attachment cluster in the
// atlas or no policy-compliant path exists.
func (e *Engine) PredictForward(src, dst netsim.Prefix) Prediction {
	p := e.predictForwardRaw(src, dst)
	e.adjustLatency(&p, dst)
	return p
}

// predictForwardRaw is PredictForward without the residual correction —
// the reverse-leg shape, where the correction must not apply.
func (e *Engine) predictForwardRaw(src, dst netsim.Prefix) Prediction {
	srcCl, okS := e.a.PrefixCluster[src]
	dstCl, okD := e.a.PrefixCluster[dst]
	if !okS || !okD {
		return Prediction{}
	}
	t, _ := e.treeFor(context.Background(), dstCl, e.a.PrefixAS[dst])
	p := e.pathFrom(t, srcCl)
	if !p.Found {
		return p
	}
	p.DstCluster = dstCl
	p.ASPath = e.asPath(p.Clusters, e.a.PrefixAS[src], e.a.PrefixAS[dst])
	return p
}

// adjustLatency applies the residual corrections for the prediction's
// destination prefix: the swarm-shipped aggregate (atlas.GlobalAdjustMS,
// folded by the build from everyone's uploaded observations) plus the
// client-local converging term (atlas.AdjustMS, this host's own probes).
// The two stack — the local term is learned against served predictions
// that already include the global one, so it converges on whatever
// residual remains. Applied exactly once per answer — on a standalone
// one-way prediction, or on the forward leg of a bidirectional query
// (see composeQuery) — and floored so a correction can never drive a
// latency to zero or below. A no-op for unfound predictions and for
// atlases without corrections.
func (e *Engine) adjustLatency(p *Prediction, dst netsim.Prefix) {
	if !p.Found || (len(e.a.AdjustMS) == 0 && len(e.a.GlobalAdjustMS) == 0) {
		return
	}
	adj := float64(e.a.GlobalAdjustMS[dst]) + float64(e.a.AdjustMS[dst])
	if adj == 0 {
		return
	}
	p.LatencyMS += adj
	if p.LatencyMS < 0.05 {
		p.LatencyMS = 0.05
	}
}

// AttachmentCluster returns the atlas attachment cluster of a prefix: the
// cluster whose prediction tree answers queries toward it. The feedback
// loop keys its per-destination error aggregation on this, so corrective
// measurements and served predictions attribute error identically.
func (e *Engine) AttachmentCluster(p netsim.Prefix) (cluster.ClusterID, bool) {
	cl, ok := e.a.PrefixCluster[p]
	return cl, ok
}

// pathFrom extracts the predicted path from a source cluster out of a
// prediction tree, preferring the FROM_SRC plane and falling back to
// TO_DST-only (§4.3.1).
func (e *Engine) pathFrom(t *tree, srcCl cluster.ClusterID) Prediction {
	var startIDs []int32
	if e.opts.Asymmetry {
		startIDs = append(startIDs, e.nodeID(srcCl, planeFromSrc, stateUp))
	}
	startIDs = append(startIDs, e.nodeID(srcCl, planeToDst, stateUp))
	var start int32 = -1
	for _, id := range startIDs {
		if t.cost[id] != infCost {
			start = id
			break
		}
	}
	if start < 0 {
		return Prediction{}
	}
	p := Prediction{Found: true}
	deliver := 1.0
	prevCl := cluster.ClusterID(-1)
	steps := 0
	for id := start; id >= 0; id = t.next[id] {
		if steps++; steps > e.numNodes()+1 {
			return Prediction{} // defensive: malformed tree must not hang
		}
		c := e.nodeCluster(id)
		if c != prevCl {
			if prevCl >= 0 {
				if li := e.a.LinkAt(prevCl, c); li >= 0 {
					l := &e.a.Links[li]
					p.LatencyMS += float64(l.LatencyMS)
					deliver *= 1 - e.a.LossOf(prevCl, c)
				}
			}
			p.Clusters = append(p.Clusters, c)
			prevCl = c
		}
	}
	p.LossRate = 1 - deliver
	return p
}

// asPath derives the AS-level path from a cluster path, bracketing it with
// the endpoint prefixes' origin ASes when the attachment clusters sit in a
// different AS (e.g. the stub's own routers never answered probes).
func (e *Engine) asPath(clusters []cluster.ClusterID, srcAS, dstAS netsim.ASN) []netsim.ASN {
	out := make([]netsim.ASN, 0, len(clusters)+2)
	if srcAS != 0 {
		out = append(out, srcAS)
	}
	for _, c := range clusters {
		a := e.a.ClusterAS[c]
		if a == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == a {
			continue
		}
		out = append(out, a)
	}
	if dstAS != 0 && (len(out) == 0 || out[len(out)-1] != dstAS) {
		out = append(out, dstAS)
	}
	return out
}

// Query predicts both directions between two prefixes and composes
// end-to-end estimates. The destination's residual correction applies
// once, on the forward leg (see composeQuery); the reverse leg is the
// uncorrected prediction, so Rev may differ from a standalone
// PredictForward(dst, src) when src itself carries a correction.
func (e *Engine) Query(src, dst netsim.Prefix) PathInfo {
	fwd := e.predictForwardRaw(src, dst)
	rev := e.predictForwardRaw(dst, src)
	return e.composeQuery(fwd, rev, dst)
}

package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeTree returns a distinct tree pointer tagged by id (the dstCluster
// field doubles as the tag; nothing dereferences the slices).
func fakeTree(id int32) *tree { return &tree{dstCluster: 1, originAS: 0, cost: nil, next: []int32{id}} }

func treeTag(t *tree) int32 { return t.next[0] }

// TestLRUEvictionOrder drives a single-shard cache through scripted access
// sequences and checks exactly which keys survive and in what recency
// order.
func TestLRUEvictionOrder(t *testing.T) {
	cases := []struct {
		name    string
		cap     int
		ops     []uint64 // getOrCompute calls in order
		wantMRU []uint64 // expected keys, most recently used first
	}{
		{
			name:    "no eviction below capacity",
			cap:     3,
			ops:     []uint64{1, 2, 3},
			wantMRU: []uint64{3, 2, 1},
		},
		{
			name:    "oldest evicted first",
			cap:     3,
			ops:     []uint64{1, 2, 3, 4},
			wantMRU: []uint64{4, 3, 2},
		},
		{
			name:    "hit refreshes recency",
			cap:     3,
			ops:     []uint64{1, 2, 3, 1, 4}, // touching 1 saves it; 2 dies
			wantMRU: []uint64{4, 1, 3},
		},
		{
			name:    "repeated hits keep one entry",
			cap:     2,
			ops:     []uint64{1, 1, 1, 2},
			wantMRU: []uint64{2, 1},
		},
		{
			name:    "capacity one thrashes",
			cap:     1,
			ops:     []uint64{1, 2, 3},
			wantMRU: []uint64{3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newShardedTreeCache(tc.cap, 1)
			for _, k := range tc.ops {
				k := k
				got, err := c.getOrCompute(context.Background(), k, builderFunc(func(uint64) *tree { return fakeTree(int32(k)) }))
				if err != nil {
					t.Fatalf("key %d: %v", k, err)
				}
				if treeTag(got) != int32(k) {
					t.Fatalf("key %d returned tree tagged %d", k, treeTag(got))
				}
			}
			got := c.shards[0].keysMRU()
			if len(got) != len(tc.wantMRU) {
				t.Fatalf("cache holds %v, want %v", got, tc.wantMRU)
			}
			for i := range got {
				if got[i] != tc.wantMRU[i] {
					t.Fatalf("cache order %v, want %v", got, tc.wantMRU)
				}
			}
		})
	}
}

// TestEvictedKeyRecomputes checks an evicted tree is rebuilt on next use.
func TestEvictedKeyRecomputes(t *testing.T) {
	c := newShardedTreeCache(1, 1)
	builds := 0
	build := func(k uint64) *tree {
		builds++
		return fakeTree(int32(k))
	}
	c.getOrCompute(context.Background(), 7, builderFunc(func(uint64) *tree { return build(7) }))
	c.getOrCompute(context.Background(), 8, builderFunc(func(uint64) *tree { return build(8) })) // evicts 7
	c.getOrCompute(context.Background(), 7, builderFunc(func(uint64) *tree { return build(7) })) // must rebuild
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	st := c.stats()
	if st.Builds != 3 || st.Hits != 0 || st.Misses != 3 || st.Len != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardCapacitySplit checks total capacity is divided across shards
// with a floor of one tree per shard.
func TestShardCapacitySplit(t *testing.T) {
	cases := []struct {
		capacity, shards, wantShards, wantPerShard int
	}{
		{64, 16, 16, 4},
		{10, 4, 4, 3},  // ceil(10/4)
		{1, 16, 16, 1}, // floor of one per shard
		{100, 3, 4, 25},
		{5, 0, 1, 5}, // shards default to at least one
	}
	for _, tc := range cases {
		c := newShardedTreeCache(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("cap %d shards %d: got %d shards, want %d", tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
		for i := range c.shards {
			if c.shards[i].cap != tc.wantPerShard {
				t.Errorf("cap %d shards %d: shard %d holds %d, want %d", tc.capacity, tc.shards, i, c.shards[i].cap, tc.wantPerShard)
			}
		}
	}
}

// TestSingleflightDedup hammers one cold key from many goroutines and
// checks the compute function ran exactly once, with every caller getting
// the same tree.
func TestSingleflightDedup(t *testing.T) {
	c := newShardedTreeCache(16, 4)
	const goroutines = 32
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*tree, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], _ = c.getOrCompute(context.Background(), 42, builderFunc(func(uint64) *tree {
				computes.Add(1)
				<-release // hold the build so every goroutine joins it
				return fakeTree(42)
			}))
		}(g)
	}
	// Let the other goroutines reach the inflight wait, then release. The
	// sleep-free way: computes hitting 1 means one goroutine is inside
	// compute; the rest either wait on wg or haven't started. Closing
	// release lets the build finish; latecomers then hit the cache.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for g, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d got a different tree", g)
		}
	}
	if st := c.stats(); st.Builds != 1 {
		t.Fatalf("stats.Builds = %d, want 1", st.Builds)
	}
}

// TestSingleflightDistinctKeysIndependent checks that builds of different
// destinations do not serialize on each other's singleflight.
func TestSingleflightDistinctKeysIndependent(t *testing.T) {
	c := newShardedTreeCache(64, 8)
	var wg sync.WaitGroup
	var computes atomic.Int32
	for k := uint64(0); k < 24; k++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			got, _ := c.getOrCompute(context.Background(), k, builderFunc(func(uint64) *tree {
				computes.Add(1)
				return fakeTree(int32(k))
			}))
			if treeTag(got) != int32(k) {
				t.Errorf("key %d returned tree tagged %d", k, treeTag(got))
			}
		}(k)
	}
	wg.Wait()
	if n := computes.Load(); n != 24 {
		t.Fatalf("computes = %d, want 24", n)
	}
}

// TestSingleflightWaiterHonorsContext checks a caller joining an in-flight
// build unblocks with ctx.Err() when its context is cancelled, instead of
// waiting out the build.
func TestSingleflightWaiterHonorsContext(t *testing.T) {
	c := newShardedTreeCache(16, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.getOrCompute(context.Background(), 5, builderFunc(func(uint64) *tree {
			close(started)
			<-release // a slow build holding the singleflight
			return fakeTree(5)
		}))
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := c.getOrCompute(ctx, 5, builderFunc(func(uint64) *tree {
		t.Error("waiter must join the in-flight build, not start its own")
		return nil
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned (%v, %v), want context.Canceled", got, err)
	}
	close(release)
	wg.Wait()
	// The abandoned build still completes and is cached for the next caller.
	got, err = c.getOrCompute(context.Background(), 5, builderFunc(func(uint64) *tree {
		t.Error("tree should be cached after the build completed")
		return nil
	}))
	if err != nil || treeTag(got) != 5 {
		t.Fatalf("retry after cancellation got (%v, %v)", got, err)
	}
}

// TestSingleflightPanicDoesNotPoisonKey checks a panicking build propagates
// to its caller but leaves the key computable: the in-flight entry is
// cleaned up so later callers retry instead of deadlocking.
func TestSingleflightPanicDoesNotPoisonKey(t *testing.T) {
	c := newShardedTreeCache(16, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder's panic was swallowed")
			}
		}()
		c.getOrCompute(context.Background(), 9, builderFunc(func(uint64) *tree { panic("dijkstra bug") }))
	}()
	done := make(chan *tree, 1)
	go func() {
		got, _ := c.getOrCompute(context.Background(), 9, builderFunc(func(uint64) *tree { return fakeTree(9) }))
		done <- got
	}()
	got := <-done
	if treeTag(got) != 9 {
		t.Fatalf("retry after panic returned tree tagged %d, want 9", treeTag(got))
	}
	if st := c.stats(); st.Builds != 1 || st.Len != 1 {
		t.Fatalf("stats after panic+retry = %+v, want one successful build cached", st)
	}
}

// TestEngineColdDestinationBuiltOnce checks the engine-level contract: a
// stampede of concurrent queries to one cold destination runs one
// Dijkstra.
func TestEngineColdDestinationBuiltOnce(t *testing.T) {
	w := buildWorld(t, 73)
	e := New(w.a, INanoOptions())
	dst := w.targets[0]
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e.PredictForward(w.vps[g%len(w.vps)], dst)
		}(g)
	}
	wg.Wait()
	if st := e.CacheStats(); st.Builds != 1 {
		t.Fatalf("cold destination built %d trees, want 1 (stats %+v)", st.Builds, st)
	}
}

// TestEngineCacheBoundedUnderChurn queries more destinations than the
// cache holds and checks residency never exceeds the configured bound.
func TestEngineCacheBoundedUnderChurn(t *testing.T) {
	w := buildWorld(t, 74)
	opts := INanoOptions()
	opts.TreeCacheSize = 8
	opts.TreeCacheShards = 4
	e := New(w.a, opts)
	for i, dst := range w.targets {
		e.PredictForward(w.vps[i%len(w.vps)], dst)
	}
	st := e.CacheStats()
	if st.Len > 8 {
		t.Fatalf("cache holds %d trees, bound is 8", st.Len)
	}
	if st.Builds == 0 {
		t.Fatal("no trees built")
	}
}

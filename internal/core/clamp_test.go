package core

import (
	"math"
	"testing"

	"inano/internal/netsim"
)

// pickFoundPair returns a prefix pair the engine predicts in both
// directions, so clamp tests exercise a real served answer.
func pickFoundPair(t *testing.T, w *world, e *Engine) (src, dst netsim.Prefix) {
	t.Helper()
	for i, s := range w.targets {
		for _, d := range w.targets[i+1:] {
			if s == d {
				continue
			}
			if info := e.Query(s, d); info.Found {
				return s, d
			}
		}
	}
	t.Fatal("no predictable prefix pair in world")
	return 0, 0
}

// TestNegativeCorrectionClampStacked is the regression test for stacked
// negative residual corrections: a swarm-shipped GlobalAdjustMS and a
// client-local AdjustMS that are both strongly negative must never drive
// a served latency to zero or below — the floor holds on one-way
// predictions, on the corrected forward leg of a query, and on the RTT.
func TestNegativeCorrectionClampStacked(t *testing.T) {
	w := buildWorld(t, 73)
	e := New(w.a, INanoOptions())
	src, dst := pickFoundPair(t, w, e)

	base := e.PredictForward(src, dst)
	// Corrections larger in sum than the whole uncorrected path latency.
	w.a.GlobalAdjustMS[dst] = -float32(base.LatencyMS)
	w.a.AdjustMS[dst] = -float32(base.LatencyMS)
	e = New(w.a, INanoOptions()) // corrections bake in at compile time

	p := e.PredictForward(src, dst)
	if !p.Found {
		t.Fatal("prediction lost after corrections")
	}
	if p.LatencyMS != minServedLatencyMS {
		t.Fatalf("one-way latency %v under stacked negative corrections, want the %v floor",
			p.LatencyMS, minServedLatencyMS)
	}

	info := e.Query(src, dst)
	if !info.Found {
		t.Fatal("query lost after corrections")
	}
	if info.Fwd.LatencyMS != minServedLatencyMS {
		t.Fatalf("query forward latency %v, want the %v floor", info.Fwd.LatencyMS, minServedLatencyMS)
	}
	if info.RTTMS <= 0 {
		t.Fatalf("RTT %v went non-positive under stacked negative corrections", info.RTTMS)
	}
	// The reverse leg carries no correction for dst, so the RTT is the
	// floored forward leg plus the genuine reverse latency.
	if want := minServedLatencyMS + info.Rev.LatencyMS; info.RTTMS != want {
		t.Fatalf("RTT %v, want %v", info.RTTMS, want)
	}
}

// TestNegativeCorrectionClampSingleTerm covers each correction term
// alone, at the boundary where the correction exactly cancels the path.
func TestNegativeCorrectionClampSingleTerm(t *testing.T) {
	w := buildWorld(t, 74)
	e := New(w.a, INanoOptions())
	src, dst := pickFoundPair(t, w, e)
	base := e.PredictForward(src, dst)

	for _, tc := range []struct {
		name          string
		global, local float32
	}{
		{"global only", -float32(base.LatencyMS), 0},
		{"local only", 0, -float32(base.LatencyMS)},
		{"exact cancel split", -float32(base.LatencyMS) / 2, -float32(base.LatencyMS) / 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			delete(w.a.GlobalAdjustMS, dst)
			delete(w.a.AdjustMS, dst)
			if tc.global != 0 {
				w.a.GlobalAdjustMS[dst] = tc.global
			}
			if tc.local != 0 {
				w.a.AdjustMS[dst] = tc.local
			}
			e := New(w.a, INanoOptions())
			p := e.PredictForward(src, dst)
			if !p.Found {
				t.Fatal("prediction lost")
			}
			if p.LatencyMS < minServedLatencyMS {
				t.Fatalf("latency %v below the %v floor", p.LatencyMS, minServedLatencyMS)
			}
		})
	}
}

// TestLatUnitsExtremes pins the cost-unit conversion against float
// extremes: huge and non-finite latencies must saturate at the packed
// metric's intra-AS mask instead of wrapping the uint64 conversion
// (float32-max * 100 overflows int64, which is implementation-defined in
// the conversion the old code used).
func TestLatUnitsExtremes(t *testing.T) {
	cases := []struct {
		name string
		ms   float32
		want uint64
	}{
		{"zero", 0, 0},
		{"negative", -5, 0},
		{"negative inf", float32(math.Inf(-1)), 0},
		{"one ms", 1, 100},
		{"sub-unit rounds", 0.004, 0},
		{"rounds up", 0.006, 1},
		{"max float32", math.MaxFloat32, costEMask},
		{"positive inf", float32(math.Inf(1)), costEMask},
		{"nan", float32(math.NaN()), costEMask},
		{"just below saturation", float32((costEMask - 256) / 100), uint64(float64(float32((costEMask-256)/100)))*100 + 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := latUnits(tc.ms)
			if tc.name == "just below saturation" {
				// float32 rounding makes the exact value fuzzy; the
				// property that matters is: in range, not saturated, no wrap.
				if got == 0 || got > costEMask {
					t.Fatalf("latUnits(%v) = %d, wrapped or saturated", tc.ms, got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("latUnits(%v) = %d, want %d", tc.ms, got, tc.want)
			}
		})
	}
	// Saturation must also survive packCost without bleeding into hops.
	if c := packCost(3, latUnits(math.MaxFloat32)); costHops(c) != 3 {
		t.Fatalf("saturated latency corrupted the hop component: hops=%d", costHops(c))
	}
}

// TestExtremeLatencyQueryDoesNotWrap runs a real query over a link with
// float32-max latency: the engine must still prefer the sane route and
// never report a negative or wrapped cost.
func TestExtremeLatencyQueryDoesNotWrap(t *testing.T) {
	w := buildWorld(t, 73)
	e := New(w.a, INanoOptions())
	src, dst := pickFoundPair(t, w, e)

	// Blow up one on-path link to float32 max.
	p := e.PredictForward(src, dst)
	if len(p.Clusters) < 2 {
		t.Skip("single-cluster path; nothing to corrupt")
	}
	li := w.a.LinkAt(p.Clusters[0], p.Clusters[1])
	if li < 0 {
		t.Fatal("path link missing from atlas")
	}
	w.a.Links[li].LatencyMS = math.MaxFloat32
	e = New(w.a, INanoOptions())

	q := e.PredictForward(src, dst)
	if q.Found && q.LatencyMS < 0 {
		t.Fatalf("latency went negative (%v): cost wrapped", q.LatencyMS)
	}
}

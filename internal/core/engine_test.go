package core

import (
	"testing"

	"inano/internal/atlas"
	"inano/internal/bgpsim"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// world bundles everything an engine test needs.
type world struct {
	top *netsim.Topology
	sim *bgpsim.Sim
	a   *atlas.Atlas
	// vps used to build the atlas; validation uses held-out prefixes.
	vps     []netsim.Prefix
	targets []netsim.Prefix
}

func buildWorld(t testing.TB, seed int64) *world {
	t.Helper()
	top := netsim.Generate(netsim.TestConfig(seed))
	sim := bgpsim.New(top, bgpsim.DefaultConfig())
	day := sim.Day(0)
	m := trace.NewMeter(day, trace.DefaultOptions())
	vps := trace.SelectVantagePoints(top, 14)
	targets := top.EdgePrefixes
	if len(targets) > 100 {
		targets = targets[:100]
	}
	c := trace.RunCampaign(m, vps, targets)
	a := atlas.Build(atlas.BuildInput{
		Top:        top,
		Day:        day,
		Meter:      m,
		VPTraces:   c.Traceroutes,
		BGPFeeds:   atlas.DefaultFeeds(top, 5),
		ClusterCfg: cluster.DefaultConfig(),
	})
	return &world{top: top, sim: sim, a: a, vps: vps, targets: targets}
}

func allOptionVariants() map[string]Options {
	return map[string]Options{
		"GRAPH":       GraphOptions(),
		"GRAPH+asym":  {Asymmetry: true},
		"+3tuple":     {Asymmetry: true, ThreeTuple: true},
		"+prefs":      {Asymmetry: true, ThreeTuple: true, Preferences: true},
		"iNano(full)": INanoOptions(),
	}
}

func TestEnginePredictsMostPairs(t *testing.T) {
	w := buildWorld(t, 61)
	for name, opts := range allOptionVariants() {
		e := New(w.a, opts)
		found, total := 0, 0
		for i, src := range w.vps {
			dst := w.targets[(i*13+7)%len(w.targets)]
			if src == dst {
				continue
			}
			total++
			if e.PredictForward(src, dst).Found {
				found++
			}
		}
		if total == 0 {
			t.Fatal("no pairs")
		}
		if frac := float64(found) / float64(total); frac < 0.6 {
			t.Errorf("%s: only %.0f%% of pairs predicted", name, frac*100)
		}
	}
}

func TestPredictionEndsAtDestinationCluster(t *testing.T) {
	w := buildWorld(t, 62)
	e := New(w.a, INanoOptions())
	for i, src := range w.vps {
		dst := w.targets[(i*7+3)%len(w.targets)]
		if src == dst {
			continue
		}
		p := e.PredictForward(src, dst)
		if !p.Found {
			continue
		}
		if got := p.Clusters[len(p.Clusters)-1]; got != w.a.PrefixCluster[dst] {
			t.Fatalf("path ends at cluster %d, want %d", got, w.a.PrefixCluster[dst])
		}
		if got := p.Clusters[0]; got != w.a.PrefixCluster[src] {
			t.Fatalf("path starts at cluster %d, want %d", got, w.a.PrefixCluster[src])
		}
	}
}

// Every consecutive cluster pair on a predicted path must be a link present
// in the atlas: predictions compose observed links only.
func TestPredictionUsesOnlyAtlasLinks(t *testing.T) {
	w := buildWorld(t, 63)
	for name, opts := range allOptionVariants() {
		e := New(w.a, opts)
		for i, src := range w.vps {
			dst := w.targets[(i*11+5)%len(w.targets)]
			if src == dst {
				continue
			}
			p := e.PredictForward(src, dst)
			if !p.Found {
				continue
			}
			for j := 0; j+1 < len(p.Clusters); j++ {
				if w.a.LinkAt(p.Clusters[j], p.Clusters[j+1]) < 0 {
					t.Fatalf("%s: hop %d->%d not an atlas link", name, p.Clusters[j], p.Clusters[j+1])
				}
			}
		}
	}
}

// GRAPH-mode predictions must be valley-free with respect to the inferred
// relationships (the construction guarantees it).
func TestGraphPredictionsValleyFree(t *testing.T) {
	w := buildWorld(t, 64)
	e := New(w.a, GraphOptions())
	checked := 0
	for i, src := range w.vps {
		dst := w.targets[(i*3+1)%len(w.targets)]
		if src == dst {
			continue
		}
		p := e.PredictForward(src, dst)
		if !p.Found || len(p.ASPath) < 3 {
			continue
		}
		descended := false
		for j := 0; j+1 < len(p.ASPath); j++ {
			r := w.a.RelOf(p.ASPath[j], p.ASPath[j+1])
			switch r {
			case netsim.RelProvider:
				if descended {
					t.Fatalf("valley in GRAPH prediction %v at %d", p.ASPath, j)
				}
			case netsim.RelPeer, netsim.RelNone:
				if descended {
					t.Fatalf("peer-after-descent in GRAPH prediction %v at %d", p.ASPath, j)
				}
				descended = true
			case netsim.RelCustomer:
				descended = true
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no multi-AS GRAPH predictions to check")
	}
}

// Full-iNano predictions must satisfy the 3-tuple export check they were
// built with.
func TestINanoPredictionsRespectTuples(t *testing.T) {
	w := buildWorld(t, 65)
	e := New(w.a, INanoOptions())
	checked := 0
	for i, src := range w.vps {
		dst := w.targets[(i*5+2)%len(w.targets)]
		if src == dst {
			continue
		}
		p := e.PredictForward(src, dst)
		if !p.Found {
			continue
		}
		as := p.ASPath
		for j := 0; j+2 < len(as); j++ {
			if int(w.a.ASDegree[as[j+1]]) <= 5 {
				continue
			}
			if as[j] == as[j+1] || as[j+1] == as[j+2] || as[j] == as[j+2] {
				continue
			}
			if !w.a.HasTuple(as[j], as[j+1], as[j+2]) {
				t.Fatalf("prediction %v violates 3-tuple check at %d", as, j)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no triple with enforceable middle AS in this world")
	}
}

func TestProviderCheckEnforced(t *testing.T) {
	w := buildWorld(t, 66)
	e := New(w.a, INanoOptions())
	for i, src := range w.vps {
		dst := w.targets[(i*9+4)%len(w.targets)]
		if src == dst {
			continue
		}
		p := e.PredictForward(src, dst)
		if !p.Found || len(p.ASPath) < 2 {
			continue
		}
		origin := w.a.PrefixAS[dst]
		provs := w.a.Providers[origin]
		if len(provs) == 0 {
			continue
		}
		// Find the AS entering the origin.
		for j := 0; j+1 < len(p.ASPath); j++ {
			if p.ASPath[j+1] == origin && p.ASPath[j] != origin {
				if !w.a.IsProvider(origin, p.ASPath[j]) {
					t.Fatalf("path %v enters origin %d via non-provider %d", p.ASPath, origin, p.ASPath[j])
				}
			}
		}
	}
}

func TestQueryComposesBothDirections(t *testing.T) {
	w := buildWorld(t, 67)
	e := New(w.a, INanoOptions())
	n := 0
	for i, src := range w.vps {
		dst := w.targets[(i*7+1)%len(w.targets)]
		if src == dst {
			continue
		}
		info := e.Query(src, dst)
		if !info.Found {
			continue
		}
		n++
		if info.RTTMS != info.Fwd.LatencyMS+info.Rev.LatencyMS {
			t.Fatalf("RTT %v != fwd %v + rev %v", info.RTTMS, info.Fwd.LatencyMS, info.Rev.LatencyMS)
		}
		if info.LossRate < 0 || info.LossRate > 1 {
			t.Fatalf("loss %v out of range", info.LossRate)
		}
		if info.LossRate+1e-12 < info.Fwd.LossRate || info.LossRate+1e-12 < info.Rev.LossRate {
			t.Fatalf("round-trip loss %v below one-way losses %v/%v", info.LossRate, info.Fwd.LossRate, info.Rev.LossRate)
		}
	}
	if n == 0 {
		t.Fatal("no successful queries")
	}
}

func TestQueryDeterministicAndCacheConsistent(t *testing.T) {
	w := buildWorld(t, 68)
	e1 := New(w.a, INanoOptions())
	e2 := New(w.a, INanoOptions())
	src, dst := w.vps[0], w.targets[3]
	a := e1.Query(src, dst)
	// e1 now has a cached tree; a second identical query must agree, as
	// must a fresh engine.
	b := e1.Query(src, dst)
	c := e2.Query(src, dst)
	if a.RTTMS != b.RTTMS || a.RTTMS != c.RTTMS || a.Found != c.Found {
		t.Fatalf("nondeterministic query: %v / %v / %v", a.RTTMS, b.RTTMS, c.RTTMS)
	}
}

func TestEngineConcurrentQueries(t *testing.T) {
	w := buildWorld(t, 69)
	e := New(w.a, INanoOptions())
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 20; i++ {
				src := w.vps[(g+i)%len(w.vps)]
				dst := w.targets[(g*13+i*7)%len(w.targets)]
				if src != dst {
					e.Query(src, dst)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestUnknownPrefixNotFound(t *testing.T) {
	w := buildWorld(t, 70)
	e := New(w.a, INanoOptions())
	bogus := netsim.Prefix(0xFFFFFF)
	if e.PredictForward(bogus, w.targets[0]).Found {
		t.Fatal("prediction for unknown source prefix")
	}
	if e.PredictForward(w.vps[0], bogus).Found {
		t.Fatal("prediction for unknown destination prefix")
	}
	if e.Query(bogus, bogus).Found {
		t.Fatal("query for unknown prefixes")
	}
}

func TestASPathAccuracyOrdering(t *testing.T) {
	// The headline claim of Fig. 5: each refinement helps, and full iNano
	// beats GRAPH decisively. At test-world scale, individual deltas are
	// noisy, so assert only the endpoints of the ordering.
	w := buildWorld(t, 71)
	day := w.sim.Day(0)
	score := func(opts Options) float64 {
		e := New(w.a, opts)
		match, total := 0, 0
		for i, src := range w.vps {
			for k := 0; k < 12; k++ {
				dst := w.targets[(i*17+k*3)%len(w.targets)]
				if src == dst {
					continue
				}
				truth, ok := day.ASPath(w.top.PrefixOrigin[src], dst)
				if !ok {
					continue
				}
				p := e.PredictForward(src, dst)
				if !p.Found {
					total++
					continue
				}
				total++
				if equalAS(truth, p.ASPath) {
					match++
				}
			}
		}
		if total == 0 {
			t.Fatal("no validation pairs")
		}
		return float64(match) / float64(total)
	}
	graph := score(GraphOptions())
	inano := score(INanoOptions())
	t.Logf("GRAPH exact-path accuracy %.2f, iNano %.2f", graph, inano)
	if inano <= graph {
		t.Errorf("iNano (%.2f) must beat GRAPH (%.2f) on AS path accuracy", inano, graph)
	}
	if inano < 0.35 {
		t.Errorf("iNano accuracy %.2f too low; paper achieves 0.70 at full scale", inano)
	}
}

func equalAS(a, b []netsim.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Along any prediction tree, following next toward the destination must
// never increase the packed cost, and the destination's cost is zero —
// the Dijkstra invariant that guarantees loop-free reconstruction.
func TestTreeCostMonotone(t *testing.T) {
	w := buildWorld(t, 72)
	for name, opts := range allOptionVariants() {
		e := New(w.a, opts)
		for k := 0; k < 5; k++ {
			dst := w.targets[k*7%len(w.targets)]
			dstCl, ok := w.a.PrefixCluster[dst]
			if !ok {
				continue
			}
			tr := e.run(dstCl, w.a.PrefixAS[dst])
			start := e.nodeID(dstCl, planeToDst, stateDown)
			if tr.cost[start] != 0 {
				t.Fatalf("%s: destination cost %d != 0", name, tr.cost[start])
			}
			for id := range tr.cost {
				if tr.cost[id] == infCost {
					continue
				}
				nxt := tr.next[id]
				if nxt < 0 {
					if int32(id) != start {
						t.Fatalf("%s: reached node %d has no next and is not the destination", name, id)
					}
					continue
				}
				if tr.cost[nxt] > tr.cost[id] {
					t.Fatalf("%s: cost increases toward destination: %d -> %d", name, tr.cost[id], tr.cost[nxt])
				}
			}
		}
	}
}

func TestCostPacking(t *testing.T) {
	c := packCost(3, 12345)
	if costHops(c) != 3 || c&costEMask != 12345 {
		t.Fatalf("pack/unpack broken: %x", c)
	}
	// Saturation instead of overflow into the hop field.
	c = packCost(1, costEMask+100)
	if costHops(c) != 1 || c&costEMask != costEMask {
		t.Fatalf("saturation broken: %x", c)
	}
	// Ordering: hops dominate exit cost.
	if packCost(2, 0) <= packCost(1, costEMask) {
		t.Fatal("hop ordering broken")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h costHeap
	h.push(heapItem{5, 1})
	h.push(heapItem{3, 9})
	h.push(heapItem{3, 2})
	h.push(heapItem{7, 0})
	want := []heapItem{{3, 2}, {3, 9}, {5, 1}, {7, 0}}
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
}

package core

import (
	"math"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Cost metric (§4.2.1-§4.2.2). Selection cost is the strictly ordered pair
// [accounted AS hops to the destination, intra-AS cost to exit the current
// AS], packed into one word so the heap compares a single integer:
//
//	packed = H<<44 | E       E in 0.01 ms units, saturated
//
// A third, uncompared component P counts consecutive late-exit crossings
// ("AS hops not yet accounted for"); a normal AS crossing folds P into H
// and resets E, per the paper's ⊕ operator.
const (
	costHShift = 44
	costEMask  = (1 << costHShift) - 1
	infCost    = math.MaxUint64
)

func packCost(h uint32, e uint64) uint64 {
	if e > costEMask {
		e = costEMask
	}
	return uint64(h)<<costHShift | e
}

func costHops(c uint64) uint32 { return uint32(c >> costHShift) }

// latUnits converts link latency to cost units (0.01 ms).
func latUnits(ms float32) uint64 {
	if ms <= 0 {
		return 0
	}
	return uint64(ms*100 + 0.5)
}

// tree is the result of one backtracking run from a destination: for every
// node, the best cost, the next node toward the destination, the pending
// late-exit count, and the next AS on the selected path (for 3-tuple checks
// and preference comparisons).
type tree struct {
	dstCluster cluster.ClusterID
	originAS   netsim.ASN
	cost       []uint64
	next       []int32 // toward the destination; -1 at the destination/unreached
	pend       []uint8
	nextAS     []netsim.ASN
}

// heapItem orders by cost, then node id for determinism.
type heapItem struct {
	cost uint64
	node int32
}

type costHeap []heapItem

func (h costHeap) less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].node < h[j].node
}

func (h *costHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h).less(p, i) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *costHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// run executes the backtracking Dijkstra from the destination cluster,
// producing the full prediction tree. originAS is the destination prefix's
// BGP origin, used by the provider check.
func (e *Engine) run(dst cluster.ClusterID, originAS netsim.ASN) *tree {
	n := e.numNodes()
	t := &tree{
		dstCluster: dst,
		originAS:   originAS,
		cost:       make([]uint64, n),
		next:       make([]int32, n),
		pend:       make([]uint8, n),
		nextAS:     make([]netsim.ASN, n),
	}
	for i := range t.cost {
		t.cost[i] = infCost
		t.next[i] = -1
	}
	settled := make([]bool, n)
	var h costHeap

	start := e.nodeID(dst, planeToDst, stateDown)
	t.cost[start] = 0
	h.push(heapItem{0, start})

	maxPhase := 1
	if !e.opts.ThreeTuple {
		maxPhase = 3 // GRAPH's customer -> peer -> provider frontier
	}
	for phase := 1; phase <= maxPhase; phase++ {
		if phase > 1 {
			// Later phases may only extend from already-settled nodes
			// (their costs are final: better-preferred classes win
			// regardless of length).
			for id := int32(0); id < int32(n); id++ {
				if settled[id] {
					e.relaxFrom(t, &h, settled, id, phase)
				}
			}
		}
		for len(h) > 0 {
			it := h.pop()
			if settled[it.node] || it.cost != t.cost[it.node] {
				continue // stale heap entry
			}
			settled[it.node] = true
			e.relaxFrom(t, &h, settled, it.node, phase)
		}
	}
	return t
}

// relaxFrom relaxes all backtracking edges out of node wid (that is, atlas
// edges arriving at wid's cluster, plus the synthetic cross edges), gated to
// the given preference phase.
func (e *Engine) relaxFrom(t *tree, h *costHeap, settled []bool, wid int32, phase int) {
	wc := e.nodeCluster(wid)
	wPlane := e.nodePlane(wid)
	wUD := e.nodeUD(wid)
	wCost := t.cost[wid]
	wPend := t.pend[wid]
	wNextAS := t.nextAS[wid]

	planeBit := uint8(1) // atlas.PlaneToDst
	if wPlane == planeFromSrc {
		planeBit = 2 // atlas.PlaneFromSrc
	}

	for i := range e.in[wc] {
		ed := &e.in[wc][i]
		if ed.planes&planeBit == 0 {
			continue
		}
		var vUD int
		edgePhase := 1
		if e.opts.ThreeTuple {
			vUD = stateUp
			// Relationship-agnostic: validity comes from the observed
			// export 3-tuples instead of the up/down construction.
			if !e.tupleOK(ed, wNextAS) {
				continue
			}
		} else {
			var ok bool
			vUD, edgePhase, ok = graphTransition(ed, wUD)
			if !ok {
				continue
			}
		}
		if edgePhase > phase {
			continue
		}
		if e.opts.Providers && !e.providerOK(ed, t.originAS) {
			continue
		}

		vid := e.nodeID(ed.from, wPlane, vUD)
		if settled[vid] {
			continue
		}
		newCost, newPend := relaxCost(wCost, wPend, ed)
		vNextAS := wNextAS
		if !ed.sameAS {
			vNextAS = ed.toAS
		}
		switch {
		case newCost < t.cost[vid]:
			t.cost[vid] = newCost
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
			h.push(heapItem{newCost, vid})
		case newCost == t.cost[vid] && e.opts.Preferences &&
			vNextAS != t.nextAS[vid] &&
			e.a.Prefers(ed.fromAS, vNextAS, t.nextAS[vid]):
			// Equal-cost candidate preferred by an inferred AS
			// preference tuple replaces the incumbent (§4.3.3).
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
		}
	}

	// Synthetic zero-cost cross edges, both phase 1:
	// up_c -> down_c (traffic turns from climbing to descending), and
	// FROM_SRC_c -> TO_DST_c (client-contributed links feed the core).
	relaxZero := func(vid int32) {
		if vid < 0 || settled[vid] {
			return
		}
		if wCost < t.cost[vid] {
			t.cost[vid] = wCost
			t.next[vid] = wid
			t.pend[vid] = wPend
			t.nextAS[vid] = wNextAS
			h.push(heapItem{wCost, vid})
		}
	}
	if !e.opts.ThreeTuple && wUD == stateDown {
		relaxZero(e.nodeID(wc, wPlane, stateUp))
	}
	if e.opts.Asymmetry && wPlane == planeToDst {
		relaxZero(e.nodeID(wc, planeFromSrc, wUD))
	}
}

// relaxCost applies the ⊕ operator of §4.2 for edge ed traversed (in
// traffic direction) from ed.from into the node whose cost is (wCost,
// wPend).
func relaxCost(wCost uint64, wPend uint8, ed *inEdge) (uint64, uint8) {
	h := costHops(wCost)
	eu := wCost & costEMask
	switch {
	case ed.sameAS:
		return packCost(h, eu+latUnits(ed.lat)), wPend
	case ed.late:
		// Late exit: treated as an intra-AS edge, one more hop pending.
		if wPend < math.MaxUint8 {
			wPend++
		}
		return packCost(h, eu+latUnits(ed.lat)), wPend
	default:
		// Normal AS crossing: fold pending hops, reset exit cost.
		return packCost(h+uint32(wPend)+1, 0), 0
	}
}

// graphTransition maps an edge's inferred relationship onto the up/down
// construction of §4.2.3 and the preference phase of §4.2.4. It returns the
// up/down state required at the edge's source node given the state at its
// target, the phase in which the edge becomes usable, and whether the
// transition is legal at all.
func graphTransition(ed *inEdge, wUD int) (vUD, phase int, ok bool) {
	switch {
	case ed.sameAS || ed.rel == netsim.RelSibling:
		return wUD, 1, true
	case ed.rel == netsim.RelProvider: // traffic climbs customer->provider
		if wUD != stateUp {
			return 0, 0, false
		}
		return stateUp, 3, true
	case ed.rel == netsim.RelCustomer: // traffic descends provider->customer
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateDown, 1, true
	default: // peer, or unknown treated as peer (conservative export)
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateUp, 2, true
	}
}

// tupleOK applies the 3-tuple export check of §4.3.2 to extending a path
// whose next AS after the edge's target is wNextAS.
func (e *Engine) tupleOK(ed *inEdge, wNextAS netsim.ASN) bool {
	if ed.sameAS || wNextAS == 0 {
		return true
	}
	if ed.toAS == wNextAS || ed.fromAS == wNextAS || ed.fromAS == ed.toAS {
		return true
	}
	if int(e.a.ASDegree[ed.toAS]) <= e.opts.DegreeThreshold {
		return true // edge ASes are too poorly observed to enforce
	}
	return e.a.HasTuple(ed.fromAS, ed.toAS, wNextAS)
}

// providerOK applies the §4.3.4 provider check: an edge entering the
// destination's origin AS must come from a recorded provider of that AS.
func (e *Engine) providerOK(ed *inEdge, originAS netsim.ASN) bool {
	if ed.sameAS || ed.toAS != originAS {
		return true
	}
	provs := e.a.Providers[ed.toAS]
	if len(provs) == 0 {
		return true // no provider data: cannot enforce
	}
	for _, p := range provs {
		if p == ed.fromAS {
			return true
		}
	}
	return false
}

package core

import (
	"math"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Cost metric (§4.2.1-§4.2.2). Selection cost is the strictly ordered pair
// [accounted AS hops to the destination, intra-AS cost to exit the current
// AS], packed into one word so the heap compares a single integer:
//
//	packed = H<<44 | E       E in 0.01 ms units, saturated
//
// A third, uncompared component P counts consecutive late-exit crossings
// ("AS hops not yet accounted for"); a normal AS crossing folds P into H
// and resets E, per the paper's ⊕ operator.
const (
	costHShift = 44
	costEMask  = (1 << costHShift) - 1
	infCost    = math.MaxUint64
)

func packCost(h uint32, e uint64) uint64 {
	if e > costEMask {
		e = costEMask
	}
	return uint64(h)<<costHShift | e
}

func costHops(c uint64) uint32 { return uint32(c >> costHShift) }

// latUnits converts link latency to cost units (0.01 ms), saturating at
// the packed-cost E mask. The comparison is done in float64 *before* the
// integer conversion: a pathological latency near float32 max (or a NaN
// smuggled past the decoder) would otherwise hit the undefined
// float-to-uint64 conversion and wrap, corrupting the packed cost's H
// bits. !(v < limit) is deliberate — it catches NaN too.
func latUnits(ms float32) uint64 {
	if ms <= 0 {
		return 0
	}
	v := float64(ms)*100 + 0.5
	if !(v < float64(costEMask)) {
		return costEMask
	}
	return uint64(v)
}

// tree is the result of one backtracking run from a destination: for every
// node, the best cost, the next node toward the destination, the pending
// late-exit count, the next AS on the selected path (for 3-tuple checks
// and preference comparisons), and the flat-atlas edge index of the link
// cluster(node)->cluster(next) the path takes (-1 for synthetic cross
// edges, which stay inside one cluster). The edge index lets the path walk
// read latency and loss straight from the CSR arrays with no link lookup.
type tree struct {
	dstCluster cluster.ClusterID
	originAS   netsim.ASN
	cost       []uint64
	next       []int32 // toward the destination; -1 at the destination/unreached
	pend       []uint8
	nextAS     []netsim.ASN
	edge       []int32
}

// heapItem orders by cost, then node id for determinism.
type heapItem struct {
	cost uint64
	node int32
}

type costHeap []heapItem

func (h costHeap) less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].node < h[j].node
}

func (h *costHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h).less(p, i) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *costHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// runScratch is the per-run working state a Dijkstra build needs beyond
// the tree it produces: the settled bitmap and the heap's backing array.
// Pooled on the engine so repeated cold-destination builds stop churning
// the allocator (the tree arrays themselves are retained by the cache and
// cannot be recycled — see Engine.scratch).
type runScratch struct {
	settled []bool
	heap    costHeap
}

func newRunScratch(n int) *runScratch {
	return &runScratch{settled: make([]bool, n), heap: make(costHeap, 0, 256)}
}

// run executes the backtracking Dijkstra from the destination cluster,
// producing the full prediction tree. originAS is the destination prefix's
// BGP origin, used by the provider check.
func (e *Engine) run(dst cluster.ClusterID, originAS netsim.ASN) *tree {
	n := e.numNodes()
	t := &tree{
		dstCluster: dst,
		originAS:   originAS,
		cost:       make([]uint64, n),
		next:       make([]int32, n),
		pend:       make([]uint8, n),
		nextAS:     make([]netsim.ASN, n),
		edge:       make([]int32, n),
	}
	for i := range t.cost {
		t.cost[i] = infCost
		t.next[i] = -1
		t.edge[i] = -1
	}
	sc := e.scratch.Get().(*runScratch)
	if len(sc.settled) < n {
		sc.settled = make([]bool, n)
	}
	settled := sc.settled[:n]
	for i := range settled {
		settled[i] = false
	}
	h := &sc.heap
	*h = (*h)[:0]

	start := e.nodeID(dst, planeToDst, stateDown)
	t.cost[start] = 0
	h.push(heapItem{0, start})

	maxPhase := 1
	if !e.opts.ThreeTuple {
		maxPhase = 3 // GRAPH's customer -> peer -> provider frontier
	}
	for phase := 1; phase <= maxPhase; phase++ {
		if phase > 1 {
			// Later phases may only extend from already-settled nodes
			// (their costs are final: better-preferred classes win
			// regardless of length).
			for id := int32(0); id < int32(n); id++ {
				if settled[id] {
					e.relaxFrom(t, h, settled, id, phase)
				}
			}
		}
		for len(*h) > 0 {
			it := h.pop()
			if settled[it.node] || it.cost != t.cost[it.node] {
				continue // stale heap entry
			}
			settled[it.node] = true
			e.relaxFrom(t, h, settled, it.node, phase)
		}
	}
	e.scratch.Put(sc)
	return t
}

// relaxFrom relaxes all backtracking edges out of node wid (that is, atlas
// edges arriving at wid's cluster, plus the synthetic cross edges), gated to
// the given preference phase. The edge scan walks the flat atlas's CSR
// bucket for wid's cluster — parallel arrays indexed by ei, no map or
// pointer chasing anywhere on the path.
func (e *Engine) relaxFrom(t *tree, h *costHeap, settled []bool, wid int32, phase int) {
	wc := e.nodeCluster(wid)
	wPlane := e.nodePlane(wid)
	wUD := e.nodeUD(wid)
	wCost := t.cost[wid]
	wPend := t.pend[wid]
	wNextAS := t.nextAS[wid]
	f := e.f

	planeBit := uint8(1) // atlas.PlaneToDst
	if wPlane == planeFromSrc {
		planeBit = 2 // atlas.PlaneFromSrc
	}

	for ei := f.EdgeStart[wc]; ei < f.EdgeStart[wc+1]; ei++ {
		if f.EdgePlanes[ei]&planeBit == 0 {
			continue
		}
		flags := f.EdgeFlags[ei]
		sameAS := flags&atlas.EdgeSameAS != 0
		var vUD int
		edgePhase := 1
		if e.opts.ThreeTuple {
			vUD = stateUp
			// Relationship-agnostic: validity comes from the observed
			// export 3-tuples instead of the up/down construction.
			if !e.tupleOK(f, ei, sameAS, wNextAS) {
				continue
			}
		} else {
			var ok bool
			vUD, edgePhase, ok = graphTransition(sameAS, f.EdgeRel[ei], wUD)
			if !ok {
				continue
			}
		}
		if edgePhase > phase {
			continue
		}
		toAS := f.EdgeToAS[ei]
		if e.opts.Providers && !sameAS && toAS == t.originAS &&
			!f.ProviderCheck(toAS, f.EdgeFromAS[ei]) {
			continue // §4.3.4: must enter the origin AS via a provider
		}

		vid := e.nodeID(f.EdgeFrom[ei], wPlane, vUD)
		if settled[vid] {
			continue
		}
		newCost, newPend := relaxCost(wCost, wPend, sameAS, flags&atlas.EdgeLate != 0, f.EdgeLat[ei])
		vNextAS := wNextAS
		if !sameAS {
			vNextAS = toAS
		}
		switch {
		case newCost < t.cost[vid]:
			t.cost[vid] = newCost
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
			t.edge[vid] = int32(ei)
			h.push(heapItem{newCost, vid})
		case newCost == t.cost[vid] && e.opts.Preferences &&
			vNextAS != t.nextAS[vid] &&
			f.Prefers(f.EdgeFromAS[ei], vNextAS, t.nextAS[vid]):
			// Equal-cost candidate preferred by an inferred AS
			// preference tuple replaces the incumbent (§4.3.3).
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
			t.edge[vid] = int32(ei)
		}
	}

	// Synthetic zero-cost cross edges, both phase 1:
	// up_c -> down_c (traffic turns from climbing to descending), and
	// FROM_SRC_c -> TO_DST_c (client-contributed links feed the core).
	if !e.opts.ThreeTuple && wUD == stateDown {
		e.relaxZero(t, h, settled, wid, e.nodeID(wc, wPlane, stateUp), wCost, wPend, wNextAS)
	}
	if e.opts.Asymmetry && wPlane == planeToDst {
		e.relaxZero(t, h, settled, wid, e.nodeID(wc, planeFromSrc, wUD), wCost, wPend, wNextAS)
	}
}

// relaxZero relaxes a synthetic zero-cost cross edge wid -> vid (same
// cluster, so no atlas edge index is recorded).
func (e *Engine) relaxZero(t *tree, h *costHeap, settled []bool, wid, vid int32, wCost uint64, wPend uint8, wNextAS netsim.ASN) {
	if vid < 0 || settled[vid] {
		return
	}
	if wCost < t.cost[vid] {
		t.cost[vid] = wCost
		t.next[vid] = wid
		t.pend[vid] = wPend
		t.nextAS[vid] = wNextAS
		t.edge[vid] = -1
		h.push(heapItem{wCost, vid})
	}
}

// relaxCost applies the ⊕ operator of §4.2 for an edge traversed (in
// traffic direction) into the node whose cost is (wCost, wPend).
func relaxCost(wCost uint64, wPend uint8, sameAS, late bool, lat float32) (uint64, uint8) {
	h := costHops(wCost)
	eu := wCost & costEMask
	switch {
	case sameAS:
		return packCost(h, eu+latUnits(lat)), wPend
	case late:
		// Late exit: treated as an intra-AS edge, one more hop pending.
		if wPend < math.MaxUint8 {
			wPend++
		}
		return packCost(h, eu+latUnits(lat)), wPend
	default:
		// Normal AS crossing: fold pending hops, reset exit cost.
		return packCost(h+uint32(wPend)+1, 0), 0
	}
}

// graphTransition maps an edge's inferred relationship onto the up/down
// construction of §4.2.3 and the preference phase of §4.2.4. It returns the
// up/down state required at the edge's source node given the state at its
// target, the phase in which the edge becomes usable, and whether the
// transition is legal at all.
func graphTransition(sameAS bool, rel netsim.Rel, wUD int) (vUD, phase int, ok bool) {
	switch {
	case sameAS || rel == netsim.RelSibling:
		return wUD, 1, true
	case rel == netsim.RelProvider: // traffic climbs customer->provider
		if wUD != stateUp {
			return 0, 0, false
		}
		return stateUp, 3, true
	case rel == netsim.RelCustomer: // traffic descends provider->customer
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateDown, 1, true
	default: // peer, or unknown treated as peer (conservative export)
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateUp, 2, true
	}
}

// tupleOK applies the 3-tuple export check of §4.3.2 to extending a path
// whose next AS after edge ei's target is wNextAS.
func (e *Engine) tupleOK(f *atlas.Flat, ei uint32, sameAS bool, wNextAS netsim.ASN) bool {
	if sameAS || wNextAS == 0 {
		return true
	}
	fromAS, toAS := f.EdgeFromAS[ei], f.EdgeToAS[ei]
	if toAS == wNextAS || fromAS == wNextAS || fromAS == toAS {
		return true
	}
	if f.EdgeToDeg[ei] <= e.degThreshold {
		return true // edge ASes are too poorly observed to enforce
	}
	return f.HasTuple(fromAS, toAS, wNextAS)
}

package core

import (
	"context"
	"time"

	"inano/internal/netsim"
)

// StreamBatch is a reusable batch runner for streamed serving: one per
// NDJSON stream, with Run called once per flush window. It answers the
// same contract as QueryBatchPartial — per-pair deadlines, partial
// results — but every per-window allocation (the doubled leg slice, the
// destination-grouping map, the group list, the result slices) is hoisted
// into buffers that survive across windows, so a long-lived stream's
// steady state performs zero heap allocations per window once its trees
// are warm and its buffers have grown to the window size (CI-gated by
// TestStreamBatchZeroAlloc).
//
// A StreamBatch is bound to one Engine snapshot and is not safe for
// concurrent use; the slices returned by Run are owned by the StreamBatch
// and valid only until the next Run call.
type StreamBatch struct {
	e *Engine

	// noASPaths skips the AS-level path derivation on every leg. The
	// server's batch endpoint never serializes AS paths, so the work (and
	// the per-leg ASPath buffer growth) is pure waste there.
	noASPaths bool

	// Per-window state, reused across Run calls.
	reqs    []PairReq          // current window (caller-owned, aliased during Run)
	dbl     [][2]netsim.Prefix // doubled legs: even = forward, odd = reverse
	legExp  []bool             // per-leg deadline expiry
	out     []PathInfo         // composed answers, aligned with reqs
	expired []bool             // per-pair expiry, aligned with reqs
	byKey   map[uint64]int32   // treeKey -> index into groups
	groups  []batchGroup       // backing store for the window's groups
	order   []*batchGroup      // stable pointers into groups, built post-grouping
	ctx     context.Context    // current Run's context, for runGroup
}

// NewStreamBatch returns a reusable windowed batch runner bound to this
// engine. noASPaths skips AS-path derivation on every answer (Fwd.ASPath
// and Rev.ASPath stay empty) — the shape the NDJSON batch endpoint wants,
// since it never serializes them.
func (e *Engine) NewStreamBatch(noASPaths bool) *StreamBatch {
	return &StreamBatch{
		e:         e,
		noASPaths: noASPaths,
		byKey:     make(map[uint64]int32, 16),
	}
}

// Run answers one window of pair requests. Results align with reqs:
// out[i] is the composed bidirectional answer (zero-valued when not
// found) and expired[i] reports that pair i's deadline passed before its
// answer was ready, exactly as QueryBatchPartial. Both returned slices
// are reused by the next Run call. Cancellation of ctx aborts the whole
// window with ctx.Err().
//
//inano:zeroalloc
func (b *StreamBatch) Run(ctx context.Context, reqs []PairReq) ([]PathInfo, []bool, error) {
	n := len(reqs)
	b.reqs = reqs
	if cap(b.dbl) < 2*n {
		//inano:alloc-ok amortized growth, capacity-guarded
		b.dbl = make([][2]netsim.Prefix, 2*n)
	} else {
		b.dbl = b.dbl[:2*n]
	}
	for i, rq := range reqs {
		b.dbl[2*i] = [2]netsim.Prefix{rq.Src, rq.Dst}
		b.dbl[2*i+1] = [2]netsim.Prefix{rq.Dst, rq.Src}
	}
	if cap(b.legExp) < 2*n {
		//inano:alloc-ok amortized growth, capacity-guarded
		b.legExp = make([]bool, 2*n)
	} else {
		b.legExp = b.legExp[:2*n]
		clear(b.legExp)
	}
	if cap(b.expired) < n {
		//inano:alloc-ok amortized growth, capacity-guarded
		b.expired = make([]bool, n)
	} else {
		b.expired = b.expired[:n]
		clear(b.expired)
	}
	// Grow out by copying so reused entries keep their Clusters/ASPath
	// slice capacities — that reuse is the whole point of the runner.
	if cap(b.out) < n {
		//inano:alloc-ok amortized growth, entries keep slice capacity
		grown := make([]PathInfo, n)
		copy(grown, b.out)
		b.out = grown
	} else {
		b.out = b.out[:n]
	}
	for i := range b.out {
		b.out[i].resetKeepCap()
	}
	b.group()
	b.ctx = ctx
	err := b.e.runGroups(ctx, b.order, b)
	b.ctx = nil
	b.reqs = nil
	if err != nil {
		return nil, nil, err
	}
	for i := range b.out {
		if b.legExp[2*i] || b.legExp[2*i+1] {
			b.expired[i] = true
			b.out[i].resetKeepCap()
			continue
		}
		b.e.finishQuery(&b.out[i], reqs[i].Dst)
	}
	return b.out, b.expired, nil
}

// group buckets the doubled legs by destination tree, reusing the map,
// the group backing store, and each group's idxs capacity from previous
// windows. order is rebuilt after grouping completes because appends may
// move the groups backing array.
func (b *StreamBatch) group() {
	clear(b.byKey)
	b.groups = b.groups[:0]
	for i, pr := range b.dbl {
		dstCl, ok := b.e.f.ClusterOf(pr[1])
		if !ok {
			continue
		}
		origin := b.e.f.OriginAS(pr[1])
		k := treeKey(dstCl, origin)
		gi, seen := b.byKey[k]
		if !seen {
			gi = int32(len(b.groups))
			if cap(b.groups) > len(b.groups) {
				b.groups = b.groups[:gi+1]
				g := &b.groups[gi]
				g.dstCl, g.origin = dstCl, origin
				g.idxs = g.idxs[:0]
			} else {
				b.groups = append(b.groups, batchGroup{dstCl: dstCl, origin: origin})
			}
			b.byKey[k] = gi
		}
		g := &b.groups[gi]
		g.idxs = append(g.idxs, i)
	}
	b.order = b.order[:0]
	for i := range b.groups {
		b.order = append(b.order, &b.groups[i])
	}
}

// runGroup answers one destination group's legs in place — the
// groupRunner hook runGroups invokes, possibly from worker goroutines
// (groups are disjoint, and even/odd legs of one pair write disjoint
// PathInfo fields, so concurrent groups never race). Deadline semantics
// mirror predictPartial: the tree build runs under the latest member
// deadline, and members whose own deadline has passed when the tree is
// ready expire individually.
func (b *StreamBatch) runGroup(g *batchGroup) {
	e := b.e
	var groupDl time.Time
	bounded := true
	for _, i := range g.idxs {
		dl := b.reqs[i/2].Deadline
		if dl.IsZero() {
			bounded = false
			break
		}
		if dl.After(groupDl) {
			groupDl = dl
		}
	}
	ctx := b.ctx
	if bounded {
		if !groupDl.After(time.Now()) {
			for _, i := range g.idxs {
				b.legExp[i] = true
			}
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, groupDl)
		defer cancel()
	}
	t, err := e.treeFor(ctx, g.dstCl, g.origin)
	if err != nil {
		for _, i := range g.idxs {
			b.legExp[i] = true
		}
		return
	}
	now := time.Now()
	for _, i := range g.idxs {
		if dl := b.reqs[i/2].Deadline; !dl.IsZero() && now.After(dl) {
			b.legExp[i] = true
			continue
		}
		src, dst := b.dbl[i][0], b.dbl[i][1]
		srcCl, ok := e.f.ClusterOf(src)
		if !ok {
			continue
		}
		p := b.legAt(i)
		e.pathFromInto(t, srcCl, p)
		if !p.Found {
			continue
		}
		p.DstCluster = g.dstCl
		if !b.noASPaths {
			p.ASPath = e.asPathInto(p.ASPath, p.Clusters, e.f.OriginAS(src), e.f.OriginAS(dst))
		}
	}
}

// legAt maps a doubled-leg index to its in-place Prediction: even legs
// are the pair's forward leg, odd its reverse.
func (b *StreamBatch) legAt(i int) *Prediction {
	if i%2 == 0 {
		return &b.out[i/2].Fwd
	}
	return &b.out[i/2].Rev
}

// resetKeepCap clears info for reuse, keeping the capacity of both legs'
// path slices.
func (info *PathInfo) resetKeepCap() {
	info.Found = false
	info.RTTMS = 0
	info.LossRate = 0
	info.Fwd.reset()
	info.Rev.reset()
}

package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestQueryBatchPartialMatchesQueryBatch: without deadlines, the
// partial-batch path is exactly QueryBatch — same results, nothing
// expired — under every algorithm variant.
func TestQueryBatchPartialMatchesQueryBatch(t *testing.T) {
	w := buildWorld(t, 84)
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 31))
			e := New(w.a, opts)
			pairs := randomPairs(rng, w, 60)
			reqs := make([]PairReq, len(pairs))
			for i, pr := range pairs {
				reqs[i] = PairReq{Src: pr[0], Dst: pr[1]}
			}
			got, expired, err := e.QueryBatchPartial(context.Background(), reqs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.QueryBatch(context.Background(), pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range reqs {
				if expired[i] {
					t.Fatalf("pair %d expired with no deadline", i)
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("pair %d: partial %+v != batch %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestQueryBatchPartialExpiredPairs: pairs whose deadline already passed
// come back expired with a zero answer, while the rest of the batch —
// including pairs sharing their destination — is answered normally.
func TestQueryBatchPartialExpiredPairs(t *testing.T) {
	w := buildWorld(t, 85)
	e := New(w.a, INanoOptions())
	past := time.Now().Add(-time.Second)
	future := time.Now().Add(time.Minute)
	reqs := []PairReq{
		{Src: w.vps[0], Dst: w.targets[1], Deadline: past},
		{Src: w.vps[1], Dst: w.targets[1], Deadline: future}, // same destination, patient
		{Src: w.vps[2], Dst: w.targets[2]},                   // no deadline
		{Src: w.vps[3], Dst: w.targets[3], Deadline: past},
	}
	got, expired, err := e.QueryBatchPartial(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !expired[0] || !expired[3] {
		t.Fatalf("past-deadline pairs not expired: %v", expired)
	}
	if expired[1] || expired[2] {
		t.Fatalf("patient pairs expired: %v", expired)
	}
	if got[0].Found || got[3].Found {
		t.Fatal("expired pairs carry answers")
	}
	for i := 1; i <= 2; i++ {
		want := e.Query(reqs[i].Src, reqs[i].Dst)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("pair %d: %+v != single %+v", i, got[i], want)
		}
	}
}

// TestQueryBatchPartialCancelAborts: cancelling the batch context still
// aborts the whole call with ctx.Err(), per-pair deadlines or not.
func TestQueryBatchPartialCancelAborts(t *testing.T) {
	w := buildWorld(t, 86)
	e := New(w.a, INanoOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []PairReq{{Src: w.vps[0], Dst: w.targets[1], Deadline: time.Now().Add(time.Minute)}}
	if _, _, err := e.QueryBatchPartial(ctx, reqs); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryBatchPartialSharedGroupDeadline: a group's tree build is
// bounded by its *latest* member deadline, so one hopeless pair cannot
// expire a patient pair of the same destination; after the build, each
// member is checked against its own deadline.
func TestQueryBatchPartialSharedGroupDeadline(t *testing.T) {
	w := buildWorld(t, 87)
	e := New(w.a, INanoOptions())
	reqs := []PairReq{
		{Src: w.vps[0], Dst: w.targets[5], Deadline: time.Now().Add(-time.Second)},
		{Src: w.vps[1], Dst: w.targets[5], Deadline: time.Now().Add(time.Minute)},
	}
	got, expired, err := e.QueryBatchPartial(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !expired[0] {
		t.Fatal("hopeless pair not expired")
	}
	if expired[1] {
		t.Fatal("patient pair starved by its group-mate's deadline")
	}
	want := e.Query(reqs[1].Src, reqs[1].Dst)
	if !reflect.DeepEqual(got[1], want) {
		t.Fatalf("patient pair answer differs: %+v != %+v", got[1], want)
	}
}

package core

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"time"

	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Batch prediction. The backtracking Dijkstra computes one tree per
// destination that answers queries from *every* source, so a batch is
// grouped by destination tree and fanned across a bounded worker pool:
// each distinct destination costs one tree (built or cached), and all
// sources sharing it are answered by cheap path extraction. This is the
// natural shape of CDN replica selection ("rank these N replicas for me")
// and VoIP relay ranking ("score both legs through these N relays").

// batchGroup collects the batch entries that share one prediction tree.
type batchGroup struct {
	dstCl  cluster.ClusterID
	origin netsim.ASN
	idxs   []int
}

// predictInto fills out[i] for every index in g using the group's tree. On
// cancellation it leaves the group's entries zero; the enclosing batch call
// reports ctx.Err() for the whole batch.
func (e *Engine) predictInto(ctx context.Context, g *batchGroup, pairs [][2]netsim.Prefix, out []Prediction) {
	t, err := e.treeFor(ctx, g.dstCl, g.origin)
	if err != nil {
		return
	}
	for _, i := range g.idxs {
		src, dst := pairs[i][0], pairs[i][1]
		srcCl, ok := e.f.ClusterOf(src)
		if !ok {
			continue
		}
		p := e.pathFrom(t, srcCl)
		if !p.Found {
			continue
		}
		p.DstCluster = g.dstCl
		p.ASPath = e.asPath(p.Clusters, e.f.OriginAS(src), e.f.OriginAS(dst))
		out[i] = p
	}
}

// groupByDestination buckets pair indices by destination tree key. Pairs
// whose destination prefix is unknown stay ungrouped and keep the zero
// (not-found) prediction.
func (e *Engine) groupByDestination(pairs [][2]netsim.Prefix) []*batchGroup {
	byKey := make(map[uint64]*batchGroup)
	order := make([]*batchGroup, 0, 8)
	for i, pr := range pairs {
		dstCl, ok := e.f.ClusterOf(pr[1])
		if !ok {
			continue
		}
		origin := e.f.OriginAS(pr[1])
		k := treeKey(dstCl, origin)
		g := byKey[k]
		if g == nil {
			g = &batchGroup{dstCl: dstCl, origin: origin}
			byKey[k] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
	}
	return order
}

// predictBatchRaw fills residual-uncorrected predictions for every pair —
// the shared guts of PredictBatch and QueryBatch. Callers apply the
// per-destination residual correction themselves (once per one-way
// prediction, or once per bidirectional query on its forward leg).
func (e *Engine) predictBatchRaw(ctx context.Context, pairs [][2]netsim.Prefix) ([]Prediction, error) {
	out := make([]Prediction, len(pairs))
	groups := e.groupByDestination(pairs)
	if err := e.runGroups(ctx, groups, groupFunc(func(g *batchGroup) {
		e.predictInto(ctx, g, pairs, out)
	})); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatch predicts the one-way path for every (src, dst) pair,
// returning results aligned with the input order; each result equals the
// corresponding PredictForward(src, dst). Distinct destinations fan across
// up to GOMAXPROCS workers. On cancellation it returns ctx.Err() and a nil
// slice; completed trees stay cached, so a retry resumes cheaply.
func (e *Engine) PredictBatch(ctx context.Context, pairs [][2]netsim.Prefix) ([]Prediction, error) {
	out, err := e.predictBatchRaw(ctx, pairs)
	if err != nil {
		return nil, err
	}
	for i := range out {
		e.adjustLatency(&out[i], pairs[i][1])
	}
	return out, nil
}

// QueryBatch answers a bidirectional query for every (src, dst) pair,
// returning results aligned with the input order; each result equals the
// corresponding Query(src, dst). Forward legs group by destination and
// reverse legs group by source, so e.g. one source querying N destinations
// costs N+1 trees rather than 2N Dijkstra runs.
func (e *Engine) QueryBatch(ctx context.Context, pairs [][2]netsim.Prefix) ([]PathInfo, error) {
	// Double the batch: even entries are forward legs, odd are reverse.
	dbl := make([][2]netsim.Prefix, 2*len(pairs))
	for i, pr := range pairs {
		dbl[2*i] = pr
		dbl[2*i+1] = [2]netsim.Prefix{pr[1], pr[0]}
	}
	preds, err := e.predictBatchRaw(ctx, dbl)
	if err != nil {
		return nil, err
	}
	out := make([]PathInfo, len(pairs))
	for i := range out {
		out[i] = e.composeQuery(preds[2*i], preds[2*i+1], pairs[i][1])
	}
	return out, nil
}

// PairReq is one entry of a per-pair-deadline batch: a (src, dst) prefix
// pair plus an optional absolute deadline (zero = none).
type PairReq struct {
	// Src and Dst are the query pair's endpoint /24 prefixes.
	Src, Dst netsim.Prefix
	// Deadline bounds this pair only. A pair whose deadline passes before
	// its prediction trees are available is reported expired; the rest of
	// the batch is unaffected.
	Deadline time.Time
}

// QueryBatchPartial is QueryBatch with per-pair deadlines (the "partial
// results instead of aborting the window" contract): results align with
// reqs, and expired[i] reports that pair i's deadline passed before its
// answer was ready — its PathInfo is the zero value. Pairs sharing a
// prediction tree are grouped as in QueryBatch; a group's tree build is
// bounded by the latest deadline among its members, so one hopeless
// deadline cannot starve patient pairs of the same destination, and an
// expired build leaves the other groups' answers intact. Cancellation of
// ctx itself still aborts the whole batch with ctx.Err().
func (e *Engine) QueryBatchPartial(ctx context.Context, reqs []PairReq) ([]PathInfo, []bool, error) {
	// Double the batch: even entries are forward legs, odd are reverse,
	// exactly like QueryBatch.
	dbl := make([][2]netsim.Prefix, 2*len(reqs))
	for i, rq := range reqs {
		dbl[2*i] = [2]netsim.Prefix{rq.Src, rq.Dst}
		dbl[2*i+1] = [2]netsim.Prefix{rq.Dst, rq.Src}
	}
	preds := make([]Prediction, len(dbl))
	legExpired := make([]bool, len(dbl))
	groups := e.groupByDestination(dbl)
	if err := e.runGroups(ctx, groups, groupFunc(func(g *batchGroup) {
		e.predictPartial(ctx, g, reqs, dbl, preds, legExpired)
	})); err != nil {
		return nil, nil, err
	}
	out := make([]PathInfo, len(reqs))
	expired := make([]bool, len(reqs))
	for i := range out {
		if legExpired[2*i] || legExpired[2*i+1] {
			expired[i] = true
			continue
		}
		out[i] = e.composeQuery(preds[2*i], preds[2*i+1], reqs[i].Dst)
	}
	return out, expired, nil
}

// predictPartial fills one group's predictions under per-pair deadlines.
// The group's tree build runs under the latest member deadline; members
// whose own deadline has passed by the time the tree is ready are marked
// expired instead of answered.
func (e *Engine) predictPartial(ctx context.Context, g *batchGroup, reqs []PairReq, pairs [][2]netsim.Prefix, out []Prediction, expired []bool) {
	// The group deadline is the latest member deadline — any member with
	// no deadline lifts the bound entirely.
	var groupDl time.Time
	bounded := true
	for _, i := range g.idxs {
		dl := reqs[i/2].Deadline
		if dl.IsZero() {
			bounded = false
			break
		}
		if dl.After(groupDl) {
			groupDl = dl
		}
	}
	gctx := ctx
	if bounded {
		if !groupDl.After(time.Now()) {
			for _, i := range g.idxs {
				expired[i] = true
			}
			return
		}
		var cancel context.CancelFunc
		gctx, cancel = context.WithDeadline(ctx, groupDl)
		defer cancel()
	}
	t, err := e.treeFor(gctx, g.dstCl, g.origin)
	if err != nil {
		// Tree build hit the group deadline (or the batch ctx, which the
		// enclosing runGroups reports): every member expires.
		for _, i := range g.idxs {
			expired[i] = true
		}
		return
	}
	now := time.Now()
	for _, i := range g.idxs {
		if dl := reqs[i/2].Deadline; !dl.IsZero() && now.After(dl) {
			expired[i] = true
			continue
		}
		src, dst := pairs[i][0], pairs[i][1]
		srcCl, ok := e.f.ClusterOf(src)
		if !ok {
			continue
		}
		p := e.pathFrom(t, srcCl)
		if !p.Found {
			continue
		}
		p.DstCluster = g.dstCl
		p.ASPath = e.asPath(p.Clusters, e.f.OriginAS(src), e.f.OriginAS(dst))
		out[i] = p
	}
}

// composeQuery combines residual-uncorrected one-way predictions into the
// bidirectional answer, exactly as Query does: the query's destination
// correction is applied once, to the forward leg, before composing. The
// reverse leg stays uncorrected — its "destination" is the querying host,
// whose own AdjustMS entry (learned from some other pair's round trips)
// must not be double-counted into this query's RTT.
func (e *Engine) composeQuery(fwd, rev Prediction, dst netsim.Prefix) PathInfo {
	info := PathInfo{Fwd: fwd, Rev: rev}
	e.finishQuery(&info, dst)
	return info
}

// DefaultStreamWindow is the number of pairs QueryStream buffers per fan-out
// window when the caller passes window <= 0. 1024 pairs amortize the
// grouping and worker fan-out while keeping per-stream memory a few tens of
// kilobytes regardless of stream length.
const DefaultStreamWindow = 1024

// QueryStream answers an unbounded stream of (src, dst) pairs, yielding one
// PathInfo per pair in input order. Unlike QueryBatch it never materializes
// the whole input or output: pairs are consumed in windows of `window`
// (<= 0 means DefaultStreamWindow), each window grouped by destination tree
// and fanned across workers exactly like QueryBatch, so memory stays
// O(window) for million-pair streams while shared destinations within a
// window still cost one tree. Trees cached by earlier windows are reused by
// later ones.
//
// The returned iterator yields (info, nil) per pair. When ctx is cancelled
// it yields one final (zero, ctx.Err()) and stops; results already yielded
// remain valid. The iterator is single-use and not safe for concurrent
// iteration.
func (e *Engine) QueryStream(ctx context.Context, pairs iter.Seq[[2]netsim.Prefix], window int) iter.Seq2[PathInfo, error] {
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return func(yield func(PathInfo, error) bool) {
		buf := make([][2]netsim.Prefix, 0, window)
		flush := func() bool {
			if len(buf) == 0 {
				return true
			}
			out, err := e.QueryBatch(ctx, buf)
			if err != nil {
				yield(PathInfo{}, err)
				return false
			}
			for _, info := range out {
				if !yield(info, nil) {
					return false
				}
			}
			buf = buf[:0]
			return true
		}
		for p := range pairs {
			buf = append(buf, p)
			if len(buf) >= window && !flush() {
				return
			}
		}
		flush()
	}
}

// groupRunner is the per-group work hook runGroups fans out. It is an
// interface rather than a func parameter so allocation-free callers
// (StreamBatch passes itself) don't pay a heap closure per window;
// one-shot callers wrap their closure in groupFunc.
type groupRunner interface {
	runGroup(*batchGroup)
}

// groupFunc adapts a closure to groupRunner for the one-shot batch shapes.
type groupFunc func(*batchGroup)

func (f groupFunc) runGroup(g *batchGroup) { f(g) }

// runGroups executes r.runGroup(g) for every group on a pool of up to
// GOMAXPROCS workers, stopping early (without draining) once ctx is
// cancelled.
func (e *Engine) runGroups(ctx context.Context, groups []*batchGroup, r groupRunner) error {
	if len(groups) == 0 {
		return ctx.Err()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				return err
			}
			r.runGroup(g)
		}
		// ctx may have expired during the last group's work (e.g. while
		// joining an in-flight tree build), leaving zero-value results;
		// report it like the parallel path does.
		return ctx.Err()
	}
	ch := make(chan *batchGroup)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for g := range ch {
				if ctx.Err() != nil {
					continue // cancelled: drain without working
				}
				r.runGroup(g)
			}
		}()
	}
	for _, g := range groups {
		if ctx.Err() != nil {
			break
		}
		ch <- g
	}
	close(ch)
	wg.Wait()
	return ctx.Err()
}

package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// This file pins the flat-compiled engine to a reference implementation
// that runs the same backtracking Dijkstra directly over the map-based
// atlas (the shape the engine had before the serving form was compiled).
// Trees must match node-for-node — costs, chosen next-hops, pending
// late-exit counters, and next-AS annotations — and query answers must
// match field-for-field, across every option variant.

// refEngine is the map-backed reference. It mirrors the production node
// encoding and cost metric but reads links, relationships, tuples, and
// degrees straight out of atlas maps.
type refEngine struct {
	a    *atlas.Atlas
	opts Options

	numClusters int
	planes      int
	statesPerCl int

	in [][]refEdge
}

type refEdge struct {
	from   cluster.ClusterID
	to     cluster.ClusterID
	lat    float32
	planes uint8
	fromAS netsim.ASN
	toAS   netsim.ASN
	late   bool
	rel    netsim.Rel
	sameAS bool
}

func newRefEngine(a *atlas.Atlas, opts Options) *refEngine {
	if opts.DegreeThreshold <= 0 {
		opts.DegreeThreshold = 5
	}
	r := &refEngine{a: a, opts: opts, numClusters: a.NumClusters}
	r.planes = 1
	if opts.Asymmetry {
		r.planes = 2
	}
	r.statesPerCl = r.planes
	if !opts.ThreeTuple {
		r.statesPerCl *= 2
	}
	r.in = make([][]refEdge, a.NumClusters)
	for _, l := range a.Links {
		if int(l.From) >= a.NumClusters || int(l.To) >= a.NumClusters {
			continue
		}
		fa, ta := a.ClusterAS[l.From], a.ClusterAS[l.To]
		r.in[l.To] = append(r.in[l.To], refEdge{
			from:   l.From,
			to:     l.To,
			lat:    l.LatencyMS,
			planes: l.Planes,
			fromAS: fa,
			toAS:   ta,
			late:   fa != ta && a.LateExit[netsim.ASPairKey(fa, ta)],
			rel:    a.RelOf(fa, ta),
			sameAS: fa == ta,
		})
	}
	return r
}

func (r *refEngine) nodeID(c cluster.ClusterID, plane, ud int) int32 {
	if r.opts.ThreeTuple {
		return int32(c)*int32(r.planes) + int32(plane)
	}
	return int32(c)*int32(2*r.planes) + int32(plane)*2 + int32(ud)
}

func (r *refEngine) nodeCluster(id int32) cluster.ClusterID {
	if r.opts.ThreeTuple {
		return cluster.ClusterID(id / int32(r.planes))
	}
	return cluster.ClusterID(id / int32(2*r.planes))
}

func (r *refEngine) nodePlane(id int32) int {
	if r.opts.ThreeTuple {
		return int(id) % r.planes
	}
	return int(id) / 2 % r.planes
}

func (r *refEngine) nodeUD(id int32) int {
	if r.opts.ThreeTuple {
		return stateUp
	}
	return int(id) % 2
}

func (r *refEngine) numNodes() int { return r.numClusters * r.statesPerCl }

func (r *refEngine) run(dst cluster.ClusterID, originAS netsim.ASN) *tree {
	n := r.numNodes()
	t := &tree{
		dstCluster: dst,
		originAS:   originAS,
		cost:       make([]uint64, n),
		next:       make([]int32, n),
		pend:       make([]uint8, n),
		nextAS:     make([]netsim.ASN, n),
	}
	for i := range t.cost {
		t.cost[i] = infCost
		t.next[i] = -1
	}
	settled := make([]bool, n)
	var h costHeap

	start := r.nodeID(dst, planeToDst, stateDown)
	t.cost[start] = 0
	h.push(heapItem{0, start})

	maxPhase := 1
	if !r.opts.ThreeTuple {
		maxPhase = 3
	}
	for phase := 1; phase <= maxPhase; phase++ {
		if phase > 1 {
			for id := int32(0); id < int32(n); id++ {
				if settled[id] {
					r.relaxFrom(t, &h, settled, id, phase)
				}
			}
		}
		for len(h) > 0 {
			it := h.pop()
			if settled[it.node] || it.cost != t.cost[it.node] {
				continue
			}
			settled[it.node] = true
			r.relaxFrom(t, &h, settled, it.node, phase)
		}
	}
	return t
}

func (r *refEngine) relaxFrom(t *tree, h *costHeap, settled []bool, wid int32, phase int) {
	wc := r.nodeCluster(wid)
	wPlane := r.nodePlane(wid)
	wUD := r.nodeUD(wid)
	wCost := t.cost[wid]
	wPend := t.pend[wid]
	wNextAS := t.nextAS[wid]

	planeBit := uint8(atlas.PlaneToDst)
	if wPlane == planeFromSrc {
		planeBit = atlas.PlaneFromSrc
	}

	for i := range r.in[wc] {
		ed := &r.in[wc][i]
		if ed.planes&planeBit == 0 {
			continue
		}
		var vUD int
		edgePhase := 1
		if r.opts.ThreeTuple {
			vUD = stateUp
			if !r.tupleOK(ed, wNextAS) {
				continue
			}
		} else {
			var ok bool
			vUD, edgePhase, ok = refGraphTransition(ed, wUD)
			if !ok {
				continue
			}
		}
		if edgePhase > phase {
			continue
		}
		if r.opts.Providers && !r.providerOK(ed, t.originAS) {
			continue
		}

		vid := r.nodeID(ed.from, wPlane, vUD)
		if settled[vid] {
			continue
		}
		newCost, newPend := refRelaxCost(wCost, wPend, ed)
		vNextAS := wNextAS
		if !ed.sameAS {
			vNextAS = ed.toAS
		}
		switch {
		case newCost < t.cost[vid]:
			t.cost[vid] = newCost
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
			h.push(heapItem{newCost, vid})
		case newCost == t.cost[vid] && r.opts.Preferences &&
			vNextAS != t.nextAS[vid] &&
			r.a.Prefers(ed.fromAS, vNextAS, t.nextAS[vid]):
			t.next[vid] = wid
			t.pend[vid] = newPend
			t.nextAS[vid] = vNextAS
		}
	}

	relaxZero := func(vid int32) {
		if vid < 0 || settled[vid] {
			return
		}
		if wCost < t.cost[vid] {
			t.cost[vid] = wCost
			t.next[vid] = wid
			t.pend[vid] = wPend
			t.nextAS[vid] = wNextAS
			h.push(heapItem{wCost, vid})
		}
	}
	if !r.opts.ThreeTuple && wUD == stateDown {
		relaxZero(r.nodeID(wc, wPlane, stateUp))
	}
	if r.opts.Asymmetry && wPlane == planeToDst {
		relaxZero(r.nodeID(wc, planeFromSrc, wUD))
	}
}

func refRelaxCost(wCost uint64, wPend uint8, ed *refEdge) (uint64, uint8) {
	h := costHops(wCost)
	eu := wCost & costEMask
	switch {
	case ed.sameAS:
		return packCost(h, eu+latUnits(ed.lat)), wPend
	case ed.late:
		if wPend < math.MaxUint8 {
			wPend++
		}
		return packCost(h, eu+latUnits(ed.lat)), wPend
	default:
		return packCost(h+uint32(wPend)+1, 0), 0
	}
}

func refGraphTransition(ed *refEdge, wUD int) (vUD, phase int, ok bool) {
	switch {
	case ed.sameAS || ed.rel == netsim.RelSibling:
		return wUD, 1, true
	case ed.rel == netsim.RelProvider:
		if wUD != stateUp {
			return 0, 0, false
		}
		return stateUp, 3, true
	case ed.rel == netsim.RelCustomer:
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateDown, 1, true
	default:
		if wUD != stateDown {
			return 0, 0, false
		}
		return stateUp, 2, true
	}
}

func (r *refEngine) tupleOK(ed *refEdge, wNextAS netsim.ASN) bool {
	if ed.sameAS || wNextAS == 0 {
		return true
	}
	if ed.toAS == wNextAS || ed.fromAS == wNextAS || ed.fromAS == ed.toAS {
		return true
	}
	if int(r.a.ASDegree[ed.toAS]) <= r.opts.DegreeThreshold {
		return true
	}
	return r.a.HasTuple(ed.fromAS, ed.toAS, wNextAS)
}

func (r *refEngine) providerOK(ed *refEdge, originAS netsim.ASN) bool {
	if ed.sameAS || ed.toAS != originAS {
		return true
	}
	provs := r.a.Providers[ed.toAS]
	if len(provs) == 0 {
		return true
	}
	for _, p := range provs {
		if p == ed.fromAS {
			return true
		}
	}
	return false
}

// predictForward mirrors the production forward prediction, map-backed.
func (r *refEngine) predictForward(src, dst netsim.Prefix, adjust bool) Prediction {
	srcCl, okS := r.a.PrefixCluster[src]
	dstCl, okD := r.a.PrefixCluster[dst]
	if !okS || !okD {
		return Prediction{}
	}
	t := r.run(dstCl, r.a.PrefixAS[dst])
	p := r.pathFrom(t, srcCl)
	if !p.Found {
		return p
	}
	p.DstCluster = dstCl
	p.ASPath = r.asPath(p.Clusters, r.a.PrefixAS[src], r.a.PrefixAS[dst])
	if adjust {
		adj := float64(r.a.GlobalAdjustMS[dst]) + float64(r.a.AdjustMS[dst])
		if adj != 0 {
			p.LatencyMS += adj
			if p.LatencyMS < 0.05 {
				p.LatencyMS = 0.05
			}
		}
	}
	return p
}

func (r *refEngine) pathFrom(t *tree, srcCl cluster.ClusterID) Prediction {
	var startIDs []int32
	if r.opts.Asymmetry {
		startIDs = append(startIDs, r.nodeID(srcCl, planeFromSrc, stateUp))
	}
	startIDs = append(startIDs, r.nodeID(srcCl, planeToDst, stateUp))
	var start int32 = -1
	for _, id := range startIDs {
		if t.cost[id] != infCost {
			start = id
			break
		}
	}
	if start < 0 {
		return Prediction{}
	}
	p := Prediction{Found: true}
	deliver := 1.0
	prevCl := cluster.ClusterID(-1)
	steps := 0
	for id := start; id >= 0; id = t.next[id] {
		if steps++; steps > r.numNodes()+1 {
			return Prediction{}
		}
		c := r.nodeCluster(id)
		if c != prevCl {
			if prevCl >= 0 {
				if li := r.a.LinkAt(prevCl, c); li >= 0 {
					l := &r.a.Links[li]
					p.LatencyMS += float64(l.LatencyMS)
					deliver *= 1 - r.a.LossOf(prevCl, c)
				}
			}
			p.Clusters = append(p.Clusters, c)
			prevCl = c
		}
	}
	p.LossRate = 1 - deliver
	return p
}

func (r *refEngine) asPath(clusters []cluster.ClusterID, srcAS, dstAS netsim.ASN) []netsim.ASN {
	out := make([]netsim.ASN, 0, len(clusters)+2)
	if srcAS != 0 {
		out = append(out, srcAS)
	}
	for _, c := range clusters {
		a := r.a.ClusterAS[c]
		if a == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == a {
			continue
		}
		out = append(out, a)
	}
	if dstAS != 0 && (len(out) == 0 || out[len(out)-1] != dstAS) {
		out = append(out, dstAS)
	}
	return out
}

func sameTrees(t *testing.T, name string, dst cluster.ClusterID, ref, got *tree) {
	t.Helper()
	if len(ref.cost) != len(got.cost) {
		t.Fatalf("%s dst=%d: tree has %d nodes, reference %d", name, dst, len(got.cost), len(ref.cost))
	}
	for id := range ref.cost {
		if ref.cost[id] != got.cost[id] {
			t.Fatalf("%s dst=%d node=%d: cost %d, reference %d", name, dst, id, got.cost[id], ref.cost[id])
		}
		if ref.next[id] != got.next[id] {
			t.Fatalf("%s dst=%d node=%d: next %d, reference %d", name, dst, id, got.next[id], ref.next[id])
		}
		if ref.pend[id] != got.pend[id] {
			t.Fatalf("%s dst=%d node=%d: pend %d, reference %d", name, dst, id, got.pend[id], ref.pend[id])
		}
		if ref.nextAS[id] != got.nextAS[id] {
			t.Fatalf("%s dst=%d node=%d: nextAS %d, reference %d", name, dst, id, got.nextAS[id], ref.nextAS[id])
		}
	}
}

func samePrediction(t *testing.T, name string, ref, got Prediction) {
	t.Helper()
	if ref.Found != got.Found {
		t.Fatalf("%s: Found=%v, reference %v", name, got.Found, ref.Found)
	}
	if !ref.Found {
		return
	}
	if ref.DstCluster != got.DstCluster {
		t.Fatalf("%s: DstCluster=%d, reference %d", name, got.DstCluster, ref.DstCluster)
	}
	if len(ref.Clusters) != len(got.Clusters) {
		t.Fatalf("%s: %d clusters, reference %d", name, len(got.Clusters), len(ref.Clusters))
	}
	for i := range ref.Clusters {
		if ref.Clusters[i] != got.Clusters[i] {
			t.Fatalf("%s: cluster[%d]=%d, reference %d", name, i, got.Clusters[i], ref.Clusters[i])
		}
	}
	if len(ref.ASPath) != len(got.ASPath) {
		t.Fatalf("%s: AS path length %d, reference %d", name, len(got.ASPath), len(ref.ASPath))
	}
	for i := range ref.ASPath {
		if ref.ASPath[i] != got.ASPath[i] {
			t.Fatalf("%s: ASPath[%d]=%d, reference %d", name, i, got.ASPath[i], ref.ASPath[i])
		}
	}
	if ref.LatencyMS != got.LatencyMS {
		t.Fatalf("%s: latency %v, reference %v", name, got.LatencyMS, ref.LatencyMS)
	}
	if ref.LossRate != got.LossRate {
		t.Fatalf("%s: loss %v, reference %v", name, got.LossRate, ref.LossRate)
	}
}

// TestFlatDijkstraTreeParity compares every prediction tree the flat
// engine builds against the map-backed reference, node by node.
func TestFlatDijkstraTreeParity(t *testing.T) {
	for _, seed := range []int64{61, 62, 63} {
		w := buildWorld(t, seed)
		for name, opts := range allOptionVariants() {
			e := New(w.a, opts)
			r := newRefEngine(w.a, opts)
			// Every attachment cluster that serves a test target.
			done := map[cluster.ClusterID]bool{}
			for _, dst := range w.targets {
				dstCl, ok := w.a.PrefixCluster[dst]
				if !ok || done[dstCl] {
					continue
				}
				done[dstCl] = true
				origin := w.a.PrefixAS[dst]
				sameTrees(t, name, dstCl, r.run(dstCl, origin), e.run(dstCl, origin))
			}
		}
	}
}

// TestFlatQueryParity compares full bidirectional query answers.
func TestFlatQueryParity(t *testing.T) {
	w := buildWorld(t, 64)
	// Residual corrections on a few destinations so adjustLatency parity
	// is exercised, including a stack that would go negative unclamped.
	for i, p := range w.targets {
		if i%4 == 0 {
			w.a.GlobalAdjustMS[p] = float32(3 - i%9)
			w.a.AdjustMS[p] = float32(i%5 - 2)
		}
	}
	for name, opts := range allOptionVariants() {
		e := New(w.a, opts)
		r := newRefEngine(w.a, opts)
		pairs := 0
		for i, src := range w.targets {
			dst := w.targets[(i+7)%len(w.targets)]
			if src == dst {
				continue
			}
			samePrediction(t, name+"/fwd", r.predictForward(src, dst, true), e.PredictForward(src, dst))

			info := e.Query(src, dst)
			fwd := r.predictForward(src, dst, false)
			rev := r.predictForward(dst, src, false)
			samePrediction(t, name+"/rev", rev, info.Rev)
			// Query applies the destination's correction to the forward
			// leg only; reproduce that composition on the reference.
			adj := float64(r.a.GlobalAdjustMS[dst]) + float64(r.a.AdjustMS[dst])
			if fwd.Found && adj != 0 {
				fwd.LatencyMS += adj
				if fwd.LatencyMS < 0.05 {
					fwd.LatencyMS = 0.05
				}
			}
			samePrediction(t, name+"/qfwd", fwd, info.Fwd)
			if wantFound := fwd.Found && rev.Found; info.Found != wantFound {
				t.Fatalf("%s: Found=%v, reference %v", name, info.Found, wantFound)
			}
			if info.Found {
				if want := fwd.LatencyMS + rev.LatencyMS; info.RTTMS != want {
					t.Fatalf("%s: RTT %v, reference %v", name, info.RTTMS, want)
				}
				want := 1 - (1-fwd.LossRate)*(1-rev.LossRate)
				if math.Abs(info.LossRate-want) > 1e-12 {
					t.Fatalf("%s: loss %v, reference %v", name, info.LossRate, want)
				}
			}
			if pairs++; pairs >= 60 {
				break
			}
		}
	}
}

// TestFlatQueryParityAfterReload pins the serialized serving form: an
// engine over a WriteFlat -> ReadFlat round trip must answer every query
// byte-identically to the engine over the directly compiled Flat, across
// every option variant. This is the codec-loaded path inanod takes with
// -atlas-flat, and it exercises the Eytzinger index the decoder rebuilds
// (the sorted slices are the serialized form; the index is derived) —
// parity here proves the rebuilt index equals the Compile-built one.
func TestFlatQueryParityAfterReload(t *testing.T) {
	w := buildWorld(t, 65)
	for i, p := range w.targets {
		if i%4 == 0 {
			w.a.GlobalAdjustMS[p] = float32(3 - i%9)
			w.a.AdjustMS[p] = float32(i%5 - 2)
		}
	}
	compiled := atlas.Compile(w.a)
	var buf bytes.Buffer
	if err := atlas.WriteFlat(&buf, compiled); err != nil {
		t.Fatal(err)
	}
	reloaded, err := atlas.ReadFlat(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range allOptionVariants() {
		e := NewFromFlat(compiled, opts)
		re := NewFromFlat(reloaded, opts)
		pairs := 0
		for i, src := range w.targets {
			dst := w.targets[(i+7)%len(w.targets)]
			if src == dst {
				continue
			}
			want, got := e.Query(src, dst), re.Query(src, dst)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: reloaded answer differs for %v->%v:\ncompiled %+v\nreloaded %+v",
					name, src, dst, want, got)
			}
			wp, gp := e.PredictForward(src, dst), re.PredictForward(src, dst)
			if !reflect.DeepEqual(wp, gp) {
				t.Fatalf("%s: reloaded forward differs for %v->%v:\ncompiled %+v\nreloaded %+v",
					name, src, dst, wp, gp)
			}
			if pairs++; pairs >= 60 {
				break
			}
		}
	}
}

// Package core implements iNano's route prediction engine — the paper's
// primary contribution (§4). Given the compact link-level atlas, it predicts
// the cluster-level (PoP-level) path between arbitrary end hosts and
// composes per-link annotations into end-to-end latency and loss estimates.
//
// Two algorithm families share one backtracking Dijkstra core:
//
//   - GRAPH (§4.2): valley-free routing enforced structurally by splitting
//     every cluster into an "up" and a "down" node wired according to
//     inferred AS relationships, with customer<peer<provider local
//     preference imposed by a three-phase frontier, and late-exit pairs
//     folded into the cost metric's pending-hop component.
//
//   - iNano (§4.3): GRAPH plus four refinements, each independently
//     toggleable for the Fig. 5 ablation: the FROM_SRC/TO_DST plane split
//     for route asymmetry, the relationship-agnostic 3-tuple export check
//     (which replaces the up/down construction), observation-inferred AS
//     preference tie-breaking, and the provider check at the destination.
//
// The route computation backtracks from the destination, so one run yields
// predictions from every source to that destination; Engine caches these
// per-destination trees for batch workloads.
//
// The engine never queries the map-based atlas at serving time: New
// compiles the atlas into its flat serving form (atlas.Flat — a
// structure-of-arrays CSR link table plus sorted lookup tables) and every
// relaxation, prefix lookup, and path walk reads flat arrays. The map form
// remains the mutation surface; after editing it, build a new engine.
package core

import (
	"sync"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
)

// Options selects the prediction algorithm variant. The zero value is the
// plain GRAPH algorithm of §4.2.
type Options struct {
	// Asymmetry enables the FROM_SRC plane and the plane-crossing edges
	// of §4.3.1. Without it, predictions use only vantage-point-observed
	// links.
	Asymmetry bool
	// ThreeTuple replaces the valley-free up/down construction and the
	// three-phase local preference with the observed-export 3-tuple check
	// of §4.3.2 (relationship-agnostic routing).
	ThreeTuple bool
	// Preferences applies AS preference tuples as tie-breaks among
	// equal-cost candidates (§4.3.3).
	Preferences bool
	// Providers rejects paths entering the destination AS through an AS
	// never observed as its provider (§4.3.4).
	Providers bool
	// DegreeThreshold gates the 3-tuple check on the middle AS's degree;
	// 0 means the paper's default of 5.
	DegreeThreshold int
	// TreeCacheSize bounds the per-destination prediction tree cache;
	// 0 means a default of 4096 trees (a tree is a few slices over the
	// node space, so even large caches stay in tens of megabytes).
	TreeCacheSize int
	// TreeCacheShards sets the tree cache's lock-shard count (rounded up
	// to a power of two); 0 means a default of 32. More shards reduce
	// contention between concurrent queries to distinct destinations.
	TreeCacheShards int
}

// GraphOptions returns the configuration of the GRAPH baseline.
func GraphOptions() Options { return Options{} }

// INanoOptions returns the full iNano configuration (all refinements on).
func INanoOptions() Options {
	return Options{Asymmetry: true, ThreeTuple: true, Preferences: true, Providers: true}
}

// Engine answers path queries over one atlas snapshot.
//
// Concurrency contract: all query methods (Query, QueryBatch,
// PredictForward, PredictBatch) are safe for unbounded concurrent use. The
// per-destination prediction tree cache is sharded by destination, so
// concurrent queries to distinct destinations never serialize on a shared
// lock, and concurrent queries to the same cold destination run its
// backtracking Dijkstra exactly once (singleflight). Cancellation in the
// batch methods skips not-yet-started tree builds and unblocks callers
// waiting on another caller's in-flight build; a build already running
// completes and stays cached, so a retry resumes cheaply. The engine itself is
// immutable after New: to mutate the atlas, build a new engine and swap it
// atomically (as inano.Client does under its RWMutex).
type Engine struct {
	// a is the map-based atlas the engine was compiled from; nil when the
	// engine was built directly from a flat file (NewFromFlat). The
	// serving path never reads it — it exists so callers that own the
	// mutation surface (inano.Client) can get their atlas back.
	a *atlas.Atlas
	// f is the compiled flat serving form; every query reads only this.
	f    *atlas.Flat
	opts Options

	numClusters  int
	planes       int // 1 (TO_DST only) or 2 (with FROM_SRC)
	statesPerCl  int // planes * (1 or 2 for up/down)
	degThreshold int32

	trees *shardedTreeCache
	// scratch pools per-run Dijkstra working state (settled bitmap + heap
	// storage). The tree result arrays themselves are NOT pooled: trees
	// live in the LRU cache and an evicted tree may still be walked by an
	// in-flight query, so recycling them would be a use-after-free.
	scratch sync.Pool
}

// New builds an engine over a, compiling its flat serving form. The atlas
// must not be mutated while New runs; afterwards the engine holds no
// references into a's maps, so the caller may keep editing it (and build a
// new engine when done).
func New(a *atlas.Atlas, opts Options) *Engine {
	e := NewFromFlat(atlas.Compile(a), opts)
	e.a = a
	return e
}

// NewFromFlat builds an engine directly over a compiled flat atlas (e.g.
// one mapped from disk). The flat form must not be mutated while the
// engine is in use; Atlas() returns nil for such engines.
func NewFromFlat(f *atlas.Flat, opts Options) *Engine {
	if opts.DegreeThreshold <= 0 {
		opts.DegreeThreshold = 5
	}
	if opts.TreeCacheSize <= 0 {
		opts.TreeCacheSize = 4096
	}
	if opts.TreeCacheShards <= 0 {
		opts.TreeCacheShards = 32
	}
	e := &Engine{f: f, opts: opts, numClusters: int(f.NumClusters)}
	e.degThreshold = int32(opts.DegreeThreshold)
	e.planes = 1
	if opts.Asymmetry {
		e.planes = 2
	}
	e.statesPerCl = e.planes
	if !opts.ThreeTuple {
		e.statesPerCl *= 2 // up/down doubling
	}
	e.trees = newShardedTreeCache(opts.TreeCacheSize, opts.TreeCacheShards)
	n := e.numNodes()
	e.scratch.New = func() any { return newRunScratch(n) }
	return e
}

// NewWithCache builds an engine over a while adopting prev's
// prediction-tree cache. Caller contract: a must be route-identical to
// prev's atlas — same clusters, links, planes, and policy datasets,
// differing only in data the route computation never reads (the
// residual corrections in AdjustMS) — and opts must equal prev's. Used
// for residual-only feedback merges, where a full New would needlessly
// cold-start a warm serving cache; prev keeps working, sharing the cache.
func NewWithCache(a *atlas.Atlas, opts Options, prev *Engine) *Engine {
	e := New(a, opts)
	if prev != nil {
		e.trees = prev.trees
	}
	return e
}

// CacheStats reports tree cache counters (hits, misses, Dijkstra builds,
// trees resident). Builds lag misses when singleflight coalesces
// concurrent misses on one destination.
func (e *Engine) CacheStats() CacheStats { return e.trees.stats() }

// Atlas returns the map-based atlas the engine was compiled from, or nil
// when the engine was built from a flat file (NewFromFlat) — reconstruct
// one with Flat().Inflate() in that case.
func (e *Engine) Atlas() *atlas.Atlas { return e.a }

// Flat returns the engine's compiled serving-form atlas.
func (e *Engine) Flat() *atlas.Flat { return e.f }

// Day returns the measurement day of the engine's atlas snapshot.
func (e *Engine) Day() int { return int(e.f.Day) }

// Opts returns the engine's configuration.
func (e *Engine) Opts() Options { return e.opts }

// HopCluster places a traceroute hop interface in the atlas's cluster
// space: the interface-prefix table first (infrastructure /24s observed by
// the build), then the end-host attachment table. ok is false when the
// atlas has never seen the hop's /24.
func (e *Engine) HopCluster(p netsim.Prefix) (cluster.ClusterID, bool) {
	if cl, ok := e.f.IfaceClusterOf(p); ok {
		return cl, true
	}
	return e.f.ClusterOf(p)
}

// Node state encoding.
//
// GRAPH mode:  id = cluster*4 + plane*2 + ud   (ud: 0 = up, 1 = down)
// iNano mode:  id = cluster*2 + plane
//
// plane: 0 = TO_DST, 1 = FROM_SRC. Backtracking starts at the destination's
// down/TO_DST node and relaxes toward sources; a zero-cost cross edge lets
// the search continue from a cluster's TO_DST node into its FROM_SRC node
// (traffic flows FROM_SRC -> TO_DST).
const (
	planeToDst   = 0
	planeFromSrc = 1
	stateUp      = 0
	stateDown    = 1
)

func (e *Engine) nodeID(c cluster.ClusterID, plane, ud int) int32 {
	if e.opts.ThreeTuple {
		return int32(c)*int32(e.planes) + int32(plane)
	}
	return int32(c)*int32(2*e.planes) + int32(plane)*2 + int32(ud)
}

func (e *Engine) nodeCluster(id int32) cluster.ClusterID {
	if e.opts.ThreeTuple {
		return cluster.ClusterID(id / int32(e.planes))
	}
	return cluster.ClusterID(id / int32(2*e.planes))
}

func (e *Engine) nodePlane(id int32) int {
	if e.opts.ThreeTuple {
		return int(id) % e.planes
	}
	return int(id) / 2 % e.planes
}

func (e *Engine) nodeUD(id int32) int {
	if e.opts.ThreeTuple {
		return stateUp
	}
	return int(id) % 2
}

func (e *Engine) numNodes() int { return e.numClusters * e.statesPerCl }

package core

import (
	"testing"
)

// TestWarmQueryZeroAlloc is the allocation gate for the serving hot path:
// once the prediction trees for both directions of a pair are cached, a
// QueryInto into a reused PathInfo must not allocate at all. CI runs this
// test in the bench job; a regression here is a performance bug even if
// every functional test stays green.
func TestWarmQueryZeroAlloc(t *testing.T) {
	w := buildWorld(t, 61)
	e := New(w.a, INanoOptions())

	// Find a pair answered in both directions, then warm its trees and
	// the PathInfo's slice capacity.
	var info PathInfo
	src, dst := pickFoundPair(t, w, e)
	e.QueryInto(&info, src, dst)

	allocs := testing.AllocsPerRun(100, func() {
		e.QueryInto(&info, src, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm QueryInto allocates %v times per op, want 0", allocs)
	}

	// The one-way raw path is equally hot (batch interiors); it must stay
	// clean too.
	var p Prediction
	e.predictForwardRawInto(&p, src, dst)
	allocs = testing.AllocsPerRun(100, func() {
		e.predictForwardRawInto(&p, src, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm predictForwardRawInto allocates %v times per op, want 0", allocs)
	}
}

// BenchmarkQueryInto_Warm is the steady-state serving loop: cached trees,
// reused PathInfo. ReportAllocs makes the zero-allocation property visible
// in bench output (the gate itself is TestWarmQueryZeroAlloc).
func BenchmarkQueryInto_Warm(b *testing.B) {
	w := buildWorld(b, 61)
	e := New(w.a, INanoOptions())
	var info PathInfo
	var src, dst = w.targets[0], w.targets[1]
	for i, s := range w.targets {
		for _, d := range w.targets[i+1:] {
			if e.Query(s, d).Found {
				src, dst = s, d
				goto warm
			}
		}
	}
warm:
	e.QueryInto(&info, src, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.QueryInto(&info, src, dst)
	}
}

package core

import (
	"context"
	"sync"
)

// shardedTreeCache is the engine's per-destination prediction tree cache.
// Keys spread across power-of-two shards by a Fibonacci hash of the
// destination cluster, so concurrent queries to distinct destinations take
// distinct locks and never contend. Each shard is an LRU over its slice of
// the capacity, with singleflight computation: concurrent misses on the
// same cold destination block on one in-flight build instead of running
// the backtracking Dijkstra once per caller.
type shardedTreeCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock domain: an LRU (map + intrusive list, most
// recently used at the head) plus the in-flight build registry.
type cacheShard struct {
	mu         sync.Mutex
	cap        int
	items      map[uint64]*lruEntry
	head, tail *lruEntry
	inflight   map[uint64]*inflightBuild

	// Stats, guarded by mu. builds counts trees actually computed; with
	// singleflight, concurrent misses on one key contribute one build.
	hits, misses, builds uint64
}

type lruEntry struct {
	key        uint64
	t          *tree
	prev, next *lruEntry
}

// inflightBuild publishes a tree being computed; waiters block on done and
// read t afterwards (the channel close orders the writes before the reads).
// If the build panicked, panicked holds the recovered value and waiters
// re-panic with it instead of returning a nil tree.
type inflightBuild struct {
	done     chan struct{}
	t        *tree
	panicked any
}

// CacheStats aggregates tree cache counters across shards.
type CacheStats struct {
	Hits   uint64 // lookups answered from a cached tree
	Misses uint64 // lookups that required (or joined) a build
	Builds uint64 // Dijkstra runs actually executed
	Len    int    // trees currently cached
}

// newShardedTreeCache builds a cache holding up to capacity trees across
// shardCount shards (rounded up to a power of two). Every shard holds at
// least one tree, so tiny capacities still cache.
func newShardedTreeCache(capacity, shardCount int) *shardedTreeCache {
	if shardCount < 1 {
		shardCount = 1
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &shardedTreeCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[uint64]*lruEntry)
		c.shards[i].inflight = make(map[uint64]*inflightBuild)
	}
	return c
}

func (c *shardedTreeCache) shard(k uint64) *cacheShard {
	// Fibonacci hash: tree keys are dense small integers (cluster<<32 |
	// origin), so multiply-shift scatters them across shards.
	return &c.shards[(k*0x9E3779B97F4A7C15)>>32&c.mask]
}

// treeBuilder computes the tree for a cache key on a miss. *Engine is the
// production implementation (Engine.buildTree); taking an interface whose
// value is an existing pointer — rather than a per-call closure — keeps
// the warm-hit path allocation-free.
type treeBuilder interface {
	buildTree(k uint64) *tree
}

// builderFunc adapts a plain function to treeBuilder (test hook).
type builderFunc func(uint64) *tree

func (f builderFunc) buildTree(k uint64) *tree { return f(k) }

// getOrCompute returns the cached tree for k, or computes it exactly once
// across all concurrent callers and caches the result. The caller that wins
// the build runs b.buildTree to completion (so the tree stays cached for a
// retry); callers joining an in-flight build stop waiting when ctx is
// cancelled and return ctx.Err(). A panic in the build is cleaned up — the
// in-flight entry is removed so the key is not poisoned — and re-raised in
// the builder and every waiter.
func (c *shardedTreeCache) getOrCompute(ctx context.Context, k uint64, bld treeBuilder) (*tree, error) {
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		s.moveToFront(e)
		s.hits++
		s.mu.Unlock()
		return e.t, nil
	}
	s.misses++
	if b, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		select {
		case <-b.done:
			if b.panicked != nil {
				panic(b.panicked)
			}
			return b.t, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	b := &inflightBuild{done: make(chan struct{})}
	s.inflight[k] = b
	s.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			b.panicked = recover()
		}
		s.mu.Lock()
		delete(s.inflight, k)
		if completed {
			s.builds++
			s.insert(k, b.t)
		}
		s.mu.Unlock()
		close(b.done)
		if b.panicked != nil {
			panic(b.panicked)
		}
	}()
	b.t = bld.buildTree(k)
	completed = true
	return b.t, nil
}

func (c *shardedTreeCache) stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Builds += s.builds
		st.Len += len(s.items)
		s.mu.Unlock()
	}
	return st
}

// insert adds k at the front, evicting the least recently used entry when
// the shard is full. Re-inserting an existing key refreshes its recency.
func (s *cacheShard) insert(k uint64, t *tree) {
	if e, ok := s.items[k]; ok {
		e.t = t
		s.moveToFront(e)
		return
	}
	if len(s.items) >= s.cap {
		oldest := s.tail
		s.unlink(oldest)
		delete(s.items, oldest.key)
	}
	e := &lruEntry{key: k, t: t}
	s.items[k] = e
	s.pushFront(e)
}

func (s *cacheShard) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *lruEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// keysMRU returns the shard's keys from most to least recently used (test
// helper for eviction-order assertions).
func (s *cacheShard) keysMRU() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for e := s.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestStreamBatchMatchesQueryBatchPartial is the parity property for the
// reusable runner: across consecutive windows on one StreamBatch (the
// buffer-reuse shape), under every algorithm variant, Run must return
// exactly what a fresh QueryBatchPartial returns for the same window.
func TestStreamBatchMatchesQueryBatchPartial(t *testing.T) {
	w := buildWorld(t, 83)
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))))
			e := New(w.a, opts)
			sb := e.NewStreamBatch(false)
			ctx := context.Background()
			for window := 0; window < 4; window++ {
				pairs := randomPairs(rng, w, 20+window*17)
				reqs := make([]PairReq, len(pairs))
				for i, pr := range pairs {
					reqs[i] = PairReq{Src: pr[0], Dst: pr[1]}
				}
				got, gotExp, err := sb.Run(ctx, reqs)
				if err != nil {
					t.Fatal(err)
				}
				want, wantExp, err := e.QueryBatchPartial(ctx, reqs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range reqs {
					if gotExp[i] != wantExp[i] {
						t.Fatalf("window %d pair %d: expired %v != %v", window, i, gotExp[i], wantExp[i])
					}
					if !samePathInfo(got[i], want[i]) {
						t.Fatalf("window %d pair %d (%v->%v):\nstream  %+v\npartial %+v",
							window, i, reqs[i].Src, reqs[i].Dst, got[i], want[i])
					}
				}
			}
		})
	}
}

// samePathInfo compares answers treating nil and empty path slices as
// equal: the reusable runner keeps slice capacity across windows, so a
// not-reached leg holds an empty (not nil) slice.
func samePathInfo(a, b PathInfo) bool {
	normPred := func(p *Prediction) {
		if len(p.Clusters) == 0 {
			p.Clusters = nil
		}
		if len(p.ASPath) == 0 {
			p.ASPath = nil
		}
	}
	normPred(&a.Fwd)
	normPred(&a.Rev)
	normPred(&b.Fwd)
	normPred(&b.Rev)
	return reflect.DeepEqual(a, b)
}

// TestStreamBatchNoASPaths checks the server shape: AS paths are skipped
// but every other field matches the full answer.
func TestStreamBatchNoASPaths(t *testing.T) {
	w := buildWorld(t, 84)
	e := New(w.a, INanoOptions())
	sb := e.NewStreamBatch(true)
	rng := rand.New(rand.NewSource(84))
	pairs := randomPairs(rng, w, 60)
	reqs := make([]PairReq, len(pairs))
	for i, pr := range pairs {
		reqs[i] = PairReq{Src: pr[0], Dst: pr[1]}
	}
	got, _, err := sb.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.QueryBatchPartial(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if len(got[i].Fwd.ASPath) != 0 || len(got[i].Rev.ASPath) != 0 {
			t.Fatalf("pair %d: noASPaths answer carries AS paths", i)
		}
		want[i].Fwd.ASPath = nil
		want[i].Rev.ASPath = nil
		if !samePathInfo(got[i], want[i]) {
			t.Fatalf("pair %d: stream %+v != partial-sans-aspath %+v", i, got[i], want[i])
		}
	}
}

// TestStreamBatchDeadlines checks the per-pair deadline contract on the
// reusable runner: already-expired pairs report expired with a zero
// answer, patient pairs of the same window still answer.
func TestStreamBatchDeadlines(t *testing.T) {
	w := buildWorld(t, 85)
	e := New(w.a, INanoOptions())
	src, dst := pickFoundPair(t, w, e)
	sb := e.NewStreamBatch(false)
	reqs := []PairReq{
		{Src: src, Dst: dst, Deadline: time.Now().Add(-time.Second)},
		{Src: src, Dst: dst, Deadline: time.Now().Add(time.Minute)},
		{Src: src, Dst: dst},
	}
	out, expired, err := sb.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !expired[0] || out[0].Found {
		t.Fatalf("past-deadline pair: expired=%v found=%v, want true,false", expired[0], out[0].Found)
	}
	for i := 1; i < 3; i++ {
		if expired[i] || !out[i].Found {
			t.Fatalf("pair %d: expired=%v found=%v, want false,true", i, expired[i], out[i].Found)
		}
	}
}

// TestStreamBatchCancelled checks that context cancellation aborts the
// window with the context error, like QueryBatchPartial.
func TestStreamBatchCancelled(t *testing.T) {
	w := buildWorld(t, 85)
	e := New(w.a, INanoOptions())
	sb := e.NewStreamBatch(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := sb.Run(ctx, []PairReq{{Src: w.vps[0], Dst: w.targets[0]}})
	if err != context.Canceled {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
}

// TestStreamBatchZeroAlloc is the allocation gate for the streamed batch
// path, the window-level sibling of TestWarmQueryZeroAlloc: once a
// window's trees are cached and the runner's buffers have grown, a whole
// Run — doubling, grouping, prediction, composition — must not allocate.
// CI runs this in the bench job.
func TestStreamBatchZeroAlloc(t *testing.T) {
	w := buildWorld(t, 61)
	e := New(w.a, INanoOptions())
	sb := e.NewStreamBatch(true)

	reqs := make([]PairReq, 0, 64)
	for i := 0; i < 64; i++ {
		reqs = append(reqs, PairReq{
			Src: w.vps[i%len(w.vps)],
			Dst: w.targets[(i*7)%len(w.targets)],
		})
	}
	ctx := context.Background()
	if _, _, err := sb.Run(ctx, reqs); err != nil { // warm trees + buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := sb.Run(ctx, reqs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm StreamBatch.Run allocates %v times per window, want 0", allocs)
	}
}

// BenchmarkStreamBatch_Warm is the steady-state streamed serving loop:
// one reusable runner, repeated 64-pair windows over cached trees.
// pairs/s = 64 * ops/s.
func BenchmarkStreamBatch_Warm(b *testing.B) {
	w := buildWorld(b, 61)
	e := New(w.a, INanoOptions())
	sb := e.NewStreamBatch(true)
	reqs := make([]PairReq, 0, 64)
	for i := 0; i < 64; i++ {
		reqs = append(reqs, PairReq{
			Src: w.vps[i%len(w.vps)],
			Dst: w.targets[(i*7)%len(w.targets)],
		})
	}
	ctx := context.Background()
	if _, _, err := sb.Run(ctx, reqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sb.Run(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

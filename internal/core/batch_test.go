package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"inano/internal/netsim"
)

// randomPairs draws (src, dst) pairs from the world's prefixes, mixing
// vantage points, targets, and unknown prefixes, with repeats so batches
// exercise destination grouping.
func randomPairs(rng *rand.Rand, w *world, n int) [][2]netsim.Prefix {
	pool := make([]netsim.Prefix, 0, len(w.vps)+len(w.targets)+1)
	pool = append(pool, w.vps...)
	pool = append(pool, w.targets...)
	pool = append(pool, netsim.Prefix(0xFFFFFF)) // never in the atlas
	pairs := make([][2]netsim.Prefix, n)
	for i := range pairs {
		pairs[i] = [2]netsim.Prefix{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]}
	}
	return pairs
}

// TestPredictBatchMatchesPredict is the batch-parity property: for random
// src/dst sets, under every algorithm variant, PredictBatch must return
// exactly what per-pair PredictForward returns, in input order.
func TestPredictBatchMatchesPredict(t *testing.T) {
	w := buildWorld(t, 80)
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))))
			for trial := 0; trial < 3; trial++ {
				e := New(w.a, opts)
				pairs := randomPairs(rng, w, 40+trial*37)
				batch, err := e.PredictBatch(context.Background(), pairs)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) != len(pairs) {
					t.Fatalf("batch returned %d results for %d pairs", len(batch), len(pairs))
				}
				for i, pr := range pairs {
					single := e.PredictForward(pr[0], pr[1])
					if !reflect.DeepEqual(batch[i], single) {
						t.Fatalf("pair %d (%v->%v): batch %+v != single %+v", i, pr[0], pr[1], batch[i], single)
					}
				}
			}
		})
	}
}

// TestQueryBatchMatchesQuery asserts bidirectional batch parity under every
// algorithm variant, including across fresh and warm engines.
func TestQueryBatchMatchesQuery(t *testing.T) {
	w := buildWorld(t, 81)
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2 * len(name))))
			e := New(w.a, opts)
			pairs := randomPairs(rng, w, 60)
			batch, err := e.QueryBatch(context.Background(), pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i, pr := range pairs {
				single := e.Query(pr[0], pr[1])
				if !reflect.DeepEqual(batch[i], single) {
					t.Fatalf("pair %d (%v->%v): batch %+v != single %+v", i, pr[0], pr[1], batch[i], single)
				}
			}
		})
	}
}

// TestQueryBatchEmptyAndUnknown covers degenerate batches.
func TestQueryBatchEmptyAndUnknown(t *testing.T) {
	w := buildWorld(t, 82)
	e := New(w.a, INanoOptions())
	out, err := e.QueryBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	bogus := netsim.Prefix(0xFFFFFF)
	out, err = e.QueryBatch(context.Background(), [][2]netsim.Prefix{{bogus, bogus}, {w.vps[0], bogus}})
	if err != nil {
		t.Fatal(err)
	}
	for i, info := range out {
		if info.Found {
			t.Fatalf("result %d found for unknown prefix", i)
		}
	}
}

// TestPredictBatchCancelled checks an already-expired context aborts the
// batch with ctx.Err() before doing work.
func TestPredictBatchCancelled(t *testing.T) {
	w := buildWorld(t, 83)
	e := New(w.a, INanoOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs := randomPairs(rand.New(rand.NewSource(1)), w, 30)
	if _, err := e.PredictBatch(ctx, pairs); err != context.Canceled {
		t.Fatalf("PredictBatch error = %v, want context.Canceled", err)
	}
	if _, err := e.QueryBatch(ctx, pairs); err != context.Canceled {
		t.Fatalf("QueryBatch error = %v, want context.Canceled", err)
	}
	if st := e.CacheStats(); st.Builds != 0 {
		t.Fatalf("cancelled batch still built %d trees", st.Builds)
	}
}

// TestQueryBatchSharesTreesAcrossPairs checks the batch costs one tree per
// distinct endpoint, not one per leg: N pairs from one source to K
// distinct destinations need at most K+1 Dijkstra runs.
func TestQueryBatchSharesTreesAcrossPairs(t *testing.T) {
	w := buildWorld(t, 84)
	e := New(w.a, INanoOptions())
	src := w.vps[0]
	const k = 5
	pairs := make([][2]netsim.Prefix, 0, 40)
	for i := 0; i < 40; i++ {
		pairs = append(pairs, [2]netsim.Prefix{src, w.targets[i%k]})
	}
	if _, err := e.QueryBatch(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Builds > k+1 {
		t.Fatalf("batch of %d pairs over %d destinations built %d trees, want <= %d", len(pairs), k, st.Builds, k+1)
	}
}

// TestConcurrentBatchAndSingleQueries races QueryBatch, Query, and
// PredictForward over one engine; run under -race this is the engine-level
// concurrency stress.
func TestConcurrentBatchAndSingleQueries(t *testing.T) {
	w := buildWorld(t, 85)
	opts := INanoOptions()
	opts.TreeCacheSize = 16 // small cache forces eviction churn during the race
	opts.TreeCacheShards = 4
	e := New(w.a, opts)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 15; i++ {
				switch g % 3 {
				case 0:
					pairs := randomPairs(rng, w, 12)
					if _, err := e.QueryBatch(context.Background(), pairs); err != nil {
						t.Error(err)
						return
					}
				case 1:
					e.Query(w.vps[(g+i)%len(w.vps)], w.targets[(g*13+i*7)%len(w.targets)])
				default:
					e.PredictForward(w.vps[(g+i)%len(w.vps)], w.targets[(g*5+i*3)%len(w.targets)])
				}
			}
		}(g)
	}
	wg.Wait()
}

package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"inano/internal/netsim"
)

// pairSeq adapts a slice to the iterator shape QueryStream consumes.
func pairSeq(pairs [][2]netsim.Prefix) func(func([2]netsim.Prefix) bool) {
	return func(yield func([2]netsim.Prefix) bool) {
		for _, p := range pairs {
			if !yield(p) {
				return
			}
		}
	}
}

// TestQueryStreamMatchesQueryBatch is the streaming parity property: over
// random pair streams and windows smaller than the stream, QueryStream must
// yield exactly QueryBatch's results, in order.
func TestQueryStreamMatchesQueryBatch(t *testing.T) {
	w := buildWorld(t, 83)
	e := New(w.a, INanoOptions())
	rng := rand.New(rand.NewSource(83))
	for _, window := range []int{1, 7, 64, 0} { // 0 = DefaultStreamWindow
		pairs := randomPairs(rng, w, 150)
		want, err := e.QueryBatch(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for info, err := range e.QueryStream(context.Background(), pairSeq(pairs), window) {
			if err != nil {
				t.Fatalf("window %d: unexpected stream error at %d: %v", window, i, err)
			}
			if !reflect.DeepEqual(info, want[i]) {
				t.Fatalf("window %d, pair %d: stream %+v != batch %+v", window, i, info, want[i])
			}
			i++
		}
		if i != len(pairs) {
			t.Fatalf("window %d: stream yielded %d results, want %d", window, i, len(pairs))
		}
	}
}

// TestQueryStreamCancelMidStream feeds an endless pair stream and cancels
// after a few windows: the iterator must yield ctx.Err() once and stop, and
// must stop consuming the input.
func TestQueryStreamCancelMidStream(t *testing.T) {
	w := buildWorld(t, 84)
	e := New(w.a, INanoOptions())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	consumed := 0
	endless := func(yield func([2]netsim.Prefix) bool) {
		for i := 0; ; i++ {
			consumed++
			src := w.vps[i%len(w.vps)]
			dst := w.targets[i%len(w.targets)]
			if !yield([2]netsim.Prefix{src, dst}) {
				return
			}
		}
	}

	const window = 8
	got, errs := 0, 0
	var streamErr error
	for info, err := range e.QueryStream(ctx, endless, window) {
		if err != nil {
			errs++
			streamErr = err
			continue // iterator must stop on its own after the error
		}
		_ = info
		got++
		if got == 3*window {
			cancel()
		}
	}
	if errs != 1 || streamErr != context.Canceled {
		t.Fatalf("stream yielded %d errors (last %v), want exactly one context.Canceled", errs, streamErr)
	}
	// Cancellation lands at a window boundary: everything yielded before the
	// error came from complete windows.
	if got%window != 0 || got < 3*window {
		t.Fatalf("yielded %d results before cancel, want a multiple of %d >= %d", got, window, 3*window)
	}
	if consumed > got+window+1 {
		t.Fatalf("input consumed %d pairs after only %d results, want consumption to stop with the stream", consumed, got)
	}
}

// TestQueryStreamConsumerBreak stops iterating mid-stream; the input
// sequence must stop being pulled (no goroutine leak, no panic).
func TestQueryStreamConsumerBreak(t *testing.T) {
	w := buildWorld(t, 85)
	e := New(w.a, INanoOptions())
	rng := rand.New(rand.NewSource(85))
	pairs := randomPairs(rng, w, 100)
	got := 0
	for _, err := range e.QueryStream(context.Background(), pairSeq(pairs), 10) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		if got == 15 {
			break
		}
	}
	if got != 15 {
		t.Fatalf("consumed %d results, want 15", got)
	}
}

// TestQueryStreamReusesTreesAcrossWindows checks the cache carries trees
// from one window to the next: a stream of N windows all hitting the same
// destination costs one forward-tree build, not one per window.
func TestQueryStreamReusesTreesAcrossWindows(t *testing.T) {
	w := buildWorld(t, 86)
	e := New(w.a, INanoOptions())
	dst := w.targets[0]
	pairs := make([][2]netsim.Prefix, 64)
	for i := range pairs {
		pairs[i] = [2]netsim.Prefix{w.vps[i%len(w.vps)], dst}
	}
	for _, err := range e.QueryStream(context.Background(), pairSeq(pairs), 8) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// At most one tree per distinct destination cluster + one reverse tree
	// per distinct source — never one per window.
	distinctSrcs := make(map[netsim.Prefix]bool)
	for _, p := range pairs {
		distinctSrcs[p[0]] = true
	}
	st := e.CacheStats()
	if max := uint64(1 + len(distinctSrcs)); st.Builds > max {
		t.Fatalf("builds = %d over 8 windows, want <= %d (trees reused across windows)", st.Builds, max)
	}
	// A second identical stream is fully warm: zero new builds.
	for _, err := range e.QueryStream(context.Background(), pairSeq(pairs), 8) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st2 := e.CacheStats(); st2.Builds != st.Builds {
		t.Fatalf("second pass built %d new trees, want 0", st2.Builds-st.Builds)
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/feedback"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// UpstreamStructureResult reports the structural upstream-sharing
// experiment: reporting clients traceroute destinations the measurement
// campaign never probed, upload the hop lists, the ingest clusterizes
// them against the day-0 atlas, the aggregator votes tails across
// reporters, and the build folds the agreed structure into the day-0 ->
// day-1 delta. A client that never reported anything is then scored on
// *hop-level path accuracy* toward those destinations — the coverage
// claim of the paper's §5 loop made structural, not just scalar.
type UpstreamStructureResult struct {
	// Reporters is the number of reporting clients (distinct source
	// clusters); HiddenDsts how many campaign-invisible destinations they
	// probed; Uploads/RejectedUploads what their hop lists yielded at
	// ingest.
	Reporters, HiddenDsts, Uploads, RejectedUploads int
	// VotedPaths is the snapshot's voted tail count; AgreedPaths how many
	// cleared the per-link agreement bar; fold statistics follow.
	VotedPaths, AgreedPaths int
	Fold                    atlas.PathFoldStats
	// Pairs is the non-reporting client's held-out workload (one pair per
	// hidden destination with day-1 ground truth).
	Pairs int
	// AccBefore/AccAfter are the non-reporter's mean hop-level path
	// accuracy (Jaccard overlap between the predicted cluster path and
	// the clusterized ground-truth traceroute; unanswered pairs score 0)
	// after applying the plain day-roll delta vs the structure-folded one.
	AccBefore, AccAfter float64
	// AnsweredBefore/AnsweredAfter count pairs with any prediction.
	AnsweredBefore, AnsweredAfter int

	// Poisoning bound: one adversarial reporter (a single source cluster)
	// uploads a fabricated tail for every hidden destination.
	// FabricatedShipped counts fabricated links that survived agreement
	// and reached the folded atlas — the eval fails unless it is zero.
	FabricatedLinks, FabricatedShipped int
}

// UpstreamStructure runs the structural upstream experiment across days
// 0 -> 1. minReporters gates both the per-link agreement bar and, at 3+,
// buys the strict single-liar bound the eval asserts.
func UpstreamStructure(l *Lab, reporters, minReporters int) UpstreamStructureResult {
	d0, d1 := l.Day(0), l.Day(1)
	res := UpstreamStructureResult{}

	nonReporter := l.ValSrcs[0]
	reps := l.ValSrcs[1:]
	if reporters > 0 && len(reps) > reporters {
		reps = reps[:reporters]
	}
	res.Reporters = len(reps)

	// Hidden destinations: edge prefixes the campaign never targeted, so
	// neither day's atlas can place them — "destinations only reporters
	// could see". Cap the set to keep quick runs quick.
	hidden := hiddenDestinations(l, d0, d1, 48)
	res.HiddenDsts = len(hidden)

	resolve0 := atlasResolver(d0.Atlas)
	srcClusterOf := func(p netsim.Prefix) (int32, bool) {
		c, ok := d0.Atlas.PrefixCluster[p]
		return int32(c), ok
	}

	// Reporters probe the hidden destinations on day 0 and upload hop
	// lists; the ingest clusterizes each against the day-0 serving atlas
	// (exactly what /v1/observations does) and stores it under the
	// reporter's source cluster for agreement voting.
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	for _, r := range reps {
		srcCl, ok := srcClusterOf(r)
		if !ok {
			continue
		}
		for _, dst := range hidden {
			tr := d0.Meter.Traceroute(r, dst)
			hops := feedbackHops(tr.Hops)
			path, linkMS, err := feedback.ClusterizeHops(hops, dst, resolve0)
			if err != nil || len(path) < 2 {
				res.RejectedUploads++
				continue
			}
			agg.RecordPath(srcCl, dst, path, linkMS)
			res.Uploads++
		}
	}

	// The adversarial reporter: one source cluster no honest reporter
	// uses, fabricating for every hidden destination a tail over real
	// cluster IDs joined by a link that does not exist — the most a
	// structure poisoner can attempt within the wire format.
	liar := int32(1 << 30)
	fa, fb := fabricatedLink(d1.Atlas)
	res.FabricatedLinks = len(hidden)
	for _, dst := range hidden {
		agg.RecordPath(liar, dst, []cluster.ClusterID{fa, fb}, []float64{1})
	}

	snap := agg.Snapshot(0)
	res.VotedPaths = len(snap.Paths)
	agreed := snap.AgreedPaths(minReporters)
	res.AgreedPaths = len(agreed)

	plainDelta := atlas.Diff(d0.Atlas, d1.Atlas)
	folded := d1.Atlas.Clone()
	res.Fold = atlas.FoldPaths(folded, agreed)
	obsDelta := atlas.Diff(d0.Atlas, folded)

	if folded.LinkAt(fa, fb) >= 0 {
		res.FabricatedShipped = res.FabricatedLinks
	}

	// Score the non-reporter's hop-level accuracy toward the hidden
	// destinations against day-1 ground truth. Truth is the clusterized
	// ground-truth traceroute under the folded day-1 mapping (a superset
	// of the plain one, so both predictors are scored against the same
	// reference).
	resolveTruth := atlasResolver(folded)
	type pair struct {
		dst   netsim.Prefix
		truth map[cluster.ClusterID]bool
	}
	var work []pair
	for _, dst := range hidden {
		tr := d1.Meter.Traceroute(nonReporter, dst)
		truth := truthClusters(feedbackHops(tr.Hops), dst, resolveTruth)
		if len(truth) < 2 {
			continue
		}
		work = append(work, pair{dst: dst, truth: truth})
	}
	res.Pairs = len(work)

	score := func(d *atlas.Delta) (float64, int) {
		a := d0.Atlas.Clone()
		a.Apply(d)
		client := inano.FromAtlas(a)
		sum, answered := 0.0, 0
		for _, w := range work {
			pred := client.PredictForward(nonReporter, w.dst)
			if !pred.Found {
				continue
			}
			answered++
			sum += jaccardClusters(pred.Clusters, w.truth)
		}
		if len(work) == 0 {
			return 0, 0
		}
		return sum / float64(len(work)), answered
	}
	res.AccBefore, res.AnsweredBefore = score(plainDelta)
	res.AccAfter, res.AnsweredAfter = score(obsDelta)
	return res
}

// hiddenDestinations picks edge prefixes neither day's atlas can place —
// destinations invisible to the measurement campaign.
func hiddenDestinations(l *Lab, d0, d1 *DayData, max int) []netsim.Prefix {
	var out []netsim.Prefix
	for _, p := range l.W.EdgePrefixes() {
		if _, ok := d0.Atlas.PrefixCluster[p]; ok {
			continue
		}
		if _, ok := d1.Atlas.PrefixCluster[p]; ok {
			continue
		}
		out = append(out, p)
		if len(out) >= max {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// atlasResolver maps a hop interface to its cluster the way the serving
// daemon's Snapshot.HopCluster does: the interface-prefix table first,
// the end-host attachment table as fallback.
func atlasResolver(a *atlas.Atlas) func(netsim.IP) (int32, bool) {
	return func(ip netsim.IP) (int32, bool) {
		p := netsim.PrefixOf(ip)
		if c, ok := a.IfaceCluster[p]; ok {
			return int32(c), true
		}
		c, ok := a.PrefixCluster[p]
		return int32(c), ok
	}
}

// feedbackHops converts measured trace hops to the wire-format hop type.
func feedbackHops(hops []trace.Hop) []feedback.Hop {
	out := make([]feedback.Hop, len(hops))
	for i, h := range hops {
		out[i] = feedback.Hop{IP: h.IP, RTTMS: h.RTTMS}
	}
	return out
}

// truthClusters clusterizes a ground-truth traceroute leniently: every
// mappable responsive infrastructure hop contributes its cluster (gaps
// and unknown hops are skipped, not rejected — truth is a reference set,
// not an upload to validate).
func truthClusters(hops []feedback.Hop, dst netsim.Prefix, resolve func(netsim.IP) (int32, bool)) map[cluster.ClusterID]bool {
	out := make(map[cluster.ClusterID]bool)
	for _, h := range hops {
		if h.IP == 0 || netsim.PrefixOf(h.IP) == dst {
			continue
		}
		if c, ok := resolve(h.IP); ok {
			out[cluster.ClusterID(c)] = true
		}
	}
	return out
}

// jaccardClusters scores a predicted cluster path against the truth set.
func jaccardClusters(pred []cluster.ClusterID, truth map[cluster.ClusterID]bool) float64 {
	if len(pred) == 0 || len(truth) == 0 {
		return 0
	}
	inter := 0
	predSet := make(map[cluster.ClusterID]bool, len(pred))
	for _, c := range pred {
		predSet[c] = true
	}
	for c := range predSet {
		if truth[c] {
			inter++
		}
	}
	union := len(truth) + len(predSet) - inter
	return float64(inter) / float64(union)
}

// fabricatedLink picks a directed cluster pair absent from the atlas —
// the liar's forged structure. Deterministic: the two highest cluster IDs
// with no link between them.
func fabricatedLink(a *atlas.Atlas) (cluster.ClusterID, cluster.ClusterID) {
	n := cluster.ClusterID(a.NumClusters)
	for x := n - 1; x >= 1; x-- {
		for y := x - 1; y >= 0; y-- {
			if a.LinkAt(x, y) < 0 {
				return x, y
			}
		}
	}
	return 0, 0
}

// Render formats the structural upstream experiment.
func (r UpstreamStructureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Upstream structure: %d reporters x %d hidden destinations -> %d uploads (%d rejected)\n",
		r.Reporters, r.HiddenDsts, r.Uploads, r.RejectedUploads)
	fmt.Fprintf(&b, "  %d voted tails, %d agreed; folded: %d new links, %d refreshed, %d measured, %d new attachments (%d paths skipped)\n",
		r.VotedPaths, r.AgreedPaths, r.Fold.NewLinks, r.Fold.RefreshedLinks, r.Fold.MeasuredLinks, r.Fold.NewAttach, r.Fold.PathsSkipped)
	fmt.Fprintf(&b, "  non-reporting client, %d pairs vs day-1 truth (hop-level Jaccard):\n", r.Pairs)
	fmt.Fprintf(&b, "  path accuracy, plain delta     %.3f (answered %d/%d)\n", r.AccBefore, r.AnsweredBefore, r.Pairs)
	fmt.Fprintf(&b, "  path accuracy, folded delta    %.3f (answered %d/%d)\n", r.AccAfter, r.AnsweredAfter, r.Pairs)
	if r.AccBefore > 0 {
		fmt.Fprintf(&b, "  accuracy gain: %.1f%%\n", 100*(r.AccAfter-r.AccBefore)/r.AccBefore)
	}
	fmt.Fprintf(&b, "  single liar: %d fabricated links uploaded, %d shipped\n", r.FabricatedLinks, r.FabricatedShipped)
	return b.String()
}

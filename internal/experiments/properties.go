package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"inano/internal/core"
	"inano/internal/netsim"
	"inano/internal/pathcomp"
	"inano/internal/vivaldi"
)

// ErrorCDF is one technique's absolute-error distribution.
type ErrorCDF struct {
	Name   string
	Errors []float64 // sorted ascending
}

// At returns the error at quantile p.
func (c ErrorCDF) At(p float64) float64 { return quantile(c.Errors, p) }

// FracBelow returns the CDF value at err.
func (c ErrorCDF) FracBelow(err float64) float64 { return cdfFrac(c.Errors, err) }

// Fig6Result reproduces Fig. 6: latency estimation error CDFs for iNano,
// iPlane path composition, and Vivaldi.
type Fig6Result struct {
	CDFs  []ErrorCDF
	Pairs int
}

// Fig7Result reproduces Fig. 7: per-source overlap between the predicted
// and actual 10 closest destinations.
type Fig7Result struct {
	Name         []string
	Intersection [][]int // per technique, per source
}

// Fig8Result reproduces Fig. 8: loss-rate estimation error CDFs.
type Fig8Result struct {
	CDFs  []ErrorCDF
	Pairs int
}

// propertyHarness bundles the three predictors scored in Figs. 6-8.
type propertyHarness struct {
	lab    *Lab
	dd     *DayData
	engine *core.Engine
	pa     *pathcomp.Atlas
	space  *vivaldi.Space
}

func newPropertyHarness(l *Lab) *propertyHarness {
	dd := l.Day(0)
	h := &propertyHarness{
		lab:    l,
		dd:     dd,
		engine: core.New(dd.Atlas, core.INanoOptions()),
		pa:     dd.PathAtlas(),
	}
	// Vivaldi trains on the validation hosts plus their destinations with
	// clean ground-truth RTTs — a generous version of the baseline.
	hostSet := make(map[netsim.Prefix]bool)
	for _, vp := range dd.Validation {
		hostSet[vp.Src] = true
		hostSet[vp.Dst] = true
	}
	hosts := make([]netsim.Prefix, 0, len(hostSet))
	for p := range hostSet {
		hosts = append(hosts, p)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	if len(hosts) > 400 {
		hosts = hosts[:400]
	}
	h.space = vivaldi.Train(hosts, func(a, b netsim.Prefix) (float64, bool) {
		return dd.Day.RTT(a, b)
	}, vivaldi.DefaultParams(l.Cfg.Seed))
	return h
}

func (h *propertyHarness) estimates(p VPair) (inano, pc, viv float64, okI, okP, okV bool) {
	info := h.engine.Query(p.Src, p.Dst)
	inano, okI = info.RTTMS, info.Found
	pc, _, okP = h.pa.Query(p.Src, p.Dst, pathcomp.Options{})
	viv, okV = h.space.Estimate(p.Src, p.Dst)
	return
}

// Fig6LatencyError scores RTT estimates on the validation pairs.
func Fig6LatencyError(l *Lab) Fig6Result {
	h := newPropertyHarness(l)
	var eI, eP, eV []float64
	n := 0
	for _, vp := range h.dd.Validation {
		truth, ok := h.dd.Day.RTT(vp.Src, vp.Dst)
		if !ok {
			continue
		}
		n++
		inano, pc, viv, okI, okP, okV := h.estimates(vp)
		if okI {
			eI = append(eI, math.Abs(inano-truth))
		}
		if okP {
			eP = append(eP, math.Abs(pc-truth))
		}
		if okV {
			eV = append(eV, math.Abs(viv-truth))
		}
	}
	sort.Float64s(eI)
	sort.Float64s(eP)
	sort.Float64s(eV)
	return Fig6Result{
		Pairs: n,
		CDFs: []ErrorCDF{
			{Name: "iNano", Errors: eI},
			{Name: "path composition", Errors: eP},
			{Name: "Vivaldi", Errors: eV},
		},
	}
}

// Render formats Fig. 6 as quantile rows.
func (r Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: latency estimation error (ms) over %d pairs\n", r.Pairs)
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s %10s\n", "technique", "p25", "median", "p75", "p90", "<=20ms")
	for _, c := range r.CDFs {
		fmt.Fprintf(&b, "%-18s %8.1f %8.1f %8.1f %8.1f %9.0f%%\n",
			c.Name, c.At(0.25), c.At(0.5), c.At(0.75), c.At(0.9), c.FracBelow(20)*100)
	}
	fmt.Fprintf(&b, "(paper medians: iNano 11ms, path composition 6ms, Vivaldi 20ms; iNano best in tail)\n")
	return b.String()
}

// Fig7ClosestRanking scores each technique's ability to identify the 10
// closest destinations per source.
func Fig7ClosestRanking(l *Lab) Fig7Result {
	h := newPropertyHarness(l)
	// Group validation destinations per source.
	bySrc := make(map[netsim.Prefix][]netsim.Prefix)
	for _, vp := range h.dd.Validation {
		bySrc[vp.Src] = append(bySrc[vp.Src], vp.Dst)
	}
	res := Fig7Result{Name: []string{"iNano", "path composition", "Vivaldi"}}
	res.Intersection = make([][]int, 3)
	srcs := make([]netsim.Prefix, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		dsts := bySrc[src]
		if len(dsts) < 12 {
			continue
		}
		trueTop := topK(dsts, 10, func(d netsim.Prefix) (float64, bool) {
			return h.dd.Day.RTT(src, d)
		})
		preds := []func(netsim.Prefix) (float64, bool){
			func(d netsim.Prefix) (float64, bool) {
				info := h.engine.Query(src, d)
				return info.RTTMS, info.Found
			},
			func(d netsim.Prefix) (float64, bool) {
				rtt, _, ok := h.pa.Query(src, d, pathcomp.Options{})
				return rtt, ok
			},
			func(d netsim.Prefix) (float64, bool) { return h.space.Estimate(src, d) },
		}
		for t, pred := range preds {
			predTop := topK(dsts, 10, pred)
			res.Intersection[t] = append(res.Intersection[t], intersect(trueTop, predTop))
		}
	}
	return res
}

func topK(dsts []netsim.Prefix, k int, metric func(netsim.Prefix) (float64, bool)) []netsim.Prefix {
	type sc struct {
		p netsim.Prefix
		v float64
	}
	var ss []sc
	for _, d := range dsts {
		if v, ok := metric(d); ok {
			ss = append(ss, sc{d, v})
		}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].v != ss[j].v {
			return ss[i].v < ss[j].v
		}
		return ss[i].p < ss[j].p
	})
	if len(ss) > k {
		ss = ss[:k]
	}
	out := make([]netsim.Prefix, len(ss))
	for i, s := range ss {
		out[i] = s.p
	}
	return out
}

func intersect(a, b []netsim.Prefix) int {
	set := make(map[netsim.Prefix]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	n := 0
	for _, p := range b {
		if set[p] {
			n++
		}
	}
	return n
}

// Render formats Fig. 7.
func (r Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: overlap of predicted vs actual 10 closest destinations per source\n")
	for t, name := range r.Name {
		xs := r.Intersection[t]
		if len(xs) == 0 {
			fmt.Fprintf(&b, "%-18s (no sources)\n", name)
			continue
		}
		sum := 0
		for _, x := range xs {
			sum += x
		}
		fs := make([]float64, len(xs))
		for i, x := range xs {
			fs[i] = float64(x)
		}
		fmt.Fprintf(&b, "%-18s mean %.1f/10  median %.0f/10  >=7: %.0f%% of sources\n",
			name, float64(sum)/float64(len(xs)), quantile(fs, 0.5), (1-cdfFrac(fs, 6.99))*100)
	}
	fmt.Fprintf(&b, "(paper: iNano ~ path-based, both clearly above Vivaldi)\n")
	return b.String()
}

// Fig8LossError scores loss-rate estimates (coordinates cannot predict
// loss, so only iNano and path composition compete).
func Fig8LossError(l *Lab) Fig8Result {
	h := newPropertyHarness(l)
	var eI, eP []float64
	n := 0
	for _, vp := range h.dd.Validation {
		truth, ok := h.dd.Day.RTLoss(vp.Src, vp.Dst)
		if !ok {
			continue
		}
		n++
		info := h.engine.Query(vp.Src, vp.Dst)
		if info.Found {
			eI = append(eI, math.Abs(info.LossRate-truth))
		}
		if _, loss, ok := h.pa.Query(vp.Src, vp.Dst, pathcomp.Options{}); ok {
			eP = append(eP, math.Abs(loss-truth))
		}
	}
	sort.Float64s(eI)
	sort.Float64s(eP)
	return Fig8Result{
		Pairs: n,
		CDFs: []ErrorCDF{
			{Name: "iNano", Errors: eI},
			{Name: "path composition", Errors: eP},
		},
	}
}

// Render formats Fig. 8.
func (r Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: loss-rate estimation error over %d pairs\n", r.Pairs)
	fmt.Fprintf(&b, "%-18s %8s %8s %10s\n", "technique", "median", "p90", "<=0.10")
	for _, c := range r.CDFs {
		fmt.Fprintf(&b, "%-18s %8.3f %8.3f %9.0f%%\n", c.Name, c.At(0.5), c.At(0.9), c.FracBelow(0.10)*100)
	}
	fmt.Fprintf(&b, "(paper: >80%% of paths within 0.10 for both; iNano approximates path-based)\n")
	return b.String()
}

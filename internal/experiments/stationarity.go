package experiments

import (
	"fmt"
	"strings"

	"inano/internal/netsim"
)

// Fig4Result reproduces Fig. 4: the distribution of PoP-level path
// similarity between the same (vantage point, destination) pairs measured
// on consecutive days, using the Jaccard similarity on the sets of PoPs.
type Fig4Result struct {
	// Bins[i] counts paths with similarity in [i*0.05, (i+1)*0.05); the
	// last bin includes 1.0.
	Bins      [20]int
	Total     int
	FracGE75  float64
	FracGE90  float64
	Identical float64
}

// Fig4PathStationarity compares day-0 and day-1 measured paths.
func Fig4PathStationarity(l *Lab) Fig4Result {
	d0 := l.Day(0)
	d1 := l.Day(1)
	// Index day-1 traces by (src,dst).
	idx := make(map[uint64]int, len(d1.AllTraces))
	for i, tr := range d1.AllTraces {
		idx[uint64(tr.Src)<<32|uint64(tr.Dst)] = i
	}
	var res Fig4Result
	for _, tr0 := range d0.AllTraces {
		j, ok := idx[uint64(tr0.Src)<<32|uint64(tr0.Dst)]
		if !ok {
			continue
		}
		tr1 := d1.AllTraces[j]
		if len(tr0.TruePoPs) == 0 || len(tr1.TruePoPs) == 0 {
			continue
		}
		s := jaccard(tr0.TruePoPs, tr1.TruePoPs)
		bin := int(s / 0.05)
		if bin >= len(res.Bins) {
			bin = len(res.Bins) - 1
		}
		res.Bins[bin]++
		res.Total++
		if s >= 0.75 {
			res.FracGE75++
		}
		if s >= 0.9 {
			res.FracGE90++
		}
		if s == 1 {
			res.Identical++
		}
	}
	if res.Total > 0 {
		res.FracGE75 /= float64(res.Total)
		res.FracGE90 /= float64(res.Total)
		res.Identical /= float64(res.Total)
	}
	return res
}

// jaccard computes set similarity of two PoP sequences (order ignored, as
// in the paper's similarity metric [22]).
func jaccard(a, b []netsim.PoPID) float64 {
	sa := make(map[netsim.PoPID]bool, len(a))
	for _, p := range a {
		sa[p] = true
	}
	sb := make(map[netsim.PoPID]bool, len(b))
	for _, p := range b {
		sb[p] = true
	}
	inter := 0
	for p := range sa {
		if sb[p] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Render formats the Fig. 4 histogram.
func (r Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: PoP-level path similarity across consecutive days (%d paths)\n", r.Total)
	for i, n := range r.Bins {
		lo := float64(i) * 0.05
		frac := 0.0
		if r.Total > 0 {
			frac = float64(n) / float64(r.Total)
		}
		fmt.Fprintf(&b, "  [%.2f,%.2f%s %6.3f %s\n", lo, lo+0.05, closer(i), frac, bar(frac))
	}
	fmt.Fprintf(&b, "similarity >=0.75: %.0f%% (paper 91%%)   >=0.9: %.0f%% (paper 68%%)   identical: %.0f%% (paper 50%%)\n",
		r.FracGE75*100, r.FracGE90*100, r.Identical*100)
	return b.String()
}

func closer(i int) string {
	if i == 19 {
		return "]"
	}
	return ")"
}

func bar(frac float64) string {
	n := int(frac * 60)
	return strings.Repeat("#", n)
}

// LossStationarityResult reproduces §6.2.2: the fraction of initially lossy
// paths that remain lossy after 6, 12, and 24 hours.
type LossStationarityResult struct {
	LossyPairs   int
	StillLossy6  float64
	StillLossy12 float64
	StillLossy24 float64
}

// LossStationarity probes paths for loss at day 0, then re-evaluates the
// same paths at quarter-day offsets (the simulator churns loss rates on
// quarter-day boundaries).
func LossStationarity(l *Lab, maxPairs int) LossStationarityResult {
	dd := l.Day(0)
	day := dd.Day
	var res LossStationarityResult
	lossyAt := func(src, dst netsim.Prefix, quarter int) bool {
		fwd, ok := day.Route(src, dst)
		if !ok {
			return false
		}
		return day.PathLossQuarter(fwd, quarter) >= 0.005
	}
	checked := 0
	var still6, still12, still24 int
	for i, src := range l.VPs {
		for k := 0; k < 40 && checked < maxPairs; k++ {
			dst := l.Targets[(i*53+k*7)%len(l.Targets)]
			if dst == src {
				continue
			}
			if !lossyAt(src, dst, 0) {
				continue
			}
			checked++
			if lossyAt(src, dst, 1) {
				still6++
			}
			if lossyAt(src, dst, 2) {
				still12++
			}
			if lossyAt(src, dst, 4) {
				still24++
			}
		}
	}
	res.LossyPairs = checked
	if checked > 0 {
		res.StillLossy6 = float64(still6) / float64(checked)
		res.StillLossy12 = float64(still12) / float64(checked)
		res.StillLossy24 = float64(still24) / float64(checked)
	}
	return res
}

// Render formats the loss stationarity numbers.
func (r LossStationarityResult) Render() string {
	return fmt.Sprintf(
		"§6.2.2: loss stationarity over %d initially lossy paths\n"+
			"  still lossy after  6h: %.0f%% (paper 66%%)\n"+
			"  still lossy after 12h: %.0f%% (paper 53%%)\n"+
			"  still lossy after 24h: %.0f%% (paper 53%%)\n",
		r.LossyPairs, r.StillLossy6*100, r.StillLossy12*100, r.StillLossy24*100)
}

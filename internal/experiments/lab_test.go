package experiments

import (
	"bytes"
	"testing"

	"inano/internal/netsim"
)

func TestLabDeterminism(t *testing.T) {
	a := NewLab(QuickConfig(7))
	b := NewLab(QuickConfig(7))
	var ea, eb bytes.Buffer
	if err := a.Day(0).Atlas.Encode(&ea); err != nil {
		t.Fatal(err)
	}
	if err := b.Day(0).Atlas.Encode(&eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Bytes(), eb.Bytes()) {
		t.Fatal("two labs with the same config built different day-0 atlases")
	}
	if len(a.ValSrcs) != len(b.ValSrcs) {
		t.Fatalf("validation source counts differ: %d vs %d", len(a.ValSrcs), len(b.ValSrcs))
	}
}

// TestValidationSplit checks the §6.3 methodology invariants: held-out
// pairs never reach the atlas, client traces come only from validation
// sources and are never held out, and the planes partition AllTraces.
func TestValidationSplit(t *testing.T) {
	l := testLab
	dd := l.Day(0)
	if len(dd.Validation) == 0 || len(dd.ClientTraces) == 0 || len(dd.AtlasTraces) == 0 {
		t.Fatalf("degenerate split: %d validation, %d client, %d atlas",
			len(dd.Validation), len(dd.ClientTraces), len(dd.AtlasTraces))
	}
	inAtlas := make(map[VPair]bool, len(dd.AtlasTraces))
	for _, tr := range dd.AtlasTraces {
		inAtlas[VPair{tr.Src, tr.Dst}] = true
		if l.isValSrc(tr.Src) {
			t.Fatalf("validation source %v leaked into the TO_DST plane", tr.Src)
		}
	}
	for _, vp := range dd.Validation {
		if !l.isValSrc(vp.Src) {
			t.Fatalf("held-out pair from non-validation source %v", vp.Src)
		}
		if !l.heldOut(vp.Src, vp.Dst) {
			t.Fatalf("pair %v not selected by the holdout hash", vp)
		}
		if inAtlas[vp] {
			t.Fatalf("held-out pair %v also fed the atlas", vp)
		}
	}
	for _, tr := range dd.ClientTraces {
		if !l.isValSrc(tr.Src) {
			t.Fatalf("client trace from non-validation source %v", tr.Src)
		}
		if l.heldOut(tr.Src, tr.Dst) {
			t.Fatalf("held-out trace %v->%v leaked into the FROM_SRC plane", tr.Src, tr.Dst)
		}
	}
	// The three buckets partition the campaign, modulo self-probes
	// (src == dst) among the held-out traces, which are dropped.
	selfHeld := 0
	for _, tr := range dd.AllTraces {
		if l.isValSrc(tr.Src) && l.heldOut(tr.Src, tr.Dst) && tr.Src == tr.Dst {
			selfHeld++
		}
	}
	if got := len(dd.Validation) + len(dd.ClientTraces) + len(dd.AtlasTraces) + selfHeld; got != len(dd.AllTraces) {
		t.Fatalf("split does not partition the campaign: %d+%d+%d+%d != %d",
			len(dd.Validation), len(dd.ClientTraces), len(dd.AtlasTraces), selfHeld, len(dd.AllTraces))
	}
}

func TestHeldOutFraction(t *testing.T) {
	l := testLab
	n, held := 0, 0
	for _, src := range l.ValSrcs {
		for _, dst := range l.Targets {
			n++
			if l.heldOut(src, dst) {
				held++
			}
		}
	}
	frac := float64(held) / float64(n)
	want := 1 / float64(l.Cfg.HoldoutMod)
	if frac < want/2 || frac > want*2 {
		t.Fatalf("holdout fraction %.3f far from 1/%d", frac, l.Cfg.HoldoutMod)
	}
}

func TestDayCaching(t *testing.T) {
	l := testLab
	if l.Day(0) != l.Day(0) {
		t.Fatal("Day(0) rebuilt instead of returning the cached day")
	}
	if l.Day(0) == l.Day(1) {
		t.Fatal("distinct days share a DayData")
	}
}

func TestTargetsIncludeVPs(t *testing.T) {
	l := testLab
	set := make(map[netsim.Prefix]bool, len(l.Targets))
	for _, p := range l.Targets {
		set[p] = true
	}
	for _, vp := range l.VPs {
		if !set[vp] {
			t.Fatalf("vantage point %v missing from the target list", vp)
		}
	}
}

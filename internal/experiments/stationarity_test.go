package experiments

import (
	"strings"
	"testing"

	"inano/internal/netsim"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []netsim.PoPID
		want float64
	}{
		{nil, nil, 1},
		{[]netsim.PoPID{1, 2}, []netsim.PoPID{1, 2}, 1},
		{[]netsim.PoPID{1, 2}, []netsim.PoPID{3, 4}, 0},
		{[]netsim.PoPID{1, 2, 3}, []netsim.PoPID{2, 3, 4}, 0.5},
		// Duplicates collapse: {1,1,2} is the set {1,2}.
		{[]netsim.PoPID{1, 1, 2}, []netsim.PoPID{1, 2}, 1},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFig4RenderContents(t *testing.T) {
	r := Fig4PathStationarity(testLab)
	out := r.Render()
	for _, want := range []string{"Fig 4", "similarity >=0.75", "identical:", "[0.95,1.00]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	sum := 0
	for _, n := range r.Bins {
		if n < 0 {
			t.Fatalf("negative bin count in %v", r.Bins)
		}
		sum += n
	}
	if sum != r.Total {
		t.Fatalf("bins sum to %d but Total is %d", sum, r.Total)
	}
	for _, f := range []float64{r.FracGE75, r.FracGE90, r.Identical} {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of [0,1]", f)
		}
	}
}

func TestLossStationarityMonotone(t *testing.T) {
	r := LossStationarity(testLab, 800)
	if r.LossyPairs == 0 {
		t.Fatal("no initially lossy pairs found")
	}
	for _, f := range []float64{r.StillLossy6, r.StillLossy12, r.StillLossy24} {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of [0,1]", f)
		}
	}
	out := r.Render()
	for _, want := range []string{"loss stationarity", "6h", "12h", "24h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLossStationarityCapsPairs(t *testing.T) {
	r := LossStationarity(testLab, 3)
	if r.LossyPairs > 3 {
		t.Fatalf("maxPairs ignored: checked %d pairs", r.LossyPairs)
	}
}

package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	inano "inano"
	"inano/internal/netsim"
	"inano/internal/voip"
)

func mosOf(onewayMS, loss float64) float64 { return voip.MOS(onewayMS, loss) }

// Fig11Result reproduces Fig. 11: the fraction of failure cases still
// unreachable after trying N detours, for iNano's disjointness ranking
// versus random detour choice (log-2 y axis in the paper).
type Fig11Result struct {
	Cases             int
	MaxDetours        int
	UnreachableINano  []float64 // index N-1
	UnreachableRandom []float64
}

// Fig11Detour injects AS-edge failures and measures recovery. For each
// trial a destination and an AS-level edge on some sources' paths fail;
// a source is blocked when its ground-truth path crosses the failed edge,
// and a detour d rescues it when neither the src->d nor the d->dst path
// crosses it. Following the paper, a trial counts only when at least 10%
// of sources are blocked and at least 10% are not.
func Fig11Detour(l *Lab, trials, maxDetours int) Fig11Result {
	dd := l.Day(0)
	client := inano.FromAtlas(dd.Atlas)
	rng := rand.New(rand.NewSource(l.Cfg.Seed * 31337))
	srcs := l.VPs
	res := Fig11Result{
		MaxDetours:        maxDetours,
		UnreachableINano:  make([]float64, maxDetours),
		UnreachableRandom: make([]float64, maxDetours),
	}
	blockedTotal := 0

	usesEdge := func(src, dst netsim.Prefix, a, b netsim.ASN) bool {
		path, ok := l.W.TrueASPath(0, src, dst)
		if !ok {
			return true // unreachable counts as failed
		}
		for i := 0; i+1 < len(path); i++ {
			if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
				return true
			}
		}
		return false
	}

	for trial := 0; trial < trials; trial++ {
		dst := l.Targets[rng.Intn(len(l.Targets))]
		// Candidate failures: AS edges on the sources' paths to dst.
		edgeCount := make(map[uint64]int)
		for _, s := range srcs {
			if s == dst {
				continue
			}
			if p, ok := l.W.TrueASPath(0, s, dst); ok {
				for i := 0; i+1 < len(p); i++ {
					edgeCount[netsim.ASPairKey(p[i], p[i+1])]++
				}
			}
		}
		var failedEdge uint64
		for e, n := range edgeCount {
			// The failure must partition the sources: some blocked,
			// some not.
			if n >= len(srcs)/10 && n <= len(srcs)*9/10 {
				if failedEdge == 0 || e < failedEdge {
					failedEdge = e
				}
			}
		}
		if failedEdge == 0 {
			continue
		}
		fa, fb := netsim.ASN(failedEdge>>32), netsim.ASN(failedEdge&0xffffffff)

		for _, src := range srcs {
			if src == dst || !usesEdge(src, dst, fa, fb) {
				continue
			}
			blockedTotal++
			// Candidate detours: the other sources.
			var cands []netsim.Prefix
			for _, d := range srcs {
				if d != src && d != dst {
					cands = append(cands, d)
				}
			}
			works := func(d netsim.Prefix) bool {
				return !usesEdge(src, d, fa, fb) && !usesEdge(d, dst, fa, fb)
			}
			// iNano: disjointness-ranked detours.
			ranked := client.RankDetours(src, dst, cands)
			rescuedAt := maxDetours + 1
			for i := 0; i < len(ranked) && i < maxDetours; i++ {
				if works(ranked[i]) {
					rescuedAt = i + 1
					break
				}
			}
			for n := 1; n <= maxDetours; n++ {
				if rescuedAt > n {
					res.UnreachableINano[n-1]++
				}
			}
			// Random detours.
			perm := rng.Perm(len(cands))
			rescuedAt = maxDetours + 1
			for i := 0; i < len(perm) && i < maxDetours; i++ {
				if works(cands[perm[i]]) {
					rescuedAt = i + 1
					break
				}
			}
			for n := 1; n <= maxDetours; n++ {
				if rescuedAt > n {
					res.UnreachableRandom[n-1]++
				}
			}
		}
	}
	res.Cases = blockedTotal
	if blockedTotal > 0 {
		for i := range res.UnreachableINano {
			res.UnreachableINano[i] /= float64(blockedTotal)
			res.UnreachableRandom[i] /= float64(blockedTotal)
		}
	}
	return res
}

// Render formats Fig. 11.
func (r Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: fraction of %d failure cases still unreachable after N detours\n", r.Cases)
	fmt.Fprintf(&b, "%4s %12s %12s %8s\n", "N", "iNano", "random", "ratio")
	for n := 1; n <= r.MaxDetours; n++ {
		in, rd := r.UnreachableINano[n-1], r.UnreachableRandom[n-1]
		ratio := 0.0
		if in > 0 {
			ratio = rd / in
		}
		fmt.Fprintf(&b, "%4d %11.1f%% %11.1f%% %7.1fx\n", n, in*100, rd*100, ratio)
	}
	fmt.Fprintf(&b, "(paper: iNano roughly halves unreachability vs random at equal N; 5 detours: 2%% vs 4%%)\n")
	return b.String()
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	inano "inano"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// FeedbackResult reports the measurement-feedback-loop experiment: a
// client replays ground-truth observations for its workload, the
// corrective scheduler spends its traceroute budget on the worst
// mispredictions, and the mean prediction error is compared before and
// after (§4.3.1's claim that a small corrective budget measurably patches
// the local atlas).
type FeedbackResult struct {
	// Pairs is the replayed workload size (held-out validation pairs with
	// ground-truth RTTs).
	Pairs int
	// Rounds and Budget shape the corrective spend.
	Rounds, Budget int
	// Probes and Merged account the corrective traceroutes actually
	// issued and the atlas changes they contributed.
	Probes, Merged int
	// ErrBefore/ErrAfter are the mean capped relative RTT errors over the
	// workload (unpredicted pairs score 1.0), before and after correction.
	ErrBefore, ErrAfter float64
	// AnsweredBefore/AnsweredAfter count pairs with a prediction.
	AnsweredBefore, AnsweredAfter int
}

// FeedbackLoop runs the feedback experiment on day 0: the validation
// sources' held-out pairs (paths the atlas never saw end-to-end) are the
// workload, the simulator's true RTTs are the observations, and the
// corrective prober measures the same synthetic world the atlas was built
// from.
func FeedbackLoop(l *Lab, budget, rounds int) FeedbackResult {
	dd := l.Day(0)
	client := inano.FromAtlas(dd.Atlas.Clone())
	prober := feedback.SimProber{Meter: dd.Meter}

	type obs struct {
		src, dst netsim.Prefix
		trueRTT  float64
	}
	var work []obs
	for _, vp := range dd.Validation {
		if rtt, ok := l.W.TrueRTT(0, vp.Src, vp.Dst); ok {
			work = append(work, obs{vp.Src, vp.Dst, rtt})
		}
	}
	res := FeedbackResult{Pairs: len(work), Rounds: rounds, Budget: budget}
	if len(work) == 0 {
		return res
	}

	meanErr := func() (float64, int) {
		sum, answered := 0.0, 0
		for _, o := range work {
			info := client.QueryPrefix(o.src, o.dst)
			if info.Found {
				answered++
			}
			sum += feedback.RelErr(info.RTTMS, o.trueRTT, info.Found)
		}
		return sum / float64(len(work)), answered
	}
	res.ErrBefore, res.AnsweredBefore = meanErr()

	cfg := feedback.Config{
		Budget: budget,
		// The replay is dense, so a destination observed once is eligible
		// and every probed destination stays off the schedule for the
		// whole run (each round's budget reaches fresh destinations).
		MinSamples: 1,
		MinError:   0.05,
		Cooldown:   time.Hour,
	}
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, o := range work {
			client.ObserveRTT(o.src.HostIP(), o.dst.HostIP(), o.trueRTT)
		}
		round := client.CorrectOnce(ctx, prober, cfg)
		res.Probes += round.Probes
		res.Merged += round.Merged
	}
	res.ErrAfter, res.AnsweredAfter = meanErr()
	return res
}

// Render formats the feedback experiment.
func (r FeedbackResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Feedback loop: %d held-out pairs, %d rounds x %d corrective probes\n",
		r.Pairs, r.Rounds, r.Budget)
	fmt.Fprintf(&b, "  probes issued %d, atlas changes merged %d\n", r.Probes, r.Merged)
	fmt.Fprintf(&b, "  mean RTT error before %.3f (answered %d/%d)\n", r.ErrBefore, r.AnsweredBefore, r.Pairs)
	fmt.Fprintf(&b, "  mean RTT error after  %.3f (answered %d/%d)\n", r.ErrAfter, r.AnsweredAfter, r.Pairs)
	if r.ErrBefore > 0 {
		fmt.Fprintf(&b, "  error reduction: %.1f%%\n", 100*(r.ErrBefore-r.ErrAfter)/r.ErrBefore)
	}
	return b.String()
}

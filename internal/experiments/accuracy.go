package experiments

import (
	"fmt"
	"strings"

	"inano/internal/cluster"
	"inano/internal/core"
	"inano/internal/netsim"
	"inano/internal/pathcomp"
	"inano/internal/routescope"
)

// AccuracyBar is one technique's AS-path prediction accuracy (a bar of
// Fig. 5): the fraction of validation paths predicted exactly and the
// fraction whose AS-path length was right.
type AccuracyBar struct {
	Name       string
	Exact      float64
	LengthOnly float64
	Answered   float64 // fraction of pairs for which a prediction existed
}

// Fig5Result reproduces Fig. 5, the technique-by-technique ablation, plus
// the §6.3.1 coverage bound (the fraction of validation paths whose links
// the atlas saw at all, which caps any link-composition technique).
type Fig5Result struct {
	Bars          []AccuracyBar
	Pairs         int
	CoverageBound float64
}

// Fig5Accuracy scores every predictor on the held-out validation pairs.
func Fig5Accuracy(l *Lab) Fig5Result {
	dd := l.Day(0)
	truth := make([][]netsim.ASN, 0, len(dd.Validation))
	pairs := make([]VPair, 0, len(dd.Validation))
	for _, vp := range dd.Validation {
		t, ok := dd.Day.ASPath(l.W.Top.PrefixOrigin[vp.Src], vp.Dst)
		if !ok {
			continue
		}
		truth = append(truth, t)
		pairs = append(pairs, vp)
	}
	res := Fig5Result{Pairs: len(pairs)}

	// RouteScope baseline: AS-graph-only valley-free shortest paths with
	// Gao-inferred relationships, one random choice per pair.
	paths := dd.ObservedASPaths(l.W.Top.PrefixOrigin)
	rs := routescope.New(paths, cluster.InferRelationships(paths), l.Cfg.Seed)
	res.Bars = append(res.Bars, scoreFunc("RouteScope", pairs, truth, func(p VPair) ([]netsim.ASN, bool) {
		got, _, ok := rs.Predict(l.W.Top.PrefixOrigin[p.Src], l.W.Top.PrefixOrigin[p.Dst])
		return got, ok
	}))

	// The GRAPH -> iNano ablation.
	variants := []struct {
		name string
		opts core.Options
	}{
		{"GRAPH", core.GraphOptions()},
		{"GRAPH+asymmetry", core.Options{Asymmetry: true}},
		{"+3-tuples", core.Options{Asymmetry: true, ThreeTuple: true}},
		{"+preferences", core.Options{Asymmetry: true, ThreeTuple: true, Preferences: true}},
		{"iNano (+providers)", core.INanoOptions()},
	}
	for _, v := range variants {
		e := core.New(dd.Atlas, v.opts)
		res.Bars = append(res.Bars, scoreFunc(v.name, pairs, truth, func(p VPair) ([]netsim.ASN, bool) {
			pred := e.PredictForward(p.Src, p.Dst)
			return pred.ASPath, pred.Found
		}))
	}

	// Path composition (iPlane) and its improved variant.
	pa := dd.PathAtlas()
	res.Bars = append(res.Bars, scoreFunc("path-based (iPlane)", pairs, truth, func(p VPair) ([]netsim.ASN, bool) {
		pred := pa.Predict(p.Src, p.Dst, pathcomp.Options{})
		return pred.ASPath, pred.Found
	}))
	res.Bars = append(res.Bars, scoreFunc("improved path-based", pairs, truth, func(p VPair) ([]netsim.ASN, bool) {
		pred := pa.Predict(p.Src, p.Dst, pathcomp.Options{Improved: true})
		return pred.ASPath, pred.Found
	}))

	// Coverage bound (§6.3.1): fraction of validation paths all of whose
	// PoP-level links appear in the atlas.
	covered := 0
	for _, vp := range pairs {
		if pathCovered(l, dd, vp) {
			covered++
		}
	}
	if len(pairs) > 0 {
		res.CoverageBound = float64(covered) / float64(len(pairs))
	}
	return res
}

// scoreFunc evaluates one predictor over the validation set. Unanswered
// pairs count as wrong, as in the paper's accuracy fractions.
func scoreFunc(name string, pairs []VPair, truth [][]netsim.ASN, predict func(VPair) ([]netsim.ASN, bool)) AccuracyBar {
	bar := AccuracyBar{Name: name}
	if len(pairs) == 0 {
		return bar
	}
	exact, length, answered := 0, 0, 0
	for i, p := range pairs {
		got, ok := predict(p)
		if !ok {
			continue
		}
		answered++
		if equalASPath(truth[i], got) {
			exact++
		}
		if len(truth[i]) == len(got) {
			length++
		}
	}
	n := float64(len(pairs))
	bar.Exact = float64(exact) / n
	bar.LengthOnly = float64(length) / n
	bar.Answered = float64(answered) / n
	return bar
}

// pathCovered reports whether every inter-cluster link of the ground-truth
// path appears in the day's atlas.
func pathCovered(l *Lab, dd *DayData, vp VPair) bool {
	home, ok := l.W.Top.PrefixHome[vp.Src]
	if !ok {
		return false
	}
	path, ok := dd.Day.PoPPath(home, vp.Dst)
	if !ok {
		return false
	}
	// Map ground-truth PoPs onto observed clusters. A PoP may split into
	// several clusters (imperfect alias resolution), so each PoP maps to
	// a set and a link is covered when any cluster combination is in the
	// atlas.
	popClusters := dd.popClusterSets(l)
	var prev []cluster.ClusterID
	for _, h := range path.Hops {
		cs := popClusters[h.PoP]
		if len(cs) == 0 {
			return false
		}
		if prev != nil {
			found := false
		outer:
			for _, p := range prev {
				for _, c := range cs {
					if p == c || dd.Atlas.LinkAt(p, c) >= 0 {
						found = true
						break outer
					}
				}
			}
			if !found {
				return false
			}
		}
		prev = cs
	}
	return true
}

// popClusterSets caches the PoP -> observed clusters mapping per day.
func (dd *DayData) popClusterSets(l *Lab) map[netsim.PoPID][]cluster.ClusterID {
	dd.popOnce.Do(func() {
		m := make(map[netsim.PoPID][]cluster.ClusterID)
		for ip, c := range dd.ClusterOf {
			p := l.W.Top.RouterPoP(ip)
			dup := false
			for _, x := range m[p] {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				m[p] = append(m[p], c)
			}
		}
		dd.popClusters = m
	})
	return dd.popClusters
}

// Render formats the Fig. 5 bars.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: AS-path prediction accuracy over %d held-out paths\n", r.Pairs)
	fmt.Fprintf(&b, "%-22s %8s %10s %10s\n", "technique", "exact", "len-match", "answered")
	for _, bar := range r.Bars {
		fmt.Fprintf(&b, "%-22s %7.0f%% %9.0f%% %9.0f%%\n", bar.Name, bar.Exact*100, bar.LengthOnly*100, bar.Answered*100)
	}
	fmt.Fprintf(&b, "atlas link-coverage bound: %.0f%% of paths fully observed (paper: 93%%)\n", r.CoverageBound*100)
	fmt.Fprintf(&b, "(paper: RouteScope<31%%, GRAPH 31%%, iNano 70%%, path-based 70%%, improved 81%%)\n")
	return b.String()
}

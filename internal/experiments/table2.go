package experiments

import (
	"fmt"
	"strings"

	"inano/internal/atlas"
	"inano/internal/cluster"
	"inano/internal/netsim"
	"inano/internal/trace"
)

// Table2Row is one dataset row of Table 2.
type Table2Row struct {
	Name         string
	Entries      int
	Bytes        int // compressed bytes in the full atlas
	DeltaEntries int
	DeltaBytes   int
}

// Table2Result reproduces Table 2: per-dataset entry counts and compressed
// sizes of the atlas, and the size of the day-over-day delta.
type Table2Result struct {
	Rows            []Table2Row
	AtlasBytes      int
	DeltaBytes      int
	AtlasEntries    int
	DeltaEntriesSum int
}

// Table2AtlasSize builds the atlases of two consecutive days and measures
// both the full artifact and the delta (§6.1.1, §6.2.3).
func Table2AtlasSize(l *Lab) Table2Result {
	d0 := l.Day(0)
	d1 := l.Day(1)
	delta := atlas.Diff(d0.Atlas, d1.Atlas)

	var res Table2Result
	sizes := d1.Atlas.SectionSizes()
	// Delta per-dataset attribution: links, loss, tuples change daily;
	// the rest ship monthly (zero daily delta), per the paper.
	deltaEntries := map[string]int{
		"Inter-cluster links with latencies": len(delta.UpLinks) + len(delta.DelLinks),
		"Link loss rates":                    len(delta.UpLoss) + len(delta.DelLoss),
		"AS three-tuples":                    len(delta.AddTuples) + len(delta.DelTuples),
	}
	for _, s := range sizes {
		row := Table2Row{Name: s.Name, Entries: s.Entries, Bytes: s.Compressed}
		row.DeltaEntries = deltaEntries[s.Name]
		res.Rows = append(res.Rows, row)
		res.AtlasEntries += s.Entries
	}
	res.AtlasBytes = d1.Atlas.EncodedSize()
	res.DeltaBytes = delta.EncodedSize()
	res.DeltaEntriesSum = delta.Entries()
	return res
}

// Render formats the result like Table 2.
func (r Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: atlas dataset sizes (entries, compressed bytes) and daily delta\n")
	fmt.Fprintf(&b, "%-38s %10s %10s %10s\n", "Dataset", "Entries", "Bytes", "ΔEntries")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-38s %10d %10d %10d\n", row.Name, row.Entries, row.Bytes, row.DeltaEntries)
	}
	fmt.Fprintf(&b, "%-38s %10d %10d\n", "Total (full atlas, one gzip stream)", r.AtlasEntries, r.AtlasBytes)
	fmt.Fprintf(&b, "%-38s %10d %10d\n", "Daily delta", r.DeltaEntriesSum, r.DeltaBytes)
	fmt.Fprintf(&b, "delta/atlas size ratio: %.2f (paper: 1.34MB/6.61MB = 0.20)\n",
		float64(r.DeltaBytes)/float64(r.AtlasBytes))
	return b.String()
}

// ScalingPoint is one batch step of the vantage-point scaling study.
type ScalingPoint struct {
	Agents int
	Links  int
	Tuples int
}

// ScalingResult reproduces §6.1.2: how the atlas grows as end-host vantage
// points join, with the paper's linear extrapolation to full edge coverage.
type ScalingResult struct {
	Base               ScalingPoint // PlanetLab-only atlas
	Points             []ScalingPoint
	LinksPerAgent      float64
	TuplesPerAgent     float64
	ExtrapolatedLinks  int // if every edge prefix ran an agent
	ExtrapolatedTuples int
	EdgePrefixes       int
}

// VantagePointScaling adds batches of DIMES-like end-host agents and
// measures atlas growth (§6.1.2).
func VantagePointScaling(l *Lab, batches, agentsPerBatch, targetsPerAgent int) ScalingResult {
	dd := l.Day(0)
	// The baseline rebuilds with zero new agents so every point in the
	// series shares one pipeline configuration.
	base := rebuildWithClients(l, dd, nil)
	res := ScalingResult{
		Base:         ScalingPoint{Agents: 0, Links: len(base.Links), Tuples: len(base.Tuples)},
		EdgePrefixes: len(l.W.EdgePrefixes()),
	}
	// Agents are edge prefixes not already used as vantage points.
	isVP := make(map[netsim.Prefix]bool, len(l.VPs))
	for _, vp := range l.VPs {
		isVP[vp] = true
	}
	var agents []netsim.Prefix
	for _, p := range l.W.EdgePrefixes() {
		if !isVP[p] {
			agents = append(agents, p)
		}
	}
	var client []trace.Traceroute
	used := 0
	for b := 0; b < batches && used+agentsPerBatch <= len(agents); b++ {
		for a := 0; a < agentsPerBatch; a++ {
			src := agents[used]
			used++
			for k := 0; k < targetsPerAgent; k++ {
				dst := l.Targets[(int(src)*31+k*13)%len(l.Targets)]
				if dst == src {
					continue
				}
				client = append(client, dd.Meter.Traceroute(src, dst))
			}
		}
		a := rebuildWithClients(l, dd, client)
		res.Points = append(res.Points, ScalingPoint{
			Agents: used,
			Links:  len(a.Links),
			Tuples: len(a.Tuples),
		})
	}
	if n := len(res.Points); n > 0 && used > 0 {
		last := res.Points[n-1]
		res.LinksPerAgent = float64(last.Links-res.Base.Links) / float64(last.Agents)
		res.TuplesPerAgent = float64(last.Tuples-res.Base.Tuples) / float64(last.Agents)
		res.ExtrapolatedLinks = res.Base.Links + int(res.LinksPerAgent*float64(res.EdgePrefixes))
		res.ExtrapolatedTuples = res.Base.Tuples + int(res.TuplesPerAgent*float64(res.EdgePrefixes))
	}
	return res
}

// rebuildWithClients rebuilds the day's atlas with extra end-host agent
// traceroutes added to the FROM_SRC plane (alongside the validation
// sources' own FROM_SRC traces).
func rebuildWithClients(l *Lab, dd *DayData, client []trace.Traceroute) *atlas.Atlas {
	all := make([]trace.Traceroute, 0, len(dd.ClientTraces)+len(client))
	all = append(all, dd.ClientTraces...)
	all = append(all, client...)
	return atlas.Build(atlas.BuildInput{
		Top:          l.W.Top,
		Day:          dd.Day,
		Meter:        dd.Meter,
		VPTraces:     dd.AtlasTraces,
		ClientTraces: all,
		BGPFeeds:     atlas.DefaultFeeds(l.W.Top, 8),
		ClusterCfg:   cluster.DefaultConfig(),
	})
}

// Render formats the scaling study.
func (r ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.1.2: atlas scaling with end-host vantage points\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "agents", "links", "3-tuples")
	fmt.Fprintf(&b, "%8d %10d %10d   (vantage points only)\n", 0, r.Base.Links, r.Base.Tuples)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10d %10d\n", p.Agents, p.Links, p.Tuples)
	}
	fmt.Fprintf(&b, "growth: %.2f links/agent, %.2f tuples/agent\n", r.LinksPerAgent, r.TuplesPerAgent)
	fmt.Fprintf(&b, "linear extrapolation to all %d edge prefixes: %d links (%.1fx), %d tuples (%.1fx)\n",
		r.EdgePrefixes, r.ExtrapolatedLinks, float64(r.ExtrapolatedLinks)/float64(max(1, r.Base.Links)),
		r.ExtrapolatedTuples, float64(r.ExtrapolatedTuples)/float64(max(1, r.Base.Tuples)))
	fmt.Fprintf(&b, "(paper: 309K->2.2M links ~8x, 1.05M->2.7M tuples ~3x)\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import "testing"

// TestUpstreamStructureImprovesNonReporter is the acceptance test of the
// structural upstream fold: reporters' uploaded hop tails toward
// destinations the campaign never probed must, after agreement voting and
// the build fold, strictly improve a non-reporting client's hop-level
// path accuracy on those destinations — while a single fabricating
// reporter ships nothing.
func TestUpstreamStructureImprovesNonReporter(t *testing.T) {
	l := NewLab(QuickConfig(42))
	res := UpstreamStructure(l, 0, 3)
	t.Logf("\n%s", res.Render())
	if res.Reporters < 3 {
		t.Fatalf("only %d reporters; agreement voting needs at least 3", res.Reporters)
	}
	if res.HiddenDsts == 0 || res.Uploads == 0 {
		t.Fatalf("nothing uploaded: %+v", res)
	}
	if res.AgreedPaths == 0 || res.Fold.NewLinks == 0 || res.Fold.NewAttach == 0 {
		t.Fatalf("nothing folded: %+v", res)
	}
	if res.Pairs == 0 {
		t.Fatal("non-reporter has no hidden-destination workload")
	}
	if res.AnsweredBefore != 0 {
		t.Fatalf("hidden destinations must be unanswerable before the fold, got %d answered", res.AnsweredBefore)
	}
	if res.AnsweredAfter == 0 {
		t.Fatal("fold opened no hidden destination to the non-reporter")
	}
	if res.AccAfter <= res.AccBefore {
		t.Fatalf("hop-fold delta did not improve hop-level accuracy: before %.4f after %.4f",
			res.AccBefore, res.AccAfter)
	}
	if res.FabricatedShipped != 0 {
		t.Fatalf("a single lying reporter shipped %d fabricated links", res.FabricatedShipped)
	}
}

// TestUpstreamStructureLiarAloneShipsNothing drives the pipeline with
// zero honest reporters: the adversary's uploads are the only structural
// reports, and nothing may clear agreement.
func TestUpstreamStructureLiarAloneShipsNothing(t *testing.T) {
	l := NewLab(QuickConfig(7))
	// One reporter = the minimum the harness accepts; the fabricating
	// reporter rides along as always. With a single honest voice plus one
	// liar, no link reaches 2 distinct agreeing reporters unless they
	// coincide — and the fabricated pair never coincides with truth.
	res := UpstreamStructure(l, 1, 3)
	t.Logf("\n%s", res.Render())
	if res.FabricatedShipped != 0 {
		t.Fatalf("liar shipped fabricated structure: %+v", res)
	}
	if res.AgreedPaths != 0 {
		t.Fatalf("structure shipped without multi-reporter agreement: %+v", res)
	}
}

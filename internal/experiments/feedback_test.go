package experiments

import (
	"strings"
	"testing"
)

// TestFeedbackLoopReducesError asserts the acceptance bar of the
// measurement feedback loop: replaying ground-truth observations and
// spending the corrective budget must strictly reduce the mean RTT
// prediction error (the inano-eval -feedback run).
func TestFeedbackLoopReducesError(t *testing.T) {
	r := FeedbackLoop(testLab, 8, 4)
	if r.Pairs == 0 {
		t.Fatal("no validation pairs with ground truth")
	}
	if r.Probes == 0 {
		t.Fatal("corrective scheduler issued no probes")
	}
	if r.Merged == 0 {
		t.Fatal("corrective traceroutes merged no atlas changes")
	}
	if r.Probes > r.Rounds*r.Budget {
		t.Fatalf("probes %d exceed budget %d x %d rounds", r.Probes, r.Budget, r.Rounds)
	}
	if !(r.ErrAfter < r.ErrBefore) {
		t.Fatalf("mean RTT error did not strictly decrease: before %.4f, after %.4f", r.ErrBefore, r.ErrAfter)
	}
	// Correction must never break previously answered pairs.
	if r.AnsweredAfter < r.AnsweredBefore {
		t.Fatalf("answered pairs regressed: %d -> %d", r.AnsweredBefore, r.AnsweredAfter)
	}
	if !strings.Contains(r.Render(), "error reduction") {
		t.Fatal("render missing reduction line")
	}
}

// TestFeedbackLoopSecondSeed guards against a single lucky world: the
// error reduction must hold on an independently generated topology too.
func TestFeedbackLoopSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("extra world build")
	}
	l := NewLab(QuickConfig(101))
	r := FeedbackLoop(l, 8, 4)
	if !(r.ErrAfter < r.ErrBefore) {
		t.Fatalf("mean RTT error did not strictly decrease on seed 101: before %.4f, after %.4f", r.ErrBefore, r.ErrAfter)
	}
}

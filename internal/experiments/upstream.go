package experiments

import (
	"fmt"
	"sort"
	"strings"

	inano "inano"
	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// UpstreamResult reports the upstream-observation-sharing experiment: N
// reporting clients measure ground-truth RTTs against the served
// predictions and upload the residuals, the build folds the robust
// aggregate into the next day's delta, and a client that never reported
// anything is scored before and after applying that delta — the paper's
// §5 promise that every peer benefits from any peer's probes.
type UpstreamResult struct {
	// Reporters is the number of reporting clients (distinct source
	// clusters); Observations counts what they fed the aggregator.
	Reporters, Observations int
	// AggregatedPrefixes is the snapshot size; FoldedPrefixes how many
	// cleared the min-reporter bar; Corrections how many shipped
	// per-prefix corrections the folded atlas carries.
	AggregatedPrefixes, FoldedPrefixes, Corrections int
	// Pairs is the non-reporting client's held-out workload size.
	Pairs int
	// ErrBefore/ErrAfter are the non-reporter's mean capped relative RTT
	// errors against next-day ground truth, after applying the plain
	// day-roll delta vs the observation-folded one.
	ErrBefore, ErrAfter float64
	// AnsweredBefore/AnsweredAfter count pairs with a prediction.
	AnsweredBefore, AnsweredAfter int

	// Poisoning bound: a single adversarial reporter claiming the maximum
	// residual for every prefix is re-aggregated, and the per-prefix shift
	// it causes is compared against the honest reporters' spread (median
	// with one outlier added can never leave the honest min..max range).
	AdvMaxShiftMS float64
	AdvMaxSpread  float64
	AdvWithin     bool
}

// UpstreamLoop runs the upstream experiment across days 0 -> 1:
// reporters observe day-0 ground truth toward the shared target set,
// residuals are computed against the day-0 served predictions (as
// /v1/observations does), the aggregate folds into the day-0 -> day-1
// delta via atlas.BuildDeltaWithObservations, and the non-reporting
// client (the first validation source, its observations never uploaded)
// is scored on its held-out pairs against day-1 truth with the plain vs
// the folded delta. minReporters gates the fold (3 buys the median's
// single-liar bound).
func UpstreamLoop(l *Lab, reporters, minReporters int) UpstreamResult {
	d0, d1 := l.Day(0), l.Day(1)
	res := UpstreamResult{}

	// The non-reporter is the first validation source; reporters are the
	// rest, capped to the requested count.
	nonReporter := l.ValSrcs[0]
	reps := l.ValSrcs[1:]
	if reporters > 0 && len(reps) > reporters {
		reps = reps[:reporters]
	}
	res.Reporters = len(reps)

	// The shared probe-target set: every destination any validation pair
	// names — the paper's clients traceroute a few hundred prefixes a
	// day, so overlapping targets across reporters are the norm (and what
	// gives the median its support).
	dstSet := make(map[netsim.Prefix]bool)
	for _, vp := range d0.Validation {
		dstSet[vp.Dst] = true
	}
	dsts := make([]netsim.Prefix, 0, len(dstSet))
	for d := range dstSet {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })

	// Serve day-0 predictions the way /v1/observations computes residuals:
	// against the build server's own (uncorrected) atlas.
	serving := inano.FromAtlas(d0.Atlas.Clone())
	snap := serving.Snapshot()
	agg := feedback.NewAggregator(feedback.AggregatorConfig{})
	honest := make(map[netsim.Prefix][]float64) // for the adversarial bound
	for _, r := range reps {
		srcCl, ok := snap.AttachmentCluster(r)
		if !ok {
			continue
		}
		for _, dst := range dsts {
			trueRTT, ok := l.W.TrueRTT(0, r, dst)
			if !ok {
				continue
			}
			info := snap.Query(r.HostIP(), dst.HostIP())
			if !info.Found {
				continue
			}
			resid := trueRTT - info.RTTMS
			agg.Record(srcCl, dst, resid)
			honest[dst] = append(honest[dst], clampResid(resid))
			res.Observations++
		}
	}

	obsSnap := agg.Snapshot(0)
	res.AggregatedPrefixes = len(obsSnap.Prefixes)
	residuals := obsSnap.Residuals(minReporters)
	res.FoldedPrefixes = len(residuals)

	plainDelta := atlas.Diff(d0.Atlas, d1.Atlas)
	obsDelta, _, folded := atlas.BuildDeltaWithObservations(d0.Atlas, d1.Atlas, residuals)
	res.Corrections = folded

	// Score the non-reporter's held-out pairs against day-1 truth.
	var work []VPair
	for _, vp := range d0.Validation {
		if vp.Src == nonReporter {
			work = append(work, vp)
		}
	}
	res.Pairs = len(work)
	score := func(d *atlas.Delta) (float64, int) {
		a := d0.Atlas.Clone()
		a.Apply(d)
		client := inano.FromAtlas(a)
		sum, answered := 0.0, 0
		n := 0
		for _, vp := range work {
			trueRTT, ok := l.W.TrueRTT(1, vp.Src, vp.Dst)
			if !ok {
				continue
			}
			n++
			info := client.QueryPrefix(vp.Src, vp.Dst)
			if info.Found {
				answered++
			}
			sum += feedback.RelErr(info.RTTMS, trueRTT, info.Found)
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), answered
	}
	res.ErrBefore, res.AnsweredBefore = score(plainDelta)
	res.ErrAfter, res.AnsweredAfter = score(obsDelta)

	// Poisoning bound: one adversarial reporter (a single source cluster,
	// per the ingest's identity rule) claims the maximum positive residual
	// for every aggregated prefix. The median may move, but never outside
	// the honest reporters' range.
	res.AdvWithin = true
	liar := int32(1 << 30) // a cluster id no honest reporter used
	for _, p := range obsSnap.Prefixes {
		agg.Record(liar, p.Prefix, feedback.MaxAdjustMS)
	}
	advSnap := agg.Snapshot(0)
	advByPrefix := make(map[netsim.Prefix]float64, len(advSnap.Prefixes))
	for _, p := range advSnap.Prefixes {
		advByPrefix[p.Prefix] = p.ResidualMS
	}
	for _, p := range obsSnap.Prefixes {
		hs := honest[p.Prefix]
		if len(hs) < 2 {
			continue // with one honest reporter the median bound needs >= 2
		}
		shift := advByPrefix[p.Prefix] - p.ResidualMS
		if shift < 0 {
			shift = -shift
		}
		lo, hi := hs[0], hs[0]
		for _, h := range hs {
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		spread := hi - lo
		if shift > res.AdvMaxShiftMS {
			res.AdvMaxShiftMS = shift
		}
		if spread > res.AdvMaxSpread {
			res.AdvMaxSpread = spread
		}
		if adv := advByPrefix[p.Prefix]; adv < lo-1e-9 || adv > hi+1e-9 {
			res.AdvWithin = false
		}
	}
	return res
}

func clampResid(r float64) float64 {
	if r > feedback.MaxAdjustMS {
		return feedback.MaxAdjustMS
	}
	if r < -feedback.MaxAdjustMS {
		return -feedback.MaxAdjustMS
	}
	return r
}

// Render formats the upstream experiment.
func (r UpstreamResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Upstream sharing: %d reporters, %d observations -> %d aggregated prefixes (%d folded, %d corrections shipped)\n",
		r.Reporters, r.Observations, r.AggregatedPrefixes, r.FoldedPrefixes, r.Corrections)
	fmt.Fprintf(&b, "  non-reporting client, %d held-out pairs vs day-1 truth:\n", r.Pairs)
	fmt.Fprintf(&b, "  mean RTT error, plain delta    %.3f (answered %d/%d)\n", r.ErrBefore, r.AnsweredBefore, r.Pairs)
	fmt.Fprintf(&b, "  mean RTT error, folded delta   %.3f (answered %d/%d)\n", r.ErrAfter, r.AnsweredAfter, r.Pairs)
	if r.ErrBefore > 0 {
		fmt.Fprintf(&b, "  error reduction: %.1f%%\n", 100*(r.ErrBefore-r.ErrAfter)/r.ErrBefore)
	}
	fmt.Fprintf(&b, "  single-liar shift: max %.2f ms (honest spread up to %.2f ms, within bound: %v)\n",
		r.AdvMaxShiftMS, r.AdvMaxSpread, r.AdvWithin)
	return b.String()
}

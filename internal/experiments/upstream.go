package experiments

import (
	"fmt"
	"strings"

	"inano/internal/atlas"
	"inano/internal/feedback"
	"inano/internal/netsim"
)

// UpstreamResult reports the upstream-observation-sharing experiment: N
// reporting clients measure ground-truth RTTs against the served
// predictions and upload the residuals, the build folds the robust
// aggregate into the next day's delta, and a client that never reported
// anything is scored before and after applying that delta — the paper's
// §5 promise that every peer benefits from any peer's probes.
type UpstreamResult struct {
	// Reporters is the number of reporting clients (distinct source
	// clusters); Observations counts what they fed the aggregator.
	Reporters, Observations int
	// AggregatedPrefixes is the snapshot size; FoldedPrefixes how many
	// cleared the min-reporter bar; Corrections how many shipped
	// per-prefix corrections the folded atlas carries.
	AggregatedPrefixes, FoldedPrefixes, Corrections int
	// Pairs is the non-reporting client's held-out workload size.
	Pairs int
	// ErrBefore/ErrAfter are the non-reporter's mean capped relative RTT
	// errors against next-day ground truth, after applying the plain
	// day-roll delta vs the observation-folded one.
	ErrBefore, ErrAfter float64
	// AnsweredBefore/AnsweredAfter count pairs with a prediction.
	AnsweredBefore, AnsweredAfter int

	// Poisoning bound: a single adversarial reporter claiming the maximum
	// residual for every prefix is re-aggregated, and the per-prefix shift
	// it causes is compared against the honest reporters' spread (median
	// with one outlier added can never leave the honest min..max range).
	AdvMaxShiftMS float64
	AdvMaxSpread  float64
	AdvWithin     bool
}

// UpstreamLoop runs the upstream experiment across days 0 -> 1:
// reporters observe day-0 ground truth toward the shared target set,
// residuals are computed against the day-0 served predictions (as
// /v1/observations does), the aggregate folds into the day-0 -> day-1
// delta via atlas.BuildDeltaWithObservations, and the non-reporting
// client (the first validation source, its observations never uploaded)
// is scored on its held-out pairs against day-1 truth with the plain vs
// the folded delta. minReporters gates the fold (3 buys the median's
// single-liar bound).
func UpstreamLoop(l *Lab, reporters, minReporters int) UpstreamResult {
	d0, d1 := l.Day(0), l.Day(1)
	res := UpstreamResult{}

	// The non-reporter is the first validation source; reporters are the
	// rest, capped to the requested count.
	nonReporter := l.ValSrcs[0]
	reps := l.ValSrcs[1:]
	if reporters > 0 && len(reps) > reporters {
		reps = reps[:reporters]
	}
	res.Reporters = len(reps)

	// Collect the reporters' day-0 residuals against the served atlas
	// toward the shared target set (the extracted roll loop the scenario
	// harness also drives).
	dsts := SharedTargets(d0)
	ro := CollectResiduals(l, 0, reps, dsts, minReporters, nil)
	obsSnap, honest := ro.Snapshot, ro.Honest
	agg := ro.Agg
	res.Observations = ro.Observations
	res.AggregatedPrefixes = len(obsSnap.Prefixes)
	residuals := ro.Residuals
	res.FoldedPrefixes = len(residuals)

	plainDelta := atlas.Diff(d0.Atlas, d1.Atlas)
	obsDelta, _, folded := atlas.BuildDeltaWithObservations(d0.Atlas, d1.Atlas, residuals)
	res.Corrections = folded

	// Score the non-reporter's held-out pairs against day-1 truth.
	res.ErrBefore, res.AnsweredBefore, res.Pairs = ScoreDelta(l, 0, 1, nonReporter, plainDelta)
	res.ErrAfter, res.AnsweredAfter, _ = ScoreDelta(l, 0, 1, nonReporter, obsDelta)

	// Poisoning bound: one adversarial reporter (a single source cluster,
	// per the ingest's identity rule) claims the maximum positive residual
	// for every aggregated prefix. The median may move, but never outside
	// the honest reporters' range.
	res.AdvWithin = true
	liar := int32(1 << 30) // a cluster id no honest reporter used
	for _, p := range obsSnap.Prefixes {
		agg.Record(liar, p.Prefix, feedback.MaxAdjustMS)
	}
	advSnap := agg.Snapshot(0)
	advByPrefix := make(map[netsim.Prefix]float64, len(advSnap.Prefixes))
	for _, p := range advSnap.Prefixes {
		advByPrefix[p.Prefix] = p.ResidualMS
	}
	for _, p := range obsSnap.Prefixes {
		hs := honest[p.Prefix]
		if len(hs) < 2 {
			continue // with one honest reporter the median bound needs >= 2
		}
		shift := advByPrefix[p.Prefix] - p.ResidualMS
		if shift < 0 {
			shift = -shift
		}
		lo, hi := hs[0], hs[0]
		for _, h := range hs {
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		spread := hi - lo
		if shift > res.AdvMaxShiftMS {
			res.AdvMaxShiftMS = shift
		}
		if spread > res.AdvMaxSpread {
			res.AdvMaxSpread = spread
		}
		if adv := advByPrefix[p.Prefix]; adv < lo-1e-9 || adv > hi+1e-9 {
			res.AdvWithin = false
		}
	}
	return res
}

func clampResid(r float64) float64 {
	if r > feedback.MaxAdjustMS {
		return feedback.MaxAdjustMS
	}
	if r < -feedback.MaxAdjustMS {
		return -feedback.MaxAdjustMS
	}
	return r
}

// Render formats the upstream experiment.
func (r UpstreamResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Upstream sharing: %d reporters, %d observations -> %d aggregated prefixes (%d folded, %d corrections shipped)\n",
		r.Reporters, r.Observations, r.AggregatedPrefixes, r.FoldedPrefixes, r.Corrections)
	fmt.Fprintf(&b, "  non-reporting client, %d held-out pairs vs day-1 truth:\n", r.Pairs)
	fmt.Fprintf(&b, "  mean RTT error, plain delta    %.3f (answered %d/%d)\n", r.ErrBefore, r.AnsweredBefore, r.Pairs)
	fmt.Fprintf(&b, "  mean RTT error, folded delta   %.3f (answered %d/%d)\n", r.ErrAfter, r.AnsweredAfter, r.Pairs)
	if r.ErrBefore > 0 {
		fmt.Fprintf(&b, "  error reduction: %.1f%%\n", 100*(r.ErrBefore-r.ErrAfter)/r.ErrBefore)
	}
	fmt.Fprintf(&b, "  single-liar shift: max %.2f ms (honest spread up to %.2f ms, within bound: %v)\n",
		r.AdvMaxShiftMS, r.AdvMaxSpread, r.AdvWithin)
	return b.String()
}

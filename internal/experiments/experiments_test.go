package experiments

import (
	"strings"
	"testing"
)

// One lab shared across tests: building it is the expensive part.
var testLab = NewLab(QuickConfig(7))

func TestTable2AtlasSize(t *testing.T) {
	r := Table2AtlasSize(testLab)
	if r.AtlasBytes <= 0 || r.AtlasEntries <= 0 {
		t.Fatalf("empty atlas: %+v", r)
	}
	if r.DeltaBytes <= 0 {
		t.Fatal("empty delta")
	}
	if r.DeltaBytes >= r.AtlasBytes {
		t.Errorf("delta (%d B) not smaller than atlas (%d B)", r.DeltaBytes, r.AtlasBytes)
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Fatal("render missing header")
	}
}

func TestVantagePointScaling(t *testing.T) {
	r := VantagePointScaling(testLab, 2, 8, 10)
	if len(r.Points) == 0 {
		t.Fatal("no scaling points")
	}
	last := r.Points[len(r.Points)-1]
	if last.Links < r.Base.Links {
		t.Errorf("links shrank with more agents: %d -> %d", r.Base.Links, last.Links)
	}
	if r.ExtrapolatedLinks < last.Links {
		t.Errorf("extrapolation below measurement")
	}
	_ = r.Render()
}

func TestFig4PathStationarity(t *testing.T) {
	r := Fig4PathStationarity(testLab)
	if r.Total == 0 {
		t.Fatal("no path pairs compared")
	}
	if r.Identical <= 0 || r.Identical > 1 {
		t.Errorf("identical fraction %v out of range", r.Identical)
	}
	if r.FracGE75 < r.FracGE90 {
		t.Errorf("CDF inverted: >=0.75 (%v) < >=0.9 (%v)", r.FracGE75, r.FracGE90)
	}
	if r.Identical >= 0.999 {
		t.Errorf("all paths identical across days; churn inert")
	}
	_ = r.Render()
}

func TestLossStationarity(t *testing.T) {
	r := LossStationarity(testLab, 500)
	if r.LossyPairs == 0 {
		t.Skip("no lossy pairs in quick world")
	}
	for _, f := range []float64{r.StillLossy6, r.StillLossy12, r.StillLossy24} {
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of range: %+v", r)
		}
	}
	// Stationarity must not increase with the interval (modulo noise at
	// tiny sample sizes).
	if r.LossyPairs >= 30 && r.StillLossy24 > r.StillLossy6+0.15 {
		t.Errorf("loss stationarity increases with interval: %+v", r)
	}
	_ = r.Render()
}

func TestFig5Accuracy(t *testing.T) {
	r := Fig5Accuracy(testLab)
	if r.Pairs == 0 {
		t.Fatal("no validation pairs")
	}
	if len(r.Bars) != 8 {
		t.Fatalf("got %d bars, want 8", len(r.Bars))
	}
	byName := map[string]AccuracyBar{}
	for _, b := range r.Bars {
		if b.Exact < 0 || b.Exact > 1 {
			t.Fatalf("bar %s exact %v out of range", b.Name, b.Exact)
		}
		if b.Exact > b.LengthOnly+1e-9 {
			t.Fatalf("bar %s exact (%v) above length match (%v)", b.Name, b.Exact, b.LengthOnly)
		}
		byName[b.Name] = b
	}
	// The paper's headline ordering: full iNano beats plain GRAPH.
	if byName["iNano (+providers)"].Exact <= byName["GRAPH"].Exact-0.02 {
		t.Errorf("iNano (%v) worse than GRAPH (%v)", byName["iNano (+providers)"].Exact, byName["GRAPH"].Exact)
	}
	if r.CoverageBound <= 0 || r.CoverageBound > 1 {
		t.Errorf("coverage bound %v out of range", r.CoverageBound)
	}
	_ = r.Render()
}

func TestFig6LatencyError(t *testing.T) {
	r := Fig6LatencyError(testLab)
	if r.Pairs == 0 {
		t.Fatal("no pairs")
	}
	for _, c := range r.CDFs {
		if len(c.Errors) == 0 {
			t.Fatalf("%s produced no estimates", c.Name)
		}
		if c.At(0.5) < 0 {
			t.Fatalf("%s negative error", c.Name)
		}
	}
	_ = r.Render()
}

func TestFig7ClosestRanking(t *testing.T) {
	r := Fig7ClosestRanking(testLab)
	for t2, xs := range r.Intersection {
		for _, x := range xs {
			if x < 0 || x > 10 {
				t.Fatalf("technique %s intersection %d out of range", r.Name[t2], x)
			}
		}
	}
	_ = r.Render()
}

func TestFig8LossError(t *testing.T) {
	r := Fig8LossError(testLab)
	if r.Pairs == 0 {
		t.Fatal("no pairs")
	}
	for _, c := range r.CDFs {
		if len(c.Errors) == 0 {
			t.Fatalf("%s produced no loss estimates", c.Name)
		}
		if c.At(0.9) > 1 {
			t.Fatalf("%s loss error above 1", c.Name)
		}
	}
	_ = r.Render()
}

func TestFig9CDN(t *testing.T) {
	for _, size := range []int{30_000, 1_500_000} {
		r := Fig9CDN(testLab, size, 10, 5)
		if len(r.Strategies) != 6 {
			t.Fatalf("got %d strategies", len(r.Strategies))
		}
		var opt, rnd []float64
		for _, s := range r.Strategies {
			if len(s.Times) == 0 {
				t.Fatalf("strategy %s produced no downloads", s.Name)
			}
			switch s.Name {
			case "optimal":
				opt = s.Times
			case "random":
				rnd = s.Times
			}
		}
		// Optimal must dominate random in the median.
		if quantile(opt, 0.5) > quantile(rnd, 0.5)+1e-9 {
			t.Errorf("size %d: optimal median above random", size)
		}
		_ = r.Render()
	}
}

func TestFig10VoIP(t *testing.T) {
	r := Fig10VoIP(testLab, 60)
	if len(r.Strategies) != 4 {
		t.Fatalf("got %d strategies", len(r.Strategies))
	}
	for _, s := range r.Strategies {
		if len(s.Losses) == 0 {
			t.Fatalf("strategy %s handled no calls", s.Name)
		}
		for _, l := range s.Losses {
			if l < 0 || l > 1 {
				t.Fatalf("loss %v out of range", l)
			}
		}
	}
	_ = r.Render()
}

func TestFig11Detour(t *testing.T) {
	r := Fig11Detour(testLab, 6, 5)
	if r.Cases == 0 {
		t.Skip("no partitionable failures in quick world")
	}
	prev := 1.1
	for n := 0; n < r.MaxDetours; n++ {
		if r.UnreachableINano[n] > prev+1e-9 {
			t.Fatalf("unreachability increased with more detours")
		}
		prev = r.UnreachableINano[n]
		if r.UnreachableINano[n] < 0 || r.UnreachableRandom[n] > 1 {
			t.Fatalf("fractions out of range")
		}
	}
	_ = r.Render()
}
